package opcm

import (
	"math"
	"sync"
	"testing"

	"sophie/internal/tiling"
)

func noisyEngine(t *testing.T, noise float64) *Engine {
	t.Helper()
	params := DefaultParams()
	params.ReadNoise = noise
	e, err := NewEngine(randomTiles(16, 3, 77), 0, params)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineImplementsSessionEngine(t *testing.T) {
	var _ tiling.SessionEngine = &Engine{}
	var _ tiling.SessionEngine = &DriftEngine{}
}

// TestSessionDeterministicPerSeed: a session's noise is a pure function
// of its seed — two sessions with the same seed produce bit-identical
// outputs, different seeds (almost surely) differ.
func TestSessionDeterministicPerSeed(t *testing.T) {
	e := noisyEngine(t, 0.05)
	x := make([]float64, 16)
	for i := range x {
		x[i] = float64(i%2) - 0.5
	}
	run := func(seed int64) []float64 {
		ses := e.Session(seed)
		out := make([]float64, 0, 3*16)
		y := make([]float64, 16)
		for p := 0; p < 3; p++ {
			ses.Mul(p, false, x, y)
			out = append(out, y...)
			ses.Mul(p, true, x, y)
			out = append(out, y...)
		}
		return out
	}
	a, b := run(11), run(11)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("same seed, output %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical noise")
	}
}

// TestSessionsAreScheduleIndependent: concurrent sessions over one
// engine neither race (-race build) nor perturb each other — each
// session's outputs match a session run alone with the same seed.
func TestSessionsAreScheduleIndependent(t *testing.T) {
	e := noisyEngine(t, 0.05)
	x := make([]float64, 16)
	for i := range x {
		x[i] = 1
	}
	sequence := func(ses tiling.Engine) []float64 {
		out := make([]float64, 0, 64*16)
		y := make([]float64, 16)
		for k := 0; k < 64; k++ {
			ses.Mul(k%3, k%2 == 0, x, y)
			out = append(out, y...)
		}
		return out
	}
	const sessions = 8
	refs := make([][]float64, sessions)
	for i := range refs {
		refs[i] = sequence(e.Session(int64(i)))
	}
	got := make([][]float64, sessions)
	var wg sync.WaitGroup
	wg.Add(sessions)
	for i := 0; i < sessions; i++ {
		go func(i int) {
			defer wg.Done()
			got[i] = sequence(e.Session(int64(i)))
		}(i)
	}
	wg.Wait()
	for i := range refs {
		for j := range refs[i] {
			if math.Float64bits(refs[i][j]) != math.Float64bits(got[i][j]) {
				t.Fatalf("session %d output %d perturbed by siblings: %v vs %v", i, j, refs[i][j], got[i][j])
			}
		}
	}
}

// TestSessionNoiselessMatchesEngine: with ReadNoise 0 a session is the
// deterministic datapath — bit-identical to the engine's own Mul.
func TestSessionNoiselessMatchesEngine(t *testing.T) {
	e := noisyEngine(t, 0)
	ses := e.Session(99)
	x := make([]float64, 16)
	for i := range x {
		x[i] = float64(i) / 16
	}
	want := make([]float64, 16)
	got := make([]float64, 16)
	for p := 0; p < 3; p++ {
		e.Mul(p, false, x, want)
		ses.Mul(p, false, x, got)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("noiseless session diverges from engine at %d: %v vs %v", i, want[i], got[i])
			}
		}
	}
}

// TestDriftSessionAppliesDrift: a session over a DriftEngine must see
// the drift decay (the override guards against the promoted
// Engine.Session silently dropping it).
func TestDriftSessionAppliesDrift(t *testing.T) {
	d, err := NewDriftEngine(randomTiles(16, 1, 5), 0, DefaultParams(), 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 16)
	for i := range x {
		x[i] = 1
	}
	fresh := make([]float64, 16)
	d.Session(1).Mul(0, false, x, fresh)
	d.Tick(1e6) // age the array so the decay is well above float noise
	aged := make([]float64, 16)
	d.Session(1).Mul(0, false, x, aged)
	f := d.driftFactor(1e6)
	if f >= 1 {
		t.Fatal("test setup: drift factor must decay")
	}
	for i := range fresh {
		if math.Abs(aged[i]-f*fresh[i]) > 1e-12*math.Abs(fresh[i])+1e-15 {
			t.Fatalf("aged session output %d = %v, want %v decayed by %v", i, aged[i], fresh[i], f)
		}
	}
}

// TestSessionCounts: per-session op attribution.
func TestSessionCounts(t *testing.T) {
	e := noisyEngine(t, 0.05)
	ses := e.Session(3).(*Session)
	x := make([]float64, 16)
	y := make([]float64, 16)
	ses.Mul(0, false, x, y)
	ses.Mul(1, true, x, y)
	ses.QuantizeReadout(y)
	c := ses.Counts()
	if c.MVMs != 2 {
		t.Fatalf("MVMs = %d, want 2", c.MVMs)
	}
	if c.NoiseDraws != 32 {
		t.Fatalf("NoiseDraws = %d, want 32", c.NoiseDraws)
	}
	if c.ReadoutQuantizations != 1 {
		t.Fatalf("ReadoutQuantizations = %d, want 1", c.ReadoutQuantizations)
	}
	if ses.TileSize() != 16 || ses.Pairs() != 3 {
		t.Fatal("session geometry does not match the engine")
	}
}
