// Package opcm models the optically addressed phase change memory
// datapath of SOPHIE (Sections II-A and III-C): GST cells with a finite
// number of programmable transmittance levels, positive/negative split
// crossbar arrays, bi-directional (forward and transposed) matrix-vector
// products, dual-precision ADC readout, and the optical loss budget that
// sets the laser power.
//
// The Engine type implements tiling.Engine, so the SOPHIE core can run
// its functional simulation either on the ideal float64 datapath or
// through this device model to evaluate hardware effects (quantization,
// read noise, stuck cells).
package opcm

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"sophie/internal/linalg"
	"sophie/internal/metrics"
	"sophie/internal/trace"
)

// Params configures the device model.
type Params struct {
	// CellBits is the number of bits stored per GST cell. State-of-the-art
	// cells reach 64 deterministic levels, i.e. 6 bits (Section II-A).
	CellBits int
	// ADCBits is the resolution of the multi-bit ADC mode used for the
	// last local iteration before a global synchronization (Section
	// III-C uses 8).
	ADCBits int
	// ReadNoise is additive Gaussian noise on each MVM output, expressed
	// as a fraction of the array full scale. This models the inherent
	// device noise; the algorithm-level noise generator tops it up to the
	// target φ (Section III-C). Zero disables it.
	ReadNoise float64
	// StuckCellFraction injects faults: this fraction of cells is frozen
	// at a random level at programming time. Zero disables it.
	StuckCellFraction float64
	// Seed drives the noise and fault RNGs.
	Seed int64
}

// DefaultParams returns the paper's device configuration: 6-bit cells,
// 8-bit sync ADC, no extra read noise or faults.
func DefaultParams() Params {
	return Params{CellBits: 6, ADCBits: 8}
}

func (p Params) validate() error {
	if p.CellBits < 1 || p.CellBits > 16 {
		return fmt.Errorf("opcm: cell bits %d outside [1,16]", p.CellBits)
	}
	if p.ADCBits < 1 || p.ADCBits > 24 {
		return fmt.Errorf("opcm: ADC bits %d outside [1,24]", p.ADCBits)
	}
	if p.ReadNoise < 0 {
		return fmt.Errorf("opcm: negative read noise %v", p.ReadNoise)
	}
	if p.StuckCellFraction < 0 || p.StuckCellFraction > 1 {
		return fmt.Errorf("opcm: stuck cell fraction %v outside [0,1]", p.StuckCellFraction)
	}
	return nil
}

// Engine is a bank of programmed OPCM arrays, one per symmetric tile
// pair. Each array holds the tile split into a positive and a negative
// part (two physical sub-arrays whose photocurrents are subtracted in
// the analog domain, Section III-C); each part is quantized to the cell
// transmittance levels.
type Engine struct {
	params Params
	size   int
	scale  float64 // matrix value mapped to full transmittance
	pos    []*linalg.Matrix
	neg    []*linalg.Matrix

	mu     sync.Mutex
	rng    *rand.Rand
	counts metrics.OpCounts
	rec    *trace.Recorder // reprogramming events, when attached (guarded by mu)

	scratch sync.Pool // *[]float64 buffers for the negative sub-array product
}

// NewEngine programs the given tiles into OPCM arrays. scale fixes the
// full-transmittance matrix value; pass 0 to auto-scale to the largest
// |element| across tiles. Programming costs are tallied in Counts.
func NewEngine(tiles []*linalg.Matrix, scale float64, params Params) (*Engine, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if len(tiles) == 0 {
		return nil, fmt.Errorf("opcm: no tiles to program")
	}
	size := tiles[0].Rows()
	maxAbs := 0.0
	for i, tl := range tiles {
		if tl.Rows() != size || tl.Cols() != size {
			return nil, fmt.Errorf("opcm: tile %d is %dx%d, want %dx%d", i, tl.Rows(), tl.Cols(), size, size)
		}
		if a := tl.MaxAbs(); a > maxAbs {
			maxAbs = a
		}
	}
	if scale == 0 {
		scale = maxAbs
	}
	if scale == 0 {
		scale = 1 // all-zero problem; any scale works
	}
	if maxAbs > scale*(1+1e-9) {
		return nil, fmt.Errorf("opcm: tile values reach %v, beyond full scale %v", maxAbs, scale)
	}
	e := &Engine{
		params: params,
		size:   size,
		scale:  scale,
		pos:    make([]*linalg.Matrix, len(tiles)),
		neg:    make([]*linalg.Matrix, len(tiles)),
		rng:    rand.New(rand.NewSource(params.Seed)),
	}
	for i, tl := range tiles {
		e.program(i, tl)
	}
	return e, nil
}

// levels returns the number of programmable transmittance levels.
func (e *Engine) levels() int { return 1 << e.params.CellBits }

// quantizeCell maps a nonnegative matrix value to the nearest cell level
// and back to the value domain.
func (e *Engine) quantizeCell(v float64) float64 {
	steps := float64(e.levels() - 1)
	q := math.Round(v / e.scale * steps)
	if q < 0 {
		q = 0
	}
	if q > steps {
		q = steps
	}
	return q / steps * e.scale
}

// AttachTrace implements tiling.TraceSink for the engine itself:
// subsequent array (re)programming emits trace.KindReprogram events
// into rec and charges the measured span to the reprogramming phase.
// Per-MVM device events are session-scoped (Session.AttachTrace) so
// that concurrent jobs sharing the programmed arrays attribute their
// own MVMs; reprogramming mutates the shared arrays and is therefore
// engine-scoped.
func (e *Engine) AttachTrace(rec *trace.Recorder) {
	e.mu.Lock()
	e.rec = rec
	e.mu.Unlock()
}

// program writes tile p. Faults are drawn fresh on every programming.
func (e *Engine) program(p int, tile *linalg.Matrix) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var begin time.Time
	if e.rec != nil {
		begin = time.Now()
	}
	pos := linalg.NewMatrix(e.size, e.size)
	neg := linalg.NewMatrix(e.size, e.size)
	steps := float64(e.levels() - 1)
	for i := 0; i < e.size; i++ {
		src := tile.Row(i)
		pr := pos.Row(i)
		nr := neg.Row(i)
		for j, v := range src {
			pv, nv := 0.0, 0.0
			if v > 0 {
				pv = e.quantizeCell(v)
			} else if v < 0 {
				nv = e.quantizeCell(-v)
			}
			if e.params.StuckCellFraction > 0 {
				if e.rng.Float64() < e.params.StuckCellFraction {
					pv = math.Round(e.rng.Float64()*steps) / steps * e.scale
				}
				if e.rng.Float64() < e.params.StuckCellFraction {
					nv = math.Round(e.rng.Float64()*steps) / steps * e.scale
				}
			}
			pr[j] = pv
			nr[j] = nv
		}
	}
	e.pos[p] = pos
	e.neg[p] = neg
	// Device-owned lifetime counters: they tally programming across every
	// job and engine user, unlike the per-run fold in internal/trace, and
	// the KindReprogram event below carries the same charge onto the
	// event spine for traced flows.
	//sophielint:ignore tracecount device-lifetime counter, mirrored by the KindReprogram event
	e.counts.OPCMPrograms++
	//sophielint:ignore tracecount device-lifetime counter, mirrored by the KindReprogram event
	e.counts.OPCMCellWrites += metrics.U64(2 * e.size * e.size) // pos + neg sub-arrays
	if e.rec != nil {
		e.rec.Device(trace.Event{Kind: trace.KindReprogram, Pair: int32(p), N: int64(2 * e.size * e.size)})
		e.rec.AddReprogramTime(time.Since(begin))
	}
}

// Reprogram overwrites the array at pair index p with a new tile. This is
// what the time-duplexed large-graph flow does between rounds
// (Section III-E). It returns an error on a shape or range mismatch.
func (e *Engine) Reprogram(p int, tile *linalg.Matrix) error {
	if p < 0 || p >= len(e.pos) {
		return fmt.Errorf("opcm: pair index %d out of range [0,%d)", p, len(e.pos))
	}
	if tile.Rows() != e.size || tile.Cols() != e.size {
		return fmt.Errorf("opcm: tile is %dx%d, want %dx%d", tile.Rows(), tile.Cols(), e.size, e.size)
	}
	if tile.MaxAbs() > e.scale*(1+1e-9) {
		return fmt.Errorf("opcm: tile values reach %v, beyond full scale %v", tile.MaxAbs(), e.scale)
	}
	e.program(p, tile)
	return nil
}

// mulRaw is the deterministic half of the datapath: y = T·x or Tᵀ·x
// through the positive/negative arrays, with no read noise. It touches
// only state that is immutable between (re)programming events, so any
// number of jobs may call it concurrently.
func (e *Engine) mulRaw(p int, transposed bool, x, y []float64) {
	pos, neg := e.pos[p], e.neg[p]
	var tmp []float64
	if buf, ok := e.scratch.Get().(*[]float64); ok {
		tmp = *buf
	} else {
		tmp = make([]float64, e.size)
	}
	defer func() { e.scratch.Put(&tmp) }()
	var err error
	if transposed {
		_, err = pos.MulVecT(x, y)
		if err == nil {
			_, err = neg.MulVecT(x, tmp)
		}
	} else {
		_, err = pos.MulVec(x, y)
		if err == nil {
			_, err = neg.MulVec(x, tmp)
		}
	}
	if err != nil {
		panic(err) // shape misuse is a caller bug, as for IdealEngine
	}
	for i := range y {
		y[i] -= tmp[i] // analog-domain subtraction of the two sub-arrays
	}
}

// Mul implements tiling.Engine: y = T·x or Tᵀ·x through the
// positive/negative arrays, with optional read noise. The E-O
// modulators are 1-bit (spins), but Mul accepts arbitrary x so the
// ideal and device datapaths stay interchangeable; binary inputs are
// the common case and match the hardware.
//
// Noise draws on this path come from the engine-level stream: calls
// are serialized by a mutex and their order is whatever the callers'
// schedule produces, so direct Mul use is only reproducible from a
// single goroutine. Job-level code goes through Session instead, which
// gives every job its own deterministic noise stream.
func (e *Engine) Mul(p int, transposed bool, x, y []float64) {
	e.mulRaw(p, transposed, x, y)
	if e.params.ReadNoise > 0 {
		fs := e.fullScaleOutput()
		e.mu.Lock()
		for i := range y {
			y[i] += e.rng.NormFloat64() * e.params.ReadNoise * fs
		}
		e.mu.Unlock()
	}
}

// fullScaleOutput is the largest magnitude a column sum can reach.
func (e *Engine) fullScaleOutput() float64 { return float64(e.size) * e.scale }

// QuantizeReadout applies the multi-bit ADC mode in place: each value is
// clipped to ± full scale and rounded to the ADC's signed code grid.
// The solver calls this on partial sums read out for global
// synchronization (Section III-C's 8-bit mode).
func (e *Engine) QuantizeReadout(v []float64) {
	fs := e.fullScaleOutput()
	half := float64(int(1)<<(e.params.ADCBits-1)) - 1 // e.g. 127 codes each side
	for i, x := range v {
		if x > fs {
			x = fs
		} else if x < -fs {
			x = -fs
		}
		v[i] = math.Round(x/fs*half) / half * fs
	}
}

// TileSize implements tiling.Engine.
func (e *Engine) TileSize() int { return e.size }

// Pairs implements tiling.Engine.
func (e *Engine) Pairs() int { return len(e.pos) }

// Counts returns a snapshot of the device-level operation counters.
func (e *Engine) Counts() metrics.OpCounts {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counts
}

// QuantizationError returns the max absolute element-wise error between
// the programmed arrays and the given reference tiles, for accuracy
// studies and tests.
func (e *Engine) QuantizationError(tiles []*linalg.Matrix) (float64, error) {
	if len(tiles) != len(e.pos) {
		return 0, fmt.Errorf("opcm: %d reference tiles for %d arrays", len(tiles), len(e.pos))
	}
	worst := 0.0
	for p, tl := range tiles {
		for i := 0; i < e.size; i++ {
			for j := 0; j < e.size; j++ {
				got := e.pos[p].At(i, j) - e.neg[p].At(i, j)
				if d := math.Abs(got - tl.At(i, j)); d > worst {
					worst = d
				}
			}
		}
	}
	return worst, nil
}
