package opcm

import (
	"math"
	"testing"

	"sophie/internal/tiling"
)

func TestDriftEngineImplementsTilingEngine(t *testing.T) {
	var _ tiling.Engine = (*DriftEngine)(nil)
}

func TestNewDriftEngineValidation(t *testing.T) {
	tiles := randomTiles(4, 1, 1)
	if _, err := NewDriftEngine(tiles, 0, DefaultParams(), -0.1, 1); err == nil {
		t.Fatal("negative nu must be rejected")
	}
	if _, err := NewDriftEngine(tiles, 0, DefaultParams(), 1.5, 1); err == nil {
		t.Fatal("nu >= 1 must be rejected")
	}
	if _, err := NewDriftEngine(tiles, 0, DefaultParams(), 0.01, 0); err == nil {
		t.Fatal("t0 = 0 must be rejected")
	}
}

func TestDriftDecaysOutputs(t *testing.T) {
	tiles := randomTiles(8, 1, 2)
	e, err := NewDriftEngine(tiles, 0, DefaultParams(), 0.02, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 1, 1, 1, 0, 0, 0, 0}
	fresh := make([]float64, 8)
	e.Mul(0, false, x, fresh)

	e.Tick(3600) // one hour of drift
	aged := make([]float64, 8)
	e.Mul(0, false, x, aged)

	f := e.driftFactor(3600)
	if f >= 1 {
		t.Fatalf("drift factor %v should decay below 1", f)
	}
	for i := range aged {
		if math.Abs(aged[i]-fresh[i]*f) > 1e-12 {
			t.Fatalf("aged output %d = %v, want %v", i, aged[i], fresh[i]*f)
		}
	}
	if got := e.MaxDriftError(); math.Abs(got-(1-f)) > 1e-12 {
		t.Fatalf("MaxDriftError %v, want %v", got, 1-f)
	}
}

func TestDriftYoungArraysUnaffected(t *testing.T) {
	tiles := randomTiles(4, 1, 3)
	e, err := NewDriftEngine(tiles, 0, DefaultParams(), 0.02, 10)
	if err != nil {
		t.Fatal(err)
	}
	e.Tick(5) // below the reference time: no decay yet
	if e.MaxDriftError() != 0 {
		t.Fatal("drift must not apply before the reference time")
	}
}

func TestRefreshResetsDrift(t *testing.T) {
	tiles := randomTiles(8, 2, 4)
	e, err := NewDriftEngine(tiles, 0, DefaultParams(), 0.02, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Counts().OPCMPrograms
	e.Tick(1000)
	if err := e.Refresh(0); err != nil {
		t.Fatal(err)
	}
	// Array 0 fresh, array 1 still aged.
	x := []float64{1, 0, 1, 0, 1, 0, 1, 0}
	y0 := make([]float64, 8)
	e.Mul(0, false, x, y0)
	want, _ := NewEngine(tiles, e.scale, DefaultParams())
	ref := make([]float64, 8)
	want.Mul(0, false, x, ref)
	for i := range y0 {
		if math.Abs(y0[i]-ref[i]) > 1e-12 {
			t.Fatal("refreshed array still drifting")
		}
	}
	if e.MaxDriftError() == 0 {
		t.Fatal("unrefreshed array must still report drift")
	}
	if e.Counts().OPCMPrograms != before+1 {
		t.Fatal("refresh must count as a programming event")
	}
	if err := e.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	if e.MaxDriftError() != 0 {
		t.Fatal("RefreshAll must clear all drift")
	}
	if err := e.Refresh(99); err == nil {
		t.Fatal("out-of-range refresh must error")
	}
}

func TestDriftTickPanicsOnNegative(t *testing.T) {
	tiles := randomTiles(4, 1, 5)
	e, _ := NewDriftEngine(tiles, 0, DefaultParams(), 0.01, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Tick(-1)
}
