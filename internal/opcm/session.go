package opcm

import (
	"math/rand"
	"sync/atomic"

	"sophie/internal/metrics"
	"sophie/internal/tiling"
	"sophie/internal/trace"
)

// Job-scoped device state (tiling.SessionEngine).
//
// A programmed engine is shared by every job of a batch, but two kinds
// of state are per-job, not per-device: the read-noise streams and the
// operation counters attributing device work to a job. Before PR 3 both
// lived on the engine — the noise RNG was serialized behind a mutex
// (race-free but schedule-dependent, so concurrent jobs perturbed each
// other's trajectories) and per-job attribution of device counters was
// impossible. A Session moves that state out: it shares the programmed
// arrays, which are immutable between (re)programming events, and owns
// its own seeded noise streams and counters.

// deterministicMul is the noise-free datapath a Session wraps: the raw
// pos/neg product of an Engine, or the drift-scaled product of a
// DriftEngine. base exposes the underlying Engine for parameters and
// readout quantization.
type deterministicMul interface {
	mulRaw(p int, transposed bool, x, y []float64)
	base() *Engine
}

func (e *Engine) base() *Engine { return e }

// SessionCounts tallies the device-level operations attributed to one
// session (one job).
type SessionCounts struct {
	// MVMs counts tile matrix-vector products issued by the job.
	MVMs uint64
	// NoiseDraws counts Gaussian read-noise samples added to outputs.
	NoiseDraws uint64
	// ReadoutQuantizations counts multi-bit ADC readout passes.
	ReadoutQuantizations uint64
}

// Session is a per-job view of a programmed engine: same arrays, own
// noise streams and counters. It implements tiling.Engine and the
// solver's readout-quantizer hook.
//
// Noise is drawn from one stream per array, not one per session: the
// solver's PE pool works on distinct pairs concurrently, and an array's
// draws must not depend on how those pairs interleave. Per-array
// streams make every array's noise sequence a pure function of
// (session seed, pair index, call order on that pair), so a job is
// bit-reproducible at any Workers setting. The counters are atomic for
// the same reason; their totals are schedule-independent. Calls on the
// same pair index must stay sequential (the solver's per-pair PE
// ownership guarantees this); distinct sessions and distinct pairs are
// safe concurrently.
type Session struct {
	dev    deterministicMul
	rngs   []*rand.Rand // one read-noise stream per pair index
	mvms   atomic.Uint64
	noise  atomic.Uint64
	quants atomic.Uint64
	// rec, when attached, receives sampled device-plane events
	// (trace.KindDeviceMVM). Written once before the session serves MVMs
	// (tiling.TraceSink contract), read by the PE workers afterwards.
	rec *trace.Recorder
}

// sessionMix is the splitmix64 finalizer (same mixer the solver's seed
// derivation uses, see internal/core/seed.go) deriving the per-array
// stream seeds from the session seed. Consecutive or otherwise related
// session seeds must not yield overlapping array streams; the bijective
// avalanche mixer guarantees that.
func sessionMix(seed int64, index int) int64 {
	mix := func(x uint64) uint64 {
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return x ^ (x >> 31)
	}
	return int64(mix(mix(uint64(seed)) ^ uint64(index)))
}

func newSession(dev deterministicMul, seed int64) *Session {
	rngs := make([]*rand.Rand, dev.base().Pairs())
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(sessionMix(seed, i)))
	}
	return &Session{dev: dev, rngs: rngs}
}

// Session implements tiling.SessionEngine: the returned engine view
// draws read noise from its own streams seeded by seed, so a job's
// device noise is a pure function of its seed no matter how many
// sibling jobs run concurrently.
func (e *Engine) Session(seed int64) tiling.Engine { return newSession(e, seed) }

// Session implements tiling.SessionEngine for the drift-wrapped device:
// the session's deterministic datapath includes the drift decay of the
// wrapped engine at its current age. (Overrides the promoted
// Engine.Session, which would silently drop drift.)
func (e *DriftEngine) Session(seed int64) tiling.Engine { return newSession(e, seed) }

// Mul implements tiling.Engine: the deterministic product plus read
// noise from the addressed array's private stream. Unlike Engine.Mul
// there is no lock — the only mutable state is owned by this session,
// and partitioned per pair.
func (s *Session) Mul(p int, transposed bool, x, y []float64) {
	s.dev.mulRaw(p, transposed, x, y)
	s.mvms.Add(1)
	if s.rec != nil {
		s.rec.Device(trace.Event{Kind: trace.KindDeviceMVM, Pair: int32(p), Flag: transposed})
	}
	eng := s.dev.base()
	if eng.params.ReadNoise > 0 {
		fs := eng.fullScaleOutput()
		rng := s.rngs[p]
		for i := range y {
			y[i] += rng.NormFloat64() * eng.params.ReadNoise * fs
		}
		s.noise.Add(metrics.U64(len(y)))
	}
}

// QuantizeReadout applies the engine's multi-bit ADC mode (stateless,
// shared safely) and attributes the readout to this session.
func (s *Session) QuantizeReadout(v []float64) {
	s.dev.base().QuantizeReadout(v)
	s.quants.Add(1)
}

// TileSize implements tiling.Engine.
func (s *Session) TileSize() int { return s.dev.base().TileSize() }

// Pairs implements tiling.Engine.
func (s *Session) Pairs() int { return s.dev.base().Pairs() }

// AttachTrace implements tiling.TraceSink: subsequent MVMs on this
// session emit sampled trace.KindDeviceMVM events into rec. The
// attachment is session-local — the shared engine behind the session is
// untouched, so sibling jobs stay untraced.
func (s *Session) AttachTrace(rec *trace.Recorder) { s.rec = rec }

// Counts returns the operations attributed to this session so far.
func (s *Session) Counts() SessionCounts {
	return SessionCounts{
		MVMs:                 s.mvms.Load(),
		NoiseDraws:           s.noise.Load(),
		ReadoutQuantizations: s.quants.Load(),
	}
}
