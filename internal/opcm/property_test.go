package opcm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sophie/internal/linalg"
)

// Property: quantizeCell is idempotent and never exceeds the half-step
// error bound for in-range values.
func TestQuantizeCellProperty(t *testing.T) {
	tiles := randomTiles(4, 1, 100)
	e, err := NewEngine(tiles, 0, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	step := e.scale / float64(e.levels()-1)
	f := func(raw float64) bool {
		v := math.Abs(math.Mod(raw, e.scale)) // map into [0, scale)
		q := e.quantizeCell(v)
		if math.Abs(q-v) > step/2+1e-12 {
			return false
		}
		return e.quantizeCell(q) == q // idempotent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mul is linear in the engine's stored matrix sign split —
// programming tile T and -T gives negated outputs.
func TestPosNegSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(8)
		tile := linalg.NewMatrix(n, n)
		for i := range tile.Data() {
			tile.Data()[i] = rng.NormFloat64()
		}
		neg := tile.Clone()
		neg.Scale(-1)
		scale := tile.MaxAbs()
		if scale == 0 {
			continue
		}
		ePos, err := NewEngine([]*linalg.Matrix{tile}, scale, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		eNeg, err := NewEngine([]*linalg.Matrix{neg}, scale, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(2))
		}
		a := make([]float64, n)
		b := make([]float64, n)
		ePos.Mul(0, false, x, a)
		eNeg.Mul(0, false, x, b)
		for i := range a {
			if math.Abs(a[i]+b[i]) > 1e-9 {
				t.Fatalf("trial %d: pos/neg asymmetry at %d: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}

// Property: QuantizeReadout output is always on the ADC code grid and
// within full scale.
func TestQuantizeReadoutGridProperty(t *testing.T) {
	tiles := randomTiles(8, 1, 102)
	e, err := NewEngine(tiles, 0, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	fs := e.fullScaleOutput()
	half := float64(int(1)<<(e.params.ADCBits-1)) - 1
	f := func(raw float64) bool {
		v := []float64{raw}
		e.QuantizeReadout(v)
		if math.Abs(v[0]) > fs+1e-9 {
			return false
		}
		code := v[0] / fs * half
		return math.Abs(code-math.Round(code)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: drift factors decay monotonically with age and stay in (0,1].
func TestDriftFactorMonotoneProperty(t *testing.T) {
	tiles := randomTiles(4, 1, 103)
	e, err := NewDriftEngine(tiles, 0, DefaultParams(), 0.02, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, age := range []float64{0, 1e-3, 1, 60, 3600, 86400, 86400 * 365} {
		f := e.driftFactor(age)
		if f <= 0 || f > 1 {
			t.Fatalf("drift factor %v at age %v outside (0,1]", f, age)
		}
		if f > prev+1e-15 {
			t.Fatalf("drift factor increased with age: %v -> %v", prev, f)
		}
		prev = f
	}
}
