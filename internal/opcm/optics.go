package opcm

import (
	"fmt"
	"math"
)

// Optical loss budget of the OPCM crossbar (Section IV-A). A signal
// entering row i and leaving column j is split 1:N across the row,
// passes up to N waveguide crossings and the GST cell, and is combined
// N:1 into the column detector. Loss constants are from Feldmann et al.
// as cited by the paper.
type OpticalParams struct {
	// GSTLossDB is the insertion loss of one GST cell (dB).
	GSTLossDB float64
	// CrossingLossDB is the loss per waveguide crossing (dB).
	CrossingLossDB float64
	// DCLossDB is the loss per directional coupler (dB).
	DCLossDB float64
	// QuantumEfficiency is the combined laser + photodetector efficiency.
	QuantumEfficiency float64
	// DetectorPowerW is the optical power required at the photodetector
	// for reliable detection at the accelerator clock rate (W), for an
	// array of DetectorRefSize inputs. The default is calibrated so a
	// 64x64 array draws the paper's 469 mW per wavelength. Larger arrays
	// accumulate more distinguishable levels per column, so the required
	// power scales quadratically with n/DetectorRefSize (thermal-noise
	// limited detection).
	DetectorPowerW float64
	// DetectorRefSize is the array size DetectorPowerW is calibrated at.
	DetectorRefSize int
}

// DefaultOpticalParams returns the paper's loss constants: GST 0.6 dB,
// crossing 0.0028 dB, directional coupler 0.01 dB, 10% quantum
// efficiency.
func DefaultOpticalParams() OpticalParams {
	return OpticalParams{
		GSTLossDB:         0.6,
		CrossingLossDB:    0.0028,
		DCLossDB:          0.01,
		QuantumEfficiency: 0.10,
		DetectorPowerW:    8.26e-6,
		DetectorRefSize:   64,
	}
}

func (p OpticalParams) validate() error {
	if p.QuantumEfficiency <= 0 || p.QuantumEfficiency > 1 {
		return fmt.Errorf("opcm: quantum efficiency %v outside (0,1]", p.QuantumEfficiency)
	}
	if p.GSTLossDB < 0 || p.CrossingLossDB < 0 || p.DCLossDB < 0 {
		return fmt.Errorf("opcm: negative loss constants")
	}
	if p.DetectorPowerW <= 0 {
		return fmt.Errorf("opcm: detector power must be positive")
	}
	if p.DetectorRefSize <= 0 {
		return fmt.Errorf("opcm: detector reference size must be positive")
	}
	return nil
}

// WorstPathLossDB returns the worst-case optical loss (dB) through an
// n×n crossbar: the 1:n row split, n waveguide crossings, one GST cell,
// n directional couplers, and the n:1 column combine. Splitting and
// combining each cost 10·log10(n) dB even when lossless.
func (p OpticalParams) WorstPathLossDB(n int) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("opcm: array size %d must be positive", n)
	}
	fanout := 10 * math.Log10(float64(n)) // 1:n split
	fanin := 10 * math.Log10(float64(n))  // n:1 combine
	return fanout + fanin +
		float64(n)*p.CrossingLossDB +
		float64(n)*p.DCLossDB +
		p.GSTLossDB, nil
}

// LaserPowerPerWavelengthW returns the laser power (W) one wavelength
// needs so the detector still receives enough power after the
// worst-case loss, divided by the quantum efficiency. The detector
// requirement scales as (n/DetectorRefSize)² because an n-input column
// must resolve n distinguishable levels at fixed SNR. At the paper's
// default configuration (n = 64) this evaluates to ≈ 0.469 W, matching
// the 469 mW per wavelength reported in Section IV-A.
func (p OpticalParams) LaserPowerPerWavelengthW(n int) (float64, error) {
	lossDB, err := p.WorstPathLossDB(n)
	if err != nil {
		return 0, err
	}
	linearLoss := math.Pow(10, lossDB/10)
	scale := float64(n) / float64(p.DetectorRefSize)
	return p.DetectorPowerW * scale * scale * linearLoss / p.QuantumEfficiency, nil
}

// TotalLaserPowerW returns the laser power for an n×n array driving all
// n wavelengths simultaneously.
func (p OpticalParams) TotalLaserPowerW(n int) (float64, error) {
	per, err := p.LaserPowerPerWavelengthW(n)
	if err != nil {
		return 0, err
	}
	return per * float64(n), nil
}
