package opcm

import (
	"fmt"
	"math"

	"sophie/internal/linalg"
)

// Amorphous GST exhibits resistance drift: the optical transmittance of
// a partially amorphized cell decays slowly (logarithmically) after
// programming, degrading stored weights until the array is refreshed
// (reprogrammed). The base Engine models freshly programmed arrays; the
// DriftEngine wraps it with a per-array age and the standard power-law
// drift model
//
//	T(t) = T₀ · (t/t₀)^(-ν)
//
// with drift exponent ν (≈0.005–0.02 for optical readout of GST) and
// reference time t₀. Time advances explicitly through Tick; Refresh
// reprograms an array and resets its age, costing a programming event,
// which lets studies trade refresh rate against accuracy.
type DriftEngine struct {
	*Engine
	nu       float64
	t0       float64
	tiles    []*linalg.Matrix // reference data for refresh
	age      []float64        // seconds since each array's last program
	now      float64
	lastSeen []float64 // device time at last Mul, for lazily applied decay
}

// NewDriftEngine wraps freshly programmed tiles with the drift model.
// nu is the drift exponent, t0 the reference time in seconds.
func NewDriftEngine(tiles []*linalg.Matrix, scale float64, params Params, nu, t0 float64) (*DriftEngine, error) {
	if nu < 0 || nu >= 1 {
		return nil, fmt.Errorf("opcm: drift exponent %v outside [0,1)", nu)
	}
	if t0 <= 0 {
		return nil, fmt.Errorf("opcm: drift reference time %v must be positive", t0)
	}
	base, err := NewEngine(tiles, scale, params)
	if err != nil {
		return nil, err
	}
	refs := make([]*linalg.Matrix, len(tiles))
	for i, tl := range tiles {
		refs[i] = tl.Clone()
	}
	return &DriftEngine{
		Engine:   base,
		nu:       nu,
		t0:       t0,
		tiles:    refs,
		age:      make([]float64, len(tiles)),
		lastSeen: make([]float64, len(tiles)),
	}, nil
}

// Tick advances device time by dt seconds; all arrays age together.
func (e *DriftEngine) Tick(dt float64) {
	if dt < 0 {
		panic("opcm: negative drift tick")
	}
	e.now += dt
	for i := range e.age {
		e.age[i] += dt
	}
}

// driftFactor returns the multiplicative transmittance decay for an
// array of the given age.
func (e *DriftEngine) driftFactor(age float64) float64 {
	if age <= e.t0 || e.nu == 0 {
		return 1
	}
	return math.Pow(age/e.t0, -e.nu)
}

// Mul implements tiling.Engine with drift applied: the stored weights
// decay by the array's drift factor before the product.
func (e *DriftEngine) Mul(p int, transposed bool, x, y []float64) {
	e.Engine.Mul(p, transposed, x, y)
	e.applyDrift(p, y)
}

// mulRaw is the deterministic datapath a Session wraps: the noiseless
// pos/neg product with the drift decay applied. (Overrides the
// promoted Engine.mulRaw, which would silently drop drift; note that
// unlike Mul, drift here scales only the stored weights, not the read
// noise — the session adds its noise after this, which matches the
// physics: read noise arises in the receiver, not the decaying cells.)
func (e *DriftEngine) mulRaw(p int, transposed bool, x, y []float64) {
	e.Engine.mulRaw(p, transposed, x, y)
	e.applyDrift(p, y)
}

func (e *DriftEngine) applyDrift(p int, y []float64) {
	f := e.driftFactor(e.age[p])
	//sophielint:ignore floateq driftFactor returns the literal 1 on the no-drift path; this gates the scaling loop exactly
	if f != 1 {
		for i := range y {
			y[i] *= f
		}
	}
}

// Refresh reprograms array p from its reference tile and resets its
// drift age. It costs a programming event in the counters, exactly like
// a scheduling reprogram.
func (e *DriftEngine) Refresh(p int) error {
	if p < 0 || p >= len(e.tiles) {
		return fmt.Errorf("opcm: refresh index %d out of range [0,%d)", p, len(e.tiles))
	}
	if err := e.Engine.Reprogram(p, e.tiles[p]); err != nil {
		return err
	}
	e.age[p] = 0
	return nil
}

// RefreshAll refreshes every array.
func (e *DriftEngine) RefreshAll() error {
	for p := range e.tiles {
		if err := e.Refresh(p); err != nil {
			return err
		}
	}
	return nil
}

// MaxDriftError returns the worst-case relative weight error across
// arrays at the current device time: 1 - driftFactor(oldest age).
func (e *DriftEngine) MaxDriftError() float64 {
	oldest := 0.0
	for _, a := range e.age {
		if a > oldest {
			oldest = a
		}
	}
	return 1 - e.driftFactor(oldest)
}
