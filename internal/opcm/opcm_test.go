package opcm

import (
	"math"
	"math/rand"
	"testing"

	"sophie/internal/linalg"
	"sophie/internal/tiling"
)

func randomTiles(n, count int, seed int64) []*linalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	tiles := make([]*linalg.Matrix, count)
	for t := range tiles {
		m := linalg.NewMatrix(n, n)
		for i := range m.Data() {
			m.Data()[i] = rng.NormFloat64()
		}
		tiles[t] = m
	}
	return tiles
}

func TestParamsValidation(t *testing.T) {
	tiles := randomTiles(4, 1, 1)
	bad := []Params{
		{CellBits: 0, ADCBits: 8},
		{CellBits: 20, ADCBits: 8},
		{CellBits: 6, ADCBits: 0},
		{CellBits: 6, ADCBits: 30},
		{CellBits: 6, ADCBits: 8, ReadNoise: -1},
		{CellBits: 6, ADCBits: 8, StuckCellFraction: 2},
	}
	for i, p := range bad {
		if _, err := NewEngine(tiles, 0, p); err == nil {
			t.Errorf("params %d should be rejected: %+v", i, p)
		}
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, 0, DefaultParams()); err == nil {
		t.Fatal("empty tile list must be rejected")
	}
	mixed := []*linalg.Matrix{linalg.NewMatrix(2, 2), linalg.NewMatrix(3, 3)}
	if _, err := NewEngine(mixed, 0, DefaultParams()); err == nil {
		t.Fatal("inconsistent tile sizes must be rejected")
	}
	big := randomTiles(4, 1, 1)
	if _, err := NewEngine(big, 1e-6, DefaultParams()); err == nil {
		t.Fatal("out-of-scale values must be rejected")
	}
}

func TestEngineImplementsTilingEngine(t *testing.T) {
	var _ tiling.Engine = (*Engine)(nil)
}

func TestMulApproximatesIdeal(t *testing.T) {
	tiles := randomTiles(16, 3, 2)
	e, err := NewEngine(tiles, 0, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 16)
	for i := range x {
		x[i] = float64(rng.Intn(2)) // binary inputs, as in hardware
	}
	for p, tile := range tiles {
		want, _ := tile.MulVec(x, nil)
		got := make([]float64, 16)
		e.Mul(p, false, x, got)
		// 6-bit quantization error per element is <= scale/2/63; over 16
		// accumulated terms the error stays well within this bound.
		maxErr := 16 * e.scale / 63
		for i := range got {
			if math.Abs(got[i]-want[i]) > maxErr {
				t.Fatalf("pair %d out %d: %v vs ideal %v (bound %v)", p, i, got[i], want[i], maxErr)
			}
		}
	}
}

func TestMulTransposedMatchesTranspose(t *testing.T) {
	tiles := randomTiles(8, 1, 4)
	e, err := NewEngine(tiles, 0, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 0, 1, 1, 0, 0, 1, 0}
	fwdOfTranspose := make([]float64, 8)
	viaTransposed := make([]float64, 8)
	e.Mul(0, true, x, viaTransposed)
	// Build an engine from the explicitly transposed tile for reference.
	et, err := NewEngine([]*linalg.Matrix{tiles[0].Transpose()}, e.scale, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	et.Mul(0, false, x, fwdOfTranspose)
	for i := range viaTransposed {
		if math.Abs(viaTransposed[i]-fwdOfTranspose[i]) > 1e-12 {
			t.Fatalf("transposed read differs at %d: %v vs %v", i, viaTransposed[i], fwdOfTranspose[i])
		}
	}
}

func TestQuantizationImprovesWithBits(t *testing.T) {
	tiles := randomTiles(12, 2, 5)
	var prev float64 = math.Inf(1)
	for _, bits := range []int{2, 4, 6, 8} {
		e, err := NewEngine(tiles, 0, Params{CellBits: bits, ADCBits: 8})
		if err != nil {
			t.Fatal(err)
		}
		qe, err := e.QuantizationError(tiles)
		if err != nil {
			t.Fatal(err)
		}
		if qe > prev+1e-12 {
			t.Fatalf("quantization error grew from %v to %v at %d bits", prev, qe, bits)
		}
		// Error must respect the half-step bound.
		bound := e.scale / float64((int(1)<<bits)-1) / 2 * (1 + 1e-9)
		if qe > bound {
			t.Fatalf("%d bits: error %v exceeds half-step bound %v", bits, qe, bound)
		}
		prev = qe
	}
}

func TestQuantizationErrorValidation(t *testing.T) {
	tiles := randomTiles(4, 2, 6)
	e, _ := NewEngine(tiles, 0, DefaultParams())
	if _, err := e.QuantizationError(tiles[:1]); err == nil {
		t.Fatal("mismatched reference count must error")
	}
}

func TestReprogramCountsAndEffect(t *testing.T) {
	tiles := randomTiles(4, 2, 7)
	e, _ := NewEngine(tiles, 0, DefaultParams())
	c0 := e.Counts()
	if c0.OPCMPrograms != 2 {
		t.Fatalf("initial programming count %d, want 2", c0.OPCMPrograms)
	}
	if c0.OPCMCellWrites != 2*2*4*4 {
		t.Fatalf("cell writes %d, want 64", c0.OPCMCellWrites)
	}
	replacement := linalg.NewMatrix(4, 4)
	if err := e.Reprogram(0, replacement); err != nil {
		t.Fatal(err)
	}
	c1 := e.Counts()
	if c1.OPCMPrograms != 3 {
		t.Fatalf("programming count %d after reprogram, want 3", c1.OPCMPrograms)
	}
	y := make([]float64, 4)
	e.Mul(0, false, []float64{1, 1, 1, 1}, y)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("reprogrammed zero tile still multiplies: y[%d]=%v", i, v)
		}
	}
}

func TestReprogramValidation(t *testing.T) {
	tiles := randomTiles(4, 1, 8)
	e, _ := NewEngine(tiles, 0, DefaultParams())
	if err := e.Reprogram(5, tiles[0]); err == nil {
		t.Fatal("out-of-range pair must error")
	}
	if err := e.Reprogram(0, linalg.NewMatrix(3, 3)); err == nil {
		t.Fatal("wrong shape must error")
	}
	huge := linalg.NewMatrix(4, 4)
	huge.Set(0, 0, e.scale*10)
	if err := e.Reprogram(0, huge); err == nil {
		t.Fatal("over-scale tile must error")
	}
}

func TestReadNoiseIsApplied(t *testing.T) {
	tiles := randomTiles(8, 1, 9)
	noisy, _ := NewEngine(tiles, 0, Params{CellBits: 6, ADCBits: 8, ReadNoise: 0.05, Seed: 1})
	clean, _ := NewEngine(tiles, 0, Params{CellBits: 6, ADCBits: 8})
	x := []float64{1, 1, 0, 1, 0, 1, 1, 0}
	a := make([]float64, 8)
	b := make([]float64, 8)
	noisy.Mul(0, false, x, a)
	clean.Mul(0, false, x, b)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("read noise had no effect")
	}
}

func TestStuckCellsPerturbProgramming(t *testing.T) {
	tiles := randomTiles(16, 1, 10)
	faulty, _ := NewEngine(tiles, 0, Params{CellBits: 6, ADCBits: 8, StuckCellFraction: 0.5, Seed: 2})
	qe, err := faulty.QuantizationError(tiles)
	if err != nil {
		t.Fatal(err)
	}
	healthyBound := faulty.scale / 63 / 2 * (1 + 1e-9)
	if qe <= healthyBound {
		t.Fatalf("50%% stuck cells produced error %v within the healthy bound %v", qe, healthyBound)
	}
}

func TestQuantizeReadout(t *testing.T) {
	tiles := randomTiles(4, 1, 11)
	e, _ := NewEngine(tiles, 0, DefaultParams())
	fs := e.fullScaleOutput()
	v := []float64{0, fs / 2, -fs / 3, fs * 2, -fs * 2}
	e.QuantizeReadout(v)
	if v[0] != 0 {
		t.Fatalf("zero moved to %v", v[0])
	}
	if math.Abs(v[1]-fs/2) > fs/127 {
		t.Fatalf("mid-scale quantization too coarse: %v", v[1])
	}
	if v[3] != fs || v[4] != -fs {
		t.Fatalf("clipping failed: %v %v", v[3], v[4])
	}
	// Idempotence: re-quantizing must not move values.
	w := append([]float64(nil), v...)
	e.QuantizeReadout(w)
	for i := range w {
		if w[i] != v[i] {
			t.Fatal("readout quantization must be idempotent")
		}
	}
}

func TestWorstPathLossMonotone(t *testing.T) {
	p := DefaultOpticalParams()
	prev := 0.0
	for _, n := range []int{1, 2, 8, 64, 256} {
		loss, err := p.WorstPathLossDB(n)
		if err != nil {
			t.Fatal(err)
		}
		if loss < prev {
			t.Fatalf("loss decreased with array size: %v -> %v at n=%d", prev, loss, n)
		}
		prev = loss
	}
	if _, err := p.WorstPathLossDB(0); err == nil {
		t.Fatal("invalid size must error")
	}
}

func TestLaserPowerCalibration(t *testing.T) {
	// The paper reports 469 mW per wavelength for the 64x64 configuration.
	p := DefaultOpticalParams()
	got, err := p.LaserPowerPerWavelengthW(64)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.44 || got > 0.50 {
		t.Fatalf("laser power per wavelength at n=64: %v W, want ~0.469 W", got)
	}
	total, err := p.TotalLaserPowerW(64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-got*64) > 1e-9 {
		t.Fatal("total laser power must be per-wavelength x n")
	}
}

func TestOpticalParamsValidation(t *testing.T) {
	p := DefaultOpticalParams()
	p.QuantumEfficiency = 0
	if _, err := p.WorstPathLossDB(8); err == nil {
		t.Fatal("zero efficiency must error")
	}
	p = DefaultOpticalParams()
	p.GSTLossDB = -1
	if _, err := p.WorstPathLossDB(8); err == nil {
		t.Fatal("negative loss must error")
	}
	p = DefaultOpticalParams()
	p.DetectorPowerW = 0
	if _, err := p.LaserPowerPerWavelengthW(8); err == nil {
		t.Fatal("zero detector power must error")
	}
}

func BenchmarkOPCMMul64(b *testing.B) {
	tiles := randomTiles(64, 1, 42)
	e, err := NewEngine(tiles, 0, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = float64(i % 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Mul(0, i%2 == 1, x, y)
	}
}

func BenchmarkOPCMProgram64(b *testing.B) {
	tiles := randomTiles(64, 1, 43)
	e, err := NewEngine(tiles, 0, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Reprogram(0, tiles[0]); err != nil {
			b.Fatal(err)
		}
	}
}
