package tiling

import (
	"math"
	"math/rand"
	"testing"

	"sophie/internal/linalg"
)

// Compile-time guarantees: the ideal engine provides the fast-path
// interfaces the solver feature-detects.
var (
	_ DeltaEngine  = (*IdealEngine)(nil)
	_ BinaryEngine = (*IdealEngine)(nil)
)

func randomTiles(rng *rand.Rand, n, size int) []*linalg.Matrix {
	tiles := make([]*linalg.Matrix, n)
	for p := range tiles {
		m := linalg.NewMatrix(size, size)
		for i := 0; i < size; i++ {
			row := m.Row(i)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
		}
		tiles[p] = m
	}
	return tiles
}

// TestIdealEngineMulBinaryBitIdentical checks the engine-level binary
// kernel against Mul on binary inputs, bit for bit, both directions.
func TestIdealEngineMulBinaryBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const size = 17
	e, err := NewIdealEngine(randomTiles(rng, 3, size))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, size)
	for i := range x {
		x[i] = float64(rng.Intn(2))
	}
	want := make([]float64, size)
	got := make([]float64, size)
	for p := 0; p < e.Pairs(); p++ {
		for _, transposed := range []bool{false, true} {
			e.Mul(p, transposed, x, want)
			e.MulBinary(p, transposed, x, got)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("pair %d transposed=%v: MulBinary[%d]=%v differs from Mul %v", p, transposed, i, got[i], want[i])
				}
			}
		}
	}
}

// TestIdealEngineMulDeltaTracksMul drives random flip sequences through
// MulDelta and checks the patched product tracks a from-scratch Mul of
// the current vector within float tolerance, in both directions.
func TestIdealEngineMulDeltaTracksMul(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const size = 23
	e, err := NewIdealEngine(randomTiles(rng, 2, size))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < e.Pairs(); p++ {
		for _, transposed := range []bool{false, true} {
			x := make([]float64, size)
			for i := range x {
				x[i] = float64(rng.Intn(2))
			}
			y := make([]float64, size)
			e.MulBinary(p, transposed, x, y)
			for step := 0; step < 60; step++ {
				// Flip a random subset, as threshold does per iteration.
				var flips []int
				var signs []float64
				for j := range x {
					if rng.Float64() < 0.2 {
						flips = append(flips, j)
						signs = append(signs, 1-2*x[j])
						x[j] = 1 - x[j]
					}
				}
				e.MulDelta(p, transposed, flips, signs, y)
			}
			want := make([]float64, size)
			e.Mul(p, transposed, x, want)
			for i := range want {
				if math.Abs(want[i]-y[i]) > 1e-9 {
					t.Fatalf("pair %d transposed=%v: delta-tracked y[%d]=%v, dense %v", p, transposed, i, y[i], want[i])
				}
			}
		}
	}
}
