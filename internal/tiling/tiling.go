// Package tiling decomposes the n×n transformation matrix C into square
// tiles and organizes them as the symmetric tile pairs SOPHIE maps onto
// physical OPCM arrays (Sections III-A1 and III-D). A pair (i,j) with
// i ≤ j owns tiles C_ij and C_ji = C_ijᵀ; because a bi-directional OPCM
// array can multiply by the stored matrix and its transpose (Eq. 8-9),
// one physical array stores both tiles — the "symmetric tile mapping"
// that halves the OPCM area.
package tiling

import (
	"fmt"

	"sophie/internal/linalg"
	"sophie/internal/trace"
)

// Grid describes a square tiling of an n×n matrix into tiles×tiles
// blocks of size TileSize, zero-padded at the boundary.
type Grid struct {
	// N is the logical matrix order (number of spins).
	N int
	// TileSize is the tile edge length (the OPCM array order).
	TileSize int
	// Tiles is ceil(N / TileSize), the tile-grid edge length.
	Tiles int
}

// NewGrid validates and builds a grid. TileSize may exceed N, producing
// a 1x1 grid — the untiled case used when the whole problem fits in one
// OPCM array.
func NewGrid(n, tileSize int) (*Grid, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tiling: matrix order must be positive, got %d", n)
	}
	if tileSize <= 0 {
		return nil, fmt.Errorf("tiling: tile size must be positive, got %d", tileSize)
	}
	return &Grid{N: n, TileSize: tileSize, Tiles: (n + tileSize - 1) / tileSize}, nil
}

// PaddedN returns Tiles*TileSize, the zero-padded matrix order.
func (g *Grid) PaddedN() int { return g.Tiles * g.TileSize }

// Pair identifies an unordered pair of symmetric tiles; Row <= Col
// always holds. A diagonal pair (Row == Col) is its own transpose.
type Pair struct {
	Row, Col int
}

// IsDiagonal reports whether the pair lies on the grid diagonal.
func (p Pair) IsDiagonal() bool { return p.Row == p.Col }

// PairCount returns the number of symmetric tile pairs,
// Tiles*(Tiles+1)/2 — the number of physical OPCM arrays needed, about
// half the Tiles² logical tiles (the paper's area saving).
func (g *Grid) PairCount() int { return g.Tiles * (g.Tiles + 1) / 2 }

// Pairs enumerates all symmetric pairs in canonical (row-major upper
// triangle) order, matching PairIndex.
func (g *Grid) Pairs() []Pair {
	ps := make([]Pair, 0, g.PairCount())
	for i := 0; i < g.Tiles; i++ {
		for j := i; j < g.Tiles; j++ {
			ps = append(ps, Pair{Row: i, Col: j})
		}
	}
	return ps
}

// PairIndex returns the canonical index of pair (i,j), i ≤ j, in the
// Pairs() ordering. It panics on an out-of-range or unnormalized pair.
func (g *Grid) PairIndex(i, j int) int {
	if i < 0 || j < i || j >= g.Tiles {
		panic(fmt.Sprintf("tiling: invalid pair (%d,%d) for %d tiles", i, j, g.Tiles))
	}
	// Row i starts after rows 0..i-1, which contribute Tiles-k entries each.
	return i*g.Tiles - i*(i-1)/2 + (j - i)
}

// BlockRange returns the [lo,hi) index range of tile-block b in the
// padded vector space.
func (g *Grid) BlockRange(b int) (lo, hi int) {
	if b < 0 || b >= g.Tiles {
		panic(fmt.Sprintf("tiling: block %d out of range [0,%d)", b, g.Tiles))
	}
	return b * g.TileSize, (b + 1) * g.TileSize
}

// Block returns the view of tile-block b within a padded vector.
// The returned slice aliases v.
func (g *Grid) Block(v []float64, b int) []float64 {
	lo, hi := g.BlockRange(b)
	return v[lo:hi]
}

// PadVector copies v (length N) into a freshly allocated padded vector
// of length PaddedN, zero-filling the tail.
func (g *Grid) PadVector(v []float64) []float64 {
	if len(v) != g.N {
		panic(fmt.Sprintf("tiling: PadVector got length %d, want %d", len(v), g.N))
	}
	p := make([]float64, g.PaddedN())
	copy(p, v)
	return p
}

// DecomposePairs extracts the upper-triangle tiles of the symmetric
// matrix c according to the grid: result[PairIndex(i,j)] = C_ij
// (TileSize×TileSize, zero-padded at the boundary). The lower-triangle
// tiles are not materialized — C_ji is accessed as C_ijᵀ through the
// bi-directional MVM, exactly as the hardware stores them.
func DecomposePairs(c *linalg.Matrix, g *Grid) ([]*linalg.Matrix, error) {
	if c.Rows() != g.N || c.Cols() != g.N {
		return nil, fmt.Errorf("tiling: matrix is %dx%d, grid expects %dx%d", c.Rows(), c.Cols(), g.N, g.N)
	}
	out := make([]*linalg.Matrix, 0, g.PairCount())
	t := g.TileSize
	for i := 0; i < g.Tiles; i++ {
		for j := i; j < g.Tiles; j++ {
			out = append(out, c.SubMatrix(i*t, (i+1)*t, j*t, (j+1)*t))
		}
	}
	return out, nil
}

// Reassemble reconstructs the full padded matrix from upper-triangle
// tiles, mirroring C_ji = C_ijᵀ. Used to verify the decomposition round
// trips and by tests of the device-programmed state.
func Reassemble(tiles []*linalg.Matrix, g *Grid) (*linalg.Matrix, error) {
	if len(tiles) != g.PairCount() {
		return nil, fmt.Errorf("tiling: %d tiles for a grid needing %d", len(tiles), g.PairCount())
	}
	t := g.TileSize
	full := linalg.NewMatrix(g.PaddedN(), g.PaddedN())
	for i := 0; i < g.Tiles; i++ {
		for j := i; j < g.Tiles; j++ {
			tile := tiles[g.PairIndex(i, j)]
			if tile.Rows() != t || tile.Cols() != t {
				return nil, fmt.Errorf("tiling: tile (%d,%d) is %dx%d, want %dx%d", i, j, tile.Rows(), tile.Cols(), t, t)
			}
			for r := 0; r < t; r++ {
				for cc := 0; cc < t; cc++ {
					v := tile.At(r, cc)
					full.Set(i*t+r, j*t+cc, v)
					full.Set(j*t+cc, i*t+r, v)
				}
			}
		}
	}
	return full, nil
}

// Engine performs the tile matrix-vector products of the solver. The
// ideal implementation multiplies exactly; internal/opcm provides a
// quantized, noisy device-model implementation with the same contract.
type Engine interface {
	// Mul computes y = T·x (transposed=false) or y = Tᵀ·x
	// (transposed=true) for the tile stored at pair index p. len(x) and
	// len(y) must equal the grid tile size. Implementations must not
	// retain x or y.
	Mul(p int, transposed bool, x, y []float64)
	// TileSize returns the tile edge length.
	TileSize() int
	// Pairs returns how many tile pairs are loaded.
	Pairs() int
}

// SessionEngine is an optional extension of Engine for datapaths that
// carry job-scoped mutable state — stochastic streams (read noise) or
// per-job device counters. Session returns a per-job view of the
// engine: it shares the programmed arrays (immutable during runs) but
// owns its RNG state, seeded by seed, so concurrent jobs over one
// programmed engine neither race nor perturb each other's noise
// trajectories. Stateless engines (the ideal engine) do not implement
// it and are shared directly; the solver feature-detects the interface
// per run. Sessions must not be shared across goroutines.
type SessionEngine interface {
	Engine
	Session(seed int64) Engine
}

// TraceSink is an optional extension of Engine for datapaths that can
// tag device-level execution events (per-array MVMs, reprogramming)
// onto the run's event spine. AttachTrace hands the engine view the
// recorder to emit into; implementations must treat a nil recorder as
// "detached" and must only be attached before the view starts serving
// MVMs (the solver attaches per-job sessions inside run setup, before
// any PE worker exists). The ideal engine does not implement it — it
// has no device plane; the opcm device model's sessions do.
type TraceSink interface {
	AttachTrace(rec *trace.Recorder)
}

// DeltaEngine is an optional fast-path extension of Engine for
// flip-aware incremental computation. When only a few input spins flip
// between consecutive local iterations, a previously computed product
// can be patched in O(flips·t) instead of recomputed in O(t²). The
// solver feature-detects this interface and falls back to full Mul
// when the engine does not provide it; the opcm device model
// deliberately does not, because its per-call noise draws are part of
// the device semantics and cannot be decomposed per column.
type DeltaEngine interface {
	Engine
	// MulDelta patches a previously computed product in place:
	// for each k, y += signs[k] · column flips[k] of T (transposed
	// =false) or of Tᵀ (transposed=true) for the tile stored at pair
	// index p. flips and signs must have equal length; signs are the
	// input-element changes (±1 for binary spins). Implementations
	// must not retain the slices.
	MulDelta(p int, transposed bool, flips []int, signs []float64, y []float64)
}

// BinaryEngine is an optional exact kernel for {0,1} input vectors.
// Implementations must return results bit-identical to Mul for binary
// x (the ideal engine's column-gather kernel satisfies this; see
// linalg.MulVecBinary). The solver uses it for the periodic full
// recomputations that anchor the incremental datapath.
type BinaryEngine interface {
	MulBinary(p int, transposed bool, x, y []float64)
}

// IdealEngine computes exact float64 tile MVMs — the functional
// simulator's reference datapath. It also implements DeltaEngine and
// BinaryEngine for the solver's flip-aware fast path.
type IdealEngine struct {
	tiles []*linalg.Matrix
	size  int
}

// NewIdealEngine wraps decomposed tiles. All tiles must be square with
// the same size. The column-major mirrors backing the delta/binary
// kernels are built eagerly here so concurrent jobs sharing the engine
// never race on lazy cache construction.
func NewIdealEngine(tiles []*linalg.Matrix) (*IdealEngine, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("tiling: no tiles")
	}
	size := tiles[0].Rows()
	for i, tl := range tiles {
		if tl.Rows() != size || tl.Cols() != size {
			return nil, fmt.Errorf("tiling: tile %d is %dx%d, want %dx%d", i, tl.Rows(), tl.Cols(), size, size)
		}
		tl.ColMirror()
	}
	return &IdealEngine{tiles: tiles, size: size}, nil
}

// Mul implements Engine.
func (e *IdealEngine) Mul(p int, transposed bool, x, y []float64) {
	tile := e.tiles[p]
	var err error
	if transposed {
		_, err = tile.MulVecT(x, y)
	} else {
		_, err = tile.MulVec(x, y)
	}
	if err != nil {
		panic(err) // sizes are validated at construction; misuse is a bug
	}
}

// MulBinary implements BinaryEngine: an exact column-gather product
// for {0,1} inputs, bit-identical to Mul on binary vectors.
func (e *IdealEngine) MulBinary(p int, transposed bool, x, y []float64) {
	tile := e.tiles[p]
	var err error
	if transposed {
		_, err = tile.MulVecBinaryT(x, y)
	} else {
		_, err = tile.MulVecBinary(x, y)
	}
	if err != nil {
		panic(err) // sizes are validated at construction; misuse is a bug
	}
}

// MulDelta implements DeltaEngine: it patches y with the flipped
// columns. Column j of Tᵀ is row j of T, so the transposed update
// streams the stored row directly; the forward update streams the
// cached column-major mirror.
func (e *IdealEngine) MulDelta(p int, transposed bool, flips []int, signs []float64, y []float64) {
	tile := e.tiles[p]
	for k, j := range flips {
		var err error
		if transposed {
			err = tile.AccumulateRow(y, j, signs[k])
		} else {
			err = tile.AccumulateColumn(y, j, signs[k])
		}
		if err != nil {
			panic(err) // sizes are validated at construction; misuse is a bug
		}
	}
}

// TileSize implements Engine.
func (e *IdealEngine) TileSize() int { return e.size }

// Pairs implements Engine.
func (e *IdealEngine) Pairs() int { return len(e.tiles) }
