package tiling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sophie/internal/linalg"
)

func randomSym(n int, seed int64) *linalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 4); err == nil {
		t.Fatal("zero order must be rejected")
	}
	if _, err := NewGrid(4, 0); err == nil {
		t.Fatal("zero tile size must be rejected")
	}
}

func TestGridShapes(t *testing.T) {
	g, err := NewGrid(100, 32)
	if err != nil {
		t.Fatal(err)
	}
	if g.Tiles != 4 || g.PaddedN() != 128 {
		t.Fatalf("grid %+v padded %d", g, g.PaddedN())
	}
	if g.PairCount() != 10 {
		t.Fatalf("PairCount %d, want 10", g.PairCount())
	}
	// Tile larger than the matrix: single tile.
	g2, _ := NewGrid(10, 64)
	if g2.Tiles != 1 || g2.PairCount() != 1 {
		t.Fatalf("oversized tile grid %+v", g2)
	}
}

func TestPairIndexMatchesEnumeration(t *testing.T) {
	g, _ := NewGrid(100, 20) // 5x5 tiles
	pairs := g.Pairs()
	if len(pairs) != g.PairCount() {
		t.Fatalf("Pairs() length %d, want %d", len(pairs), g.PairCount())
	}
	for idx, p := range pairs {
		if g.PairIndex(p.Row, p.Col) != idx {
			t.Fatalf("PairIndex(%d,%d)=%d, want %d", p.Row, p.Col, g.PairIndex(p.Row, p.Col), idx)
		}
		if p.Row > p.Col {
			t.Fatalf("unnormalized pair %+v", p)
		}
	}
}

func TestPairIndexPanics(t *testing.T) {
	g, _ := NewGrid(100, 20)
	for _, bad := range [][2]int{{-1, 0}, {2, 1}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("PairIndex(%d,%d) should panic", bad[0], bad[1])
				}
			}()
			g.PairIndex(bad[0], bad[1])
		}()
	}
}

func TestIsDiagonal(t *testing.T) {
	if !(Pair{2, 2}).IsDiagonal() {
		t.Fatal("diagonal pair misclassified")
	}
	if (Pair{1, 2}).IsDiagonal() {
		t.Fatal("off-diagonal pair misclassified")
	}
}

func TestBlockHelpers(t *testing.T) {
	g, _ := NewGrid(10, 4) // 3 tiles, padded 12
	v := g.PadVector([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if len(v) != 12 || v[10] != 0 || v[11] != 0 {
		t.Fatalf("padding wrong: %v", v)
	}
	b1 := g.Block(v, 1)
	if len(b1) != 4 || b1[0] != 4 {
		t.Fatalf("block 1 = %v", b1)
	}
	b1[0] = 99
	if v[4] != 99 {
		t.Fatal("Block must alias the padded vector")
	}
	lo, hi := g.BlockRange(2)
	if lo != 8 || hi != 12 {
		t.Fatalf("BlockRange(2) = [%d,%d)", lo, hi)
	}
}

func TestBlockPanics(t *testing.T) {
	g, _ := NewGrid(10, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.BlockRange(3)
}

func TestPadVectorPanicsOnWrongLength(t *testing.T) {
	g, _ := NewGrid(10, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.PadVector(make([]float64, 9))
}

func TestDecomposeReassembleRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, tile int }{{16, 4}, {10, 4}, {7, 7}, {5, 8}, {33, 8}} {
		g, err := NewGrid(tc.n, tc.tile)
		if err != nil {
			t.Fatal(err)
		}
		c := randomSym(tc.n, int64(tc.n*100+tc.tile))
		tiles, err := DecomposePairs(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if len(tiles) != g.PairCount() {
			t.Fatalf("n=%d t=%d: %d tiles, want %d", tc.n, tc.tile, len(tiles), g.PairCount())
		}
		full, err := Reassemble(tiles, g)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tc.n; i++ {
			for j := 0; j < tc.n; j++ {
				if full.At(i, j) != c.At(i, j) {
					t.Fatalf("n=%d t=%d: round trip differs at (%d,%d)", tc.n, tc.tile, i, j)
				}
			}
		}
		// Padded region must be zero.
		for i := tc.n; i < g.PaddedN(); i++ {
			for j := 0; j < g.PaddedN(); j++ {
				if full.At(i, j) != 0 {
					t.Fatalf("padding leaked at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestDecomposeValidation(t *testing.T) {
	g, _ := NewGrid(8, 4)
	if _, err := DecomposePairs(linalg.NewMatrix(6, 6), g); err != nil {
	} else {
		t.Fatal("size mismatch must be rejected")
	}
	if _, err := Reassemble(nil, g); err == nil {
		t.Fatal("wrong tile count must be rejected")
	}
	tiles, _ := DecomposePairs(randomSym(8, 1), g)
	tiles[0] = linalg.NewMatrix(2, 2)
	if _, err := Reassemble(tiles, g); err == nil {
		t.Fatal("wrong tile shape must be rejected")
	}
}

func TestIdealEngineMatchesFullMVM(t *testing.T) {
	n, tile := 20, 8
	g, _ := NewGrid(n, tile)
	c := randomSym(n, 3)
	tiles, _ := DecomposePairs(c, g)
	eng, err := NewIdealEngine(tiles)
	if err != nil {
		t.Fatal(err)
	}
	if eng.TileSize() != tile || eng.Pairs() != g.PairCount() {
		t.Fatal("engine metadata wrong")
	}

	rng := rand.New(rand.NewSource(4))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, _ := c.MulVec(x, nil)

	// Assemble y = C·x from tile products: y_i = Σ_j C_ij·x_j where
	// C_ij for i>j is the transpose of the stored pair (j,i).
	xp := g.PadVector(x)
	yp := make([]float64, g.PaddedN())
	buf := make([]float64, tile)
	for i := 0; i < g.Tiles; i++ {
		yi := g.Block(yp, i)
		for j := 0; j < g.Tiles; j++ {
			var p int
			var transposed bool
			if i <= j {
				p = g.PairIndex(i, j)
			} else {
				p = g.PairIndex(j, i)
				transposed = true
			}
			eng.Mul(p, transposed, g.Block(xp, j), buf)
			for k := range yi {
				yi[k] += buf[k]
			}
		}
	}
	for i := 0; i < n; i++ {
		if math.Abs(yp[i]-want[i]) > 1e-9 {
			t.Fatalf("tiled MVM differs at %d: %v vs %v", i, yp[i], want[i])
		}
	}
}

func TestNewIdealEngineValidation(t *testing.T) {
	if _, err := NewIdealEngine(nil); err == nil {
		t.Fatal("empty tile list must be rejected")
	}
	if _, err := NewIdealEngine([]*linalg.Matrix{linalg.NewMatrix(2, 2), linalg.NewMatrix(3, 3)}); err == nil {
		t.Fatal("inconsistent tile sizes must be rejected")
	}
}

// Property: PairCount equals Tiles*(Tiles+1)/2 and PairIndex is a
// bijection onto [0, PairCount).
func TestPairIndexBijectionProperty(t *testing.T) {
	f := func(nRaw, tRaw uint8) bool {
		n := 1 + int(nRaw)%64
		tile := 1 + int(tRaw)%16
		g, err := NewGrid(n, tile)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for i := 0; i < g.Tiles; i++ {
			for j := i; j < g.Tiles; j++ {
				idx := g.PairIndex(i, j)
				if idx < 0 || idx >= g.PairCount() || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return len(seen) == g.PairCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
