package tiling

import (
	"fmt"

	"sophie/internal/linalg"
)

// DecomposePairsCSR extracts the upper-triangle tiles of a symmetric
// CSR matrix according to the grid, the sparse analogue of
// DecomposePairs: result[PairIndex(i,j)] = C_ij as a TileSize-order CSR
// block, zero-padded at the boundary for free (absent rows are empty).
// The lower-triangle tiles are not materialized — C_ji is reached as
// C_ijᵀ through the engine's transposed products. Unlike the dense
// decomposition this never allocates the n×n matrix, which is what
// makes million-spin instances constructible at all.
func DecomposePairsCSR(c *linalg.CSR, g *Grid) ([]*linalg.CSR, error) {
	if c.Order() != g.N {
		return nil, fmt.Errorf("tiling: CSR order %d, grid expects %d", c.Order(), g.N)
	}
	t := g.TileSize
	buckets := make([][]linalg.Entry, g.PairCount())
	c.Scan(func(i, j int, v float64) {
		bi, bj := i/t, j/t
		if bi > bj {
			return // lower triangle: stored as the transpose of pair (bj,bi)
		}
		p := g.PairIndex(bi, bj)
		buckets[p] = append(buckets[p], linalg.Entry{Row: i - bi*t, Col: j - bj*t, Val: v})
	})
	out := make([]*linalg.CSR, len(buckets))
	for p, b := range buckets {
		tile, err := linalg.NewCSRGeneral(t, b)
		if err != nil {
			return nil, err
		}
		out[p] = tile
	}
	return out, nil
}

// SparseEngine computes tile MVMs over CSR tiles — the sparse-first
// datapath for couplings that are a few percent dense. It implements
// the same optional fast-path interfaces as IdealEngine (DeltaEngine,
// BinaryEngine) and, per the linalg bit-exactness contract, every
// product is bit-identical to IdealEngine on the same tiles: the solver
// can switch between them by density without changing a single result
// bit.
//
// The forward and transposed directions each keep their own CSR copy
// (bwd[p] = fwd[p]ᵀ, built eagerly at construction) so both are row
// gathers over sorted rows — the access order the bit-identity contract
// pins. Tiles whose couplings are all exactly ±1 additionally carry a
// popcount form (linalg.CSRBits); the bit-packed kernel is only used
// from per-job sessions, which own the pack scratch.
type SparseEngine struct {
	fwd, bwd         []*linalg.CSR
	fwdBits, bwdBits []*linalg.CSRBits // nil where couplings are not ±1
	size             int
}

// NewSparseEngine wraps decomposed CSR tiles. All tiles must have the
// same order. Transposes and (where the values allow) popcount forms
// are built eagerly so concurrent jobs sharing the engine never race on
// lazy construction.
func NewSparseEngine(tiles []*linalg.CSR) (*SparseEngine, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("tiling: no tiles")
	}
	size := tiles[0].Order()
	e := &SparseEngine{
		fwd:     tiles,
		bwd:     make([]*linalg.CSR, len(tiles)),
		fwdBits: make([]*linalg.CSRBits, len(tiles)),
		bwdBits: make([]*linalg.CSRBits, len(tiles)),
		size:    size,
	}
	for i, tl := range tiles {
		if tl.Order() != size {
			return nil, fmt.Errorf("tiling: tile %d has order %d, want %d", i, tl.Order(), size)
		}
		e.bwd[i] = tl.Transpose()
		if b, ok := linalg.NewCSRBits(tl); ok {
			e.fwdBits[i] = b
			bb, _ := linalg.NewCSRBits(e.bwd[i]) // same values, so always ok
			e.bwdBits[i] = bb
		}
	}
	return e, nil
}

// NewSparseEngineFromDense converts dense tiles to CSR and wraps them —
// the bridge tests and benchmarks use to run both engines over one
// decomposition.
func NewSparseEngineFromDense(tiles []*linalg.Matrix) (*SparseEngine, error) {
	sparse := make([]*linalg.CSR, len(tiles))
	for i, tl := range tiles {
		var entries []linalg.Entry
		for r := 0; r < tl.Rows(); r++ {
			row := tl.Row(r)
			for c, v := range row {
				if v != 0 {
					entries = append(entries, linalg.Entry{Row: r, Col: c, Val: v})
				}
			}
		}
		c, err := linalg.NewCSRGeneral(tl.Rows(), entries)
		if err != nil {
			return nil, err
		}
		sparse[i] = c
	}
	return NewSparseEngine(sparse)
}

// Mul implements Engine. Both directions are row gathers: the forward
// product over the stored tile, the transposed product over its eagerly
// built transpose (whose rows list column j's entries in increasing row
// order — the dense MulVecT accumulation order).
func (e *SparseEngine) Mul(p int, transposed bool, x, y []float64) {
	if transposed {
		e.bwd[p].Apply(x, y)
	} else {
		e.fwd[p].Apply(x, y)
	}
}

// MulBinary implements BinaryEngine with the float binary gather,
// bit-identical to Mul for {0,1} inputs. Per-job sessions route this
// through the popcount kernel when the tile supports it; the base
// engine always takes the float path because the bit-packed scratch is
// per-session state.
func (e *SparseEngine) MulBinary(p int, transposed bool, x, y []float64) {
	if transposed {
		e.bwd[p].ApplyBinary(x, y)
	} else {
		e.fwd[p].ApplyBinary(x, y)
	}
}

// MulDelta implements DeltaEngine: each flip patches y with the flipped
// spin's adjacency row in O(degree). Column j of the tile is row j of
// the transpose; column j of the transposed tile is row j of the tile.
func (e *SparseEngine) MulDelta(p int, transposed bool, flips []int, signs []float64, y []float64) {
	src := e.bwd[p]
	if transposed {
		src = e.fwd[p]
	}
	for k, j := range flips {
		src.AccumulateFlip(y, j, signs[k])
	}
}

// TileSize implements Engine.
func (e *SparseEngine) TileSize() int { return e.size }

// Pairs implements Engine.
func (e *SparseEngine) Pairs() int { return len(e.fwd) }

// Session implements SessionEngine. The sparse engine has no stochastic
// state, so the seed is unused and every session computes identically;
// what a session owns is the per-pair bit-pack scratch behind the
// popcount kernel, which must not be shared across jobs. Within a job
// the solver serializes work per pair, so per-pair scratch is race-free
// across the job's PE workers.
func (e *SparseEngine) Session(seed int64) Engine {
	_ = seed
	return &sparseSession{SparseEngine: e, scratch: make([]linalg.BitVec, len(e.fwd))}
}

// sparseSession is the per-job view: shared immutable tiles plus owned
// pack scratch. It inherits Mul/MulDelta from the engine and overrides
// MulBinary to use the popcount kernel where available — bit-identical
// to the float path by the CSRBits contract, so feature detection on
// the session sees the same Engine/DeltaEngine/BinaryEngine surface.
type sparseSession struct {
	*SparseEngine
	scratch []linalg.BitVec
}

// MulBinary implements BinaryEngine over bit-packed spin words: pack x
// once into the pair's scratch, then AND+popcount per row.
func (s *sparseSession) MulBinary(p int, transposed bool, x, y []float64) {
	b := s.fwdBits[p]
	if transposed {
		b = s.bwdBits[p]
	}
	if b == nil {
		s.SparseEngine.MulBinary(p, transposed, x, y)
		return
	}
	if s.scratch[p] == nil {
		s.scratch[p] = linalg.NewBitVec(s.size)
	}
	s.scratch[p].Pack(x)
	b.ApplyBinary(s.scratch[p], y)
}
