package tiling

import (
	"math"
	"math/rand"
	"testing"

	"sophie/internal/linalg"
)

// randomSparseSym builds a random symmetric matrix with ~density
// off-diagonal fill; unit selects ±1 couplings.
func randomSparseSym(n int, density float64, unit bool, seed int64) *linalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() >= density {
				continue
			}
			v := rng.NormFloat64()
			if unit {
				v = 1
				if rng.Intn(2) == 0 {
					v = -1
				}
			}
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func bothEngines(t *testing.T, m *linalg.Matrix, g *Grid) (*IdealEngine, *SparseEngine) {
	t.Helper()
	dense, err := DecomposePairs(m, g)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := NewIdealEngine(dense)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := linalg.NewCSRFromDense(m)
	if err != nil {
		t.Fatal(err)
	}
	tiles, err := DecomposePairsCSR(csr, g)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSparseEngine(tiles)
	if err != nil {
		t.Fatal(err)
	}
	return ideal, sparse
}

func requireBits(t *testing.T, label string, want, got []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: element %d: %v vs %v", label, i, got[i], want[i])
		}
	}
}

// TestDecomposePairsCSRMatchesDense checks the CSR tile decomposition
// element-wise against the dense SubMatrix decomposition, including the
// zero-padded boundary tiles.
func TestDecomposePairsCSRMatchesDense(t *testing.T) {
	m := randomSparseSym(50, 0.15, false, 91)
	g, _ := NewGrid(50, 16) // 4x4 tiles, padded to 64
	denseTiles, err := DecomposePairs(m, g)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := linalg.NewCSRFromDense(m)
	if err != nil {
		t.Fatal(err)
	}
	sparseTiles, err := DecomposePairsCSR(csr, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(sparseTiles) != len(denseTiles) {
		t.Fatalf("%d sparse tiles, %d dense", len(sparseTiles), len(denseTiles))
	}
	for p := range denseTiles {
		for r := 0; r < g.TileSize; r++ {
			for c := 0; c < g.TileSize; c++ {
				if math.Float64bits(sparseTiles[p].At(r, c)) != math.Float64bits(denseTiles[p].At(r, c)) {
					t.Fatalf("tile %d (%d,%d): %v vs %v", p, r, c, sparseTiles[p].At(r, c), denseTiles[p].At(r, c))
				}
			}
		}
	}
}

// TestSparseEngineBitIdenticalToIdeal drives every engine kernel —
// Mul/MulBinary both directions, MulDelta with mixed signs, and the
// session popcount path — and requires bit-identity with IdealEngine.
func TestSparseEngineBitIdenticalToIdeal(t *testing.T) {
	for _, tc := range []struct {
		name string
		unit bool
	}{{"gaussian", false}, {"pm1-popcount", true}} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(92))
			m := randomSparseSym(70, 0.12, tc.unit, 92)
			g, _ := NewGrid(70, 24)
			ideal, sparse := bothEngines(t, m, g)
			if sparse.TileSize() != ideal.TileSize() || sparse.Pairs() != ideal.Pairs() {
				t.Fatalf("shape mismatch: %d/%d vs %d/%d", sparse.TileSize(), sparse.Pairs(), ideal.TileSize(), ideal.Pairs())
			}
			sess := sparse.Session(7)
			sessB, ok := sess.(BinaryEngine)
			if !ok {
				t.Fatal("sparse session must keep BinaryEngine")
			}
			if _, ok := sess.(DeltaEngine); !ok {
				t.Fatal("sparse session must keep DeltaEngine")
			}
			ts := g.TileSize
			xf := make([]float64, ts)
			xb := make([]float64, ts)
			want := make([]float64, ts)
			got := make([]float64, ts)
			for p := 0; p < sparse.Pairs(); p++ {
				for _, transposed := range []bool{false, true} {
					for i := range xf {
						xf[i] = rng.NormFloat64()
						xb[i] = float64(rng.Intn(2))
					}
					ideal.Mul(p, transposed, xf, want)
					sparse.Mul(p, transposed, xf, got)
					requireBits(t, "Mul", want, got)

					ideal.MulBinary(p, transposed, xb, want)
					sparse.MulBinary(p, transposed, xb, got)
					requireBits(t, "MulBinary", want, got)
					sessB.MulBinary(p, transposed, xb, got)
					requireBits(t, "session MulBinary", want, got)

					flips := []int{0, ts / 3, ts - 1, ts / 3}
					signs := []float64{1, -1, -1, 1}
					ideal.Mul(p, transposed, xf, want)
					copy(got, want)
					ideal.MulDelta(p, transposed, flips, signs, want)
					sparse.MulDelta(p, transposed, flips, signs, got)
					requireBits(t, "MulDelta", want, got)
				}
			}
		})
	}
}

// TestNewSparseEngineValidation covers shape rejection.
func TestNewSparseEngineValidation(t *testing.T) {
	if _, err := NewSparseEngine(nil); err == nil {
		t.Fatal("empty tile list must be rejected")
	}
	a, _ := linalg.NewCSRGeneral(4, nil)
	b, _ := linalg.NewCSRGeneral(5, nil)
	if _, err := NewSparseEngine([]*linalg.CSR{a, b}); err == nil {
		t.Fatal("mismatched tile orders must be rejected")
	}
	g, _ := NewGrid(10, 4)
	if _, err := DecomposePairsCSR(b, g); err == nil {
		t.Fatal("order/grid mismatch must be rejected")
	}
}
