package baseline

import (
	"fmt"
	"math/rand"

	"sophie/internal/graph"
)

// BLSConfig controls the breakout-style local search (after Benlic &
// Hao 2013, the CPU heuristic of Table II). This is a lean
// reimplementation: steepest-ascent single-flip local search with
// adaptive random perturbations on stagnation.
type BLSConfig struct {
	// MaxMoves bounds the total number of spin flips.
	MaxMoves int
	// PerturbBase is the initial perturbation size (flips); it grows
	// with consecutive non-improving breakouts and resets on
	// improvement.
	PerturbBase int
	// Seed drives initial state and perturbations.
	Seed int64
}

// DefaultBLSConfig returns settings adequate for GSET-scale instances.
func DefaultBLSConfig() BLSConfig {
	return BLSConfig{MaxMoves: 200000, PerturbBase: 8}
}

// BLSResult extends Result with the cut value, the natural quality
// metric for max-cut.
type BLSResult struct {
	Result
	BestCut float64
}

// BLS runs breakout local search for max-cut on g. It maintains flip
// gains incrementally over the adjacency lists, so each move costs
// O(deg). The returned energy uses the standard K = -A Ising mapping.
func BLS(g *graph.Graph, cfg BLSConfig) (*BLSResult, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("baseline: empty graph")
	}
	if cfg.MaxMoves <= 0 {
		return nil, fmt.Errorf("baseline: move budget must be positive, got %d", cfg.MaxMoves)
	}
	if cfg.PerturbBase <= 0 {
		return nil, fmt.Errorf("baseline: perturbation size must be positive, got %d", cfg.PerturbBase)
	}
	n := g.N()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Adjacency lists.
	type arc struct {
		to int
		w  float64
	}
	adj := make([][]arc, n)
	for _, e := range g.Edges() {
		adj[e.U] = append(adj[e.U], arc{e.V, e.Weight})
		adj[e.V] = append(adj[e.V], arc{e.U, e.Weight})
	}

	spins := make([]int8, n)
	for i := range spins {
		if rng.Intn(2) == 0 {
			spins[i] = -1
		} else {
			spins[i] = 1
		}
	}
	cut := g.CutValue(spins)

	// gain[i] = cut increase from flipping i
	//         = Σ_{j∈N(i)} w_ij·σ_i·σ_j  (same-side edges join the cut,
	//           cut edges leave it).
	gain := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, a := range adj[i] {
			sum += a.w * float64(spins[i]) * float64(spins[a.to])
		}
		gain[i] = sum
	}
	flip := func(i int) {
		for _, a := range adj[i] {
			gain[a.to] -= 2 * a.w * float64(spins[a.to]) * float64(spins[i])
		}
		cut += gain[i]
		gain[i] = -gain[i]
		spins[i] = -spins[i]
	}

	bestCut := cut
	bestSpins := append([]int8(nil), spins...)
	moves := 0
	stagnation := 0
	perturb := cfg.PerturbBase

	for moves < cfg.MaxMoves {
		// Steepest-ascent phase: flip the best strictly improving node.
		improved := true
		for improved && moves < cfg.MaxMoves {
			improved = false
			bi, bg := -1, 0.0
			for i := 0; i < n; i++ {
				if gain[i] > bg {
					bi, bg = i, gain[i]
				}
			}
			if bi >= 0 {
				flip(bi)
				moves++
				improved = true
			}
		}
		if cut > bestCut {
			bestCut = cut
			copy(bestSpins, spins)
			stagnation = 0
			perturb = cfg.PerturbBase
		} else {
			stagnation++
			if stagnation%3 == 0 && perturb < n/2 {
				perturb += cfg.PerturbBase // escalate the breakout
			}
		}
		// Breakout: random perturbation.
		for p := 0; p < perturb && moves < cfg.MaxMoves; p++ {
			flip(rng.Intn(n))
			moves++
		}
	}

	res := &BLSResult{BestCut: bestCut}
	res.BestSpins = bestSpins
	res.Iterations = moves
	// Energy under the max-cut mapping: H = W - 2·cut.
	res.BestEnergy = g.TotalWeight() - 2*bestCut
	return res, nil
}
