package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"sophie/internal/ising"
)

// SBConfig controls ballistic simulated bifurcation (Goto et al. 2021,
// the algorithm behind the multi-FPGA comparator of Table III).
type SBConfig struct {
	// Steps is the number of symplectic Euler time steps.
	Steps int
	// Dt is the integration step.
	Dt float64
	// A0 is the bifurcation parameter's final value; the pump a(t) ramps
	// linearly from 0 to A0 over the run.
	A0 float64
	// C0 scales the coupling term; 0 picks the standard heuristic
	// 0.5/(√N·σ_K) from the SB literature.
	C0 float64
	// Seed randomizes the initial positions.
	Seed int64
}

// DefaultSBConfig returns the standard bSB settings.
func DefaultSBConfig() SBConfig {
	return SBConfig{Steps: 1000, Dt: 0.25, A0: 1}
}

// SimulatedBifurcation runs ballistic SB: positions x evolve under the
// inverted-well potential with perfectly inelastic walls at |x| = 1,
// coupled through the Ising matrix. Spins are sign(x).
func SimulatedBifurcation(m *ising.Model, cfg SBConfig) (*Result, error) {
	if err := validateCommon(m, cfg.Steps); err != nil {
		return nil, err
	}
	if cfg.Dt <= 0 || cfg.A0 <= 0 {
		return nil, fmt.Errorf("baseline: SB needs positive Dt and A0, got %v/%v", cfg.Dt, cfg.A0)
	}
	n := m.N()
	k := m.Coupling()

	c0 := cfg.C0
	if c0 == 0 {
		// Standard heuristic: c0 = 0.5 / (√N · rms(K)).
		sum := 0.0
		cnt := 0
		for i := 0; i < n; i++ {
			row := k.Row(i)
			for j, v := range row {
				if i != j && v != 0 {
					sum += v * v
					cnt++
				}
			}
		}
		rms := 1.0
		if cnt > 0 {
			rms = math.Sqrt(sum / float64(cnt))
		}
		c0 = 0.5 / (math.Sqrt(float64(n)) * rms)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = (rng.Float64() - 0.5) * 0.2
	}
	spins := make([]int8, n)
	snapshot := func() {
		for i := range x {
			if x[i] >= 0 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
	}
	snapshot()
	tr := newTracker(m, spins)

	field := make([]float64, n)
	for step := 1; step <= cfg.Steps; step++ {
		at := cfg.A0 * float64(step) / float64(cfg.Steps)
		// field = K·x (the gradient of the coupling energy -½xᵀKx).
		for i := 0; i < n; i++ {
			row := k.Row(i)
			sum := 0.0
			for j, v := range row {
				sum += v * x[j]
			}
			field[i] = sum
		}
		for i := 0; i < n; i++ {
			y[i] += (-(cfg.A0-at)*x[i] + c0*field[i]) * cfg.Dt
			x[i] += cfg.A0 * y[i] * cfg.Dt
			// Inelastic walls: positions saturate, momentum resets.
			if x[i] > 1 {
				x[i], y[i] = 1, 0
			} else if x[i] < -1 {
				x[i], y[i] = -1, 0
			}
		}
		// Evaluating every step is O(N²) like the step itself.
		snapshot()
		tr.observe(spins)
	}
	return tr.result(cfg.Steps), nil
}
