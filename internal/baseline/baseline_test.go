package baseline

import (
	"math"
	"testing"

	"sophie/internal/graph"
	"sophie/internal/ising"
)

func benchProblem(t testing.TB) (*graph.Graph, *ising.Model) {
	t.Helper()
	g, err := graph.Random(80, 400, graph.WeightUnit, 21)
	if err != nil {
		t.Fatal(err)
	}
	return g, ising.FromMaxCut(g)
}

func assertGoodCut(t *testing.T, name string, g *graph.Graph, spins []int8, frac float64) {
	t.Helper()
	cut := g.CutValue(spins)
	if cut < frac*float64(g.M()) {
		t.Fatalf("%s cut %v of %d edges, want >= %.0f%%", name, cut, g.M(), frac*100)
	}
}

func TestSimulatedAnnealing(t *testing.T) {
	g, m := benchProblem(t)
	res, err := SimulatedAnnealing(m, SAConfig{Sweeps: 300, TStart: 3, TEnd: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertGoodCut(t, "SA", g, res.BestSpins, 0.6)
	if res.BestEnergy != m.Energy(res.BestSpins) {
		t.Fatal("SA best energy inconsistent")
	}
	if res.Iterations != 300 {
		t.Fatalf("SA iterations %d", res.Iterations)
	}
}

func TestSAValidation(t *testing.T) {
	_, m := benchProblem(t)
	bad := []SAConfig{
		{Sweeps: 0, TStart: 1, TEnd: 0.1},
		{Sweeps: 10, TStart: 0, TEnd: 0.1},
		{Sweeps: 10, TStart: 1, TEnd: 0},
		{Sweeps: 10, TStart: 0.1, TEnd: 1},
	}
	for i, cfg := range bad {
		if _, err := SimulatedAnnealing(m, cfg); err == nil {
			t.Errorf("SA config %d should be rejected", i)
		}
	}
}

func TestSADeterministic(t *testing.T) {
	_, m := benchProblem(t)
	cfg := SAConfig{Sweeps: 100, TStart: 3, TEnd: 0.1, Seed: 7}
	a, _ := SimulatedAnnealing(m, cfg)
	b, _ := SimulatedAnnealing(m, cfg)
	if a.BestEnergy != b.BestEnergy {
		t.Fatal("SA nondeterministic for fixed seed")
	}
}

func TestSimulatedBifurcation(t *testing.T) {
	g, m := benchProblem(t)
	res, err := SimulatedBifurcation(m, SBConfig{Steps: 400, Dt: 0.25, A0: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertGoodCut(t, "SB", g, res.BestSpins, 0.6)
}

func TestSBValidation(t *testing.T) {
	_, m := benchProblem(t)
	if _, err := SimulatedBifurcation(m, SBConfig{Steps: 0, Dt: 0.1, A0: 1}); err == nil {
		t.Fatal("zero steps must be rejected")
	}
	if _, err := SimulatedBifurcation(m, SBConfig{Steps: 10, Dt: 0, A0: 1}); err == nil {
		t.Fatal("zero dt must be rejected")
	}
	if _, err := SimulatedBifurcation(m, SBConfig{Steps: 10, Dt: 0.1, A0: 0}); err == nil {
		t.Fatal("zero a0 must be rejected")
	}
}

func TestSBExplicitC0(t *testing.T) {
	g, m := benchProblem(t)
	res, err := SimulatedBifurcation(m, SBConfig{Steps: 400, Dt: 0.25, A0: 1, C0: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertGoodCut(t, "SB-c0", g, res.BestSpins, 0.55)
}

func TestBRIM(t *testing.T) {
	g, m := benchProblem(t)
	res, err := BRIM(m, BRIMConfig{Steps: 800, Dt: 0.05, Bistability: 1, CouplingGain: 0.5, NoiseStd: 0.2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertGoodCut(t, "BRIM", g, res.BestSpins, 0.6)
}

func TestBRIMValidation(t *testing.T) {
	_, m := benchProblem(t)
	if _, err := BRIM(m, BRIMConfig{Steps: 0, Dt: 0.1}); err == nil {
		t.Fatal("zero steps must be rejected")
	}
	if _, err := BRIM(m, BRIMConfig{Steps: 10, Dt: 0}); err == nil {
		t.Fatal("zero dt must be rejected")
	}
	if _, err := BRIM(m, BRIMConfig{Steps: 10, Dt: 0.1, NoiseStd: -1}); err == nil {
		t.Fatal("negative noise must be rejected")
	}
}

func TestBLS(t *testing.T) {
	g, _ := benchProblem(t)
	res, err := BLS(g, BLSConfig{MaxMoves: 20000, PerturbBase: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	assertGoodCut(t, "BLS", g, res.BestSpins, 0.65)
	if got := g.CutValue(res.BestSpins); got != res.BestCut {
		t.Fatalf("BLS reported cut %v but spins give %v", res.BestCut, got)
	}
	wantEnergy := g.TotalWeight() - 2*res.BestCut
	if math.Abs(res.BestEnergy-wantEnergy) > 1e-9 {
		t.Fatal("BLS energy/cut duality broken")
	}
}

func TestBLSValidation(t *testing.T) {
	g, _ := benchProblem(t)
	if _, err := BLS(g, BLSConfig{MaxMoves: 0, PerturbBase: 1}); err == nil {
		t.Fatal("zero moves must be rejected")
	}
	if _, err := BLS(g, BLSConfig{MaxMoves: 10, PerturbBase: 0}); err == nil {
		t.Fatal("zero perturbation must be rejected")
	}
	if _, err := BLS(graph.New(0), DefaultBLSConfig()); err == nil {
		t.Fatal("empty graph must be rejected")
	}
}

func TestBLSBeatsOrMatchesGreedyBaselines(t *testing.T) {
	// On a modest instance BLS (with a healthy budget) should be at
	// least as good as one SA run — it is the strongest CPU baseline in
	// the paper.
	g, m := benchProblem(t)
	bls, err := BLS(g, BLSConfig{MaxMoves: 30000, PerturbBase: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := SimulatedAnnealing(m, SAConfig{Sweeps: 150, TStart: 3, TEnd: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if bls.BestCut < g.CutValue(sa.BestSpins)*0.98 {
		t.Fatalf("BLS cut %v below SA cut %v", bls.BestCut, g.CutValue(sa.BestSpins))
	}
}

func TestExhaustiveGroundTruthSmall(t *testing.T) {
	// All four baselines must find the exact max cut of a tiny instance.
	g, err := graph.Random(12, 30, graph.WeightUniform, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)
	best := math.Inf(-1)
	spins := make([]int8, 12)
	for mask := 0; mask < 1<<12; mask++ {
		for i := range spins {
			if mask&(1<<i) != 0 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		if c := g.CutValue(spins); c > best {
			best = c
		}
	}

	sa, _ := SimulatedAnnealing(m, SAConfig{Sweeps: 500, TStart: 5, TEnd: 0.02, Seed: 9})
	if g.CutValue(sa.BestSpins) != best {
		t.Errorf("SA missed optimum: %v vs %v", g.CutValue(sa.BestSpins), best)
	}
	bls, _ := BLS(g, BLSConfig{MaxMoves: 50000, PerturbBase: 3, Seed: 9})
	if bls.BestCut != best {
		t.Errorf("BLS missed optimum: %v vs %v", bls.BestCut, best)
	}
	sb, _ := SimulatedBifurcation(m, SBConfig{Steps: 2000, Dt: 0.2, A0: 1, Seed: 9})
	if g.CutValue(sb.BestSpins) < best*0.95 {
		t.Errorf("SB far from optimum: %v vs %v", g.CutValue(sb.BestSpins), best)
	}
	// BRIM quality is reported best-case over runs in the paper; take the
	// best of a few seeds.
	brimBest := math.Inf(-1)
	for seed := int64(0); seed < 5; seed++ {
		brim, _ := BRIM(m, BRIMConfig{Steps: 3000, Dt: 0.05, Bistability: 1, CouplingGain: 0.5, NoiseStd: 0.25, Seed: seed})
		if c := g.CutValue(brim.BestSpins); c > brimBest {
			brimBest = c
		}
	}
	if brimBest < best*0.95 {
		t.Errorf("BRIM far from optimum: %v vs %v", brimBest, best)
	}
}

func BenchmarkSimulatedAnnealingSweep(b *testing.B) {
	_, m := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulatedAnnealing(m, SAConfig{Sweeps: 20, TStart: 3, TEnd: 0.1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatedBifurcationSteps(b *testing.B) {
	_, m := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulatedBifurcation(m, SBConfig{Steps: 20, Dt: 0.25, A0: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBLSMoves(b *testing.B) {
	g, _ := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BLS(g, BLSConfig{MaxMoves: 2000, PerturbBase: 5, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
