package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"sophie/internal/ising"
)

// PTConfig controls parallel tempering (replica-exchange Metropolis),
// the strongest general-purpose software baseline in the Ising
// literature; included beyond the paper's comparison set for quality
// cross-checks.
type PTConfig struct {
	// Replicas is the number of temperature rungs.
	Replicas int
	// TMin and TMax bound the geometric temperature ladder.
	TMin, TMax float64
	// Sweeps is the number of Metropolis sweeps per replica.
	Sweeps int
	// ExchangeEvery attempts neighbor swaps after that many sweeps.
	ExchangeEvery int
	// Seed drives all randomness.
	Seed int64
}

// DefaultPTConfig returns a ladder that works well on GSET-scale
// instances.
func DefaultPTConfig() PTConfig {
	return PTConfig{Replicas: 8, TMin: 0.05, TMax: 4, Sweeps: 500, ExchangeEvery: 5}
}

// PTResult extends Result with exchange statistics.
type PTResult struct {
	Result
	// ExchangeRate is the fraction of accepted replica swaps.
	ExchangeRate float64
}

// replica is one temperature rung's state.
type replica struct {
	spins  []int8
	fields []float64
	energy float64
	temp   float64
}

// ParallelTempering runs replica-exchange Metropolis on the model. Each
// replica performs standard single-flip sweeps at its own temperature;
// every ExchangeEvery sweeps, adjacent rungs propose a state swap with
// the usual exp(ΔβΔE) acceptance. Low rungs exploit, high rungs explore,
// and exchanges shuttle good states downward.
func ParallelTempering(m *ising.Model, cfg PTConfig) (*PTResult, error) {
	if err := validateCommon(m, cfg.Sweeps); err != nil {
		return nil, err
	}
	if cfg.Replicas < 2 {
		return nil, fmt.Errorf("baseline: parallel tempering needs >= 2 replicas, got %d", cfg.Replicas)
	}
	if cfg.TMin <= 0 || cfg.TMax <= cfg.TMin {
		return nil, fmt.Errorf("baseline: invalid temperature ladder [%v,%v]", cfg.TMin, cfg.TMax)
	}
	if cfg.ExchangeEvery <= 0 {
		return nil, fmt.Errorf("baseline: exchange period must be positive, got %d", cfg.ExchangeEvery)
	}
	n := m.N()
	k := m.Coupling()
	rng := rand.New(rand.NewSource(cfg.Seed))

	reps := make([]*replica, cfg.Replicas)
	ratio := math.Pow(cfg.TMax/cfg.TMin, 1/float64(cfg.Replicas-1))
	for r := range reps {
		spins := ising.RandomSpins(n, func() bool { return rng.Intn(2) == 0 })
		rep := &replica{
			spins:  spins,
			fields: make([]float64, n),
			temp:   cfg.TMin * math.Pow(ratio, float64(r)),
		}
		for i := 0; i < n; i++ {
			row := k.Row(i)
			sum := 0.0
			for j, kij := range row {
				sum += kij * float64(spins[j])
			}
			rep.fields[i] = sum
		}
		rep.energy = m.Energy(spins)
		reps[r] = rep
	}

	tr := newTracker(m, reps[0].spins)
	for _, rep := range reps {
		tr.observeEnergy(rep.spins, rep.energy)
	}

	attempted, accepted := 0, 0
	for sweep := 1; sweep <= cfg.Sweeps; sweep++ {
		for _, rep := range reps {
			for trial := 0; trial < n; trial++ {
				i := rng.Intn(n)
				delta := 2 * float64(rep.spins[i]) * rep.fields[i]
				if delta <= 0 || rng.Float64() < math.Exp(-delta/rep.temp) {
					old := float64(rep.spins[i])
					rep.spins[i] = -rep.spins[i]
					rep.energy += delta
					row := k.Row(i)
					for j, kij := range row {
						rep.fields[j] -= 2 * old * kij
					}
					if rep.energy < tr.e {
						tr.observeEnergy(rep.spins, rep.energy)
					}
				}
			}
		}
		if sweep%cfg.ExchangeEvery == 0 {
			// Re-anchor every replica's energy on a full Hamiltonian walk
			// before the exchange tests. The sweep loop's rep.energy +=
			// delta accumulates one float rounding per accepted flip; left
			// unchecked, the drift both biases the acceptance rule and
			// leaks into the tracker, ending runs with BestEnergy !=
			// Energy(BestSpins). Exchange boundaries bound the drift to
			// one sweep window.
			for _, rep := range reps {
				rep.energy = m.Energy(rep.spins)
				tr.observeEnergy(rep.spins, rep.energy)
			}
			for r := 0; r+1 < len(reps); r++ {
				a, b := reps[r], reps[r+1]
				attempted++
				dBeta := 1/a.temp - 1/b.temp
				dE := a.energy - b.energy
				if dBeta*dE >= 0 || rng.Float64() < math.Exp(dBeta*dE) {
					// Swap states, keep temperatures in place.
					a.spins, b.spins = b.spins, a.spins
					a.fields, b.fields = b.fields, a.fields
					a.energy, b.energy = b.energy, a.energy
					accepted++
				}
			}
		}
	}
	// Final re-anchor for the sweeps after the last exchange boundary.
	for _, rep := range reps {
		tr.observeEnergy(rep.spins, m.Energy(rep.spins))
	}

	res := &PTResult{}
	res.Result = *tr.result(cfg.Sweeps)
	// The tracked best may still carry an incremental energy recorded
	// mid-window; recompute it exactly so BestEnergy is bit-identical to
	// Energy(BestSpins) by construction.
	res.BestEnergy = m.Energy(res.BestSpins)
	if attempted > 0 {
		res.ExchangeRate = float64(accepted) / float64(attempted)
	}
	return res, nil
}
