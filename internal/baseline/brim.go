package baseline

import (
	"fmt"
	"math/rand"

	"sophie/internal/ising"
)

// BRIMConfig controls the bistable resistively-coupled Ising machine
// simulator (Afoakwa et al., HPCA 2021 — the electric physics-based
// comparator of Table II).
type BRIMConfig struct {
	// Steps is the number of Euler integration steps.
	Steps int
	// Dt is the integration step in units of the node RC constant.
	Dt float64
	// Bistability is the strength of the ±1 latching element (the
	// negative-resistance well).
	Bistability float64
	// CouplingGain scales the resistive coupling currents.
	CouplingGain float64
	// NoiseStd is the per-step annealing noise amplitude; it decays
	// linearly to zero over the run.
	NoiseStd float64
	// Seed drives initial voltages and noise.
	Seed int64
}

// DefaultBRIMConfig returns settings that latch reliably on GSET-scale
// graphs.
func DefaultBRIMConfig() BRIMConfig {
	return BRIMConfig{Steps: 2000, Dt: 0.05, Bistability: 1.0, CouplingGain: 0.5, NoiseStd: 0.2}
}

// BRIM integrates the node-voltage ODE of a bistable resistively-coupled
// Ising machine: each capacitor node carries a voltage v ∈ [-1,1] pushed
// toward ±1 by a bistable element and toward alignment with its
// neighbors by resistive coupling currents proportional to K·v. Spins
// are sign(v). Descending the Hamiltonian H = -½vᵀKv means dv/dt
// follows +K·v.
func BRIM(m *ising.Model, cfg BRIMConfig) (*Result, error) {
	if err := validateCommon(m, cfg.Steps); err != nil {
		return nil, err
	}
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("baseline: BRIM needs positive Dt, got %v", cfg.Dt)
	}
	if cfg.NoiseStd < 0 {
		return nil, fmt.Errorf("baseline: negative noise %v", cfg.NoiseStd)
	}
	n := m.N()
	k := m.Coupling()
	// Normalize each node's coupling current by its own total conductance
	// so the gain setting is graph-independent, as the physical design
	// sizes coupling resistors relative to the node capacitance.
	rowNorm := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, v := range k.Row(i) {
			if v < 0 {
				sum -= v
			} else {
				sum += v
			}
		}
		if sum == 0 {
			sum = 1
		}
		rowNorm[i] = sum
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = (rng.Float64() - 0.5) * 0.1
	}
	spins := make([]int8, n)
	snapshot := func() {
		for i := range v {
			if v[i] >= 0 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
	}
	snapshot()
	tr := newTracker(m, spins)

	for step := 1; step <= cfg.Steps; step++ {
		progress := float64(step) / float64(cfg.Steps)
		anneal := 1 - progress
		// The latch strength ramps up over the run (the machine's
		// annealing schedule): coupling dominates early to sort the
		// spins, bistability locks them late.
		latch := cfg.Bistability * progress
		for i := 0; i < n; i++ {
			row := k.Row(i)
			current := 0.0
			for j, kij := range row {
				current += kij * v[j]
			}
			// Bistable well: v(1-v²) has stable points at ±1.
			dv := latch*v[i]*(1-v[i]*v[i]) + cfg.CouplingGain*current/rowNorm[i]
			if cfg.NoiseStd > 0 {
				dv += rng.NormFloat64() * cfg.NoiseStd * anneal
			}
			v[i] += dv * cfg.Dt
			if v[i] > 1 {
				v[i] = 1
			} else if v[i] < -1 {
				v[i] = -1
			}
		}
		snapshot()
		tr.observe(spins)
	}
	return tr.result(cfg.Steps), nil
}
