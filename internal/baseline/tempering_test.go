package baseline

import (
	"math"
	"testing"

	"sophie/internal/graph"
	"sophie/internal/ising"
)

func TestParallelTempering(t *testing.T) {
	g, m := benchProblem(t)
	res, err := ParallelTempering(m, PTConfig{
		Replicas: 6, TMin: 0.05, TMax: 3, Sweeps: 150, ExchangeEvery: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertGoodCut(t, "PT", g, res.BestSpins, 0.65)
	if res.BestEnergy != m.Energy(res.BestSpins) {
		t.Fatal("PT energy inconsistent")
	}
	if res.ExchangeRate <= 0 || res.ExchangeRate > 1 {
		t.Fatalf("exchange rate %v implausible", res.ExchangeRate)
	}
}

func TestPTValidation(t *testing.T) {
	_, m := benchProblem(t)
	bad := []PTConfig{
		{Replicas: 1, TMin: 0.1, TMax: 1, Sweeps: 10, ExchangeEvery: 1},
		{Replicas: 4, TMin: 0, TMax: 1, Sweeps: 10, ExchangeEvery: 1},
		{Replicas: 4, TMin: 1, TMax: 0.5, Sweeps: 10, ExchangeEvery: 1},
		{Replicas: 4, TMin: 0.1, TMax: 1, Sweeps: 0, ExchangeEvery: 1},
		{Replicas: 4, TMin: 0.1, TMax: 1, Sweeps: 10, ExchangeEvery: 0},
	}
	for i, cfg := range bad {
		if _, err := ParallelTempering(m, cfg); err == nil {
			t.Errorf("PT config %d should be rejected", i)
		}
	}
}

func TestPTDeterministic(t *testing.T) {
	_, m := benchProblem(t)
	cfg := PTConfig{Replicas: 4, TMin: 0.1, TMax: 2, Sweeps: 50, ExchangeEvery: 5, Seed: 3}
	a, _ := ParallelTempering(m, cfg)
	b, _ := ParallelTempering(m, cfg)
	if a.BestEnergy != b.BestEnergy || a.ExchangeRate != b.ExchangeRate {
		t.Fatal("PT nondeterministic for fixed seed")
	}
}

func TestPTBeatsSingleTemperatureOnHardInstance(t *testing.T) {
	// A frustrated ±1 weighted instance where plain low-T annealing
	// tends to stick; parallel tempering's exchanges should at least
	// match SA's quality given the same total sweep budget.
	g, err := graph.Random(60, 500, graph.WeightPM1, 33)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)
	pt, err := ParallelTempering(m, PTConfig{
		Replicas: 8, TMin: 0.05, TMax: 3, Sweeps: 100, ExchangeEvery: 5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := SimulatedAnnealing(m, SAConfig{Sweeps: 800, TStart: 3, TEnd: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pt.BestEnergy > sa.BestEnergy+2 {
		t.Fatalf("PT energy %v much worse than SA %v on equal budget", pt.BestEnergy, sa.BestEnergy)
	}
}

func TestPTFindsGroundStateTiny(t *testing.T) {
	g, err := graph.Random(12, 30, graph.WeightUniform, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)
	best := math.Inf(-1)
	spins := make([]int8, 12)
	for mask := 0; mask < 1<<12; mask++ {
		for i := range spins {
			if mask&(1<<i) != 0 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		if c := g.CutValue(spins); c > best {
			best = c
		}
	}
	pt, err := ParallelTempering(m, PTConfig{
		Replicas: 8, TMin: 0.05, TMax: 4, Sweeps: 300, ExchangeEvery: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.CutValue(pt.BestSpins) != best {
		t.Fatalf("PT cut %v, optimum %v", g.CutValue(pt.BestSpins), best)
	}
}
