package baseline

import (
	"math"
	"testing"

	"sophie/internal/graph"
	"sophie/internal/ising"
)

func TestParallelTempering(t *testing.T) {
	g, m := benchProblem(t)
	res, err := ParallelTempering(m, PTConfig{
		Replicas: 6, TMin: 0.05, TMax: 3, Sweeps: 150, ExchangeEvery: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertGoodCut(t, "PT", g, res.BestSpins, 0.65)
	if res.BestEnergy != m.Energy(res.BestSpins) {
		t.Fatal("PT energy inconsistent")
	}
	if res.ExchangeRate <= 0 || res.ExchangeRate > 1 {
		t.Fatalf("exchange rate %v implausible", res.ExchangeRate)
	}
}

func TestPTValidation(t *testing.T) {
	_, m := benchProblem(t)
	bad := []PTConfig{
		{Replicas: 1, TMin: 0.1, TMax: 1, Sweeps: 10, ExchangeEvery: 1},
		{Replicas: 4, TMin: 0, TMax: 1, Sweeps: 10, ExchangeEvery: 1},
		{Replicas: 4, TMin: 1, TMax: 0.5, Sweeps: 10, ExchangeEvery: 1},
		{Replicas: 4, TMin: 0.1, TMax: 1, Sweeps: 0, ExchangeEvery: 1},
		{Replicas: 4, TMin: 0.1, TMax: 1, Sweeps: 10, ExchangeEvery: 0},
	}
	for i, cfg := range bad {
		if _, err := ParallelTempering(m, cfg); err == nil {
			t.Errorf("PT config %d should be rejected", i)
		}
	}
}

func TestPTDeterministic(t *testing.T) {
	_, m := benchProblem(t)
	cfg := PTConfig{Replicas: 4, TMin: 0.1, TMax: 2, Sweeps: 50, ExchangeEvery: 5, Seed: 3}
	a, _ := ParallelTempering(m, cfg)
	b, _ := ParallelTempering(m, cfg)
	if a.BestEnergy != b.BestEnergy || a.ExchangeRate != b.ExchangeRate {
		t.Fatal("PT nondeterministic for fixed seed")
	}
}

func TestPTBeatsSingleTemperatureOnHardInstance(t *testing.T) {
	// A frustrated ±1 weighted instance where plain low-T annealing
	// tends to stick; parallel tempering's exchanges should at least
	// match SA's quality given the same total sweep budget.
	g, err := graph.Random(60, 500, graph.WeightPM1, 33)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)
	pt, err := ParallelTempering(m, PTConfig{
		Replicas: 8, TMin: 0.05, TMax: 3, Sweeps: 100, ExchangeEvery: 5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := SimulatedAnnealing(m, SAConfig{Sweeps: 800, TStart: 3, TEnd: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pt.BestEnergy > sa.BestEnergy+2 {
		t.Fatalf("PT energy %v much worse than SA %v on equal budget", pt.BestEnergy, sa.BestEnergy)
	}
}

func TestPTFindsGroundStateTiny(t *testing.T) {
	g, err := graph.Random(12, 30, graph.WeightUniform, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)
	best := math.Inf(-1)
	spins := make([]int8, 12)
	for mask := 0; mask < 1<<12; mask++ {
		for i := range spins {
			if mask&(1<<i) != 0 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		if c := g.CutValue(spins); c > best {
			best = c
		}
	}
	pt, err := ParallelTempering(m, PTConfig{
		Replicas: 8, TMin: 0.05, TMax: 4, Sweeps: 300, ExchangeEvery: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.CutValue(pt.BestSpins) != best {
		t.Fatalf("PT cut %v, optimum %v", g.CutValue(pt.BestSpins), best)
	}
}

// TestPTEnergyExactlyConsistent pins the drift fix: the incremental
// rep.energy accumulator rounds once per accepted flip, and before the
// exchange-boundary re-anchor those drifted values leaked into the
// tracker, so BestEnergy could differ from Energy(BestSpins) in the
// last bits. The invariant must now hold bit-for-bit, on float-weighted
// instances where the drift is real.
func TestPTEnergyExactlyConsistent(t *testing.T) {
	g, err := graph.Random(125, 650, graph.WeightUniform, 53122)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)
	for seed := int64(1); seed <= 3; seed++ {
		res, err := ParallelTempering(m, PTConfig{
			Replicas: 6, TMin: 0.05, TMax: 3, Sweeps: 120, ExchangeEvery: 7, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := math.Float64bits(res.BestEnergy)
		want := math.Float64bits(m.Energy(res.BestSpins))
		if got != want {
			t.Fatalf("seed %d: BestEnergy %v (bits %x) != Energy(BestSpins) %v (bits %x)",
				seed, res.BestEnergy, got, m.Energy(res.BestSpins), want)
		}
	}
}

// TestTrackerResultIsACopy pins the aliasing fix: result() must hand
// back a snapshot, not the tracker's live buffer — later observations
// used to mutate an already-returned "best" state in place.
func TestTrackerResultIsACopy(t *testing.T) {
	_, m := benchProblem(t)
	spins := make([]int8, m.N())
	for i := range spins {
		spins[i] = 1
	}
	tr := newTracker(m, spins)
	res := tr.result(1)
	snapshot := append([]int8(nil), res.BestSpins...)

	// A later, better observation overwrites the tracker's buffer; the
	// returned result must not move with it.
	better := append([]int8(nil), spins...)
	better[0] = -better[0]
	tr.observeEnergy(better, tr.e-1)

	for i := range snapshot {
		if res.BestSpins[i] != snapshot[i] {
			t.Fatalf("result aliased the tracker buffer: spin %d changed after a later observation", i)
		}
	}
	// And mutating the returned slice must not corrupt the tracker.
	res.BestSpins[1] = -res.BestSpins[1]
	if tr.best[1] == res.BestSpins[1] && tr.best[1] != snapshot[1] {
		t.Fatal("caller mutation reached the tracker's buffer")
	}
}
