package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"sophie/internal/ising"
)

// SAConfig controls simulated annealing.
type SAConfig struct {
	// Sweeps is the number of full passes over all spins.
	Sweeps int
	// TStart and TEnd bound the geometric cooling schedule. Temperatures
	// are in energy units of the model.
	TStart, TEnd float64
	// Seed drives the Metropolis randomness.
	Seed int64
}

// DefaultSAConfig returns a schedule that works well on the GSET-scale
// benchmarks: temperatures spanning the typical coupling magnitude down
// to deep freeze.
func DefaultSAConfig() SAConfig {
	return SAConfig{Sweeps: 1000, TStart: 4, TEnd: 0.05}
}

// SimulatedAnnealing runs Metropolis single-spin-flip annealing with a
// geometric cooling schedule. Energy deltas are maintained incrementally
// through the local fields, so a sweep is O(N²) on dense models (one
// field refresh per accepted flip).
func SimulatedAnnealing(m *ising.Model, cfg SAConfig) (*Result, error) {
	if err := validateCommon(m, cfg.Sweeps); err != nil {
		return nil, err
	}
	if cfg.TStart <= 0 || cfg.TEnd <= 0 || cfg.TEnd > cfg.TStart {
		return nil, fmt.Errorf("baseline: invalid temperature range [%v,%v]", cfg.TEnd, cfg.TStart)
	}
	n := m.N()
	rng := rand.New(rand.NewSource(cfg.Seed))
	spins := ising.RandomSpins(n, func() bool { return rng.Intn(2) == 0 })

	// Local fields h_i = Σ_j K_ij σ_j; flipping i changes H by 2σ_i h_i.
	k := m.Coupling()
	fields := make([]float64, n)
	for i := 0; i < n; i++ {
		row := k.Row(i)
		sum := 0.0
		for j, kij := range row {
			sum += kij * float64(spins[j])
		}
		fields[i] = sum
	}
	energy := m.Energy(spins)
	tr := newTracker(m, spins)
	tr.observeEnergy(spins, energy)

	cool := math.Pow(cfg.TEnd/cfg.TStart, 1/math.Max(1, float64(cfg.Sweeps-1)))
	temp := cfg.TStart
	for sweep := 0; sweep < cfg.Sweeps; sweep++ {
		for trial := 0; trial < n; trial++ {
			i := rng.Intn(n)
			delta := 2 * float64(spins[i]) * fields[i]
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				// Accept: flip i and refresh every field against row i.
				old := float64(spins[i])
				spins[i] = -spins[i]
				energy += delta
				row := k.Row(i)
				for j, kij := range row {
					fields[j] -= 2 * old * kij
				}
				if energy < tr.e {
					tr.observeEnergy(spins, energy)
				}
			}
		}
		temp *= cool
	}
	return tr.result(cfg.Sweeps), nil
}
