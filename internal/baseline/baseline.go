// Package baseline implements the algorithms SOPHIE is compared against
// in Section IV-D: simulated annealing (the conventional-architecture
// reference), ballistic simulated bifurcation (SB, the FPGA multi-chip
// comparator), a BRIM-style bistable-node ODE simulator (the electric
// physics-based comparator), and a breakout-style local search (BLS, the
// CPU heuristic). The paper quotes literature run times for the
// competitor hardware; these software implementations verify the
// qualitative solution-quality ordering on the same instances.
package baseline

import (
	"fmt"

	"sophie/internal/ising"
)

// Result reports the outcome of a baseline solver run.
type Result struct {
	// BestSpins is the lowest-energy ±1 state visited.
	BestSpins []int8
	// BestEnergy is the Hamiltonian at BestSpins.
	BestEnergy float64
	// Iterations counts the solver's primary iteration unit (sweeps for
	// SA, time steps for SB/BRIM, moves for BLS).
	Iterations int
}

func validateCommon(m *ising.Model, iters int) error {
	if m.N() == 0 {
		return fmt.Errorf("baseline: empty model")
	}
	if iters <= 0 {
		return fmt.Errorf("baseline: iteration budget must be positive, got %d", iters)
	}
	return nil
}

// track updates best-so-far bookkeeping.
type tracker struct {
	m    *ising.Model
	best []int8
	e    float64
}

func newTracker(m *ising.Model, spins []int8) *tracker {
	t := &tracker{m: m, best: append([]int8(nil), spins...)}
	t.e = m.Energy(spins)
	return t
}

// observe records spins if they improve on the best energy. It
// recomputes the energy; callers that maintain incremental energies
// should use observeEnergy instead.
func (t *tracker) observe(spins []int8) {
	if e := t.m.Energy(spins); e < t.e {
		t.e = e
		copy(t.best, spins)
	}
}

// observeEnergy records spins with a caller-supplied energy.
func (t *tracker) observeEnergy(spins []int8, e float64) {
	if e < t.e {
		t.e = e
		copy(t.best, spins)
	}
}

// result builds the final Result. BestSpins is a copy: the tracker's
// buffer keeps being overwritten by later observe calls, so returning
// it by reference would let a caller's "best" state silently change
// under them (or let them corrupt the tracker).
func (t *tracker) result(iters int) *Result {
	return &Result{BestSpins: append([]int8(nil), t.best...), BestEnergy: t.e, Iterations: iters}
}
