// Package sched generates the static mapping and scheduling information
// SOPHIE's host produces before computation starts (Section III-D): which
// symmetric tile pairs run in which round on which PE, when OPCM arrays
// must be reprogrammed, and the pre-drawn randomness of the stochastic
// global iterations (tile selection and spin-update source picks). The
// controller chiplet only replays this plan with simple state machines.
//
// For configurations too large to materialize (K32768 runs hold 131k
// pairs per iteration), Summarize computes the same per-iteration round
// and reprogramming statistics analytically; internal/arch consumes
// either form.
package sched

import (
	"fmt"
	"math/rand"

	"sophie/internal/tiling"
)

// Hardware describes the accelerator pool available to one solve
// (Section IV-A: each accelerator integrates 4 OPCM chiplets of 64 PEs;
// each PE stores one symmetric tile pair in a TileSize² array).
type Hardware struct {
	Accelerators     int
	ChipletsPerAccel int
	PEsPerChiplet    int
	TileSize         int
}

// DefaultHardware returns one accelerator in the paper's configuration.
func DefaultHardware() Hardware {
	return Hardware{Accelerators: 1, ChipletsPerAccel: 4, PEsPerChiplet: 64, TileSize: 64}
}

// Validate checks that all dimensions are positive.
func (h Hardware) Validate() error {
	if h.Accelerators <= 0 || h.ChipletsPerAccel <= 0 || h.PEsPerChiplet <= 0 || h.TileSize <= 0 {
		return fmt.Errorf("sched: hardware dimensions must be positive: %+v", h)
	}
	return nil
}

// TotalPEs returns the number of physical OPCM arrays in the pool.
func (h Hardware) TotalPEs() int {
	return h.Accelerators * h.ChipletsPerAccel * h.PEsPerChiplet
}

// Capacity returns the number of coupling coefficients the pool can hold
// at once. Thanks to symmetric tile mapping each PE serves two logical
// tiles, so the logical capacity is twice the physical cell count per
// polarity; we report the physical tile capacity TotalPEs·TileSize².
func (h Hardware) Capacity() int {
	return h.TotalPEs() * h.TileSize * h.TileSize
}

// Options controls plan generation.
type Options struct {
	// GlobalIters is the number of global iterations to schedule.
	GlobalIters int
	// TileFraction is the fraction of pairs selected per global
	// iteration (stochastic tile computation).
	TileFraction float64
	// Seed fixes the pre-generated randomness.
	Seed int64
}

func (o Options) validate() error {
	if o.GlobalIters <= 0 {
		return fmt.Errorf("sched: global iterations must be positive, got %d", o.GlobalIters)
	}
	if o.TileFraction <= 0 || o.TileFraction > 1 {
		return fmt.Errorf("sched: tile fraction %v outside (0,1]", o.TileFraction)
	}
	return nil
}

// Round is one hardware occupancy: the pair scheduled on each PE slot
// (len ≤ TotalPEs) and which of those slots must reprogram their array
// because it held a different pair before.
type Round struct {
	Pairs     []int
	Reprogram []bool
}

// GlobalIteration is the schedule of one global iteration.
type GlobalIteration struct {
	// Selected lists the pair indices chosen by stochastic tile
	// computation, in scheduling order.
	Selected []int
	// Rounds partitions Selected into hardware occupancies.
	Rounds []Round
	// SpinSource[b] gives, for each tile block b, the index into
	// Selected of the pair whose local spin copy is broadcast by the
	// stochastic spin update; -1 when no selected pair touches b.
	SpinSource []int
}

// Plan is the full statically generated schedule.
type Plan struct {
	Grid       *tiling.Grid
	Hardware   Hardware
	Iterations []GlobalIteration
	// Programs counts OPCM array programming events across the plan,
	// including the initial load.
	Programs int
	// Resident reports whether every pair fits simultaneously, in which
	// case arrays are programmed exactly once.
	Resident bool
}

// Generate builds the full static plan. The schedule is deterministic
// for a given seed — exactly what the host ships to the controller.
func Generate(grid *tiling.Grid, hw Hardware, opt Options) (*Plan, error) {
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if hw.TileSize != grid.TileSize {
		return nil, fmt.Errorf("sched: hardware tile size %d != grid tile size %d", hw.TileSize, grid.TileSize)
	}
	nPairs := grid.PairCount()
	totalPEs := hw.TotalPEs()
	rng := rand.New(rand.NewSource(opt.Seed))
	selectCount := int(float64(nPairs)*opt.TileFraction + 0.5)
	if selectCount < 1 {
		selectCount = 1
	}

	plan := &Plan{Grid: grid, Hardware: hw, Resident: nPairs <= totalPEs}
	// residency[pe] = pair currently programmed on that PE, -1 = empty.
	residency := make([]int, totalPEs)
	for i := range residency {
		residency[i] = -1
	}
	// In the resident case pairs are pinned: pair i lives on PE i.
	perm := make([]int, nPairs)
	for i := range perm {
		perm[i] = i
	}
	pairs := grid.Pairs()

	for g := 0; g < opt.GlobalIters; g++ {
		var selected []int
		if selectCount == nPairs {
			selected = append([]int(nil), perm...)
		} else {
			rng.Shuffle(nPairs, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			selected = append([]int(nil), perm[:selectCount]...)
		}

		it := GlobalIteration{Selected: selected}
		for start := 0; start < len(selected); start += totalPEs {
			end := start + totalPEs
			if end > len(selected) {
				end = len(selected)
			}
			round := Round{
				Pairs:     selected[start:end],
				Reprogram: make([]bool, end-start),
			}
			for slot, pair := range round.Pairs {
				pe := slot
				if plan.Resident {
					pe = pair // pinned placement
				}
				if residency[pe] != pair {
					residency[pe] = pair
					round.Reprogram[slot] = true
					plan.Programs++
				}
			}
			it.Rounds = append(it.Rounds, round)
		}

		// Stochastic spin update source picks, drawn offline like the
		// tile selection (Section III-D).
		it.SpinSource = make([]int, grid.Tiles)
		touching := make([][]int, grid.Tiles)
		for si, pi := range selected {
			p := pairs[pi]
			touching[p.Row] = append(touching[p.Row], si)
			if !p.IsDiagonal() {
				touching[p.Col] = append(touching[p.Col], si)
			}
		}
		for b := 0; b < grid.Tiles; b++ {
			if len(touching[b]) == 0 {
				it.SpinSource[b] = -1
				continue
			}
			it.SpinSource[b] = touching[b][rng.Intn(len(touching[b]))]
		}
		plan.Iterations = append(plan.Iterations, it)
	}
	return plan, nil
}

// Summary captures the per-iteration scheduling statistics the timing
// model needs without materializing the plan.
type Summary struct {
	Pairs         int     // symmetric tile pairs in the grid
	SelectedPairs int     // pairs selected per global iteration
	RoundsPerIter int     // ceil(SelectedPairs / TotalPEs)
	Resident      bool    // whole problem fits; program once
	ProgramsTotal float64 // expected array programming events over the plan
	GlobalIters   int
}

// Summarize computes the statistics analytically. In the non-resident
// case nearly every scheduled pair lands on a PE that held a different
// pair, so programs ≈ selected pairs per iteration; in the resident case
// arrays are programmed exactly once.
func Summarize(grid *tiling.Grid, hw Hardware, opt Options) (Summary, error) {
	if err := hw.Validate(); err != nil {
		return Summary{}, err
	}
	if err := opt.validate(); err != nil {
		return Summary{}, err
	}
	if hw.TileSize != grid.TileSize {
		return Summary{}, fmt.Errorf("sched: hardware tile size %d != grid tile size %d", hw.TileSize, grid.TileSize)
	}
	nPairs := grid.PairCount()
	totalPEs := hw.TotalPEs()
	selected := int(float64(nPairs)*opt.TileFraction + 0.5)
	if selected < 1 {
		selected = 1
	}
	s := Summary{
		Pairs:         nPairs,
		SelectedPairs: selected,
		RoundsPerIter: (selected + totalPEs - 1) / totalPEs,
		Resident:      nPairs <= totalPEs,
		GlobalIters:   opt.GlobalIters,
	}
	if s.Resident {
		s.ProgramsTotal = float64(nPairs)
	} else {
		s.ProgramsTotal = float64(selected) * float64(opt.GlobalIters)
	}
	return s, nil
}
