package sched

import (
	"fmt"

	"sophie/internal/tiling"
)

// Multi-accelerator partitioning (Section III-B): "The DRAM chiplet
// contains DDR4 memory and stores all the coupling matrix tiles
// assigned to its interposer". Global synchronization between
// interposers crosses the CXL bus, so the partition should keep each
// block column's tiles on as few accelerators as possible — a column
// spanning two interposers must reconcile its spin copies over the bus.

// Partition assigns tile pairs to accelerators.
type Partition struct {
	// PairAccel[pairIndex] = accelerator owning that pair.
	PairAccel []int
	// Load[a] = pairs assigned to accelerator a.
	Load []int
}

// PartitionPairs splits the grid's symmetric tile pairs across accels
// accelerators using contiguous row bands: pair (r,c) goes to the
// accelerator owning row band r. Row bands are sized so the triangular
// pair counts balance (row r owns Tiles-r pairs, so bands get narrower
// toward the bottom).
func PartitionPairs(grid *tiling.Grid, accels int) (*Partition, error) {
	if accels < 1 {
		return nil, fmt.Errorf("sched: need at least one accelerator, got %d", accels)
	}
	total := grid.PairCount()
	target := float64(total) / float64(accels)
	p := &Partition{
		PairAccel: make([]int, total),
		Load:      make([]int, accels),
	}
	accel := 0
	assigned := 0.0
	for r := 0; r < grid.Tiles; r++ {
		rowPairs := grid.Tiles - r
		// Advance to the next accelerator when the current band has
		// reached its share (never past the last accelerator).
		if accel < accels-1 && assigned+float64(rowPairs)/2 > target*float64(accel+1) {
			accel++
		}
		for c := r; c < grid.Tiles; c++ {
			idx := grid.PairIndex(r, c)
			p.PairAccel[idx] = accel
			p.Load[accel]++
		}
		assigned += float64(rowPairs)
	}
	return p, nil
}

// ColumnSpans returns, for each block column, how many accelerators its
// pairs touch — each column spanning more than one accelerator pays
// cross-interposer reconciliation per global iteration.
func (p *Partition) ColumnSpans(grid *tiling.Grid) []int {
	touch := make([]map[int]bool, grid.Tiles)
	for i := range touch {
		touch[i] = make(map[int]bool)
	}
	for r := 0; r < grid.Tiles; r++ {
		for c := r; c < grid.Tiles; c++ {
			a := p.PairAccel[grid.PairIndex(r, c)]
			touch[r][a] = true
			touch[c][a] = true
		}
	}
	spans := make([]int, grid.Tiles)
	for b := range spans {
		spans[b] = len(touch[b])
	}
	return spans
}

// CrossColumns counts block columns spanning more than one accelerator.
func (p *Partition) CrossColumns(grid *tiling.Grid) int {
	n := 0
	for _, s := range p.ColumnSpans(grid) {
		if s > 1 {
			n++
		}
	}
	return n
}

// Imbalance returns (max load - min load) / mean load, the load-balance
// quality of the partition.
func (p *Partition) Imbalance() float64 {
	if len(p.Load) == 0 {
		return 0
	}
	min, max, sum := p.Load[0], p.Load[0], 0
	for _, l := range p.Load {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
		sum += l
	}
	mean := float64(sum) / float64(len(p.Load))
	if mean == 0 {
		return 0
	}
	return float64(max-min) / mean
}
