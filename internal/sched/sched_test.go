package sched

import (
	"testing"

	"sophie/internal/tiling"
)

func grid(t *testing.T, n, tile int) *tiling.Grid {
	t.Helper()
	g, err := tiling.NewGrid(n, tile)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHardwareBasics(t *testing.T) {
	h := DefaultHardware()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.TotalPEs() != 256 {
		t.Fatalf("default pool has %d PEs, want 256", h.TotalPEs())
	}
	if h.Capacity() != 256*64*64 {
		t.Fatalf("capacity %d", h.Capacity())
	}
	bad := Hardware{Accelerators: 0, ChipletsPerAccel: 4, PEsPerChiplet: 64, TileSize: 64}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero accelerators must be rejected")
	}
}

func TestGenerateValidation(t *testing.T) {
	g := grid(t, 256, 64)
	hw := DefaultHardware()
	if _, err := Generate(g, hw, Options{GlobalIters: 0, TileFraction: 1}); err == nil {
		t.Fatal("zero iterations must be rejected")
	}
	if _, err := Generate(g, hw, Options{GlobalIters: 1, TileFraction: 0}); err == nil {
		t.Fatal("zero fraction must be rejected")
	}
	if _, err := Generate(g, hw, Options{GlobalIters: 1, TileFraction: 2}); err == nil {
		t.Fatal("fraction > 1 must be rejected")
	}
	hw.TileSize = 32
	if _, err := Generate(g, hw, Options{GlobalIters: 1, TileFraction: 1}); err == nil {
		t.Fatal("tile size mismatch must be rejected")
	}
}

func TestResidentPlanProgramsOnce(t *testing.T) {
	// 256 nodes / tile 64 -> 4x4 tiles -> 10 pairs, far below 256 PEs.
	g := grid(t, 256, 64)
	plan, err := Generate(g, DefaultHardware(), Options{GlobalIters: 20, TileFraction: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Resident {
		t.Fatal("plan should be resident")
	}
	if plan.Programs != g.PairCount() {
		t.Fatalf("resident plan programmed %d times, want %d", plan.Programs, g.PairCount())
	}
	for _, it := range plan.Iterations {
		if len(it.Rounds) != 1 {
			t.Fatalf("resident iteration has %d rounds", len(it.Rounds))
		}
		if len(it.Selected) != g.PairCount() {
			t.Fatalf("full fraction selected %d of %d", len(it.Selected), g.PairCount())
		}
	}
}

func TestNonResidentPlanReprograms(t *testing.T) {
	// Small pool: 1 accelerator with 1 chiplet of 2 PEs; 6 pairs.
	hw := Hardware{Accelerators: 1, ChipletsPerAccel: 1, PEsPerChiplet: 2, TileSize: 8}
	g := grid(t, 24, 8) // 3x3 tiles -> 6 pairs
	plan, err := Generate(g, hw, Options{GlobalIters: 5, TileFraction: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Resident {
		t.Fatal("plan should not be resident")
	}
	for _, it := range plan.Iterations {
		if len(it.Rounds) != 3 { // 6 pairs over 2 PEs
			t.Fatalf("iteration has %d rounds, want 3", len(it.Rounds))
		}
		for _, r := range it.Rounds {
			if len(r.Pairs) > hw.TotalPEs() {
				t.Fatalf("round overcommits: %d pairs on %d PEs", len(r.Pairs), hw.TotalPEs())
			}
		}
	}
	if plan.Programs <= g.PairCount() {
		t.Fatalf("non-resident plan should reprogram repeatedly, got %d programs", plan.Programs)
	}
}

func TestEverySelectedPairScheduledExactlyOnce(t *testing.T) {
	hw := Hardware{Accelerators: 1, ChipletsPerAccel: 2, PEsPerChiplet: 3, TileSize: 8}
	g := grid(t, 80, 8) // 10x10 tiles -> 55 pairs
	plan, err := Generate(g, hw, Options{GlobalIters: 10, TileFraction: 0.6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := int(0.6*float64(g.PairCount()) + 0.5)
	for gi, it := range plan.Iterations {
		if len(it.Selected) != want {
			t.Fatalf("iteration %d selected %d pairs, want %d", gi, len(it.Selected), want)
		}
		seen := map[int]bool{}
		scheduled := 0
		for _, r := range it.Rounds {
			for _, p := range r.Pairs {
				if seen[p] {
					t.Fatalf("iteration %d schedules pair %d twice", gi, p)
				}
				seen[p] = true
				scheduled++
			}
		}
		if scheduled != len(it.Selected) {
			t.Fatalf("iteration %d scheduled %d of %d selected", gi, scheduled, len(it.Selected))
		}
		for _, p := range it.Selected {
			if !seen[p] {
				t.Fatalf("iteration %d never scheduled selected pair %d", gi, p)
			}
		}
	}
}

func TestSpinSourcesValid(t *testing.T) {
	hw := Hardware{Accelerators: 1, ChipletsPerAccel: 2, PEsPerChiplet: 4, TileSize: 8}
	g := grid(t, 64, 8) // 8x8 tiles
	plan, err := Generate(g, hw, Options{GlobalIters: 8, TileFraction: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pairs := g.Pairs()
	for gi, it := range plan.Iterations {
		if len(it.SpinSource) != g.Tiles {
			t.Fatalf("iteration %d has %d spin sources", gi, len(it.SpinSource))
		}
		for b, src := range it.SpinSource {
			if src == -1 {
				// Verify no selected pair touches b.
				for _, pi := range it.Selected {
					p := pairs[pi]
					if p.Row == b || p.Col == b {
						t.Fatalf("iteration %d block %d marked untouched but pair (%d,%d) selected", gi, b, p.Row, p.Col)
					}
				}
				continue
			}
			if src < 0 || src >= len(it.Selected) {
				t.Fatalf("iteration %d block %d source %d out of range", gi, b, src)
			}
			p := pairs[it.Selected[src]]
			if p.Row != b && p.Col != b {
				t.Fatalf("iteration %d block %d source pair (%d,%d) does not touch it", gi, b, p.Row, p.Col)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	hw := Hardware{Accelerators: 1, ChipletsPerAccel: 1, PEsPerChiplet: 8, TileSize: 8}
	g := grid(t, 80, 8)
	opt := Options{GlobalIters: 6, TileFraction: 0.5, Seed: 99}
	a, err := Generate(g, hw, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, hw, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Programs != b.Programs {
		t.Fatal("plans differ in program count")
	}
	for i := range a.Iterations {
		for j := range a.Iterations[i].Selected {
			if a.Iterations[i].Selected[j] != b.Iterations[i].Selected[j] {
				t.Fatal("plans differ in selection")
			}
		}
		for j := range a.Iterations[i].SpinSource {
			if a.Iterations[i].SpinSource[j] != b.Iterations[i].SpinSource[j] {
				t.Fatal("plans differ in spin sources")
			}
		}
	}
}

func TestSummarizeMatchesGenerate(t *testing.T) {
	hw := Hardware{Accelerators: 1, ChipletsPerAccel: 1, PEsPerChiplet: 4, TileSize: 8}
	g := grid(t, 64, 8) // 8x8 -> 36 pairs
	opt := Options{GlobalIters: 12, TileFraction: 0.7, Seed: 5}
	sum, err := Summarize(g, hw, opt)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Generate(g, hw, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pairs != g.PairCount() || sum.Resident != plan.Resident {
		t.Fatalf("summary mismatch: %+v", sum)
	}
	if sum.SelectedPairs != len(plan.Iterations[0].Selected) {
		t.Fatalf("selected %d vs plan %d", sum.SelectedPairs, len(plan.Iterations[0].Selected))
	}
	if sum.RoundsPerIter != len(plan.Iterations[0].Rounds) {
		t.Fatalf("rounds %d vs plan %d", sum.RoundsPerIter, len(plan.Iterations[0].Rounds))
	}
	// The analytic program estimate upper-bounds the simulated count
	// (occasionally a PE keeps its pair across rounds) but should be
	// within a few percent for non-resident plans.
	if float64(plan.Programs) > sum.ProgramsTotal {
		t.Fatalf("simulated programs %d exceed analytic estimate %v", plan.Programs, sum.ProgramsTotal)
	}
	if float64(plan.Programs) < 0.8*sum.ProgramsTotal {
		t.Fatalf("simulated programs %d far below analytic estimate %v", plan.Programs, sum.ProgramsTotal)
	}
}

func TestSummarizeResident(t *testing.T) {
	g := grid(t, 256, 64)
	sum, err := Summarize(g, DefaultHardware(), Options{GlobalIters: 100, TileFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Resident || sum.ProgramsTotal != float64(g.PairCount()) {
		t.Fatalf("resident summary wrong: %+v", sum)
	}
	if sum.RoundsPerIter != 1 {
		t.Fatalf("resident rounds %d", sum.RoundsPerIter)
	}
}

func TestSummarizeLargeGraphShape(t *testing.T) {
	// K16384 at tile 64: 256x256 tiles, 32896 pairs; with 74% selection
	// on one accelerator (256 PEs) the paper's configuration yields 96
	// rounds per iteration.
	g := grid(t, 16384, 64)
	sum, err := Summarize(g, DefaultHardware(), Options{GlobalIters: 50, TileFraction: 0.74})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pairs != 32896 {
		t.Fatalf("pairs %d, want 32896", sum.Pairs)
	}
	if sum.SelectedPairs != 24343 {
		t.Fatalf("selected %d, want 24343", sum.SelectedPairs)
	}
	if sum.RoundsPerIter != 96 {
		t.Fatalf("rounds %d, want 96", sum.RoundsPerIter)
	}
	if sum.Resident {
		t.Fatal("K16384 cannot be resident on one accelerator")
	}
}

func BenchmarkGenerateG22Capacity(b *testing.B) {
	g, err := tiling.NewGrid(2000, 64)
	if err != nil {
		b.Fatal(err)
	}
	hw := Hardware{Accelerators: 1, ChipletsPerAccel: 4, PEsPerChiplet: 16, TileSize: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(g, hw, Options{GlobalIters: 50, TileFraction: 0.74, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
