package sched

import "fmt"

// Section III-D: "we need to gather/scatter data from a row of logical
// tiles; however, those logical tiles may not reside in the same row of
// physical tiles" — the host therefore generates explicit transfer
// lists the controller replays. CommSchedule materializes that list for
// one global iteration.

// CommKind classifies one synchronization transfer.
type CommKind int

const (
	// CommPartialOut sends a tile's 8-bit local partial-sum vector to
	// the controller/DRAM.
	CommPartialOut CommKind = iota
	// CommSpinOut sends a tile's 1-bit local spin copy.
	CommSpinOut
	// CommOffsetIn delivers a rebuilt 8-bit offset vector to a tile.
	CommOffsetIn
	// CommSpinIn broadcasts the reconciled 1-bit spin block to a tile.
	CommSpinIn
)

func (k CommKind) String() string {
	switch k {
	case CommPartialOut:
		return "partial-out"
	case CommSpinOut:
		return "spin-out"
	case CommOffsetIn:
		return "offset-in"
	case CommSpinIn:
		return "spin-in"
	default:
		return fmt.Sprintf("CommKind(%d)", int(k))
	}
}

// CommOp is one transfer between a PE slot and the controller/DRAM.
type CommOp struct {
	Kind CommKind
	// Pair is the logical pair index the buffer belongs to.
	Pair int
	// Block is the logical tile block the vector spans.
	Block int
	// Round and Slot locate the physical PE executing the pair.
	Round, Slot int
	// Bytes is the payload for the whole batch.
	Bytes int
}

// CommSchedule generates the ordered transfer list of one global
// iteration for a batch of jobs: each selected pair ships two partial
// sums and two spin copies out and receives two offsets and two
// reconciled spin blocks back (diagonal pairs: one each).
func (p *Plan) CommSchedule(iter, batch int) ([]CommOp, error) {
	if iter < 0 || iter >= len(p.Iterations) {
		return nil, fmt.Errorf("sched: iteration %d outside plan of %d", iter, len(p.Iterations))
	}
	if batch < 1 {
		return nil, fmt.Errorf("sched: batch must be positive, got %d", batch)
	}
	t := p.Grid.TileSize
	bytes8b := t * batch         // one 8-bit vector per job
	bytes1b := (t*batch + 7) / 8 // one 1-bit vector per job, packed
	pairs := p.Grid.Pairs()

	var ops []CommOp
	it := p.Iterations[iter]
	for ri, round := range it.Rounds {
		for slot, pairIdx := range round.Pairs {
			pr := pairs[pairIdx]
			blocks := []int{pr.Row}
			if !pr.IsDiagonal() {
				blocks = append(blocks, pr.Col)
			}
			for _, b := range blocks {
				ops = append(ops,
					CommOp{Kind: CommPartialOut, Pair: pairIdx, Block: b, Round: ri, Slot: slot, Bytes: bytes8b},
					CommOp{Kind: CommSpinOut, Pair: pairIdx, Block: b, Round: ri, Slot: slot, Bytes: bytes1b},
					CommOp{Kind: CommOffsetIn, Pair: pairIdx, Block: b, Round: ri, Slot: slot, Bytes: bytes8b},
					CommOp{Kind: CommSpinIn, Pair: pairIdx, Block: b, Round: ri, Slot: slot, Bytes: bytes1b},
				)
			}
		}
	}
	return ops, nil
}

// TotalBytes sums a transfer list's payloads.
func TotalBytes(ops []CommOp) int {
	sum := 0
	for _, op := range ops {
		sum += op.Bytes
	}
	return sum
}
