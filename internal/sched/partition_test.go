package sched

import (
	"math/rand"
	"testing"
)

func TestPartitionPairsValidation(t *testing.T) {
	g := grid(t, 64, 8)
	if _, err := PartitionPairs(g, 0); err == nil {
		t.Fatal("zero accelerators must be rejected")
	}
}

func TestPartitionSingleAccel(t *testing.T) {
	g := grid(t, 64, 8)
	p, err := PartitionPairs(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Load[0] != g.PairCount() {
		t.Fatalf("single accelerator owns %d of %d", p.Load[0], g.PairCount())
	}
	if p.CrossColumns(g) != 0 {
		t.Fatal("single accelerator cannot have cross columns")
	}
	if p.Imbalance() != 0 {
		t.Fatal("single accelerator has no imbalance")
	}
}

func TestPartitionCoversEveryPairOnce(t *testing.T) {
	g := grid(t, 256, 8) // 32x32 tiles, 528 pairs
	p, err := PartitionPairs(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.PairAccel) != g.PairCount() {
		t.Fatal("assignment length wrong")
	}
	sum := 0
	for a, l := range p.Load {
		if l == 0 {
			t.Fatalf("accelerator %d owns nothing", a)
		}
		sum += l
	}
	if sum != g.PairCount() {
		t.Fatalf("loads sum to %d, want %d", sum, g.PairCount())
	}
	for _, a := range p.PairAccel {
		if a < 0 || a >= 4 {
			t.Fatalf("assignment %d out of range", a)
		}
	}
}

func TestPartitionBalancedReasonably(t *testing.T) {
	g := grid(t, 2048, 64) // 32x32 tiles
	p, err := PartitionPairs(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Imbalance() > 0.5 {
		t.Fatalf("imbalance %.2f too high: loads %v", p.Imbalance(), p.Load)
	}
}

func TestPartitionBeatsRandomOnColumnSpans(t *testing.T) {
	// The banded partition should keep far fewer columns spanning
	// multiple accelerators than a random assignment.
	g := grid(t, 2048, 64)
	banded, err := PartitionPairs(g, 4)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	random := &Partition{
		PairAccel: make([]int, g.PairCount()),
		Load:      make([]int, 4),
	}
	for i := range random.PairAccel {
		a := rng.Intn(4)
		random.PairAccel[i] = a
		random.Load[a]++
	}
	if banded.CrossColumns(g) >= random.CrossColumns(g) {
		t.Fatalf("banded partition (%d cross columns) no better than random (%d)",
			banded.CrossColumns(g), random.CrossColumns(g))
	}
}

func TestColumnSpansShape(t *testing.T) {
	g := grid(t, 64, 8) // 8x8 tiles
	p, err := PartitionPairs(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	spans := p.ColumnSpans(g)
	if len(spans) != g.Tiles {
		t.Fatalf("%d spans for %d blocks", len(spans), g.Tiles)
	}
	for b, s := range spans {
		if s < 1 || s > 2 {
			t.Fatalf("block %d spans %d accelerators", b, s)
		}
	}
	// With a row-band split of the upper triangle, the top-left block's
	// row lives on accelerator 0 but its column extends into band 1's
	// rows... actually block 0 only appears in row 0 and column 0 —
	// column 0 pairs are (0,0) only in the upper triangle, so block 0
	// spans exactly the accelerators owning row 0's pairs: 1.
	if spans[0] != 1 {
		t.Fatalf("block 0 spans %d, want 1", spans[0])
	}
	// The last block appears in every row's final column: it must span
	// both bands.
	if spans[g.Tiles-1] != 2 {
		t.Fatalf("last block spans %d, want 2", spans[g.Tiles-1])
	}
}
