package sched

import (
	"testing"
)

func commPlan(t *testing.T) *Plan {
	t.Helper()
	g := grid(t, 80, 8) // 10x10 tiles -> 55 pairs
	hw := Hardware{Accelerators: 1, ChipletsPerAccel: 2, PEsPerChiplet: 4, TileSize: 8}
	plan, err := Generate(g, hw, Options{GlobalIters: 4, TileFraction: 0.6, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestCommScheduleValidation(t *testing.T) {
	plan := commPlan(t)
	if _, err := plan.CommSchedule(99, 1); err == nil {
		t.Fatal("out-of-range iteration must be rejected")
	}
	if _, err := plan.CommSchedule(0, 0); err == nil {
		t.Fatal("zero batch must be rejected")
	}
}

func TestCommScheduleCoversEverySelectedPair(t *testing.T) {
	plan := commPlan(t)
	pairs := plan.Grid.Pairs()
	for iter := range plan.Iterations {
		ops, err := plan.CommSchedule(iter, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Tally ops per pair per kind.
		count := map[int]map[CommKind]int{}
		for _, op := range ops {
			if count[op.Pair] == nil {
				count[op.Pair] = map[CommKind]int{}
			}
			count[op.Pair][op.Kind]++
			// The op's block must belong to the pair.
			pr := pairs[op.Pair]
			if op.Block != pr.Row && op.Block != pr.Col {
				t.Fatalf("op for pair %d touches foreign block %d", op.Pair, op.Block)
			}
		}
		for _, pi := range plan.Iterations[iter].Selected {
			want := 2
			if pairs[pi].IsDiagonal() {
				want = 1
			}
			for _, kind := range []CommKind{CommPartialOut, CommSpinOut, CommOffsetIn, CommSpinIn} {
				if count[pi][kind] != want {
					t.Fatalf("iter %d pair %d has %d %v ops, want %d", iter, pi, count[pi][kind], kind, want)
				}
			}
		}
		if len(count) != len(plan.Iterations[iter].Selected) {
			t.Fatalf("iter %d: ops cover %d pairs, selected %d", iter, len(count), len(plan.Iterations[iter].Selected))
		}
	}
}

func TestCommScheduleBytesMatchArchModel(t *testing.T) {
	// The sum of the transfer list must equal the analytic model's
	// per-pair payload (2t bytes of partials + 2t of offsets + 2·t/8 of
	// spins each way, per job) for off-diagonal pairs.
	g := grid(t, 64, 8) // 8x8 tiles
	hw := Hardware{Accelerators: 1, ChipletsPerAccel: 1, PEsPerChiplet: 8, TileSize: 8}
	plan, err := Generate(g, hw, Options{GlobalIters: 1, TileFraction: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch := 4
	ops, err := plan.CommSchedule(0, batch)
	if err != nil {
		t.Fatal(err)
	}
	tSize := 8
	perBlock := 2*tSize*batch + 2*((tSize*batch+7)/8) // 8-bit out+in, 1-bit out+in
	wantBytes := 0
	for _, pr := range g.Pairs() {
		blocks := 2
		if pr.IsDiagonal() {
			blocks = 1
		}
		wantBytes += blocks * perBlock
	}
	if got := TotalBytes(ops); got != wantBytes {
		t.Fatalf("schedule bytes %d, want %d", got, wantBytes)
	}
}

func TestCommKindString(t *testing.T) {
	names := map[CommKind]string{
		CommPartialOut: "partial-out",
		CommSpinOut:    "spin-out",
		CommOffsetIn:   "offset-in",
		CommSpinIn:     "spin-in",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
	if CommKind(99).String() == "" {
		t.Fatal("unknown kind must render")
	}
}

func TestCommScheduleSlotsMatchRounds(t *testing.T) {
	plan := commPlan(t)
	ops, err := plan.CommSchedule(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	it := plan.Iterations[0]
	for _, op := range ops {
		if op.Round < 0 || op.Round >= len(it.Rounds) {
			t.Fatalf("op round %d out of range", op.Round)
		}
		round := it.Rounds[op.Round]
		if op.Slot < 0 || op.Slot >= len(round.Pairs) {
			t.Fatalf("op slot %d out of range", op.Slot)
		}
		if round.Pairs[op.Slot] != op.Pair {
			t.Fatalf("op pair %d does not match slot occupancy %d", op.Pair, round.Pairs[op.Slot])
		}
	}
}
