package core

import (
	"testing"

	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/metrics"
)

func TestPhiAnnealValidation(t *testing.T) {
	g, _ := graph.Random(20, 40, graph.WeightUnit, 1)
	m := ising.FromMaxCut(g)
	cfg := quickConfig()
	cfg.PhiEnd = -0.1
	if _, err := NewSolver(m, cfg); err == nil {
		t.Fatal("negative PhiEnd must be rejected")
	}
	cfg = quickConfig()
	cfg.Phi = 0
	cfg.PhiEnd = 0.1
	if _, err := NewSolver(m, cfg); err == nil {
		t.Fatal("PhiEnd without a starting Phi must be rejected")
	}
}

func TestPhiAnnealRunsAndIsDeterministic(t *testing.T) {
	_, m := testProblem(t)
	cfg := quickConfig()
	cfg.Phi = 0.4
	cfg.PhiEnd = 0.02
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestEnergy != b.BestEnergy {
		t.Fatal("annealed runs nondeterministic")
	}
}

func TestPhiAnnealCompetitiveQuality(t *testing.T) {
	// Annealing from high to low noise should match or beat the fixed
	// mid-level noise on average over several seeds (it combines
	// exploration and exploitation).
	g, m := testProblem(t)
	fixed := quickConfig()
	fixed.Phi = 0.15
	annealed := quickConfig()
	annealed.Phi = 0.5
	annealed.PhiEnd = 0.02

	cutsOf := func(cfg Config) float64 {
		s, err := NewSolver(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cuts := make([]float64, 0, 5)
		for seed := int64(0); seed < 5; seed++ {
			res, err := s.Run(seed)
			if err != nil {
				t.Fatal(err)
			}
			cuts = append(cuts, g.CutValue(res.BestSpins))
		}
		return metrics.Summarize(cuts).Mean
	}
	f := cutsOf(fixed)
	a := cutsOf(annealed)
	if a < 0.95*f {
		t.Fatalf("annealed mean cut %v fell >5%% below fixed-noise %v", a, f)
	}
}
