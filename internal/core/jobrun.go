package core

import (
	"fmt"
	"math"
	"math/rand"

	"sophie/internal/tiling"
	"sophie/internal/trace"
)

// jobRun is one job's controller state, factored out of the monolithic
// run loop so two drivers can share it:
//
//   - run() (solver.go) owns a private PE worker pool and steps one job
//     through its global iterations, exactly as before the extraction;
//   - the tempering portfolio runtime (temper.go) holds one jobRun per
//     temperature rung and interleaves all rungs' selected pairs
//     through a single shared pool — reuse-aware scheduling: every
//     rung's sweep of pair p runs while p's tiles are hot.
//
// The split is purely structural: newJobRun + beginIter/localPair/
// endIter/finish replay the original loop body statement for statement,
// in particular every RNG draw and every trace emission happens in the
// same order, so a completed run() is bit-identical to the pre-split
// solver (pinned by the golden and determinism tests).
//
// Concurrency contract: beginIter, endIter, and every other method
// except localPair are controller-side — they must be called from one
// goroutine per jobRun, in iteration order. localPair(pi, phi) touches
// only states[pi] and the (concurrency-safe) engine view, so distinct
// pairs of one jobRun — and any pairs of distinct jobRuns — may run
// concurrently between a beginIter and its endIter.
type jobRun struct {
	rc   *runContext
	seed int64
	ctrl *rand.Rand // controller RNG: init state, tile selection, spin picks

	// Controller-global state: padded binary spin vector, the table of
	// last-reported partial sums P[i][j] = C_ij·S_j, and the fast path's
	// running row-sum cache over it (nil on the reference path).
	sGlobal  []float64
	partial  [][]float64
	rowSum   [][]float64
	useDelta bool

	states []*pairState
	run    *trace.Run
	res    Result

	// Evaluation state: scratch spins, the incremental energy tracker
	// (fast path only), and the previous evaluation for flip counting.
	evalSpins []int8
	tracker   *energyTracker
	prevEval  []int8

	// Selection and reconciliation scratch, reused across iterations.
	copies      [][][]float64
	selectCount int
	perm        []int
	selected    []int
}

func (j *jobRun) pIdx(r, c int) int { return r*j.rc.grid.Tiles + c }

// newJobRun initializes one job over its runContext view: controller
// RNG, initial spin state, exact partial-sum table (charged as init
// MVMs), row-sum cache, per-pair PE states, and the trace run. It ends
// by emitting InitDone; the caller drives iterations next.
func newJobRun(rc *runContext, seed int64) (*jobRun, error) {
	cfg := rc.cfg
	t := cfg.TileSize
	grid := rc.grid
	nPairs := grid.PairCount()
	j := &jobRun{
		rc:   rc,
		seed: seed,
		ctrl: rand.New(rand.NewSource(seedStream(seed, roleController, 0))),
	}

	paddedN := grid.PaddedN()
	j.sGlobal = make([]float64, paddedN)
	if cfg.InitialSpins != nil {
		if len(cfg.InitialSpins) != rc.model.N() {
			return nil, fmt.Errorf("core: %d initial spins for %d-spin model", len(cfg.InitialSpins), rc.model.N())
		}
		for i, sp := range cfg.InitialSpins {
			if sp == 1 {
				j.sGlobal[i] = 1
			}
		}
	} else {
		for i := 0; i < rc.model.N(); i++ {
			if j.ctrl.Intn(2) == 1 {
				j.sGlobal[i] = 1
			}
		}
	}
	j.partial = make([][]float64, grid.Tiles*grid.Tiles)
	for i := range j.partial {
		j.partial[i] = make([]float64, t)
	}

	// Execution-trace spine (internal/trace): every hardware-visible
	// operation of this run is emitted as an event, and Result.Ops is the
	// fold of that stream — one accounting definition serves the live
	// counters, the recorder's replay consumers, and trace-driven PPA.
	// With no recorder attached (cfg.Tracer nil) the Run reduces to the
	// fold arithmetic alone. Tracing consumes no randomness: the run's
	// trajectory is bit-identical with a recorder attached or not.
	j.run = trace.NewRun(trace.Meta{
		Nodes:        rc.model.N(),
		TileSize:     t,
		Tiles:        grid.Tiles,
		Pairs:        nPairs,
		LocalIters:   cfg.LocalIters,
		GlobalIters:  cfg.GlobalIters,
		TileFraction: cfg.TileFraction,
		Stochastic:   cfg.SpinUpdate == SpinUpdateStochastic,
		Seed:         seed,
		Device:       rc.quant != nil,
	}, cfg.Tracer)
	if j.run.WantsDeviceEvents() {
		// The per-job engine view tags device-plane events (sampled MVMs,
		// reprogramming) when it can. For session engines this attaches
		// the job's own session, so sibling jobs stay untraced; the ideal
		// engine has no device plane and implements no sink.
		if sink, ok := rc.eng.(tiling.TraceSink); ok {
			sink.AttachTrace(j.run.Recorder())
		}
	}

	// Initialize the partial-sum table exactly, as the host does when it
	// transfers initial buffer contents (Section III-E). A diagonal pair
	// executes (and is charged) one MVM; an off-diagonal pair two.
	buf := make([]float64, t)
	for _, p := range rc.pairs {
		pi := grid.PairIndex(p.Row, p.Col)
		rc.eng.Mul(pi, false, grid.Block(j.sGlobal, p.Col), buf)
		copy(j.partial[j.pIdx(p.Row, p.Col)], buf)
		if p.IsDiagonal() {
			j.run.InitMVM(pi, true)
			continue
		}
		rc.eng.Mul(pi, true, grid.Block(j.sGlobal, p.Row), buf)
		copy(j.partial[j.pIdx(p.Col, p.Row)], buf)
		j.run.InitMVM(pi, false)
	}

	// The incremental datapath engages when the engine supports delta
	// updates and the exact reference path was not forced. It maintains
	// a running row-sum cache over the partial-sum table so each load
	// phase builds offset vectors in O(t) instead of O(Tiles·t):
	// rowSum[r] = Σ_k partial[r][k], and the offset for (r, skip) is
	// rowSum[r] - partial[r][skip].
	j.useDelta = rc.delta != nil && !cfg.ExactRecompute
	if j.useDelta {
		j.rowSum = make([][]float64, grid.Tiles)
		for r := range j.rowSum {
			j.rowSum[r] = make([]float64, t)
			for k := 0; k < grid.Tiles; k++ {
				src := j.partial[j.pIdx(r, k)]
				for i, v := range src {
					j.rowSum[r][i] += v
				}
			}
		}
	}

	// Per-pair simulated PEs with persistent RNG streams; deterministic
	// given seed regardless of goroutine scheduling. Streams are
	// separated by seedStream (see seed.go) so no pair shares a stream
	// with the controller, a sibling pair, or any stream of another
	// batched job.
	j.states = make([]*pairState, nPairs)
	for i := range j.states {
		j.states[i] = newPairState(t, seedStream(seed, rolePair, i))
	}

	n := rc.model.N()
	j.res.BestSpins = bestSpinsFrom(j.sGlobal, n)
	j.res.BestEnergy = rc.model.Energy(j.res.BestSpins)

	// Per-run evaluation scratch: evalSpins is reused at every eval
	// point (BestSpins is only written on improvement), and on the fast
	// path tracker carries the energy across sync points so unchanged
	// or sparsely changed states avoid re-walking every edge.
	j.evalSpins = make([]int8, n)
	if j.useDelta {
		j.tracker = newEnergyTracker(rc.model, j.res.BestSpins, j.res.BestEnergy, rc.exactEnergy)
	}
	// Flip accounting for KindEnergy events costs an O(n) diff per
	// evaluation, so the previous-evaluation state is only kept when a
	// recorder actually retains energy events.
	if j.run.WantsEnergyDetail() {
		j.prevEval = append([]int8(nil), j.res.BestSpins...)
	}
	// Reconciliation scratch, reused across global iterations (the
	// inner per-block slices keep their capacity between rounds).
	j.copies = make([][][]float64, grid.Tiles)

	j.selectCount = int(float64(nPairs)*cfg.TileFraction + 0.5)
	if j.selectCount < 1 {
		j.selectCount = 1
	}
	j.perm = make([]int, nPairs)
	for i := range j.perm {
		j.perm[i] = i
	}
	j.selected = make([]int, 0, j.selectCount)

	j.run.InitDone()
	return j, nil
}

// shouldStop polls the batch portfolio stop flag and the caller's
// context at an iteration boundary; when either fired it marks the
// result stopped and reports true. Neither poll consumes randomness, so
// a run that completes is bit-identical to an uncancellable one.
func (j *jobRun) shouldStop() bool {
	if j.rc.stop != nil && j.rc.stop.stopped() {
		j.res.Stopped = true
		return true
	}
	if j.rc.ctx != nil {
		select {
		case <-j.rc.ctx.Done():
			j.res.Stopped = true
			return true
		default:
		}
	}
	return false
}

// phiAt returns the geometric noise-annealing schedule's level at
// global iteration g (constant when PhiEnd is 0).
func (j *jobRun) phiAt(g int) float64 {
	cfg := &j.rc.cfg
	//sophielint:ignore floateq exact equality of two user-set config values selects the constant-noise fast path
	if cfg.PhiEnd <= 0 || cfg.Phi == cfg.PhiEnd || cfg.GlobalIters == 1 {
		return cfg.Phi
	}
	frac := float64(g-1) / float64(cfg.GlobalIters-1)
	return cfg.Phi * math.Pow(cfg.PhiEnd/cfg.Phi, frac)
}

// beginIter opens global iteration g: stochastic pair selection, then
// the load phase (each selected pair copies its spin blocks and
// rebuilds its offset vectors from the partial-sum table). It returns
// the iteration's noise level; the selected pairs are in j.selected.
// After beginIter the caller dispatches localPair for every selected
// pair (concurrently if it likes), then calls endIter.
func (j *jobRun) beginIter(g int) float64 {
	rc := j.rc
	grid := rc.grid
	nPairs := grid.PairCount()
	phi := j.phiAt(g)

	// --- Stochastic tile computation: pick the pairs for this round.
	j.selected = j.selected[:0]
	if j.selectCount == nPairs {
		j.selected = append(j.selected, j.perm...)
	} else {
		j.ctrl.Shuffle(nPairs, func(a, b int) { j.perm[a], j.perm[b] = j.perm[b], j.perm[a] })
		j.selected = append(j.selected, j.perm[:j.selectCount]...)
	}
	j.run.GlobalStart(g, len(j.selected), phi)

	// --- Load phase.
	for _, pi := range j.selected {
		p := rc.pairs[pi]
		st := j.states[pi]
		copy(st.xRow, grid.Block(j.sGlobal, p.Row))
		if j.useDelta {
			buildOffsetCached(st.offRow, j.rowSum[p.Row], j.partial[j.pIdx(p.Row, p.Col)])
		} else {
			rc.buildOffset(st.offRow, j.partial, j.pIdx, p.Row, p.Col)
		}
		if !p.IsDiagonal() {
			copy(st.xCol, grid.Block(j.sGlobal, p.Col))
			if j.useDelta {
				buildOffsetCached(st.offCol, j.rowSum[p.Col], j.partial[j.pIdx(p.Col, p.Row)])
			} else {
				rc.buildOffset(st.offCol, j.partial, j.pIdx, p.Col, p.Row)
			}
		}
	}
	j.run.LoadDone(g, len(j.selected))
	return phi
}

// localPair runs the local-iteration batch of one selected pair — the
// PE worker body. Safe to call concurrently for distinct pairs.
func (j *jobRun) localPair(pi int, phi float64) {
	if j.useDelta {
		j.rc.runLocalIterationsDelta(j.states[pi], j.rc.pairs[pi], pi, phi)
	} else {
		j.rc.runLocalIterations(j.states[pi], j.rc.pairs[pi], pi, phi)
	}
}

// endIter closes global iteration g after every selected pair's
// localPair completed: local-batch accounting, global synchronization,
// and — at evaluation points — energy tracking, trace, the observer
// callback, and the TargetEnergy check. It reports whether the target
// was reached (in which case GlobalEnd is not emitted, matching the
// pre-split early return).
func (j *jobRun) endIter(g int) bool {
	rc := j.rc
	cfg := &rc.cfg

	for _, pi := range j.selected {
		j.run.LocalBatch(g, pi, rc.pairs[pi].IsDiagonal())
	}
	j.run.LocalDone(g)

	// --- Global synchronization (controller).
	rc.synchronize(j.states, j.selected, j.sGlobal, j.partial, j.pIdx, j.ctrl, j.rowSum, j.copies, g, j.run)
	j.run.SyncBarrier(g)

	j.res.GlobalItersRun = g
	j.res.TotalLocalIters = g * cfg.LocalIters

	// --- Track solution quality on the reconciled global state.
	if g%cfg.EvalEvery == 0 || g == cfg.GlobalIters {
		fillSpins(j.evalSpins, j.sGlobal)
		var e float64
		if j.tracker != nil {
			e = j.tracker.energyAt(j.evalSpins)
		} else {
			e = rc.model.Energy(j.evalSpins)
		}
		improved := e < j.res.BestEnergy
		if improved {
			j.res.BestEnergy = e
			j.res.BestGlobalIter = g
			copy(j.res.BestSpins, j.evalSpins)
		}
		if cfg.RecordTrace {
			j.res.Trace = append(j.res.Trace, j.res.BestEnergy)
		}
		if j.prevEval != nil {
			flips := 0
			for i, v := range j.evalSpins {
				if v != j.prevEval[i] {
					flips++
				}
			}
			copy(j.prevEval, j.evalSpins)
			j.run.Energy(g, j.res.BestEnergy, flips, improved)
		}
		if cfg.OnGlobalIteration != nil {
			cfg.OnGlobalIteration(g, j.res.BestEnergy)
		}
		if cfg.TargetEnergy != nil && j.res.BestEnergy <= *cfg.TargetEnergy {
			j.res.ReachedTarget = true
			return true
		}
	}
	j.run.GlobalEnd(g)
	return false
}

// finish closes the trace run and folds the operation counters into the
// result. Call exactly once, after the last iteration (or early exit).
func (j *jobRun) finish() {
	j.run.End()
	j.res.Ops = j.run.Ops()
}

// currentEnergy returns the Hamiltonian of the current reconciled
// global state — the exact re-anchored energy the tempering driver's
// exchange test uses. On the fast path it goes through the incremental
// tracker (bit-exact for integer couplings, a full walk otherwise), so
// exchange boundaries double as the drift re-anchor points the
// baseline's incremental accumulator lacked.
func (j *jobRun) currentEnergy() float64 {
	fillSpins(j.evalSpins, j.sGlobal)
	if j.tracker != nil {
		return j.tracker.energyAt(j.evalSpins)
	}
	return j.rc.model.Energy(j.evalSpins)
}

// observeEnergy folds an out-of-band evaluation (an exchange boundary)
// into the best-so-far bookkeeping. e must be the energy of the state
// currently in evalSpins (i.e. the last currentEnergy call).
func (j *jobRun) observeEnergy(g int, e float64) {
	if e < j.res.BestEnergy {
		j.res.BestEnergy = e
		j.res.BestGlobalIter = g
		copy(j.res.BestSpins, j.evalSpins)
	}
}

// swapStateWith exchanges the two jobs' spin configurations — the
// tempering swap. Only the configuration travels: the global spin
// vector, the partial-sum table it determines, the row-sum cache over
// that table, and the energy tracker keyed to the state. Everything
// else — RNG streams, pair states (reloaded from sGlobal every
// iteration and re-anchored at local iteration 0), best-so-far
// bookkeeping, the trace run — stays with the rung, which is what makes
// this the textbook "swap states, keep temperatures" exchange.
func (j *jobRun) swapStateWith(o *jobRun) {
	j.sGlobal, o.sGlobal = o.sGlobal, j.sGlobal
	j.partial, o.partial = o.partial, j.partial
	j.rowSum, o.rowSum = o.rowSum, j.rowSum
	j.tracker, o.tracker = o.tracker, j.tracker
}
