package core

import (
	"context"
	"testing"
	"time"

	"sophie/internal/graph"
	"sophie/internal/ising"
)

// ctxTestSolver builds a small solver whose runs take many global
// iterations, so there is room to cancel mid-flight.
func ctxTestSolver(t *testing.T, global int) (*Solver, *ising.Model) {
	t.Helper()
	g := graph.KGraph(24)
	m := ising.FromMaxCut(g)
	cfg := DefaultConfig()
	cfg.TileSize = 8
	cfg.GlobalIters = global
	cfg.Phi = 0.2
	cfg.Workers = 1
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

// A background context must not change anything: RunCtx and Run are the
// same trajectory bit for bit.
func TestRunCtxBackgroundBitIdentical(t *testing.T) {
	s, _ := ctxTestSolver(t, 40)
	ref, err := s.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.RunCtx(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if got.BestEnergy != ref.BestEnergy || got.GlobalItersRun != ref.GlobalItersRun || got.Stopped {
		t.Fatalf("RunCtx diverged: got energy %v iters %d stopped %v, want %v / %d / false",
			got.BestEnergy, got.GlobalItersRun, got.Stopped, ref.BestEnergy, ref.GlobalItersRun)
	}
	for i := range ref.BestSpins {
		if ref.BestSpins[i] != got.BestSpins[i] {
			t.Fatalf("spin %d differs: %d vs %d", i, ref.BestSpins[i], got.BestSpins[i])
		}
	}
	if got.Ops != ref.Ops {
		t.Fatalf("op counts diverged:\n%v\nvs\n%v", got.Ops, ref.Ops)
	}
}

// Cancelling mid-run returns best-so-far with Stopped set and no error,
// at the global-iteration boundary after the cancel landed.
func TestRunCtxCancelMidRun(t *testing.T) {
	g := graph.KGraph(24)
	m := ising.FromMaxCut(g)
	cfg := DefaultConfig()
	cfg.TileSize = 8
	cfg.GlobalIters = 10000
	cfg.Phi = 0.2
	cfg.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	const stopAt = 5
	cfg.OnGlobalIteration = func(iter int, _ float64) {
		if iter == stopAt {
			cancel()
		}
	}
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunCtx(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("cancelled run did not report Stopped")
	}
	if res.GlobalItersRun != stopAt {
		t.Fatalf("ran %d global iterations after cancel at %d, want exactly %d",
			res.GlobalItersRun, stopAt, stopAt)
	}
	if len(res.BestSpins) != m.N() {
		t.Fatalf("stopped result has %d spins for %d-spin model", len(res.BestSpins), m.N())
	}
	if got := m.Energy(res.BestSpins); got != res.BestEnergy {
		t.Fatalf("stopped result energy %v does not match its spins (%v)", res.BestEnergy, got)
	}
}

// A deadline that fires before the first boundary still yields a valid
// zero-or-more-iteration result, never an error or a hang.
func TestRunCtxExpiredDeadline(t *testing.T) {
	s, m := ctxTestSolver(t, 10000)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := s.RunCtx(ctx, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("expired-deadline run did not report Stopped")
	}
	if res.GlobalItersRun != 0 {
		t.Fatalf("expired deadline ran %d global iterations, want 0", res.GlobalItersRun)
	}
	if got := m.Energy(res.BestSpins); got != res.BestEnergy {
		t.Fatalf("energy %v does not match spins (%v)", res.BestEnergy, got)
	}
}

// SolveCtx is the cancellable sibling sophielint's ctxflow check
// demands for the blocking Solve entry point: a completed run is
// bit-identical to Solve, and a pre-cancelled one returns best-so-far
// with Stopped set instead of running to completion.
func TestSolveCtxMatchesSolveAndCancels(t *testing.T) {
	g := graph.KGraph(24)
	m := ising.FromMaxCut(g)
	cfg := DefaultConfig()
	cfg.TileSize = 8
	cfg.GlobalIters = 40
	cfg.Phi = 0.2
	cfg.Workers = 1
	cfg.Seed = 7

	ref, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveCtx(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.BestEnergy != ref.BestEnergy || got.GlobalItersRun != ref.GlobalItersRun || got.Stopped {
		t.Fatalf("SolveCtx diverged from Solve: energy %v iters %d stopped %v, want %v / %d / false",
			got.BestEnergy, got.GlobalItersRun, got.Stopped, ref.BestEnergy, ref.GlobalItersRun)
	}
	for i := range ref.BestSpins {
		if ref.BestSpins[i] != got.BestSpins[i] {
			t.Fatalf("spin %d differs: %d vs %d", i, ref.BestSpins[i], got.BestSpins[i])
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.GlobalIters = 100000
	stopped, err := SolveCtx(ctx, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stopped.Stopped || stopped.GlobalItersRun != 0 {
		t.Fatalf("pre-cancelled SolveCtx ran %d iterations (stopped=%v), want 0 / true",
			stopped.GlobalItersRun, stopped.Stopped)
	}
	if got := m.Energy(stopped.BestSpins); got != stopped.BestEnergy {
		t.Fatalf("stopped result energy %v does not match its spins (%v)", stopped.BestEnergy, got)
	}
}

// RunBatchCtx with a live context matches RunBatch bit for bit, and a
// cancelled batch aggregates partial replicas without error.
func TestRunBatchCtx(t *testing.T) {
	s, _ := ctxTestSolver(t, 30)
	seeds := mustSeedRange(5, 3)
	ref, err := s.RunBatch(seeds, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.RunBatchCtx(context.Background(), seeds, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.BestEnergy != ref.BestEnergy || got.BestIndex != ref.BestIndex || got.Stopped != 0 {
		t.Fatalf("RunBatchCtx diverged: %+v vs %+v", got, ref)
	}
	for j := range ref.Results {
		if got.Results[j].BestEnergy != ref.Results[j].BestEnergy {
			t.Fatalf("replica %d energy diverged", j)
		}
	}

	// Pre-cancelled: every replica reports a stopped result; no error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stopped, err := s.RunBatchCtx(ctx, seeds, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stopped.Stopped != len(seeds) {
		t.Fatalf("pre-cancelled batch reports %d stopped replicas, want %d", stopped.Stopped, len(seeds))
	}
	for j, r := range stopped.Results {
		if r == nil || !r.Stopped {
			t.Fatalf("replica %d of pre-cancelled batch not stopped: %+v", j, r)
		}
	}

	// Nil context is treated as Background, not a panic.
	if _, err := s.RunBatchCtx(nil, seeds[:1], BatchOptions{}); err != nil { //nolint:staticcheck // nil ctx tolerance is the contract under test
		t.Fatalf("nil context: %v", err)
	}
}

// A deadline mid-batch cuts replicas at boundaries; each partial result
// stays internally consistent (energy matches spins).
func TestRunBatchCtxDeadlineMidBatch(t *testing.T) {
	s, m := ctxTestSolver(t, 100000)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	batch, err := s.RunBatchCtx(ctx, mustSeedRange(1, 4), BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Stopped == 0 {
		t.Fatal("100k-iteration batch under a 50ms deadline reported no stopped replicas")
	}
	for j, r := range batch.Results {
		if got := m.Energy(r.BestSpins); got != r.BestEnergy {
			t.Fatalf("replica %d: energy %v does not match spins (%v)", j, r.BestEnergy, got)
		}
	}
}
