package core

// RNG stream derivation.
//
// A job's randomness fans out into independent streams: one controller
// stream (initial state, tile selection, spin picks), one stream per
// tile pair (threshold noise), and one device stream when the engine
// models stochastic hardware (opcm read noise). Before PR 3 these were
// derived with raw arithmetic — `seed ^ 0x5deece66d` for the controller
// and `seed + i*7919 + 1` for pair i — which has structural collisions:
// two jobs whose seeds differ by the XOR constant share a controller
// stream, and a pair seed of one job can equal the controller or a pair
// seed of a nearby job. Batched replica execution makes nearby seeds
// the common case, so streams are now separated by splitmix64, a
// bijective 64-bit finalizer whose increments diffuse through every
// output bit (Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014).
//
// Compatibility note: this changes the random trajectory of every run
// relative to revisions before PR 3. Results remain a pure function of
// the seed — only the function changed — and TestSeedStreamGolden pins
// the new derivation so any future change is equally deliberate.

// Stream roles. The role lands in the top byte of the mixer input, so
// no pair index (< 2^56) can alias one role's stream onto another's.
const (
	roleController uint64 = 0xC1
	rolePair       uint64 = 0x9A
	roleDevice     uint64 = 0xD5
	// roleColored feeds the colored-update runtime's stateless noise:
	// the stream index is the spin, and each (step, spin) pair draws its
	// normal deviate by mixing the stream with the step counter — no
	// per-worker RNG state, which is what makes the chromatic sweep
	// bit-reproducible at any worker count.
	roleColored uint64 = 0x7C
	// roleExchange feeds the tempering runtime's exchange decisions: one
	// stream per portfolio (derived from the coldest rung's seed), and
	// each (round, rung) attempt draws its acceptance uniform by mixing
	// the stream with the round and rung counters — stateless like
	// roleColored, which is what makes exchange outcomes bit-reproducible
	// at any worker count.
	roleExchange uint64 = 0xE7
)

// splitmix64 is the SplitMix64 finalizer: a bijection on 64-bit values
// with full avalanche, so structured inputs (consecutive seeds, XOR
// siblings, small indices) map to statistically independent outputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// seedStream derives the RNG seed of the stream (jobSeed, role, index).
// Two applications of the bijective mixer separate the job dimension
// from the (role, index) dimension: streams of the same job differ in
// the second mixer's input (distinct role byte or index), and streams
// of different jobs differ in the first mixer's output. Structural
// collisions are impossible; accidental ones have the 2^-64 probability
// of any 64-bit hash pair.
func seedStream(jobSeed int64, role uint64, index int) int64 {
	z := splitmix64(uint64(jobSeed))
	return int64(splitmix64(z ^ (role << 56) ^ uint64(index)))
}
