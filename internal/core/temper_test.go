package core

import (
	"context"
	"math"
	"testing"

	"sophie/internal/baseline"
	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/trace"
)

// Tests for the tempering portfolio runtime (temper.go): ladder shape,
// exchange accounting, the worker-count bit-identity contract, trace
// integration, and a quality cross-check against the software
// parallel-tempering baseline.

func temperProblem(t testing.TB) (*graph.Graph, *ising.Model) {
	t.Helper()
	g, err := graph.Random(64, 320, graph.WeightUnit, 17)
	if err != nil {
		t.Fatal(err)
	}
	return g, ising.FromMaxCut(g)
}

func temperSolver(t testing.TB, mutate func(*Config)) *Solver {
	t.Helper()
	_, m := temperProblem(t)
	cfg := quickConfig()
	cfg.Workers = 1
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTemperingLadderAndStats(t *testing.T) {
	s := temperSolver(t, nil)
	topts := TemperingOptions{TMin: 0.05, TMax: 0.5, ExchangeEvery: 5}
	b, err := s.RunTempering(mustSeedRange(1, 4), topts)
	if err != nil {
		t.Fatal(err)
	}
	ts := b.Tempering
	if ts == nil {
		t.Fatal("tempering batch carries no TemperingStats")
	}
	if len(ts.Phis) != 4 || len(ts.RungEnergies) != 4 || len(b.Results) != 4 {
		t.Fatalf("ladder shape wrong: %d phis, %d energies, %d results", len(ts.Phis), len(ts.RungEnergies), len(b.Results))
	}
	if ts.Phis[0] != topts.TMin {
		t.Fatalf("coldest rung phi %v, want TMin %v", ts.Phis[0], topts.TMin)
	}
	if math.Abs(ts.Phis[3]-topts.TMax) > 1e-12 {
		t.Fatalf("hottest rung phi %v, want TMax %v", ts.Phis[3], topts.TMax)
	}
	ratio := ts.Phis[1] / ts.Phis[0]
	for r := 0; r+1 < len(ts.Phis); r++ {
		if ts.Phis[r+1] <= ts.Phis[r] {
			t.Fatalf("ladder not ascending at rung %d: %v", r, ts.Phis)
		}
		if math.Abs(ts.Phis[r+1]/ts.Phis[r]-ratio) > 1e-12 {
			t.Fatalf("ladder not geometric at rung %d: %v", r, ts.Phis)
		}
	}
	for r, res := range b.Results {
		if math.Float64bits(ts.RungEnergies[r]) != math.Float64bits(res.BestEnergy) {
			t.Fatalf("RungEnergies[%d] = %v, Results[%d].BestEnergy = %v", r, ts.RungEnergies[r], r, res.BestEnergy)
		}
	}
	// quickConfig runs 60 global iterations; exchanges fire at g = 5,
	// 10, ..., 55 (the final iteration has no boundary), three adjacent
	// pairs each.
	wantAttempted := 11 * 3
	if ts.Attempted != wantAttempted {
		t.Fatalf("attempted exchanges %d, want %d", ts.Attempted, wantAttempted)
	}
	if ts.Accepted < 0 || ts.Accepted > ts.Attempted {
		t.Fatalf("accepted %d outside [0, %d]", ts.Accepted, ts.Attempted)
	}
	if want := float64(ts.Accepted) / float64(ts.Attempted); ts.ExchangeRate != want {
		t.Fatalf("exchange rate %v, want %v", ts.ExchangeRate, want)
	}
	// Every rung's reported energy must match its spins exactly — the
	// exchange path swaps trackers with states, so a mismatch here means
	// a swap tore state from bookkeeping.
	m := ising.FromMaxCut(mustTemperGraph(t))
	for r, res := range b.Results {
		if math.Float64bits(res.BestEnergy) != math.Float64bits(m.Energy(res.BestSpins)) {
			t.Fatalf("rung %d: BestEnergy %v != Energy(BestSpins) %v", r, res.BestEnergy, m.Energy(res.BestSpins))
		}
	}
}

func mustTemperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.Random(64, 320, graph.WeightUnit, 17)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTemperingWorkerCountBitIdentity pins the determinism contract:
// the full portfolio — per-rung trajectories, exchange decisions, op
// counters — is bit-identical at any shared-pool worker count. Run
// under -race this also backs the pool's safety.
func TestTemperingWorkerCountBitIdentity(t *testing.T) {
	s := temperSolver(t, func(c *Config) {
		c.RecordTrace = true
		c.EvalEvery = 1
	})
	topts := TemperingOptions{TMin: 0.05, TMax: 0.5, ExchangeEvery: 3}
	seeds := mustSeedRange(7, 4)
	var ref *BatchResult
	for _, workers := range []int{1, 3, 8} {
		b, err := s.RunBatch(seeds, BatchOptions{Workers: workers, Tempering: &topts})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = b
			continue
		}
		for r := range ref.Results {
			requireIdentical(t, "tempering rung", ref.Results[r], b.Results[r])
		}
		if ref.Tempering.Attempted != b.Tempering.Attempted || ref.Tempering.Accepted != b.Tempering.Accepted {
			t.Fatalf("exchange stats differ across worker counts: %d/%d vs %d/%d",
				ref.Tempering.Accepted, ref.Tempering.Attempted, b.Tempering.Accepted, b.Tempering.Attempted)
		}
		for r := range ref.Tempering.RungEnergies {
			if math.Float64bits(ref.Tempering.RungEnergies[r]) != math.Float64bits(b.Tempering.RungEnergies[r]) {
				t.Fatalf("rung %d energy differs across worker counts", r)
			}
		}
	}
}

func TestTemperingValidation(t *testing.T) {
	s := temperSolver(t, nil)
	seeds := mustSeedRange(1, 4)
	cases := []struct {
		name  string
		seeds []int64
		opts  BatchOptions
	}{
		{"one rung", mustSeedRange(1, 1), BatchOptions{Tempering: &TemperingOptions{TMin: 0.1, TMax: 1}}},
		{"zero tmin", seeds, BatchOptions{Tempering: &TemperingOptions{TMin: 0, TMax: 1}}},
		{"inverted ladder", seeds, BatchOptions{Tempering: &TemperingOptions{TMin: 1, TMax: 0.5}}},
		{"negative period", seeds, BatchOptions{Tempering: &TemperingOptions{TMin: 0.1, TMax: 1, ExchangeEvery: -1}}},
		{"early-stop conflict", seeds, BatchOptions{EarlyStop: true, Tempering: &TemperingOptions{TMin: 0.1, TMax: 1}}},
	}
	for _, c := range cases {
		if _, err := s.RunBatch(c.seeds, c.opts); err == nil {
			t.Errorf("%s: accepted, want error", c.name)
		}
	}
}

// TestTemperingExchangeEvents pins the trace integration: every
// attempted exchange appears as a KindExchange event on the shared
// recorder, and the Progress reducer counts attempts and acceptances —
// the path the sophied job view and /metrics read.
func TestTemperingExchangeEvents(t *testing.T) {
	p := trace.NewProgress()
	rec := trace.NewRecorder(trace.Options{
		Capacity: 1 << 14,
		Kinds:    trace.MaskOf(trace.KindRunStart, trace.KindRunEnd, trace.KindEnergy, trace.KindExchange),
		OnEvent:  p.Observe,
	})
	s := temperSolver(t, func(c *Config) { c.Tracer = rec })
	b, err := s.RunTempering(mustSeedRange(3, 3), TemperingOptions{TMin: 0.05, TMax: 0.5, ExchangeEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := b.Tempering
	snap := rec.Snapshot()
	if got := snap.EventsOf(trace.KindExchange); got != ts.Attempted {
		t.Fatalf("recorder saw %d exchange events, stats say %d attempts", got, ts.Attempted)
	}
	accepted := 0
	for _, ev := range snap.Events {
		if ev.Kind != trace.KindExchange {
			continue
		}
		if ev.Pair < 0 || int(ev.Pair) >= len(ts.Phis)-1 {
			t.Fatalf("exchange event names rung %d outside the ladder", ev.Pair)
		}
		if ev.Flag {
			accepted++
		}
	}
	if accepted != ts.Accepted {
		t.Fatalf("recorder saw %d accepted exchanges, stats say %d", accepted, ts.Accepted)
	}
	ps := p.Snapshot()
	if ps.Exchanges != int64(ts.Attempted) || ps.ExchangesAccepted != int64(ts.Accepted) {
		t.Fatalf("progress counters %d/%d, stats %d/%d", ps.ExchangesAccepted, ps.Exchanges, ts.Accepted, ts.Attempted)
	}
	if ps.RunsStarted != 3 || ps.RunsDone != 3 {
		t.Fatalf("progress runs %d/%d, want 3/3", ps.RunsStarted, ps.RunsDone)
	}
}

// TestTemperingQualityOrdering cross-checks the runtime against the
// software parallel-tempering baseline on the same instance: with
// comparable budgets the two should land in the same quality band
// (the baseline flips single spins; SOPHIE reconciles tile blocks —
// exact equality is not expected, gross divergence is a bug).
func TestTemperingQualityOrdering(t *testing.T) {
	g, m := temperProblem(t)
	cfg := quickConfig()
	cfg.Workers = 1
	cfg.GlobalIters = 120
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunTempering(mustSeedRange(1, 6), TemperingOptions{TMin: 0.05, TMax: 0.4, ExchangeEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := baseline.ParallelTempering(m, baseline.PTConfig{
		Replicas: 6, TMin: 0.05, TMax: 3, Sweeps: 150, ExchangeEvery: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	coreCut := g.CutValue(b.Best().BestSpins)
	baseCut := g.CutValue(pt.BestSpins)
	if coreCut < 0.9*baseCut {
		t.Fatalf("core tempering cut %v below 90%% of baseline PT cut %v", coreCut, baseCut)
	}
}

// TestTemperingTargetStopsPortfolio: a reachable TargetEnergy must stop
// the whole ladder deterministically, with the reaching rung(s) flagged
// and the rest marked Stopped when cut short.
func TestTemperingTargetStopsPortfolio(t *testing.T) {
	seeds := mustSeedRange(11, 4)
	topts := TemperingOptions{TMin: 0.05, TMax: 0.5, ExchangeEvery: 2}
	probe := temperSolver(t, nil)
	full, err := probe.RunTempering(seeds, topts)
	if err != nil {
		t.Fatal(err)
	}
	target := full.BestEnergy
	s := temperSolver(t, func(c *Config) { c.TargetEnergy = &target })
	b, err := s.RunTempering(seeds, topts)
	if err != nil {
		t.Fatal(err)
	}
	if b.Succeeded == 0 {
		t.Fatalf("no rung reached the (known reachable) target %v; best %v", target, b.BestEnergy)
	}
	if b.BestEnergy > target {
		t.Fatalf("portfolio best %v worse than target %v", b.BestEnergy, target)
	}
	for r, res := range b.Results {
		if !res.ReachedTarget && !res.Stopped && res.GlobalItersRun < probe.cfg.GlobalIters {
			t.Fatalf("rung %d neither reached, stopped, nor ran to completion: %+v", r, res)
		}
	}
}

// TestTemperingContextCancel: an already-cancelled context yields a
// full ladder of stopped zero-progress results, not an error.
func TestTemperingContextCancel(t *testing.T) {
	s := temperSolver(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, err := s.RunTemperingCtx(ctx, mustSeedRange(1, 3), TemperingOptions{TMin: 0.05, TMax: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Stopped != 3 {
		t.Fatalf("%d rungs stopped, want all 3", b.Stopped)
	}
	for r, res := range b.Results {
		if res.GlobalItersRun != 0 {
			t.Fatalf("cancelled rung %d ran %d iterations", r, res.GlobalItersRun)
		}
	}
}
