package core

import (
	"math"
	"strings"
	"testing"

	"sophie/internal/graph"
	"sophie/internal/ising"
)

// Satellite coverage for the batch runtime's edges: SeedRange shapes,
// empty-seed rejection, single-replica aggregation, and error surfacing
// when every replica fails (no panic, no partial aggregate).

func TestSeedRange(t *testing.T) {
	cases := []struct {
		base int64
		n    int
		want []int64
	}{
		{base: 0, n: 0, want: []int64{}},
		{base: 5, n: 1, want: []int64{5}},
		{base: 1, n: 4, want: []int64{1, 2, 3, 4}},
		{base: -3, n: 3, want: []int64{-3, -2, -1}},
		// The last seed may land exactly on MaxInt64 — only going past
		// it is an overflow.
		{base: math.MaxInt64 - 1, n: 2, want: []int64{math.MaxInt64 - 1, math.MaxInt64}},
	}
	for _, c := range cases {
		got, err := SeedRange(c.base, c.n)
		if err != nil {
			t.Fatalf("SeedRange(%d,%d): %v", c.base, c.n, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("SeedRange(%d,%d) length %d, want %d", c.base, c.n, len(got), len(c.want))
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SeedRange(%d,%d)[%d] = %d, want %d", c.base, c.n, i, got[i], c.want[i])
			}
		}
	}
	// n = 0 must be an empty non-nil slice usable directly by RunBatch's
	// input validation (which rejects it with a clear error, below).
	if s, err := SeedRange(9, 0); err != nil || s == nil {
		t.Fatalf("SeedRange(9, 0) = (%v, %v), want empty non-nil slice", s, err)
	}
}

// TestSeedRangeOverflow pins the explicit error where the old SeedRange
// silently wrapped past MaxInt64 into the negative seed space,
// duplicating replica streams.
func TestSeedRangeOverflow(t *testing.T) {
	bad := []struct {
		base int64
		n    int
	}{
		{base: math.MaxInt64, n: 2},
		{base: math.MaxInt64 - 1, n: 3},
		{base: 1, n: -1},
	}
	for _, c := range bad {
		if seeds, err := SeedRange(c.base, c.n); err == nil {
			t.Fatalf("SeedRange(%d,%d) = %v, want error", c.base, c.n, seeds)
		}
	}
}

// mustSeedRange is the in-package test shorthand for ranges that cannot
// overflow.
func mustSeedRange(base int64, n int) []int64 {
	seeds, err := SeedRange(base, n)
	if err != nil {
		panic(err)
	}
	return seeds
}

func batchEdgeSolver(t *testing.T) (*Solver, *ising.Model) {
	t.Helper()
	m := ising.FromMaxCut(graph.KGraph(12))
	cfg := DefaultConfig()
	cfg.TileSize = 4
	cfg.GlobalIters = 10
	cfg.Workers = 1
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

func TestRunBatchEmptySeeds(t *testing.T) {
	s, _ := batchEdgeSolver(t)
	for _, seeds := range [][]int64{nil, {}} {
		if _, err := s.RunBatch(seeds, BatchOptions{}); err == nil {
			t.Fatalf("RunBatch(%v) succeeded, want at-least-one-seed error", seeds)
		} else if !strings.Contains(err.Error(), "at least one seed") {
			t.Fatalf("RunBatch(%v) error %q does not explain the empty batch", seeds, err)
		}
	}
}

// A single replica is its own best, median, and mean; its aggregate
// carries its ops verbatim.
func TestRunBatchSingleReplica(t *testing.T) {
	s, _ := batchEdgeSolver(t)
	ref, err := s.Run(42)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := s.RunBatch([]int64{42}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if batch.BestIndex != 0 || len(batch.Results) != 1 {
		t.Fatalf("single-replica batch shape wrong: %+v", batch)
	}
	if batch.BestEnergy != ref.BestEnergy || batch.MedianEnergy != ref.BestEnergy || batch.MeanEnergy != ref.BestEnergy {
		t.Fatalf("single-replica aggregate energies %v/%v/%v, want all %v",
			batch.BestEnergy, batch.MedianEnergy, batch.MeanEnergy, ref.BestEnergy)
	}
	if batch.Ops != ref.Ops {
		t.Fatalf("single-replica batch ops diverge from the lone run:\n%v\nvs\n%v", batch.Ops, ref.Ops)
	}
	if batch.SuccessProb != 0 || batch.Succeeded != 0 || batch.Stopped != 0 {
		t.Fatalf("targetless single-replica batch reports success/stop state: %+v", batch)
	}
}

// When every replica fails, RunBatch surfaces the error instead of
// panicking inside aggregation or returning a half-built BatchResult.
// Wrong-length InitialSpins is only detected inside the job body, which
// makes it a convenient always-failing replica.
func TestRunBatchAllReplicasFailed(t *testing.T) {
	s, _ := batchEdgeSolver(t)
	broken, err := s.WithRuntime(func(c *Config) { c.InitialSpins = []int8{1, -1} })
	if err != nil {
		t.Fatal(err)
	}
	batch, err := broken.RunBatch(mustSeedRange(1, 3), BatchOptions{Workers: 2})
	if err == nil {
		t.Fatalf("all-failing batch returned no error (result %+v)", batch)
	}
	if batch != nil {
		t.Fatalf("failed batch returned a partial aggregate: %+v", batch)
	}
	if !strings.Contains(err.Error(), "initial spins") {
		t.Fatalf("error %q does not name the per-replica failure", err)
	}
}

// aggregate on a lone stopped replica keeps the summary finite and
// consistent — the shape a drained service job produces.
func TestAggregateStoppedReplica(t *testing.T) {
	s, m := batchEdgeSolver(t)
	r, err := s.cancelledResult(8)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stopped || r.GlobalItersRun != 0 {
		t.Fatalf("cancelledResult not a zero-iteration stopped result: %+v", r)
	}
	b := aggregate([]*Result{r})
	if b.Stopped != 1 || b.BestIndex != 0 {
		t.Fatalf("aggregate of stopped replica: %+v", b)
	}
	if math.IsNaN(b.MeanEnergy) || math.IsNaN(b.MedianEnergy) {
		t.Fatalf("aggregate produced NaN summaries: %+v", b)
	}
	if got := m.Energy(r.BestSpins); got != b.BestEnergy {
		t.Fatalf("stopped aggregate energy %v does not match spins (%v)", b.BestEnergy, got)
	}
}
