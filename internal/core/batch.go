package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"sophie/internal/metrics"
)

// Batched replica runtime (DESIGN.md "Batched replica runtime").
//
// SOPHIE amortizes the O(n³) preprocessing and the OPCM programming cost
// by pipelining many independent jobs over one programmed array set.
// RunBatch is the functional-simulation counterpart: B replicas of the
// same problem, each a pure function of its own seed, scheduled
// concurrently over the shared preprocessed solver. Job-scoped engine
// state (device noise streams) is split off per replica through
// tiling.SessionEngine, so results are bit-identical to running each
// seed alone no matter how the scheduler interleaves the replicas.

// batchStop is the cooperative cancellation flag shared by the replicas
// of one batch. A winning replica (one whose best energy reaches
// TargetEnergy) raises it; siblings poll it at global-iteration
// boundaries and return early with Result.Stopped set.
type batchStop struct {
	flag atomic.Bool
}

func (b *batchStop) raise()        { b.flag.Store(true) }
func (b *batchStop) stopped() bool { return b.flag.Load() }

// BatchOptions controls RunBatch scheduling.
type BatchOptions struct {
	// Workers bounds how many replicas run concurrently; 0 means the
	// solver's Config.Workers default (GOMAXPROCS when that is also 0).
	Workers int
	// JobWorkers is the per-replica PE worker count (Config.Workers of
	// the per-job runs). 0 means 1: with many replicas in flight the
	// batch-level parallelism already saturates the cores, and
	// single-threaded jobs compose predictably. Results do not depend on
	// this value — per-job scheduling is invisible (see race_test.go) —
	// so it is purely a throughput knob.
	JobWorkers int
	// EarlyStop enables the portfolio mode: the first replica whose best
	// energy reaches the solver's TargetEnergy raises a shared flag and
	// the remaining replicas cancel at their next global-iteration
	// boundary (Result.Stopped reports which). Requires a TargetEnergy;
	// cancelled replicas' results reflect only the iterations they ran,
	// so batch output is schedule-dependent in this mode — leave it off
	// when reproducibility across worker counts matters.
	EarlyStop bool
	// Tempering, when non-nil, couples the replicas into a
	// parallel-tempering portfolio instead of running them
	// independently: replica r becomes rung r of a geometric noise
	// ladder and adjacent rungs exchange configurations at
	// global-iteration boundaries (see temper.go). Incompatible with
	// EarlyStop (a TargetEnergy alone stops the whole ladder,
	// deterministically); JobWorkers is ignored — the ladder runs one
	// shared PE pool of Workers goroutines.
	Tempering *TemperingOptions
}

// BatchResult aggregates one RunBatch call.
type BatchResult struct {
	// Results holds one Result per seed, in seed order.
	Results []*Result
	// BestIndex is the index (into Results) of the lowest-energy
	// replica; ties break toward the lower index.
	BestIndex int
	// BestEnergy, MeanEnergy and MedianEnergy summarize the replicas'
	// best energies.
	BestEnergy   float64
	MeanEnergy   float64
	MedianEnergy float64
	// Succeeded counts replicas that reached TargetEnergy; SuccessProb
	// is Succeeded over the replica count (0 when no target is set).
	Succeeded   int
	SuccessProb float64
	// Stopped counts replicas cancelled by the portfolio early-stop.
	Stopped int
	// Ops is the sum of the replicas' algorithm-level operation
	// counters — the work the whole batch put through the datapath.
	Ops metrics.OpCounts
	// Tempering carries the ladder and exchange statistics when the
	// batch ran as a tempering portfolio (BatchOptions.Tempering); nil
	// for independent-replica batches.
	Tempering *TemperingStats
}

// Best returns the lowest-energy replica's result.
func (b *BatchResult) Best() *Result { return b.Results[b.BestIndex] }

// SeedRange returns n consecutive seeds starting at base — the common
// replica-seed convention of the CLIs. Consecutive job seeds are safe:
// seedStream whitens them into unrelated controller/pair/device streams.
// A range whose last seed would pass math.MaxInt64 is an error rather
// than a silent wrap: the wrapped seeds would collide with the negative
// seed space and duplicate streams across replicas.
func SeedRange(base int64, n int) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("core: negative seed count %d", n)
	}
	if n > 0 && base > math.MaxInt64-int64(n-1) {
		return nil, fmt.Errorf("core: seed range %d+%d overflows int64", base, n)
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds, nil
}

// RunBatch executes one replica per seed over the shared preprocessed
// solver, up to opts.Workers at a time, and aggregates the results.
// Replica j is bit-identical to s.Run(seeds[j]) run alone — each
// replica's randomness is a pure function of its seed, and job-scoped
// engine state is isolated per replica via tiling.SessionEngine — so
// with EarlyStop off the batch output does not depend on Workers,
// JobWorkers or goroutine scheduling.
func (s *Solver) RunBatch(seeds []int64, opts BatchOptions) (*BatchResult, error) {
	return s.RunBatchCtx(context.Background(), seeds, opts)
}

// RunBatchCtx is RunBatch under caller-controlled cancellation: every
// replica observes the context's cancel or deadline at its
// global-iteration boundaries (exactly like the portfolio stop flag)
// and winds down with Result.Stopped set and its best-so-far state.
// Cancellation is not an error — the aggregated BatchResult reports how
// many replicas were cut short via BatchResult.Stopped — so a service
// draining a deadline-bounded job still gets every replica's partial
// best. Replicas that finish before the context fires are bit-identical
// to their RunBatch counterparts; replicas cancelled before they start
// report zero-iteration stopped results.
func (s *Solver) RunBatchCtx(ctx context.Context, seeds []int64, opts BatchOptions) (*BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: batch needs at least one seed")
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("core: negative batch worker count %d", opts.Workers)
	}
	if opts.JobWorkers < 0 {
		return nil, fmt.Errorf("core: negative per-job worker count %d", opts.JobWorkers)
	}
	if opts.Tempering != nil {
		return s.runTemperingCtx(ctx, seeds, opts)
	}
	if opts.EarlyStop && s.cfg.TargetEnergy == nil {
		return nil, fmt.Errorf("core: batch early-stop requires Config.TargetEnergy")
	}
	workers := opts.Workers
	if workers == 0 {
		workers = s.cfg.workers()
	}
	jobWorkers := opts.JobWorkers
	if jobWorkers == 0 {
		jobWorkers = 1
	}
	runner, err := s.WithRuntime(func(c *Config) { c.Workers = jobWorkers })
	if err != nil {
		return nil, err
	}

	var stop *batchStop
	if opts.EarlyStop {
		stop = &batchStop{}
	}
	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(len(seeds))
	for j := range seeds {
		go func(j int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if (stop != nil && stop.stopped()) || ctx.Err() != nil {
				// Cancelled before starting: report a zero-iteration
				// stopped result rather than running for nothing.
				r, err := runner.cancelledResult(seeds[j])
				results[j], errs[j] = r, err
				return
			}
			r, err := runner.newRunContext(ctx, seeds[j], stop).run(seeds[j])
			if err == nil && stop != nil && r.ReachedTarget {
				stop.raise()
			}
			results[j], errs[j] = r, err
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return aggregate(results), nil
}

// cancelledResult builds the Result for a replica the portfolio stop
// cancelled before its first global iteration: the (seed-determined)
// initial state evaluated once, zero iterations run.
func (s *Solver) cancelledResult(seed int64) (*Result, error) {
	zero, err := s.WithRuntime(func(c *Config) { c.GlobalIters = 1 })
	if err != nil {
		return nil, err
	}
	pre := &batchStop{}
	pre.raise()
	return zero.newRunContext(nil, seed, pre).run(seed)
}

// aggregate folds per-replica results into a BatchResult.
func aggregate(results []*Result) *BatchResult {
	b := &BatchResult{Results: results}
	energies := make([]float64, len(results))
	for i, r := range results {
		energies[i] = r.BestEnergy
		if r.BestEnergy < results[b.BestIndex].BestEnergy {
			b.BestIndex = i
		}
		if r.ReachedTarget {
			b.Succeeded++
		}
		if r.Stopped {
			b.Stopped++
		}
		b.Ops.Add(r.Ops)
	}
	b.BestEnergy = results[b.BestIndex].BestEnergy
	mean := 0.0
	for _, e := range energies {
		mean += e
	}
	b.MeanEnergy = mean / float64(len(energies))
	sort.Float64s(energies)
	mid := len(energies) / 2
	if len(energies)%2 == 1 {
		b.MedianEnergy = energies[mid]
	} else {
		b.MedianEnergy = (energies[mid-1] + energies[mid]) / 2
	}
	b.SuccessProb = float64(b.Succeeded) / float64(len(results))
	return b
}
