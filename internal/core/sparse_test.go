package core

import (
	"math"
	"os"
	"testing"

	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/linalg"
	"sophie/internal/opcm"
	"sophie/internal/tiling"
)

// sparseProblem is the G22-mini workload at sparse density: 125 nodes
// and 650 edges store at 650·2/125² ≈ 8.3% density, below the 10%
// auto-pick threshold (testProblem's 12.1% deliberately stays above
// it, so the pre-existing suite keeps exercising the dense engine).
func sparseProblem(t testing.TB, scheme graph.WeightScheme) (*graph.Graph, *ising.Model) {
	t.Helper()
	g, err := graph.Random(125, 650, scheme, 53122)
	if err != nil {
		t.Fatal(err)
	}
	return g, ising.FromMaxCut(g)
}

func sparseConfig() Config {
	cfg := quickConfig()
	cfg.SkipTransform = true
	cfg.RecordTrace = true
	return cfg
}

// TestSparseAutoPickBitIdenticalToDense is the golden gate of the
// sparse datapath: for an eligible instance (SkipTransform, default
// engine, density below the threshold) the auto-picked CSR engine must
// reproduce the ForceDense solve bit for bit — spins, energies, trace,
// and op counts — across seeds and weight schemes, on both the delta
// and the exact-recompute paths.
func TestSparseAutoPickBitIdenticalToDense(t *testing.T) {
	schemes := map[string]graph.WeightScheme{
		"unit":    graph.WeightUnit,
		"pm1":     graph.WeightPM1,
		"uniform": graph.WeightUniform,
	}
	for name, scheme := range schemes {
		t.Run(name, func(t *testing.T) {
			_, m := sparseProblem(t, scheme)
			for _, exact := range []bool{false, true} {
				for _, seed := range []int64{1, 2, 3} {
					cfg := sparseConfig()
					cfg.ExactRecompute = exact

					dense := cfg
					dense.ForceDense = true
					denseSolver, err := NewSolver(m, dense)
					if err != nil {
						t.Fatal(err)
					}
					if _, ok := denseSolver.engine.(*tiling.SparseEngine); ok {
						t.Fatal("ForceDense solver picked the sparse engine")
					}
					ref, err := denseSolver.Run(seed)
					if err != nil {
						t.Fatal(err)
					}

					sparseSolver, err := NewSolver(m, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if _, ok := sparseSolver.engine.(*tiling.SparseEngine); !ok {
						t.Fatalf("eligible instance did not auto-pick the sparse engine (got %T)", sparseSolver.engine)
					}
					got, err := sparseSolver.Run(seed)
					if err != nil {
						t.Fatal(err)
					}

					label := name + map[bool]string{false: "/delta", true: "/exact"}[exact]
					requireIdentical(t, label, ref, got)
					_ = label
				}
			}
		})
	}
}

// TestSparseBuiltModelMatchesDenseBuilt pins the ising.FromMaxCutCSR
// construction path: a model built straight from CSR couplings (never
// materializing the dense matrix) must solve bit-identically to the
// dense-built model of the same graph.
func TestSparseBuiltModelMatchesDenseBuilt(t *testing.T) {
	g, mDense := sparseProblem(t, graph.WeightUnit)
	mSparse := ising.FromMaxCutCSR(g)
	if mSparse.HasDense() {
		t.Fatal("FromMaxCutCSR produced a dense-backed model")
	}
	cfg := sparseConfig()
	for _, seed := range []int64{1, 2, 3} {
		solver, err := NewSolver(mSparse, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := solver.Run(seed)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewSolver(mDense, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Run(seed)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "csr-built vs dense-built", want, got)
	}
}

// TestOpcmEngineUnaffectedBySparseAvailability pins the S3 fallback
// contract on a sparse-density instance: a custom engine factory (the
// opcm device model) opts the solve out of sparse selection entirely,
// its sessions expose no delta kernels, and the solve therefore runs
// the exact-recompute path — identical whether or not ExactRecompute
// is set.
func TestOpcmEngineUnaffectedBySparseAvailability(t *testing.T) {
	_, m := sparseProblem(t, graph.WeightUnit)
	cfg := sparseConfig()
	cfg.GlobalIters = 20
	cfg.Engine = func(tiles []*linalg.Matrix) (tiling.Engine, error) {
		return opcm.NewEngine(tiles, 0, opcm.DefaultParams())
	}
	solver, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := solver.engine.(*tiling.SparseEngine); ok {
		t.Fatal("custom engine factory must disable sparse selection")
	}
	if solver.delta != nil {
		t.Fatal("opcm engine must not expose delta kernels")
	}
	dev, err := solver.Run(9)
	if err != nil {
		t.Fatal(err)
	}
	exact := cfg
	exact.ExactRecompute = true
	refSolver, err := NewSolver(m, exact)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refSolver.Run(9)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "opcm on sparse-density instance", ref, dev)
}

func coloredConfig(n int) Config {
	cfg := DefaultConfig()
	cfg.TileSize = n
	cfg.GlobalIters = 30
	cfg.LocalIters = 5
	cfg.Phi = 0.15
	cfg.SkipTransform = true
	cfg.ColoredUpdate = true
	cfg.RecordTrace = true
	return cfg
}

// TestColoredUpdateWorkerCountIndependence pins the chromatic update's
// determinism contract: the trajectory is a pure function of the seed
// at any worker count — stateless per-(step,spin) noise, ascending
// merged flip lists, and output-range-sharded flip application make
// 1 worker and many workers produce bit-identical results.
func TestColoredUpdateWorkerCountIndependence(t *testing.T) {
	_, m := sparseProblem(t, graph.WeightUnit)
	base := coloredConfig(m.N())
	var ref *Result
	for _, workers := range []int{1, 3, 8} {
		cfg := base
		cfg.Workers = workers
		solver, err := NewSolver(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.Run(17)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		requireIdentical(t, "colored workers", ref, res)
	}
}

// TestColoredUpdateResultConsistency checks the colored runtime's
// outputs are well-formed: ±1 spins, a best energy matching the model's
// own evaluation of the best spins, and a monotone best-so-far trace.
func TestColoredUpdateResultConsistency(t *testing.T) {
	g, m := sparseProblem(t, graph.WeightUnit)
	solver, err := NewSolver(m, coloredConfig(m.N()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BestSpins) != m.N() {
		t.Fatalf("got %d spins for %d-spin model", len(res.BestSpins), m.N())
	}
	for i, sp := range res.BestSpins {
		if sp != 1 && sp != -1 {
			t.Fatalf("spin %d is %d, want ±1", i, sp)
		}
	}
	if math.Float64bits(res.BestEnergy) != math.Float64bits(m.Energy(res.BestSpins)) {
		t.Fatalf("BestEnergy %v does not match model energy %v", res.BestEnergy, m.Energy(res.BestSpins))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1] {
			t.Fatalf("trace not monotone at %d: %v > %v", i, res.Trace[i], res.Trace[i-1])
		}
	}
	if cut := g.CutValue(res.BestSpins); cut <= 0 {
		t.Fatalf("non-positive cut %v", cut)
	}
}

// TestSparseSelectionErrors pins the admission rules of the sparse
// datapath and the colored update.
func TestSparseSelectionErrors(t *testing.T) {
	g, mDense := sparseProblem(t, graph.WeightUnit)
	mSparse := ising.FromMaxCutCSR(g)

	t.Run("force-dense on sparse-built model", func(t *testing.T) {
		cfg := sparseConfig()
		cfg.ForceDense = true
		if _, err := NewSolver(mSparse, cfg); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("sparse-built model needs SkipTransform", func(t *testing.T) {
		cfg := quickConfig()
		if _, err := NewSolver(mSparse, cfg); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("sparse-built model rejects custom engine", func(t *testing.T) {
		cfg := sparseConfig()
		cfg.Engine = func(tiles []*linalg.Matrix) (tiling.Engine, error) {
			return tiling.NewIdealEngine(tiles)
		}
		if _, err := NewSolver(mSparse, cfg); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("colored update needs single tile", func(t *testing.T) {
		cfg := coloredConfig(mDense.N())
		cfg.TileSize = 32
		if _, err := NewSolver(mDense, cfg); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("colored update needs sparse density", func(t *testing.T) {
		// A complete graph stores at ~99% density, above every entry of
		// the per-tile-order threshold table.
		dense := ising.FromMaxCut(graph.KGraph(64))
		cfg := coloredConfig(dense.N())
		if _, err := NewSolver(dense, cfg); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("colored update config conflicts", func(t *testing.T) {
		mutations := []func(*Config){
			func(c *Config) { c.ForceDense = true },
			func(c *Config) { c.ExactRecompute = true },
			func(c *Config) { c.SkipTransform = false },
			func(c *Config) {
				c.Engine = func(tiles []*linalg.Matrix) (tiling.Engine, error) {
					return tiling.NewIdealEngine(tiles)
				}
			},
		}
		for i, mutate := range mutations {
			cfg := coloredConfig(mDense.N())
			mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("mutation %d: want validation error", i)
			}
		}
	})
	t.Run("WithRuntime cannot change datapath", func(t *testing.T) {
		solver, err := NewSolver(mDense, sparseConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := solver.WithRuntime(func(c *Config) { c.ForceDense = true }); err == nil {
			t.Fatal("want error for ForceDense change")
		}
		if _, err := solver.WithRuntime(func(c *Config) { c.ColoredUpdate = true }); err == nil {
			t.Fatal("want error for ColoredUpdate change")
		}
	})
}

// TestSparseBuiltScale runs a 10k-node random-regular instance through
// the sparse-built path end to end — the shape of the million-spin
// workload at test-suite cost. The full 100k smoke lives behind
// SOPHIE_SPARSE_SMOKE=1 (exercised by the CI sparse-smoke job).
func TestSparseBuiltScale(t *testing.T) {
	n := 10_000
	if os.Getenv("SOPHIE_SPARSE_SMOKE") != "" {
		n = 100_000
	}
	g, err := graph.RandomRegular(n, 3, graph.WeightUnit, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCutCSR(g)
	cfg := DefaultConfig()
	cfg.TileSize = n
	cfg.GlobalIters = 3
	cfg.LocalIters = 2
	cfg.Phi = 0.15
	cfg.SkipTransform = true
	res, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cut := g.CutValue(res.BestSpins); cut <= 0 {
		t.Fatalf("non-positive cut %v on %d-node instance", cut, n)
	}
}
