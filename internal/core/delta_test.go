package core

import (
	"fmt"
	"testing"

	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/linalg"
	"sophie/internal/metrics"
	"sophie/internal/opcm"
	"sophie/internal/tiling"
)

// TestDeltaPathMatchesExactRecompute is the golden equivalence gate for
// the flip-aware incremental datapath: with the ideal engine, a solve on
// the fast path must reproduce the reference (ExactRecompute) path
// bit for bit — spins, energies, full trace, and op counts — across
// seeds and tile sizes.
func TestDeltaPathMatchesExactRecompute(t *testing.T) {
	_, m := testProblem(t)
	for _, tileSize := range []int{16, 32, 64} {
		for _, seed := range []int64{1, 7, 42} {
			cfg := quickConfig()
			cfg.TileSize = tileSize
			cfg.RecordTrace = true

			exact := cfg
			exact.ExactRecompute = true
			refSolver, err := NewSolver(m, exact)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := refSolver.Run(seed)
			if err != nil {
				t.Fatal(err)
			}

			fastSolver, err := NewSolver(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := fastSolver.Run(seed)
			if err != nil {
				t.Fatal(err)
			}

			label := fmt.Sprintf("tile=%d seed=%d", tileSize, seed)
			requireIdentical(t, label, ref, fast)
		}
	}
}

// TestDeltaPathMatchesExactRecomputeVariants exercises the fast path
// under the paper's stochastic knobs — partial tile selection, majority
// reconciliation, annealed noise, sparse evaluation — and a low
// DeltaRefreshEvery forcing mid-round re-anchoring.
func TestDeltaPathMatchesExactRecomputeVariants(t *testing.T) {
	_, m := testProblem(t)
	variants := map[string]func(*Config){
		"majority":     func(c *Config) { c.SpinUpdate = SpinUpdateMajority },
		"partial":      func(c *Config) { c.TileFraction = 0.6 },
		"annealed":     func(c *Config) { c.Phi = 0.3; c.PhiEnd = 0.05 },
		"sparse-eval":  func(c *Config) { c.EvalEvery = 7 },
		"refresh-2":    func(c *Config) { c.DeltaRefreshEvery = 2 },
		"long-local":   func(c *Config) { c.LocalIters = 20 }, // crosses defaultDeltaRefresh
		"single-tile":  func(c *Config) { c.TileSize = 128 },  // untiled: offsets vanish
		"zero-noise":   func(c *Config) { c.Phi = 0 },
		"many-workers": func(c *Config) { c.Workers = 4 },
	}
	for name, mutate := range variants {
		cfg := quickConfig()
		cfg.RecordTrace = true
		mutate(&cfg)

		exact := cfg
		exact.ExactRecompute = true
		refSolver, err := NewSolver(m, exact)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := refSolver.Run(99)
		if err != nil {
			t.Fatal(err)
		}
		fastSolver, err := NewSolver(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := fastSolver.Run(99)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, name, ref, fast)
	}
}

// TestDeltaPathFloatCouplings covers the non-integer-coupling energy
// fallback: number-partitioning couplings are floats, so the tracker
// must take the full Energy walk and still match the reference path.
func TestDeltaPathFloatCouplings(t *testing.T) {
	m := ising.NumberPartition([]float64{3.7, 1.2, 9.5, 4.4, 2.2, 8.1, 5.3, 0.9, 6.6, 7.7, 1.1, 2.9, 3.3, 4.8, 5.5, 6.1, 7.2, 8.8, 9.9, 0.4})
	if m.IntegerCouplings() {
		t.Fatal("test premise broken: expected non-integer couplings")
	}
	cfg := quickConfig()
	cfg.TileSize = 8
	cfg.RecordTrace = true
	exact := cfg
	exact.ExactRecompute = true
	ref, err := Solve(m, exact)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "float-couplings", ref, fast)
}

// TestOpcmEngineFallsBackToReferencePath pins the device-model contract:
// opcm's per-call noise draws are part of the device semantics, so its
// engine must not satisfy tiling.DeltaEngine, and solves with it must be
// identical whether or not ExactRecompute is set (both take the
// reference path).
func TestOpcmEngineFallsBackToReferencePath(t *testing.T) {
	eng, err := opcm.NewEngine([]*linalg.Matrix{linalg.NewMatrix(4, 4)}, 0, opcm.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var anyEngine tiling.Engine = eng
	if _, ok := anyEngine.(tiling.DeltaEngine); ok {
		t.Fatal("opcm.Engine must not implement tiling.DeltaEngine: per-call noise draws cannot be decomposed per column")
	}

	_, m := testProblem(t)
	cfg := quickConfig()
	cfg.RecordTrace = true
	cfg.GlobalIters = 20
	cfg.Engine = func(tiles []*linalg.Matrix) (tiling.Engine, error) {
		return opcm.NewEngine(tiles, 0, opcm.DefaultParams())
	}
	exact := cfg
	exact.ExactRecompute = true
	ref, err := Solve(m, exact)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "opcm-fallback", ref, dev)
}

// TestOpCountsExactSmallTiledModel pins the exact analytic op counts for
// a small tiled solve — in particular the initialization charges, where
// a diagonal pair executes one MVM (not two). The counts are derived by
// hand from the dataflow of Run/synchronize below and must hold on both
// datapaths (operation counting models the hardware, which always runs
// full MVMs; the simulator fast path is charged identically).
func TestOpCountsExactSmallTiledModel(t *testing.T) {
	// 48 nodes, tile 16 → 3×3 tile grid: 3 diagonal + 3 off-diagonal pairs.
	g, err := graph.Random(48, 200, graph.WeightUnit, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)

	const (
		tile  = 16
		tiles = 3
		diag  = 3
		off   = 3
		L     = 4
		G     = 5
	)
	cfg := DefaultConfig()
	cfg.TileSize = tile
	cfg.LocalIters = L
	cfg.GlobalIters = G
	cfg.Phi = 0.1
	cfg.SpinUpdate = SpinUpdateStochastic

	for _, exactRecompute := range []bool{false, true} {
		cfg.ExactRecompute = exactRecompute
		res, err := Solve(m, cfg)
		if err != nil {
			t.Fatal(err)
		}

		var want metrics.OpCounts
		// Initialization: one 8-bit MVM per diagonal pair, two per
		// off-diagonal pair, each sampling t outputs.
		want.LocalMVM8b = diag + 2*off
		want.ADCSamples8b = metrics.U64((diag + 2*off) * tile)
		// Per global iteration, all pairs selected (TileFraction 1):
		perIter := func() {
			// Load phase: each pair gathers 2 offset vectors over Tiles-1
			// source blocks and writes spins (1b) + offsets (8b).
			want.GlueOps += metrics.U64((diag + off) * 2 * (tiles - 1) * tile)
			want.SRAMWriteBits += metrics.U64((diag + off) * 2 * tile * (1 + 8))
			// Local iterations: diagonal pairs run L MVMs (last one 8-bit),
			// off-diagonal pairs 2L (last two 8-bit).
			want.LocalMVM1b += metrics.U64(diag*(L-1) + off*(2*L-2))
			want.LocalMVM8b += metrics.U64(diag + 2*off)
			want.ADCSamples1b += metrics.U64((diag*(L-1) + off*(2*L-2)) * tile)
			want.ADCSamples8b += metrics.U64((diag + 2*off) * tile)
			want.EOBits += metrics.U64((diag*L + off*2*L) * tile)
			// Synchronization: every pair publishes partials and spin
			// copies (2t values each at 8 and 1 bits)...
			want.SRAMReadBits += metrics.U64((diag + off) * (2*tile*8 + 2*tile))
			want.DRAMWriteBits += metrics.U64((diag + off) * (2*tile*8 + 2*tile))
			// ...then each of the 3 blocks reconciles its 3 copies (each
			// block appears in 1 diagonal + 2 off-diagonal pairs):
			// stochastic pick costs t glue ops and broadcasts to 3 copies.
			want.GlueOps += metrics.U64(tiles * tile)
			want.DRAMReadBits += metrics.U64(tiles * tile * 3)
			want.GlobalSyncs++
		}
		for i := 0; i < G; i++ {
			perIter()
		}
		if res.Ops != want {
			t.Fatalf("exactRecompute=%v: op counts diverge from analytic model:\ngot  %s\nwant %s",
				exactRecompute, res.Ops.String(), want.String())
		}
	}
}
