// Package core implements SOPHIE's modified PRIS algorithm (Section
// III-A, Algorithm 1): the transformation matrix is decomposed into
// symmetric tile pairs, each pair runs many recurrent "local iterations"
// assuming all other tiles constant (symmetric local update), and
// "global iterations" periodically reconcile spin copies and offset
// vectors across tiles. Stochastic global iteration selects only a
// random subset of pairs each round, and stochastic spin update
// broadcasts one randomly chosen spin copy per block instead of the
// average — together these cut computation and communication by
// 25-50% with small quality impact.
//
// The functional simulator mirrors the hardware dataflow (Section
// III-E): tile MVMs run through a tiling.Engine (ideal float64 or the
// internal/opcm device model), partial sums destined for global
// synchronization pass through the 8-bit ADC readout, and every
// hardware-visible operation is tallied into metrics.OpCounts for the
// PPA model.
package core

import (
	"fmt"
	"runtime"

	"sophie/internal/linalg"
	"sophie/internal/tiling"
	"sophie/internal/trace"
)

// SpinUpdate selects how global synchronization reconciles the per-tile
// spin copies of a block column (Section III-A2).
type SpinUpdate int

const (
	// SpinUpdateMajority averages all local copies element-wise and
	// re-binarizes (the non-stochastic baseline).
	SpinUpdateMajority SpinUpdate = iota
	// SpinUpdateStochastic broadcasts one randomly selected copy — the
	// paper's "stochastic spin update".
	SpinUpdateStochastic
)

func (s SpinUpdate) String() string {
	switch s {
	case SpinUpdateMajority:
		return "majority"
	case SpinUpdateStochastic:
		return "stochastic"
	default:
		return fmt.Sprintf("SpinUpdate(%d)", int(s))
	}
}

// EngineFactory builds the tile MVM engine from the decomposed tiles.
// The default factory returns the ideal float64 engine; pass one backed
// by internal/opcm to simulate the device datapath.
type EngineFactory func(tiles []*linalg.Matrix) (tiling.Engine, error)

// Config controls a SOPHIE solve. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// TileSize is the OPCM array order (paper default 64).
	TileSize int
	// LocalIters is the number of local iterations per global iteration
	// (paper default 10).
	LocalIters int
	// GlobalIters is the number of global iterations (paper default 500).
	GlobalIters int
	// TileFraction is the fraction of symmetric tile pairs selected in
	// each global iteration; 1 selects everything, the paper's sweet
	// spot is 0.74.
	TileFraction float64
	// Phi is the dimensionless noise standard deviation (Eq. 5); the
	// per-component noise is Phi times the row norm of C, matching
	// internal/pris.
	Phi float64
	// PhiEnd, when positive, anneals the noise geometrically from Phi
	// down (or up) to PhiEnd across the global iterations — the
	// simulated-annealing-style schedule the PRIS line of work uses as
	// an extension. Zero keeps the noise constant at Phi.
	PhiEnd float64
	// Alpha is the eigenvalue dropout factor (Eq. 4).
	Alpha float64
	// SkipTransform uses C = K directly, skipping the O(n³)
	// eigendecomposition (used for large instances; see DESIGN.md).
	SkipTransform bool
	// TransformRank, when positive, builds the transform through the
	// rank-limited Lanczos path (O(rank·n²)) instead of the dense
	// eigendecomposition — the scalable preprocessing extension.
	// Ignored when SkipTransform is set.
	TransformRank int
	// SpinUpdate selects majority or stochastic spin reconciliation.
	SpinUpdate SpinUpdate
	// Seed drives every random choice (initial state, tile selection,
	// noise, spin picks); runs are reproducible given Seed.
	Seed int64
	// Workers bounds the goroutines simulating parallel PEs;
	// 0 means GOMAXPROCS.
	Workers int
	// EvalEvery evaluates the global energy every that many global
	// iterations (1 = every iteration). Larger values speed up huge
	// functional runs at the cost of tracking granularity.
	EvalEvery int
	// TargetEnergy stops the run early once the best energy reaches
	// this value or lower. Nil disables early stopping.
	TargetEnergy *float64
	// RecordTrace stores the best-so-far energy after every evaluated
	// global iteration.
	RecordTrace bool
	// OnGlobalIteration, when non-nil, is invoked at every evaluated
	// global iteration with the iteration number and best-so-far energy
	// — a live observer for progress tooling. It runs on the solver
	// goroutine; keep it fast.
	OnGlobalIteration func(iter int, bestEnergy float64)
	// ExactRecompute disables the flip-aware incremental datapath and
	// forces the reference full-MVM path even when the engine supports
	// delta updates (tiling.DeltaEngine). The two paths are
	// bit-identical for the ideal engine (DESIGN.md "Incremental
	// compute datapath"); the switch exists for golden equivalence
	// tests and as an escape hatch. Engines without delta support (the
	// opcm device model) always run the reference path.
	ExactRecompute bool
	// DeltaRefreshEvery is the incremental datapath's drift bound K:
	// each pair's running pre-threshold accumulator is fully recomputed
	// every K local iterations (and at the start of every global
	// round). 0 selects the default of 16. Ignored on the reference
	// path.
	DeltaRefreshEvery int
	// Tracer, when non-nil, receives the run's execution events
	// (internal/trace): iteration structure, the op-bearing batch events
	// op accounting is folded from, and — when the recorder's kind mask
	// includes device kinds — sampled device-plane events from engines
	// implementing tiling.TraceSink. Tracing consumes no randomness, so
	// a run's trajectory and Result are bit-identical with a recorder
	// attached or not; a nil Tracer costs one predicted branch per event
	// site. The recorder is concurrency-safe, and batched replicas share
	// it: per-job attribution installs distinct recorders via
	// WithRuntime.
	Tracer *trace.Recorder
	// ForceDense disables sparse datapath selection: the solver always
	// densifies the transform and runs the dense tile engine, even for
	// couplings below the sparse density threshold. The escape hatch for
	// golden comparisons and perf triage; the two paths are bit-identical
	// wherever both can run (DESIGN.md "Sparse datapath"). It cannot be
	// combined with a sparse-built model (ising.NewModelCSR), which has
	// no dense couplings to fall back to.
	ForceDense bool
	// ColoredUpdate opts in to the chromatic parallel update: spins are
	// partitioned into independent sets by greedy graph coloring and each
	// class updates concurrently within a local iteration, Gauss-Seidel
	// style — fresh neighbor values between classes instead of the
	// block-synchronous tile recurrence. Requires the sparse datapath and
	// a single tile (TileSize >= N). Runs are bit-reproducible for a seed
	// at any worker count, but follow a different trajectory than the
	// default update (a different algorithm, not a different
	// implementation).
	ColoredUpdate bool
	// Engine overrides the MVM datapath; nil uses the ideal engine.
	Engine EngineFactory
	// InitialSpins optionally fixes the starting ±1 state for every job
	// (primarily for tests and algorithm-equivalence studies); nil draws
	// a random state per job from its seed.
	InitialSpins []int8
	// forceSparse pins the CSR engine for dense-built models regardless
	// of the density threshold — the counterpart of ForceDense, used by
	// the crossover sweep to measure both datapaths at every density.
	// Unexported: the threshold table exists so callers never need this.
	forceSparse bool
}

// DefaultConfig returns the paper's operating point: tile 64, 10 local
// iterations per global, 500 global iterations, all tiles selected,
// stochastic spin update, φ=0.1, α=0.
func DefaultConfig() Config {
	return Config{
		TileSize:     64,
		LocalIters:   10,
		GlobalIters:  500,
		TileFraction: 1.0,
		Phi:          0.1,
		Alpha:        0,
		SpinUpdate:   SpinUpdateStochastic,
		EvalEvery:    1,
	}
}

// Validate reports whether the configuration is usable. It is the
// exported face of the solver's own admission check, for layers that
// accept work long before a solver is built — the sophied job service
// rejects a bad config at submission time (HTTP 400) instead of
// queueing a job that can only fail.
func (c *Config) Validate() error { return c.validate() }

func (c *Config) validate() error {
	if c.TileSize <= 0 {
		return fmt.Errorf("core: tile size must be positive, got %d", c.TileSize)
	}
	if c.LocalIters <= 0 {
		return fmt.Errorf("core: local iterations must be positive, got %d", c.LocalIters)
	}
	if c.GlobalIters <= 0 {
		return fmt.Errorf("core: global iterations must be positive, got %d", c.GlobalIters)
	}
	if c.TileFraction <= 0 || c.TileFraction > 1 {
		return fmt.Errorf("core: tile fraction %v outside (0,1]", c.TileFraction)
	}
	if c.Phi < 0 {
		return fmt.Errorf("core: negative noise phi %v", c.Phi)
	}
	if c.PhiEnd < 0 {
		return fmt.Errorf("core: negative final noise %v", c.PhiEnd)
	}
	if c.PhiEnd > 0 && c.Phi == 0 {
		return fmt.Errorf("core: PhiEnd requires a positive starting Phi")
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("core: alpha %v outside [0,1]", c.Alpha)
	}
	if c.TransformRank < 0 {
		return fmt.Errorf("core: negative transform rank %d", c.TransformRank)
	}
	if c.EvalEvery < 1 {
		return fmt.Errorf("core: EvalEvery must be >= 1, got %d", c.EvalEvery)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: negative worker count %d", c.Workers)
	}
	if c.DeltaRefreshEvery < 0 {
		return fmt.Errorf("core: negative delta refresh interval %d", c.DeltaRefreshEvery)
	}
	if c.ColoredUpdate {
		if c.ForceDense {
			return fmt.Errorf("core: ColoredUpdate requires the sparse datapath; ForceDense conflicts")
		}
		if c.ExactRecompute {
			return fmt.Errorf("core: ColoredUpdate replaces the incremental datapath; ExactRecompute conflicts")
		}
		if !c.SkipTransform {
			return fmt.Errorf("core: ColoredUpdate requires SkipTransform (the sparse datapath keeps C = K)")
		}
		if c.Engine != nil {
			return fmt.Errorf("core: ColoredUpdate cannot run over a custom engine")
		}
	}
	return nil
}

// sparseDensityThresholds maps tile order to the stored-density cutoff
// below which the solver auto-selects the sparse CSR datapath for
// eligible configurations (SkipTransform, default engine, no
// ForceDense). The cutoffs come from the BenchmarkSparseCrossover
// sweep (re-recorded compactly by the sophiebench "sparse/crossover"
// arm): on the reference host the CSR engine won at every measured
// density up to 80% — by ~1.1x at tile 64, where the per-spin work
// hides most of the kernel difference, and by 1.6–2.3x at tiles
// 128–512, where the dense engine's per-tile-pair dispatch and full
// n² streaming dominate. Since no break-even was observed, each entry
// is set one sweep step below the highest density measured for that
// tile order rather than extrapolated; the flat pre-sweep constant
// remains the fallback outside the measured range. Entries are
// (maxTileOrder, threshold), scanned in order; GSET-style workloads
// sit near 1% density and take the sparse path at every tile order.
var sparseDensityThresholds = []struct {
	maxTile   int
	threshold float64
}{
	{64, 0.45},  // thin (~1.1x) margin: stop short of the 50–80% region
	{128, 0.75}, // >=1.4x sparse win through d=80
	{256, 0.75}, // >=1.6x sparse win through d=80
	{512, 0.75}, // >=1.6x sparse win through d=80
}

// sparseDensityThresholdFallback is the pre-sweep flat constant,
// applied to tile orders beyond the measured range.
const sparseDensityThresholdFallback = 0.10

// sparseDensityThresholdFor resolves the density cutoff for a tile
// order from the measured table, falling back to the flat constant
// outside the measured range.
func sparseDensityThresholdFor(tileSize int) float64 {
	for _, e := range sparseDensityThresholds {
		if tileSize <= e.maxTile {
			return e.threshold
		}
	}
	return sparseDensityThresholdFallback
}

// defaultDeltaRefresh bounds floating-point drift on the incremental
// datapath: after this many consecutive delta updates the accumulator
// is recomputed from scratch. 16 keeps worst-case drift at a few ulps
// while recomputation stays rare at the paper's 10 local iterations.
const defaultDeltaRefresh = 16

func (c *Config) deltaRefresh() int {
	if c.DeltaRefreshEvery > 0 {
		return c.DeltaRefreshEvery
	}
	return defaultDeltaRefresh
}

// clone returns a copy of the config whose reference-typed fields are
// deep-copied where the solver could otherwise alias caller- or
// sibling-owned memory. InitialSpins is copied because callers routinely
// reuse and mutate the slice they passed in (and WithRuntime-derived
// solvers must not share it with their parent); TargetEnergy is copied
// so re-pointing or rewriting the caller's float64 cannot retroactively
// change a solver's stopping rule. Engine and OnGlobalIteration are
// immutable function values and are shared as-is; Tracer is shared as-is
// too — a batch's replicas deliberately feed one recorder.
func (c *Config) clone() Config {
	out := *c
	if c.InitialSpins != nil {
		out.InitialSpins = append([]int8(nil), c.InitialSpins...)
	}
	if c.TargetEnergy != nil {
		t := *c.TargetEnergy
		out.TargetEnergy = &t
	}
	return out
}

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}
