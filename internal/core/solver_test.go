package core

import (
	"math"
	"testing"

	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/linalg"
	"sophie/internal/opcm"
	"sophie/internal/pris"
	"sophie/internal/tiling"
)

func testProblem(t testing.TB) (*graph.Graph, *ising.Model) {
	t.Helper()
	g, err := graph.Random(100, 600, graph.WeightUnit, 31)
	if err != nil {
		t.Fatal(err)
	}
	return g, ising.FromMaxCut(g)
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.TileSize = 32
	cfg.GlobalIters = 60
	cfg.LocalIters = 5
	cfg.Phi = 0.15
	return cfg
}

func TestConfigValidation(t *testing.T) {
	_, m := testProblem(t)
	mutations := []func(*Config){
		func(c *Config) { c.TileSize = 0 },
		func(c *Config) { c.LocalIters = 0 },
		func(c *Config) { c.GlobalIters = 0 },
		func(c *Config) { c.TileFraction = 0 },
		func(c *Config) { c.TileFraction = 1.5 },
		func(c *Config) { c.Phi = -0.1 },
		func(c *Config) { c.Alpha = 2 },
		func(c *Config) { c.EvalEvery = 0 },
		func(c *Config) { c.Workers = -1 },
	}
	for i, mutate := range mutations {
		cfg := quickConfig()
		mutate(&cfg)
		if _, err := NewSolver(m, cfg); err == nil {
			t.Errorf("mutation %d should have been rejected", i)
		}
	}
}

func TestSolveImprovesOverRandom(t *testing.T) {
	g, m := testProblem(t)
	cfg := quickConfig()
	res, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := g.CutValue(res.BestSpins)
	if cut < 0.55*float64(g.M()) {
		t.Fatalf("SOPHIE cut %v of %d edges — no better than random", cut, g.M())
	}
	if res.BestEnergy != m.Energy(res.BestSpins) {
		t.Fatal("BestEnergy inconsistent with BestSpins")
	}
	if res.GlobalItersRun != cfg.GlobalIters {
		t.Fatalf("ran %d global iterations, want %d", res.GlobalItersRun, cfg.GlobalIters)
	}
	if res.TotalLocalIters != cfg.GlobalIters*cfg.LocalIters {
		t.Fatal("TotalLocalIters bookkeeping wrong")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	_, m := testProblem(t)
	cfg := quickConfig()
	cfg.Workers = 4 // exercise the parallel path; must still be deterministic
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestEnergy != b.BestEnergy || a.BestGlobalIter != b.BestGlobalIter {
		t.Fatalf("nondeterministic: %v@%d vs %v@%d", a.BestEnergy, a.BestGlobalIter, b.BestEnergy, b.BestGlobalIter)
	}
	for i := range a.BestSpins {
		if a.BestSpins[i] != b.BestSpins[i] {
			t.Fatal("spins differ across identical runs")
		}
	}
	if a.Ops != b.Ops {
		t.Fatalf("op counts differ across identical runs:\n%v\nvs\n%v", a.Ops.String(), b.Ops.String())
	}
}

func TestMatchesPRISWhenUntiled(t *testing.T) {
	// With one diagonal tile covering the whole matrix, one local
	// iteration per global iteration, all tiles selected and φ=0, a
	// SOPHIE global iteration is exactly one PRIS step. Compare the
	// deterministic trajectories from the same initial state.
	g, err := graph.Random(24, 80, graph.WeightUnit, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)
	init := make([]int8, m.N())
	for i := range init {
		if i%3 == 0 {
			init[i] = 1
		} else {
			init[i] = -1
		}
	}

	cfg := DefaultConfig()
	cfg.TileSize = m.N()
	cfg.LocalIters = 1
	cfg.GlobalIters = 20
	cfg.TileFraction = 1
	cfg.Phi = 0
	cfg.Alpha = 0
	cfg.InitialSpins = init
	cfg.RecordTrace = true
	sres, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pres, err := pris.Solve(m, pris.Config{
		Phi: 0, Alpha: 0, Iterations: 20, InitialSpins: init, RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sres.BestEnergy != pres.BestEnergy {
		t.Fatalf("untiled SOPHIE best %v != PRIS best %v", sres.BestEnergy, pres.BestEnergy)
	}
	// Traces hold best-so-far (SOPHIE) vs instantaneous (PRIS); compare
	// via running minimum of the PRIS trace.
	runMin := math.Inf(1)
	for i, e := range pres.EnergyTrace {
		if e < runMin {
			runMin = e
		}
		best := math.Min(runMin, m.Energy(init))
		if sres.Trace[i] != best {
			t.Fatalf("iteration %d: SOPHIE best %v, PRIS running best %v", i+1, sres.Trace[i], best)
		}
	}
}

func TestTilingPreservesSolutionQuality(t *testing.T) {
	// The symmetric local update is a Gauss-Seidel-like relaxation
	// within each pair, so tiled trajectories differ from the untiled
	// recurrence — but with frequent synchronization the solution
	// quality must stay comparable across tile sizes (the paper's
	// Fig. 7 shows the quality impact is small).
	g, err := graph.Random(60, 300, graph.WeightUnit, 9)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)
	base := DefaultConfig()
	base.LocalIters = 2
	base.GlobalIters = 80
	base.TileFraction = 1
	base.Phi = 0.15
	base.SpinUpdate = SpinUpdateMajority
	base.Seed = 3

	var cuts []float64
	for _, tile := range []int{60, 20, 13} {
		cfg := base
		cfg.TileSize = tile
		res, err := Solve(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cuts = append(cuts, g.CutValue(res.BestSpins))
	}
	for i, cut := range cuts {
		if cut < 0.90*cuts[0] {
			t.Fatalf("tile config %d cut %v fell more than 10%% below untiled %v", i, cut, cuts[0])
		}
	}
}

func TestStochasticTileFractionReducesWork(t *testing.T) {
	_, m := testProblem(t)
	full := quickConfig()
	full.TileFraction = 1.0
	half := quickConfig()
	half.TileFraction = 0.5
	rFull, err := Solve(m, full)
	if err != nil {
		t.Fatal(err)
	}
	rHalf, err := Solve(m, half)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rHalf.Ops.TotalMVMs()) / float64(rFull.Ops.TotalMVMs())
	if ratio < 0.4 || ratio > 0.65 {
		t.Fatalf("half tile fraction should roughly halve MVMs, ratio %v", ratio)
	}
}

func TestTargetEnergyStopsEarly(t *testing.T) {
	_, m := testProblem(t)
	cfg := quickConfig()
	target := math.Inf(1) // any state meets an infinite target... use a loose bound instead
	target = 0            // random cuts are near 0 energy; any decent step reaches <= 0
	cfg.TargetEnergy = &target
	res, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedTarget {
		t.Fatal("loose target not reached")
	}
	if res.GlobalItersRun >= cfg.GlobalIters {
		t.Fatalf("expected early stop, ran all %d iterations", res.GlobalItersRun)
	}
}

func TestRecordTraceLength(t *testing.T) {
	_, m := testProblem(t)
	cfg := quickConfig()
	cfg.RecordTrace = true
	cfg.EvalEvery = 2
	res, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != cfg.GlobalIters/2 {
		t.Fatalf("trace length %d, want %d", len(res.Trace), cfg.GlobalIters/2)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1] {
			t.Fatal("best-so-far trace must be non-increasing")
		}
	}
}

func TestMajorityAndStochasticBothSolve(t *testing.T) {
	g, m := testProblem(t)
	for _, mode := range []SpinUpdate{SpinUpdateMajority, SpinUpdateStochastic} {
		cfg := quickConfig()
		cfg.SpinUpdate = mode
		res, err := Solve(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cut := g.CutValue(res.BestSpins); cut < 0.5*float64(g.M()) {
			t.Fatalf("%v update produced weak cut %v", mode, cut)
		}
	}
}

func TestSpinUpdateString(t *testing.T) {
	if SpinUpdateMajority.String() != "majority" || SpinUpdateStochastic.String() != "stochastic" {
		t.Fatal("SpinUpdate names wrong")
	}
	if SpinUpdate(9).String() == "" {
		t.Fatal("unknown mode must render")
	}
}

func TestRunBatch(t *testing.T) {
	_, m := testProblem(t)
	cfg := quickConfig()
	cfg.GlobalIters = 10
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := s.RunBatch(mustSeedRange(100, 3), BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	results := batch.Results
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	// Replicas with different seeds should (almost surely) differ.
	if results[0].BestEnergy == results[1].BestEnergy && results[1].BestEnergy == results[2].BestEnergy {
		allSame := true
		for i := range results[0].BestSpins {
			if results[0].BestSpins[i] != results[1].BestSpins[i] {
				allSame = false
				break
			}
		}
		if allSame {
			t.Fatal("batch replicas identical despite different seeds")
		}
	}
	// The aggregate must be consistent with the per-replica results.
	best := math.Inf(1)
	var ops uint64
	for _, r := range results {
		if r.BestEnergy < best {
			best = r.BestEnergy
		}
		ops += r.Ops.TotalMVMs()
	}
	if batch.BestEnergy != best || batch.Best().BestEnergy != best {
		t.Fatalf("batch best %v, replicas reach %v", batch.BestEnergy, best)
	}
	if batch.MeanEnergy < best || batch.MedianEnergy < best {
		t.Fatal("mean/median below the best energy")
	}
	if batch.Ops.TotalMVMs() != ops {
		t.Fatalf("batch op counts %d MVMs, replicas sum to %d", batch.Ops.TotalMVMs(), ops)
	}
	if batch.Succeeded != 0 || batch.SuccessProb != 0 || batch.Stopped != 0 {
		t.Fatal("no target configured, yet success/stop counters are nonzero")
	}
	if _, err := s.RunBatch(nil, BatchOptions{}); err == nil {
		t.Fatal("empty batch must error")
	}
	if _, err := s.RunBatch(mustSeedRange(0, 2), BatchOptions{Workers: -1}); err == nil {
		t.Fatal("negative batch workers must error")
	}
	if _, err := s.RunBatch(mustSeedRange(0, 2), BatchOptions{EarlyStop: true}); err == nil {
		t.Fatal("early-stop without a TargetEnergy must error")
	}
}

func TestRunBatchEarlyStop(t *testing.T) {
	_, m := testProblem(t)
	cfg := quickConfig()
	target := 0.0 // random cuts sit near 0; any decent replica reaches <= 0
	cfg.TargetEnergy = &target
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := s.RunBatch(mustSeedRange(500, 6), BatchOptions{Workers: 2, EarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Succeeded == 0 {
		t.Fatal("loose target never reached by any replica")
	}
	if !batch.Best().ReachedTarget {
		t.Fatal("best replica did not reach the target")
	}
	if batch.SuccessProb != float64(batch.Succeeded)/6 {
		t.Fatalf("success probability %v inconsistent with %d/6", batch.SuccessProb, batch.Succeeded)
	}
	stopped := 0
	for _, r := range batch.Results {
		if r.Stopped {
			stopped++
			if r.ReachedTarget {
				t.Fatal("a cancelled replica cannot also have reached the target")
			}
		}
	}
	if stopped != batch.Stopped {
		t.Fatalf("Stopped counter %d, results show %d", batch.Stopped, stopped)
	}
}

func TestWithRuntimeDoesNotAliasConfigSlices(t *testing.T) {
	// Regression: WithRuntime used to shallow-copy Config, so the derived
	// solver shared InitialSpins backing memory with its parent — and
	// with the caller's slice. Mutating any of them changed the others'
	// starting states.
	_, m := testProblem(t)
	cfg := quickConfig()
	init := make([]int8, m.N())
	for i := range init {
		init[i] = 1
	}
	cfg.InitialSpins = init
	target := -5.0
	cfg.TargetEnergy = &target
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	init[0] = -1 // the caller reusing its slice must not reach the solver
	if s.cfg.InitialSpins[0] != 1 {
		t.Fatal("NewSolver aliased the caller's InitialSpins")
	}
	target = 99 // nor may rewriting the caller's target float
	if *s.cfg.TargetEnergy != -5.0 {
		t.Fatal("NewSolver aliased the caller's TargetEnergy")
	}
	derived, err := s.WithRuntime(func(c *Config) {
		c.InitialSpins[1] = -1 // mutating inside modify must stay local
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.InitialSpins[1] != 1 {
		t.Fatal("WithRuntime's modify mutated the parent solver's InitialSpins")
	}
	if derived.cfg.InitialSpins[1] != -1 {
		t.Fatal("derived solver lost the modification")
	}
	derived.cfg.InitialSpins[2] = -1
	if s.cfg.InitialSpins[2] != 1 {
		t.Fatal("derived solver still aliases the parent's InitialSpins")
	}
}

func TestInitialSpinsValidation(t *testing.T) {
	_, m := testProblem(t)
	cfg := quickConfig()
	cfg.InitialSpins = []int8{1}
	if _, err := Solve(m, cfg); err == nil {
		t.Fatal("mismatched initial spins must be rejected")
	}
}

func TestDeviceEngineIntegration(t *testing.T) {
	g, m := testProblem(t)
	cfg := quickConfig()
	cfg.Engine = func(tiles []*linalg.Matrix) (tiling.Engine, error) {
		return opcm.NewEngine(tiles, 0, opcm.DefaultParams())
	}
	res, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cut := g.CutValue(res.BestSpins); cut < 0.5*float64(g.M()) {
		t.Fatalf("device-model run produced weak cut %v", cut)
	}
}

func TestOpsScaleWithLocalIters(t *testing.T) {
	_, m := testProblem(t)
	a := quickConfig()
	a.LocalIters = 5
	b := quickConfig()
	b.LocalIters = 10
	b.GlobalIters = a.GlobalIters
	ra, err := Solve(m, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Solve(m, b)
	if err != nil {
		t.Fatal(err)
	}
	// Doubling local iterations should roughly double 1-bit MVMs but
	// leave 8-bit MVMs (one per pair per global iteration) unchanged.
	if rb.Ops.LocalMVM8b != ra.Ops.LocalMVM8b {
		t.Fatalf("8-bit MVM count changed: %d vs %d", rb.Ops.LocalMVM8b, ra.Ops.LocalMVM8b)
	}
	ratio := float64(rb.Ops.LocalMVM1b) / float64(ra.Ops.LocalMVM1b)
	if ratio < 1.9 || ratio > 2.4 {
		t.Fatalf("1-bit MVM ratio %v, want ~2.25", ratio)
	}
	if rb.Ops.GlobalSyncs != uint64(b.GlobalIters) {
		t.Fatalf("global syncs %d, want %d", rb.Ops.GlobalSyncs, b.GlobalIters)
	}
}

func TestSolverAccessors(t *testing.T) {
	_, m := testProblem(t)
	s, err := NewSolver(m, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Grid() == nil || s.Engine() == nil {
		t.Fatal("accessors returned nil")
	}
	if s.Grid().TileSize != 32 {
		t.Fatal("grid tile size wrong")
	}
}

func BenchmarkSolveSmall(b *testing.B) {
	_, m := testProblem(b)
	cfg := quickConfig()
	cfg.GlobalIters = 20
	s, err := NewSolver(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunBatchParallelMatchesSequential(t *testing.T) {
	_, m := testProblem(t)
	cfg := quickConfig()
	cfg.GlobalIters = 15
	cfg.Workers = 1
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s.RunBatch(mustSeedRange(50, 4), BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := s.RunBatch(mustSeedRange(50, 4), BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for j := range seq.Results {
		if seq.Results[j].BestEnergy != par.Results[j].BestEnergy {
			t.Fatalf("replica %d differs: %v vs %v", j, seq.Results[j].BestEnergy, par.Results[j].BestEnergy)
		}
		for i := range seq.Results[j].BestSpins {
			if seq.Results[j].BestSpins[i] != par.Results[j].BestSpins[i] {
				t.Fatalf("replica %d spins differ", j)
			}
		}
	}
	if seq.BestIndex != par.BestIndex || seq.BestEnergy != par.BestEnergy {
		t.Fatal("aggregates differ across batch worker counts")
	}
}

func TestOnGlobalIterationCallback(t *testing.T) {
	_, m := testProblem(t)
	cfg := quickConfig()
	cfg.GlobalIters = 12
	cfg.EvalEvery = 3
	var iters []int
	var energies []float64
	cfg.OnGlobalIteration = func(g int, e float64) {
		iters = append(iters, g)
		energies = append(energies, e)
	}
	if _, err := Solve(m, cfg); err != nil {
		t.Fatal(err)
	}
	if len(iters) != 4 {
		t.Fatalf("callback fired %d times, want 4", len(iters))
	}
	for i, g := range iters {
		if g != (i+1)*3 {
			t.Fatalf("callback iterations %v", iters)
		}
	}
	for i := 1; i < len(energies); i++ {
		if energies[i] > energies[i-1] {
			t.Fatal("best-so-far energy must be non-increasing")
		}
	}
}
