package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"sophie/internal/ising"
	"sophie/internal/linalg"
	"sophie/internal/metrics"
	"sophie/internal/pris"
	"sophie/internal/tiling"
	"sophie/internal/trace"
)

// Solver holds the preprocessed state for a SOPHIE solve: the tiled
// transformation matrix programmed into the MVM engine, per-node
// thresholds and noise scales, and the tile-pair geometry. A Solver is
// built once per (model, config) and can run many jobs (Run) with
// different seeds — mirroring the batched execution the hardware uses
// to amortize programming cost.
type Solver struct {
	model      *ising.Model
	cfg        Config
	grid       *tiling.Grid
	engine     tiling.Engine
	pairs      []tiling.Pair
	thresholds []float64 // padded per-node thresholds θ (Eq. 7)
	noiseScale []float64 // padded per-node noise scale ‖Cᵢ‖₂

	// Flip-aware fast path (DESIGN.md "Incremental compute datapath"):
	// delta/binary are the feature-detected optional engine interfaces
	// (nil when unsupported, e.g. the opcm device model), and
	// exactEnergy records whether the couplings are integers so
	// incremental energy tracking is bit-identical to a full walk.
	delta       tiling.DeltaEngine
	binary      tiling.BinaryEngine
	exactEnergy bool

	// Colored-update state (Config.ColoredUpdate): the single padded
	// CSR tile and its greedy coloring, precomputed once per solver.
	coloredTile *linalg.CSR
	classes     [][]int
}

// readoutQuantizer is implemented by engines with a multi-bit ADC mode
// (the opcm device model); partial sums bound for global synchronization
// pass through it, as in the hardware's 8-bit readout.
type readoutQuantizer interface {
	QuantizeReadout([]float64)
}

// NewSolver preprocesses the model: builds the PRIS transform (or skips
// it), decomposes C into symmetric tile pairs, and programs the MVM
// engine.
//
// Datapath selection (DESIGN.md "Sparse datapath"): sparse-built models
// (ising.NewModelCSR) always take the sparse CSR engine — they have no
// dense couplings to densify — and require SkipTransform with the
// default engine. Dense-built models auto-select the sparse engine when
// they are eligible (SkipTransform, default engine, no ForceDense) and
// the coupling density is below the tile order's measured threshold
// (sparseDensityThresholdFor); the selection
// is invisible in results because the sparse engine is bit-identical to
// the ideal dense engine on the same couplings.
func NewSolver(m *ising.Model, cfg Config) (*Solver, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	grid, err := tiling.NewGrid(m.N(), cfg.TileSize)
	if err != nil {
		return nil, err
	}
	sparse, err := pickSparse(m, &cfg)
	if err != nil {
		return nil, err
	}
	if cfg.ColoredUpdate {
		if !sparse {
			return nil, fmt.Errorf("core: ColoredUpdate requires the sparse datapath (density %.3f >= %.2f; lower the density or build the model with NewModelCSR)",
				modelDensity(m), sparseDensityThresholdFor(cfg.TileSize))
		}
		if grid.Tiles != 1 {
			return nil, fmt.Errorf("core: ColoredUpdate requires a single tile (TileSize %d < %d spins)", cfg.TileSize, m.N())
		}
	}

	s := &Solver{
		model:      m,
		cfg:        cfg.clone(),
		grid:       grid,
		pairs:      grid.Pairs(),
		thresholds: make([]float64, grid.PaddedN()),
		noiseScale: make([]float64, grid.PaddedN()),
	}
	if sparse {
		tr, err := pris.NewTransformCSR(m)
		if err != nil {
			return nil, err
		}
		tiles, err := tiling.DecomposePairsCSR(tr.C, grid)
		if err != nil {
			return nil, err
		}
		engine, err := tiling.NewSparseEngine(tiles)
		if err != nil {
			return nil, err
		}
		s.engine = engine
		copy(s.thresholds, tr.Thresholds)
		copy(s.noiseScale, tr.RowNorms)
		if cfg.ColoredUpdate {
			s.coloredTile = tiles[0]
			s.classes = tiles[0].GreedyColoring()
		}
	} else {
		var tr *pris.Transform
		if cfg.TransformRank > 0 && !cfg.SkipTransform {
			tr, err = pris.NewTransformRank(m, cfg.Alpha, cfg.TransformRank, cfg.Seed)
		} else {
			tr, err = pris.NewTransform(m, cfg.Alpha, cfg.SkipTransform)
		}
		if err != nil {
			return nil, err
		}
		// Pad C to the grid before decomposition so boundary tiles are full.
		tiles, err := tiling.DecomposePairs(tr.C, grid)
		if err != nil {
			return nil, err
		}
		factory := cfg.Engine
		if factory == nil {
			factory = func(ts []*linalg.Matrix) (tiling.Engine, error) { return tiling.NewIdealEngine(ts) }
		}
		s.engine, err = factory(tiles)
		if err != nil {
			return nil, err
		}
		copy(s.thresholds, tr.Thresholds)
		copy(s.noiseScale, tr.RowNorms)
	}
	if s.engine.TileSize() != cfg.TileSize || s.engine.Pairs() != grid.PairCount() {
		return nil, fmt.Errorf("core: engine shape %d/%d does not match grid %d/%d",
			s.engine.TileSize(), s.engine.Pairs(), cfg.TileSize, grid.PairCount())
	}
	if de, ok := s.engine.(tiling.DeltaEngine); ok {
		s.delta = de
	}
	if be, ok := s.engine.(tiling.BinaryEngine); ok {
		s.binary = be
	}
	s.exactEnergy = m.IntegerCouplings()
	return s, nil
}

// pickSparse decides whether the solve runs on the sparse CSR datapath.
func pickSparse(m *ising.Model, cfg *Config) (bool, error) {
	if !m.HasDense() {
		if cfg.ForceDense {
			return false, fmt.Errorf("core: ForceDense set for a sparse-built model, which has no dense couplings")
		}
		if !cfg.SkipTransform {
			return false, fmt.Errorf("core: sparse-built models require SkipTransform (the eigenvalue dropout would densify the couplings)")
		}
		if cfg.Engine != nil {
			return false, fmt.Errorf("core: custom engine factories take dense tiles; build the model densely to use one")
		}
		return true, nil
	}
	if cfg.ForceDense || !cfg.SkipTransform || cfg.Engine != nil {
		return false, nil
	}
	if cfg.forceSparse {
		return true, nil
	}
	return modelDensity(m) < sparseDensityThresholdFor(cfg.TileSize), nil
}

// modelDensity returns the stored coupling density, nnz/n².
func modelDensity(m *ising.Model) float64 {
	ks, err := m.Sparse()
	if err != nil {
		return 1
	}
	return ks.Density()
}

// WithRuntime returns a solver sharing this solver's preprocessed state
// (transform, tiles, engine) but with runtime-only configuration changes
// applied — the knobs a parameter sweep varies without re-running the
// O(n³) preprocessing: Phi, LocalIters, GlobalIters, TileFraction,
// SpinUpdate, EvalEvery, TargetEnergy, RecordTrace, Tracer, Workers,
// Seed, InitialSpins, ExactRecompute, DeltaRefreshEvery. Changing a
// preprocessing-affecting field (TileSize, Alpha, SkipTransform,
// Engine) is rejected.
func (s *Solver) WithRuntime(modify func(cfg *Config)) (*Solver, error) {
	// Deep-copy before handing the config to modify, and again before
	// storing it: the first keeps modify from mutating this solver's
	// InitialSpins in place through the aliased slice, the second keeps
	// the derived solver from aliasing whatever slice modify installed.
	cfg := s.cfg.clone()
	modify(&cfg)
	if cfg.TileSize != s.cfg.TileSize {
		return nil, fmt.Errorf("core: WithRuntime cannot change TileSize; build a new solver")
	}
	//sophielint:ignore floateq exact identity of the copied config value detects a changed field, not a numeric comparison
	if cfg.Alpha != s.cfg.Alpha || cfg.SkipTransform != s.cfg.SkipTransform || cfg.TransformRank != s.cfg.TransformRank {
		return nil, fmt.Errorf("core: WithRuntime cannot change the transform; build a new solver")
	}
	if cfg.ForceDense != s.cfg.ForceDense || cfg.ColoredUpdate != s.cfg.ColoredUpdate {
		return nil, fmt.Errorf("core: WithRuntime cannot change the datapath (ForceDense, ColoredUpdate); build a new solver")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	clone := *s
	clone.cfg = cfg.clone()
	return &clone, nil
}

// Grid exposes the tile geometry (used by the scheduling/PPA layers).
func (s *Solver) Grid() *tiling.Grid { return s.grid }

// Engine exposes the MVM engine (e.g. to read device-level counters).
func (s *Solver) Engine() tiling.Engine { return s.engine }

// Result reports one SOPHIE job.
type Result struct {
	// BestSpins is the lowest-energy ±1 state seen at any global
	// synchronization point.
	BestSpins []int8
	// BestEnergy is the Hamiltonian at BestSpins.
	BestEnergy float64
	// BestGlobalIter is the (1-based) global iteration where BestEnergy
	// was first reached; 0 means the initial state was never improved.
	BestGlobalIter int
	// GlobalItersRun counts executed global iterations (< GlobalIters
	// when TargetEnergy stopped the run early).
	GlobalItersRun int
	// TotalLocalIters = GlobalItersRun × LocalIters, the paper's
	// "total number of (local) iterations" axis (Fig. 8).
	TotalLocalIters int
	// ReachedTarget reports whether TargetEnergy was met.
	ReachedTarget bool
	// Stopped reports that the run was cancelled at a global-iteration
	// boundary before it finished — by a batch portfolio early-stop
	// (BatchOptions.EarlyStop) or by the caller's context (RunCtx /
	// RunBatchCtx deadline or cancel); the fields above describe the
	// progress it had made by then.
	Stopped bool
	// Trace holds the best-so-far energy at each evaluated global
	// iteration when Config.RecordTrace is set.
	Trace []float64
	// Ops tallies the hardware-visible operations of this job.
	Ops metrics.OpCounts
}

// pairState is the per-PE SRAM buffer set of one symmetric tile pair
// (Section III-A1): local copies of the two spin blocks, the two offset
// vectors, and scratch for partial sums.
type pairState struct {
	xRow, xCol     []float64
	offRow, offCol []float64
	pRowCol        []float64 // reported partial sum C_{r,c}·x_c
	pColRow        []float64 // reported partial sum C_{c,r}·x_r
	y              []float64 // MVM scratch (reference path)
	rng            *rand.Rand

	// Incremental-datapath state: yRow/yCol hold the pure (offset-free)
	// products C_{r,c}·x_c and C_{c,r}·x_r kept alive across local
	// iterations; the flip buffers record which tile-local spins the
	// last threshold pass changed and by how much (±1).
	yRow, yCol         []float64
	rowFlips, colFlips []int
	rowSigns, colSigns []float64
}

func newPairState(t int, seed int64) *pairState {
	return &pairState{
		xRow:     make([]float64, t),
		xCol:     make([]float64, t),
		offRow:   make([]float64, t),
		offCol:   make([]float64, t),
		pRowCol:  make([]float64, t),
		pColRow:  make([]float64, t),
		y:        make([]float64, t),
		rng:      rand.New(rand.NewSource(seed)),
		yRow:     make([]float64, t),
		yCol:     make([]float64, t),
		rowFlips: make([]int, 0, t),
		colFlips: make([]int, 0, t),
		rowSigns: make([]float64, 0, t),
		colSigns: make([]float64, 0, t),
	}
}

// runContext is the per-job view of a Solver: the shared preprocessed
// state plus the engine this job multiplies through. For stateless
// engines (ideal) that is the solver's engine; for engines with
// job-scoped state (tiling.SessionEngine, e.g. the opcm device model)
// it is a per-job session owning its own noise stream — which is what
// makes concurrent jobs over one programmed solver both race-free and
// deterministic. stop, when non-nil, is the batch portfolio's shared
// cancellation flag; ctx, when non-nil, is the caller's cancellation /
// deadline context, observed at the same global-iteration boundaries.
type runContext struct {
	*Solver
	eng    tiling.Engine
	delta  tiling.DeltaEngine
	binary tiling.BinaryEngine
	quant  readoutQuantizer
	stop   *batchStop
	ctx    context.Context
}

// newRunContext resolves the engine view for one job with the given
// seed and feature-detects the optional interfaces on that view.
func (s *Solver) newRunContext(ctx context.Context, seed int64, stop *batchStop) *runContext {
	rc := &runContext{Solver: s, eng: s.engine, delta: s.delta, binary: s.binary, stop: stop, ctx: ctx}
	if se, ok := s.engine.(tiling.SessionEngine); ok {
		rc.eng = se.Session(seedStream(seed, roleDevice, 0))
		// Re-detect on the session view: a session does not inherit the
		// optional fast-path interfaces of the engine behind it.
		rc.delta, rc.binary = nil, nil
		if de, ok := rc.eng.(tiling.DeltaEngine); ok {
			rc.delta = de
		}
		if be, ok := rc.eng.(tiling.BinaryEngine); ok {
			rc.binary = be
		}
	}
	if q, ok := rc.eng.(readoutQuantizer); ok {
		rc.quant = q
	}
	return rc
}

// Run executes one job with the given seed and returns its result.
// Concurrent Run calls on the same Solver are safe with any engine:
// stateless engines are shared directly, and engines with job-scoped
// state (the opcm device model) expose per-job sessions
// (tiling.SessionEngine), so every job's trajectory is a pure function
// of its seed regardless of what runs beside it.
func (s *Solver) Run(seed int64) (*Result, error) {
	return s.newRunContext(nil, seed, nil).run(seed)
}

// RunCtx is Run with caller-controlled cancellation: the context's
// cancel or deadline is observed at global-iteration boundaries —
// exactly where the batch portfolio stop is polled — and a cancelled
// job returns its best-so-far Result with Result.Stopped set and a nil
// error. Checking the context consumes no randomness, so a job that
// runs to completion is bit-identical to the same seed under Run; only
// where a run ends can depend on the context, never what it computes.
func (s *Solver) RunCtx(ctx context.Context, seed int64) (*Result, error) {
	return s.newRunContext(ctx, seed, nil).run(seed)
}

// run is the job body, executed over the per-job engine view. The
// controller state machine lives in jobRun (jobrun.go); run drives it
// with a private PE worker pool. The tempering portfolio runtime
// (temper.go) drives the same machine for many rungs over one shared
// pool instead.
func (s *runContext) run(seed int64) (*Result, error) {
	if s.cfg.ColoredUpdate {
		return s.runColored(seed)
	}
	j, err := newJobRun(s, seed)
	if err != nil {
		return nil, err
	}
	defer j.finish()

	// One long-lived worker pool for the whole job: workers pull
	// (pair, phi) jobs from a single channel and signal per-item
	// completion on the round WaitGroup — no per-iteration channel
	// churn. The pool drains and exits when Run returns (deferred
	// close), so early TargetEnergy exits leak nothing. Determinism
	// does not depend on which worker processes a pair: each pair owns
	// its persistent RNG stream in states[pi], and round.Wait() orders
	// all PE writes before the controller reads them.
	type peJob struct {
		pi  int
		phi float64
	}
	workers := s.cfg.workers()
	work := make(chan peJob)
	defer close(work)
	var round sync.WaitGroup
	for w := 0; w < workers; w++ {
		go func() {
			for jb := range work {
				j.localPair(jb.pi, jb.phi)
				round.Done()
			}
		}()
	}

	for g := 1; g <= s.cfg.GlobalIters; g++ {
		// Portfolio early-stop (RunBatch) and caller cancellation
		// (RunCtx / RunBatchCtx), both observed at the iteration
		// boundary; a stopped job returns best-so-far with Stopped set.
		if j.shouldStop() {
			return &j.res, nil
		}
		phi := j.beginIter(g)
		// --- Local iterations: dispatch the selected pairs to the
		// long-lived PE pool and wait for the round to finish.
		round.Add(len(j.selected))
		for _, pi := range j.selected {
			work <- peJob{pi: pi, phi: phi}
		}
		round.Wait()
		if j.endIter(g) {
			return &j.res, nil
		}
	}
	return &j.res, nil
}

// buildOffset writes into off the sum of partial contributions to output
// block row from every input block except skip — the "offset vector"
// each tile treats as constant during its local iterations.
func (s *Solver) buildOffset(off []float64, partial [][]float64, pIdx func(int, int) int, row, skip int) {
	for i := range off {
		off[i] = 0
	}
	for k := 0; k < s.grid.Tiles; k++ {
		if k == skip {
			continue
		}
		src := partial[pIdx(row, k)]
		for i := range off {
			off[i] += src[i]
		}
	}
}

// buildOffsetCached is the fast path's O(t) offset builder: with the
// running row-sum cache rowSumRow = Σ_k partial[row][k] maintained by
// synchronize, the offset excluding one input block is a single
// subtraction per element instead of a Tiles-wide accumulation. The
// result can differ from buildOffset by ulps (different summation
// order); see DESIGN.md "Incremental compute datapath".
func buildOffsetCached(off, rowSumRow, skip []float64) {
	for i := range off {
		off[i] = rowSumRow[i] - skip[i]
	}
}

// runLocalIterations executes the closed-loop symmetric local update on
// one pair (Section III-A1). For an off-diagonal pair the two tiles
// alternate through the bi-directional array; a diagonal tile loops on
// itself. The final iteration's partial sums are read through the 8-bit
// ADC (QuantizeReadout) for the upcoming synchronization.
func (s *runContext) runLocalIterations(st *pairState, p tiling.Pair, pi int, phi float64) {
	cfg := &s.cfg
	grid := s.grid
	rowLo, _ := grid.BlockRange(p.Row)
	colLo, _ := grid.BlockRange(p.Col)
	for l := 0; l < cfg.LocalIters; l++ {
		if p.IsDiagonal() {
			s.eng.Mul(pi, false, st.xRow, st.y)
			for i := range st.y {
				st.y[i] += st.offRow[i]
			}
			s.threshold(st.xRow, st.y, rowLo, st.rng, phi)
			continue
		}
		// Output block Row accumulates C_{Row,Col}·x_Col.
		s.eng.Mul(pi, false, st.xCol, st.y)
		for i := range st.y {
			st.y[i] += st.offRow[i]
		}
		s.threshold(st.xRow, st.y, rowLo, st.rng, phi)
		// Output block Col accumulates C_{Col,Row}·x_Row = tileᵀ·x_Row.
		s.eng.Mul(pi, true, st.xRow, st.y)
		for i := range st.y {
			st.y[i] += st.offCol[i]
		}
		s.threshold(st.xCol, st.y, colLo, st.rng, phi)
	}
	// 8-bit readout of the final local partial sums (no offsets): these
	// update the controller's partial-sum table at synchronization.
	if p.IsDiagonal() {
		s.eng.Mul(pi, false, st.xRow, st.pRowCol)
		s.quantizeReadout(st.pRowCol)
		return
	}
	s.eng.Mul(pi, false, st.xCol, st.pRowCol)
	s.eng.Mul(pi, true, st.xRow, st.pColRow)
	s.quantizeReadout(st.pRowCol)
	s.quantizeReadout(st.pColRow)
}

// runLocalIterationsDelta is the flip-aware counterpart of
// runLocalIterations (DESIGN.md "Incremental compute datapath"). Each
// direction keeps a pure (offset-free) pre-threshold accumulator alive
// across local iterations: a full binary-kernel MVM anchors it at the
// start of the round (and every deltaRefresh iterations to bound float
// drift), and every other iteration patches it with only the columns of
// the spins the previous threshold pass flipped — O(flips·t) instead of
// O(t²). Thresholding consumes the accumulator plus the offset vector
// without mutating it and records the flips for the next patch. The
// final readout recomputes both partial sums with the exact binary
// kernel so the published values carry no accumulated drift. Noise
// draws per element are identical in count and order to the reference
// path, keeping the two paths on the same RNG trajectory.
func (s *runContext) runLocalIterationsDelta(st *pairState, p tiling.Pair, pi int, phi float64) {
	cfg := &s.cfg
	grid := s.grid
	refresh := cfg.deltaRefresh()
	rowLo, _ := grid.BlockRange(p.Row)
	colLo, _ := grid.BlockRange(p.Col)
	if p.IsDiagonal() {
		for l := 0; l < cfg.LocalIters; l++ {
			s.advance(pi, false, st.xRow, st.rowFlips, st.rowSigns, st.yRow, l%refresh == 0)
			s.thresholdDelta(st.xRow, st.yRow, st.offRow, rowLo, st.rng, phi, &st.rowFlips, &st.rowSigns)
		}
		s.binaryMul(pi, false, st.xRow, st.pRowCol)
		s.quantizeReadout(st.pRowCol)
		return
	}
	for l := 0; l < cfg.LocalIters; l++ {
		// Output block Row accumulates C_{Row,Col}·x_Col; x_Col last
		// changed in the previous iteration's second threshold pass.
		s.advance(pi, false, st.xCol, st.colFlips, st.colSigns, st.yRow, l%refresh == 0)
		s.thresholdDelta(st.xRow, st.yRow, st.offRow, rowLo, st.rng, phi, &st.rowFlips, &st.rowSigns)
		// Output block Col accumulates C_{Col,Row}·x_Row = tileᵀ·x_Row,
		// where x_Row was just updated above.
		s.advance(pi, true, st.xRow, st.rowFlips, st.rowSigns, st.yCol, l%refresh == 0)
		s.thresholdDelta(st.xCol, st.yCol, st.offCol, colLo, st.rng, phi, &st.colFlips, &st.colSigns)
	}
	s.binaryMul(pi, false, st.xCol, st.pRowCol)
	s.binaryMul(pi, true, st.xRow, st.pColRow)
	s.quantizeReadout(st.pRowCol)
	s.quantizeReadout(st.pColRow)
}

// threshold applies the noisy comparison of Eq. 5-6 element-wise,
// writing binarized states into dst. blockLo maps tile-local indices to
// padded global node indices for θ and the noise scale. phi is the
// (possibly annealed) noise level of the current global iteration.
func (s *Solver) threshold(dst, y []float64, blockLo int, rng *rand.Rand, phi float64) {
	for i := range y {
		v := y[i]
		if phi > 0 {
			v += rng.NormFloat64() * phi * s.noiseScale[blockLo+i]
		}
		if v < s.thresholds[blockLo+i] {
			dst[i] = 0
		} else {
			dst[i] = 1
		}
	}
}

// thresholdDelta is the fast path's threshold pass: it reads the pure
// accumulator y plus the offset vector off (leaving y intact for the
// next delta patch) and records which tile-local spins changed, and by
// how much (±1), into the caller's flip buffers. The arithmetic per
// element — one add, then the same noise expression — rounds identically
// to the reference threshold applied after the reference path's
// y += off loop. The θ and noise-scale views are hoisted out of the
// loop and the noise branch is lifted to a loop split: this pass runs
// once per element per local iteration and dominates the fast path's
// residual cost.
func (s *Solver) thresholdDelta(dst, y, off []float64, blockLo int, rng *rand.Rand, phi float64, flips *[]int, signs *[]float64) {
	n := len(y)
	th := s.thresholds[blockLo : blockLo+n]
	f := (*flips)[:0]
	sg := (*signs)[:0]
	if phi > 0 {
		scale := s.noiseScale[blockLo : blockLo+n]
		for i, yv := range y {
			v := yv + off[i]
			v += rng.NormFloat64() * phi * scale[i]
			var nv float64
			if v >= th[i] {
				nv = 1
			}
			if d := nv - dst[i]; d != 0 {
				f = append(f, i)
				sg = append(sg, d)
				dst[i] = nv
			}
		}
	} else {
		for i, yv := range y {
			v := yv + off[i]
			var nv float64
			if v >= th[i] {
				nv = 1
			}
			if d := nv - dst[i]; d != 0 {
				f = append(f, i)
				sg = append(sg, d)
				dst[i] = nv
			}
		}
	}
	*flips = f
	*signs = sg
}

// advance brings a pre-threshold accumulator up to date with its input
// vector x: a full binary-kernel recompute when the round (or the
// deltaRefresh drift bound) demands an anchor, a flip patch otherwise.
// The patch-versus-recompute choice is adaptive — patching costs
// O(flips·t) against the gather kernel's O(ones·t) with ones ≈ t/2, so
// a noisy round that flips half a block falls back to the recompute,
// which also re-anchors the accumulator for free.
func (s *runContext) advance(pi int, transposed bool, x []float64, flips []int, signs []float64, y []float64, full bool) {
	if full || 2*len(flips) >= len(y) {
		s.binaryMul(pi, transposed, x, y)
		return
	}
	s.delta.MulDelta(pi, transposed, flips, signs, y)
}

// binaryMul routes a full MVM on a {0,1} vector through the engine's
// exact binary kernel when available, falling back to the general Mul
// (bit-identical for binary inputs by the BinaryEngine contract).
func (s *runContext) binaryMul(pi int, transposed bool, x, y []float64) {
	if s.binary != nil {
		s.binary.MulBinary(pi, transposed, x, y)
		return
	}
	s.eng.Mul(pi, transposed, x, y)
}

func (s *runContext) quantizeReadout(v []float64) {
	if s.quant != nil {
		s.quant.QuantizeReadout(v)
	}
}

// synchronize performs the controller's global synchronization: selected
// pairs publish their partial sums, then each block column's spin copies
// are reconciled (majority or stochastic pick) and broadcast. rowSum,
// when non-nil, is the fast path's running row-sum cache over the
// partial-sum table and is patched in place as new partials land.
// copies is per-Run reconciliation scratch (one bucket per block) whose
// inner slices are reused across global iterations. The trace run
// receives one KindSyncPair event per published pair (carrying the
// pair's publish and gather traffic) and one KindSyncBlock per
// reconciled block.
func (s *Solver) synchronize(states []*pairState, selected []int, sGlobal []float64,
	partial [][]float64, pIdx func(int, int) int, ctrl *rand.Rand,
	rowSum [][]float64, copies [][][]float64, g int, run *trace.Run) {

	grid := s.grid

	// Publish partial sums. The row-sum cache absorbs the difference
	// between the new and previously published partial before the copy
	// overwrites it, keeping rowSum[r] = Σ_k partial[r][k] in O(t).
	publish := func(row int, dst, src []float64) {
		if rowSum != nil {
			rs := rowSum[row]
			for i := range dst {
				rs[i] += src[i] - dst[i]
			}
		}
		copy(dst, src)
	}
	for _, pi := range selected {
		p := s.pairs[pi]
		st := states[pi]
		publish(p.Row, partial[pIdx(p.Row, p.Col)], st.pRowCol)
		if !p.IsDiagonal() {
			publish(p.Col, partial[pIdx(p.Col, p.Row)], st.pColRow)
		}
		run.SyncPair(g, pi)
	}

	// Gather spin copies per block into the reused scratch buckets (the
	// gather traffic is carried by the pair's KindSyncPair event above).
	for b := range copies {
		copies[b] = copies[b][:0]
	}
	for _, pi := range selected {
		p := s.pairs[pi]
		st := states[pi]
		copies[p.Row] = append(copies[p.Row], st.xRow)
		if !p.IsDiagonal() {
			copies[p.Col] = append(copies[p.Col], st.xCol)
		}
	}

	// Reconcile and broadcast.
	for b := 0; b < grid.Tiles; b++ {
		cs := copies[b]
		if len(cs) == 0 {
			continue // no selected tile touched this block; state unchanged
		}
		dst := grid.Block(sGlobal, b)
		switch s.cfg.SpinUpdate {
		case SpinUpdateStochastic:
			copy(dst, cs[ctrl.Intn(len(cs))])
		default: // majority of all copies
			for i := range dst {
				sum := 0.0
				for _, c := range cs {
					sum += c[i]
				}
				if sum*2 >= float64(len(cs)) {
					dst[i] = 1
				} else {
					dst[i] = 0
				}
			}
		}
		run.SyncBlock(g, b, len(cs))
	}
}

// energyTracker carries the Hamiltonian across evaluation points so sync
// points where few (or no) spins changed avoid re-walking every edge.
// For integer couplings (ising.Model.IntegerCouplings) the incremental
// updates are bit-identical to a full Energy walk — every intermediate
// value stays an exactly representable float64 integer — so the fast
// path's traces match the reference path's. For float couplings the
// tracker always takes the full walk, preserving golden equivalence;
// the unchanged-state shortcut is exact regardless.
type energyTracker struct {
	model *ising.Model
	exact bool
	spins []int8
	e     float64
}

func newEnergyTracker(m *ising.Model, spins []int8, e float64, exact bool) *energyTracker {
	tr := &energyTracker{model: m, exact: exact, spins: make([]int8, len(spins)), e: e}
	copy(tr.spins, spins)
	return tr
}

// energyAt returns the Hamiltonian of cur and updates the tracked state.
// Incremental EnergyDelta accumulation costs O(changed·N) versus the
// O(N²) full walk, so it engages below the changed ≈ N/2 crossover.
func (tr *energyTracker) energyAt(cur []int8) float64 {
	changed := 0
	for i, v := range cur {
		if v != tr.spins[i] {
			changed++
		}
	}
	if changed == 0 {
		return tr.e
	}
	if tr.exact && changed*2 <= len(cur) {
		for i, v := range cur {
			if v != tr.spins[i] {
				tr.e += tr.model.EnergyDelta(tr.spins, i)
				tr.spins[i] = v
			}
		}
		return tr.e
	}
	tr.e = tr.model.Energy(cur)
	copy(tr.spins, cur)
	return tr.e
}

// fillSpins converts the first len(dst) entries of a padded binary state
// to ±1 spins in place.
func fillSpins(dst []int8, binary []float64) {
	for i := range dst {
		if binary[i] != 0 {
			dst[i] = 1
		} else {
			dst[i] = -1
		}
	}
}

// bestSpinsFrom converts the first n entries of a padded binary state to
// ±1 spins.
func bestSpinsFrom(binary []float64, n int) []int8 {
	spins := make([]int8, n)
	fillSpins(spins, binary)
	return spins
}

// Solve is a convenience wrapper: build a solver and run one job.
func Solve(m *ising.Model, cfg Config) (*Result, error) {
	s, err := NewSolver(m, cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(cfg.Seed)
}

// SolveCtx is Solve's cancellable sibling: the run winds down at its
// next global-iteration boundary once ctx is cancelled or expires,
// returning best-so-far with Stopped set (RunCtx semantics). A run
// that completes is bit-identical to Solve with the same inputs.
func SolveCtx(ctx context.Context, m *ising.Model, cfg Config) (*Result, error) {
	s, err := NewSolver(m, cfg)
	if err != nil {
		return nil, err
	}
	return s.RunCtx(ctx, cfg.Seed)
}
