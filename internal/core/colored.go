package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"sophie/internal/metrics"
	"sophie/internal/trace"
)

// Colored parallel update (Config.ColoredUpdate).
//
// The default SOPHIE recurrence is block-synchronous: every spin of a
// tile thresholds against the products of the previous iteration. The
// colored update is the chromatic Gauss-Seidel alternative the sparse
// literature uses ("Massively Parallel Probabilistic Computing with
// Sparse Ising Machines", PAPERS.md): spins are partitioned into
// independent sets by greedy coloring of the coupling sparsity graph,
// classes update in sequence, and within a class every spin thresholds
// concurrently — safe because same-class spins share no coupling, so
// none reads a value another is writing. Between classes the running
// product y = C·s is patched with the flipped spins' adjacency rows in
// O(flips·degree).
//
// Determinism at any worker count rests on three invariants:
//  1. Noise is stateless: each (step, spin) pair derives its normal
//     deviate from the splitmix64 stream (seed, roleColored) — there is
//     no RNG state to migrate between workers.
//  2. Threshold writes are sharded by spin: each worker owns a
//     contiguous chunk of the class, and chunks are concatenated in
//     class order, so the merged flip list is always the ascending-spin
//     order regardless of which worker finished first.
//  3. Flip application is sharded by output range: every worker applies
//     the same ascending flip sequence restricted to its own disjoint
//     slice of y (linalg.AccumulateFlipRange), so each element of y
//     receives the same additions in the same order as a serial sweep.
//
// The trajectory is a pure function of the seed but differs from the
// default update — this is a different algorithm, not a reimplementation
// — so colored runs are pinned for worker-count independence, not for
// bit-identity with the dense path. Op accounting keeps the standard
// event spine (one diagonal LocalBatch per global iteration), which
// over-charges MVM work relative to the O(flips·degree) sweeps; the PPA
// numbers for colored runs are upper bounds.

// coloredNormal returns the standard normal deviate of (step, spin) on
// the given stream: two splitmix64 mixes separate the dimensions, two
// more draw the Box-Muller uniforms. u1 lands in (0,1] so the log is
// finite.
func coloredNormal(stream, step, spin uint64) float64 {
	z := splitmix64(splitmix64(stream^step) ^ spin)
	u1 := (float64(z>>11) + 1) / (1 << 53)
	u2 := float64(splitmix64(z)>>11) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// runColored executes one job with the chromatic parallel update. It
// requires the single-tile sparse datapath (enforced by NewSolver).
func (s *runContext) runColored(seed int64) (*Result, error) {
	cfg := s.cfg
	grid := s.grid
	csr := s.coloredTile
	classes := s.classes
	paddedN := grid.PaddedN()
	n := s.model.N()
	ctrl := rand.New(rand.NewSource(seedStream(seed, roleController, 0)))
	stream := uint64(seedStream(seed, roleColored, 0))

	sGlobal := make([]float64, paddedN)
	if cfg.InitialSpins != nil {
		if len(cfg.InitialSpins) != n {
			return nil, fmt.Errorf("core: %d initial spins for %d-spin model", len(cfg.InitialSpins), n)
		}
		for i, sp := range cfg.InitialSpins {
			if sp == 1 {
				sGlobal[i] = 1
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if ctrl.Intn(2) == 1 {
				sGlobal[i] = 1
			}
		}
	}

	run := trace.NewRun(trace.Meta{
		Nodes:        n,
		TileSize:     cfg.TileSize,
		Tiles:        grid.Tiles,
		Pairs:        1,
		LocalIters:   cfg.LocalIters,
		GlobalIters:  cfg.GlobalIters,
		TileFraction: cfg.TileFraction,
		Stochastic:   cfg.SpinUpdate == SpinUpdateStochastic,
		Seed:         seed,
		Device:       false,
	}, cfg.Tracer)
	var res Result
	defer func() {
		run.End()
		res.Ops = run.Ops()
	}()

	// Long-lived worker pool, one closure channel for every parallel
	// phase (threshold sweep, flip application, anchor recompute).
	workers := cfg.workers()
	if workers > paddedN {
		workers = paddedN
	}
	work := make(chan func())
	defer close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		go func() {
			for f := range work {
				f()
				wg.Done()
			}
		}()
	}
	parallel := func(parts int, f func(part int)) {
		if parts <= 1 {
			f(0)
			return
		}
		wg.Add(parts)
		for p := 0; p < parts; p++ {
			p := p
			work <- func() { f(p) }
		}
		wg.Wait()
	}
	// anchor recomputes y = C·s exactly, rows sharded across workers.
	y := make([]float64, paddedN)
	anchor := func() {
		parallel(workers, func(part int) {
			lo := part * paddedN / workers
			hi := (part + 1) * paddedN / workers
			csr.ApplyBinaryRange(sGlobal, y, lo, hi)
		})
	}
	anchor()
	run.InitMVM(0, true)
	run.InitDone()

	res.BestSpins = bestSpinsFrom(sGlobal, n)
	res.BestEnergy = s.model.Energy(res.BestSpins)
	evalSpins := make([]int8, n)
	tracker := newEnergyTracker(s.model, res.BestSpins, res.BestEnergy, s.exactEnergy)
	var prevEval []int8
	if run.WantsEnergyDetail() {
		prevEval = append([]int8(nil), res.BestSpins...)
	}

	// Per-worker flip chunks, merged into one ascending list per class.
	chunkFlips := make([][]int, workers)
	chunkSigns := make([][]float64, workers)
	var flips []int
	var signs []float64

	refresh := cfg.deltaRefresh()
	// Geometric noise annealing schedule, as in run().
	phiAt := func(g int) float64 {
		//sophielint:ignore floateq exact equality of two user-set config values selects the constant-noise fast path
		if cfg.PhiEnd <= 0 || cfg.Phi == cfg.PhiEnd || cfg.GlobalIters == 1 {
			return cfg.Phi
		}
		frac := float64(g-1) / float64(cfg.GlobalIters-1)
		return cfg.Phi * math.Pow(cfg.PhiEnd/cfg.Phi, frac)
	}
	for g := 1; g <= cfg.GlobalIters; g++ {
		if s.stop != nil && s.stop.stopped() {
			res.Stopped = true
			return &res, nil
		}
		if s.ctx != nil {
			select {
			case <-s.ctx.Done():
				res.Stopped = true
				return &res, nil
			default:
			}
		}
		phi := phiAt(g)
		run.GlobalStart(g, 1, phi)
		run.LoadDone(g, 1)

		for l := 0; l < cfg.LocalIters; l++ {
			if (g > 1 || l > 0) && l%refresh == 0 {
				anchor()
			}
			for ci, class := range classes {
				step := metrics.U64(((g-1)*cfg.LocalIters+l)*len(classes) + ci)
				// Threshold phase: workers own contiguous chunks of the
				// class; same-class spins share no coupling, so y and the
				// spins they write are untouched by each other.
				parts := workers
				if parts > len(class) {
					parts = len(class)
				}
				if parts == 0 {
					continue
				}
				parallel(parts, func(part int) {
					lo := part * len(class) / parts
					hi := (part + 1) * len(class) / parts
					f := chunkFlips[part][:0]
					sg := chunkSigns[part][:0]
					for _, v := range class[lo:hi] {
						x := y[v]
						if phi > 0 {
							x += coloredNormal(stream, step, uint64(v)) * phi * s.noiseScale[v]
						}
						var nv float64
						if x >= s.thresholds[v] {
							nv = 1
						}
						if d := nv - sGlobal[v]; d != 0 {
							f = append(f, v)
							sg = append(sg, d)
							sGlobal[v] = nv
						}
					}
					chunkFlips[part] = f
					chunkSigns[part] = sg
				})
				flips = flips[:0]
				signs = signs[:0]
				for part := 0; part < parts; part++ {
					flips = append(flips, chunkFlips[part]...)
					signs = append(signs, chunkSigns[part]...)
				}
				if len(flips) == 0 {
					continue
				}
				// Apply phase: every worker applies the full ascending
				// flip sequence restricted to its own output range.
				parallel(workers, func(part int) {
					lo := part * paddedN / workers
					hi := (part + 1) * paddedN / workers
					for k, v := range flips {
						csr.AccumulateFlipRange(y, v, signs[k], lo, hi)
					}
				})
			}
		}
		run.LocalBatch(g, 0, true)
		run.LocalDone(g)
		run.SyncPair(g, 0)
		run.SyncBlock(g, 0, 1)
		run.SyncBarrier(g)

		res.GlobalItersRun = g
		res.TotalLocalIters = g * cfg.LocalIters

		if g%cfg.EvalEvery == 0 || g == cfg.GlobalIters {
			fillSpins(evalSpins, sGlobal)
			e := tracker.energyAt(evalSpins)
			improved := e < res.BestEnergy
			if improved {
				res.BestEnergy = e
				res.BestGlobalIter = g
				copy(res.BestSpins, evalSpins)
			}
			if cfg.RecordTrace {
				res.Trace = append(res.Trace, res.BestEnergy)
			}
			if prevEval != nil {
				diff := 0
				for i, v := range evalSpins {
					if v != prevEval[i] {
						diff++
					}
				}
				copy(prevEval, evalSpins)
				run.Energy(g, res.BestEnergy, diff, improved)
			}
			if cfg.OnGlobalIteration != nil {
				cfg.OnGlobalIteration(g, res.BestEnergy)
			}
			if cfg.TargetEnergy != nil && res.BestEnergy <= *cfg.TargetEnergy {
				res.ReachedTarget = true
				return &res, nil
			}
		}
		run.GlobalEnd(g)
	}
	return &res, nil
}
