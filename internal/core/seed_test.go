package core

import "testing"

// TestSeedStreamGolden pins the splitmix64-based stream derivation.
// These values are part of the reproducibility contract: every recorded
// trajectory since PR 3 depends on them, so a change here invalidates
// all published seeds and must be treated as a breaking change.
func TestSeedStreamGolden(t *testing.T) {
	golden := []struct {
		seed  int64
		role  uint64
		index int
		want  int64
	}{
		{0, roleController, 0, -3950889059393905802},
		{0, rolePair, 0, -2911357276986698639},
		{0, rolePair, 1, -2663383768702365016},
		{0, roleDevice, 0, -3369613466815744607},
		{1, roleController, 0, -6429585542944939139},
		{-1, roleController, 0, 6083029429409969880},
		{42, rolePair, 7, -2236712833645356350},
	}
	for _, g := range golden {
		if got := seedStream(g.seed, g.role, g.index); got != g.want {
			t.Errorf("seedStream(%d, %#x, %d) = %d, want %d", g.seed, g.role, g.index, got, g.want)
		}
	}
}

// TestSeedStreamSeparation checks the collision families the old
// derivations had:
//
//   - controller(seed) == controller(seed ^ 0x5deece66d): the old
//     controller seed was a raw XOR, so the two job seeds produced the
//     same controller stream;
//   - pair(seed, i) == pair(seed + 7919, i-1): the old arithmetic
//     pair-seed walk (seed + i*7919 + 1) collided across neighboring
//     job seeds.
//
// splitmix64 whitening must keep all these streams distinct, and no
// role may ever reuse another role's stream for the same job seed.
func TestSeedStreamSeparation(t *testing.T) {
	const legacyXOR = 0x5deece66d
	seen := make(map[int64]string)
	note := func(v int64, what string) {
		t.Helper()
		if prev, ok := seen[v]; ok {
			t.Fatalf("stream collision: %s and %s both derive %d", prev, what, v)
		}
		seen[v] = what
	}
	for _, seed := range []int64{0, 1, 2, 7919, 7920, 12345, 12345 ^ legacyXOR, -1} {
		note(seedStream(seed, roleController, 0), "controller")
		note(seedStream(seed, roleDevice, 0), "device")
		for i := 0; i < 64; i++ {
			note(seedStream(seed, rolePair, i), "pair")
		}
	}
}
