package core

import (
	"context"
	"fmt"
	"math"
	"sync"
)

// Tempering portfolio runtime (DESIGN.md "Tempering portfolio runtime").
//
// Parallel tempering couples the batched replicas instead of running
// them independently: replica r anneals at a fixed noise level phi_r
// drawn from a geometric ladder, and at exchange boundaries adjacent
// rungs swap spin configurations with the Metropolis acceptance rule,
// treating phi as the effective temperature. Hot rungs explore, the
// cold rung exploits, and a good configuration found anywhere on the
// ladder percolates down. The runtime reuses everything the batch
// runtime already amortizes — one preprocessed solver, one programmed
// engine, per-rung sessions — and adds reuse-aware scheduling: all
// rungs advance through the same global iteration in lockstep over one
// shared PE pool, dispatched pair-major, so every rung's local batch
// for tile pair p runs while p's tiles are hot in cache.
//
// Determinism contract: rung trajectories are pure functions of their
// seeds (controller/pair/device streams, as in RunBatch), controller
// phases run rung-sequentially, and exchange decisions draw from the
// stateless (seeds[0], roleExchange) stream keyed by (iteration, rung)
// — so the full portfolio, exchanges included, is bit-identical at any
// Workers value.

// TemperingOptions configures the parallel-tempering portfolio
// (BatchOptions.Tempering / Solver.RunTempering).
type TemperingOptions struct {
	// TMin and TMax bound the geometric noise-level ladder: rung r of R
	// runs at phi_r = TMin·(TMax/TMin)^(r/(R-1)), so rung 0 is the
	// coldest. Both override the solver's Phi/PhiEnd schedule (each rung
	// holds its ladder level constant). Requires 0 < TMin < TMax.
	TMin, TMax float64
	// ExchangeEvery is the exchange period in global iterations:
	// adjacent-rung swaps are attempted at the boundary of every
	// ExchangeEvery-th iteration (except the last). 0 means 1.
	ExchangeEvery int
}

// TemperingStats reports the ladder and exchange behavior of one
// tempering run (BatchResult.Tempering).
type TemperingStats struct {
	// Phis is the noise-level ladder, coldest first; Phis[r] is the
	// constant phi replica r ran at.
	Phis []float64
	// RungEnergies is each rung's final best energy, in ladder order
	// (RungEnergies[r] == Results[r].BestEnergy).
	RungEnergies []float64
	// Attempted and Accepted count adjacent-rung exchange attempts and
	// accepted swaps; ExchangeRate is their ratio (0 when no boundary
	// was reached).
	Attempted    int
	Accepted     int
	ExchangeRate float64
}

func (t *TemperingOptions) exchangeEvery() int {
	if t.ExchangeEvery == 0 {
		return 1
	}
	return t.ExchangeEvery
}

// exchangeUniform is the stateless acceptance draw of the exchange
// attempt between rung and rung+1 at iteration iter: two splitmix64
// mixes separate the portfolio stream from the (iteration, rung) pair,
// exactly the coloredNormal construction. No RNG state exists, so
// exchange outcomes cannot depend on scheduling.
func exchangeUniform(stream uint64, iter, rung int) float64 {
	z := splitmix64(splitmix64(stream^uint64(iter)) ^ uint64(rung))
	return float64(z>>11) / (1 << 53)
}

// RunTempering executes one parallel-tempering portfolio: len(seeds)
// replicas on a geometric noise ladder, exchanging configurations at
// global-iteration boundaries. Results[r] is rung r's result (coldest
// first) and BatchResult.Tempering carries the ladder and exchange
// statistics. Output is bit-identical at any worker count.
func (s *Solver) RunTempering(seeds []int64, topts TemperingOptions) (*BatchResult, error) {
	return s.RunBatch(seeds, BatchOptions{Tempering: &topts})
}

// RunTemperingCtx is RunTempering under caller-controlled cancellation,
// observed at global-iteration boundaries like RunBatchCtx.
func (s *Solver) RunTemperingCtx(ctx context.Context, seeds []int64, topts TemperingOptions) (*BatchResult, error) {
	return s.RunBatchCtx(ctx, seeds, BatchOptions{Tempering: &topts})
}

// runTemperingCtx is the tempering driver behind RunBatchCtx. seeds[r]
// seeds rung r; opts.Tempering is non-nil.
func (s *Solver) runTemperingCtx(ctx context.Context, seeds []int64, opts BatchOptions) (*BatchResult, error) {
	topts := opts.Tempering
	rungs := len(seeds)
	if rungs < 2 {
		return nil, fmt.Errorf("core: tempering needs at least 2 rungs, got %d seeds", rungs)
	}
	if !(topts.TMin > 0) || !(topts.TMax > topts.TMin) {
		return nil, fmt.Errorf("core: tempering ladder needs 0 < TMin < TMax, got [%g, %g]", topts.TMin, topts.TMax)
	}
	if topts.ExchangeEvery < 0 {
		return nil, fmt.Errorf("core: negative exchange period %d", topts.ExchangeEvery)
	}
	if opts.EarlyStop {
		return nil, fmt.Errorf("core: tempering and EarlyStop cannot combine (the ladder already couples the replicas; set Config.TargetEnergy alone to stop the whole portfolio)")
	}
	if s.cfg.ColoredUpdate {
		return nil, fmt.Errorf("core: tempering requires the tiled datapath (ColoredUpdate runs single-tile)")
	}

	// Geometric ladder, coldest first. Each rung's solver view pins the
	// rung's phi as a constant schedule; everything preprocessed —
	// transform, tiles, programmed engine — is shared untouched.
	// Per-rung Config.Workers is irrelevant (rungs own no pool), as is
	// opts.JobWorkers: the portfolio runs one shared pool.
	phis := make([]float64, rungs)
	ratio := math.Pow(topts.TMax/topts.TMin, 1/float64(rungs-1))
	phis[0] = topts.TMin
	for r := 1; r < rungs; r++ {
		phis[r] = phis[r-1] * ratio
	}
	jobs := make([]*jobRun, 0, rungs)
	finishAll := func() {
		for _, j := range jobs {
			j.finish()
		}
	}
	for r := 0; r < rungs; r++ {
		phi := phis[r]
		runner, err := s.WithRuntime(func(c *Config) { c.Phi = phi; c.PhiEnd = 0 })
		if err != nil {
			finishAll()
			return nil, err
		}
		j, err := newJobRun(runner.newRunContext(ctx, seeds[r], nil), seeds[r])
		if err != nil {
			finishAll()
			return nil, err
		}
		jobs = append(jobs, j)
	}

	// One shared PE pool for the whole ladder. Dispatch below is
	// pair-major, so the pool sees every rung's job for pair p before
	// any rung's job for pair p+1 — the reuse-aware interleaving.
	type rungJob struct {
		j   *jobRun
		pi  int
		phi float64
	}
	workers := opts.Workers
	if workers == 0 {
		workers = s.cfg.workers()
	}
	work := make(chan rungJob)
	defer close(work)
	var round sync.WaitGroup
	for w := 0; w < workers; w++ {
		go func() {
			for jb := range work {
				jb.j.localPair(jb.pi, jb.phi)
				round.Done()
			}
		}()
	}

	nPairs := s.grid.PairCount()
	selBy := make([][]bool, rungs)
	for r := range selBy {
		selBy[r] = make([]bool, nPairs)
	}
	stream := uint64(seedStream(seeds[0], roleExchange, 0))
	exchangeEvery := topts.exchangeEvery()
	stats := &TemperingStats{Phis: phis}
	curr := make([]float64, rungs)

	// markStopped flags every rung that did not reach the target as cut
	// short — unless the portfolio was already at its natural end.
	markStopped := func(g int) {
		if g >= s.cfg.GlobalIters {
			return
		}
		for _, j := range jobs {
			if !j.res.ReachedTarget {
				j.res.Stopped = true
			}
		}
	}

	iters := jobs[0].rc.cfg.GlobalIters
loop:
	for g := 1; g <= iters; g++ {
		// Caller cancellation, observed once per lockstep iteration.
		for _, j := range jobs {
			if j.shouldStop() {
				for _, o := range jobs {
					o.res.Stopped = true
				}
				break loop
			}
		}

		// Controller phases run rung-sequentially: each rung's selection
		// and load draw only from that rung's streams, so the order is
		// fixed and scheduling-free.
		total := 0
		for r, j := range jobs {
			j.beginIter(g) // returns the constant phis[r]
			sel := selBy[r]
			for pi := range sel {
				sel[pi] = false
			}
			for _, pi := range j.selected {
				sel[pi] = true
			}
			total += len(j.selected)
		}

		// Pair-major dispatch over the shared pool.
		round.Add(total)
		for pi := 0; pi < nPairs; pi++ {
			for r, j := range jobs {
				if selBy[r][pi] {
					work <- rungJob{j: j, pi: pi, phi: phis[r]}
				}
			}
		}
		round.Wait()

		reached := false
		for _, j := range jobs {
			if j.endIter(g) {
				reached = true
			}
		}
		if reached {
			markStopped(g)
			break
		}

		// Exchange boundary: re-anchor every rung's energy exactly on its
		// current reconciled state, then sweep the ladder bottom-up with
		// the Metropolis rule on the stateless exchange stream. phi plays
		// the role of temperature: dBeta > 0 for every adjacent pair, so
		// a hotter rung holding the lower energy always swaps down.
		if g%exchangeEvery == 0 && g < iters {
			for r, j := range jobs {
				e := j.currentEnergy()
				j.observeEnergy(g, e)
				curr[r] = e
			}
			for r := 0; r+1 < rungs; r++ {
				stats.Attempted++
				dBeta := 1/phis[r] - 1/phis[r+1]
				dE := curr[r] - curr[r+1]
				ok := dBeta*dE >= 0 || exchangeUniform(stream, g, r) < math.Exp(dBeta*dE)
				if ok {
					jobs[r].swapStateWith(jobs[r+1])
					curr[r], curr[r+1] = curr[r+1], curr[r]
					stats.Accepted++
				}
				jobs[r].run.Exchange(g, r, ok, dE)
			}
			// An exchange-boundary evaluation can reach the target between
			// endIter's eval points; check deterministically here so the
			// portfolio stops the same way at any worker count.
			if tgt := s.cfg.TargetEnergy; tgt != nil {
				for _, j := range jobs {
					if j.res.BestEnergy <= *tgt {
						j.res.ReachedTarget = true
						reached = true
					}
				}
				if reached {
					markStopped(g)
					break
				}
			}
		}
	}
	finishAll()

	results := make([]*Result, rungs)
	for r, j := range jobs {
		results[r] = &j.res
	}
	b := aggregate(results)
	stats.RungEnergies = make([]float64, rungs)
	for r, res := range results {
		stats.RungEnergies[r] = res.BestEnergy
	}
	if stats.Attempted > 0 {
		stats.ExchangeRate = float64(stats.Accepted) / float64(stats.Attempted)
	}
	b.Tempering = stats
	return b, nil
}
