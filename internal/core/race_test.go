package core

import (
	"math"
	"sync"
	"testing"

	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/linalg"
	"sophie/internal/opcm"
	"sophie/internal/tiling"
)

// These tests back the repo's two concurrency invariants (DESIGN.md
// "Invariants"): (1) a Solver must be race-free under `go test -race`
// when shared across goroutines with the ideal engine, and (2) results
// must be a pure function of the seed — bit-identical across repeats,
// worker counts, and batch scheduling.

func raceProblem(t testing.TB) *ising.Model {
	t.Helper()
	g, err := graph.Random(64, 320, graph.WeightUnit, 17)
	if err != nil {
		t.Fatal(err)
	}
	return ising.FromMaxCut(g)
}

// requireIdentical asserts two results are bit-identical: spins, the
// full energy trace (compared as float bits, not within a tolerance),
// and every hardware op counter.
func requireIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.BestSpins) != len(b.BestSpins) {
		t.Fatalf("%s: spin vector lengths differ: %d vs %d", label, len(a.BestSpins), len(b.BestSpins))
	}
	for i := range a.BestSpins {
		if a.BestSpins[i] != b.BestSpins[i] {
			t.Fatalf("%s: spin %d differs: %d vs %d", label, i, a.BestSpins[i], b.BestSpins[i])
		}
	}
	if math.Float64bits(a.BestEnergy) != math.Float64bits(b.BestEnergy) {
		t.Fatalf("%s: BestEnergy bits differ: %v vs %v", label, a.BestEnergy, b.BestEnergy)
	}
	if a.BestGlobalIter != b.BestGlobalIter {
		t.Fatalf("%s: BestGlobalIter %d vs %d", label, a.BestGlobalIter, b.BestGlobalIter)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if math.Float64bits(a.Trace[i]) != math.Float64bits(b.Trace[i]) {
			t.Fatalf("%s: trace[%d] bits differ: %v vs %v", label, i, a.Trace[i], b.Trace[i])
		}
	}
	if a.Ops != b.Ops {
		t.Fatalf("%s: op counts differ:\n%s\nvs\n%s", label, a.Ops.String(), b.Ops.String())
	}
}

// TestDeterminismRegression pins the seed-reproducibility contract at
// its strictest: full traces evaluated every iteration must be
// bit-identical across repeated runs and across worker counts.
func TestDeterminismRegression(t *testing.T) {
	m := raceProblem(t)
	cfg := quickConfig()
	cfg.RecordTrace = true
	cfg.EvalEvery = 1
	cfg.Workers = 8
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 12345
	first, err := s.Run(seed)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Run(seed)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "repeat same-seed run", first, second)

	serial, err := s.WithRuntime(func(c *Config) { c.Workers = 1 })
	if err != nil {
		t.Fatal(err)
	}
	single, err := serial.Run(seed)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "workers=8 vs workers=1", first, single)
}

// TestBatchSchedulingIsInvisible checks that batching is pure seed
// bookkeeping: every RunBatch replica must be bit-identical to a plain
// Run of its seed, for any batch worker count and any per-job worker
// count (ideal engine).
func TestBatchSchedulingIsInvisible(t *testing.T) {
	m := raceProblem(t)
	cfg := quickConfig()
	cfg.RecordTrace = true
	cfg.EvalEvery = 1
	cfg.Workers = 1
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const base, jobs = 900, 4
	seeds := mustSeedRange(base, jobs)
	refs := make([]*Result, jobs)
	for j := range seeds {
		r, err := s.Run(seeds[j])
		if err != nil {
			t.Fatal(err)
		}
		refs[j] = r
	}
	for _, opts := range []BatchOptions{
		{Workers: 1},
		{Workers: 4},
		{Workers: 2, JobWorkers: 3},
	} {
		batch, err := s.RunBatch(seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		for j := range refs {
			requireIdentical(t, "RunBatch replica vs serial Run", batch.Results[j], refs[j])
		}
	}
}

// TestBatchSchedulingIsInvisibleOnDevice is the same contract on the
// shared opcm device model with read noise enabled — the case the
// pre-session engine could not honor, because concurrent jobs drew from
// one mutex-serialized noise stream in schedule order. Under -race this
// also proves concurrent device-model batches are data-race free.
func TestBatchSchedulingIsInvisibleOnDevice(t *testing.T) {
	m := raceProblem(t)
	cfg := quickConfig()
	cfg.RecordTrace = true
	cfg.EvalEvery = 1
	cfg.Workers = 1
	cfg.Engine = func(tiles []*linalg.Matrix) (tiling.Engine, error) {
		params := opcm.DefaultParams()
		params.ReadNoise = 0.02
		return opcm.NewEngine(tiles, 0, params)
	}
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seeds := mustSeedRange(4200, 5)
	refs := make([]*Result, len(seeds))
	for j := range seeds {
		r, err := s.Run(seeds[j])
		if err != nil {
			t.Fatal(err)
		}
		refs[j] = r
	}
	for _, workers := range []int{1, 4} {
		batch, err := s.RunBatch(seeds, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for j := range refs {
			requireIdentical(t, "device RunBatch replica vs serial Run", batch.Results[j], refs[j])
		}
	}
}

// TestConcurrentDeviceRuns hammers plain Run on one shared device-model
// solver from several goroutines — the direct regression test for the
// old "run jobs sequentially for device studies" restriction. The -race
// build must stay silent and every result must match an undisturbed
// reference run.
func TestConcurrentDeviceRuns(t *testing.T) {
	m := raceProblem(t)
	cfg := quickConfig()
	cfg.GlobalIters = 25
	cfg.Workers = 2
	cfg.Engine = func(tiles []*linalg.Matrix) (tiling.Engine, error) {
		params := opcm.DefaultParams()
		params.ReadNoise = 0.05
		return opcm.NewEngine(tiles, 0, params)
	}
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 6
	refs := make([]*Result, goroutines)
	for i := range refs {
		r, err := s.Run(int64(700 + i))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r
	}
	results := make([]*Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Run(int64(700 + i))
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		requireIdentical(t, "concurrent vs sequential device run", results[i], refs[i])
	}
}

// TestConcurrentRunsOnSharedSolver hammers the worker pool: several
// goroutines call Run on one ideal-engine Solver, each itself fanning
// out across workers. The -race build must stay silent, and each
// goroutine's result must match an undisturbed reference run.
func TestConcurrentRunsOnSharedSolver(t *testing.T) {
	m := raceProblem(t)
	cfg := quickConfig()
	cfg.GlobalIters = 30
	cfg.Workers = 4
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 6
	refs := make([]*Result, goroutines)
	for i := range refs {
		r, err := s.Run(int64(100 + i))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r
	}
	results := make([]*Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Run(int64(100 + i))
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		requireIdentical(t, "concurrent vs sequential run", results[i], refs[i])
	}
}

// TestRunBatchUnderRace drives the batch-level parallelism with more
// replicas than slots so the semaphore path is exercised, with the
// portfolio early-stop racing its cancellation flag against running
// replicas.
func TestRunBatchUnderRace(t *testing.T) {
	m := raceProblem(t)
	cfg := quickConfig()
	cfg.GlobalIters = 20
	target := 0.0
	cfg.TargetEnergy = &target
	s, err := NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := s.RunBatch(mustSeedRange(1, 9), BatchOptions{Workers: 3, EarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 9 {
		t.Fatalf("%d results, want 9", len(batch.Results))
	}
}
