package core

import (
	"fmt"
	"testing"

	"sophie/internal/graph"
	"sophie/internal/ising"
)

// BenchmarkSparseCrossover sweeps coupling density per tile order,
// timing the CSR engine against the forced-dense engine on the same
// random instance. The break-even densities observed here size the
// sparseDensityThresholds table in config.go (and the sophiebench
// "sparse/crossover" arm re-records a compact subset into the tracked
// baseline). Both arms compute bit-identical trajectories, so the
// ratio is a pure datapath comparison.
//
// Run with:
//
//	go test ./internal/core -bench SparseCrossover -benchtime 0.3s -run '^$'
func BenchmarkSparseCrossover(b *testing.B) {
	for _, tile := range []int{64, 128, 256, 512} {
		n := 2 * tile // multi-tile, so the dense engine's pair scheduling is exercised
		for _, density := range []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50, 0.80} {
			m := int(density * float64(n*(n-1)) / 2)
			g, err := graph.Random(n, m, graph.WeightUnit, 1)
			if err != nil {
				b.Fatal(err)
			}
			model := ising.FromMaxCut(g)
			cfg := DefaultConfig()
			cfg.TileSize = tile
			cfg.LocalIters = 4
			cfg.GlobalIters = 8
			cfg.Phi = 0.1
			cfg.SkipTransform = true
			for _, arm := range []struct {
				name  string
				force bool
			}{{"sparse", false}, {"dense", true}} {
				acfg := cfg
				acfg.ForceDense = arm.force
				if !arm.force {
					// Pin the CSR engine regardless of the threshold table so
					// the sweep measures both datapaths at every density.
					acfg.forceSparse = true
				}
				s, err := NewSolver(model, acfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(0); err != nil { // warm outside the timed region
					b.Fatal(err)
				}
				b.Run(fmt.Sprintf("tile%d/d%02.0f/%s", tile, density*100, arm.name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := s.Run(int64(i)); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}
