package core

import (
	"testing"

	"sophie/internal/graph"
	"sophie/internal/ising"
)

func TestTransformRankSolvesComparably(t *testing.T) {
	g, err := graph.Random(120, 700, graph.WeightUnit, 41)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)

	full := quickConfig()
	full.GlobalIters = 80
	rFull, err := Solve(m, full)
	if err != nil {
		t.Fatal(err)
	}

	ranked := full
	ranked.TransformRank = 40 // about a third of the spectrum
	rRank, err := Solve(m, ranked)
	if err != nil {
		t.Fatal(err)
	}

	cutFull := g.CutValue(rFull.BestSpins)
	cutRank := g.CutValue(rRank.BestSpins)
	if cutRank < 0.9*cutFull {
		t.Fatalf("rank-limited transform cut %v fell below 90%% of full %v", cutRank, cutFull)
	}
}

func TestTransformRankValidation(t *testing.T) {
	g, _ := graph.Random(20, 40, graph.WeightUnit, 2)
	m := ising.FromMaxCut(g)
	cfg := quickConfig()
	cfg.TransformRank = -1
	if _, err := NewSolver(m, cfg); err == nil {
		t.Fatal("negative rank must be rejected")
	}
	cfg.TransformRank = 100 // exceeds n
	if _, err := NewSolver(m, cfg); err == nil {
		t.Fatal("rank beyond matrix order must be rejected")
	}
}

func TestWithRuntimeRejectsTransformChanges(t *testing.T) {
	g, _ := graph.Random(40, 100, graph.WeightUnit, 3)
	m := ising.FromMaxCut(g)
	s, err := NewSolver(m, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WithRuntime(func(c *Config) { c.TileSize = 8 }); err == nil {
		t.Fatal("tile size change must be rejected")
	}
	if _, err := s.WithRuntime(func(c *Config) { c.Alpha = 0.5 }); err == nil {
		t.Fatal("alpha change must be rejected")
	}
	if _, err := s.WithRuntime(func(c *Config) { c.TransformRank = 5 }); err == nil {
		t.Fatal("rank change must be rejected")
	}
	if _, err := s.WithRuntime(func(c *Config) { c.Phi = -1 }); err == nil {
		t.Fatal("invalid runtime config must be rejected")
	}
	tuned, err := s.WithRuntime(func(c *Config) { c.Phi = 0.3; c.GlobalIters = 10 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tuned.Run(1); err != nil {
		t.Fatal(err)
	}
}
