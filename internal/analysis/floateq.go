package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer flags == and != between floating-point expressions
// in non-test code. Exact float equality has already bitten the linear
// algebra layer (internal/linalg carries explicit epsilon helpers);
// outside deliberate sentinel checks it is almost always a latent bug
// — accumulated rounding makes "equal" states compare unequal and
// silently changes a solver's control flow.
//
// Two escapes exist:
//   - comparison against the exact constant 0 is allowed: zero is
//     exactly representable and `x != 0` is the repo's idiomatic
//     "unset / no contribution" sentinel;
//   - a deliberate exact comparison can carry
//     `//sophielint:ignore floateq <why>` on the same line.
//
// *_test.go files are exempt — tolerance helpers legitimately compare
// floats exactly when asserting bit-identical reproducibility.
var FloatEqAnalyzer = &Analyzer{
	Name:     "floateq",
	Doc:      "flag ==/!= between floating-point expressions outside tests",
	Register: registerFloatEq,
}

func registerFloatEq(pass *Pass, ins *Inspector) {
	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		bin := n.(*ast.BinaryExpr)
		if bin.Op != token.EQL && bin.Op != token.NEQ {
			return
		}
		if pass.IsTestFile(bin.Pos()) {
			return
		}
		if !isFloatExpr(pass, bin.X) || !isFloatExpr(pass, bin.Y) {
			return
		}
		if isExactZero(pass, bin.X) || isExactZero(pass, bin.Y) {
			return
		}
		pass.Reportf(bin.OpPos,
			"floating-point %s comparison: use an epsilon tolerance, or mark a deliberate sentinel with //sophielint:ignore floateq <why>",
			bin.Op)
	})
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isExactZero reports whether e is a compile-time constant whose exact
// value is zero.
func isExactZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
