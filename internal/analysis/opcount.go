package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// OpCountAnalyzer guards the PPA accounting: the op counters in
// metrics.OpCounts are uint64, and the functional simulator feeds them
// from int-typed loop arithmetic. Two silent-corruption patterns are
// flagged:
//
//   - subtraction on unsigned counters (`c.EOBits -= x`, or a binary
//     `a.Ops.EOBits - b.Ops.EOBits`): an underflow wraps to ~1.8e19
//     and the PPA model happily prices it;
//   - conversion of subtraction-bearing signed arithmetic straight to
//     an unsigned type (`uint64(iters-1)`): a negative intermediate
//     wraps at the conversion. Route these through metrics.U64, which
//     panics on negative input instead of wrapping;
//   - raw unsigned conversion of a non-constant product feeding a
//     counter (`c.EOBits += uint64(2 * iters * t)`) or, since the
//     sparse kernels grew their own uint64 accumulators (popcount
//     partial sums, nnz tallies), any `+=` on an unsigned variable
//     (`acc += uint64(rows * degree)`): a product of config-scale
//     ints can overflow int before the conversion sees it.
//     metrics.U64 keeps every overflow-prone feed on the checked,
//     greppable path. Single-variable casts (`uint64(t)`) and plain
//     definitions (`free := uint64(2 * t * n)`) stay legal — the
//     hazard the analyzer tracks is silent accumulation of a wrapped
//     product, not the conversion itself.
//
// Counter deltas that are genuinely needed should go through signed
// intermediates (int64(a) - int64(b)) — the analyzer accepts that
// form because the operands are no longer unsigned.
var OpCountAnalyzer = &Analyzer{
	Name:     "opcount",
	Doc:      "flag unsigned-underflow hazards in op-count / PPA accounting",
	Register: registerOpCount,
}

func registerOpCount(pass *Pass, ins *Inspector) {
	ins.Preorder([]ast.Node{(*ast.AssignStmt)(nil)}, func(n ast.Node) {
		as := n.(*ast.AssignStmt)
		checkSubAssign(pass, as)
		checkCounterFeed(pass, as)
	})
	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		checkCounterSub(pass, n.(*ast.BinaryExpr))
	})
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		checkUnsignedConversion(pass, n.(*ast.CallExpr))
	})
}

// isUnsigned reports whether e's type is an unsigned integer.
func isUnsigned(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsUnsigned != 0
}

// isOpCountsField reports whether e selects a field of
// metrics.OpCounts (matched by type name so testdata exercising the
// real package resolves identically).
func isOpCountsField(pass *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "OpCounts" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/metrics")
}

// checkSubAssign flags `-=` on any unsigned expression.
func checkSubAssign(pass *Pass, as *ast.AssignStmt) {
	if as.Tok != token.SUB_ASSIGN || len(as.Lhs) != 1 {
		return
	}
	if isUnsigned(pass, as.Lhs[0]) {
		pass.Reportf(as.TokPos,
			"subtracting from an unsigned counter: an underflow wraps silently; accumulate a signed delta instead")
	}
}

// checkCounterSub flags binary `-` where either operand is an
// OpCounts counter field.
func checkCounterSub(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.SUB {
		return
	}
	if isOpCountsField(pass, bin.X) || isOpCountsField(pass, bin.Y) {
		pass.Reportf(bin.OpPos,
			"subtraction on metrics.OpCounts counters wraps on underflow: convert both sides to a signed type first (int64(a) - int64(b))")
	}
}

// checkUnsignedConversion flags T(expr) where T is unsigned, expr is
// signed, and expr's subtree contains a subtraction or negation — the
// `uint64(iters-1)` wrap-on-negative footgun. metrics.U64 is the
// sanctioned checked conversion.
func checkUnsignedConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsUnsigned == 0 {
		return
	}
	arg := call.Args[0]
	argTV, ok := pass.Info.Types[arg]
	if !ok || argTV.Type == nil {
		return
	}
	if argTV.Value != nil {
		return // constant-folded: the compiler rejects negative values
	}
	argBasic, ok := argTV.Type.Underlying().(*types.Basic)
	if !ok || argBasic.Info()&types.IsInteger == 0 || argBasic.Info()&types.IsUnsigned != 0 {
		return
	}
	if !containsSubtraction(arg) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s conversion of signed arithmetic containing subtraction: a negative value wraps; use metrics.U64 for a checked conversion", basic.Name())
}

// checkCounterFeed flags raw unsigned conversions of non-constant
// products feeding an unsigned accumulator: a metrics.OpCounts counter
// (`+=` or re-assignment), or — since the sparse kernels carry their
// own uint64 tallies — any `+=` whose target is unsigned. The product
// of two or more config-scale ints can overflow int before the
// conversion runs; the convention is metrics.U64 for every
// multi-factor feed so the overflow-prone sites stay on the checked,
// greppable path. Definitions (`:=`) and plain assignments to
// non-counter variables stay legal: they replace a value rather than
// silently folding a wrapped product into a running total.
// Subtraction-bearing arguments are left to checkUnsignedConversion so
// each site gets exactly one diagnostic.
func checkCounterFeed(pass *Pass, as *ast.AssignStmt) {
	if as.Tok != token.ADD_ASSIGN && as.Tok != token.ASSIGN {
		return
	}
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	counter := isOpCountsField(pass, as.Lhs[0])
	if !counter && !(as.Tok == token.ADD_ASSIGN && isUnsigned(pass, as.Lhs[0])) {
		return
	}
	ast.Inspect(as.Rhs[0], func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := pass.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsUnsigned == 0 {
			return true
		}
		arg := call.Args[0]
		argTV, ok := pass.Info.Types[arg]
		if !ok || argTV.Type == nil {
			return true
		}
		if argTV.Value != nil {
			return true // constant-folded: overflow is a compile error
		}
		if containsSubtraction(arg) || !containsProduct(arg) {
			return true
		}
		target := "an unsigned accumulator"
		if counter {
			target = "a metrics.OpCounts counter"
		}
		pass.Reportf(call.Pos(),
			"raw %s conversion of a product feeding %s: the int product can overflow first; use metrics.U64", basic.Name(), target)
		return true
	})
}

func containsProduct(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if bin, ok := n.(*ast.BinaryExpr); ok && bin.Op == token.MUL {
			found = true
			return false
		}
		return true
	})
	return found
}

func containsSubtraction(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.SUB {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.SUB {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
