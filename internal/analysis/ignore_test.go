package analysis_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"sophie/internal/analysis"
)

// TestIgnoreDirectiveEdgeCases runs the full suite over
// testdata/src/ignoredirs and pins the directive semantics that the
// golden want-comments (one analyzer per run) cannot express:
//
//   - one directive naming two analyzers suppresses both findings on
//     the same line (goleak + lockcheck on the goroutine wedge);
//   - a directive above a comment block scopes past it to the first
//     code line below;
//   - a directive naming a nonexistent analyzer is itself diagnosed
//     (check "ignore") and suppresses nothing.
func TestIgnoreDirectiveEdgeCases(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	units, err := loader.LoadDir(filepath.Join("testdata", "src", "ignoredirs"), "")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	var diags []analysis.Diagnostic
	for _, u := range units {
		ud, err := analysis.RunUnit(u, analysis.Analyzers(), loader)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		diags = append(diags, ud...)
	}

	// The exact expected finding multiset. The unsuppressed controls
	// (wedge, unscoped, typo's comparison) prove each directive is
	// load-bearing; the total count proves the directives suppressed
	// their targets and nothing else fired.
	wantCounts := map[string]int{
		"goleak":    1, // wedge only; wedgeSuppressed is ignored
		"lockcheck": 1, // same line as the goleak finding
		"floateq":   2, // unscoped ==, typo's != ; scoped == is ignored
		"ignore":    1, // the floateqq directive itself
	}
	gotCounts := make(map[string]int)
	for _, d := range diags {
		gotCounts[d.Check]++
	}
	if fmt.Sprint(gotCounts) != fmt.Sprint(wantCounts) {
		t.Errorf("finding counts by check = %v, want %v\nall diagnostics:\n%s",
			gotCounts, wantCounts, diagList(diags))
	}

	// The two-analyzer wedge: goleak and lockcheck must land on the
	// same line (otherwise the double-suppression case tests nothing).
	var goleakLine, lockLine int
	for _, d := range diags {
		switch d.Check {
		case "goleak":
			goleakLine = d.Pos.Line
		case "lockcheck":
			lockLine = d.Pos.Line
		}
	}
	if goleakLine == 0 || goleakLine != lockLine {
		t.Errorf("goleak finding on line %d, lockcheck on line %d: want both on the wedge line\n%s",
			goleakLine, lockLine, diagList(diags))
	}

	// The typo diagnostic names the misspelled analyzer.
	for _, d := range diags {
		if d.Check == "ignore" && !strings.Contains(d.Message, `"floateqq"`) {
			t.Errorf("ignore diagnostic %q does not name the unknown analyzer", d.Message)
		}
	}
}

func diagList(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
