package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedPlumbAnalyzer is the reproducibility gate for the simulation
// packages: every exported constructor or Run-style entry point in
// internal/{core,pris,baseline,opcm} that draws randomness must expose
// the seed — a *rand.Rand / rand.Source parameter, an integer
// parameter whose name contains "seed", a config struct with a Seed
// field (the repo's dominant convention), or a receiver that carries
// its RNG or seed as a field (it was seeded at construction).
//
// Every figure in EXPERIMENTS.md depends on this: a single unseeded
// entry point makes a whole sweep unreproducible.
var SeedPlumbAnalyzer = &Analyzer{
	Name:     "seedplumb",
	Doc:      "exported randomness-drawing entry points in core/pris/baseline/opcm must take a Seed or *rand.Rand",
	Register: registerSeedPlumb,
}

// seedPlumbPackages are the package path leaves the analyzer guards.
var seedPlumbPackages = map[string]bool{
	"core": true, "pris": true, "baseline": true, "opcm": true,
}

func registerSeedPlumb(pass *Pass, ins *Inspector) {
	parts := strings.Split(strings.TrimSuffix(pass.PkgPath, "_test"), "/")
	if !seedPlumbPackages[parts[len(parts)-1]] {
		return
	}
	// FuncDecls only occur at file top level, so a Preorder callback
	// sees exactly the declarations the old per-file loop did.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || !fn.Name.IsExported() || pass.IsTestFile(fn.Pos()) {
			return
		}
		if !usesRandomness(pass, fn.Body) {
			return
		}
		if seedIsPlumbed(pass, fn) {
			return
		}
		pass.Reportf(fn.Name.Pos(),
			"exported %s draws from math/rand but takes no Seed, *rand.Rand, or config with a Seed field: callers cannot reproduce its results", fn.Name.Name)
	})
}

// usesRandomness reports whether the body references the math/rand
// package directly (constructing sources, calling package functions).
// Methods drawing from an RNG stored in their receiver are covered by
// the receiver check in seedIsPlumbed instead.
func usesRandomness(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if pkgName, ok := pass.Info.Uses[ident].(*types.PkgName); ok && isRandPkg(pkgName.Imported().Path()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// seedIsPlumbed reports whether fn's signature (params or receiver)
// carries the randomness seed.
func seedIsPlumbed(pass *Pass, fn *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if paramCarriesSeed(params.At(i)) {
			return true
		}
	}
	if recv := sig.Recv(); recv != nil && structCarriesSeed(recv.Type()) {
		return true
	}
	return false
}

func paramCarriesSeed(v *types.Var) bool {
	t := v.Type()
	if isRNGType(t) {
		return true
	}
	if isIntegerType(t) && strings.Contains(strings.ToLower(v.Name()), "seed") {
		return true
	}
	return structCarriesSeed(t)
}

// structCarriesSeed reports whether t (possibly behind a pointer) is a
// struct with a Seed-named integer field or an RNG-typed field.
func structCarriesSeed(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isRNGType(f.Type()) {
			return true
		}
		name := strings.ToLower(f.Name())
		if isIntegerType(f.Type()) && strings.Contains(name, "seed") {
			return true
		}
		// One level of embedded config (e.g. Config embedding Common).
		if f.Embedded() {
			if sub, ok := f.Type().Underlying().(*types.Struct); ok {
				for j := 0; j < sub.NumFields(); j++ {
					sf := sub.Field(j)
					if isRNGType(sf.Type()) ||
						(isIntegerType(sf.Type()) && strings.Contains(strings.ToLower(sf.Name()), "seed")) {
						return true
					}
				}
			}
		}
	}
	return false
}

func isIntegerType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}
