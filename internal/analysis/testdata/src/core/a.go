// Package core is golden input for the seedplumb analyzer: its
// directory name puts it in the analyzer's guarded package set.
package core

import "math/rand"

// Config mirrors the repo convention: runtime knobs plus a Seed field.
type Config struct {
	Iters int
	Seed  int64
}

// Engine stores its RNG, seeded at construction.
type Engine struct {
	size int
	rng  *rand.Rand
}

// Solve draws randomness but gives callers no way to reproduce it.
func Solve(n int) int { // want `takes no Seed`
	rng := rand.New(rand.NewSource(42))
	return rng.Intn(n)
}

// SolveSeeded plumbs the seed as a parameter.
func SolveSeeded(n int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// SolveConfig plumbs the seed through a config struct.
func SolveConfig(cfg Config) int {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return rng.Intn(cfg.Iters)
}

// Step takes the RNG itself.
func Step(rng *rand.Rand, n int) int { return rng.Intn(n) }

// NewEngine is a seeded constructor.
func NewEngine(size int, seed int64) *Engine {
	return &Engine{size: size, rng: rand.New(rand.NewSource(seed))}
}

// Reset mentions math/rand but the receiver carries the RNG field, so
// the stream's provenance is the constructor's seed.
func (e *Engine) Reset(seed int64) {
	e.rng = rand.New(rand.NewSource(seed))
}

// Reseed has no seed parameter but the receiver owns the RNG state.
func (e *Engine) Reseed() {
	e.rng = rand.New(e.rng)
}

// helper is unexported: not an entry point, not checked.
func helper() int { return rand.New(rand.NewSource(1)).Intn(2) }
