// Package goleak is golden input for the goleak analyzer.
package goleak

import (
	"context"
	"sync"
)

type server struct {
	wg     sync.WaitGroup
	stopCh chan struct{}
	jobs   chan int
}

// fireAndForget launches an unowned goroutine.
func fireAndForget(work func()) {
	go work() // want `goroutine is not tied to a WaitGroup, context, or shutdown channel`
}

// addThenGo pairs Add with the launch; the spawned method owns the
// Done.
func (s *server) addThenGo() {
	s.wg.Add(1)
	go s.runOne()
}

func (s *server) runOne() { defer s.wg.Done() }

// namedNoAdd launches the same method without the pairing Add.
func (s *server) namedNoAdd() {
	go s.runOne() // want `goroutine is not tied to a WaitGroup, context, or shutdown channel`
}

// deferDone: the literal body owns its WaitGroup slot.
func (s *server) deferDone(work func()) {
	go func() {
		defer s.wg.Done()
		work()
	}()
}

// workerPool: ranging over the jobs channel ends when the owner
// closes it.
func (s *server) workerPool() {
	go func() {
		for j := range s.jobs {
			_ = j
		}
	}()
}

// watchStop receives from a struct-field shutdown channel.
func (s *server) watchStop(work func()) {
	go func() {
		for {
			select {
			case <-s.stopCh:
				return
			default:
				work()
			}
		}
	}()
}

// watchCtx receives from ctx.Done().
func watchCtx(ctx context.Context, work func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// joined signals a channel its spawner drains: the spawner cannot
// outlive the goroutine.
func joined(work func()) {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// signalsButNobodyListens sends on a channel the spawner never
// receives from — nothing joins it.
func signalsButNobodyListens(results chan int) {
	go func() { // want `goroutine is not tied to a WaitGroup, context, or shutdown channel`
		results <- 1
	}()
}

// detached is deliberately fire-and-forget; the directive records who
// owns its lifetime.
func detached(work func()) {
	//sophielint:ignore goleak the metrics flusher owns its own lifetime; process exit reaps it
	go work()
}
