// Package globalrand is golden input for the globalrand analyzer.
package globalrand

import "math/rand"

var shared = rand.New(rand.NewSource(1)) // want `package-level RNG`

var seedOnly int64 = 7 // ok: plain integer, not RNG state

// globals draws from the process-global source.
func globals(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand source`
	return rand.Intn(n)                // want `global math/rand source`
}

// captured leaks one RNG stream into two goroutines.
func captured(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	go func() {
		_ = rng.Intn(2) // want `captured by a go func literal`
	}()
	go consume(rng) // want `passed across a goroutine boundary`
	_ = rng.Intn(2)
}

// goodWorker creates the stream inside the goroutine: each worker owns
// its RNG, the sanctioned pattern.
func goodWorker(seed int64, workers int) {
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			rng := rand.New(rand.NewSource(seed + int64(w)))
			_ = rng.Intn(2)
		}()
	}
}

// goodLocal uses a seeded local stream on one goroutine.
func goodLocal(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func consume(r *rand.Rand) int64 { return r.Int63() }
