// Package ignoredirs exercises the sophielint:ignore edge cases: one
// directive suppressing two analyzers on the same line, a directive
// scoping across an intervening comment block, and a directive naming
// an analyzer that does not exist.
package ignoredirs

import "sync"

type pump struct {
	mu sync.Mutex
	ch chan int
}

// wedge triggers goleak (untied goroutine) and lockcheck (send while
// holding mu) on the same source line — the unsuppressed control the
// test uses to prove the directive in wedgeSuppressed is load-bearing.
func (p *pump) wedge(v int) {
	go func() { p.mu.Lock(); p.ch <- v; p.mu.Unlock() }()
}

// wedgeSuppressed is the same line with a directive naming both
// analyzers: neither may fire.
func (p *pump) wedgeSuppressed(v int) {
	//sophielint:ignore goleak,lockcheck intentional wedge: the test owns this goroutine's lifetime
	go func() { p.mu.Lock(); p.ch <- v; p.mu.Unlock() }()
}

// scoped puts an explanatory comment block between the directive and
// the code it covers; the directive still reaches the first code line
// below the block.
func scoped(a, b float64) bool {
	//sophielint:ignore floateq exact equality intended
	// The values are copied verbatim from the same computation and
	// never re-derived, so bit-exact comparison is the correct check.
	return a == b
}

// unscoped is the control for scoped: same comparison, no directive.
func unscoped(a, b float64) bool {
	return a == b
}

// typo names an analyzer that does not exist: the directive itself is
// diagnosed (check "ignore") and suppresses nothing, so the comparison
// below still fires.
func typo(a, b float64) bool {
	//sophielint:ignore floateqq suppression aimed at a misspelled check
	return a != b
}
