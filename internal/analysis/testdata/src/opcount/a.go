// Package opcount is golden input for the opcount analyzer; it
// exercises the real metrics.OpCounts type so field matching works the
// same way it does in the simulator.
package opcount

import "sophie/internal/metrics"

func bad(c *metrics.OpCounts, prev metrics.OpCounts, n, t int) uint64 {
	c.EOBits -= 8                                 // want `subtracting from an unsigned counter`
	delta := c.ADCSamples1b - prev.ADCSamples1b   // want `subtraction on metrics.OpCounts counters`
	c.GlueOps += uint64(n - 1)                    // want `conversion of signed arithmetic containing subtraction`
	c.SRAMReadBits += uint64(2 * (t - 1) * n)     // want `conversion of signed arithmetic containing subtraction`
	c.SRAMWriteBits += uint64(2 * t * n)          // want `raw uint64 conversion of a product feeding a metrics.OpCounts counter`
	c.DRAMReadBits = c.DRAMReadBits + uint64(t*n) // want `raw uint64 conversion of a product feeding a metrics.OpCounts counter`
	var shrink uint64
	shrink -= 1 // want `subtracting from an unsigned counter`
	return delta + shrink
}

// badAccumulators exercises the sparse-kernel generalization: `+=` on
// any unsigned variable is a counter feed, OpCounts field or not.
func badAccumulators(rows, degree int) uint64 {
	var nnz uint64
	nnz += uint64(rows * degree) // want `raw uint64 conversion of a product feeding an unsigned accumulator`
	var bits uint32
	bits += uint32(8 * rows * degree) // want `raw uint32 conversion of a product feeding an unsigned accumulator`
	return nnz + uint64(bits)
}

func goodAccumulators(rows, degree int) uint64 {
	var nnz uint64
	nnz += metrics.U64(rows * degree) // ok: checked conversion
	free := uint64(2 * rows * degree) // ok: a definition replaces, it does not accumulate
	free = uint64(3 * rows * degree)  // ok: plain re-assignment of a non-counter variable
	nnz += uint64(rows)               // ok: single variable, no arithmetic to overflow
	nnz += uint64(64 * 8)             // ok: constant-folded
	return nnz + free
}

func good(c *metrics.OpCounts, prev metrics.OpCounts, n, t int) uint64 {
	c.EOBits += uint64(t)                    // ok: single variable, no arithmetic to overflow
	c.GlueOps += metrics.U64(n - 1)          // ok: checked conversion
	c.SRAMReadBits += metrics.U64(2 * t * n) // ok: products go through the checked conversion
	c.DRAMWriteBits += uint64(8 * 16)        // ok: constant-folded
	free := uint64(2 * t * n)                // ok: not feeding a counter
	_ = free
	d := int64(c.ADCSamples1b) - int64(prev.ADCSamples1b) // ok: signed intermediates
	if d < 0 {
		d = 0
	}
	return uint64(d) // ok: plain identifier, no arithmetic at the conversion
}
