// Package lockcheck is golden input for the lockcheck analyzer.
package lockcheck

import "sync"

type box struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
	ch   chan int
}

// sendWhileHeld holds mu across a channel send.
func (b *box) sendWhileHeld(v int) {
	b.mu.Lock()
	b.ch <- v // want `b.mu is held across a blocking channel send`
	b.mu.Unlock()
}

// recvWhileDeferred: the deferred Unlock only releases at return, so
// the receive still happens under the lock.
func (b *box) recvWhileDeferred() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want `b.mu is held across a blocking channel receive`
}

// unlockFirst releases before blocking: clean.
func (b *box) unlockFirst() int {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	return <-b.ch
}

// selectWhileHeld: a select without default parks the goroutine; the
// whole select is one blocking wait.
func (b *box) selectWhileHeld(stop chan struct{}) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `b.mu is held across a blocking select`
	case v := <-b.ch:
		return v
	case <-stop:
		return 0
	}
}

// pollWhileHeld: select with default never parks; fine under the lock.
func (b *box) pollWhileHeld() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-b.ch:
		return v
	default:
		return 0
	}
}

// callBlockingWhileHeld holds the lock across a call the facts layer
// knows blocks (drain ranges over a channel).
func (b *box) callBlockingWhileHeld() {
	b.mu.Lock()
	b.drain() // want `b.mu is held across a blocking call to drain`
	b.mu.Unlock()
}

func (b *box) drain() {
	for range b.ch {
	}
}

// waitNoLoop calls cond.Wait under a plain if: a woken waiter must
// re-check its predicate.
func (b *box) waitNoLoop() {
	b.cond.L.Lock()
	if b.n == 0 {
		b.cond.Wait() // want `cond.Wait outside a for loop`
	}
	b.cond.L.Unlock()
}

// waitInLoop re-checks the condition each wakeup: the correct pattern.
func (b *box) waitInLoop() {
	b.cond.L.Lock()
	for b.n == 0 {
		b.cond.Wait()
	}
	b.cond.L.Unlock()
}

// leakyReturn takes the lock and returns without releasing on the
// error path.
func (b *box) leakyReturn(fail bool) int {
	b.mu.Lock() // want `b.mu.Lock is not released on every path`
	if fail {
		return -1
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// earlyReturnUnlocked releases on both paths: clean.
func (b *box) earlyReturnUnlocked(fail bool) int {
	b.mu.Lock()
	if fail {
		b.mu.Unlock()
		return -1
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// lockInGoroutine: the literal's body is its own timeline — the
// spawner's lock state does not leak into it, and its clean
// lock/unlock/send sequence reports nothing.
func (b *box) lockInGoroutine(done chan struct{}) {
	go func() {
		b.mu.Lock()
		b.n++
		b.mu.Unlock()
		done <- struct{}{}
	}()
	<-done
}
