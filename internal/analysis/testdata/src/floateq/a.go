// Package floateq is golden input for the floateq analyzer.
package floateq

type energy float64

func compare(a, b float64) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if a != 0 { // ok: exact-zero sentinel
		return false
	}
	if b == 0.0 { // ok: exact-zero sentinel, float literal form
		return true
	}
	var c float32
	if c != float32(b) { // want `floating-point != comparison`
		return false
	}
	var e1, e2 energy
	if e1 == e2 { // want `floating-point == comparison`
		return true
	}
	//sophielint:ignore floateq exercising the suppression escape hatch
	return a == b+1
}

func ints(x, y int) bool { return x == y } // ok: integers compare exactly

func strs(x, y string) bool { return x != y } // ok: not numeric
