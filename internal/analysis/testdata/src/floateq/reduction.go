// Golden input mirroring the problem-compiler reduction idioms
// (internal/problem): sentinel zero tests on accumulated coefficients
// are allowed, everything else needs a tolerance or a scoped ignore.
package floateq

type term struct {
	W float64
}

type ir struct {
	Linear []float64
	Terms  []term
	Offset float64
}

func lowerings(p *ir, weight float64) int {
	n := 0
	for _, v := range p.Linear {
		if v != 0 { // ok: exact-zero sentinel on an accumulated coefficient
			n++
		}
	}
	for _, t := range p.Terms {
		if t.W == weight { // want `floating-point == comparison`
			n++
		}
		if t.W == p.Offset { // want `floating-point == comparison`
			n++
		}
	}
	if p.Offset == 0 { // ok: exact-zero sentinel, field form
		n++
	}
	//sophielint:ignore floateq omitted-weight sentinel written by the parser, never computed
	if weight == 1 {
		n++
	}
	return n
}

// decodeOverlap mirrors the Hopfield decode: dividing an int-valued
// accumulator still yields a float, so comparisons against non-zero
// targets stay flagged.
func decodeOverlap(spins []int8, pattern []int8) bool {
	sum := 0.0
	for i := range spins {
		sum += float64(spins[i]) * float64(pattern[i])
	}
	overlap := sum / float64(len(spins))
	return overlap == 1 // want `floating-point == comparison`
}
