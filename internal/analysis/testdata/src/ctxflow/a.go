// Package core is golden input for the ctxflow analyzer. The test
// loads it under a synthetic import path ending in internal/core so
// the analyzer's package guard applies without the loader resolving
// the real sophie/internal/core.
package core

import (
	"context"
	"sync"
)

// Drain blocks on a channel receive with no ctx parameter and no
// DrainCtx sibling: callers cannot cancel it.
func Drain(ch chan int) int { // want `exported Drain blocks but takes no context.Context`
	return <-ch
}

// Run blocks, but RunCtx exists: the sibling convention is satisfied.
func Run(ch chan int) int { return <-ch }

// RunCtx is Run's cancellable sibling.
func RunCtx(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Wait blocks but accepts a context directly.
func Wait(ctx context.Context, wg *sync.WaitGroup) {
	_ = ctx
	wg.Wait()
}

// Sum never blocks: no cancellation surface required.
func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// Flush blocks only transitively, through an unexported helper — the
// facts layer carries the Blocks bit across the call edge.
func Flush(ch chan int) { // want `exported Flush blocks but takes no context.Context`
	push(ch)
}

func push(ch chan int) { ch <- 1 }

// Pool exercises the method-sibling lookup.
type Pool struct{ ch chan int }

// Get blocks; GetCtx is on the same method set, so it is fine.
func (p *Pool) Get() int { return <-p.ch }

// GetCtx is Get's cancellable sibling.
func (p *Pool) GetCtx(ctx context.Context) int {
	select {
	case v := <-p.ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Take blocks with no sibling anywhere on the method set.
func (p *Pool) Take() int { // want `exported Take blocks but takes no context.Context`
	return <-p.ch
}

// spin references its context but loops forever without observing it:
// cancellation is a dead letter.
func spin(ctx context.Context, work func()) {
	_ = ctx
	for { // want `unbounded for loop in a context-aware function`
		work()
	}
}

// pump polls ctx.Err each iteration: the loop observes cancellation.
func pump(ctx context.Context, work func()) {
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

// stopFlag mimics the batch runtime's batchStop poll.
type stopFlag struct{ v bool }

func (f *stopFlag) stopped() bool { return f.v }

// pumpFlag checks a stop-flag poll each iteration: also fine.
func pumpFlag(ctx context.Context, f *stopFlag, work func()) {
	_ = ctx
	for {
		if f.stopped() {
			return
		}
		work()
	}
}

// busy has no context in scope at all: the loop rule does not apply.
func busy(work func()) {
	for {
		work()
	}
}
