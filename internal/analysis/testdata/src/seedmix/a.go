// Package seedmix is golden input for the seedmix analyzer.
package seedmix

import "math/rand"

// mix stands in for the repo's splitmix64-based seedStream helper.
func mix(seed int64, index int) int64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15 + uint64(index)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	return int64(x ^ (x >> 31))
}

// legacyController reproduces the pre-PR 3 controller derivation.
func legacyController(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x5deece66d)) // want `raw "\^" seed derivation`
}

// legacyPairWalk reproduces the pre-PR 3 pair-seed walk.
func legacyPairWalk(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(i)*7919 + 1)) // want `raw "\+" seed derivation`
}

func shifted(seed int64, role uint8) rand.Source {
	return rand.NewSource(seed << int64(role)) // want `raw "<<" seed derivation`
}

func complemented(seed int64) rand.Source {
	return rand.NewSource(^seed) // want `raw "\^" seed derivation`
}

func reseeded(r *rand.Rand, seed int64, i int) {
	r.Seed(seed * int64(i)) // want `raw "\*" seed derivation`
}

// direct passes the base seed through untouched: fine.
func direct(seed int64) rand.Source {
	return rand.NewSource(seed)
}

// converted wraps the seed in a transparent conversion: fine.
func converted(i int) rand.Source {
	return rand.NewSource(int64(i))
}

// mixed derives through a named mixing function: the sanctioned
// pattern, arithmetic inside the call is the mixer's business.
func mixed(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(mix(seed, i)))
}

// literal seeds are fixed, not derived: fine.
func literal() rand.Source {
	return rand.NewSource(9)
}
