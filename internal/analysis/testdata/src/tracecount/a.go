// Package tracecount is golden input for the tracecount analyzer: it
// plays a package outside internal/trace that writes metrics.OpCounts
// fields directly instead of emitting events onto the trace spine.
package tracecount

import "sophie/internal/metrics"

func bad(c *metrics.OpCounts, n int) {
	c.EOBits += metrics.U64(2 * n) // want `direct write to a metrics.OpCounts field`
	c.OPCMPrograms++               // want `direct write to a metrics.OpCounts field`
	c.ADCSamples8b--               // want `direct write to a metrics.OpCounts field`
	c.GlueOps = 0                  // want `direct write to a metrics.OpCounts field`
	escape := &c.SRAMReadBits      // want `taking the address of a metrics.OpCounts field`
	*escape = 7
}

func suppressed(c *metrics.OpCounts) {
	//sophielint:ignore tracecount device-lifetime counter outside the per-run fold
	c.OPCMCellWrites += 128
}

func good(c *metrics.OpCounts, other metrics.OpCounts) (uint64, metrics.OpCounts) {
	c.Add(other)            // ok: OpCounts' own merge method
	reads := c.SRAMReadBits // ok: reads never fork the accounting
	copied := *c            // ok: whole-struct copy, not a field write
	return reads, copied
}
