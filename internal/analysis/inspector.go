package analysis

import (
	"go/ast"
	"reflect"
)

// Inspector is the suite's shared single-walk traversal. Every analyzer
// registers node-type-indexed callbacks against it (Analyzer.Register),
// and RunUnit then walks the unit's syntax exactly once, dispatching
// each node to the callbacks registered for its concrete type — the
// same execution model as golang.org/x/tools/go/ast/inspector, which
// keeps the suite's cost per unit one traversal no matter how many
// analyzers run. Callbacks may still ast.Inspect *subtrees* of the
// nodes they receive (e.g. the body of a go-statement literal); the
// shared walk only replaces each analyzer's private full-file pass.
type Inspector struct {
	files     []*ast.File
	preorder  map[reflect.Type][]func(ast.Node)
	withStack map[reflect.Type][]func(ast.Node, []ast.Node)
}

// NewInspector builds an inspector over one unit's files. RunUnit
// creates one per unit; tests may build their own.
func NewInspector(files []*ast.File) *Inspector {
	return &Inspector{
		files:     files,
		preorder:  make(map[reflect.Type][]func(ast.Node)),
		withStack: make(map[reflect.Type][]func(ast.Node, []ast.Node)),
	}
}

// Preorder registers f to run for every node whose concrete type
// matches one of the example nodes in types (e.g. (*ast.CallExpr)(nil)),
// in the order nodes are visited.
func (ins *Inspector) Preorder(types []ast.Node, f func(ast.Node)) {
	for _, n := range types {
		t := reflect.TypeOf(n)
		ins.preorder[t] = append(ins.preorder[t], f)
	}
}

// WithStack is Preorder with the enclosing-node stack: stack[0] is the
// *ast.File and stack[len(stack)-1] is the matched node itself.
// Callbacks must not retain the stack slice — it is reused.
func (ins *Inspector) WithStack(types []ast.Node, f func(ast.Node, []ast.Node)) {
	for _, n := range types {
		t := reflect.TypeOf(n)
		ins.withStack[t] = append(ins.withStack[t], f)
	}
}

// walk performs the single traversal, firing registered callbacks.
func (ins *Inspector) walk() {
	stack := make([]ast.Node, 0, 32)
	for _, f := range ins.files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			t := reflect.TypeOf(n)
			for _, fn := range ins.preorder[t] {
				fn(n)
			}
			for _, fn := range ins.withStack[t] {
				fn(n, stack)
			}
			return true
		})
	}
}
