// Package analysistest runs sophielint analyzers over golden packages
// under testdata/src and checks their findings against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest
// (unavailable offline) with the subset of behavior the suite needs:
//
//	x := rand.Intn(2) // want `global math/rand`
//
// Each expectation is an unanchored regular expression that must match
// exactly one diagnostic reported on that line; diagnostics without a
// matching expectation, and expectations without a diagnostic, both
// fail the test.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sophie/internal/analysis"
)

// expectation is one `// want` pattern at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRE captures backquoted or double-quoted patterns after `want`.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads the package in testdata/src/<pkg> (relative to dir, the
// analyzer package's directory) and checks a's findings against the
// golden expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	RunWithPath(t, dir, a, pkg, pkg)
}

// RunWithPath is Run with an explicit import path for the golden
// package, for analyzers that scope by package path (ctxflow needs a
// tree that *ends in* internal/core without *being* the real
// sophie/internal/core, which the loader would resolve from the module
// tree instead of testdata).
func RunWithPath(t *testing.T, dir string, a *analysis.Analyzer, pkg, importPath string) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgDir := filepath.Join(dir, "testdata", "src", pkg)
	units, err := loader.LoadDir(pkgDir, importPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgDir, err)
	}
	if len(units) == 0 {
		t.Fatalf("no Go files in %s", pkgDir)
	}
	var diags []analysis.Diagnostic
	var expects []*expectation
	for _, u := range units {
		ud, err := analysis.RunUnit(u, []*analysis.Analyzer{a}, loader)
		if err != nil {
			t.Fatalf("run %s: %v", u.Path, err)
		}
		diags = append(diags, ud...)
		exp, err := collectWants(u)
		if err != nil {
			t.Fatal(err)
		}
		expects = append(expects, exp...)
	}

	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", e.file, e.line, e.pattern)
		}
	}
}

// claim marks the first unmatched expectation covering d and reports
// whether one existed.
func claim(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.pattern.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts the `// want` expectations from a unit's
// comments.
func collectWants(u *analysis.Unit) ([]*expectation, error) {
	var out []*expectation
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}
