package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheckAnalyzer enforces the lock-discipline invariants the
// service and batch layers rely on (DESIGN.md "Invariants"):
//
//   - a sync.Mutex/RWMutex must not be held across a blocking
//     operation — a channel send/receive, a select without default, or
//     a call the facts layer knows blocks. A lock held across a wait
//     couples unrelated goroutines' latencies and deadlocks the moment
//     the waited-on goroutine needs the same lock;
//   - cond.Wait must sit inside a for loop re-checking its condition —
//     a woken waiter holds the lock but its predicate may already be
//     false again (spurious or raced wakeup);
//   - every Lock must be released on every path: an explicit Unlock
//     before each return, or a defer.
//
// The analysis is a per-function linear simulation in source order:
// lock/unlock/defer events update a held-set, and blocking events are
// checked against it. Branches are not path-split — an Unlock in any
// branch releases the simulated lock — so the check under-approximates
// (no false positives from early-return unlock patterns) and relies on
// the all-paths rule to catch branch-skipped unlocks at returns.
// Function literals and go-statement bodies are simulated separately:
// their execution time is unrelated to the enclosing lock region's.
var LockCheckAnalyzer = &Analyzer{
	Name:     "lockcheck",
	Doc:      "no lock held across blocking ops; cond.Wait inside a loop; every Lock released on all paths",
	Register: registerLockCheck,
}

func registerLockCheck(pass *Pass, ins *Inspector) {
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body != nil && !pass.IsTestFile(fn.Pos()) {
			simulateLockFlow(pass, fn.Body)
		}
	})
	ins.WithStack([]ast.Node{(*ast.FuncLit)(nil)}, func(n ast.Node, stack []ast.Node) {
		lit := n.(*ast.FuncLit)
		if pass.IsTestFile(lit.Pos()) {
			return
		}
		// An immediately-invoked literal already runs inline in its
		// enclosing function's simulation; simulating it again would
		// double-report. go/defer spawn sites are the opposite case:
		// the enclosing simulation skips them, so those literals need
		// their own run.
		if len(stack) >= 3 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == lit {
				switch stack[len(stack)-3].(type) {
				case *ast.GoStmt, *ast.DeferStmt:
				default:
					return
				}
			}
		}
		simulateLockFlow(pass, lit.Body)
	})
}

// mutexMethods maps the sync lock methods the simulation reacts to.
var mutexMethods = map[string]string{
	"(*sync.Mutex).Lock":      "lock",
	"(*sync.Mutex).Unlock":    "unlock",
	"(*sync.RWMutex).Lock":    "lock",
	"(*sync.RWMutex).Unlock":  "unlock",
	"(*sync.RWMutex).RLock":   "lock",
	"(*sync.RWMutex).RUnlock": "unlock",
}

const condWaitName = "(*sync.Cond).Wait"

// heldLock is one live Lock in the simulation.
type heldLock struct {
	key      string // receiver expression, e.g. "m.mu"
	pos      token.Pos
	deferred bool // a deferred Unlock covers it at returns
}

// simulateLockFlow walks one function body in source order and applies
// the three lock rules.
func simulateLockFlow(pass *Pass, body *ast.BlockStmt) {
	var held []*heldLock
	reportedBlocking := make(map[token.Pos]bool)
	reportedLeak := make(map[token.Pos]bool)

	release := func(key string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].key == key {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	blockingEvent := func(pos token.Pos, what string) {
		if len(held) == 0 || reportedBlocking[pos] {
			return
		}
		reportedBlocking[pos] = true
		pass.Reportf(pos,
			"%s is held across a blocking %s: release the lock first, or restructure so the wait happens outside the critical section",
			held[len(held)-1].key, what)
	}
	leakAtReturn := func() {
		for _, h := range held {
			if h.deferred || reportedLeak[h.pos] {
				continue
			}
			reportedLeak[h.pos] = true
			pass.Reportf(h.pos,
				"%s.Lock is not released on every path: Unlock before each return, or defer the Unlock", h.key)
		}
	}

	forDepth := 0
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit, *ast.GoStmt:
			// Simulated separately; their execution is not inside this
			// function's lock region timeline.
			return
		case *ast.DeferStmt:
			if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok {
				if callee, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok &&
					mutexMethods[callee.FullName()] == "unlock" {
					key := types.ExprString(sel.X)
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].key == key && !held[i].deferred {
							held[i].deferred = true
							break
						}
					}
					return
				}
			}
			// Other deferred calls run at return, outside the region the
			// simulation models; don't treat them as blocking here.
			return
		case *ast.SendStmt:
			walk(n.Chan)
			walk(n.Value)
			blockingEvent(n.Arrow, "channel send")
			return
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				walk(n.X)
				blockingEvent(n.OpPos, "channel receive")
				return
			}
		case *ast.SelectStmt:
			// The select is the blocking event; its comm clauses' sends
			// and receives are part of that one wait, not separate ones.
			if !selectHasDefault(n) {
				blockingEvent(n.Select, "select")
			}
			for _, c := range n.Body.List {
				for _, s := range c.(*ast.CommClause).Body {
					walk(s)
				}
			}
			return
		case *ast.RangeStmt:
			walk(n.X)
			if isChanType(pass.Info, n.X) {
				blockingEvent(n.For, "range over a channel")
			}
			forDepth++
			walk(n.Body)
			forDepth--
			return
		case *ast.ForStmt:
			walk(n.Init)
			walk(n.Cond)
			walk(n.Post)
			forDepth++
			walk(n.Body)
			forDepth--
			return
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				walk(r)
			}
			leakAtReturn()
			return
		case *ast.CallExpr:
			// Arguments evaluate before the call.
			for _, a := range n.Args {
				walk(a)
			}
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				// Invoked in place: its body runs here, inside the
				// current lock region.
				walk(lit.Body)
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if callee, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
					full := callee.FullName()
					switch mutexMethods[full] {
					case "lock":
						held = append(held, &heldLock{key: types.ExprString(sel.X), pos: sel.Pos()})
						return
					case "unlock":
						release(types.ExprString(sel.X))
						return
					}
					if full == condWaitName {
						// Wait releases its own mutex while parked, so it
						// is not a held-across-blocking event — but it
						// must be re-checked in a loop.
						if forDepth == 0 {
							pass.Reportf(n.Pos(),
								"cond.Wait outside a for loop: a woken waiter must re-check its condition (spurious and raced wakeups)")
						}
						return
					}
					if pass.Facts.Func(callee).Blocks {
						blockingEvent(n.Pos(), "call to "+callee.Name())
						return
					}
				}
			}
			if ident, ok := n.Fun.(*ast.Ident); ok {
				if callee, ok := pass.Info.Uses[ident].(*types.Func); ok && pass.Facts.Func(callee).Blocks {
					blockingEvent(n.Pos(), "call to "+callee.Name())
					return
				}
			}
			walk(n.Fun)
			return
		}
		// Generic traversal in source order for everything else.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				walk(c)
			}
			return false
		})
	}
	for _, stmt := range body.List {
		walk(stmt)
	}
	leakAtReturn()
}
