package analysis

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
)

// The facts layer lets analyzers reason across package boundaries the
// way golang.org/x/tools/go/analysis facts do, still on the standard
// library alone: analyzing one unit produces a serializable FactSet
// describing its functions' concurrency-relevant behavior, and units
// analyzed later consult the FactSets of the packages they import. Two
// sources exist — the standalone runner and analysistest compute facts
// on demand from the Loader's memoized syntax, while the `go vet`
// driver path serializes each unit's FactSet as JSON into its .vetx
// output file and reads imports' facts back through the driver's
// PackageVetx table (cmd/sophielint/vet.go).

// FuncFacts records the concurrency-relevant properties of one
// function, computed transitively over its call graph.
type FuncFacts struct {
	// Blocks reports that calling the function may wait unboundedly:
	// its body (or a callee's) performs a channel send/receive outside
	// a select with a default case, ranges over a channel, waits on a
	// sync.WaitGroup or sync.Cond, sleeps, or calls a known-blocking
	// standard-library entry point.
	Blocks bool `json:"blocks,omitempty"`
	// ObservesCtx reports that the function (or a callee) polls
	// cancellation: it calls Done or Err on a context.Context.
	ObservesCtx bool `json:"observes_ctx,omitempty"`
}

// FactSet holds one package's function facts, keyed by
// (*types.Func).FullName — e.g. "(*sophie/internal/core.Solver).Run".
type FactSet map[string]FuncFacts

// EncodeFacts serializes a FactSet for a .vetx-style facts file.
func EncodeFacts(fs FactSet) ([]byte, error) { return json.Marshal(fs) }

// DecodeFacts parses a serialized FactSet; empty input decodes to an
// empty set (the driver pre-creates empty facts files).
func DecodeFacts(data []byte) (FactSet, error) {
	if len(data) == 0 {
		return FactSet{}, nil
	}
	var fs FactSet
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, err
	}
	return fs, nil
}

// FactSource resolves the FactSet of an imported package; nil results
// mean "unknown package", which analyzers treat as fact-free.
type FactSource interface {
	PackageFacts(path string) FactSet
}

// UnitFactsCache is an optional FactSource extension for sources that
// retain units across runs (the memoizing Loader): the unit's computed
// FactSet is cached by unit identity, so analyzing the same loaded
// unit again skips the fixpoint.
type UnitFactsCache interface {
	UnitFacts(u *Unit, compute func() FactSet) FactSet
}

// stdBlocking names standard-library functions that block but whose
// bodies the syntax scan cannot see through (runtime-implemented, or
// loaded only as export data), keyed by FullName.
var stdBlocking = map[string]bool{
	"(*sync.WaitGroup).Wait":                  true,
	"(*sync.Cond).Wait":                       true,
	"time.Sleep":                              true,
	"(*net/http.Server).Serve":                true,
	"(*net/http.Server).ListenAndServe":       true,
	"(*net/http.Server).ListenAndServeTLS":    true,
	"(*net/http.Server).Shutdown":             true,
	"(*os/exec.Cmd).Run":                      true,
	"(*os/exec.Cmd).Wait":                     true,
	"(golang.org/x/sync/errgroup.Group).Wait": true,
}

// FactView is a Pass's window onto the facts layer: the current unit's
// own facts (computed lazily on first use) plus whatever the source
// knows about imported packages.
type FactView struct {
	unit *Unit
	src  FactSource
	own  FactSet
}

// NewFactView builds the view RunUnit attaches to every pass.
func NewFactView(u *Unit, src FactSource) *FactView {
	return &FactView{unit: u, src: src}
}

// Own returns the current unit's complete FactSet (computing it on
// first call) — the set the vet driver serializes.
func (v *FactView) Own() FactSet {
	if v.own == nil {
		if c, ok := v.src.(UnitFactsCache); ok {
			v.own = c.UnitFacts(v.unit, v.compute)
		} else {
			v.own = v.compute()
		}
	}
	return v.own
}

func (v *FactView) compute() FactSet {
	return ComputeFacts(v.unit.Files, v.unit.Info, v.lookupExternal)
}

// Func returns the facts for fn, whichever package it lives in.
func (v *FactView) Func(fn *types.Func) FuncFacts {
	if fn == nil {
		return FuncFacts{}
	}
	name := fn.FullName()
	if stdBlocking[name] {
		return FuncFacts{Blocks: true}
	}
	if fn.Pkg() != nil && v.unit.Pkg != nil && fn.Pkg() == v.unit.Pkg {
		return v.Own()[name]
	}
	return v.lookupExternal(fn)
}

func (v *FactView) lookupExternal(fn *types.Func) FuncFacts {
	name := fn.FullName()
	if stdBlocking[name] {
		return FuncFacts{Blocks: true}
	}
	if v.src == nil || fn.Pkg() == nil {
		return FuncFacts{}
	}
	return v.src.PackageFacts(fn.Pkg().Path())[name]
}

// ComputeFacts derives a FactSet for one type-checked body of syntax.
// external resolves facts for functions outside this package (imports);
// same-package calls are resolved by iterating the scan to a fixpoint,
// so mutual recursion converges and declaration order is irrelevant.
func ComputeFacts(files []*ast.File, info *types.Info, external func(*types.Func) FuncFacts) FactSet {
	type fnDecl struct {
		obj  *types.Func
		body *ast.BlockStmt
	}
	var decls []fnDecl
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, fnDecl{obj: obj, body: fd.Body})
		}
	}
	facts := make(FactSet, len(decls))
	lookup := func(fn *types.Func) FuncFacts {
		if stdBlocking[fn.FullName()] {
			return FuncFacts{Blocks: true}
		}
		if got, ok := facts[fn.FullName()]; ok {
			return got
		}
		if external != nil {
			return external(fn)
		}
		return FuncFacts{}
	}
	// Fixpoint: each pass can only turn facts on, so the loop runs at
	// most until every function's bits are set — bounded by len(decls)
	// passes, and in practice two or three.
	for {
		changed := false
		for _, d := range decls {
			got := scanBody(d.body, info, lookup)
			prev := facts[d.obj.FullName()]
			got.Blocks = got.Blocks || prev.Blocks
			got.ObservesCtx = got.ObservesCtx || prev.ObservesCtx
			if got != prev {
				facts[d.obj.FullName()] = got
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return facts
}

// scanBody computes one body's facts given a resolver for callees.
func scanBody(body *ast.BlockStmt, info *types.Info, lookup func(*types.Func) FuncFacts) FuncFacts {
	var out FuncFacts
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// A spawned goroutine's waits belong to the goroutine, not
			// the spawner; goleak owns goroutine lifecycle.
			return false
		case *ast.FuncLit:
			// A literal only contributes when it is invoked in place
			// (handled at the CallExpr below); a stored closure's
			// behavior belongs to whoever eventually calls it.
			return false
		case *ast.SendStmt:
			out.Blocks = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				out.Blocks = true
			}
		case *ast.RangeStmt:
			if isChanType(info, n.X) {
				out.Blocks = true
			}
		case *ast.SelectStmt:
			// A select with a default case is a poll, not a wait: skip
			// the comm clauses but still scan the case bodies.
			if selectHasDefault(n) {
				for _, c := range n.Body.List {
					cc := c.(*ast.CommClause)
					for _, stmt := range cc.Body {
						ast.Inspect(stmt, scan)
					}
					// The comm clauses themselves are non-blocking
					// polls, but a receive from ctx.Done() in one still
					// counts as observing cancellation.
					if cc.Comm != nil && commObservesCtx(info, cc.Comm) {
						out.ObservesCtx = true
					}
				}
				return false
			}
			out.Blocks = true
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, scan)
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if isCtxMethod(info, sel, "Done") || isCtxMethod(info, sel, "Err") {
					out.ObservesCtx = true
				}
			}
			if callee := calleeFunc(info, n); callee != nil {
				got := lookup(callee)
				out.Blocks = out.Blocks || got.Blocks
				out.ObservesCtx = out.ObservesCtx || got.ObservesCtx
			}
		}
		return true
	}
	ast.Inspect(body, scan)
	return out
}

// commObservesCtx reports whether a select comm clause receives from a
// context's Done channel.
func commObservesCtx(info *types.Info, comm ast.Stmt) bool {
	found := false
	ast.Inspect(comm, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && isCtxMethod(info, sel, "Done") {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeFunc resolves the *types.Func a call statically dispatches to
// (package function, method, or interface method); nil for indirect
// calls through function values and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isCtxMethod reports whether sel is a name-method selection on a
// context.Context-typed expression.
func isCtxMethod(info *types.Info, sel *ast.SelectorExpr, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	return isContextType(info, sel.X)
}

// isContextType reports whether e's static type is context.Context.
func isContextType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isChanType reports whether e's static type is a channel.
func isChanType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}

// selectHasDefault reports whether a select statement has a default
// clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
