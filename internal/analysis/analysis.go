// Package analysis implements sophielint's static-analysis suite: a
// small, dependency-free framework in the style of
// golang.org/x/tools/go/analysis (which is unavailable offline) plus
// the project-specific analyzers that encode SOPHIE's simulation
// invariants:
//
//   - globalrand: no package-level math/rand state, no *rand.Rand
//     shared across goroutine boundaries (the per-PE-RNG rule that
//     keeps Solver.Run deterministic under any goroutine schedule).
//   - seedplumb: exported randomness-drawing entry points in
//     internal/{core,pris,baseline,opcm} must take a Seed or
//     *rand.Rand (reproducibility gate for every EXPERIMENTS.md
//     figure).
//   - floateq: no ==/!= between floating-point expressions outside
//     test files (exact comparison against the constant 0 is allowed
//     as the idiomatic sentinel check).
//   - opcount: no silent underflow in the PPA op accounting —
//     subtraction on metrics.OpCounts counters and unsigned
//     conversions of subtraction-bearing signed arithmetic are
//     flagged; use metrics.U64 for checked conversions.
//   - tracecount: metrics.OpCounts fields are written only by
//     internal/trace's event fold (and internal/metrics itself) —
//     any other writer forks the accounting away from what replaying
//     the event stream produces.
//
// Findings can be suppressed with a justification comment on the same
// line (or the line above):
//
//	//sophielint:ignore floateq exact sentinel equality is intended
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package unit.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore
	// directives.
	Name string
	// Doc is a one-line description shown by `sophielint -help`.
	Doc string
	// Run inspects the unit behind pass and reports findings through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked unit (a
// package's non-test files, its in-package test build, or its external
// test package — the same three units `go vet` analyzes).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the syntax to analyze.
	Files []*ast.File
	// Pkg and Info are the type-checked package and its use/def/type
	// records.
	Pkg  *types.Package
	Info *types.Info
	// PkgPath is the import path being analyzed. For testdata
	// packages it is synthetic (the directory name), so analyzers
	// that scope by package match on the path's last elements.
	PkgPath string
	// TestOnly restricts reporting to *_test.go positions; the
	// in-package test unit re-analyzes the non-test files it was
	// compiled with, and reporting them again would duplicate the
	// primary unit's findings.
	TestOnly bool

	diags   *[]Diagnostic
	ignores ignoreIndex
}

// Diagnostic is one finding, positioned and attributed to its check.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
}

// Reportf records a finding at pos unless an ignore directive or the
// TestOnly filter suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.TestOnly && !strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.ignores.matches(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go
// file (used by floateq to stay out of test tolerance helpers).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ignoreIndex maps filename -> line -> analyzer names suppressed on
// that line. A directive suppresses findings on its own line and the
// following line, so both trailing comments and own-line comments
// above the flagged statement work.
type ignoreIndex map[string]map[int][]string

const ignoreDirective = "sophielint:ignore"

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				checks := strings.Split(fields[0], ",")
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], checks...)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], checks...)
			}
		}
	}
	return idx
}

func (idx ignoreIndex) matches(pos token.Position, check string) bool {
	byLine, ok := idx[pos.Filename]
	if !ok {
		return false
	}
	for _, name := range byLine[pos.Line] {
		if name == check || name == "all" {
			return true
		}
	}
	return false
}

// Analyzers returns the full sophielint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		GlobalRandAnalyzer,
		SeedPlumbAnalyzer,
		SeedMixAnalyzer,
		FloatEqAnalyzer,
		OpCountAnalyzer,
		TraceCountAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer selection ("" selects the
// whole suite).
func ByName(selection string) ([]*Analyzer, error) {
	if selection == "" {
		return Analyzers(), nil
	}
	all := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		all[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(selection, ",") {
		name = strings.TrimSpace(name)
		a, ok := all[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunUnit runs every analyzer in suite over one loaded unit and
// returns the surviving diagnostics sorted by position.
func RunUnit(u *Unit, suite []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores := buildIgnoreIndex(u.Fset, u.Files)
	for _, a := range suite {
		pass := &Pass{
			Analyzer: a,
			Fset:     u.Fset,
			Files:    u.Files,
			Pkg:      u.Pkg,
			Info:     u.Info,
			PkgPath:  u.Path,
			TestOnly: u.TestOnly,
			diags:    &diags,
			ignores:  ignores,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", u.Path, a.Name, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by file, line, column, then check
// name, so output and golden comparisons are stable.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}
