// Package analysis implements sophielint's static-analysis suite: a
// small, dependency-free framework in the style of
// golang.org/x/tools/go/analysis (which is unavailable offline) plus
// the project-specific analyzers that encode SOPHIE's simulation
// invariants.
//
// The framework is two-pass. Pass one is a shared single-walk
// inspector: every analyzer registers node-type-indexed callbacks
// (Analyzer.Register) and RunUnit traverses the unit's syntax exactly
// once, so the suite's per-unit cost stays one walk no matter how many
// analyzers run. Pass two is the facts layer (facts.go): per-package
// concurrency findings ("this exported function blocks", "this
// function observes ctx") serialized across package boundaries so
// analyzers reason about callees they cannot see the syntax of.
//
// The analyzers:
//
//   - globalrand: no package-level math/rand state, no *rand.Rand
//     shared across goroutine boundaries (the per-PE-RNG rule that
//     keeps Solver.Run deterministic under any goroutine schedule).
//   - seedplumb: exported randomness-drawing entry points in
//     internal/{core,pris,baseline,opcm} must take a Seed or
//     *rand.Rand (reproducibility gate for every EXPERIMENTS.md
//     figure).
//   - seedmix: replica/batch seed derivation must mix indices with
//     distinct multipliers, not reuse the base seed.
//   - floateq: no ==/!= between floating-point expressions outside
//     test files (exact comparison against the constant 0 is allowed
//     as the idiomatic sentinel check).
//   - opcount: no silent underflow in the PPA op accounting —
//     subtraction on metrics.OpCounts counters and unsigned
//     conversions of subtraction-bearing signed arithmetic are
//     flagged; use metrics.U64 for checked conversions.
//   - tracecount: metrics.OpCounts fields are written only by
//     internal/trace's event fold (and internal/metrics itself) —
//     any other writer forks the accounting away from what replaying
//     the event stream produces.
//   - ctxflow: exported blocking entry points in internal/{core,
//     service} accept a context.Context (or have a Ctx sibling), and
//     potentially-unbounded loops in context-aware functions observe
//     cancellation.
//   - lockcheck: no sync.Mutex/RWMutex held across a channel
//     operation or other blocking call, no cond.Wait outside a
//     condition loop, no Lock without an all-paths Unlock.
//   - goleak: every go statement in non-test code is tied to a
//     WaitGroup, context, or owning struct's shutdown path.
//
// Findings can be suppressed with a justification comment on the same
// line (or on its own line above — intervening comment-only lines are
// skipped, so a directive above a comment block still scopes to the
// first code line below it):
//
//	//sophielint:ignore floateq exact sentinel equality is intended
//
// A directive naming an analyzer that does not exist is itself
// diagnosed (check "ignore"), so typos cannot silently suppress
// nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package unit.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore
	// directives.
	Name string
	// Doc is a one-line description shown by `sophielint -help`.
	Doc string
	// Register wires the analyzer's callbacks into the shared
	// inspector. Callbacks report findings through pass.Reportf; the
	// framework walks the syntax after every suite member has
	// registered.
	Register func(pass *Pass, ins *Inspector)
}

// Pass carries one analyzer's view of one type-checked unit (a
// package's non-test files, its in-package test build, or its external
// test package — the same three units `go vet` analyzes).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the syntax to analyze.
	Files []*ast.File
	// Pkg and Info are the type-checked package and its use/def/type
	// records.
	Pkg  *types.Package
	Info *types.Info
	// PkgPath is the import path being analyzed. For testdata
	// packages it is synthetic (the directory name), so analyzers
	// that scope by package match on the path's last elements.
	PkgPath string
	// TestOnly restricts reporting to *_test.go positions; the
	// in-package test unit re-analyzes the non-test files it was
	// compiled with, and reporting them again would duplicate the
	// primary unit's findings.
	TestOnly bool
	// Facts is the unit's window onto the cross-package facts layer;
	// shared by all analyzers in the suite so the unit's own FactSet
	// is computed at most once.
	Facts *FactView

	diags   *[]Diagnostic
	ignores ignoreIndex
}

// Diagnostic is one finding, positioned and attributed to its check.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
}

// Reportf records a finding at pos unless an ignore directive or the
// TestOnly filter suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.TestOnly && !strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.ignores.matches(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go
// file (used by floateq to stay out of test tolerance helpers).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ignoreIndex maps filename -> line -> analyzer names suppressed on
// that line. A directive suppresses findings on its own line and on
// the next line holding code, skipping intervening comment-only and
// blank lines so a directive may sit above a comment block explaining
// the exception.
type ignoreIndex map[string]map[int][]string

const ignoreDirective = "sophielint:ignore"

// ignoreCheckName attributes diagnostics about malformed ignore
// directives. It is reserved: not an analyzer, never suppressible.
const ignoreCheckName = "ignore"

// buildIgnoreIndex parses every //sophielint:ignore directive in files
// into a suppression index, and reports directives that name analyzers
// the suite does not have — a typo there would otherwise silently
// suppress nothing. known holds the valid check names (the registry
// plus "all").
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File, known map[string]bool) (ignoreIndex, []Diagnostic) {
	idx := make(ignoreIndex)
	var bad []Diagnostic
	for _, f := range files {
		codeLines := fileCodeLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				checks := strings.Split(fields[0], ",")
				pos := fset.Position(c.Pos())
				for _, name := range checks {
					if known != nil && !known[name] {
						bad = append(bad, Diagnostic{
							Pos:     pos,
							Check:   ignoreCheckName,
							Message: fmt.Sprintf("ignore directive names unknown analyzer %q", name),
						})
					}
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], checks...)
				if next, ok := nextCodeLine(codeLines, pos.Line); ok {
					byLine[next] = append(byLine[next], checks...)
				}
			}
		}
	}
	return idx, bad
}

// fileCodeLines returns the sorted set of lines in f on which a
// syntax node starts — the only lines a diagnostic can be positioned
// on. Comment-only and blank lines are absent, which is what lets a
// directive's scope skip over them.
func fileCodeLines(fset *token.FileSet, f *ast.File) []int {
	seen := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		seen[fset.Position(n.Pos()).Line] = true
		return true
	})
	lines := make([]int, 0, len(seen))
	for l := range seen {
		lines = append(lines, l)
	}
	sort.Ints(lines)
	return lines
}

// nextCodeLine returns the first code line strictly after line.
func nextCodeLine(codeLines []int, line int) (int, bool) {
	i := sort.SearchInts(codeLines, line+1)
	if i == len(codeLines) {
		return 0, false
	}
	return codeLines[i], true
}

func (idx ignoreIndex) matches(pos token.Position, check string) bool {
	byLine, ok := idx[pos.Filename]
	if !ok {
		return false
	}
	for _, name := range byLine[pos.Line] {
		if name == check || name == "all" {
			return true
		}
	}
	return false
}

// Analyzers returns the full sophielint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		GlobalRandAnalyzer,
		SeedPlumbAnalyzer,
		SeedMixAnalyzer,
		FloatEqAnalyzer,
		OpCountAnalyzer,
		TraceCountAnalyzer,
		CtxFlowAnalyzer,
		LockCheckAnalyzer,
		GoLeakAnalyzer,
	}
}

// knownCheckNames returns the set of names valid in ignore directives:
// every registered analyzer plus the "all" wildcard. Validation is
// against the full registry, not the selected suite, so running a
// subset of checks does not misreport ignores aimed at the others.
func knownCheckNames() map[string]bool {
	known := map[string]bool{"all": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	return known
}

// ByName resolves a comma-separated analyzer selection ("" selects the
// whole suite).
func ByName(selection string) ([]*Analyzer, error) {
	if selection == "" {
		return Analyzers(), nil
	}
	all := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		all[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(selection, ",") {
		name = strings.TrimSpace(name)
		a, ok := all[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunUnit runs every analyzer in suite over one loaded unit in a
// single shared traversal and returns the surviving diagnostics sorted
// by position. facts supplies imported packages' FactSets; nil is
// valid and leaves cross-package facts empty.
func RunUnit(u *Unit, suite []*Analyzer, facts FactSource) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores, bad := buildIgnoreIndex(u.Fset, u.Files, knownCheckNames())
	diags = append(diags, filterTestOnly(bad, u.TestOnly)...)
	view := NewFactView(u, facts)
	ins := NewInspector(u.Files)
	for _, a := range suite {
		a.Register(newPass(a, u, view, &diags, ignores), ins)
	}
	ins.walk()
	SortDiagnostics(diags)
	return diags, nil
}

// RunUnitIsolated runs each analyzer in its own full traversal — the
// pre-inspector execution model. It exists for sophiebench's
// shared-vs-isolated wall-time comparison and produces the same
// diagnostics as RunUnit.
func RunUnitIsolated(u *Unit, suite []*Analyzer, facts FactSource) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores, bad := buildIgnoreIndex(u.Fset, u.Files, knownCheckNames())
	diags = append(diags, filterTestOnly(bad, u.TestOnly)...)
	view := NewFactView(u, facts)
	for _, a := range suite {
		ins := NewInspector(u.Files)
		a.Register(newPass(a, u, view, &diags, ignores), ins)
		ins.walk()
	}
	SortDiagnostics(diags)
	return diags, nil
}

func newPass(a *Analyzer, u *Unit, view *FactView, diags *[]Diagnostic, ignores ignoreIndex) *Pass {
	return &Pass{
		Analyzer: a,
		Fset:     u.Fset,
		Files:    u.Files,
		Pkg:      u.Pkg,
		Info:     u.Info,
		PkgPath:  u.Path,
		TestOnly: u.TestOnly,
		Facts:    view,
		diags:    diags,
		ignores:  ignores,
	}
}

// filterTestOnly applies the TestOnly reporting restriction to
// framework-level diagnostics (Reportf applies it for analyzers).
func filterTestOnly(diags []Diagnostic, testOnly bool) []Diagnostic {
	if !testOnly {
		return diags
	}
	var out []Diagnostic
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			out = append(out, d)
		}
	}
	return out
}

// SortDiagnostics orders findings by file, line, column, then check
// name, so output and golden comparisons are stable.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}
