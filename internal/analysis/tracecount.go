package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// TraceCountAnalyzer guards the execution-trace spine: since the PR
// that made metrics.OpCounts a fold over the trace event stream,
// internal/trace's fold is the single place op accounting happens.
// A direct write to an OpCounts field anywhere else (assignment,
// op-assignment, ++/--) silently forks the accounting — the written
// counter no longer matches what a replay of the same event stream
// produces, which breaks trace-driven PPA attribution and the
// golden-identity contract between Solve and FoldOps.
//
// Allowed writers:
//
//   - internal/trace (the fold itself) and internal/metrics (OpCounts'
//     own methods, e.g. Add);
//   - _test.go files anywhere (tests build expectation literals);
//   - explicitly justified sites via
//     //sophielint:ignore tracecount <why> — e.g. the OPCM engine's
//     device-lifetime counters, which tally across jobs and mirror
//     their charge onto the spine as KindReprogram events.
var TraceCountAnalyzer = &Analyzer{
	Name:     "tracecount",
	Doc:      "flag metrics.OpCounts writes outside internal/trace's event fold",
	Register: registerTraceCount,
}

func registerTraceCount(pass *Pass, ins *Inspector) {
	if traceCountExemptPkg(pass.PkgPath) {
		return
	}
	ins.Preorder([]ast.Node{(*ast.AssignStmt)(nil)}, func(n ast.Node) {
		for _, lhs := range n.(*ast.AssignStmt).Lhs {
			if isOpCountsField(pass, lhs) && !pass.IsTestFile(lhs.Pos()) {
				pass.Reportf(lhs.Pos(),
					"direct write to a metrics.OpCounts field outside internal/trace's fold: emit a trace event instead so replayed accounting stays identical")
			}
		}
	})
	ins.Preorder([]ast.Node{(*ast.IncDecStmt)(nil)}, func(n ast.Node) {
		x := n.(*ast.IncDecStmt).X
		if isOpCountsField(pass, x) && !pass.IsTestFile(x.Pos()) {
			pass.Reportf(x.Pos(),
				"direct write to a metrics.OpCounts field outside internal/trace's fold: emit a trace event instead so replayed accounting stays identical")
		}
	})
	ins.Preorder([]ast.Node{(*ast.UnaryExpr)(nil)}, func(n ast.Node) {
		// &c.Field handed out of the package would let callers write
		// around the fold without a flaggable statement here; taking
		// the address is the escape point.
		u := n.(*ast.UnaryExpr)
		if u.Op == token.AND && isOpCountsField(pass, u.X) && !pass.IsTestFile(u.X.Pos()) {
			pass.Reportf(u.X.Pos(),
				"taking the address of a metrics.OpCounts field: the alias can be written outside internal/trace's fold; pass values or emit trace events")
		}
	})
}

// traceCountExemptPkg reports whether pkg may write OpCounts fields
// directly: the fold's own package and the metrics package that owns
// the type. Matched by path suffix so the synthetic testdata package
// paths used by analysistest resolve the same way real ones do.
func traceCountExemptPkg(pkg string) bool {
	return strings.HasSuffix(pkg, "internal/trace") ||
		strings.HasSuffix(pkg, "internal/metrics") ||
		pkg == "trace" || pkg == "metrics"
}
