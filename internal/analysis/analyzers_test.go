package analysis_test

import (
	"testing"

	"sophie/internal/analysis"
	"sophie/internal/analysis/analysistest"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, ".", analysis.GlobalRandAnalyzer, "globalrand")
}

func TestSeedPlumb(t *testing.T) {
	analysistest.Run(t, ".", analysis.SeedPlumbAnalyzer, "core")
}

func TestSeedMix(t *testing.T) {
	analysistest.Run(t, ".", analysis.SeedMixAnalyzer, "seedmix")
}

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, ".", analysis.FloatEqAnalyzer, "floateq")
}

func TestOpCount(t *testing.T) {
	analysistest.Run(t, ".", analysis.OpCountAnalyzer, "opcount")
}

func TestTraceCount(t *testing.T) {
	analysistest.Run(t, ".", analysis.TraceCountAnalyzer, "tracecount")
}

func TestByName(t *testing.T) {
	suite, err := analysis.ByName("floateq,globalrand")
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 2 || suite[0].Name != "floateq" || suite[1].Name != "globalrand" {
		t.Fatalf("unexpected selection %v", suite)
	}
	if _, err := analysis.ByName("nosuch"); err == nil {
		t.Fatal("expected error for unknown analyzer")
	}
}

func TestSuiteIsComplete(t *testing.T) {
	want := map[string]bool{"globalrand": true, "seedplumb": true, "seedmix": true, "floateq": true, "opcount": true, "tracecount": true}
	got := analysis.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
	}
}
