package analysis_test

import (
	"testing"

	"sophie/internal/analysis"
	"sophie/internal/analysis/analysistest"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, ".", analysis.GlobalRandAnalyzer, "globalrand")
}

func TestSeedPlumb(t *testing.T) {
	analysistest.Run(t, ".", analysis.SeedPlumbAnalyzer, "core")
}

func TestSeedMix(t *testing.T) {
	analysistest.Run(t, ".", analysis.SeedMixAnalyzer, "seedmix")
}

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, ".", analysis.FloatEqAnalyzer, "floateq")
}

func TestOpCount(t *testing.T) {
	analysistest.Run(t, ".", analysis.OpCountAnalyzer, "opcount")
}

func TestTraceCount(t *testing.T) {
	analysistest.Run(t, ".", analysis.TraceCountAnalyzer, "tracecount")
}

func TestCtxFlow(t *testing.T) {
	// The synthetic import path ends in internal/core so the analyzer's
	// package guard applies to the golden tree.
	analysistest.RunWithPath(t, ".", analysis.CtxFlowAnalyzer, "ctxflow", "golden/internal/core")
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, ".", analysis.LockCheckAnalyzer, "lockcheck")
}

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, ".", analysis.GoLeakAnalyzer, "goleak")
}

func TestByName(t *testing.T) {
	suite, err := analysis.ByName("floateq,globalrand")
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 2 || suite[0].Name != "floateq" || suite[1].Name != "globalrand" {
		t.Fatalf("unexpected selection %v", suite)
	}
	if _, err := analysis.ByName("nosuch"); err == nil {
		t.Fatal("expected error for unknown analyzer")
	}
}

func TestSuiteIsComplete(t *testing.T) {
	want := map[string]bool{
		"globalrand": true, "seedplumb": true, "seedmix": true,
		"floateq": true, "opcount": true, "tracecount": true,
		"ctxflow": true, "lockcheck": true, "goleak": true,
	}
	got := analysis.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" || a.Register == nil {
			t.Errorf("analyzer %q missing doc or register hook", a.Name)
		}
	}
}
