package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlowAnalyzer enforces the runtime's cancellation contract
// (DESIGN.md "Invariants"): work started through the public surface of
// internal/core and internal/service must be stoppable.
//
// Two checks:
//
//  1. An exported function (or method) that blocks — per the facts
//     layer, transitively through its callees — must either accept a
//     context.Context or have a "Ctx sibling": a function of the same
//     name with a Ctx suffix (Run/RunCtx, RunBatch/RunBatchCtx). The
//     sibling convention keeps the zero-dependency fast path while
//     guaranteeing a cancellable variant exists.
//
//  2. A potentially-unbounded loop (`for {`) in a context-aware
//     function must observe cancellation each iteration: a ctx.Done()
//     / ctx.Err() check, a receive from a stop/done/quit channel, or a
//     batchStop-style stopped()/cancelled() poll. A context-aware
//     function that spins without looking at its context turns
//     cancellation into a dead letter.
//
// The analyzer scopes to internal/core and internal/service (matched
// by path suffix so analysistest's synthetic paths resolve the same
// way); handlers taking *http.Request are exempt from check 1 — their
// context arrives inside the request.
var CtxFlowAnalyzer = &Analyzer{
	Name:     "ctxflow",
	Doc:      "exported blocking entry points in core/service must accept ctx; unbounded loops must observe cancellation",
	Register: registerCtxFlow,
}

func ctxFlowGuardedPkg(pkg string) bool {
	pkg = strings.TrimSuffix(pkg, "_test")
	return strings.HasSuffix(pkg, "internal/core") ||
		strings.HasSuffix(pkg, "internal/service")
}

func registerCtxFlow(pass *Pass, ins *Inspector) {
	if !ctxFlowGuardedPkg(pass.PkgPath) {
		return
	}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		checkBlockingEntryPoint(pass, n.(*ast.FuncDecl))
	})
	ins.WithStack([]ast.Node{(*ast.ForStmt)(nil)}, func(n ast.Node, stack []ast.Node) {
		checkUnboundedLoop(pass, n.(*ast.ForStmt), stack)
	})
}

// checkBlockingEntryPoint implements check 1.
func checkBlockingEntryPoint(pass *Pass, fn *ast.FuncDecl) {
	if fn.Body == nil || !fn.Name.IsExported() || pass.IsTestFile(fn.Pos()) {
		return
	}
	obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	if sigTakesCtx(sig) || sigTakesHTTPRequest(sig) {
		return
	}
	if !pass.Facts.Func(obj).Blocks {
		return
	}
	if hasCtxSibling(pass, obj, sig) {
		return
	}
	pass.Reportf(fn.Name.Pos(),
		"exported %s blocks but takes no context.Context and has no %sCtx sibling: callers cannot cancel it",
		fn.Name.Name, fn.Name.Name)
}

// sigTakesCtx reports whether any parameter is a context.Context.
func sigTakesCtx(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextTypeT(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// sigTakesHTTPRequest reports whether any parameter is an
// *http.Request (whose Context() carries the cancellation signal).
func sigTakesHTTPRequest(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		ptr, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		o := named.Obj()
		if o.Name() == "Request" && o.Pkg() != nil && o.Pkg().Path() == "net/http" {
			return true
		}
	}
	return false
}

func isContextTypeT(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context"
}

// hasCtxSibling reports whether a NameCtx variant exists: a package
// function for package functions, a method on the same receiver type
// for methods.
func hasCtxSibling(pass *Pass, obj *types.Func, sig *types.Signature) bool {
	sibling := obj.Name() + "Ctx"
	recv := sig.Recv()
	if recv == nil {
		if pass.Pkg == nil {
			return false
		}
		_, ok := pass.Pkg.Scope().Lookup(sibling).(*types.Func)
		return ok
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == sibling {
			return true
		}
	}
	return false
}

// checkUnboundedLoop implements check 2.
func checkUnboundedLoop(pass *Pass, loop *ast.ForStmt, stack []ast.Node) {
	if loop.Cond != nil || pass.IsTestFile(loop.Pos()) {
		return
	}
	body := enclosingFuncBody(stack)
	if body == nil {
		return
	}
	if !referencesContext(pass, body) {
		return
	}
	if observesCancellation(pass, loop.Body) {
		return
	}
	pass.Reportf(loop.For,
		"unbounded for loop in a context-aware function never observes cancellation: poll ctx.Done()/Err() or a stop flag each iteration")
}

// enclosingFuncBody returns the body of the innermost function
// (declaration or literal) containing the top of the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return f.Body
		case *ast.FuncDecl:
			return f.Body
		}
	}
	return nil
}

// referencesContext reports whether the function body mentions any
// context.Context-typed value (parameter, field, or local).
func referencesContext(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[ident]
		if obj == nil {
			obj = pass.Info.Defs[ident]
		}
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if isContextTypeT(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// cancellationNames are the substrings that mark a channel or poll
// call as a stop signal (the repo's batchStop.stopped(), stopCh,
// quit/done channels).
func nameSignalsStop(name string) bool {
	name = strings.ToLower(name)
	for _, s := range []string{"stop", "done", "quit", "cancel", "close"} {
		if strings.Contains(name, s) {
			return true
		}
	}
	return false
}

// observesCancellation reports whether the loop body checks a
// cancellation signal: ctx.Done()/ctx.Err(), a receive from a channel
// whose name signals stop, or a call to a stop-flag poll.
func observesCancellation(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if isCtxMethod(pass.Info, sel, "Done") || isCtxMethod(pass.Info, sel, "Err") {
					found = true
					return false
				}
				if nameSignalsStop(sel.Sel.Name) {
					found = true
					return false
				}
			}
			if ident, ok := n.Fun.(*ast.Ident); ok && nameSignalsStop(ident.Name) {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if nameSignalsStop(exprLeafName(n.X)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprLeafName returns the rightmost identifier of a selector chain or
// identifier ("m.stopCh" -> "stopCh").
func exprLeafName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		return exprLeafName(e.Fun)
	}
	return ""
}
