package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeakAnalyzer enforces the goroutine-ownership invariant (DESIGN.md
// "Invariants"): every goroutine launched in non-test code must be
// tied to a lifecycle its owner controls. A fire-and-forget goroutine
// outlives shutdown, keeps captured state alive, and turns clean
// drains into races.
//
// A go statement is considered tied when any of these hold:
//
//   - the statement immediately before it is a WaitGroup.Add call (the
//     Add/go pairing idiom; the spawned function owns the Done);
//   - its function-literal body calls WaitGroup.Done (usually
//     deferred);
//   - its body ranges over a channel — it exits when the owner closes
//     the channel (the solver's PE worker-pool idiom);
//   - its body receives from ctx.Done() or from a channel stored in a
//     struct field (stopCh-style shutdown signal);
//   - its body sends on or closes a channel that the spawning function
//     receives from — the spawner joins the goroutine (the
//     serveErr / done-channel idiom).
//
// Anything else is flagged. Deliberate detachment needs a
// //sophielint:ignore goleak <why> stating who owns the goroutine's
// lifetime.
var GoLeakAnalyzer = &Analyzer{
	Name:     "goleak",
	Doc:      "every go statement must be tied to a WaitGroup, context, or shutdown channel",
	Register: registerGoLeak,
}

func registerGoLeak(pass *Pass, ins *Inspector) {
	ins.WithStack([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node, stack []ast.Node) {
		checkGoLeak(pass, n.(*ast.GoStmt), stack)
	})
}

func checkGoLeak(pass *Pass, g *ast.GoStmt, stack []ast.Node) {
	if pass.IsTestFile(g.Pos()) {
		return
	}
	if precededByWaitGroupAdd(pass, g, stack) {
		return
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if bodyCallsWaitGroupDone(pass, lit.Body) {
			return
		}
		if bodyRangesOverChannel(pass, lit.Body) {
			return
		}
		if bodyReceivesShutdownSignal(pass, lit.Body) {
			return
		}
		if spawnerJoins(pass, lit.Body, stack, g) {
			return
		}
	}
	pass.Reportf(g.Pos(),
		"goroutine is not tied to a WaitGroup, context, or shutdown channel: it can outlive its owner; tie it to a lifecycle or justify with //sophielint:ignore goleak <why>")
}

// precededByWaitGroupAdd reports whether the statement immediately
// before the go statement in its enclosing block is a WaitGroup.Add
// call — the `wg.Add(1); go f()` pairing. Immediate adjacency is
// required: an Add elsewhere in the function ties its own go
// statement, not every one after it.
func precededByWaitGroupAdd(pass *Pass, g *ast.GoStmt, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	block, ok := stack[len(stack)-2].(*ast.BlockStmt)
	if !ok {
		return false
	}
	for i, stmt := range block.List {
		if stmt != ast.Stmt(g) {
			continue
		}
		if i == 0 {
			return false
		}
		prev, ok := block.List[i-1].(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := prev.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		return calleeFullName(pass, call) == "(*sync.WaitGroup).Add"
	}
	return false
}

func calleeFullName(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass.Info, call); fn != nil {
		return fn.FullName()
	}
	return ""
}

func bodyCallsWaitGroupDone(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok &&
			calleeFullName(pass, call) == "(*sync.WaitGroup).Done" {
			found = true
			return false
		}
		return !found
	})
	return found
}

func bodyRangesOverChannel(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok && isChanType(pass.Info, r.X) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// bodyReceivesShutdownSignal reports whether the body receives from
// ctx.Done() or from a channel held in a struct field — both are
// owner-controlled stop signals. Receives from local variables don't
// count (nothing ties the owner to closing them); those are covered by
// spawnerJoins instead.
func bodyReceivesShutdownSignal(pass *Pass, body *ast.BlockStmt) bool {
	isSignal := func(ch ast.Expr) bool {
		ch = ast.Unparen(ch)
		if call, ok := ch.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
				(isCtxMethod(pass.Info, sel, "Done")) {
				return true
			}
			return false
		}
		if sel, ok := ch.(*ast.SelectorExpr); ok {
			return isChanType(pass.Info, sel) &&
				selectionIsField(pass, sel)
		}
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isSignal(n.X) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if isChanType(pass.Info, n.X) && isSignal(n.X) {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

func selectionIsField(pass *Pass, sel *ast.SelectorExpr) bool {
	selection, ok := pass.Info.Selections[sel]
	return ok && selection.Kind() == types.FieldVal
}

// spawnerJoins reports whether the goroutine body sends on or closes a
// channel that the enclosing function receives from — the spawner
// blocks until the goroutine reports, so the goroutine cannot outlive
// it.
func spawnerJoins(pass *Pass, body *ast.BlockStmt, stack []ast.Node, g *ast.GoStmt) bool {
	// Channels the goroutine signals on, by expression text.
	signals := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			signals[types.ExprString(n.Chan)] = true
		case *ast.CallExpr:
			if ident, ok := n.Fun.(*ast.Ident); ok && ident.Name == "close" &&
				pass.Info.Uses[ident] == types.Universe.Lookup("close") && len(n.Args) == 1 {
				signals[types.ExprString(n.Args[0])] = true
			}
		}
		return true
	})
	if len(signals) == 0 {
		return false
	}
	encl := enclosingFuncBody(stack)
	if encl == nil {
		return false
	}
	joins := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if n == g {
			return false // the goroutine's own ops are not a join
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && signals[types.ExprString(n.X)] {
				joins = true
				return false
			}
		case *ast.RangeStmt:
			if isChanType(pass.Info, n.X) && signals[types.ExprString(n.X)] {
				joins = true
				return false
			}
		}
		return !joins
	})
	return joins
}
