package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked body of code to analyze. A directory yields
// up to three units — the package proper, the in-package test build,
// and the external _test package — mirroring how `go vet` splits a
// package.
type Unit struct {
	// Dir is the directory the unit was loaded from.
	Dir string
	// Path is the unit's import path ("sophie/internal/core"); for
	// directories outside the module (testdata) it is synthetic.
	Path string
	// Variant is "pkg", "test", or "xtest".
	Variant string
	// TestOnly marks the in-package test unit, whose non-test files
	// were already analyzed under the "pkg" variant.
	TestOnly bool

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader type-checks packages from source using only the standard
// library: module-local import paths resolve against the module root
// on disk, and everything else falls back to the GOROOT source
// importer. Loaded packages are memoized, so one Loader amortizes the
// cost of type-checking the standard library across many units.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset      *token.FileSet
	std       types.ImporterFrom
	cache     map[string]*loaded
	loading   map[string]bool
	facts     map[string]FactSet
	unitFacts map[*Unit]FactSet
}

// loaded is one memoized package: module-local packages keep their
// syntax and type records so LoadDir can analyze exactly the instance
// every importer saw (loading a second copy would break type
// identity).
type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// NewLoader builds a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		cache:      make(map[string]*loaded),
		loading:    make(map[string]bool),
		facts:      make(map[string]FactSet),
		unitFacts:  make(map[*Unit]FactSet),
	}, nil
}

// UnitFacts implements UnitFactsCache: computed unit FactSets are keyed
// by unit identity, so re-analyzing the same loaded unit (sophiebench's
// lint arm, repeated analysistest runs over one loader) pays for the
// facts fixpoint once. Like the rest of the Loader, not safe for
// concurrent use.
func (l *Loader) UnitFacts(u *Unit, compute func() FactSet) FactSet {
	if fs, ok := l.unitFacts[u]; ok {
		return fs
	}
	fs := compute()
	l.unitFacts[u] = fs
	return fs
}

// PackageFacts implements FactSource from the loader's memoized syntax:
// module-local packages get their FactSet computed on first request
// (recursively resolving their own imports' facts) and cached.
// Non-module packages return nil — the standard library is covered by
// the stdBlocking table rather than syntax, since the source importer
// does not retain GOROOT syntax.
func (l *Loader) PackageFacts(path string) FactSet {
	if fs, ok := l.facts[path]; ok {
		return fs
	}
	if _, ok := l.moduleRelative(path); !ok {
		l.facts[path] = nil
		return nil
	}
	rec, err := l.load(path, l.ModuleRoot, 0)
	if err != nil || rec.files == nil {
		l.facts[path] = nil
		return nil
	}
	// Pre-seed an empty set so a (theoretically impossible) cycle
	// terminates instead of recursing.
	l.facts[path] = FactSet{}
	fs := ComputeFacts(rec.files, rec.info, func(fn *types.Func) FuncFacts {
		if fn.Pkg() == nil || fn.Pkg().Path() == path {
			return FuncFacts{}
		}
		return l.PackageFacts(fn.Pkg().Path())[fn.FullName()]
	})
	l.facts[path] = fs
	return fs
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "module ") {
			return strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load
// from the module tree, others from GOROOT source.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	rec, err := l.load(path, srcDir, mode)
	if err != nil {
		return nil, err
	}
	return rec.pkg, nil
}

func (l *Loader) load(path, srcDir string, mode types.ImportMode) (*loaded, error) {
	if rec, ok := l.cache[path]; ok {
		return rec, nil
	}
	if rel, ok := l.moduleRelative(path); ok {
		if l.loading[path] {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		pkg, files, info, err := l.checkDir(filepath.Join(l.ModuleRoot, rel), path, unitPkg)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files for %s", path)
		}
		rec := &loaded{pkg: pkg, files: files, info: info}
		l.cache[path] = rec
		return rec, nil
	}
	pkg, err := l.std.ImportFrom(path, srcDir, mode)
	if err != nil {
		return nil, err
	}
	rec := &loaded{pkg: pkg}
	l.cache[path] = rec
	return rec, nil
}

func (l *Loader) moduleRelative(path string) (string, bool) {
	if path == l.ModulePath {
		return ".", true
	}
	if strings.HasPrefix(path, l.ModulePath+"/") {
		return strings.TrimPrefix(path, l.ModulePath+"/"), true
	}
	return "", false
}

// unitVariant selects which of a directory's file sets checkDir
// type-checks.
type unitVariant int

const (
	unitPkg   unitVariant = iota // non-test files only
	unitTest                     // non-test + in-package _test files
	unitXTest                    // external foo_test package files
)

// checkDir parses and type-checks one variant of the package in dir.
func (l *Loader) checkDir(dir, path string, variant unitVariant) (*types.Package, []*ast.File, *types.Info, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	switch variant {
	case unitPkg:
		names = bp.GoFiles
	case unitTest:
		names = append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...)
	case unitXTest:
		names = bp.XTestGoFiles
	}
	if len(names) == 0 {
		return nil, nil, nil, nil
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor(build.Default.Compiler, build.Default.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, nil, nil, fmt.Errorf("analysis: type-checking %s: %v", dir, typeErrs[0])
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("analysis: type-checking %s: %v", dir, err)
	}
	return pkg, files, info, nil
}

// LoadDir loads every unit in dir: the package, its in-package test
// build, and its external test package (each only when files exist).
// importPath may be "" to derive the path from the directory's
// location in the module.
func (l *Loader) LoadDir(dir, importPath string) ([]*Unit, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if importPath == "" {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			// Outside the module (e.g. testdata trees): synthesize a
			// path from the directory base so package-scoped analyzers
			// can still match.
			importPath = filepath.Base(dir)
		} else if rel == "." {
			importPath = l.ModulePath
		} else {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	var units []*Unit
	addUnit := func(variant, path string, testOnly bool, pkg *types.Package, files []*ast.File, info *types.Info) {
		units = append(units, &Unit{
			Dir: dir, Path: path, Variant: variant, TestOnly: testOnly,
			Fset: l.fset, Files: files, Pkg: pkg, Info: info,
		})
	}

	// The package proper. Go through the memoizing importer for
	// module-local paths so analysis sees the exact *types.Package
	// every importer of this path saw (type identity).
	if len(bp.GoFiles) > 0 {
		if _, inModule := l.moduleRelative(importPath); inModule {
			rec, err := l.load(importPath, dir, 0)
			if err != nil {
				return nil, err
			}
			addUnit("pkg", importPath, false, rec.pkg, rec.files, rec.info)
		} else {
			pkg, files, info, err := l.checkDir(dir, importPath, unitPkg)
			if err != nil {
				return nil, err
			}
			addUnit("pkg", importPath, false, pkg, files, info)
		}
	}

	// In-package test build: the package re-typechecked with its
	// _test.go files; only test-file positions are reported.
	if len(bp.TestGoFiles) > 0 {
		pkg, files, info, err := l.checkDir(dir, importPath, unitTest)
		if err != nil {
			return nil, err
		}
		addUnit("test", importPath, true, pkg, files, info)
	}

	// External test package.
	if len(bp.XTestGoFiles) > 0 {
		pkg, files, info, err := l.checkDir(dir, importPath+"_test", unitXTest)
		if err != nil {
			return nil, err
		}
		addUnit("xtest", importPath+"_test", false, pkg, files, info)
	}
	return units, nil
}

// ModulePackageDirs walks the module tree and returns every directory
// containing buildable Go files, skipping testdata, hidden
// directories, and vendored code. This is the standalone runner's
// "./..." expansion.
func ModulePackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}
