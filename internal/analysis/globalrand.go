package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRandAnalyzer enforces the per-PE-RNG rule that keeps the
// solver deterministic and race-free: every stochastic component draws
// from an explicitly seeded, goroutine-local *rand.Rand.
//
// It reports:
//   - calls to package-level math/rand functions that consume the
//     process-global source (rand.Intn, rand.Float64, ...): the global
//     source is locked (contention in the PE worker pool) and not
//     reproducible per job;
//   - package-level variables of type *rand.Rand or rand.Source: one
//     shared stream makes results depend on goroutine schedule;
//   - a *rand.Rand (or rand.Source) captured by a `go func` literal
//     from an enclosing scope, or passed as an argument in a `go`
//     statement: rand.Rand is not safe for concurrent use, and even a
//     guarded stream would make the draw order schedule-dependent.
var GlobalRandAnalyzer = &Analyzer{
	Name:     "globalrand",
	Doc:      "flag global math/rand use and *rand.Rand crossing goroutine boundaries",
	Register: registerGlobalRand,
}

// globalSourceFuncs are the math/rand package-level functions backed by
// the shared global source. Constructors (New, NewSource, NewZipf) and
// pure helpers are fine.
var globalSourceFuncs = map[string]bool{
	"ExpFloat64": true, "Float32": true, "Float64": true,
	"Int": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Intn": true, "NormFloat64": true, "Perm": true,
	"Read": true, "Seed": true, "Shuffle": true, "Uint32": true,
	"Uint64": true,
	// math/rand/v2 additions.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "N": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// isRNGType reports whether t is (a pointer to) math/rand's Rand or an
// implementation-bearing Source.
func isRNGType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !isRandPkg(obj.Pkg().Path()) {
		return false
	}
	switch obj.Name() {
	case "Rand", "Source", "Source64":
		return true
	}
	return false
}

func registerGlobalRand(pass *Pass, ins *Inspector) {
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		checkGlobalSourceCall(pass, n.(*ast.SelectorExpr))
	})
	ins.WithStack([]ast.Node{(*ast.GenDecl)(nil)}, func(n ast.Node, stack []ast.Node) {
		checkPackageLevelRNG(pass, stack[0].(*ast.File), n.(*ast.GenDecl))
	})
	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		checkGoStmt(pass, n.(*ast.GoStmt))
	})
}

// checkGlobalSourceCall flags rand.Intn etc. — any selector on the
// math/rand package name resolving to a global-source function.
func checkGlobalSourceCall(pass *Pass, sel *ast.SelectorExpr) {
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
	if !ok || !isRandPkg(pkgName.Imported().Path()) {
		return
	}
	if globalSourceFuncs[sel.Sel.Name] {
		pass.Reportf(sel.Pos(),
			"use of global math/rand source %s.%s: draw from an explicitly seeded, goroutine-local *rand.Rand instead",
			pkgName.Imported().Name(), sel.Sel.Name)
	}
}

// checkPackageLevelRNG flags `var rng = rand.New(...)` at package
// scope.
func checkPackageLevelRNG(pass *Pass, file *ast.File, decl *ast.GenDecl) {
	// Only package-level declarations: the decl must be a direct child
	// of the file.
	isTop := false
	for _, d := range file.Decls {
		if d == decl {
			isTop = true
			break
		}
	}
	if !isTop {
		return
	}
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			if _, isVar := obj.(*types.Var); isVar && isRNGType(obj.Type()) {
				pass.Reportf(name.Pos(),
					"package-level RNG %s is shared by every caller and goroutine: plumb a seeded *rand.Rand instead", name.Name)
			}
		}
	}
}

// checkGoStmt flags RNG state crossing the goroutine boundary: RNG
// arguments in the go call, and RNG variables captured by a go func
// literal from an enclosing scope.
func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && isRNGType(tv.Type) {
			pass.Reportf(arg.Pos(),
				"*rand.Rand passed across a goroutine boundary: rand.Rand is not safe for concurrent use; create the RNG inside the goroutine from its own seed")
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[ident].(*types.Var)
		if !ok || !isRNGType(obj.Type()) {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			pass.Reportf(ident.Pos(),
				"*rand.Rand %s captured by a go func literal: create the RNG inside the goroutine from a per-goroutine mixed seed so each goroutine owns its stream", ident.Name)
		}
		return true
	})
}
