package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SeedMixAnalyzer guards the seed-derivation convention fixed in PR 3:
// related RNG streams must be separated by an avalanche mixer (the
// repo's splitmix64-based seedStream/sessionMix helpers), never by raw
// arithmetic on the job seed.
//
// Raw derivations look harmless but collide across the very seed
// families users pick: `seed ^ const` maps pairs of seeds to the same
// stream (the pre-PR 3 controller seed collided job seed s with
// s^0x5deece66d), and additive walks like `seed + i*7919 + 1` reuse a
// sibling job's streams whenever two base seeds differ by a small
// multiple (the pre-PR 3 pair seeds collided consecutive CLI seeds).
//
// The analyzer reports any rand.NewSource / rand.New / v2 source
// constructor whose seed argument contains binary or unary arithmetic
// (^ + - * / % & | << >>) outside a function call. Deriving through a
// named function is the sanctioned pattern: the mixer whitens its
// inputs, and the call boundary is where review attention belongs.
var SeedMixAnalyzer = &Analyzer{
	Name:     "seedmix",
	Doc:      "RNG seed derivation must go through a mixing function, not raw XOR/arithmetic on a base seed",
	Register: registerSeedMix,
}

// seedConsumers are the math/rand constructors whose integer arguments
// become stream seeds.
var seedConsumers = map[string]bool{
	"NewSource": true, // math/rand
	"NewPCG":    true, // math/rand/v2
	"Seed":      true, // (*rand.Rand).Seed and the deprecated package func
}

func registerSeedMix(pass *Pass, ins *Inspector) {
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !seedConsumers[sel.Sel.Name] {
			return
		}
		if !isRandSelector(pass, sel) {
			return
		}
		for _, arg := range call.Args {
			if op, bad := findRawMix(pass, arg); bad {
				pass.Reportf(arg.Pos(),
					"raw %q seed derivation in rand.%s: related base seeds collide; derive the stream seed through a splitmix64-style mixing function instead",
					op.String(), sel.Sel.Name)
			}
		}
	})
}

// isRandSelector reports whether sel resolves into math/rand (package
// function like rand.NewSource) or onto one of its types ((*rand.Rand).
// Seed).
func isRandSelector(pass *Pass, sel *ast.SelectorExpr) bool {
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pass.Info.Uses[ident].(*types.PkgName); ok {
			return isRandPkg(pkgName.Imported().Path())
		}
	}
	if tv, ok := pass.Info.Types[sel.X]; ok {
		return isRNGType(tv.Type)
	}
	return false
}

// findRawMix walks the seed expression looking for arithmetic outside a
// call boundary. Conversions (int64(x)) and parentheses are traversed;
// a genuine CallExpr stops the walk — a named derivation function is
// the pattern the analyzer exists to steer people toward.
func findRawMix(pass *Pass, e ast.Expr) (token.Token, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return findRawMix(pass, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.XOR { // ^x bit complement
			return e.Op, true
		}
		return findRawMix(pass, e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.XOR, token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.AND, token.OR, token.AND_NOT, token.SHL, token.SHR:
			return e.Op, true
		}
		if op, bad := findRawMix(pass, e.X); bad {
			return op, true
		}
		return findRawMix(pass, e.Y)
	case *ast.CallExpr:
		// A conversion like int64(x) is transparent; a real call is the
		// sanctioned mixer boundary.
		if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return findRawMix(pass, e.Args[0])
		}
		return token.ILLEGAL, false
	}
	return token.ILLEGAL, false
}
