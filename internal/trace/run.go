package trace

import "sophie/internal/metrics"

// Run is the per-run emitter the solver drives: it owns the run's
// operation-counter fold (always on — Result.Ops is read from here) and
// forwards events to the attached Recorder, if any. With a nil recorder
// every method reduces to the fold arithmetic alone: no allocation, no
// locking, no clock reads. A Run is confined to its run's controller
// goroutine; only the Recorder behind it is shared.
type Run struct {
	meta   Meta
	rec    *Recorder
	timing bool
	lastNS int64
	ops    metrics.OpCounts
}

// NewRun opens a run: registers it with the recorder (when attached)
// and emits KindRunStart.
func NewRun(meta Meta, rec *Recorder) *Run {
	r := &Run{meta: meta, rec: rec}
	if rec != nil {
		rec.beginRun(meta)
		r.timing = rec.timing
		if r.timing {
			r.lastNS = nowNS()
		}
	}
	r.emit(Event{Kind: KindRunStart, N: meta.Seed})
	return r
}

// Ops returns the folded operation counters accumulated so far.
func (r *Run) Ops() metrics.OpCounts { return r.ops }

// Meta returns the run geometry.
func (r *Run) Meta() Meta { return r.meta }

// WantsEnergyDetail reports whether anything will observe KindEnergy
// payloads — the solver only computes per-evaluation flip counts (an
// O(n) diff) when this is true.
func (r *Run) WantsEnergyDetail() bool { return r.rec.Wants(KindEnergy) }

// WantsDeviceEvents reports whether the recorder retains device-plane
// events — the solver only attaches the recorder to engine sessions
// (tiling.TraceSink) when this is true.
func (r *Run) WantsDeviceEvents() bool {
	return r.rec != nil && r.rec.kinds&DeviceKinds != 0
}

// Recorder returns the attached recorder (nil when untraced).
func (r *Run) Recorder() *Recorder { return r.rec }

func (r *Run) emit(ev Event) {
	foldInto(&r.ops, &r.meta, ev)
	if r.rec != nil && r.rec.kinds.Has(ev.Kind) {
		r.rec.record(ev)
	}
}

// mark closes a timing phase: the span since the previous mark is
// charged to phase.
func (r *Run) mark(phase int) {
	if !r.timing {
		return
	}
	now := nowNS()
	r.rec.addPhase(phase, now-r.lastNS)
	r.lastNS = now
}

// InitMVM records one pair's partial-sum initialization MVM set.
func (r *Run) InitMVM(pair int, diagonal bool) {
	r.emit(Event{Kind: KindInitMVM, Pair: int32(pair), Flag: diagonal})
}

// InitDone closes the initialization phase.
func (r *Run) InitDone() {
	r.mark(phaseInit)
	r.emit(Event{Kind: KindInitDone})
}

// GlobalStart opens global iteration iter with its selection size and
// noise level.
func (r *Run) GlobalStart(iter, selected int, phi float64) {
	r.emit(Event{Kind: KindGlobalStart, Iter: int32(iter), N: int64(selected), F: phi})
}

// LoadDone closes the load phase of iteration iter.
func (r *Run) LoadDone(iter, selected int) {
	r.emit(Event{Kind: KindLoadDone, Iter: int32(iter), N: int64(selected)})
}

// LocalBatch records one selected pair's completed local-iteration
// batch.
func (r *Run) LocalBatch(iter, pair int, diagonal bool) {
	r.emit(Event{Kind: KindLocalBatch, Iter: int32(iter), Pair: int32(pair), Flag: diagonal})
}

// LocalDone closes the local-compute phase of iteration iter.
func (r *Run) LocalDone(iter int) {
	r.mark(phaseLocal)
	r.emit(Event{Kind: KindLocalDone, Iter: int32(iter)})
}

// SyncPair records one pair's synchronization publish + gather.
func (r *Run) SyncPair(iter, pair int) {
	r.emit(Event{Kind: KindSyncPair, Iter: int32(iter), Pair: int32(pair)})
}

// SyncBlock records the reconciliation of one block column over copies
// local spin copies.
func (r *Run) SyncBlock(iter, block, copies int) {
	r.emit(Event{Kind: KindSyncBlock, Iter: int32(iter), Pair: int32(block), N: int64(copies)})
}

// SyncBarrier records the global synchronization barrier of iteration
// iter.
func (r *Run) SyncBarrier(iter int) {
	r.emit(Event{Kind: KindSyncBarrier, Iter: int32(iter)})
}

// Energy records an energy evaluation point: the best-so-far energy,
// the number of spins changed since the previous evaluation (0 when
// detail is off), and whether the best improved.
func (r *Run) Energy(iter int, best float64, flips int, improved bool) {
	r.emit(Event{Kind: KindEnergy, Iter: int32(iter), F: best, N: int64(flips), Flag: improved})
}

// Exchange records one attempted replica exchange between tempering
// rung `rung` and rung+1 at the boundary of global iteration iter:
// whether the swap was accepted and the energy difference
// E_rung - E_rung+1 the acceptance test saw. Emitted by the tempering
// driver on the lower rung's run, at most once per (iteration, rung).
func (r *Run) Exchange(iter, rung int, accepted bool, dE float64) {
	r.emit(Event{Kind: KindExchange, Iter: int32(iter), Pair: int32(rung), Flag: accepted, F: dE})
}

// GlobalEnd closes global iteration iter.
func (r *Run) GlobalEnd(iter int) {
	r.mark(phaseGlobal)
	r.emit(Event{Kind: KindGlobalEnd, Iter: int32(iter)})
}

// End closes the run. Any span since the last mark (a final partial
// iteration ended by an early return) is charged to the global phase.
func (r *Run) End() {
	r.mark(phaseGlobal)
	r.emit(Event{Kind: KindRunEnd})
}
