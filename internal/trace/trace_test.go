package trace

import (
	"testing"

	"sophie/internal/metrics"
)

func testMeta() Meta {
	return Meta{
		Nodes: 150, TileSize: 16, Tiles: 10, Pairs: 55,
		LocalIters: 7, GlobalIters: 3, TileFraction: 1,
		Stochastic: true, Seed: 42,
	}
}

// driveRun emits a small synthetic but structurally faithful run.
func driveRun(r *Run, meta Meta) {
	for pi := 0; pi < meta.Pairs; pi++ {
		r.InitMVM(pi, pi < meta.Tiles)
	}
	r.InitDone()
	for g := 1; g <= meta.GlobalIters; g++ {
		r.GlobalStart(g, meta.Pairs, 0.1)
		r.LoadDone(g, meta.Pairs)
		for pi := 0; pi < meta.Pairs; pi++ {
			r.LocalBatch(g, pi, pi < meta.Tiles)
		}
		r.LocalDone(g)
		for pi := 0; pi < meta.Pairs; pi++ {
			r.SyncPair(g, pi)
		}
		for b := 0; b < meta.Tiles; b++ {
			r.SyncBlock(g, b, 3)
		}
		r.SyncBarrier(g)
		r.Energy(g, -12.5, 4, true)
		r.GlobalEnd(g)
	}
	r.End()
}

func TestNilRecorderFoldsWithoutRecording(t *testing.T) {
	meta := testMeta()
	r := NewRun(meta, nil)
	driveRun(r, meta)
	ops := r.Ops()
	if ops.GlobalSyncs != uint64(meta.GlobalIters) {
		t.Fatalf("GlobalSyncs = %d, want %d", ops.GlobalSyncs, meta.GlobalIters)
	}
	if ops.LocalMVM8b == 0 || ops.GlueOps == 0 {
		t.Fatalf("fold did not accumulate: %+v", ops)
	}
	if r.WantsEnergyDetail() || r.WantsDeviceEvents() {
		t.Fatal("nil recorder must not want any detail")
	}
}

func TestFoldOpsMatchesLiveFold(t *testing.T) {
	meta := testMeta()
	rec := NewRecorder(Options{Capacity: 1 << 12})
	r := NewRun(meta, rec)
	driveRun(r, meta)
	snap := rec.Snapshot()
	if snap.Dropped != 0 {
		t.Fatalf("dropped %d events with ample capacity", snap.Dropped)
	}
	if snap.Runs != 1 {
		t.Fatalf("runs = %d, want 1", snap.Runs)
	}
	if snap.Meta != meta {
		t.Fatalf("meta = %+v, want %+v", snap.Meta, meta)
	}
	folded := FoldOps(snap.Meta, snap.Events)
	live := r.Ops()
	if folded != live {
		t.Fatalf("offline fold diverges from live fold:\ngot  %s\nwant %s",
			folded.String(), live.String())
	}
}

func TestFoldArithmeticPerEvent(t *testing.T) {
	meta := testMeta()
	tt := meta.TileSize
	l := meta.LocalIters
	cases := []struct {
		name string
		ev   Event
		want metrics.OpCounts
	}{
		{"init-diag", Event{Kind: KindInitMVM, Flag: true},
			metrics.OpCounts{LocalMVM8b: 1, ADCSamples8b: uint64(tt)}},
		{"init-off", Event{Kind: KindInitMVM},
			metrics.OpCounts{LocalMVM8b: 2, ADCSamples8b: uint64(2 * tt)}},
		{"load", Event{Kind: KindLoadDone, N: 5},
			metrics.OpCounts{
				GlueOps:       metrics.U64(5 * 2 * (meta.Tiles - 1) * tt),
				SRAMWriteBits: uint64(5 * 2 * tt * 9),
			}},
		{"local-diag", Event{Kind: KindLocalBatch, Flag: true},
			metrics.OpCounts{
				LocalMVM1b: metrics.U64(l - 1), LocalMVM8b: 1,
				ADCSamples1b: metrics.U64((l - 1) * tt), ADCSamples8b: uint64(tt),
				EOBits: uint64(l * tt),
			}},
		{"local-off", Event{Kind: KindLocalBatch},
			metrics.OpCounts{
				LocalMVM1b: metrics.U64(2*l - 2), LocalMVM8b: 2,
				ADCSamples1b: metrics.U64((2*l - 2) * tt), ADCSamples8b: uint64(2 * tt),
				EOBits: uint64(2 * l * tt),
			}},
		{"sync-pair", Event{Kind: KindSyncPair},
			metrics.OpCounts{
				SRAMReadBits:  uint64(2*tt*8 + 2*tt),
				DRAMWriteBits: uint64(2*tt*8 + 2*tt),
			}},
		{"sync-block", Event{Kind: KindSyncBlock, N: 3},
			metrics.OpCounts{GlueOps: uint64(tt), DRAMReadBits: uint64(3 * tt)}},
		{"barrier", Event{Kind: KindSyncBarrier}, metrics.OpCounts{GlobalSyncs: 1}},
		{"energy-no-charge", Event{Kind: KindEnergy, N: 9}, metrics.OpCounts{}},
	}
	for _, tc := range cases {
		var ops metrics.OpCounts
		foldInto(&ops, &meta, tc.ev)
		if ops != tc.want {
			t.Errorf("%s: fold = %+v, want %+v", tc.name, ops, tc.want)
		}
	}

	// Majority spin update charges glue per copy.
	majority := meta
	majority.Stochastic = false
	var ops metrics.OpCounts
	foldInto(&ops, &majority, Event{Kind: KindSyncBlock, N: 3})
	if ops.GlueOps != uint64(3*tt) {
		t.Errorf("majority sync-block glue = %d, want %d", ops.GlueOps, 3*tt)
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	rec := NewRecorder(Options{Capacity: 4, Kinds: AllKinds})
	for i := 0; i < 10; i++ {
		rec.record(Event{Kind: KindSyncBarrier, Iter: int32(i)})
	}
	snap := rec.Snapshot()
	if snap.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", snap.Dropped)
	}
	if len(snap.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(snap.Events))
	}
	for i, ev := range snap.Events {
		if want := int32(6 + i); ev.Iter != want {
			t.Fatalf("event %d has iter %d, want %d (oldest-first order)", i, ev.Iter, want)
		}
	}
}

func TestDeviceSampling(t *testing.T) {
	rec := NewRecorder(Options{Capacity: 1 << 10, Kinds: AllKinds, SampleDeviceEvery: 4})
	for i := 0; i < 10; i++ {
		rec.Device(Event{Kind: KindDeviceMVM, Pair: int32(i)})
	}
	rec.Device(Event{Kind: KindReprogram, Pair: 1, N: 2 * 16 * 16})
	snap := rec.Snapshot()
	if snap.DeviceMVMs != 10 {
		t.Fatalf("device MVMs seen = %d, want 10", snap.DeviceMVMs)
	}
	if got := snap.EventsOf(KindDeviceMVM); got != 3 { // indices 0, 4, 8
		t.Fatalf("sampled device events = %d, want 3", got)
	}
	if got := snap.EventsOf(KindReprogram); got != 1 {
		t.Fatalf("reprogram events = %d, want 1 (never sampled out)", got)
	}
}

func TestKindMaskFiltering(t *testing.T) {
	rec := NewRecorder(Options{Capacity: 64, Kinds: MaskOf(KindEnergy, KindRunStart)})
	meta := testMeta()
	r := NewRun(meta, rec)
	driveRun(r, meta)
	snap := rec.Snapshot()
	for _, ev := range snap.Events {
		if ev.Kind != KindEnergy && ev.Kind != KindRunStart {
			t.Fatalf("mask leaked kind %v", ev.Kind)
		}
	}
	if snap.EventsOf(KindEnergy) != meta.GlobalIters {
		t.Fatalf("energy events = %d, want %d", snap.EventsOf(KindEnergy), meta.GlobalIters)
	}
	// Filtering must not change the fold.
	if r.Ops().GlobalSyncs != uint64(meta.GlobalIters) {
		t.Fatal("kind filtering changed the live fold")
	}
	if !r.WantsEnergyDetail() {
		t.Fatal("recorder retains KindEnergy but WantsEnergyDetail is false")
	}
	if r.WantsDeviceEvents() {
		t.Fatal("recorder has no device kinds but WantsDeviceEvents is true")
	}
}

func TestNilRecorderMethodsAreSafe(t *testing.T) {
	var rec *Recorder
	rec.Device(Event{Kind: KindDeviceMVM})
	rec.AddReprogramTime(5)
	if rec.Wants(KindEnergy) {
		t.Fatal("nil recorder wants events")
	}
	snap := rec.Snapshot()
	if len(snap.Events) != 0 || snap.Runs != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
	if ph := rec.PhaseTimes(); ph != (Phases{}) {
		t.Fatalf("nil phases not zero: %+v", ph)
	}
	var prog *Progress
	if s := prog.Snapshot(); s != (ProgressSnapshot{}) {
		t.Fatalf("nil progress snapshot not zero: %+v", s)
	}
}

func TestProgressReducer(t *testing.T) {
	p := NewProgress()
	rec := NewRecorder(Options{Capacity: 8, Kinds: MaskOf(KindRunStart, KindRunEnd, KindEnergy), OnEvent: p.Observe})
	meta := testMeta()
	r := NewRun(meta, rec)
	r.Energy(1, -3, 2, true)
	r.Energy(2, -7.5, 5, true)
	r.Energy(3, -7.5, 0, false)
	r.End()
	s := p.Snapshot()
	if s.GlobalIter != 3 {
		t.Fatalf("iter = %d, want 3", s.GlobalIter)
	}
	if !s.HasEnergy || s.BestEnergy != -7.5 {
		t.Fatalf("best = %v (has %v), want -7.5", s.BestEnergy, s.HasEnergy)
	}
	if s.Flips != 7 {
		t.Fatalf("flips = %d, want 7", s.Flips)
	}
	if s.RunsStarted != 1 || s.RunsDone != 1 {
		t.Fatalf("runs = %d/%d, want 1/1", s.RunsStarted, s.RunsDone)
	}
	if s.Events != 5 { // run-start + 3 energies + run-end
		t.Fatalf("events = %d, want 5", s.Events)
	}
}

func TestPhaseTimingAccumulates(t *testing.T) {
	rec := NewRecorder(Options{Capacity: 256, Timing: true})
	meta := testMeta()
	r := NewRun(meta, rec)
	driveRun(r, meta)
	ph := rec.PhaseTimes()
	if ph.InitNS < 0 || ph.LocalNS < 0 || ph.GlobalNS < 0 {
		t.Fatalf("negative phase time: %+v", ph)
	}
	if ph.TotalNS() != ph.InitNS+ph.LocalNS+ph.GlobalNS+ph.ReprogramNS {
		t.Fatalf("TotalNS inconsistent: %+v", ph)
	}
	rec.AddReprogramTime(1000)
	if got := rec.PhaseTimes().ReprogramNS; got != ph.ReprogramNS+1000 {
		t.Fatalf("reprogram phase = %d, want %d", got, ph.ReprogramNS+1000)
	}
	// Without Timing, phases stay zero.
	rec2 := NewRecorder(Options{Capacity: 256})
	r2 := NewRun(meta, rec2)
	driveRun(r2, meta)
	if ph2 := rec2.PhaseTimes(); ph2 != (Phases{}) {
		t.Fatalf("timing off but phases accumulated: %+v", ph2)
	}
}

func TestKindStringAndMasks(t *testing.T) {
	if KindLocalBatch.String() != "local-batch" {
		t.Fatalf("KindLocalBatch = %q", KindLocalBatch.String())
	}
	if !ControlKinds.Has(KindRunEnd) || ControlKinds.Has(KindDeviceMVM) {
		t.Fatal("ControlKinds boundary wrong")
	}
	if !DeviceKinds.Has(KindDeviceMVM) || !DeviceKinds.Has(KindReprogram) {
		t.Fatal("DeviceKinds incomplete")
	}
	if AllKinds != ControlKinds|DeviceKinds {
		t.Fatal("AllKinds != ControlKinds|DeviceKinds")
	}
}
