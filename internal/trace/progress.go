package trace

import "sync"

// Progress is a streaming reducer over an event stream: attach its
// Observe method as Options.OnEvent and poll Snapshot for live run
// state — the sophied job service uses one per running job to answer
// GET /v1/jobs/{id} while the batch executes. Several concurrent runs
// (batch replicas) sharing one recorder reduce into a single Progress:
// the iteration is the furthest any replica reached, the energy the
// best any replica found, flips accumulate across replicas.
type Progress struct {
	mu          sync.Mutex
	startNS     int64
	runsStarted int
	runsDone    int
	iter        int32
	hasEnergy   bool
	best        float64
	flips       int64
	events      uint64
	exchanges   int64
	exchAccept  int64
}

// NewProgress returns an empty reducer.
func NewProgress() *Progress { return &Progress{} }

// Observe reduces one event; pass it as Options.OnEvent.
func (p *Progress) Observe(ev Event) {
	p.mu.Lock()
	p.events++
	switch ev.Kind {
	case KindRunStart:
		p.runsStarted++
		if p.startNS == 0 {
			p.startNS = nowNS()
		}
	case KindRunEnd:
		p.runsDone++
	case KindEnergy:
		if ev.Iter > p.iter {
			p.iter = ev.Iter
		}
		if !p.hasEnergy || ev.F < p.best {
			p.hasEnergy = true
			p.best = ev.F
		}
		p.flips += ev.N
	case KindExchange:
		p.exchanges++
		if ev.Flag {
			p.exchAccept++
		}
	}
	p.mu.Unlock()
}

// ProgressSnapshot is a point-in-time view of a running (or finished)
// traced execution.
type ProgressSnapshot struct {
	// GlobalIter is the furthest evaluated global iteration across the
	// observed runs; 0 before the first evaluation.
	GlobalIter int `json:"global_iter"`
	// BestEnergy is the best energy any observed run reported; valid
	// only when HasEnergy.
	BestEnergy float64 `json:"best_energy"`
	HasEnergy  bool    `json:"-"`
	// Flips is the cumulative spin-flip count across evaluations (0 when
	// the emitting runs had flip detail off).
	Flips int64 `json:"flips"`
	// FlipsPerSec is Flips over the wall time since the first run
	// started.
	FlipsPerSec float64 `json:"flips_per_sec"`
	// Exchanges / ExchangesAccepted count replica-exchange attempts and
	// acceptances observed so far (tempering runs only; both 0 for the
	// independent-replica portfolio).
	Exchanges         int64 `json:"exchanges,omitempty"`
	ExchangesAccepted int64 `json:"exchanges_accepted,omitempty"`
	// RunsStarted / RunsDone count replicas over the recorder.
	RunsStarted int `json:"runs_started"`
	RunsDone    int `json:"runs_done"`
	// Events counts every observed event.
	Events uint64 `json:"events"`
	// ElapsedS is the wall time since the first run started.
	ElapsedS float64 `json:"elapsed_s"`
}

// Snapshot returns the current reduction. Nil-safe.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		GlobalIter:        int(p.iter),
		BestEnergy:        p.best,
		HasEnergy:         p.hasEnergy,
		Flips:             p.flips,
		Exchanges:         p.exchanges,
		ExchangesAccepted: p.exchAccept,
		RunsStarted:       p.runsStarted,
		RunsDone:          p.runsDone,
		Events:            p.events,
	}
	if p.startNS != 0 {
		s.ElapsedS = float64(nowNS()-p.startNS) / 1e9
		if s.ElapsedS > 0 {
			s.FlipsPerSec = float64(p.flips) / s.ElapsedS
		}
	}
	return s
}
