package trace

import "sophie/internal/metrics"

// foldInto applies one event's operation charges to ops. This is the
// single definition of SOPHIE's op accounting: the solver's live
// counters (Run) and any offline replay (FoldOps) both run events
// through it, so the two can never diverge — the counters ARE a fold
// over the event stream. The arithmetic reproduces, site for site, the
// charges the solver historically applied inline (see the golden pin in
// internal/core's trace tests and the analytic model in delta_test.go).
func foldInto(ops *metrics.OpCounts, m *Meta, ev Event) {
	t := m.TileSize
	switch ev.Kind {
	case KindInitMVM:
		// Partial-sum initialization: a diagonal pair executes one 8-bit
		// MVM, an off-diagonal pair two (Section III-E).
		if ev.Flag {
			ops.LocalMVM8b++
			ops.ADCSamples8b += metrics.U64(t)
		} else {
			ops.LocalMVM8b += 2
			ops.ADCSamples8b += metrics.U64(2 * t)
		}
	case KindLoadDone:
		// Load phase: each selected pair gathers two offset vectors over
		// Tiles-1 source blocks and writes spins (1b) + offsets (8b)
		// into its SRAM buffers.
		sel := int(ev.N)
		ops.GlueOps += metrics.U64(sel * 2 * (m.Tiles - 1) * t)
		ops.SRAMWriteBits += metrics.U64(sel * 2 * t * (1 + 8))
	case KindLocalBatch:
		// One pair's local-iteration batch: L MVMs per direction, the
		// last through the 8-bit ADC; every iteration streams t bits per
		// direction through the E-O modulators.
		l := m.LocalIters
		if ev.Flag {
			ops.LocalMVM1b += metrics.U64(l - 1)
			ops.LocalMVM8b++
			ops.ADCSamples1b += metrics.U64((l - 1) * t)
			ops.ADCSamples8b += metrics.U64(t)
			ops.EOBits += metrics.U64(l * t)
		} else {
			ops.LocalMVM1b += metrics.U64(2*l - 2)
			ops.LocalMVM8b += 2
			ops.ADCSamples1b += metrics.U64((2*l - 2) * t)
			ops.ADCSamples8b += metrics.U64(2 * t)
			ops.EOBits += metrics.U64(2 * l * t)
		}
	case KindSyncPair:
		// Synchronization publish + gather for one pair: two 8-bit
		// partial-sum vectors and two 1-bit spin copies leave SRAM for
		// the interposer DRAM.
		ops.SRAMReadBits += metrics.U64(2*t*8 + 2*t)
		ops.DRAMWriteBits += metrics.U64(2*t*8 + 2*t)
	case KindSyncBlock:
		// Reconciliation of one block column's N spin copies: a
		// stochastic pick costs t glue ops regardless of copy count, a
		// majority vote t per copy; the result broadcasts back to every
		// copy-holding tile.
		copies := int(ev.N)
		if m.Stochastic {
			ops.GlueOps += metrics.U64(t)
		} else {
			ops.GlueOps += metrics.U64(t * copies)
		}
		ops.DRAMReadBits += metrics.U64(t * copies)
	case KindSyncBarrier:
		ops.GlobalSyncs++
	case KindExchange:
		// One attempted replica exchange: the controller compares the two
		// rungs' energies and draws one uniform (a handful of glue ops);
		// an accepted swap migrates both rungs' DRAM-resident global
		// state — spin vector plus partial-sum table — between the two
		// replicas (the controller could remap ownership instead, so this
		// is the upper bound of a copying implementation).
		ops.GlueOps += 4
		if ev.Flag {
			paddedN := m.Tiles * t
			stateBits := paddedN + m.Tiles*paddedN*8 // 1b spins + 8b partial table rows
			ops.DRAMReadBits += metrics.U64(2 * stateBits)
			ops.DRAMWriteBits += metrics.U64(2 * stateBits)
		}
	}
}

// FoldOps replays an event stream through the fold and returns the
// accumulated operation counters — field-identical to the Result.Ops of
// the run that emitted the stream, provided no events were dropped.
func FoldOps(meta Meta, events []Event) metrics.OpCounts {
	var ops metrics.OpCounts
	for _, ev := range events {
		foldInto(&ops, &meta, ev)
	}
	return ops
}
