// Package trace is the execution-event spine of the SOPHIE simulator
// (DESIGN.md "Execution trace spine"): one typed event stream emitted by
// the solver's controller loop and, optionally, by the device model,
// consumed by every layer that previously kept its own parallel
// accounting. The op counters of a run (metrics.OpCounts) are a fold
// over this stream (fold.go), the trace-driven PPA replay
// (arch.SimulateTrace) walks it round by round, the job service reduces
// it into live progress (Progress), and the benchmark harness reads its
// phase accumulators.
//
// The hot-path contract: with no Recorder attached the per-run emitter
// (Run) only performs the fold arithmetic — no allocation, no locking,
// no time reads — so an untraced solve pays nothing beyond the counter
// updates it always did. With a Recorder attached, events are copied
// into a preallocated ring under a mutex; device-level events
// (KindDeviceMVM) are additionally sampled to bound their volume.
package trace

import (
	"sync"
	"time"
)

// Kind identifies an event type. Control-plane kinds (emitted by the
// solver's controller loop, at most a few per pair per global iteration)
// come first; device-plane kinds (emitted inside the device model, one
// per physical MVM) follow so the two planes form contiguous masks.
type Kind uint8

const (
	// KindRunStart opens one solver run; N carries the job seed.
	KindRunStart Kind = iota
	// KindInitMVM is one pair's partial-sum initialization MVM set
	// (Pair = pair index, Flag = diagonal pair).
	KindInitMVM
	// KindInitDone closes the initialization phase (timing mark).
	KindInitDone
	// KindGlobalStart opens global iteration Iter; N is the number of
	// selected pairs, F the (possibly annealed) noise level φ.
	KindGlobalStart
	// KindLoadDone closes the load phase of iteration Iter; N is the
	// number of selected pairs (the fold charges glue and SRAM traffic).
	KindLoadDone
	// KindLocalBatch is one selected pair's completed local-iteration
	// batch (Pair = pair index, Flag = diagonal pair).
	KindLocalBatch
	// KindLocalDone closes the local-compute phase of iteration Iter
	// (timing mark).
	KindLocalDone
	// KindSyncPair is one selected pair publishing its partial sums and
	// spin copies at global synchronization (Pair = pair index).
	KindSyncPair
	// KindSyncBlock is one block column's spin reconciliation
	// (Pair = block index, N = number of local copies merged).
	KindSyncBlock
	// KindSyncBarrier is the global synchronization barrier of iteration
	// Iter — the fold's GlobalSyncs increment.
	KindSyncBarrier
	// KindEnergy is an energy evaluation point: F = best-so-far energy,
	// N = spins changed since the previous evaluation (0 when flip
	// counting is disabled), Flag = the best energy improved.
	KindEnergy
	// KindGlobalEnd closes global iteration Iter (timing mark).
	KindGlobalEnd
	// KindRunEnd closes the run.
	KindRunEnd
	// KindExchange is one attempted replica exchange of the tempering
	// portfolio runtime at a global-iteration boundary (Iter = global
	// iteration, Pair = lower rung index of the adjacent pair, Flag =
	// accepted, F = the energy difference E_low - E_high the acceptance
	// test saw). Emitted on the lower rung's run.
	KindExchange
	// KindDeviceMVM is one physical array MVM inside the device model
	// (Pair = pair index, Flag = transposed). Sampled, never folded.
	KindDeviceMVM
	// KindReprogram is one OPCM array (re)programming event
	// (Pair = pair index, N = GST cell writes).
	KindReprogram

	numKinds
)

var kindNames = [numKinds]string{
	"run-start", "init-mvm", "init-done", "global-start", "load-done",
	"local-batch", "local-done", "sync-pair", "sync-block", "sync-barrier",
	"energy", "global-end", "run-end", "exchange", "device-mvm", "reprogram",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// KindMask selects which kinds a Recorder retains.
type KindMask uint32

// Mask returns the single-kind mask.
func (k Kind) Mask() KindMask { return 1 << k }

// Has reports whether the mask contains k.
func (m KindMask) Has(k Kind) bool { return m&k.Mask() != 0 }

// MaskOf builds a mask from kinds.
func MaskOf(kinds ...Kind) KindMask {
	var m KindMask
	for _, k := range kinds {
		m |= k.Mask()
	}
	return m
}

const (
	// ControlKinds selects every controller-loop event — everything the
	// op-count fold and the PPA replay need.
	ControlKinds KindMask = 1<<KindDeviceMVM - 1
	// DeviceKinds selects the device-plane events (per-MVM, reprogram).
	DeviceKinds KindMask = 1<<KindDeviceMVM | 1<<KindReprogram
	// AllKinds selects everything.
	AllKinds KindMask = ControlKinds | DeviceKinds
)

// Event is one execution event. It is a 32-byte value type: emitting
// one allocates nothing, and a Recorder ring of them is a single flat
// preallocation. Field meaning depends on Kind (see the Kind docs);
// unused fields are zero.
type Event struct {
	Kind Kind
	Flag bool
	Iter int32
	Pair int32
	N    int64
	F    float64
}

// Meta is the run geometry the fold and the replay need to interpret
// events: the same quantities the solver's counter arithmetic read from
// its config and grid.
type Meta struct {
	// Nodes is the logical problem order; TileSize/Tiles/Pairs describe
	// the tile grid (Pairs = Tiles·(Tiles+1)/2).
	Nodes, TileSize, Tiles, Pairs int
	// LocalIters/GlobalIters/TileFraction mirror the solver config.
	LocalIters, GlobalIters int
	TileFraction            float64
	// Stochastic reports the stochastic spin update (vs majority).
	Stochastic bool
	// Seed is the job seed of the first recorded run.
	Seed int64
	// Device reports that MVMs ran through the OPCM device model.
	Device bool
}

// Phases accumulates wall time per execution phase (Options.Timing):
// initialization, local compute (selection + load + local iterations),
// global reconciliation (sync + energy evaluation), and device
// reprogramming. With several runs sharing one Recorder the
// accumulators sum across runs — CPU time, not wall time.
type Phases struct {
	InitNS, LocalNS, GlobalNS, ReprogramNS int64
}

// TotalNS sums the phase accumulators.
func (p Phases) TotalNS() int64 { return p.InitNS + p.LocalNS + p.GlobalNS + p.ReprogramNS }

const (
	phaseInit = iota
	phaseLocal
	phaseGlobal
)

// Options configures a Recorder.
type Options struct {
	// Capacity is the event ring size; when full the oldest events are
	// overwritten and counted in Recording.Dropped. 0 means 65536.
	Capacity int
	// Kinds selects which event kinds are retained. 0 means ControlKinds
	// (device-plane events off — they are per-MVM and dominate volume).
	Kinds KindMask
	// SampleDeviceEvery keeps one of every that many KindDeviceMVM
	// events (the total seen is still counted). 0 means 64; 1 keeps all.
	SampleDeviceEvery int
	// Timing stamps phase boundaries with wall-clock reads, populating
	// Recording.Phases. Off by default: time reads on the hot path cost
	// more than the event copies.
	Timing bool
	// OnEvent, when non-nil, observes every retained event in emission
	// order, under the recorder lock — keep it fast (the Progress
	// reducer is the intended subscriber).
	OnEvent func(Event)
}

// Recorder retains an event stream: a preallocated overwrite-oldest
// ring plus a kind mask, device sampling, optional phase timing, and an
// optional subscriber. All methods are nil-safe no-ops on a nil
// receiver, which is the default (untraced) configuration. A Recorder
// may be shared by concurrent runs; retention is mutex-serialized.
type Recorder struct {
	kinds   KindMask
	sample  int64
	timing  bool
	onEvent func(Event)

	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped uint64
	meta    Meta
	metaSet bool
	runs    int
	devSeen uint64
	phases  Phases
}

// NewRecorder builds a recorder from opts (zero value = defaults).
func NewRecorder(opts Options) *Recorder {
	if opts.Capacity <= 0 {
		opts.Capacity = 1 << 16
	}
	if opts.Kinds == 0 {
		opts.Kinds = ControlKinds
	}
	if opts.SampleDeviceEvery <= 0 {
		opts.SampleDeviceEvery = 64
	}
	return &Recorder{
		kinds:   opts.Kinds,
		sample:  int64(opts.SampleDeviceEvery),
		timing:  opts.Timing,
		onEvent: opts.OnEvent,
		buf:     make([]Event, opts.Capacity),
	}
}

// Wants reports whether the recorder retains events of kind k — layers
// use it to skip computing event payloads nobody will see. Nil-safe.
func (r *Recorder) Wants(k Kind) bool { return r != nil && r.kinds.Has(k) }

// record retains one event (already kind-filtered by the caller or by
// the exported emission helpers).
func (r *Recorder) record(ev Event) {
	r.mu.Lock()
	r.pushLocked(ev)
	r.mu.Unlock()
}

func (r *Recorder) pushLocked(ev Event) {
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	if r.onEvent != nil {
		r.onEvent(ev)
	}
}

// Device emits one device-plane event (KindDeviceMVM or KindReprogram)
// from inside an engine or session. KindDeviceMVM is sampled per
// Options.SampleDeviceEvery; the unsampled total is still counted
// (Recording.DeviceMVMs). Nil-safe.
func (r *Recorder) Device(ev Event) {
	if r == nil || !r.kinds.Has(ev.Kind) {
		return
	}
	r.mu.Lock()
	if ev.Kind == KindDeviceMVM {
		r.devSeen++
		if (r.devSeen-1)%uint64(r.sample) != 0 {
			r.mu.Unlock()
			return
		}
	}
	r.pushLocked(ev)
	r.mu.Unlock()
}

// AddReprogramTime charges d to the reprogramming phase accumulator
// (the device model measures its own programming spans). Nil-safe;
// no-op when timing is off.
func (r *Recorder) AddReprogramTime(d time.Duration) {
	if r == nil || !r.timing {
		return
	}
	r.mu.Lock()
	r.phases.ReprogramNS += int64(d)
	r.mu.Unlock()
}

func (r *Recorder) addPhase(phase int, ns int64) {
	r.mu.Lock()
	switch phase {
	case phaseInit:
		r.phases.InitNS += ns
	case phaseLocal:
		r.phases.LocalNS += ns
	default:
		r.phases.GlobalNS += ns
	}
	r.mu.Unlock()
}

// beginRun registers a run against the recorder; the first run's meta
// becomes the recording's meta.
func (r *Recorder) beginRun(meta Meta) {
	r.mu.Lock()
	r.runs++
	if !r.metaSet {
		r.meta = meta
		r.metaSet = true
	}
	r.mu.Unlock()
}

// Recording is a consistent snapshot of a Recorder.
type Recording struct {
	// Meta is the geometry of the first recorded run.
	Meta Meta
	// Events holds the retained events in emission order (oldest first).
	Events []Event
	// Dropped counts events overwritten after the ring filled; a replay
	// (arch.SimulateTrace) refuses a recording with drops.
	Dropped uint64
	// Runs counts runs that started against this recorder.
	Runs int
	// DeviceMVMs counts every device MVM seen, including sampled-out ones.
	DeviceMVMs uint64
	// Phases holds the phase-time accumulators (zero unless
	// Options.Timing was set).
	Phases Phases
}

// Snapshot copies the recorder state. Nil-safe (returns a zero
// Recording).
func (r *Recorder) Snapshot() Recording {
	if r == nil {
		return Recording{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := Recording{
		Meta:       r.meta,
		Dropped:    r.dropped,
		Runs:       r.runs,
		DeviceMVMs: r.devSeen,
		Phases:     r.phases,
	}
	n := r.next
	if r.full {
		n = len(r.buf)
		rec.Events = make([]Event, 0, n)
		rec.Events = append(rec.Events, r.buf[r.next:]...)
		rec.Events = append(rec.Events, r.buf[:r.next]...)
	} else {
		rec.Events = append(rec.Events, r.buf[:n]...)
	}
	return rec
}

// Phases returns the phase-time accumulators. Nil-safe.
func (r *Recorder) PhaseTimes() Phases {
	if r == nil {
		return Phases{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phases
}

// EventsOf counts the recording's events of kind k.
func (r Recording) EventsOf(k Kind) int {
	n := 0
	for _, ev := range r.Events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

func nowNS() int64 { return time.Now().UnixNano() }
