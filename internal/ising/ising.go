// Package ising defines the Ising model abstraction shared by all
// solvers: the coupling matrix K and Hamiltonian of Eq. 1, conversions
// between the {0,1} spin encoding used by PRIS/SOPHIE and the ±1 physics
// encoding, and reductions from combinatorial problems (max-cut, QUBO,
// number partitioning) onto Ising ground-state search (Section II-B).
package ising

import (
	"fmt"
	"math"

	"sophie/internal/graph"
	"sophie/internal/linalg"
)

// Model is an Ising model H = -½ Σ σᵢKᵢⱼσⱼ - Σ hᵢσᵢ over spins
// σ ∈ {-1,+1}ᴺ with a symmetric coupling matrix K whose diagonal is
// zero and an optional linear bias (external field) h. The couplings
// live either densely (NewModel) or in CSR form (NewModelCSR) —
// sparse-built models never materialize the n×n matrix, which is what
// makes million-spin instances representable, and every energy computed
// over them is bit-identical to the dense evaluation of the same
// couplings (skipped zero terms are exact ±0 additions; see the linalg
// bit-exactness contract).
//
// The field is what lets the problem compiler (internal/problem) lower
// QUBOs and penalty reductions without ancilla spins: a nil h selects
// exactly the pre-field code in every energy walk and in the solver
// datapath (the field enters the recurrence purely as a per-node
// threshold shift, see internal/pris), so field-free models — max-cut
// in particular — are bit-identical to the pre-field implementation.
type Model struct {
	n  int
	k  *linalg.Matrix // dense couplings; nil for sparse-built models
	ks *linalg.CSR    // sparse couplings; set only by sparse construction
	h  []float64      // linear bias hᵢ; nil means no external field
}

// NewModel wraps a symmetric coupling matrix. The diagonal is zeroed
// (self-coupling only shifts the energy by a constant). It returns an
// error if k is not square or not symmetric.
func NewModel(k *linalg.Matrix) (*Model, error) {
	if k.Rows() != k.Cols() {
		return nil, fmt.Errorf("ising: coupling matrix must be square, got %dx%d", k.Rows(), k.Cols())
	}
	if !k.IsSymmetric(1e-9 * (1 + k.MaxAbs())) {
		return nil, fmt.Errorf("ising: coupling matrix must be symmetric")
	}
	c := k.Clone()
	for i := 0; i < c.Rows(); i++ {
		c.Set(i, i, 0)
	}
	return &Model{n: c.Rows(), k: c}, nil
}

// NewModelCSR wraps a symmetric CSR coupling matrix without densifying
// it. Diagonal entries are dropped (self-coupling only shifts the
// energy by a constant); symmetry is checked with the same relative
// tolerance as NewModel. The model retains k, which must not change
// afterwards.
func NewModelCSR(k *linalg.CSR) (*Model, error) {
	n := k.Order()
	maxAbs := 0.0
	hasDiag := false
	k.Scan(func(i, j int, v float64) {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		if i == j {
			hasDiag = true
		}
	})
	tol := 1e-9 * (1 + maxAbs)
	var asym error
	k.Scan(func(i, j int, v float64) {
		if asym != nil || i == j {
			return
		}
		if math.Abs(v-k.At(j, i)) > tol {
			asym = fmt.Errorf("ising: coupling matrix must be symmetric: K[%d][%d]=%v, K[%d][%d]=%v", i, j, v, j, i, k.At(j, i))
		}
	})
	if asym != nil {
		return nil, asym
	}
	if hasDiag {
		entries := make([]linalg.Entry, 0, k.NNZ())
		k.Scan(func(i, j int, v float64) {
			if i != j {
				entries = append(entries, linalg.Entry{Row: i, Col: j, Val: v})
			}
		})
		clean, err := linalg.NewCSRGeneral(n, entries)
		if err != nil {
			return nil, err
		}
		k = clean
	}
	return &Model{n: n, ks: k}, nil
}

// FromMaxCut builds the Ising model whose ground state solves max-cut on
// g: K = -A so that minimizing H maximizes the cut.
func FromMaxCut(g *graph.Graph) *Model {
	m, err := NewModel(g.CouplingMatrix())
	if err != nil {
		panic(err) // coupling matrices from graphs are symmetric by construction
	}
	return m
}

// FromMaxCutCSR is FromMaxCut over the CSR coupling form: the model is
// built straight from the graph's edge list, never allocating the dense
// matrix — the constructor for instances too large to densify.
func FromMaxCutCSR(g *graph.Graph) *Model {
	m, err := NewModelCSR(g.CouplingCSR())
	if err != nil {
		panic(err) // coupling matrices from graphs are symmetric by construction
	}
	return m
}

// WithField returns a model sharing this model's couplings with the
// external field h installed: H gains the -Σ hᵢσᵢ term, and the solver
// datapath shifts node i's threshold by -hᵢ/2 (internal/pris). The
// slice is copied; a nil or all-omitted h is rejected to keep "no
// field" spelled one way (the nil field of the base constructors).
func (m *Model) WithField(h []float64) (*Model, error) {
	if len(h) != m.n {
		return nil, fmt.Errorf("ising: field has %d entries for %d spins", len(h), m.n)
	}
	for i, v := range h {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("ising: field[%d] = %v is not finite", i, v)
		}
	}
	out := *m
	out.h = append([]float64(nil), h...)
	return &out, nil
}

// Field returns the external field, or nil when the model has none.
// Callers must not modify the slice.
func (m *Model) Field() []float64 { return m.h }

// HasField reports whether the model carries a linear bias term.
func (m *Model) HasField() bool { return m.h != nil }

// N returns the number of spins.
func (m *Model) N() int { return m.n }

// HasDense reports whether the model carries dense couplings.
// Sparse-built models (NewModelCSR, FromMaxCutCSR) do not, and can only
// run on the sparse solver datapath.
func (m *Model) HasDense() bool { return m.k != nil }

// Coupling returns the dense coupling matrix. Callers must not modify
// it. It panics on a sparse-built model — use Sparse there.
func (m *Model) Coupling() *linalg.Matrix {
	if m.k == nil {
		panic("ising: sparse-built model has no dense coupling matrix; use Sparse")
	}
	return m.k
}

// Sparse returns the couplings in CSR form: the retained matrix for
// sparse-built models, or a fresh conversion for dense-built ones.
// Callers must not modify the result.
func (m *Model) Sparse() (*linalg.CSR, error) {
	if m.ks != nil {
		return m.ks, nil
	}
	return linalg.NewCSRFromDense(m.k)
}

// Energy evaluates the Hamiltonian H = -½ Σ σᵢKᵢⱼσⱼ - Σ hᵢσᵢ (Eq. 1
// plus the optional linear bias) for ±1 spins. With no field the
// arithmetic is exactly the field-free walk — no extra terms, not even
// exact zeros — preserving bit-identity with pre-field results.
func (m *Model) Energy(spins []int8) float64 {
	if len(spins) != m.N() {
		panic(fmt.Sprintf("ising: Energy got %d spins for %d-spin model", len(spins), m.N()))
	}
	h := 0.0
	if m.k == nil {
		// Sparse walk: the stored upper-triangle entries are exactly the
		// non-zero terms of the dense loop below, visited in the same
		// row-major order, so the sum is bit-identical.
		m.ks.Scan(func(i, j int, v float64) {
			if j > i {
				h += float64(spins[i]) * v * float64(spins[j])
			}
		})
		return -h - m.fieldEnergy(spins)
	}
	n := m.N()
	for i := 0; i < n; i++ {
		row := m.k.Row(i)
		si := float64(spins[i])
		for j := i + 1; j < n; j++ {
			h += si * row[j] * float64(spins[j])
		}
	}
	// -½ Σ_{i,j} = -Σ_{i<j} by symmetry
	return -h - m.fieldEnergy(spins)
}

// fieldEnergy returns Σ hᵢσᵢ, or exactly 0.0 for field-free models so
// `-h - 0` reproduces the pre-field `-h` bit for bit (x - 0 == x for
// every float64 x, including -0: -0 - 0 = -0).
func (m *Model) fieldEnergy(spins []int8) float64 {
	if m.h == nil {
		return 0
	}
	e := 0.0
	for i, hi := range m.h {
		e += hi * float64(spins[i])
	}
	return e
}

// EnergyDelta returns the energy change from flipping spin i, computed in
// O(N) without re-evaluating the full Hamiltonian. Flipping σᵢ changes H
// by 2·σᵢ·(Σⱼ Kᵢⱼσⱼ + hᵢ). Field-free models skip the hᵢ addition
// entirely, keeping the accumulation bit-identical to pre-field code.
func (m *Model) EnergyDelta(spins []int8, i int) float64 {
	field := 0.0
	if m.k == nil {
		// O(degree) row scan, bit-identical to the dense O(N) loop: the
		// skipped couplings contribute exact ±0 terms.
		m.ks.ScanRow(i, func(j int, v float64) {
			field += v * float64(spins[j])
		})
		if m.h != nil {
			field += m.h[i]
		}
		return 2 * float64(spins[i]) * field
	}
	row := m.k.Row(i)
	for j, kij := range row {
		field += kij * float64(spins[j])
	}
	if m.h != nil {
		field += m.h[i]
	}
	return 2 * float64(spins[i]) * field
}

// IntegerCouplings reports whether every coupling is an integer small
// enough that any energy computed over the model — full Hamiltonian
// walks and accumulated EnergyDelta updates alike — stays inside the
// exactly representable float64 integer range. When it holds,
// incremental energy tracking (core's fast path) is bit-identical to
// re-walking every edge; graph reductions with unit or small integer
// weights (the G-set, K-graphs) all qualify. The scan is O(N²) but runs
// once per solver build.
func (m *Model) IntegerCouplings() bool {
	n := m.N()
	if n == 0 {
		return true
	}
	// Each energy term and each accumulated delta is a sum of at most
	// n² couplings (plus n field entries, which the same bound covers);
	// keep the worst-case magnitude below 2⁵².
	limit := math.Exp2(52) / (float64(n) * float64(n))
	intWithin := func(v float64) bool {
		return math.Trunc(v)-v == 0 && math.Abs(v) <= limit
	}
	for _, v := range m.h {
		if !intWithin(v) {
			return false
		}
	}
	if m.k == nil {
		ok := true
		m.ks.Scan(func(_, _ int, v float64) {
			if !intWithin(v) {
				ok = false
			}
		})
		return ok
	}
	for i := 0; i < n; i++ {
		for _, v := range m.k.Row(i) {
			if !intWithin(v) {
				return false
			}
		}
	}
	return true
}

// SpinsToBinary converts ±1 spins to the {0,1} encoding used by the PRIS
// recurrence (σ=+1 → 1, σ=-1 → 0).
func SpinsToBinary(spins []int8) []float64 {
	b := make([]float64, len(spins))
	for i, s := range spins {
		if s == 1 {
			b[i] = 1
		} else if s != -1 {
			panic(fmt.Sprintf("ising: invalid spin %d at %d", s, i))
		}
	}
	return b
}

// BinaryToSpins converts {0,1} states back to ±1 spins. Any nonzero
// value maps to +1.
func BinaryToSpins(binary []float64) []int8 {
	s := make([]int8, len(binary))
	for i, b := range binary {
		if b != 0 {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}

// RandomSpins returns n spins drawn ±1 from the given source function,
// which should return uniformly distributed booleans.
func RandomSpins(n int, coin func() bool) []int8 {
	s := make([]int8, n)
	for i := range s {
		if coin() {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}

// QUBO is a quadratic unconstrained binary optimization problem:
// minimize xᵀQx over x ∈ {0,1}ⁿ, with Q symmetric (the diagonal holds
// the linear terms).
type QUBO struct {
	Q *linalg.Matrix
}

// NewQUBO validates and wraps a QUBO matrix.
func NewQUBO(q *linalg.Matrix) (*QUBO, error) {
	if q.Rows() != q.Cols() {
		return nil, fmt.Errorf("ising: QUBO matrix must be square")
	}
	if !q.IsSymmetric(1e-9 * (1 + q.MaxAbs())) {
		return nil, fmt.Errorf("ising: QUBO matrix must be symmetric")
	}
	return &QUBO{Q: q.Clone()}, nil
}

// Value evaluates xᵀQx for a binary assignment.
func (q *QUBO) Value(x []float64) float64 {
	n := q.Q.Rows()
	if len(x) != n {
		panic(fmt.Sprintf("ising: QUBO Value got %d vars for %d-var problem", len(x), n))
	}
	v := 0.0
	for i := 0; i < n; i++ {
		row := q.Q.Row(i)
		for j, qij := range row {
			v += x[i] * qij * x[j]
		}
	}
	return v
}

// ToIsing converts the QUBO to an Ising model via x = (1+σ)/2.
// It returns the model, the external field h (absorbed constants aside),
// and the constant offset, so that
//
//	xᵀQx = -½σᵀKσ + hᵀσ + offset  with  K = -Q/2 (off-diagonal), h, offset below.
//
// SOPHIE's recurrence has no external-field term, so callers embed h by
// adding an always-up ancilla spin coupled with strength hᵢ — helper
// EmbedField does this.
func (q *QUBO) ToIsing() (model *Model, h []float64, offset float64) {
	n := q.Q.Rows()
	k := linalg.NewMatrix(n, n)
	h = make([]float64, n)
	offset = 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			qij := q.Q.At(i, j)
			if i == j {
				h[i] += qij / 2
				offset += qij / 2
				continue
			}
			// x_i x_j = (1+σ_i)(1+σ_j)/4
			k.Add(i, j, -qij/2) // so that -½σKσ contributes +q/4·σσ
			h[i] += qij / 4
			h[j] += qij / 4
			offset += qij / 4
		}
	}
	// The loop double-counts h and offset for the symmetric (i,j),(j,i)
	// pairs exactly as the quadratic form does, so no correction needed.
	m, err := NewModel(k)
	if err != nil {
		panic(err) // k is symmetric by construction
	}
	return m, h, offset
}

// EmbedField folds an external field h into a coupling matrix by adding
// an ancilla spin (index n) pinned logically to +1: K'ᵢₙ = hᵢ. Solutions
// of the enlarged model with σₙ = -1 are equivalent under global flip.
func EmbedField(m *Model, h []float64) (*Model, error) {
	n := m.N()
	if len(h) != n {
		return nil, fmt.Errorf("ising: field has %d entries for %d spins", len(h), n)
	}
	if m.k == nil {
		return nil, fmt.Errorf("ising: EmbedField needs a dense-built model")
	}
	k := linalg.NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		copy(k.Row(i)[:n], m.k.Row(i))
		k.Set(i, n, h[i])
		k.Set(n, i, h[i])
	}
	return NewModel(k)
}

// NumberPartition builds the Ising model for partitioning the given
// numbers into two subsets with minimal sum difference: K_ij = -2·aᵢaⱼ,
// so H = (Σ aᵢσᵢ)² - Σaᵢ² and the ground state minimizes the imbalance
// (Lucas 2014, §2.1).
func NumberPartition(numbers []float64) *Model {
	n := len(numbers)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				k.Set(i, j, -2*numbers[i]*numbers[j])
			}
		}
	}
	m, err := NewModel(k)
	if err != nil {
		panic(err)
	}
	return m
}

// PartitionImbalance returns |Σ_{σ=+1} aᵢ - Σ_{σ=-1} aᵢ| for a spin
// assignment of a number-partitioning instance.
func PartitionImbalance(numbers []float64, spins []int8) float64 {
	if len(numbers) != len(spins) {
		panic("ising: numbers/spins length mismatch")
	}
	d := 0.0
	for i, a := range numbers {
		d += a * float64(spins[i])
	}
	return math.Abs(d)
}
