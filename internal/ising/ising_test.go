package ising

import (
	"math"
	"math/rand"
	"testing"

	"sophie/internal/graph"
	"sophie/internal/linalg"
)

func mustModel(t *testing.T, k *linalg.Matrix) *Model {
	t.Helper()
	m, err := NewModel(k)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(linalg.NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square matrix must be rejected")
	}
	bad, _ := linalg.NewMatrixFrom(2, 2, []float64{0, 1, 2, 0})
	if _, err := NewModel(bad); err == nil {
		t.Fatal("asymmetric matrix must be rejected")
	}
}

func TestNewModelZeroesDiagonal(t *testing.T) {
	k, _ := linalg.NewMatrixFrom(2, 2, []float64{5, 1, 1, 5})
	m := mustModel(t, k)
	if m.Coupling().At(0, 0) != 0 || m.Coupling().At(1, 1) != 0 {
		t.Fatal("diagonal must be zeroed")
	}
	// Input must not be mutated.
	if k.At(0, 0) != 5 {
		t.Fatal("NewModel mutated its input")
	}
}

func TestEnergyTwoSpins(t *testing.T) {
	// K01 = 1 (ferromagnetic): aligned spins have H = -1, anti-aligned +1.
	k, _ := linalg.NewMatrixFrom(2, 2, []float64{0, 1, 1, 0})
	m := mustModel(t, k)
	if got := m.Energy([]int8{1, 1}); got != -1 {
		t.Fatalf("aligned energy %v, want -1", got)
	}
	if got := m.Energy([]int8{1, -1}); got != 1 {
		t.Fatalf("anti-aligned energy %v, want 1", got)
	}
}

func TestEnergyPanicsOnBadLength(t *testing.T) {
	m := mustModel(t, linalg.NewMatrix(3, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Energy([]int8{1})
}

func TestEnergyDeltaMatchesRecomputation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 12
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.NormFloat64()
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	m := mustModel(t, k)
	spins := RandomSpins(n, func() bool { return rng.Intn(2) == 0 })
	for i := 0; i < n; i++ {
		before := m.Energy(spins)
		delta := m.EnergyDelta(spins, i)
		spins[i] = -spins[i]
		after := m.Energy(spins)
		spins[i] = -spins[i]
		if math.Abs((after-before)-delta) > 1e-9 {
			t.Fatalf("flip %d: delta %v, recomputed %v", i, delta, after-before)
		}
	}
}

func TestFromMaxCutGroundStateIsMaxCut(t *testing.T) {
	// Exhaustively verify on a small random graph that the minimum-energy
	// state maximizes the cut.
	g, err := graph.Random(10, 20, graph.WeightUniform, 6)
	if err != nil {
		t.Fatal(err)
	}
	m := FromMaxCut(g)
	bestCut := math.Inf(-1)
	minEnergy := math.Inf(1)
	var cutAtMinEnergy float64
	spins := make([]int8, 10)
	for mask := 0; mask < 1<<10; mask++ {
		for i := range spins {
			if mask&(1<<i) != 0 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		cut := g.CutValue(spins)
		e := m.Energy(spins)
		if cut > bestCut {
			bestCut = cut
		}
		if e < minEnergy {
			minEnergy = e
			cutAtMinEnergy = cut
		}
	}
	if cutAtMinEnergy != bestCut {
		t.Fatalf("ground state cut %v != max cut %v", cutAtMinEnergy, bestCut)
	}
}

func TestSpinBinaryConversions(t *testing.T) {
	spins := []int8{1, -1, -1, 1}
	b := SpinsToBinary(spins)
	want := []float64{1, 0, 0, 1}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("binary %v", b)
		}
	}
	back := BinaryToSpins(b)
	for i := range spins {
		if back[i] != spins[i] {
			t.Fatalf("round trip %v", back)
		}
	}
}

func TestSpinsToBinaryPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SpinsToBinary([]int8{0})
}

func TestRandomSpins(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := RandomSpins(1000, func() bool { return rng.Intn(2) == 0 })
	ups := 0
	for _, v := range s {
		if v != 1 && v != -1 {
			t.Fatalf("invalid spin %d", v)
		}
		if v == 1 {
			ups++
		}
	}
	if ups < 400 || ups > 600 {
		t.Fatalf("suspicious spin balance: %d ups of 1000", ups)
	}
}

func TestQUBOToIsingEquivalence(t *testing.T) {
	// For every binary assignment, xᵀQx must equal the Ising expression
	// -½σᵀKσ + hᵀσ + offset... i.e. Energy(σ) + hᵀσ + offset.
	rng := rand.New(rand.NewSource(8))
	n := 6
	q := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := math.Round(rng.NormFloat64() * 3)
			q.Set(i, j, v)
			q.Set(j, i, v)
		}
	}
	qubo, err := NewQUBO(q)
	if err != nil {
		t.Fatal(err)
	}
	model, h, offset := qubo.ToIsing()
	for mask := 0; mask < 1<<n; mask++ {
		x := make([]float64, n)
		spins := make([]int8, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				x[i] = 1
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		want := qubo.Value(x)
		got := model.Energy(spins) + offset
		for i := range h {
			got += h[i] * float64(spins[i])
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("mask %b: ising %v != qubo %v", mask, got, want)
		}
	}
}

func TestNewQUBOValidation(t *testing.T) {
	if _, err := NewQUBO(linalg.NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square QUBO must be rejected")
	}
	bad, _ := linalg.NewMatrixFrom(2, 2, []float64{0, 1, 3, 0})
	if _, err := NewQUBO(bad); err == nil {
		t.Fatal("asymmetric QUBO must be rejected")
	}
}

func TestEmbedField(t *testing.T) {
	k, _ := linalg.NewMatrixFrom(2, 2, []float64{0, 1, 1, 0})
	m := mustModel(t, k)
	h := []float64{0.5, -0.25}
	big, err := EmbedField(m, h)
	if err != nil {
		t.Fatal(err)
	}
	if big.N() != 3 {
		t.Fatalf("embedded model has %d spins", big.N())
	}
	// With ancilla fixed at +1, energies differ by the field term.
	spins := []int8{1, -1}
	withAncilla := append(append([]int8(nil), spins...), 1)
	diff := big.Energy(withAncilla) - m.Energy(spins)
	want := -(h[0]*1 + h[1]*(-1))
	if math.Abs(diff-want) > 1e-12 {
		t.Fatalf("field contribution %v, want %v", diff, want)
	}
	if _, err := EmbedField(m, []float64{1}); err == nil {
		t.Fatal("mismatched field length must be rejected")
	}
}

func TestNumberPartition(t *testing.T) {
	nums := []float64{3, 1, 1, 2, 2, 1}
	m := NumberPartition(nums)
	// Exhaustive ground-state search.
	best := math.Inf(1)
	var bestSpins []int8
	spins := make([]int8, len(nums))
	for mask := 0; mask < 1<<len(nums); mask++ {
		for i := range spins {
			if mask&(1<<i) != 0 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		if e := m.Energy(spins); e < best {
			best = e
			bestSpins = append([]int8(nil), spins...)
		}
	}
	// Total is 10, so a perfect partition (imbalance 0) exists: {3,2} vs {1,1,2,1}.
	if PartitionImbalance(nums, bestSpins) != 0 {
		t.Fatalf("ground state imbalance %v, want 0", PartitionImbalance(nums, bestSpins))
	}
}

func TestPartitionImbalancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PartitionImbalance([]float64{1}, []int8{1, 1})
}

func TestIntegerCouplings(t *testing.T) {
	g, err := graph.Random(30, 100, graph.WeightUnit, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !FromMaxCut(g).IntegerCouplings() {
		t.Fatal("unit-weight max-cut model must report integer couplings")
	}
	k := linalg.NewMatrix(3, 3)
	k.Set(0, 1, 0.5)
	k.Set(1, 0, 0.5)
	frac := mustModel(t, k)
	if frac.IntegerCouplings() {
		t.Fatal("fractional coupling must not report integer")
	}
	big := linalg.NewMatrix(2, 2)
	big.Set(0, 1, math.Exp2(60))
	big.Set(1, 0, math.Exp2(60))
	if mustModel(t, big).IntegerCouplings() {
		t.Fatal("oversized integer coupling must not report exact")
	}
	if !NumberPartition([]float64{3, 5, 8}).IntegerCouplings() {
		t.Fatal("small integer number-partition model must qualify")
	}
}
