package ising

import (
	"fmt"
	"math"

	"sophie/internal/graph"
	"sophie/internal/linalg"
)

// This file provides the classic QUBO reductions (Lucas, "Ising
// formulations of many NP problems", 2014) the paper's introduction
// motivates: any of these problems can be handed to the SOPHIE solver
// by converting the QUBO to an Ising model (QUBO.ToIsing + EmbedField).

// VertexCoverQUBO encodes minimum vertex cover: x_v = 1 means v is in
// the cover. The objective is
//
//	H = penalty · Σ_{(u,v)∈E} (1-x_u)(1-x_v) + Σ_v x_v
//
// with penalty > 1 so that uncovering an edge never pays (Lucas §4.3).
func VertexCoverQUBO(g *graph.Graph, penalty float64) (*QUBO, error) {
	if penalty <= 1 {
		return nil, fmt.Errorf("ising: vertex cover penalty %v must exceed 1", penalty)
	}
	n := g.N()
	q := linalg.NewMatrix(n, n)
	// Σx_v: linear terms on the diagonal.
	for v := 0; v < n; v++ {
		q.Set(v, v, 1)
	}
	// penalty·(1 - x_u - x_v + x_u x_v) per edge; the constant is
	// dropped (it shifts the objective uniformly).
	for _, e := range g.Edges() {
		q.Add(e.U, e.U, -penalty)
		q.Add(e.V, e.V, -penalty)
		q.Add(e.U, e.V, penalty/2)
		q.Add(e.V, e.U, penalty/2)
	}
	return NewQUBO(q)
}

// DecodeVertexCover converts a binary assignment into the selected
// vertex set.
func DecodeVertexCover(x []float64) []int {
	var cover []int
	for v, xi := range x {
		if xi != 0 {
			cover = append(cover, v)
		}
	}
	return cover
}

// IsVertexCover reports whether the set covers every edge of g.
func IsVertexCover(g *graph.Graph, cover []int) bool {
	in := make(map[int]bool, len(cover))
	for _, v := range cover {
		in[v] = true
	}
	for _, e := range g.Edges() {
		if !in[e.U] && !in[e.V] {
			return false
		}
	}
	return true
}

// ColoringQUBO encodes k-coloring with one-hot variables x_{v,c}
// (variable index v*k + c):
//
//	H = penalty·Σ_v (1 - Σ_c x_{v,c})² + penalty·Σ_{(u,v)∈E} Σ_c x_{u,c}·x_{v,c}
//
// A zero-energy ground state (up to the dropped constant) is a proper
// coloring (Lucas §6.1).
func ColoringQUBO(g *graph.Graph, colors int, penalty float64) (*QUBO, error) {
	if colors < 1 {
		return nil, fmt.Errorf("ising: need at least one color, got %d", colors)
	}
	if penalty <= 0 {
		return nil, fmt.Errorf("ising: coloring penalty %v must be positive", penalty)
	}
	n := g.N()
	vars := n * colors
	q := linalg.NewMatrix(vars, vars)
	idx := func(v, c int) int { return v*colors + c }
	// One-hot: (1 - Σ_c x)² = 1 - 2Σx + Σ_c Σ_c' x_c x_c'
	//        → diagonal -2+1 = -1 per var, +1 per distinct pair (split
	//          symmetrically), constant dropped.
	for v := 0; v < n; v++ {
		for c := 0; c < colors; c++ {
			q.Add(idx(v, c), idx(v, c), -penalty)
			for c2 := c + 1; c2 < colors; c2++ {
				q.Add(idx(v, c), idx(v, c2), penalty)
				q.Add(idx(v, c2), idx(v, c), penalty)
			}
		}
	}
	// Adjacent same-color conflicts.
	for _, e := range g.Edges() {
		for c := 0; c < colors; c++ {
			q.Add(idx(e.U, c), idx(e.V, c), penalty/2)
			q.Add(idx(e.V, c), idx(e.U, c), penalty/2)
		}
	}
	return NewQUBO(q)
}

// DecodeColoring converts a binary one-hot assignment to a color per
// node (-1 when a node has no color set; the first set color wins when
// several are).
func DecodeColoring(x []float64, n, colors int) []int {
	out := make([]int, n)
	for v := 0; v < n; v++ {
		out[v] = -1
		for c := 0; c < colors; c++ {
			if x[v*colors+c] != 0 {
				out[v] = c
				break
			}
		}
	}
	return out
}

// IsProperColoring reports whether every node has a color and no edge
// connects same-colored nodes.
func IsProperColoring(g *graph.Graph, coloring []int) bool {
	for _, c := range coloring {
		if c < 0 {
			return false
		}
	}
	for _, e := range g.Edges() {
		if coloring[e.U] == coloring[e.V] {
			return false
		}
	}
	return true
}

// TSPQUBO encodes the traveling salesman problem over a symmetric
// distance matrix with one-hot variables x_{v,t} ("city v is visited at
// step t", variable index v*n + t):
//
//	H = penalty·Σ_v (1-Σ_t x_{v,t})² + penalty·Σ_t (1-Σ_v x_{v,t})²
//	  + Σ_{u≠v} d_{uv} Σ_t x_{u,t}·x_{v,t+1}
//
// with the step index cyclic (Lucas §7). penalty must exceed the
// largest distance so constraint violations never pay.
func TSPQUBO(dist *linalg.Matrix, penalty float64) (*QUBO, error) {
	n := dist.Rows()
	if dist.Cols() != n {
		return nil, fmt.Errorf("ising: distance matrix must be square")
	}
	if n < 3 {
		return nil, fmt.Errorf("ising: TSP needs at least 3 cities, got %d", n)
	}
	maxD := dist.MaxAbs()
	if penalty <= maxD {
		return nil, fmt.Errorf("ising: TSP penalty %v must exceed the max distance %v", penalty, maxD)
	}
	vars := n * n
	q := linalg.NewMatrix(vars, vars)
	idx := func(v, t int) int { return v*n + t }
	addSym := func(i, j int, w float64) {
		if i == j {
			q.Add(i, i, w)
			return
		}
		q.Add(i, j, w/2)
		q.Add(j, i, w/2)
	}
	// Each city exactly once.
	for v := 0; v < n; v++ {
		for t := 0; t < n; t++ {
			addSym(idx(v, t), idx(v, t), -penalty)
			for t2 := t + 1; t2 < n; t2++ {
				addSym(idx(v, t), idx(v, t2), 2*penalty)
			}
		}
	}
	// Each step exactly one city.
	for t := 0; t < n; t++ {
		for v := 0; v < n; v++ {
			addSym(idx(v, t), idx(v, t), -penalty)
			for v2 := v + 1; v2 < n; v2++ {
				addSym(idx(v, t), idx(v2, t), 2*penalty)
			}
		}
	}
	// Tour length.
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			d := dist.At(u, v)
			if d == 0 {
				continue
			}
			for t := 0; t < n; t++ {
				addSym(idx(u, t), idx(v, (t+1)%n), d)
			}
		}
	}
	return NewQUBO(q)
}

// DecodeTour converts a one-hot TSP assignment to the visiting order;
// it returns an error when the assignment violates the one-hot
// constraints.
func DecodeTour(x []float64, n int) ([]int, error) {
	tour := make([]int, n)
	for t := range tour {
		tour[t] = -1
	}
	for v := 0; v < n; v++ {
		count := 0
		for t := 0; t < n; t++ {
			if x[v*n+t] != 0 {
				count++
				if tour[t] != -1 {
					return nil, fmt.Errorf("ising: step %d assigned twice", t)
				}
				tour[t] = v
			}
		}
		if count != 1 {
			return nil, fmt.Errorf("ising: city %d visited %d times", v, count)
		}
	}
	return tour, nil
}

// TourLength evaluates a cyclic tour on the distance matrix.
func TourLength(dist *linalg.Matrix, tour []int) float64 {
	total := 0.0
	n := len(tour)
	for t := 0; t < n; t++ {
		total += dist.At(tour[t], tour[(t+1)%n])
	}
	return total
}

// SolveQUBOExhaustive finds the exact minimum of a QUBO by enumeration;
// it is exponential and only intended for tests and tiny demos (≤ ~20
// variables).
func SolveQUBOExhaustive(q *QUBO) (x []float64, value float64, err error) {
	n := q.Q.Rows()
	if n > 24 {
		return nil, 0, fmt.Errorf("ising: exhaustive solve limited to 24 variables, got %d", n)
	}
	best := math.Inf(1)
	var bestX []float64
	x = make([]float64, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				x[i] = 1
			} else {
				x[i] = 0
			}
		}
		if v := q.Value(x); v < best {
			best = v
			bestX = append([]float64(nil), x...)
		}
	}
	return bestX, best, nil
}

// MaxIndependentSetQUBO encodes maximum independent set: maximize the
// selected vertices subject to no two adjacent both selected —
// equivalently minimize -Σx + penalty·Σ_{(u,v)∈E} x_u·x_v (Lucas §4.2,
// the complement of vertex cover).
func MaxIndependentSetQUBO(g *graph.Graph, penalty float64) (*QUBO, error) {
	if penalty <= 1 {
		return nil, fmt.Errorf("ising: independent set penalty %v must exceed 1", penalty)
	}
	n := g.N()
	q := linalg.NewMatrix(n, n)
	for v := 0; v < n; v++ {
		q.Set(v, v, -1)
	}
	for _, e := range g.Edges() {
		q.Add(e.U, e.V, penalty/2)
		q.Add(e.V, e.U, penalty/2)
	}
	return NewQUBO(q)
}

// DecodeIndependentSet converts a binary assignment to the selected set.
func DecodeIndependentSet(x []float64) []int { return DecodeVertexCover(x) }

// IsIndependentSet reports whether no edge of g has both endpoints in
// the set.
func IsIndependentSet(g *graph.Graph, set []int) bool {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for _, e := range g.Edges() {
		if in[e.U] && in[e.V] {
			return false
		}
	}
	return true
}
