package ising

import (
	"math"
	"testing"

	"sophie/internal/graph"
	"sophie/internal/linalg"
)

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestVertexCoverQUBOExhaustive(t *testing.T) {
	// Path on 5 nodes: minimum vertex cover is {1,3}, size 2.
	g := pathGraph(t, 5)
	q, err := VertexCoverQUBO(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := SolveQUBOExhaustive(q)
	if err != nil {
		t.Fatal(err)
	}
	cover := DecodeVertexCover(x)
	if !IsVertexCover(g, cover) {
		t.Fatalf("exhaustive optimum %v is not a cover", cover)
	}
	if len(cover) != 2 {
		t.Fatalf("cover %v has size %d, optimum is 2", cover, len(cover))
	}
}

func TestVertexCoverTriangle(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	q, err := VertexCoverQUBO(g, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := SolveQUBOExhaustive(q)
	if err != nil {
		t.Fatal(err)
	}
	cover := DecodeVertexCover(x)
	if !IsVertexCover(g, cover) || len(cover) != 2 {
		t.Fatalf("triangle cover %v, want any 2 nodes", cover)
	}
}

func TestVertexCoverValidation(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := VertexCoverQUBO(g, 1); err == nil {
		t.Fatal("penalty <= 1 must be rejected")
	}
}

func TestIsVertexCover(t *testing.T) {
	g := pathGraph(t, 4)
	if !IsVertexCover(g, []int{1, 2}) {
		t.Fatal("{1,2} covers a 4-path")
	}
	if IsVertexCover(g, []int{0}) {
		t.Fatal("{0} does not cover a 4-path")
	}
}

func TestColoringQUBOExhaustive(t *testing.T) {
	// Path on 3 nodes is 2-colorable.
	g := pathGraph(t, 3)
	q, err := ColoringQUBO(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := SolveQUBOExhaustive(q)
	if err != nil {
		t.Fatal(err)
	}
	coloring := DecodeColoring(x, 3, 2)
	if !IsProperColoring(g, coloring) {
		t.Fatalf("optimum %v is not a proper coloring", coloring)
	}
}

func TestColoringTriangleNeedsThree(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	// 2 colors cannot properly color a triangle: the exhaustive optimum
	// must violate something.
	q2, _ := ColoringQUBO(g, 2, 2)
	x2, _, _ := SolveQUBOExhaustive(q2)
	if IsProperColoring(g, DecodeColoring(x2, 3, 2)) {
		t.Fatal("triangle cannot be 2-colored")
	}
	// 3 colors work. 9 variables, still exhaustive.
	q3, _ := ColoringQUBO(g, 3, 2)
	x3, _, _ := SolveQUBOExhaustive(q3)
	if !IsProperColoring(g, DecodeColoring(x3, 3, 3)) {
		t.Fatal("triangle must be 3-colorable")
	}
}

func TestColoringValidation(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := ColoringQUBO(g, 0, 1); err == nil {
		t.Fatal("zero colors must be rejected")
	}
	if _, err := ColoringQUBO(g, 2, 0); err == nil {
		t.Fatal("zero penalty must be rejected")
	}
}

func tinyTSP(t *testing.T) *linalg.Matrix {
	t.Helper()
	// Four cities on a line at positions 0, 1, 2, 3. The optimal cyclic
	// tour 0-1-2-3-0 has length 1+1+1+3 = 6.
	pos := []float64{0, 1, 2, 3}
	d := linalg.NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			d.Set(i, j, math.Abs(pos[i]-pos[j]))
		}
	}
	return d
}

func TestTSPQUBOExhaustive(t *testing.T) {
	d := tinyTSP(t)
	q, err := TSPQUBO(d, 10)
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := SolveQUBOExhaustive(q)
	if err != nil {
		t.Fatal(err)
	}
	tour, err := DecodeTour(x, 4)
	if err != nil {
		t.Fatalf("optimum violates constraints: %v", err)
	}
	if got := TourLength(d, tour); got != 6 {
		t.Fatalf("tour %v has length %v, optimum 6", tour, got)
	}
}

func TestTSPValidation(t *testing.T) {
	d := tinyTSP(t)
	if _, err := TSPQUBO(d, 1); err == nil {
		t.Fatal("penalty below max distance must be rejected")
	}
	if _, err := TSPQUBO(linalg.NewMatrix(2, 3), 10); err == nil {
		t.Fatal("non-square distances must be rejected")
	}
	if _, err := TSPQUBO(linalg.NewMatrix(2, 2), 10); err == nil {
		t.Fatal("fewer than 3 cities must be rejected")
	}
}

func TestDecodeTourErrors(t *testing.T) {
	x := make([]float64, 9)
	// City 0 never visited.
	if _, err := DecodeTour(x, 3); err == nil {
		t.Fatal("empty assignment must be rejected")
	}
	// Step 0 doubly assigned.
	x = make([]float64, 9)
	x[0*3+0] = 1
	x[1*3+0] = 1
	x[2*3+2] = 1
	if _, err := DecodeTour(x, 3); err == nil {
		t.Fatal("conflicting steps must be rejected")
	}
}

func TestSolveQUBOExhaustiveLimit(t *testing.T) {
	q, _ := NewQUBO(linalg.NewMatrix(30, 30))
	if _, _, err := SolveQUBOExhaustive(q); err == nil {
		t.Fatal("oversized exhaustive solve must be rejected")
	}
}

func TestVertexCoverEndToEndViaIsing(t *testing.T) {
	// Convert the QUBO to an Ising model with the ancilla-embedded field
	// and check that the Ising ground state decodes to a minimum cover.
	g := pathGraph(t, 4) // min cover size 2 ({1,2})
	q, err := VertexCoverQUBO(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	model, h, _ := q.ToIsing()
	big, err := EmbedField(model, h)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive ground state of the embedded model (5 spins).
	n := big.N()
	best := math.Inf(1)
	var bestSpins []int8
	spins := make([]int8, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := range spins {
			if mask&(1<<i) != 0 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		if e := big.Energy(spins); e < best {
			best = e
			bestSpins = append([]int8(nil), spins...)
		}
	}
	// Normalize the gauge: ancilla must read +1.
	if bestSpins[n-1] == -1 {
		for i := range bestSpins {
			bestSpins[i] = -bestSpins[i]
		}
	}
	x := make([]float64, 4)
	for i := 0; i < 4; i++ {
		if bestSpins[i] == 1 {
			x[i] = 1
		}
	}
	cover := DecodeVertexCover(x)
	if !IsVertexCover(g, cover) || len(cover) != 2 {
		t.Fatalf("embedded Ising ground state decodes to %v", cover)
	}
}

func TestMaxIndependentSetQUBOExhaustive(t *testing.T) {
	// Path on 5 nodes: maximum independent set is {0,2,4}, size 3.
	g := pathGraph(t, 5)
	q, err := MaxIndependentSetQUBO(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := SolveQUBOExhaustive(q)
	if err != nil {
		t.Fatal(err)
	}
	set := DecodeIndependentSet(x)
	if !IsIndependentSet(g, set) {
		t.Fatalf("optimum %v is not independent", set)
	}
	if len(set) != 3 {
		t.Fatalf("set %v has size %d, optimum 3", set, len(set))
	}
}

func TestMaxIndependentSetComplementsVertexCover(t *testing.T) {
	// For any graph, V \ (min vertex cover) is a max independent set.
	g, err := graph.Random(10, 18, graph.WeightUnit, 44)
	if err != nil {
		t.Fatal(err)
	}
	qvc, _ := VertexCoverQUBO(g, 3)
	xvc, _, _ := SolveQUBOExhaustive(qvc)
	cover := DecodeVertexCover(xvc)
	qis, _ := MaxIndependentSetQUBO(g, 3)
	xis, _, _ := SolveQUBOExhaustive(qis)
	set := DecodeIndependentSet(xis)
	if len(cover)+len(set) != g.N() {
		t.Fatalf("cover %d + independent set %d != %d nodes", len(cover), len(set), g.N())
	}
}

func TestMaxIndependentSetValidation(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := MaxIndependentSetQUBO(g, 1); err == nil {
		t.Fatal("penalty <= 1 must be rejected")
	}
	if IsIndependentSet(g, []int{0, 1}) {
		t.Fatal("{0,1} on a path is not independent")
	}
}
