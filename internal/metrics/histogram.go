package metrics

import (
	"fmt"
	"math"
	"sync"
)

// Histogram is a fixed-bucket, concurrency-safe histogram for latency
// tracking in long-running services (the sophied job daemon records one
// per lifecycle segment: queue wait and execution). Buckets are defined
// by ascending upper bounds; an implicit +Inf bucket catches the tail.
// Observe is safe for concurrent use; Snapshot returns a consistent
// copy for serving over /metrics.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending bucket upper bounds (inclusive)
	counts []uint64  // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	n      uint64
}

// DefaultLatencyBounds is a log-spaced ladder from 1ms to ~2 minutes,
// wide enough for both sub-second K-graph jobs and long GSET anneals.
func DefaultLatencyBounds() []float64 {
	bounds := make([]float64, 0, 18)
	v := 0.001
	for i := 0; i < 18; i++ {
		bounds = append(bounds, v)
		v *= 2
	}
	return bounds
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. Bounds must be finite, strictly increasing, and non-empty.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bucket bound")
	}
	prev := math.Inf(-1)
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("metrics: histogram bound %d is not finite: %v", i, b)
		}
		if b <= prev {
			return nil, fmt.Errorf("metrics: histogram bounds not strictly increasing at %d: %v after %v", i, b, prev)
		}
		prev = b
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}, nil
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum and fit no bucket).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := len(h.bounds) // +Inf bucket
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.mu.Lock()
	h.counts[idx]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// HistogramSnapshot is an immutable copy of a histogram's state, shaped
// for JSON serving: parallel bound/count slices (the final count is the
// +Inf overflow bucket and has no bound entry).
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot returns a consistent copy of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.n,
		Sum:    h.sum,
	}
}

// Mean returns the mean of all observations, or 0 for an empty
// histogram.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation within the containing bucket, the standard
// Prometheus-style estimate. Observations in the +Inf bucket clamp to
// the last finite bound. An empty histogram returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		within := rank - float64(cum-c)
		return lo + (hi-lo)*within/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}
