package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpCountsAdd(t *testing.T) {
	a := OpCounts{LocalMVM1b: 10, GlueOps: 3, DRAMReadBits: 64}
	b := OpCounts{LocalMVM1b: 5, LocalMVM8b: 2, GlobalSyncs: 1}
	a.Add(b)
	if a.LocalMVM1b != 15 || a.LocalMVM8b != 2 || a.GlueOps != 3 || a.GlobalSyncs != 1 {
		t.Fatalf("Add produced %+v", a)
	}
	if a.TotalMVMs() != 17 {
		t.Fatalf("TotalMVMs %d, want 17", a.TotalMVMs())
	}
}

// Property: Add is commutative on every field.
func TestOpCountsAddCommutative(t *testing.T) {
	f := func(x, y uint16) bool {
		a := OpCounts{LocalMVM1b: uint64(x), SRAMReadBits: uint64(y), GlueOps: uint64(x) * 3}
		b := OpCounts{LocalMVM1b: uint64(y), SRAMReadBits: uint64(x), BusBits: uint64(y)}
		ab, ba := a, b
		ab.Add(b)
		ba.Add(a)
		return ab == ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpCountsString(t *testing.T) {
	c := OpCounts{LocalMVM1b: 7, GlobalSyncs: 2}
	s := c.String()
	if !strings.Contains(s, "mvm(1b)") || !strings.Contains(s, "7") {
		t.Fatalf("String() missing counters: %q", s)
	}
	if strings.Contains(s, "dramRead") {
		t.Fatal("zero counters must be omitted")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	wantStd := math.Sqrt(2.5)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std, wantStd)
	}
	if s.CI95Lo >= s.Mean || s.CI95Hi <= s.Mean {
		t.Fatal("CI must bracket the mean")
	}
}

func TestSummarizeEvenMedianAndSingle(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Median != 2.5 {
		t.Fatalf("median %v, want 2.5", s.Median)
	}
	one := Summarize([]float64{42})
	if one.Std != 0 || one.Mean != 42 || one.Median != 42 {
		t.Fatalf("single-sample summary %+v", one)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-10) > 1e-9 {
		t.Fatalf("geomean %v, want 10", g)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Fatal("empty sample must error")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Fatal("negative values must error")
	}
}

func TestTimeToSolution(t *testing.T) {
	// p=0.5, confidence 0.9: ln(0.1)/ln(0.5) ≈ 3.32 repeats.
	tts, err := TimeToSolution(1.0, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tts-3.3219) > 1e-3 {
		t.Fatalf("TTS %v, want ~3.322", tts)
	}
	// Certain success: one run.
	tts, _ = TimeToSolution(2.0, 1, 0.9)
	if tts != 2.0 {
		t.Fatalf("certain success TTS %v, want 2", tts)
	}
	// Impossible: infinite.
	tts, _ = TimeToSolution(1.0, 0, 0.9)
	if !math.IsInf(tts, 1) {
		t.Fatal("zero success must give +Inf")
	}
	// High success with low confidence target: floor at one run.
	tts, _ = TimeToSolution(1.0, 0.99, 0.5)
	if tts != 1.0 {
		t.Fatalf("TTS floor broken: %v", tts)
	}
}

func TestTimeToSolutionValidation(t *testing.T) {
	if _, err := TimeToSolution(0, 0.5, 0.9); err == nil {
		t.Fatal("zero run time must error")
	}
	if _, err := TimeToSolution(1, -0.1, 0.9); err == nil {
		t.Fatal("negative probability must error")
	}
	if _, err := TimeToSolution(1, 0.5, 1); err == nil {
		t.Fatal("confidence 1 must error")
	}
}
