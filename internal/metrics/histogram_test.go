package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{1, 1},
		{2, 1},
		{1, math.NaN()},
		{1, math.Inf(1)},
	}
	for _, bounds := range cases {
		if _, err := NewHistogram(bounds); err == nil {
			t.Errorf("NewHistogram(%v) accepted invalid bounds", bounds)
		}
	}
	if _, err := NewHistogram(DefaultLatencyBounds()); err != nil {
		t.Fatalf("default latency bounds rejected: %v", err)
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count %d, want 5 (NaN dropped)", s.Count)
	}
	wantCounts := []uint64{2, 1, 1, 1} // ≤1: {0.5, 1}; ≤2: {1.5}; ≤4: {3}; +Inf: {100}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d count %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if got, want := s.Sum, 0.5+1+1.5+3+100; got != want {
		t.Fatalf("sum %v, want %v", got, want)
	}
	if got, want := s.Mean(), (0.5+1+1.5+3+100)/5; got != want {
		t.Fatalf("mean %v, want %v", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile %v, want 0", got)
	}
	// 8 observations uniformly in (0,8]: one per half-bucket.
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 6, 8} {
		h.Observe(v)
	}
	s := h.Snapshot()
	med := s.Quantile(0.5)
	if med < 1 || med > 2 {
		t.Fatalf("median %v outside the containing bucket (1,2]", med)
	}
	p100 := s.Quantile(1)
	if p100 < 4 || p100 > 8 {
		t.Fatalf("p100 %v outside the top finite bucket (4,8]", p100)
	}
	// Out-of-range q clamps instead of panicking.
	if lo, hi := s.Quantile(-1), s.Quantile(2); math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatalf("clamped quantiles produced NaN: %v / %v", lo, hi)
	}
	// Overflow-bucket mass clamps to the last finite bound.
	h.Observe(1e9)
	h.Observe(1e9)
	h.Observe(1e9)
	if got := h.Snapshot().Quantile(0.99); got != 8 {
		t.Fatalf("overflow quantile %v, want clamp to 8", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h, err := NewHistogram(DefaultLatencyBounds())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("concurrent observes lost samples: %d, want %d", got, workers*per)
	}
}
