// Package metrics provides the operation counters the functional
// simulator produces and the PPA model consumes (Section IV-A: "The
// functional simulator also counts the total number of each type of
// operation, and these numbers serve as the input for power and
// performance estimation"), plus small summary-statistics helpers used
// by the experiment harness (each paper data point averages 10-100 runs).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// OpCounts tallies every hardware-visible operation class of a SOPHIE
// run. The timing and energy models in internal/arch price each field.
type OpCounts struct {
	// LocalMVM1b counts local-iteration MVMs read through the 1-bit ADC
	// (the common case, Section III-C).
	LocalMVM1b uint64
	// LocalMVM8b counts the final local iteration before each global
	// synchronization, read through the 8-bit ADC mode.
	LocalMVM8b uint64
	// OPCMPrograms counts full OPCM array (re)programming events.
	OPCMPrograms uint64
	// OPCMCellWrites counts individual GST cell writes (programming
	// energy scales per cell, Section IV-A).
	OPCMCellWrites uint64
	// EOBits counts bits pushed through the 1-bit E-O modulators.
	EOBits uint64
	// ADCSamples1b / ADCSamples8b count individual converter samples.
	ADCSamples1b uint64
	ADCSamples8b uint64
	// SRAMReadBits / SRAMWriteBits count local buffer traffic.
	SRAMReadBits  uint64
	SRAMWriteBits uint64
	// DRAMReadBits / DRAMWriteBits count interposer DRAM traffic.
	DRAMReadBits  uint64
	DRAMWriteBits uint64
	// BusBits counts host/system CXL bus traffic (multi-interposer sync).
	BusBits uint64
	// GlueOps counts controller-side arithmetic during global
	// synchronization (offset accumulation, spin reconciliation).
	GlueOps uint64
	// GlobalSyncs counts global synchronization barriers.
	GlobalSyncs uint64
}

// Add accumulates other into c.
func (c *OpCounts) Add(other OpCounts) {
	c.LocalMVM1b += other.LocalMVM1b
	c.LocalMVM8b += other.LocalMVM8b
	c.OPCMPrograms += other.OPCMPrograms
	c.OPCMCellWrites += other.OPCMCellWrites
	c.EOBits += other.EOBits
	c.ADCSamples1b += other.ADCSamples1b
	c.ADCSamples8b += other.ADCSamples8b
	c.SRAMReadBits += other.SRAMReadBits
	c.SRAMWriteBits += other.SRAMWriteBits
	c.DRAMReadBits += other.DRAMReadBits
	c.DRAMWriteBits += other.DRAMWriteBits
	c.BusBits += other.BusBits
	c.GlueOps += other.GlueOps
	c.GlobalSyncs += other.GlobalSyncs
}

// TotalMVMs returns all local MVM operations regardless of ADC mode.
func (c *OpCounts) TotalMVMs() uint64 { return c.LocalMVM1b + c.LocalMVM8b }

// U64 is the checked int→uint64 conversion for op accounting: feeding
// a counter from signed loop arithmetic (iterations-1, selected*t,
// ...) must never wrap a negative intermediate into ~1.8e19 priced
// operations. It panics on negative input — a programming error in the
// simulator, not a recoverable condition. The opcount analyzer
// (internal/analysis) flags raw uint64(...) conversions of
// subtraction-bearing arithmetic and points here.
func U64(n int) uint64 {
	if n < 0 {
		panic(fmt.Sprintf("metrics: negative operation count %d", n))
	}
	return uint64(n)
}

// String renders the non-zero counters, one per line, for reports.
func (c *OpCounts) String() string {
	var b strings.Builder
	row := func(name string, v uint64) {
		if v != 0 {
			fmt.Fprintf(&b, "%-16s %d\n", name, v)
		}
	}
	row("mvm(1b)", c.LocalMVM1b)
	row("mvm(8b)", c.LocalMVM8b)
	row("programs", c.OPCMPrograms)
	row("cellWrites", c.OPCMCellWrites)
	row("eoBits", c.EOBits)
	row("adc1b", c.ADCSamples1b)
	row("adc8b", c.ADCSamples8b)
	row("sramRead", c.SRAMReadBits)
	row("sramWrite", c.SRAMWriteBits)
	row("dramRead", c.DRAMReadBits)
	row("dramWrite", c.DRAMWriteBits)
	row("busBits", c.BusBits)
	row("glueOps", c.GlueOps)
	row("globalSyncs", c.GlobalSyncs)
	return b.String()
}

// Summary holds descriptive statistics over a sample of float64 values.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	CI95Lo, CI95Hi float64 // normal-approximation 95% interval on the mean
}

// Summarize computes descriptive statistics of values. It panics on an
// empty sample.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		panic("metrics: Summarize on empty sample")
	}
	s := Summary{N: len(values), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	varSum := 0.0
	for _, v := range values {
		d := v - s.Mean
		varSum += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(varSum / float64(s.N-1))
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	mid := s.N / 2
	if s.N%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	se := s.Std / math.Sqrt(float64(s.N))
	s.CI95Lo = s.Mean - 1.96*se
	s.CI95Hi = s.Mean + 1.96*se
	return s
}

// TimeToSolution computes the standard Ising-machine "TTS" metric: the
// expected wall time to reach the target solution at least once with
// the given confidence, from independent runs of duration runTime that
// each succeed with probability successProb. The paper's T90 numbers
// (Table II) use confidence 0.9:
//
//	TTS = runTime · ln(1-confidence) / ln(1-successProb)
//
// A successProb of 1 returns runTime; 0 returns +Inf.
func TimeToSolution(runTime, successProb, confidence float64) (float64, error) {
	if runTime <= 0 {
		return 0, fmt.Errorf("metrics: run time must be positive, got %v", runTime)
	}
	if successProb < 0 || successProb > 1 {
		return 0, fmt.Errorf("metrics: success probability %v outside [0,1]", successProb)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("metrics: confidence %v outside (0,1)", confidence)
	}
	switch successProb {
	case 0:
		return math.Inf(1), nil
	case 1:
		return runTime, nil
	}
	repeats := math.Log(1-confidence) / math.Log(1-successProb)
	if repeats < 1 {
		repeats = 1 // one run already exceeds the confidence target
	}
	return runTime * repeats, nil
}

// GeoMean returns the geometric mean of strictly positive values.
func GeoMean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("metrics: GeoMean on empty sample")
	}
	logSum := 0.0
	for _, v := range values {
		if v <= 0 {
			return 0, fmt.Errorf("metrics: GeoMean requires positive values, got %v", v)
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(values))), nil
}
