package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sophie/internal/service"
)

func testJob(n int) service.SnapshotJob {
	return service.SnapshotJob{
		ID:          fmt.Sprintf("j%08d", n),
		Tenant:      "default",
		SubmittedAt: time.Unix(1700000000+int64(n), 0).UTC(),
		Spec:        service.JobSpec{Preset: "G1", Replicas: 2, Seed: int64(n)},
	}
}

func openT(t *testing.T, dir string, opts Options) (*Log, []service.SnapshotJob) {
	t.Helper()
	l, pending, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, pending
}

// TestRoundTrip: submitted/started/terminal records replay into exactly
// the non-terminal jobs, in admission (id) order, with started-but-
// unterminated jobs (interrupted mid-run) still pending.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, pending := openT(t, dir, Options{})
	if len(pending) != 0 {
		t.Fatalf("fresh dir replayed %d pending jobs", len(pending))
	}
	// j1 completes, j2 is interrupted mid-run, j3 never starts; submit
	// out of id order to exercise the replay sort.
	for _, n := range []int{2, 1, 3} {
		if err := l.JobSubmitted(testJob(n)); err != nil {
			t.Fatalf("JobSubmitted(%d): %v", n, err)
		}
	}
	if err := l.JobStarted("j00000001"); err != nil {
		t.Fatalf("JobStarted: %v", err)
	}
	if err := l.JobStarted("j00000002"); err != nil {
		t.Fatalf("JobStarted: %v", err)
	}
	if err := l.JobTerminal("j00000001", service.StateDone); err != nil {
		t.Fatalf("JobTerminal: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, pending := openT(t, dir, Options{})
	defer l2.Close()
	if len(pending) != 2 {
		t.Fatalf("replay returned %d pending jobs, want 2: %+v", len(pending), pending)
	}
	if pending[0].ID != "j00000002" || pending[1].ID != "j00000003" {
		t.Fatalf("pending order %q, %q; want j00000002, j00000003", pending[0].ID, pending[1].ID)
	}
	want := testJob(2)
	if got := pending[0]; got.Tenant != want.Tenant || !got.SubmittedAt.Equal(want.SubmittedAt) ||
		got.Spec.Preset != want.Spec.Preset || got.Spec.Seed != want.Spec.Seed {
		t.Fatalf("replayed job diverged: got %+v want %+v", got, want)
	}
}

// TestAppendSyncDurable: JobSubmitted is the durability point — the
// record must be on disk when it returns, with no Close involved (a
// kill -9 never calls Close).
func TestAppendSyncDurable(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	if err := l.JobSubmitted(testJob(1)); err != nil {
		t.Fatalf("JobSubmitted: %v", err)
	}
	// Crash simulation: reopen the directory while the first log is
	// still live and unclosed.
	l2, pending := openT(t, dir, Options{})
	if len(pending) != 1 || pending[0].ID != "j00000001" {
		t.Fatalf("pending after crash-reopen = %+v, want [j00000001]", pending)
	}
	l2.Close()
	l.Close()
}

// TestTornTailTolerated: garbage after the last full frame in the
// newest segment is a crash signature — replay keeps the good prefix.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	if err := l.JobSubmitted(testJob(1)); err != nil {
		t.Fatalf("JobSubmitted: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments after close: %v, %v", segs, err)
	}
	path := filepath.Join(dir, segs[0].name)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A torn frame: a plausible header promising more bytes than exist.
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, pending := openT(t, dir, Options{})
	defer l2.Close()
	if len(pending) != 1 || pending[0].ID != "j00000001" {
		t.Fatalf("pending after torn tail = %+v, want [j00000001]", pending)
	}
}

// TestCorruptEarlierSegmentFails: damage that is not a crash tail (a
// bad frame in a non-newest segment) must fail Open loudly instead of
// silently dropping acknowledged jobs.
func TestCorruptEarlierSegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	if err := l.JobSubmitted(testJob(1)); err != nil {
		t.Fatalf("JobSubmitted: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := listSegments(dir)
	// Flip a payload byte mid-file (breaking the CRC) in what will be
	// the older segment once a newer one exists.
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	next := filepath.Join(dir, segmentName(segs[0].num+1))
	if err := os.WriteFile(next, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over a corrupt earlier segment: err = %v, want ErrCorrupt", err)
	}
}

// TestCompactionBoundsLog: a workload of terminal jobs far larger than
// SegmentBytes must leave the directory small — rotation drops the
// terminal history, and a final reopen compacts to the live set alone.
func TestCompactionBoundsLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 4 << 10})
	for n := 1; n <= 200; n++ {
		if err := l.JobSubmitted(testJob(n)); err != nil {
			t.Fatalf("JobSubmitted(%d): %v", n, err)
		}
		if err := l.JobTerminal(fmt.Sprintf("j%08d", n), service.StateDone); err != nil {
			t.Fatalf("JobTerminal(%d): %v", n, err)
		}
	}
	// One live straggler so the compacted output is non-trivial.
	if err := l.JobSubmitted(testJob(999)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, pending := openT(t, dir, Options{})
	defer l2.Close()
	if len(pending) != 1 || pending[0].ID != "j00000999" {
		t.Fatalf("pending = %+v, want the one live job", pending)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("reopen left %d segments, want 1", len(segs))
	}
	info, err := os.Stat(filepath.Join(dir, segs[0].name))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > 4<<10 {
		t.Fatalf("compacted segment is %d bytes; the terminal history was not dropped", info.Size())
	}
}

// TestAppendAfterClose pins the ErrClosed contract.
func TestAppendAfterClose(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.JobStarted("j00000001"); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: err = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestDecodeAllErrors pins the frame-level error taxonomy.
func TestDecodeAllErrors(t *testing.T) {
	good, err := encodeFrame(Record{T: RecordStarted, ID: "j00000001"})
	if err != nil {
		t.Fatal(err)
	}
	hostile := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(hostile, uint32(maxRecordBytes)+1)

	badCRC := append([]byte(nil), good...)
	badCRC[frameHeader] ^= 0xff

	badJSON := []byte(`{"t":`)
	frame := make([]byte, frameHeader+len(badJSON))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(badJSON)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(badJSON))
	copy(frame[frameHeader:], badJSON)

	cases := []struct {
		name string
		data []byte
		want error
		recs int
	}{
		{"clean", good, nil, 1},
		{"short header", append(append([]byte(nil), good...), 0x01, 0x02), ErrTorn, 1},
		{"truncated payload", good[:len(good)-3], ErrTorn, 0},
		{"hostile length", hostile, ErrCorrupt, 0},
		{"crc mismatch", badCRC, ErrCorrupt, 0},
		{"bad json", frame, ErrCorrupt, 0},
	}
	for _, tc := range cases {
		recs, goodLen, derr := DecodeAll(tc.data)
		if tc.want == nil {
			if derr != nil || goodLen != len(tc.data) {
				t.Errorf("%s: err=%v goodLen=%d", tc.name, derr, goodLen)
			}
		} else if !errors.Is(derr, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, derr, tc.want)
		}
		if len(recs) != tc.recs {
			t.Errorf("%s: decoded %d records, want %d", tc.name, len(recs), tc.recs)
		}
	}
}

// TestReplayIdempotency pins the fold rules the compaction overlap
// relies on: duplicate submissions keep the first, unknown-id markers
// are ignored, terminal is sticky.
func TestReplayIdempotency(t *testing.T) {
	rep := NewReplay()
	first := testJob(1)
	second := testJob(1)
	second.Tenant = "imposter"
	rep.Apply(Record{T: RecordSubmitted, Job: &first})
	rep.Apply(Record{T: RecordSubmitted, Job: &second})                             // dup: ignored
	rep.Apply(Record{T: RecordStarted, ID: "j00000077"})                            // unknown: ignored
	rep.Apply(Record{T: RecordTerminal, ID: "j00000077", State: service.StateDone}) // unknown: ignored
	p := rep.Pending()
	if len(p) != 1 || p[0].Tenant != "default" {
		t.Fatalf("pending = %+v; duplicate submission should not override", p)
	}
	rep.Apply(Record{T: RecordTerminal, ID: "j00000001", State: service.StateCancelled})
	rep.Apply(Record{T: RecordStarted, ID: "j00000001"}) // post-terminal: stays terminal
	if p := rep.Pending(); len(p) != 0 {
		t.Fatalf("pending after terminal = %+v, want none", p)
	}
}
