// Package wal is sophied's job write-ahead log: an append-only,
// CRC-checksummed record log that makes the admission queue survive a
// kill -9. The Log implements service.Journal — the Manager writes a
// submitted record (fsync'd, the durability point its 202 stands on),
// a started marker at queued→running, and a terminal marker at the end
// of the lifecycle — and Open replays the log on boot: queued jobs
// re-enter the queue, jobs interrupted mid-run are re-queued, terminal
// jobs are dropped.
//
// Durability costs are paid where they matter and nowhere else:
// submitted records group-commit (every waiter riding one fsync
// shares its latency), started/terminal records are buffered and
// synced by a background flusher within Options.SyncEvery, and
// segments compact — on every boot and on rotation — down to just the
// live (non-terminal) jobs, so the log's size tracks the queue, not
// the service's lifetime throughput.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sophie/internal/service"
)

// ErrClosed reports an append on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options tunes the log. The zero value is production-usable.
type Options struct {
	// SyncEvery is the background flush interval for buffered
	// (started/terminal) records — the widest window a buffered record
	// can sit unsynced (default 2ms). Submitted records never wait for
	// it; they sync immediately via group commit.
	SyncEvery time.Duration
	// SegmentBytes is the rotation threshold: once the active segment
	// outgrows both this and twice the live-record footprint, it is
	// compacted into a fresh segment (default 4MB).
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Log is an open journal directory. Safe for concurrent use; it is a
// service.Journal.
type Log struct {
	dir  string
	opts Options

	wg     sync.WaitGroup
	stopCh chan struct{} // closed by Close; stops the flusher
	kick   chan struct{} // capacity 1; nudges the flusher out of its tick

	mu   sync.Mutex
	cond *sync.Cond
	// buf holds framed records appended but not yet handed to the file;
	// nextSeq counts appended records, syncedSeq counts fsync'd ones.
	// AppendSync waiters block until syncedSeq covers their record.
	buf       []byte
	nextSeq   uint64
	syncedSeq uint64
	// err is sticky: the first write/sync failure poisons the log and
	// every subsequent append reports it (a journal that silently drops
	// records would be worse than no journal).
	err    error
	closed bool
	// live tracks non-terminal jobs (what compaction preserves);
	// liveBytes approximates their framed footprint for the rotation
	// heuristic.
	live      map[string]service.SnapshotJob
	liveBytes int64

	// File state is owned by one goroutine at a time — Open before the
	// flusher starts, the flusher while running, Close after it stops —
	// so it needs no lock.
	f        *os.File
	segNum   uint64
	segBytes int64
}

// Open replays (and compacts) a journal directory and returns the log
// plus the pending jobs owed execution, in admission order — feed them
// to Manager.Restore before Manager.Start. The replay tolerates a torn
// or corrupt tail in the newest segment only (the signature of a crash
// mid-append); damage anywhere else fails Open rather than silently
// dropping acknowledged jobs. On return the directory holds a single
// fresh segment containing exactly the pending jobs.
func Open(dir string, opts Options) (*Log, []service.SnapshotJob, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}

	rep := NewReplay()
	lastSeg := uint64(0)
	for i, seg := range segs {
		data, rerr := os.ReadFile(filepath.Join(dir, seg.name))
		if rerr != nil {
			return nil, nil, fmt.Errorf("wal: reading %s: %w", seg.name, rerr)
		}
		recs, _, derr := DecodeAll(data)
		if derr != nil && i != len(segs)-1 {
			// Damage before the newest segment cannot be a crash tail;
			// refuse to replay a log with a hole in the middle.
			return nil, nil, fmt.Errorf("wal: segment %s: %w", seg.name, derr)
		}
		for _, rec := range recs {
			rep.Apply(rec)
		}
		lastSeg = seg.num
	}
	pending := rep.Pending()

	l := &Log{
		dir:    dir,
		opts:   opts,
		stopCh: make(chan struct{}),
		kick:   make(chan struct{}, 1),
		live:   make(map[string]service.SnapshotJob, len(pending)),
	}
	l.cond = sync.NewCond(&l.mu)

	// Boot-time compaction: everything live lands in one fresh segment,
	// then the history is deleted. A crash between the two steps leaves
	// both generations on disk; replay's first-submitted-wins dedupe
	// makes that harmless.
	if err := l.startSegment(lastSeg + 1); err != nil {
		return nil, nil, err
	}
	for _, j := range pending {
		frame, ferr := encodeFrame(Record{T: RecordSubmitted, At: j.SubmittedAt, Job: &j})
		if ferr != nil {
			l.f.Close()
			return nil, nil, ferr
		}
		if _, werr := l.f.Write(frame); werr != nil {
			l.f.Close()
			return nil, nil, fmt.Errorf("wal: compacting into %s: %w", segmentName(l.segNum), werr)
		}
		l.segBytes += int64(len(frame))
		l.live[j.ID] = j
		l.liveBytes += int64(len(frame))
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return nil, nil, fmt.Errorf("wal: syncing %s: %w", segmentName(l.segNum), err)
	}
	if err := syncDir(dir); err != nil {
		l.f.Close()
		return nil, nil, err
	}
	for _, seg := range segs {
		if rmErr := os.Remove(filepath.Join(dir, seg.name)); rmErr != nil {
			l.f.Close()
			return nil, nil, fmt.Errorf("wal: removing compacted %s: %w", seg.name, rmErr)
		}
	}
	if err := syncDir(dir); err != nil {
		l.f.Close()
		return nil, nil, err
	}

	l.wg.Add(1)
	go l.flusher()
	return l, pending, nil
}

// JobSubmitted journals an admitted job with an fsync barrier: when it
// returns nil the job survives a kill -9. Concurrent submitters ride
// the same group commit. Implements service.Journal.
func (l *Log) JobSubmitted(j service.SnapshotJob) error {
	return l.append(Record{T: RecordSubmitted, At: time.Now(), Job: &j}, true)
}

// JobStarted journals a queued→running transition, buffered (synced
// within SyncEvery). Implements service.Journal.
func (l *Log) JobStarted(id string) error {
	return l.append(Record{T: RecordStarted, At: time.Now(), ID: id}, false)
}

// JobTerminal journals a terminal transition, buffered. Once synced —
// and at the latest at the next compaction — the job's records stop
// replaying. Implements service.Journal.
func (l *Log) JobTerminal(id string, state service.State) error {
	return l.append(Record{T: RecordTerminal, At: time.Now(), ID: id, State: state}, false)
}

// append frames a record into the buffer and, when sync is set, blocks
// until an fsync covers it. The buffer hand-off is the group-commit
// mechanism: while the flusher is inside one fsync, later appends pile
// into the buffer and the next flush commits them all under a single
// sync.
func (l *Log) append(rec Record, sync bool) error {
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.buf = append(l.buf, frame...)
	l.nextSeq++
	seq := l.nextSeq
	l.applyLiveLocked(rec, int64(len(frame)))
	// Nudge the flusher; a pending nudge already covers this record.
	select {
	case l.kick <- struct{}{}:
	default:
	}
	if !sync {
		l.mu.Unlock()
		return nil
	}
	for l.syncedSeq < seq && l.err == nil {
		l.cond.Wait()
	}
	err = l.err
	l.mu.Unlock()
	return err
}

// applyLiveLocked keeps the compaction working set current; the caller
// holds mu.
func (l *Log) applyLiveLocked(rec Record, frameLen int64) {
	switch rec.T {
	case RecordSubmitted:
		if _, dup := l.live[rec.Job.ID]; !dup {
			l.live[rec.Job.ID] = *rec.Job
			l.liveBytes += frameLen
		}
	case RecordTerminal:
		if _, ok := l.live[rec.ID]; ok {
			delete(l.live, rec.ID)
			// liveBytes is a heuristic; shrink by the terminal frame's
			// size stand-in rather than tracking per-job footprints.
			l.liveBytes -= frameLen
			if l.liveBytes < 0 {
				l.liveBytes = 0
			}
		}
	}
}

// Pending snapshots the live (non-terminal) jobs, sorted by id —
// useful for tests and introspection; restores go through Open.
func (l *Log) Pending() []service.SnapshotJob {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]service.SnapshotJob, 0, len(l.live))
	for _, j := range l.live {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Err reports the sticky write error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes buffered records, stops the flusher, and closes the
// active segment. Appends after Close return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stopCh)
	l.wg.Wait() // the flusher's exit path runs one final flush
	l.mu.Lock()
	err := l.err
	l.mu.Unlock()
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// flusher owns the file: it drains the buffer on nudges and on the
// SyncEvery tick, fsyncs, wakes group-commit waiters, and rotates the
// segment when it outgrows its live payload.
func (l *Log) flusher() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stopCh:
			l.flush()
			return
		case <-l.kick:
		case <-t.C:
		}
		l.flush()
		l.maybeRotate()
	}
}

// flush writes and fsyncs everything buffered, then advances syncedSeq
// and wakes waiters. File I/O happens outside mu so appends never stall
// behind an fsync.
func (l *Log) flush() {
	l.mu.Lock()
	data := l.buf
	seq := l.nextSeq
	l.buf = nil
	bad := l.err
	l.mu.Unlock()
	if len(data) == 0 || bad != nil {
		return
	}
	var werr error
	if _, err := l.f.Write(data); err != nil {
		werr = fmt.Errorf("wal: writing %s: %w", segmentName(l.segNum), err)
	} else if err := l.f.Sync(); err != nil {
		werr = fmt.Errorf("wal: syncing %s: %w", segmentName(l.segNum), err)
	} else {
		l.segBytes += int64(len(data))
	}
	l.mu.Lock()
	if werr != nil {
		if l.err == nil {
			l.err = werr
		}
	} else if seq > l.syncedSeq {
		l.syncedSeq = seq
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// maybeRotate compacts the active segment once it exceeds the
// configured size AND at least twice the live footprint — the second
// condition keeps a large-but-live queue from thrashing rotations that
// cannot shrink anything.
func (l *Log) maybeRotate() {
	l.mu.Lock()
	rotate := l.err == nil && l.segBytes > l.opts.SegmentBytes && l.segBytes > 2*l.liveBytes
	var jobs []service.SnapshotJob
	if rotate {
		jobs = make([]service.SnapshotJob, 0, len(l.live))
		for _, j := range l.live {
			jobs = append(jobs, j)
		}
		sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	}
	l.mu.Unlock()
	if !rotate {
		return
	}
	// Records buffered after the snapshot above simply land in the new
	// segment on the next flush; replay's dedupe and unknown-id
	// tolerance make the overlap harmless (see Replay).
	if err := l.rotateInto(jobs); err != nil {
		l.mu.Lock()
		if l.err == nil {
			l.err = err
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// rotateInto writes the live set into a fresh segment, swaps it in, and
// deletes the outgrown one. Runs on the flusher goroutine only.
func (l *Log) rotateInto(jobs []service.SnapshotJob) error {
	oldSeg, oldF := l.segNum, l.f
	if err := l.startSegment(l.segNum + 1); err != nil {
		l.f = oldF // keep writing the old segment; the error is sticky anyway
		l.segNum = oldSeg
		return err
	}
	var liveBytes int64
	for _, j := range jobs {
		frame, err := encodeFrame(Record{T: RecordSubmitted, At: j.SubmittedAt, Job: &j})
		if err != nil {
			return err
		}
		if _, werr := l.f.Write(frame); werr != nil {
			return fmt.Errorf("wal: compacting into %s: %w", segmentName(l.segNum), werr)
		}
		l.segBytes += int64(len(frame))
		liveBytes += int64(len(frame))
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing %s: %w", segmentName(l.segNum), err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	// The new segment is durable; the old generation can go.
	if err := oldF.Close(); err != nil {
		return fmt.Errorf("wal: closing %s: %w", segmentName(oldSeg), err)
	}
	if err := os.Remove(filepath.Join(l.dir, segmentName(oldSeg))); err != nil {
		return fmt.Errorf("wal: removing %s: %w", segmentName(oldSeg), err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.mu.Lock()
	l.liveBytes = liveBytes
	l.mu.Unlock()
	return nil
}

// startSegment creates and activates segment n.
func (l *Log) startSegment(n uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(n)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", segmentName(n), err)
	}
	l.f = f
	l.segNum = n
	l.segBytes = 0
	return nil
}

func segmentName(n uint64) string { return fmt.Sprintf("wal-%08d.seg", n) }

type segment struct {
	name string
	num  uint64
}

// listSegments returns the directory's wal-*.seg files sorted by
// segment number.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		digits, ok := strings.CutPrefix(name, "wal-")
		if !ok {
			continue
		}
		digits, ok = strings.CutSuffix(digits, ".seg")
		if !ok {
			continue
		}
		n, perr := strconv.ParseUint(digits, 10, 64)
		if perr != nil {
			continue
		}
		segs = append(segs, segment{name: name, num: n})
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].num < segs[k].num })
	return segs, nil
}

// syncDir fsyncs a directory so entry creations/deletions are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening %s for sync: %w", dir, err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("wal: syncing directory %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: closing directory %s: %w", dir, cerr)
	}
	return nil
}
