package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReplay throws arbitrary bytes at the frame decoder and the replay
// fold. Invariants under any input:
//
//  1. no panic, anywhere;
//  2. goodLen covers exactly the decoded records: re-decoding the
//     goodLen prefix yields the same records and no error (this is the
//     truncation Open performs on a torn newest segment);
//  3. appending a valid frame after the goodLen prefix extends the
//     decode by exactly that record — corruption never poisons the
//     recovered prefix.
func FuzzReplay(f *testing.F) {
	// Seed corpus: a clean log, a torn tail, a corrupted CRC, and a
	// hostile length prefix.
	valid := func() []byte {
		var log []byte
		j := testJob(1)
		for _, rec := range []Record{
			{T: RecordSubmitted, At: j.SubmittedAt, Job: &j},
			{T: RecordStarted, ID: j.ID},
			{T: RecordTerminal, ID: j.ID, State: "done"},
		} {
			frame, err := encodeFrame(rec)
			if err != nil {
				f.Fatal(err)
			}
			log = append(log, frame...)
		}
		return log
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn mid-frame
	corrupt := append([]byte(nil), valid...)
	corrupt[frameHeader+3] ^= 0xff // payload bit flip under an intact CRC
	f.Add(corrupt)
	hostile := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(hostile, ^uint32(0)) // 4GiB length prefix
	f.Add(hostile)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen, err := DecodeAll(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range [0,%d]", goodLen, len(data))
		}
		if err == nil && goodLen != len(data) {
			t.Fatalf("clean decode covered %d of %d bytes", goodLen, len(data))
		}
		rep := NewReplay()
		for _, rec := range recs {
			rep.Apply(rec)
		}
		pending := rep.Pending()
		for i := 1; i < len(pending); i++ {
			if pending[i-1].ID >= pending[i].ID {
				t.Fatalf("pending not strictly id-sorted: %q then %q", pending[i-1].ID, pending[i].ID)
			}
		}

		again, againLen, aerr := DecodeAll(data[:goodLen])
		if aerr != nil || againLen != goodLen || len(again) != len(recs) {
			t.Fatalf("truncated prefix re-decode diverged: err=%v len=%d records=%d (want nil/%d/%d)",
				aerr, againLen, len(again), goodLen, len(recs))
		}

		extra, eerr := encodeFrame(Record{T: RecordStarted, ID: "j00000042"})
		if eerr != nil {
			t.Fatal(eerr)
		}
		extended, extLen, xerr := DecodeAll(append(bytes.Clone(data[:goodLen]), extra...))
		if xerr != nil || extLen != goodLen+len(extra) || len(extended) != len(recs)+1 {
			t.Fatalf("append after truncation diverged: err=%v len=%d records=%d", xerr, extLen, len(extended))
		}
	})
}
