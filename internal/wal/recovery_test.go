package wal_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"sophie/internal/graph"
	"sophie/internal/service"
	"sophie/internal/wal"
)

func intp(v int) *int { return &v }

// fastSpec is a job that completes in well under a second; the seed
// varies per job so results are distinguishable.
func fastSpec(t *testing.T, seed int64) service.JobSpec {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.Write(&buf, graph.KGraph(16)); err != nil {
		t.Fatalf("serializing K16: %v", err)
	}
	return service.JobSpec{
		Graph:    buf.String(),
		Replicas: 2,
		Seed:     seed,
		Config: service.ConfigOverrides{
			TileSize:    intp(8),
			LocalIters:  intp(2),
			GlobalIters: intp(15),
		},
	}
}

func waitDone(t *testing.T, m *service.Manager, id string) service.JobView {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		v, err := m.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if v.State.Terminal() {
			if v.State != service.StateDone {
				t.Fatalf("job %s ended %s (err %q), want done", id, v.State, v.Error)
			}
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return service.JobView{}
}

func shutdown(t *testing.T, m *service.Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestRestartRecoveryBitIdentical is the crash-recovery contract end to
// end: submit N jobs into a journaled manager that never starts
// executing (every job still queued — the worst-case loss window),
// hard-stop it, reopen the WAL, restore into a fresh manager, and
// require the replayed queue to execute bit-identically to an
// uninterrupted control run of the same specs.
func TestRestartRecoveryBitIdentical(t *testing.T) {
	const n = 4
	dir := t.TempDir()

	// Phase 1: journaled submissions into a manager whose workers never
	// start. JobSubmitted fsyncs, so each accepted job is durable the
	// moment Submit returns; the manager is then abandoned un-drained
	// (the closest a test harness gets to kill -9 — no snapshot, no
	// terminal records, jobs still queued).
	log1, pending, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh WAL replayed %d jobs", len(pending))
	}
	m1 := service.NewManager(service.Config{Journal: log1, Workers: 1})
	var ids []string
	for i := 0; i < n; i++ {
		v, serr := m1.Submit(fastSpec(t, int64(100+i)))
		if serr != nil {
			t.Fatalf("submit %d: %v", i, serr)
		}
		ids = append(ids, v.ID)
	}
	// Release the segment file handle; all durable bytes were fsync'd
	// by JobSubmitted before the submits returned.
	if err := log1.Close(); err != nil {
		t.Fatalf("close log1: %v", err)
	}

	// Phase 2: reopen and restore. Every job must come back queued.
	log2, pending, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer log2.Close()
	if len(pending) != n {
		t.Fatalf("replay recovered %d jobs, want %d", len(pending), n)
	}
	m2 := service.NewManager(service.Config{Journal: log2, Workers: 2})
	restored, rerr := m2.Restore(pending)
	if rerr != nil || restored != n {
		t.Fatalf("Restore = (%d, %v), want (%d, nil)", restored, rerr, n)
	}
	// Restore is idempotent by id: a second replay adds nothing.
	if again, _ := m2.Restore(pending); again != 0 {
		t.Fatalf("second Restore re-admitted %d jobs", again)
	}
	m2.Start()

	// Control: the same specs through a journal-less manager.
	ctrl := service.NewManager(service.Config{Workers: 2})
	ctrl.Start()
	ctrlIDs := make(map[string]string, n) // recovered id -> control id
	for i, id := range ids {
		v, serr := ctrl.Submit(fastSpec(t, int64(100+i)))
		if serr != nil {
			t.Fatalf("control submit %d: %v", i, serr)
		}
		ctrlIDs[id] = v.ID
	}

	for _, id := range ids {
		got := waitDone(t, m2, id)
		want := waitDone(t, ctrl, ctrlIDs[id])
		gj, _ := json.Marshal(got.Result)
		wj, _ := json.Marshal(want.Result)
		if !bytes.Equal(gj, wj) {
			t.Errorf("job %s: recovered result diverged from uninterrupted run\nrecovered: %s\ncontrol:   %s", id, gj, wj)
		}
	}
	shutdown(t, ctrl)
	shutdown(t, m2)

	// Stats must attribute the recovery.
	if st := m2.Stats(); st.Restored != n || st.JournalErrors != 0 {
		t.Errorf("stats = restored %d, journal errors %d; want %d, 0", st.Restored, st.JournalErrors, n)
	}

	// Phase 3: every job went terminal, so the next boot compacts the
	// log to nothing.
	if err := log2.Close(); err != nil {
		t.Fatalf("close log2: %v", err)
	}
	log3, pending, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	defer log3.Close()
	if len(pending) != 0 {
		t.Errorf("terminal jobs replayed after restart: %+v", pending)
	}
}

// TestRestoreDeadSpec: a recovered job whose spec no longer resolves
// must come back as a queryable failed job — and be journaled terminal
// so the next restart does not replay it again.
func TestRestoreDeadSpec(t *testing.T) {
	dir := t.TempDir()
	log1, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	m1 := service.NewManager(service.Config{Journal: log1, ProblemDir: t.TempDir()})
	v, err := m1.Submit(service.JobSpec{GraphFile: "gone.gset", Replicas: 1})
	if err == nil {
		// The file must not exist for this test; if submission succeeded
		// something else is wrong.
		t.Fatalf("submission of a missing graph_file succeeded: %+v", v)
	}
	// Write the submitted record by hand, as if the file existed at
	// submission time and vanished across the restart.
	if err := log1.JobSubmitted(service.SnapshotJob{
		ID: "j00000001", Tenant: "default", SubmittedAt: time.Now(),
		Spec: service.JobSpec{GraphFile: "gone.gset", Replicas: 1},
	}); err != nil {
		t.Fatalf("JobSubmitted: %v", err)
	}
	if err := log1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	log2, pending, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(pending) != 1 {
		t.Fatalf("pending = %+v, want the dead job", pending)
	}
	m2 := service.NewManager(service.Config{Journal: log2}) // no ProblemDir: spec cannot resolve
	restored, rerr := m2.Restore(pending)
	if rerr == nil {
		t.Fatal("Restore of an unresolvable spec reported no error")
	}
	if restored != 0 {
		t.Fatalf("restored = %d, want 0 runnable", restored)
	}
	jv, gerr := m2.Get("j00000001")
	if gerr != nil || jv.State != service.StateFailed {
		t.Fatalf("dead job view = %+v, %v; want failed", jv, gerr)
	}
	if err := log2.Close(); err != nil {
		t.Fatalf("close log2: %v", err)
	}

	// The failure was journaled terminal: a third boot replays nothing.
	log3, pending, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer log3.Close()
	if len(pending) != 0 {
		t.Errorf("dead job still replaying: %+v", pending)
	}
}
