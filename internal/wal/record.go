package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"sophie/internal/service"
)

// Record framing and replay: the byte-level contract of the job log.
//
// A segment is a flat sequence of frames:
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// The payload is one JSON-encoded Record. Length-prefixed framing means
// a torn frame (kill -9 mid-write) loses only the tail: everything
// before the first malformed frame replays, and there is no resync —
// bytes after a bad frame are unreachable by construction.

// Record types; T selects which of the other fields are meaningful.
const (
	// RecordSubmitted carries the full SnapshotJob of an admitted job.
	// It is written with an fsync barrier (the 202 durability point).
	RecordSubmitted = "submitted"
	// RecordStarted marks the queued→running transition of ID. Purely
	// informational for replay: a started-but-unterminated job was
	// interrupted mid-run and re-enters the queue.
	RecordStarted = "started"
	// RecordTerminal marks ID reaching State (done/failed/cancelled).
	// Terminal jobs drop out of replay and out of compacted segments.
	RecordTerminal = "terminal"
)

// Record is one journal entry. The submitted payload reuses
// service.SnapshotJob — the exact JSON shape of drain snapshots — so
// the two durability paths describe jobs identically.
type Record struct {
	T  string    `json:"t"`
	At time.Time `json:"at"`
	// Job is set on submitted records only.
	Job *service.SnapshotJob `json:"job,omitempty"`
	// ID is set on started and terminal records.
	ID string `json:"id,omitempty"`
	// State is set on terminal records.
	State service.State `json:"state,omitempty"`
}

// frameHeader is the fixed prefix of every frame: length + CRC.
const frameHeader = 8

// maxRecordBytes bounds one payload; anything larger in a length
// prefix is hostile or garbage, not a record (the HTTP layer caps
// submissions far below this).
const maxRecordBytes = 64 << 20

// Decode errors. ErrTorn marks an incomplete trailing frame (the
// expected shape of a crash mid-append); ErrCorrupt marks a frame whose
// bytes are present but wrong (CRC or JSON). Open tolerates both at the
// tail of the LAST segment only — in any earlier segment the log is
// damaged beyond what a crash explains, and replay refuses to guess.
var (
	ErrTorn    = errors.New("wal: torn trailing frame")
	ErrCorrupt = errors.New("wal: corrupt record")
)

// encodeFrame renders one record as a framed byte sequence.
func encodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encoding record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("wal: record payload %d bytes exceeds the %d-byte bound", len(payload), maxRecordBytes)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// DecodeAll parses frames from the front of data until it ends or a
// frame is malformed. It returns every cleanly decoded record and the
// byte offset they span (goodLen); err is nil only when the entire
// input decoded. A non-nil err wraps ErrTorn (frame runs past the end
// of data) or ErrCorrupt (bad length, CRC mismatch, bad JSON) — data
// past goodLen is unrecoverable either way, the sentinel only says
// whether a crash explains it.
func DecodeAll(data []byte) (recs []Record, goodLen int, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, off, fmt.Errorf("%w: %d header bytes at offset %d", ErrTorn, len(data)-off, off)
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		if n > maxRecordBytes {
			return recs, off, fmt.Errorf("%w: length prefix %d exceeds the %d-byte record bound at offset %d", ErrCorrupt, n, maxRecordBytes, off)
		}
		if int(n) > len(data)-off-frameHeader {
			return recs, off, fmt.Errorf("%w: frame wants %d payload bytes, %d remain at offset %d", ErrTorn, n, len(data)-off-frameHeader, off)
		}
		payload := data[off+frameHeader : off+frameHeader+int(n)]
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[off+4:off+8]); got != want {
			return recs, off, fmt.Errorf("%w: CRC mismatch at offset %d (stored %08x, computed %08x)", ErrCorrupt, off, want, got)
		}
		var rec Record
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			return recs, off, fmt.Errorf("%w: payload at offset %d: %v", ErrCorrupt, off, jerr)
		}
		recs = append(recs, rec)
		off += frameHeader + int(n)
	}
	return recs, off, nil
}

// Replay folds an ordered record stream into final job state. The fold
// is idempotent and tolerant by construction:
//
//  1. The first submitted record for an id wins; later duplicates (a
//     compaction racing buffered appends can produce them) are ignored.
//  2. started/terminal records for unknown ids are ignored — a
//     compacted segment legitimately drops the submitted records of
//     jobs that went terminal just before rotation.
//  3. A started-but-unterminated job is still PENDING: it was
//     interrupted mid-run and re-enters the queue on restore.
//  4. Terminal is sticky: no record un-terminates a job.
type Replay struct {
	jobs map[string]*replayJob
}

type replayJob struct {
	job      service.SnapshotJob
	started  bool
	terminal bool
}

// NewReplay returns an empty fold.
func NewReplay() *Replay {
	return &Replay{jobs: make(map[string]*replayJob)}
}

// Apply folds one record.
func (r *Replay) Apply(rec Record) {
	switch rec.T {
	case RecordSubmitted:
		if rec.Job == nil || rec.Job.ID == "" {
			return
		}
		if _, dup := r.jobs[rec.Job.ID]; dup {
			return
		}
		r.jobs[rec.Job.ID] = &replayJob{job: *rec.Job}
	case RecordStarted:
		if rj, ok := r.jobs[rec.ID]; ok {
			rj.started = true
		}
	case RecordTerminal:
		if rj, ok := r.jobs[rec.ID]; ok {
			rj.terminal = true
		}
	}
}

// Pending returns the jobs still owed execution — submitted (started or
// not) but never terminal — sorted by id. Ids are zero-padded
// ("j%08d"), so the lexicographic sort restores admission order even
// though concurrent submissions may land in the log out of order.
func (r *Replay) Pending() []service.SnapshotJob {
	out := make([]service.SnapshotJob, 0, len(r.jobs))
	for _, rj := range r.jobs {
		if !rj.terminal {
			out = append(out, rj.job)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}
