package service

import (
	"strings"
	"testing"

	"sophie/internal/metrics"
)

// TestWritePromCumulativeBuckets checks the histogram rendering against
// the Prometheus convention: _bucket series are cumulative in le, the
// +Inf bucket equals _count, and _sum is the raw sum.
func TestWritePromCumulativeBuckets(t *testing.T) {
	s := Stats{}
	s.Exec = metrics.HistogramSnapshot{
		Bounds: []float64{0.1, 1, 10},
		Counts: []uint64{2, 3, 0},
		Count:  7, // 2 beyond the last bound
		Sum:    42.5,
	}
	var b strings.Builder
	if err := writeProm(&b, s, 0); err != nil {
		t.Fatalf("writeProm: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`sophied_exec_seconds_bucket{le="0.1"} 2`,
		`sophied_exec_seconds_bucket{le="1"} 5`,
		`sophied_exec_seconds_bucket{le="10"} 5`,
		`sophied_exec_seconds_bucket{le="+Inf"} 7`,
		"sophied_exec_seconds_sum 42.5",
		"sophied_exec_seconds_count 7",
		"# TYPE sophied_exec_seconds histogram",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q:\n%s", want, out)
		}
	}
}

// TestWritePromWellFormed sanity-checks the whole exposition: every
// non-comment line is "name[{labels}] value", every metric has HELP and
// TYPE headers, and the op counters all appear.
func TestWritePromWellFormed(t *testing.T) {
	s := Stats{UptimeSeconds: 1.5, QueueDepth: 2, Submitted: 9, Draining: true}
	s.Ops.LocalMVM1b = 123
	s.Tenants = map[string]TenantStats{
		"acme": {QueueDepth: 3, Submitted: 5, RejectedRate: 1, RejectedShare: 2},
	}
	var b strings.Builder
	if err := writeProm(&b, s, 4); err != nil {
		t.Fatalf("writeProm: %v", err)
	}
	out := b.String()
	helps, types := 0, 0
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			helps++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			types++
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unexpected comment line %q", line)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || !strings.HasPrefix(fields[0], "sophied_") {
			t.Errorf("malformed sample line %q", line)
		}
	}
	if helps != types || helps == 0 {
		t.Errorf("HELP/TYPE header counts disagree: %d vs %d", helps, types)
	}
	for _, want := range []string{
		"sophied_uptime_seconds 1.5",
		"sophied_queue_depth 2",
		"sophied_jobs_submitted_total 9",
		"sophied_draining 1",
		"sophied_ops_local_mvm_1b_total 123",
		"sophied_queue_wait_seconds_count 0",
		"sophied_http_write_errors_total 4",
		`sophied_tenant_queue_depth{tenant="acme"} 3`,
		`sophied_tenant_jobs_submitted_total{tenant="acme"} 5`,
		`sophied_tenant_jobs_rejected_total{tenant="acme",reason="rate"} 1`,
		`sophied_tenant_jobs_rejected_total{tenant="acme",reason="share"} 2`,
		`sophied_tenant_jobs_rejected_total{tenant="acme",reason="other"} 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestWritePromPropagatesWriteErrors: a failing scrape connection must
// surface instead of being swallowed.
func TestWritePromPropagatesWriteErrors(t *testing.T) {
	if err := writeProm(&failingWriter{}, Stats{}, 0); err == nil {
		t.Fatal("writeProm on a failing writer returned nil")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errWriteFailed
}

var errWriteFailed = &writeFailedError{}

type writeFailedError struct{}

func (*writeFailedError) Error() string { return "synthetic write failure" }
