package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// HTTP JSON API over a Manager.
//
//	POST   /v1/jobs       submit a job (202; 400 bad spec; 429 full + Retry-After; 503 draining)
//	GET    /v1/jobs       list jobs (results stripped)
//	GET    /v1/jobs/{id}  job state + result (404 unknown/expired)
//	DELETE /v1/jobs/{id}  cancel (idempotent; 404 unknown/expired)
//	GET    /healthz       liveness + basic gauges
//	GET    /metrics       Stats: counters, merged OpCounts, latency histograms
//
// All responses are JSON. Errors use {"error": "..."} with the status
// code carrying the class. /metrics alone is dual-format: an Accept
// header naming text/plain, or ?format=prom, switches it to Prometheus
// text exposition (version 0.0.4) for scrapers.

// maxRequestBytes bounds a submission body; inline graphs of every
// GSET instance fit comfortably, while a runaway upload cannot exhaust
// the server.
const maxRequestBytes = 32 << 20

// NewServer wraps a Manager in its HTTP API.
func NewServer(m *Manager) http.Handler {
	s := &server{m: m}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.get)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /metrics", s.metrics)
	return mux
}

type server struct {
	m *Manager
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode errors past the header write are unrecoverable mid-body;
	// the client sees a truncated response and its JSON decode fails.
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429s for
	// clients that only read bodies.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: fmt.Sprintf("request body: %v", err)})
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding job spec: %v", err)})
		return
	}
	view, err := s.m.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, view)
	case errors.Is(err, ErrQueueFull):
		retry := s.m.RetryAfterHint()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error(), RetryAfterSeconds: retry})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrBadSpec):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (s *server) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{Jobs: s.m.List()})
}

func (s *server) get(w http.ResponseWriter, r *http.Request) {
	view, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.m.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *server) healthz(w http.ResponseWriter, _ *http.Request) {
	st := s.m.Stats()
	status := "ok"
	if st.Draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		QueueDepth    int     `json:"queue_depth"`
		InFlight      int     `json:"in_flight"`
	}{Status: status, UptimeSeconds: st.UptimeSeconds, QueueDepth: st.QueueDepth, InFlight: st.InFlight})
}

func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		// Write errors past the header are unrecoverable mid-body, same
		// as writeJSON: the scraper sees a truncated exposition.
		_ = writeProm(w, s.m.Stats())
		return
	}
	writeJSON(w, http.StatusOK, s.m.Stats())
}

// wantsProm decides the /metrics rendering: ?format=prom forces the
// text exposition, ?format=json forces JSON, and otherwise an Accept
// header mentioning text/plain (what Prometheus scrapers send) selects
// the exposition. The default stays JSON so existing tooling and
// browsers keep working.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom":
		return true
	case "json":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "text/plain")
}
