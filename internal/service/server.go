package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sophie/internal/problem"
)

// HTTP JSON API over a Manager.
//
//	POST   /v1/jobs              submit a job (202; 400 bad spec; 429 full/rate/share + Retry-After; 503 draining + Retry-After)
//	GET    /v1/jobs              list jobs (results stripped)
//	GET    /v1/jobs/{id}         job state + result (404 unknown/expired)
//	GET    /v1/jobs/{id}/events  SSE stream: state, progress, heartbeat, result events
//	DELETE /v1/jobs/{id}         cancel (idempotent; 404 unknown/expired)
//	GET    /healthz              readiness: 200 while admitting, 503 "draining" once a drain begins
//	GET    /livez                liveness: 200 for as long as the process serves
//	GET    /metrics              Stats: counters, merged OpCounts, latency histograms
//
// Submissions may carry an X-Tenant header naming the tenant the
// per-tenant admission gates account against; absent means "default".
//
// All responses are JSON except the SSE stream. Errors use
// {"error": "..."} with the status code carrying the class. /metrics
// alone is dual-format: an Accept header naming text/plain, or
// ?format=prom, switches it to Prometheus text exposition (version
// 0.0.4) for scrapers.

// maxRequestBytes bounds a submission body; inline graphs of every
// GSET instance fit comfortably, while a runaway upload cannot exhaust
// the server.
const maxRequestBytes = 32 << 20

// defaultHeartbeat paces SSE keepalive events when no progress flows.
const defaultHeartbeat = 15 * time.Second

// ServerOption customizes NewServer.
type ServerOption func(*server)

// WithHeartbeat sets the SSE keepalive period (default 15s).
func WithHeartbeat(d time.Duration) ServerOption {
	return func(s *server) {
		if d > 0 {
			s.heartbeat = d
		}
	}
}

// WithErrorHook installs a callback observing response-write failures
// (the errors writeJSON used to swallow); it runs on request goroutines
// and must be safe for concurrent use. The write-error counter on
// /metrics increments regardless of the hook.
func WithErrorHook(fn func(error)) ServerOption {
	return func(s *server) { s.onError = fn }
}

// NewServer wraps a Manager in its HTTP API.
func NewServer(m *Manager, opts ...ServerOption) http.Handler {
	s := &server{m: m, heartbeat: defaultHeartbeat}
	for _, opt := range opts {
		opt(s)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.get)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /livez", s.livez)
	mux.HandleFunc("GET /metrics", s.metrics)
	return mux
}

type server struct {
	m         *Manager
	heartbeat time.Duration
	onError   func(error)
	// writeErrs counts response-body write/encode failures (client gone
	// mid-response, broken pipe); exposed on /metrics.
	writeErrs atomic.Uint64
}

// noteWriteError funnels every response-write failure through one
// place: the counter always, the hook when installed.
func (s *server) noteWriteError(err error) {
	if err == nil {
		return
	}
	s.writeErrs.Add(1)
	if s.onError != nil {
		s.onError(err)
	}
}

// writeJSON renders a response body. Encode errors past the header
// write are unrecoverable mid-body (the client sees a truncated
// response), but they no longer vanish: they feed the write-error
// counter and hook.
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.noteWriteError(fmt.Errorf("encoding %d response: %w", status, err))
	}
}

type errorBody struct {
	Error string `json:"error"`
	// Field names the JSON path of a problem-spec rejection (e.g.
	// "problem.clauses[3]"); set only on structured 400s.
	Field string `json:"field,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503 for
	// clients that only read bodies.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// retryJSON renders a backpressure rejection: Retry-After header plus
// the mirrored body field.
func (s *server) retryJSON(w http.ResponseWriter, status int, err error, retry int) {
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	s.writeJSON(w, status, errorBody{Error: err.Error(), RetryAfterSeconds: retry})
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		s.writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: fmt.Sprintf("request body: %v", err)})
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding job spec: %v", err)})
		return
	}
	view, err := s.m.SubmitTenant(spec, r.Header.Get("X-Tenant"))
	var rateErr *RateLimitedError
	switch {
	case err == nil:
		s.writeJSON(w, http.StatusAccepted, view)
	case errors.As(err, &rateErr):
		// The tenant's bucket knows exactly when it refills.
		s.retryJSON(w, http.StatusTooManyRequests, err, rateErr.RetryAfterSeconds)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShareLimited):
		s.retryJSON(w, http.StatusTooManyRequests, err, s.m.RetryAfterHint())
	case errors.Is(err, ErrDraining):
		// Draining precedes a restart; the same latency-based hint tells
		// the client when the successor is likely admitting again.
		s.retryJSON(w, http.StatusServiceUnavailable, err, s.m.RetryAfterHint())
	case errors.Is(err, ErrBadSpec):
		body := errorBody{Error: err.Error()}
		var serr *problem.SpecError
		if errors.As(err, &serr) {
			body.Field = serr.Field
		}
		s.writeJSON(w, http.StatusBadRequest, body)
	default:
		s.writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (s *server) list(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{Jobs: s.m.List()})
}

func (s *server) get(w http.ResponseWriter, r *http.Request) {
	view, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, view)
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.m.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, view)
}

// events serves GET /v1/jobs/{id}/events as text/event-stream: an
// initial "state" event with the job's current view, "progress" events
// as the batch evaluates (monotone best energy), "heartbeat" events
// across quiet stretches, and a final "result" event carrying the
// terminal view — after which the stream ends. Slow clients shed oldest
// progress first and never the result (see eventHub).
func (s *server) events(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeJSON(w, http.StatusInternalServerError, errorBody{Error: "response writer cannot stream"})
		return
	}
	sub, view, err := s.m.Subscribe(r.PathValue("id"))
	if err != nil {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)

	send := func(event string, data []byte) bool {
		if _, werr := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); werr != nil {
			s.noteWriteError(fmt.Errorf("sse %s event: %w", event, werr))
			return false
		}
		fl.Flush()
		return true
	}
	initial, merr := json.Marshal(view)
	if merr != nil || !send("state", initial) {
		return
	}

	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-hb.C:
			if !send("heartbeat", []byte(fmt.Sprintf(`{"time":%q}`, now.UTC().Format(time.RFC3339)))) {
				return
			}
		case ev, open := <-sub.C:
			if !open {
				// Terminal: the final view travels outside the bounded
				// buffer, so it is never shed.
				send("result", sub.Final())
				return
			}
			if !send(ev.Event, ev.Data) {
				return
			}
		}
	}
}

// healthz is the READINESS probe: once a drain begins the service
// cannot admit work, and load balancers should route elsewhere — hence
// 503 with "draining" while poll/cancel endpoints keep answering.
func (s *server) healthz(w http.ResponseWriter, _ *http.Request) {
	st := s.m.Stats()
	status, code := "ok", http.StatusOK
	if st.Draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		QueueDepth    int     `json:"queue_depth"`
		InFlight      int     `json:"in_flight"`
	}{Status: status, UptimeSeconds: st.UptimeSeconds, QueueDepth: st.QueueDepth, InFlight: st.InFlight})
}

// livez is the LIVENESS probe: 200 for as long as the process can
// answer at all, draining included — a restart-the-pod signal only when
// it stops responding entirely.
func (s *server) livez(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}{Status: "alive", UptimeSeconds: time.Since(s.m.start).Seconds()})
}

func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	st := s.m.Stats()
	writeErrs := s.writeErrs.Load()
	if wantsProm(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if err := writeProm(w, st, writeErrs); err != nil {
			s.noteWriteError(fmt.Errorf("prometheus exposition: %w", err))
		}
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		Stats
		HTTPWriteErrors uint64 `json:"http_write_errors"`
	}{Stats: st, HTTPWriteErrors: writeErrs})
}

// wantsProm decides the /metrics rendering: ?format=prom forces the
// text exposition, ?format=json forces JSON, and otherwise an Accept
// header mentioning text/plain (what Prometheus scrapers send) selects
// the exposition. The default stays JSON so existing tooling and
// browsers keep working.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom":
		return true
	case "json":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "text/plain")
}
