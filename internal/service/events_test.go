package service

import (
	"fmt"
	"testing"
)

func drain(ch <-chan StreamEvent) []StreamEvent {
	var out []StreamEvent
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

// TestEventHubDropOldest pins the backpressure policy: a subscriber
// that stops reading sheds its OLDEST buffered progress events (each
// snapshot supersedes the last), keeps the newest, and still receives
// the terminal payload — which travels outside the buffer and can
// never be shed.
func TestEventHubDropOldest(t *testing.T) {
	h := newEventHub()
	ch := h.subscribe()
	total := subscriberBuffer + 5
	for i := 0; i < total; i++ {
		h.publish(StreamEvent{Event: "progress", Data: []byte(fmt.Sprintf("%d", i))})
	}
	h.close([]byte("final"))

	got := drain(ch)
	if len(got) != subscriberBuffer {
		t.Fatalf("buffered %d events, want the cap %d", len(got), subscriberBuffer)
	}
	// Oldest were shed: the retained window is the newest cap-sized run.
	if want := fmt.Sprintf("%d", total-subscriberBuffer); string(got[0].Data) != want {
		t.Errorf("first retained event %s, want %s (drop-oldest)", got[0].Data, want)
	}
	if want := fmt.Sprintf("%d", total-1); string(got[len(got)-1].Data) != want {
		t.Errorf("last retained event %s, want %s", got[len(got)-1].Data, want)
	}
	if string(h.finalPayload()) != "final" {
		t.Errorf("final payload %q survived = false", h.finalPayload())
	}
}

// TestEventHubTerminalSemantics: subscribing after close yields a
// closed channel plus the final payload; publish after close is a
// no-op; close is idempotent and first-final-wins.
func TestEventHubTerminalSemantics(t *testing.T) {
	h := newEventHub()
	h.close([]byte("first"))
	h.close([]byte("second"))
	h.publish(StreamEvent{Event: "progress", Data: []byte("late")})

	ch := h.subscribe()
	if _, open := <-ch; open {
		t.Fatal("post-close subscription channel not closed")
	}
	if string(h.finalPayload()) != "first" {
		t.Errorf("final = %q, want the first close to win", h.finalPayload())
	}
	if h.hasSubscribers() {
		t.Error("closed hub reports subscribers")
	}
}

// TestEventHubUnsubscribe: a detached subscriber's channel closes and
// later publishes skip it.
func TestEventHubUnsubscribe(t *testing.T) {
	h := newEventHub()
	ch := h.subscribe()
	other := h.subscribe()
	h.unsubscribe(ch)
	if _, open := <-ch; open {
		t.Fatal("unsubscribed channel not closed")
	}
	h.unsubscribe(ch) // idempotent
	h.publish(StreamEvent{Event: "progress", Data: []byte("x")})
	if got := drain(other); len(got) != 1 {
		t.Fatalf("surviving subscriber got %d events, want 1", len(got))
	}
	h.close(nil)
}
