package service

import (
	"errors"
	"testing"
	"time"
)

// TestTenantRateLimit drives the token bucket directly: burst passes,
// the next submission is rejected with a concrete RateLimitedError
// unwrapping to ErrRateLimited, and other tenants are untouched.
func TestTenantRateLimit(t *testing.T) {
	// Never Start(): jobs stay queued, so only admission logic runs.
	m := NewManager(Config{Tenant: TenantConfig{Rate: 0.001, Burst: 2}})
	for i := 0; i < 2; i++ {
		if _, err := m.SubmitTenant(fastSpec(t), "alice"); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	_, err := m.SubmitTenant(fastSpec(t), "alice")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-burst err = %v, want ErrRateLimited", err)
	}
	var rl *RateLimitedError
	if !errors.As(err, &rl) || rl.Tenant != "alice" || rl.RetryAfterSeconds < 1 {
		t.Fatalf("rate error detail = %+v", rl)
	}
	// Fairness: bob's bucket is independent.
	if _, err := m.SubmitTenant(fastSpec(t), "bob"); err != nil {
		t.Fatalf("bob blocked by alice's bucket: %v", err)
	}
	st := m.Stats()
	if ts := st.Tenants["alice"]; ts.Submitted != 2 || ts.RejectedRate != 1 {
		t.Errorf("alice stats = %+v, want 2 submitted / 1 rate-rejected", ts)
	}
	if names := st.TenantNames(); len(names) != 2 || names[0] != "alice" || names[1] != "bob" {
		t.Errorf("TenantNames() = %v, want sorted [alice bob]", names)
	}
}

// TestTenantTokenRefill: the bucket refills with wall time at Rate.
func TestTenantTokenRefill(t *testing.T) {
	ts := &tenantState{tokens: 0, last: time.Unix(1000, 0)}
	cfg := TenantConfig{Rate: 2, Burst: 4}
	if retry, ok := ts.takeToken(cfg, time.Unix(1000, 0)); ok || retry < 1 {
		t.Fatalf("empty bucket: ok=%v retry=%d", ok, retry)
	}
	// 1s at 2 tokens/s accrues 2 tokens.
	if _, ok := ts.takeToken(cfg, time.Unix(1001, 0)); !ok {
		t.Fatal("bucket did not refill after 1s")
	}
	if _, ok := ts.takeToken(cfg, time.Unix(1001, 0)); !ok {
		t.Fatal("second accrued token missing")
	}
	if retry, ok := ts.takeToken(cfg, time.Unix(1001, 0)); ok || retry != 1 {
		t.Fatalf("drained again: ok=%v retry=%d, want rejection with 1s hint", ok, retry)
	}
	// 10s refill caps at Burst, not 20.
	for i := 0; i < 4; i++ {
		if _, ok := ts.takeToken(cfg, time.Unix(1011, 0)); !ok {
			t.Fatalf("burst token %d missing", i)
		}
	}
	if _, ok := ts.takeToken(cfg, time.Unix(1011, 0)); ok {
		t.Fatal("bucket exceeded its burst capacity")
	}
}

// TestTenantShareCap: one tenant cannot occupy more than its share of
// the queue while other tenants still get in.
func TestTenantShareCap(t *testing.T) {
	m := NewManager(Config{QueueCap: 8, Tenant: TenantConfig{MaxQueueShare: 0.25}})
	// Cap = 2 queued jobs per tenant.
	for i := 0; i < 2; i++ {
		if _, err := m.SubmitTenant(fastSpec(t), "alice"); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := m.SubmitTenant(fastSpec(t), "alice")
	if !errors.Is(err, ErrShareLimited) {
		t.Fatalf("over-share err = %v, want ErrShareLimited", err)
	}
	var sl *ShareLimitedError
	if !errors.As(err, &sl) || sl.Tenant != "alice" || sl.Cap != 2 {
		t.Fatalf("share error detail = %+v", sl)
	}
	if _, err := m.SubmitTenant(fastSpec(t), "bob"); err != nil {
		t.Fatalf("bob blocked by alice's share: %v", err)
	}
	if ts := m.Stats().Tenants["alice"]; ts.QueueDepth != 2 || ts.RejectedShare != 1 {
		t.Errorf("alice stats = %+v, want depth 2 / 1 share-rejected", ts)
	}
}

// TestValidateTenant pins the label-safe alphabet.
func TestValidateTenant(t *testing.T) {
	for _, ok := range []string{"default", "a", "Team-7.staging_x", "0"} {
		if err := ValidateTenant(ok); err != nil {
			t.Errorf("ValidateTenant(%q) = %v, want nil", ok, err)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "has space", "quo\"te", "new\nline", "ütf", string(long)} {
		err := ValidateTenant(bad)
		if err == nil {
			t.Errorf("ValidateTenant(%q) accepted", bad)
		} else if !errors.Is(err, ErrBadSpec) {
			t.Errorf("ValidateTenant(%q) err %v does not wrap ErrBadSpec", bad, err)
		}
	}
}

// TestTenantSweep: idle tenant records are evicted after ResultTTL;
// tenants with queued jobs are kept.
func TestTenantSweep(t *testing.T) {
	m := NewManager(Config{ResultTTL: time.Minute})
	if _, err := m.SubmitTenant(fastSpec(t), "busy"); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	m.tenantLocked("idle", time.Now().Add(-2*time.Minute))
	m.tenants["idle"].lastSeen = time.Now().Add(-2 * time.Minute)
	m.mu.Unlock()
	m.sweep(time.Now())
	st := m.Stats()
	if _, ok := st.Tenants["idle"]; ok {
		t.Error("idle tenant survived the sweep")
	}
	if _, ok := st.Tenants["busy"]; !ok {
		t.Error("tenant with queued jobs was evicted")
	}
}
