package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sophie/internal/core"
	"sophie/internal/graph"
	"sophie/internal/ising"
)

// testServer wires a Manager behind httptest and cleans both up.
func testServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	m.Start()
	srv := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _ = m.Shutdown(ctx)
	})
	return srv, m
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeInto[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer func() { _ = resp.Body.Close() }()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func httpWaitState(t *testing.T, base, id string, s State) JobView {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			_ = resp.Body.Close()
			t.Fatalf("GET job: status %d", resp.StatusCode)
		}
		v := decodeInto[JobView](t, resp)
		if v.State == s {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for job %s to reach %s", id, s)
	return JobView{}
}

// TestServerEndToEndBitIdentical is the acceptance path: submit over
// HTTP, poll to completion, and check the JSON result is bit-identical
// to a direct core.RunBatch with the same seeds and config.
func TestServerEndToEndBitIdentical(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 2})
	spec := JobSpec{
		Graph: inlineGraph(t, 20),
		Seeds: []int64{11, 12, 13},
		Config: ConfigOverrides{
			TileSize:    intp(10),
			LocalIters:  intp(2),
			GlobalIters: intp(30),
		},
	}
	resp := postJSON(t, srv.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	sub := decodeInto[JobView](t, resp)
	if sub.State != StateQueued && sub.State != StateRunning {
		t.Fatalf("initial state %s", sub.State)
	}
	v := httpWaitState(t, srv.URL, sub.ID, StateDone)
	if v.Result == nil {
		t.Fatal("done job has no result")
	}

	cfg := core.DefaultConfig()
	cfg.TileSize = 10
	cfg.LocalIters = 2
	cfg.GlobalIters = 30
	solver, err := core.NewSolver(ising.FromMaxCut(graph.KGraph(20)), cfg)
	if err != nil {
		t.Fatalf("direct solver: %v", err)
	}
	want, err := solver.RunBatch([]int64{11, 12, 13}, core.BatchOptions{})
	if err != nil {
		t.Fatalf("direct batch: %v", err)
	}
	if v.Result.BestEnergy != want.BestEnergy {
		t.Errorf("best energy over HTTP %v, direct %v", v.Result.BestEnergy, want.BestEnergy)
	}
	if !bytes.Equal(int8Bytes(v.Result.BestSpins), int8Bytes(want.Best().BestSpins)) {
		t.Error("best spins over HTTP differ from direct RunBatch")
	}
	for i, r := range v.Result.Replicas {
		if w := want.Results[i]; r.BestEnergy != w.BestEnergy {
			t.Errorf("replica %d energy over HTTP %v, direct %v", i, r.BestEnergy, w.BestEnergy)
		}
	}
	wantCut := graph.KGraph(20).CutValue(want.Best().BestSpins)
	if v.Result.BestCut != wantCut {
		t.Errorf("best cut %v, want %v", v.Result.BestCut, wantCut)
	}
}

// TestServerQueueFull429 checks the backpressure path end to end:
// HTTP 429 with a Retry-After header and a mirrored body hint.
func TestServerQueueFull429(t *testing.T) {
	srv, m := testServer(t, Config{Workers: 1, QueueCap: 1})
	first := decodeInto[JobView](t, postJSON(t, srv.URL+"/v1/jobs", slowSpec(t)))
	httpWaitState(t, srv.URL, first.ID, StateRunning)
	second := decodeInto[JobView](t, postJSON(t, srv.URL+"/v1/jobs", slowSpec(t)))

	resp := postJSON(t, srv.URL+"/v1/jobs", slowSpec(t))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit status %d, want 429", resp.StatusCode)
	}
	retryHeader := resp.Header.Get("Retry-After")
	if retryHeader == "" {
		t.Error("429 without Retry-After header")
	}
	body := decodeInto[errorBody](t, resp)
	if body.RetryAfterSeconds < 1 {
		t.Errorf("retry_after_seconds = %d, want >= 1", body.RetryAfterSeconds)
	}
	if fmt.Sprint(body.RetryAfterSeconds) != retryHeader {
		t.Errorf("header Retry-After %q disagrees with body %d", retryHeader, body.RetryAfterSeconds)
	}
	if !strings.Contains(body.Error, "queue full") {
		t.Errorf("error body %q does not mention the full queue", body.Error)
	}
	for _, id := range []string{first.ID, second.ID} {
		if _, err := m.Cancel(id); err != nil {
			t.Fatalf("cleanup cancel %s: %v", id, err)
		}
	}
}

// TestServerCancelAndNotFound covers DELETE semantics and 404s.
func TestServerCancelAndNotFound(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 1})
	sub := decodeInto[JobView](t, postJSON(t, srv.URL+"/v1/jobs", slowSpec(t)))
	httpWaitState(t, srv.URL, sub.ID, StateRunning)

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d, want 200", resp.StatusCode)
	}
	_ = resp.Body.Close()
	httpWaitState(t, srv.URL, sub.ID, StateCancelled)

	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/j99999999"},
		{http.MethodDelete, "/v1/jobs/j99999999"},
	} {
		req, err := http.NewRequest(probe.method, srv.URL+probe.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", probe.method, probe.path, err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
		_ = resp.Body.Close()
	}
}

// TestServerBadRequests checks spec validation and strict JSON decoding
// both map to 400.
func TestServerBadRequests(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"unknown field": `{"graph": "x", "bogus_field": 1}`,
		"not json":      `{{{`,
		"bad spec":      `{"preset": "G999"}`,
		"no source":     `{}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		eb := decodeInto[errorBody](t, resp)
		if eb.Error == "" {
			t.Errorf("%s: empty error body", name)
		}
	}
}

// TestServerHealthzAndMetrics exercises the observability endpoints
// through a full job lifecycle.
func TestServerHealthzAndMetrics(t *testing.T) {
	srv, m := testServer(t, Config{Workers: 1})
	sub := decodeInto[JobView](t, postJSON(t, srv.URL+"/v1/jobs", fastSpec(t)))
	httpWaitState(t, srv.URL, sub.ID, StateDone)

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	hz := decodeInto[struct {
		Status string `json:"status"`
	}](t, resp)
	if hz.Status != "ok" {
		t.Errorf("healthz status %q, want ok", hz.Status)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	st := decodeInto[Stats](t, resp)
	if st.Submitted != 1 || st.Completed != 1 {
		t.Errorf("metrics submitted/completed = %d/%d, want 1/1", st.Submitted, st.Completed)
	}
	if st.Ops.LocalMVM1b == 0 {
		t.Error("merged op counts empty after a completed job")
	}
	if st.Exec.Count != 1 {
		t.Errorf("exec histogram count %d, want 1", st.Exec.Count)
	}
	if st.QueueWait.Count != 1 {
		t.Errorf("queue wait histogram count %d, want 1", st.QueueWait.Count)
	}

	// List strips result payloads.
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET /v1/jobs: %v", err)
	}
	list := decodeInto[struct {
		Jobs []JobView `json:"jobs"`
	}](t, resp)
	if len(list.Jobs) != 1 {
		t.Fatalf("list has %d jobs, want 1", len(list.Jobs))
	}
	if list.Jobs[0].Result != nil {
		t.Error("list should strip result payloads")
	}

	// Draining flips readiness to 503 "draining" (load balancers must
	// route away), while liveness stays 200 (the pod is fine).
	m.StopAdmission()
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz draining: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status %d, want 503", resp.StatusCode)
	}
	hz = decodeInto[struct {
		Status string `json:"status"`
	}](t, resp)
	if hz.Status != "draining" {
		t.Errorf("healthz status %q after StopAdmission, want draining", hz.Status)
	}
	resp, err = http.Get(srv.URL + "/livez")
	if err != nil {
		t.Fatalf("GET /livez draining: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining livez status %d, want 200", resp.StatusCode)
	}
	lz := decodeInto[struct {
		Status string `json:"status"`
	}](t, resp)
	if lz.Status != "alive" {
		t.Errorf("livez status %q, want alive", lz.Status)
	}
}

// TestServerHealthzTransition pins the readiness status-code flip:
// 200 while admitting, 503 the moment a drain begins.
func TestServerHealthzTransition(t *testing.T) {
	srv, m := testServer(t, Config{Workers: 1})
	get := func() int {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		_ = resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != http.StatusOK {
		t.Fatalf("healthz before drain: %d, want 200", code)
	}
	m.StopAdmission()
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after StopAdmission: %d, want 503", code)
	}
}

// TestServerDraining503RetryAfter: a draining submit is a backpressure
// rejection like any other — it must carry the Retry-After header and
// the mirrored body field, matching the 429 contract.
func TestServerDraining503RetryAfter(t *testing.T) {
	srv, m := testServer(t, Config{Workers: 1})
	m.StopAdmission()
	resp := postJSON(t, srv.URL+"/v1/jobs", fastSpec(t))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit status %d, want 503", resp.StatusCode)
	}
	retryHeader := resp.Header.Get("Retry-After")
	if retryHeader == "" {
		t.Error("503 without Retry-After header")
	}
	body := decodeInto[errorBody](t, resp)
	if body.RetryAfterSeconds < 1 {
		t.Errorf("retry_after_seconds = %d, want >= 1", body.RetryAfterSeconds)
	}
	if fmt.Sprint(body.RetryAfterSeconds) != retryHeader {
		t.Errorf("header Retry-After %q disagrees with body %d", retryHeader, body.RetryAfterSeconds)
	}
	if !strings.Contains(body.Error, "draining") {
		t.Errorf("error body %q does not mention draining", body.Error)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

// readSSE consumes a text/event-stream body until the stream ends or
// maxEvents arrive.
func readSSE(t *testing.T, body io.Reader, maxEvents int) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" || cur.data != "" {
				events = append(events, cur)
				cur = sseEvent{}
				if len(events) >= maxEvents {
					return events
				}
			}
		}
	}
	return events
}

// TestServerSSEStream subscribes to a running job's event stream and
// checks the full shape: an initial state event, progress events whose
// best_energy is monotone nonincreasing (the reducer's fold is a min),
// and a final result event carrying the terminal view, after which the
// stream closes.
func TestServerSSEStream(t *testing.T) {
	srv, m := testServer(t, Config{Workers: 1})
	// Park a blocker on the single worker so the target job stays queued
	// until the subscription is attached — every progress event of the
	// target is then observable, race-free.
	blocker := decodeInto[JobView](t, postJSON(t, srv.URL+"/v1/jobs", slowSpec(t)))
	httpWaitState(t, srv.URL, blocker.ID, StateRunning)
	spec := fastSpec(t)
	spec.Config.GlobalIters = intp(400)
	sub := decodeInto[JobView](t, postJSON(t, srv.URL+"/v1/jobs", spec))

	resp, err := http.Get(srv.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type %q", ct)
	}
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatalf("releasing blocker: %v", err)
	}

	events := readSSE(t, resp.Body, 10_000)
	if len(events) < 2 {
		t.Fatalf("stream delivered %d events, want state + result at least", len(events))
	}
	if events[0].event != "state" {
		t.Fatalf("first event %q, want state", events[0].event)
	}
	last := events[len(events)-1]
	if last.event != "result" {
		t.Fatalf("last event %q, want result", last.event)
	}
	var final JobView
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("result event state %s (result nil: %v), want done with result", final.State, final.Result == nil)
	}

	prev := 0.0
	sawProgress := false
	for _, ev := range events[1 : len(events)-1] {
		if ev.event != "progress" {
			continue
		}
		var p struct {
			BestEnergy float64 `json:"best_energy"`
		}
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatalf("progress payload %q: %v", ev.data, err)
		}
		if sawProgress && p.BestEnergy > prev {
			t.Errorf("best_energy regressed %v -> %v; the reducer fold must be monotone", prev, p.BestEnergy)
		}
		prev = p.BestEnergy
		sawProgress = true
	}
	if !sawProgress {
		t.Error("stream carried no progress events for a multi-iteration job")
	}
	if final.Result.BestEnergy > prev {
		t.Errorf("final best %v worse than last streamed progress %v", final.Result.BestEnergy, prev)
	}
}

// TestServerSSETerminalJob: subscribing to an already-finished job must
// immediately deliver state + result and end the stream — no hang, no
// heartbeat wait.
func TestServerSSETerminalJob(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 1})
	sub := decodeInto[JobView](t, postJSON(t, srv.URL+"/v1/jobs", fastSpec(t)))
	httpWaitState(t, srv.URL, sub.ID, StateDone)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/jobs/"+sub.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	events := readSSE(t, resp.Body, 10)
	if len(events) != 2 || events[0].event != "state" || events[1].event != "result" {
		t.Fatalf("terminal-job stream = %+v, want exactly [state, result]", events)
	}

	// Unknown job: 404, not a stream.
	resp404, err := http.Get(srv.URL + "/v1/jobs/j99999999/events")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("events on unknown job: status %d, want 404", resp404.StatusCode)
	}
}

// TestServerTenantRejections drives both tenant gates over HTTP: the
// token bucket maps to 429 with the bucket's own retry hint, the
// queue-share cap to 429 with the service hint, and the default tenant
// label lands in the Prometheus exposition.
func TestServerTenantRejections(t *testing.T) {
	srv, m := testServer(t, Config{
		Workers:  1,
		QueueCap: 4,
		Tenant:   TenantConfig{Rate: 0.01, Burst: 1, MaxQueueShare: 0.25},
	})
	submit := func(tenant string) *http.Response {
		t.Helper()
		buf, err := json.Marshal(slowSpec(t))
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("submit as %q: %v", tenant, err)
		}
		return resp
	}

	// Burst 1: the first submission passes, the second trips the bucket.
	first := submit("alice")
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d, want 202", first.StatusCode)
	}
	v := decodeInto[JobView](t, first)
	if v.Tenant != "alice" {
		t.Errorf("accepted job tenant %q, want alice", v.Tenant)
	}
	second := submit("alice")
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited submit status %d, want 429", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Error("rate-limited 429 without Retry-After")
	}
	body := decodeInto[errorBody](t, second)
	if !strings.Contains(body.Error, "rate limit") || body.RetryAfterSeconds < 1 {
		t.Errorf("rate-limit body = %+v", body)
	}

	// A different tenant is unaffected (fairness): bob's bucket is his own.
	third := submit("bob")
	if third.StatusCode != http.StatusAccepted {
		t.Fatalf("bob's submit status %d, want 202", third.StatusCode)
	}
	bobV := decodeInto[JobView](t, third)

	// Invalid tenant names are 400s.
	bad := submit("sneaky tenant!")
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid tenant status %d, want 400", bad.StatusCode)
	}
	_ = bad.Body.Close()

	// Tenant series appear on the exposition with validated labels.
	resp, err := http.Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	var promBody bytes.Buffer
	if _, err := promBody.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	for _, want := range []string{
		`sophied_tenant_jobs_submitted_total{tenant="alice"} 1`,
		`sophied_tenant_jobs_rejected_total{tenant="alice",reason="rate"} 1`,
		`sophied_tenant_jobs_submitted_total{tenant="bob"} 1`,
	} {
		if !strings.Contains(promBody.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	for _, id := range []string{v.ID, bobV.ID} {
		if _, err := m.Cancel(id); err != nil {
			t.Fatalf("cleanup cancel: %v", err)
		}
	}
}

// TestServerJobProgress watches a long-running job through GET
// /v1/jobs/{id}: while it runs, the view carries a live progress block
// reduced from the execution trace (iteration, best energy, replica
// counts); once terminal, progress disappears in favor of the result.
func TestServerJobProgress(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 1})
	sub := decodeInto[JobView](t, postJSON(t, srv.URL+"/v1/jobs", slowSpec(t)))

	var seen JobView
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for live progress")
		}
		resp, err := http.Get(srv.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		seen = decodeInto[JobView](t, resp)
		if seen.State == StateRunning && seen.Progress != nil && seen.Progress.GlobalIter >= 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	p := seen.Progress
	if p.RunsStarted < 1 {
		t.Errorf("progress runs_started = %d, want >= 1", p.RunsStarted)
	}
	if p.Events == 0 {
		t.Error("progress observed no events")
	}
	if p.BestEnergy >= 0 {
		// K16 under the max-cut mapping always finds a negative energy.
		t.Errorf("progress best_energy = %v, want < 0", p.BestEnergy)
	}
	if p.ElapsedS <= 0 {
		t.Errorf("progress elapsed_s = %v, want > 0", p.ElapsedS)
	}

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	_ = resp.Body.Close()
	done := httpWaitState(t, srv.URL, sub.ID, StateCancelled)
	if done.Progress != nil {
		t.Error("terminal job still reports progress")
	}
}

// TestServerMetricsFormatNegotiation checks /metrics dual formats: JSON
// by default, Prometheus text on ?format=prom or Accept: text/plain,
// and ?format=json as an explicit override.
func TestServerMetricsFormatNegotiation(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 1})
	sub := decodeInto[JobView](t, postJSON(t, srv.URL+"/v1/jobs", fastSpec(t)))
	httpWaitState(t, srv.URL, sub.ID, StateDone)

	get := func(url, accept string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatalf("reading body: %v", err)
		}
		_ = resp.Body.Close()
		return resp, buf.String()
	}

	// Default: JSON.
	resp, body := get(srv.URL+"/metrics", "")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type %q, want application/json", ct)
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("default /metrics not JSON: %v", err)
	}
	if st.Completed != 1 {
		t.Errorf("JSON stats completed = %d, want 1", st.Completed)
	}

	// ?format=prom and Accept: text/plain both select the exposition.
	for _, c := range []struct{ url, accept string }{
		{srv.URL + "/metrics?format=prom", ""},
		{srv.URL + "/metrics", "text/plain"},
	} {
		resp, body = get(c.url, c.accept)
		if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
			t.Errorf("%s accept=%q: Content-Type %q", c.url, c.accept, ct)
		}
		for _, want := range []string{
			"# TYPE sophied_jobs_completed_total counter",
			"sophied_jobs_completed_total 1",
			"# TYPE sophied_exec_seconds histogram",
			`sophied_exec_seconds_bucket{le="+Inf"} 1`,
			"sophied_ops_local_mvm_1b_total",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("%s accept=%q: exposition missing %q:\n%s", c.url, c.accept, want, body)
			}
		}
	}

	// Explicit ?format=json wins even against a text/plain Accept.
	resp, body = get(srv.URL+"/metrics?format=json", "text/plain")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("format=json Content-Type %q", ct)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("format=json body not JSON: %v", err)
	}
}

// TestServerConcurrentSubmissions hammers the API from several clients
// at once — primarily a -race exercise over the full stack.
func TestServerConcurrentSubmissions(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 4, QueueCap: 64})
	const clients = 8
	base := fastSpec(t)
	type outcome struct {
		id  string
		err error
	}
	results := make(chan outcome, clients)
	// No t.Fatal inside the goroutines: report through the channel.
	for c := 0; c < clients; c++ {
		go func(c int) {
			spec := base
			spec.Seed = int64(100 + c)
			buf, err := json.Marshal(spec)
			if err != nil {
				results <- outcome{err: err}
				return
			}
			resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(buf))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			defer func() { _ = resp.Body.Close() }()
			if resp.StatusCode != http.StatusAccepted {
				results <- outcome{err: fmt.Errorf("client %d: status %d", c, resp.StatusCode)}
				return
			}
			var v JobView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				results <- outcome{err: fmt.Errorf("client %d: decode: %v", c, err)}
				return
			}
			results <- outcome{id: v.ID}
		}(c)
	}
	var submitted []string
	for c := 0; c < clients; c++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		submitted = append(submitted, o.id)
	}
	for _, id := range submitted {
		v := httpWaitState(t, srv.URL, id, StateDone)
		if v.Result == nil {
			t.Errorf("job %s done without result", id)
		}
	}
}
