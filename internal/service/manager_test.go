package service

import (
	"bytes"
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"sophie/internal/core"
	"sophie/internal/graph"
	"sophie/internal/ising"
)

func intp(v int) *int         { return &v }
func f64p(v float64) *float64 { return &v }
func strp(v string) *string   { return &v }

// inlineGraph serializes a complete graph K_n to GSET text for inline
// submission.
func inlineGraph(t *testing.T, n int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.Write(&buf, graph.KGraph(n)); err != nil {
		t.Fatalf("serializing K%d: %v", n, err)
	}
	return buf.String()
}

// fastSpec is a job that completes in well under a second.
func fastSpec(t *testing.T) JobSpec {
	return JobSpec{
		Graph:    inlineGraph(t, 16),
		Replicas: 2,
		Seed:     3,
		Config: ConfigOverrides{
			TileSize:    intp(8),
			LocalIters:  intp(2),
			GlobalIters: intp(15),
		},
	}
}

// slowSpec is a job that runs long enough to be observed in flight but
// stops promptly at a global-iteration boundary when cancelled.
func slowSpec(t *testing.T) JobSpec {
	return JobSpec{
		Graph:    inlineGraph(t, 16),
		Replicas: 1,
		Seed:     5,
		Config: ConfigOverrides{
			TileSize:    intp(8),
			LocalIters:  intp(1),
			GlobalIters: intp(50_000_000),
		},
	}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := NewManager(cfg)
	m.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _ = m.Shutdown(ctx)
	})
	return m
}

func waitFor(t *testing.T, m *Manager, id string, pred func(JobView) bool) JobView {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		v, err := m.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if pred(v) {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting on job %s", id)
	return JobView{}
}

func waitState(t *testing.T, m *Manager, id string, s State) JobView {
	t.Helper()
	return waitFor(t, m, id, func(v JobView) bool { return v.State == s })
}

// TestJobBitIdenticalToDirectRunBatch is the determinism contract: a
// job that runs to completion through the whole service stack (queue,
// worker, solver cache, WithRuntime) must return results bit-identical
// to a direct core.RunBatch with the same problem, config, and seeds.
func TestJobBitIdenticalToDirectRunBatch(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	spec := JobSpec{
		Graph:    inlineGraph(t, 24),
		Replicas: 3,
		Seed:     7,
		Config: ConfigOverrides{
			TileSize:    intp(8),
			LocalIters:  intp(3),
			GlobalIters: intp(25),
			Phi:         f64p(0.15),
		},
	}
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	v = waitState(t, m, v.ID, StateDone)
	if v.Result == nil {
		t.Fatal("done job has no result")
	}
	if v.TimedOut {
		t.Fatal("unexpected timed_out on an unbounded job")
	}

	cfg := core.DefaultConfig()
	cfg.Seed = 7
	cfg.TileSize = 8
	cfg.LocalIters = 3
	cfg.GlobalIters = 25
	cfg.Phi = 0.15
	solver, err := core.NewSolver(ising.FromMaxCut(graph.KGraph(24)), cfg)
	if err != nil {
		t.Fatalf("direct solver: %v", err)
	}
	wantSeeds, err := core.SeedRange(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := solver.RunBatch(wantSeeds, core.BatchOptions{})
	if err != nil {
		t.Fatalf("direct batch: %v", err)
	}

	if v.Result.BestEnergy != want.BestEnergy {
		t.Errorf("best energy: service %v, direct %v", v.Result.BestEnergy, want.BestEnergy)
	}
	if v.Result.BestIndex != want.BestIndex {
		t.Errorf("best index: service %d, direct %d", v.Result.BestIndex, want.BestIndex)
	}
	if !bytes.Equal(int8Bytes(v.Result.BestSpins), int8Bytes(want.Best().BestSpins)) {
		t.Error("best spins differ from direct RunBatch")
	}
	if len(v.Result.Replicas) != len(want.Results) {
		t.Fatalf("replica count: service %d, direct %d", len(v.Result.Replicas), len(want.Results))
	}
	for i, r := range v.Result.Replicas {
		w := want.Results[i]
		if r.BestEnergy != w.BestEnergy || r.BestGlobalIter != w.BestGlobalIter || r.GlobalItersRun != w.GlobalItersRun {
			t.Errorf("replica %d: service (%v, %d, %d), direct (%v, %d, %d)",
				i, r.BestEnergy, r.BestGlobalIter, r.GlobalItersRun,
				w.BestEnergy, w.BestGlobalIter, w.GlobalItersRun)
		}
	}
	if v.Result.Ops != want.Ops {
		t.Errorf("op counts: service %+v, direct %+v", v.Result.Ops, want.Ops)
	}
}

func int8Bytes(s []int8) []byte {
	out := make([]byte, len(s))
	for i, v := range s {
		out[i] = byte(v)
	}
	return out
}

// TestQueueFullBackpressure fills a 1-slot queue behind a busy worker
// and checks the third submission is rejected with ErrQueueFull.
func TestQueueFullBackpressure(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueCap: 1})

	running, err := m.Submit(slowSpec(t))
	if err != nil {
		t.Fatalf("submit running job: %v", err)
	}
	waitState(t, m, running.ID, StateRunning)

	queued, err := m.Submit(slowSpec(t))
	if err != nil {
		t.Fatalf("submit queued job: %v", err)
	}

	if _, err := m.Submit(slowSpec(t)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit to full queue: got %v, want ErrQueueFull", err)
	}
	if hint := m.RetryAfterHint(); hint < 1 || hint > 60 {
		t.Errorf("retry-after hint %d outside [1, 60]", hint)
	}
	st := m.Stats()
	if st.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", st.Rejected)
	}
	if st.QueueDepth != 1 {
		t.Errorf("queue depth = %d, want 1", st.QueueDepth)
	}

	// Cancelling the queued job frees a slot immediately.
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if _, err := m.Submit(fastSpec(t)); err != nil {
		t.Fatalf("submit after freeing a slot: %v", err)
	}
	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
}

// TestCancelRunningJob cancels an in-flight job and checks it lands in
// cancelled with its best-so-far partial result attached.
func TestCancelRunningJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	v, err := m.Submit(slowSpec(t))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, m, v.ID, StateRunning)
	cv, err := m.Cancel(v.ID)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if !cv.CancelRequested {
		t.Error("cancel_requested not set after Cancel")
	}
	v = waitState(t, m, v.ID, StateCancelled)
	if v.Result == nil {
		t.Fatal("cancelled running job should keep its partial result")
	}
	if v.Result.Stopped == 0 {
		t.Error("partial result should report stopped replicas")
	}
	if n := len(v.Result.BestSpins); n != 16 {
		t.Errorf("partial best spins length %d, want 16", n)
	}
	// Cancelling a terminal job is an idempotent no-op.
	again, err := m.Cancel(v.ID)
	if err != nil || again.State != StateCancelled {
		t.Errorf("second cancel: state %s err %v", again.State, err)
	}
	st := m.Stats()
	if st.Cancelled != 1 {
		t.Errorf("cancelled counter = %d, want 1", st.Cancelled)
	}
}

// TestJobTimeout bounds a long job with timeout_ms and checks it
// completes as done + timed_out with stopped replicas.
func TestJobTimeout(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	spec := slowSpec(t)
	spec.TimeoutMS = 80
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	v = waitFor(t, m, v.ID, func(v JobView) bool { return v.State.Terminal() })
	if v.State != StateDone {
		t.Fatalf("state %s, want done (err %q)", v.State, v.Error)
	}
	if !v.TimedOut {
		t.Error("timed_out not set on a deadline-bounded job")
	}
	if v.Result == nil || v.Result.Stopped == 0 {
		t.Fatal("timed-out job should keep a partial result with stopped replicas")
	}
	if st := m.Stats(); st.TimedOut != 1 {
		t.Errorf("timed_out counter = %d, want 1", st.TimedOut)
	}
}

// TestShutdownDrainsInFlight starts one in-flight and one queued job,
// then shuts down: the in-flight job must finish to a valid result, the
// queued one must be snapshotted and cancelled, and later submissions
// must see ErrDraining.
func TestShutdownDrainsInFlight(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	m.Start()

	inflight := JobSpec{
		Graph:    inlineGraph(t, 16),
		Replicas: 1,
		Seed:     9,
		Config: ConfigOverrides{
			TileSize:    intp(8),
			LocalIters:  intp(1),
			GlobalIters: intp(4000),
		},
	}
	a, err := m.Submit(inflight)
	if err != nil {
		t.Fatalf("submit in-flight: %v", err)
	}
	waitState(t, m, a.ID, StateRunning)
	b, err := m.Submit(fastSpec(t))
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	snap, err := m.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if len(snap.Jobs) != 1 || snap.Jobs[0].ID != b.ID {
		t.Fatalf("snapshot = %+v, want exactly the queued job %s", snap.Jobs, b.ID)
	}
	if snap.Jobs[0].Spec.Graph != fastSpec(t).Graph {
		t.Error("snapshot spec does not round-trip the submission")
	}

	av, err := m.Get(a.ID)
	if err != nil {
		t.Fatalf("get drained job: %v", err)
	}
	if av.State != StateDone || av.Result == nil {
		t.Fatalf("drained in-flight job: state %s result %v, want done with result", av.State, av.Result != nil)
	}
	model := ising.FromMaxCut(graph.KGraph(16))
	if got := model.Energy(av.Result.BestSpins); got != av.Result.BestEnergy {
		t.Errorf("drained result inconsistent: energy(spins) %v != best_energy %v", got, av.Result.BestEnergy)
	}
	bv, err := m.Get(b.ID)
	if err != nil {
		t.Fatalf("get snapshotted job: %v", err)
	}
	if bv.State != StateCancelled {
		t.Errorf("snapshotted job state %s, want cancelled", bv.State)
	}
	if _, err := m.Submit(fastSpec(t)); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after shutdown: got %v, want ErrDraining", err)
	}
}

// TestShutdownForceCancel shuts down under a deadline shorter than the
// in-flight job: the job is force-cancelled at an iteration boundary
// and still records a valid partial result.
func TestShutdownForceCancel(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	m.Start()
	v, err := m.Submit(slowSpec(t))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, m, v.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	snap, err := m.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown error = %v, want DeadlineExceeded", err)
	}
	if len(snap.Jobs) != 0 {
		t.Errorf("snapshot has %d jobs, want 0 (nothing was queued)", len(snap.Jobs))
	}
	fv, err := m.Get(v.ID)
	if err != nil {
		t.Fatalf("get force-drained job: %v", err)
	}
	if fv.State != StateDone || fv.Result == nil || fv.Result.Stopped != 1 {
		t.Fatalf("force-drained job: state %s, result %v — want done with 1 stopped replica", fv.State, fv.Result)
	}
}

// TestShutdownJoinsJanitor pins the goroutine-ownership fix flagged by
// sophielint's goleak check: Shutdown must wait on m.bg — the janitor's
// lifecycle group — before returning, so no Manager goroutine outlives
// it. The test impersonates a second background goroutine by holding
// the group open: a Shutdown that returns while the group is non-empty
// has lost the join.
func TestShutdownJoinsJanitor(t *testing.T) {
	m := NewManager(Config{Workers: 1, JanitorEvery: time.Hour})
	m.Start()
	m.bg.Add(1) // held open until the test releases it below

	returned := make(chan struct{})
	go func() {
		defer close(returned)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	select {
	case <-returned:
		t.Fatal("Shutdown returned while a background goroutine was still registered in m.bg")
	case <-time.After(100 * time.Millisecond):
	}
	m.bg.Done()
	select {
	case <-returned:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the background group emptied")
	}
}

// TestSweepEvictsExpiredResults drives the TTL sweep directly.
func TestSweepEvictsExpiredResults(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, ResultTTL: time.Minute})
	v, err := m.Submit(fastSpec(t))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, m, v.ID, StateDone)

	m.sweep(time.Now())
	if _, err := m.Get(v.ID); err != nil {
		t.Fatalf("fresh result swept too early: %v", err)
	}
	m.sweep(time.Now().Add(2 * time.Minute))
	if _, err := m.Get(v.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired result: got %v, want ErrNotFound", err)
	}
}

// TestSolverCacheReuse submits the same problem twice with different
// runtime knobs and checks the second hits the preprocessed cache.
func TestSolverCacheReuse(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	a := fastSpec(t)
	av, err := m.Submit(a)
	if err != nil {
		t.Fatalf("submit first: %v", err)
	}
	waitState(t, m, av.ID, StateDone)

	b := fastSpec(t)
	b.Config.Phi = f64p(0.3) // runtime-only change: same solver key
	bv, err := m.Submit(b)
	if err != nil {
		t.Fatalf("submit second: %v", err)
	}
	waitState(t, m, bv.ID, StateDone)

	cs := m.Stats().SolverCache
	if cs.Misses != 1 || cs.Hits != 1 || cs.Entries != 1 {
		t.Errorf("cache stats %+v, want 1 miss, 1 hit, 1 entry", cs)
	}

	c := fastSpec(t)
	c.Config.TileSize = intp(16) // preprocessing change: new solver key
	cv, err := m.Submit(c)
	if err != nil {
		t.Fatalf("submit third: %v", err)
	}
	waitState(t, m, cv.ID, StateDone)
	if cs := m.Stats().SolverCache; cs.Misses != 2 || cs.Entries != 2 {
		t.Errorf("cache stats after tile change %+v, want 2 misses, 2 entries", cs)
	}
}

// TestResolveSpecRejections exercises admission-time validation: every
// bad spec must wrap ErrBadSpec (HTTP 400), not fail after queueing.
func TestResolveSpecRejections(t *testing.T) {
	m := NewManager(Config{MaxReplicas: 2})
	k4 := inlineGraph(t, 4)
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"no source", JobSpec{}},
		{"two sources", JobSpec{Graph: k4, Preset: "K100"}},
		{"unknown preset", JobSpec{Preset: "G999"}},
		{"bad inline graph", JobSpec{Graph: "not a graph"}},
		{"negative replicas", JobSpec{Graph: k4, Replicas: -1}},
		{"too many replicas", JobSpec{Graph: k4, Replicas: 3}},
		{"negative timeout", JobSpec{Graph: k4, TimeoutMS: -5}},
		{"early stop without target", JobSpec{Graph: k4, EarlyStop: true}},
		{"tempering one replica", JobSpec{Graph: k4, Replicas: 1,
			Tempering: &TemperingSpec{TMin: 0.05, TMax: 0.5}}},
		{"tempering bad ladder", JobSpec{Graph: k4, Replicas: 2,
			Tempering: &TemperingSpec{TMin: 0.5, TMax: 0.05}}},
		{"tempering zero tmin", JobSpec{Graph: k4, Replicas: 2,
			Tempering: &TemperingSpec{TMin: 0, TMax: 0.5}}},
		{"tempering negative period", JobSpec{Graph: k4, Replicas: 2,
			Tempering: &TemperingSpec{TMin: 0.05, TMax: 0.5, ExchangeEvery: -1}}},
		{"tempering with early stop", JobSpec{Graph: k4, Replicas: 2, EarlyStop: true,
			Tempering: &TemperingSpec{TMin: 0.05, TMax: 0.5},
			Config:    ConfigOverrides{TargetEnergy: f64p(-1)}}},
		{"bad tile size", JobSpec{Graph: k4, Config: ConfigOverrides{TileSize: intp(-8)}}},
		{"bad spin update", JobSpec{Graph: k4, Config: ConfigOverrides{SpinUpdate: strp("quantum")}}},
		{"negative workers", JobSpec{Graph: k4, Config: ConfigOverrides{Workers: intp(-1)}}},
		{"file refs disabled", JobSpec{GraphFile: "g1.txt"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := m.Submit(tc.spec); !errors.Is(err, ErrBadSpec) {
				t.Errorf("got %v, want ErrBadSpec", err)
			}
		})
	}
	if st := m.Stats(); st.Submitted != 0 {
		t.Errorf("bad specs counted as submissions: %d", st.Submitted)
	}
}

// TestGraphFileSubmission reads a problem from the configured directory
// and rejects escapes from it.
func TestGraphFileSubmission(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(dir+"/k8.txt", inlineGraph(t, 8)); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, Config{Workers: 1, ProblemDir: dir})
	v, err := m.Submit(JobSpec{
		GraphFile: "k8.txt",
		Config:    ConfigOverrides{TileSize: intp(8), LocalIters: intp(2), GlobalIters: intp(10)},
	})
	if err != nil {
		t.Fatalf("submit graph_file: %v", err)
	}
	v = waitState(t, m, v.ID, StateDone)
	if len(v.Result.BestSpins) != 8 {
		t.Errorf("spins length %d, want 8", len(v.Result.BestSpins))
	}
	for _, bad := range []string{"../k8.txt", "/etc/passwd", "missing.txt"} {
		if _, err := m.Submit(JobSpec{GraphFile: bad}); !errors.Is(err, ErrBadSpec) {
			t.Errorf("graph_file %q: got %v, want ErrBadSpec", bad, err)
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestTemperingJob runs a tempering-ladder job through the whole
// service stack and checks (a) the result is bit-identical to a direct
// core.RunTempering with the same problem, config, and seeds, (b) the
// exchange statistics surface in the result view, and (c) the manager's
// exchange counters pick them up.
func TestTemperingJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	spec := JobSpec{
		Graph:     inlineGraph(t, 24),
		Replicas:  4,
		Seed:      7,
		Tempering: &TemperingSpec{TMin: 0.05, TMax: 0.5, ExchangeEvery: 5},
		Config: ConfigOverrides{
			TileSize:    intp(8),
			LocalIters:  intp(3),
			GlobalIters: intp(30),
		},
	}
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	v = waitState(t, m, v.ID, StateDone)
	if v.Result == nil {
		t.Fatal("done job has no result")
	}
	tv := v.Result.Tempering
	if tv == nil {
		t.Fatal("tempering job result carries no tempering view")
	}
	if len(tv.Phis) != 4 || len(tv.RungEnergies) != 4 {
		t.Fatalf("ladder view sized %d/%d, want 4/4", len(tv.Phis), len(tv.RungEnergies))
	}

	cfg := core.DefaultConfig()
	cfg.Seed = 7
	cfg.TileSize = 8
	cfg.LocalIters = 3
	cfg.GlobalIters = 30
	solver, err := core.NewSolver(ising.FromMaxCut(graph.KGraph(24)), cfg)
	if err != nil {
		t.Fatalf("direct solver: %v", err)
	}
	seeds, err := core.SeedRange(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := solver.RunTempering(seeds, core.TemperingOptions{TMin: 0.05, TMax: 0.5, ExchangeEvery: 5})
	if err != nil {
		t.Fatalf("direct tempering: %v", err)
	}
	if v.Result.BestEnergy != want.BestEnergy {
		t.Errorf("best energy: service %v, direct %v", v.Result.BestEnergy, want.BestEnergy)
	}
	if !bytes.Equal(int8Bytes(v.Result.BestSpins), int8Bytes(want.Best().BestSpins)) {
		t.Error("best spins differ from direct RunTempering")
	}
	ws := want.Tempering
	if tv.Attempted != ws.Attempted || tv.Accepted != ws.Accepted || tv.ExchangeRate != ws.ExchangeRate {
		t.Errorf("exchange stats: service (%d, %d, %v), direct (%d, %d, %v)",
			tv.Attempted, tv.Accepted, tv.ExchangeRate, ws.Attempted, ws.Accepted, ws.ExchangeRate)
	}
	for r := range tv.Phis {
		if tv.Phis[r] != ws.Phis[r] || tv.RungEnergies[r] != ws.RungEnergies[r] {
			t.Errorf("rung %d: service (%v, %v), direct (%v, %v)",
				r, tv.Phis[r], tv.RungEnergies[r], ws.Phis[r], ws.RungEnergies[r])
		}
	}

	st := m.Stats()
	if st.Exchanges != uint64(ws.Attempted) || st.ExchangesAccepted != uint64(ws.Accepted) {
		t.Errorf("manager counters (%d, %d), want (%d, %d)",
			st.Exchanges, st.ExchangesAccepted, ws.Attempted, ws.Accepted)
	}
}
