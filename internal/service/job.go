package service

import (
	"context"
	"encoding/json"
	"time"

	"sophie/internal/core"
	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/metrics"
	"sophie/internal/problem"
	"sophie/internal/trace"
)

// State is a job's lifecycle position: queued → running → done |
// failed | cancelled. There are no other transitions; in particular a
// terminal job never leaves its terminal state (the TTL janitor deletes
// it wholesale).
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobSpec is the submission payload of POST /v1/jobs: one problem
// source (inline GSET text, a file reference under the server's problem
// directory, or a named preset), a replica/seed policy, an optional
// per-job timeout, and runtime/preprocessing config overrides.
type JobSpec struct {
	// Exactly one of Graph, GraphFile, Preset, Problem selects the
	// problem. The first three are max-cut sources; Problem is the
	// typed problem-spec union (internal/problem.ParseSpec) compiled
	// through the QUBO/Ising front end, with the decoded domain
	// solution attached to the result.
	Graph     string          `json:"graph,omitempty"`      // inline GSET text ("n m" header + "u v w" edges)
	GraphFile string          `json:"graph_file,omitempty"` // file under the server's -problem-dir
	Preset    string          `json:"preset,omitempty"`     // G1 | G22 | K100
	Problem   json.RawMessage `json:"problem,omitempty"`    // tagged union on "type"

	// Replicas and Seed define the batch: seeds Seed..Seed+Replicas-1
	// (core.SeedRange). Seeds, when non-empty, overrides both.
	Replicas int     `json:"replicas,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Seeds    []int64 `json:"seeds,omitempty"`

	// TimeoutMS bounds the job's execution wall clock; expiry stops
	// every replica at its next global-iteration boundary and the job
	// completes with its best-so-far partial results and timed_out set.
	// 0 inherits the server's default timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// EarlyStop enables the batch portfolio mode (requires a
	// target_energy in Config): results become schedule-dependent.
	EarlyStop bool `json:"early_stop,omitempty"`

	// Tempering runs the replicas as a parallel-tempering ladder
	// (core.TemperingOptions) instead of independent restarts: replica r
	// becomes temperature rung r. Requires replicas >= 2; incompatible
	// with early_stop.
	Tempering *TemperingSpec `json:"tempering,omitempty"`

	Config ConfigOverrides `json:"config"`
}

// TemperingSpec selects the tempering portfolio runtime for a job; the
// fields mirror core.TemperingOptions.
type TemperingSpec struct {
	// TMin and TMax bound the geometric phi ladder; rung 0 is coldest.
	TMin float64 `json:"tmin"`
	TMax float64 `json:"tmax"`
	// ExchangeEvery is the exchange period in global iterations
	// (default 1).
	ExchangeEvery int `json:"exchange_every,omitempty"`
}

// ConfigOverrides selects per-job solver settings; nil fields inherit
// core.DefaultConfig. Field semantics match the core.Config fields of
// the same name.
type ConfigOverrides struct {
	TileSize       *int     `json:"tile_size,omitempty"`
	LocalIters     *int     `json:"local_iters,omitempty"`
	GlobalIters    *int     `json:"global_iters,omitempty"`
	TileFraction   *float64 `json:"tile_fraction,omitempty"`
	Phi            *float64 `json:"phi,omitempty"`
	PhiEnd         *float64 `json:"phi_end,omitempty"`
	Alpha          *float64 `json:"alpha,omitempty"`
	SkipTransform  *bool    `json:"skip_transform,omitempty"`
	TransformRank  *int     `json:"transform_rank,omitempty"`
	SpinUpdate     *string  `json:"spin_update,omitempty"` // "majority" | "stochastic"
	Device         *bool    `json:"device,omitempty"`      // run MVMs through the OPCM device model
	TargetEnergy   *float64 `json:"target_energy,omitempty"`
	EvalEvery      *int     `json:"eval_every,omitempty"`
	ExactRecompute *bool    `json:"exact_recompute,omitempty"`
	// Workers is the per-replica PE worker count; BatchWorkers bounds
	// concurrent replicas (core.BatchOptions). Neither changes results.
	Workers      *int `json:"workers,omitempty"`
	BatchWorkers *int `json:"batch_workers,omitempty"`
}

// job is the manager's internal record. Mutable fields (state,
// timestamps, cancel, result, err, flags) are guarded by Manager.mu;
// the resolved problem/config fields are written once at submission and
// read-only afterwards.
type job struct {
	id     string
	tenant string
	spec   JobSpec
	// g is the parsed graph for max-cut submissions and nil for typed
	// problem-spec jobs, which carry the front end in prob instead;
	// offset recovers the domain objective from a model energy
	// (problem.Compiled.Offset, zero for graph jobs).
	g      *graph.Graph
	prob   problem.Problem
	offset float64
	model  *ising.Model
	key    solverKey
	// baseCfg carries only preprocessing-relevant settings and is what
	// the cached solver is built from; runCfg is the job's full config,
	// applied per run via WithRuntime. Splitting the two lets jobs that
	// differ only in runtime knobs share one preprocessed solver.
	baseCfg   core.Config
	runCfg    core.Config
	seeds     []int64
	timeout   time.Duration
	batchOpts core.BatchOptions

	state           State
	submitted       time.Time
	started         time.Time
	finished        time.Time
	cancel          context.CancelFunc // non-nil only while running
	cancelRequested bool
	timedOut        bool
	err             error
	result          *core.BatchResult
	// progress reduces the job's execution-trace events while it runs
	// (internal/trace.Progress); the pointer is installed at the
	// queued→running transition under Manager.mu and the reducer itself
	// is internally synchronized.
	progress *trace.Progress
	// hub fans the job's progress stream out to SSE subscribers
	// (GET /v1/jobs/{id}/events); created at admission, closed with the
	// final view when the job goes terminal. Internally synchronized.
	hub *eventHub
	// restored marks a job re-admitted from the journal after a restart
	// (Manager.Restore) rather than submitted in this process lifetime.
	restored bool
}

// JobView is the JSON face of a job (GET /v1/jobs/{id}).
type JobView struct {
	ID              string     `json:"id"`
	Tenant          string     `json:"tenant,omitempty"`
	State           State      `json:"state"`
	SubmittedAt     time.Time  `json:"submitted_at"`
	StartedAt       *time.Time `json:"started_at,omitempty"`
	FinishedAt      *time.Time `json:"finished_at,omitempty"`
	Replicas        int        `json:"replicas"`
	Seeds           []int64    `json:"seeds"`
	TimedOut        bool       `json:"timed_out,omitempty"`
	CancelRequested bool       `json:"cancel_requested,omitempty"`
	Error           string     `json:"error,omitempty"`
	// Progress reports live execution state while the job runs — the
	// furthest evaluated global iteration, best-so-far energy, and flip
	// throughput, reduced from the job's execution-trace stream. Absent
	// on queued and terminal jobs (terminal jobs carry Result instead).
	Progress *trace.ProgressSnapshot `json:"progress,omitempty"`
	Result   *ResultView             `json:"result,omitempty"`
}

// ResultView is the JSON rendering of a finished (or partially
// finished) batch: the aggregate plus one entry per replica. For graph
// (max-cut) jobs cut values are computed against the job's graph; for
// typed problem-spec jobs Objective and Solution carry the decoded
// domain answer instead and the cut fields stay zero.
type ResultView struct {
	BestEnergy float64 `json:"best_energy"`
	BestCut    float64 `json:"best_cut"`
	// BestObjective is the domain objective of the best spins
	// (model energy + compile offset folded through Decode); only set
	// for problem-spec jobs.
	BestObjective *float64 `json:"best_objective,omitempty"`
	// Solution is the decoded domain solution of the best spins, and
	// EnergyOffset the compile-time constant relating model energies to
	// domain objectives (f = H + offset); problem-spec jobs only.
	Solution     *problem.Solution `json:"solution,omitempty"`
	EnergyOffset float64           `json:"energy_offset,omitempty"`
	BestIndex    int               `json:"best_index"`
	BestSpins    []int8            `json:"best_spins"`
	MeanEnergy   float64           `json:"mean_energy"`
	MedianEnergy float64           `json:"median_energy"`
	Succeeded    int               `json:"succeeded"`
	SuccessProb  float64           `json:"success_prob"`
	Stopped      int               `json:"stopped"`
	Replicas     []ReplicaView     `json:"replicas"`
	Ops          metrics.OpCounts  `json:"ops"`
	// Tempering carries the exchange statistics when the job ran as a
	// tempering ladder; absent for independent-restart batches.
	Tempering *TemperingView `json:"tempering,omitempty"`
}

// TemperingView is the JSON rendering of core.TemperingStats: the phi
// ladder, each rung's final energy, and the exchange acceptance stats.
type TemperingView struct {
	Phis         []float64 `json:"phis"`
	RungEnergies []float64 `json:"rung_energies"`
	Attempted    int       `json:"exchanges_attempted"`
	Accepted     int       `json:"exchanges_accepted"`
	ExchangeRate float64   `json:"exchange_rate"`
}

// ReplicaView summarizes one replica of a job's batch.
type ReplicaView struct {
	Seed           int64   `json:"seed"`
	BestEnergy     float64 `json:"best_energy"`
	BestCut        float64 `json:"best_cut"`
	BestGlobalIter int     `json:"best_global_iter"`
	GlobalItersRun int     `json:"global_iters_run"`
	ReachedTarget  bool    `json:"reached_target,omitempty"`
	Stopped        bool    `json:"stopped,omitempty"`
}

// viewLocked renders a job; the caller holds Manager.mu.
func (m *Manager) viewLocked(j *job) JobView {
	v := JobView{
		ID:              j.id,
		Tenant:          j.tenant,
		State:           j.state,
		SubmittedAt:     j.submitted,
		Replicas:        len(j.seeds),
		Seeds:           append([]int64(nil), j.seeds...),
		TimedOut:        j.timedOut,
		CancelRequested: j.cancelRequested,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.state == StateRunning && j.progress != nil {
		ps := j.progress.Snapshot()
		v.Progress = &ps
	}
	if j.result != nil {
		v.Result = j.resultView(j.result)
	}
	return v
}

func (j *job) resultView(b *core.BatchResult) *ResultView {
	best := b.Best()
	rv := &ResultView{
		BestEnergy:   b.BestEnergy,
		BestIndex:    b.BestIndex,
		BestSpins:    append([]int8(nil), best.BestSpins...),
		MeanEnergy:   b.MeanEnergy,
		MedianEnergy: b.MedianEnergy,
		Succeeded:    b.Succeeded,
		SuccessProb:  b.SuccessProb,
		Stopped:      b.Stopped,
		Replicas:     make([]ReplicaView, len(b.Results)),
		Ops:          b.Ops,
	}
	if j.g != nil {
		rv.BestCut = j.g.CutValue(best.BestSpins)
	}
	if j.prob != nil {
		rv.EnergyOffset = j.offset
		// Decode never mutates the front end, so rendering concurrent
		// views is safe; a decode failure (impossible for spins the
		// solver produced) degrades to an energy-only view.
		if sol, err := j.prob.Decode(best.BestSpins); err == nil {
			rv.Solution = sol
			obj := sol.Objective
			rv.BestObjective = &obj
		}
	}
	for i, r := range b.Results {
		rv.Replicas[i] = ReplicaView{
			Seed:           j.seeds[i],
			BestEnergy:     r.BestEnergy,
			BestGlobalIter: r.BestGlobalIter,
			GlobalItersRun: r.GlobalItersRun,
			ReachedTarget:  r.ReachedTarget,
			Stopped:        r.Stopped,
		}
		if j.g != nil {
			rv.Replicas[i].BestCut = j.g.CutValue(r.BestSpins)
		}
	}
	if ts := b.Tempering; ts != nil {
		rv.Tempering = &TemperingView{
			Phis:         append([]float64(nil), ts.Phis...),
			RungEnergies: append([]float64(nil), ts.RungEnergies...),
			Attempted:    ts.Attempted,
			Accepted:     ts.Accepted,
			ExchangeRate: ts.ExchangeRate,
		}
	}
	return rv
}
