package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"sophie/internal/problem"
)

// problemSpec builds a JobSpec around a raw problem document with
// test-speed solver settings.
func problemSpec(doc string) JobSpec {
	return JobSpec{
		Problem: json.RawMessage(doc),
		Seeds:   []int64{3, 4},
		Config: ConfigOverrides{
			TileSize:    intp(16),
			LocalIters:  intp(2),
			GlobalIters: intp(20),
		},
	}
}

// TestProblemJobsEndToEnd submits every problem type of the union
// through the manager and checks each completes with a decoded domain
// solution — the ">= 6 problem types end to end" acceptance gate.
func TestProblemJobsEndToEnd(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	docs := map[string]string{
		"qubo":            `{"type":"qubo","n":6,"entries":[[0,1,-2],[2,3,1],[4,4,-1]]}`,
		"maxcut":          `{"type":"maxcut","graph":{"n":6,"edges":[[0,1,1],[1,2,1],[2,3,1],[3,4,1],[4,5,1],[5,0,1]]}}`,
		"maxsat":          `{"type":"maxsat","vars":4,"clauses":[{"lits":[1,2]},{"lits":[-1,3]},{"lits":[2,-3,4],"weight":2}]}`,
		"partition":       `{"type":"partition","graph":{"n":6,"edges":[[0,1,1],[1,2,1],[0,2,1],[3,4,1],[4,5,1],[3,5,1],[2,3,1]]}}`,
		"coloring":        `{"type":"coloring","graph":{"n":4,"edges":[[0,1,1],[1,2,1],[2,3,1],[3,0,1]]},"colors":2}`,
		"numberpartition": `{"type":"numberpartition","numbers":[4,5,6,7,8]}`,
		"tsp":             `{"type":"tsp","dist":[[0,1,2],[1,0,1],[2,1,0]]}`,
		"hopfield":        `{"type":"hopfield","patterns":[[1,-1,1,-1,1,-1],[1,1,1,-1,-1,-1]],"probe":[1,-1,1,-1,1,1]}`,
	}
	for typ, doc := range docs {
		t.Run(typ, func(t *testing.T) {
			v, err := m.Submit(problemSpec(doc))
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			done := waitState(t, m, v.ID, StateDone)
			r := done.Result
			if r == nil {
				t.Fatal("done job has no result")
			}
			if r.Solution == nil {
				t.Fatal("problem job result has no decoded solution")
			}
			if r.Solution.Type != typ {
				t.Errorf("solution type %q, want %q", r.Solution.Type, typ)
			}
			if r.BestObjective == nil {
				t.Error("problem job result has no best_objective")
			} else if *r.BestObjective != r.Solution.Objective { //sophielint:ignore floateq both fields are written from the same Decode call
				t.Errorf("best_objective %v != solution objective %v", *r.BestObjective, r.Solution.Objective)
			}
			if r.BestCut != 0 { //sophielint:ignore floateq cut fields must stay exactly zero for non-graph jobs
				t.Errorf("problem job leaked a cut value %v", r.BestCut)
			}
			if len(r.BestSpins) == 0 {
				t.Error("result carries no spins")
			}
		})
	}
}

// TestProblemJobBitReproducible: the same spec submitted twice returns
// bit-identical energies and spins (acceptance: "bit-reproducibly").
// The second submission also hits the model-keyed solver cache.
func TestProblemJobBitReproducible(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	doc := `{"type":"maxsat","vars":5,"clauses":[{"lits":[1,2,3]},{"lits":[-1,4]},{"lits":[-2,-3,5],"weight":2},{"lits":[-4,-5]}]}`
	run := func() *ResultView {
		v, err := m.Submit(problemSpec(doc))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		return waitState(t, m, v.ID, StateDone).Result
	}
	a, b := run(), run()
	if math.Float64bits(a.BestEnergy) != math.Float64bits(b.BestEnergy) {
		t.Errorf("best energy differs across identical submissions: %v vs %v", a.BestEnergy, b.BestEnergy)
	}
	if !bytes.Equal(int8Bytes(a.BestSpins), int8Bytes(b.BestSpins)) {
		t.Error("best spins differ across identical submissions")
	}
	cs := m.Stats().SolverCache
	if cs.Hits < 1 {
		t.Errorf("identical resubmission missed the solver cache: %+v", cs)
	}
}

// TestProblemCacheNamespaces pins the cache-key contract: a graph
// submission and a problem-spec submission of the SAME max-cut instance
// must occupy different cache entries ("graph:" vs "model:"
// namespaces), while two specs lowering to the same Hamiltonian share
// one ("model:" keys hash lowered content, not spelling).
func TestProblemCacheNamespaces(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})

	jd, err := m.resolveSpec(problemSpec(`{"type":"maxcut","graph":{"n":4,"edges":[[0,1,1],[1,2,1],[2,3,1],[3,0,1]]}}`))
	if err != nil {
		t.Fatal(err)
	}
	gspec := fastSpec(t)
	jg, err := m.resolveSpec(gspec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(jd.key.problem, "model:") {
		t.Errorf("problem-spec key %q lacks model: namespace", jd.key.problem)
	}
	if !strings.HasPrefix(jg.key.problem, "graph:") {
		t.Errorf("graph key %q lacks graph: namespace", jg.key.problem)
	}

	// Same QUBO spelled with transposed entries: identical lowered model,
	// identical cache key.
	ja, err := m.resolveSpec(problemSpec(`{"type":"qubo","n":3,"entries":[[0,1,-2],[1,2,1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	jb, err := m.resolveSpec(problemSpec(`{"type":"qubo","n":3,"entries":[[1,0,-2],[2,1,1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if ja.key != jb.key {
		t.Errorf("transposed QUBO entries produced distinct keys:\n%q\n%q", ja.key.problem, jb.key.problem)
	}
	// A genuinely different weight must split the key.
	jc, err := m.resolveSpec(problemSpec(`{"type":"qubo","n":3,"entries":[[0,1,-2],[1,2,1.5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if jc.key == ja.key {
		t.Error("different QUBO weights collided on one cache key")
	}
}

// TestProblemSpecHTTP400Matrix drives malformed problem documents over
// HTTP and checks the structured rejection: status 400 and an
// {error, field} body pointing at the offending JSON path.
func TestProblemSpecHTTP400Matrix(t *testing.T) {
	srv, m := testServer(t, Config{Workers: 1})
	cases := []struct {
		name  string
		doc   string
		field string
	}{
		{"unknown type", `{"type":"sudoku"}`, "problem.type"},
		{"missing type", `{"n":3}`, "problem.type"},
		{"bad json", `[1,2,3]`, "problem"}, // valid envelope JSON, not a spec object
		{"bad graph edge", `{"type":"maxcut","graph":{"n":3,"edges":[[0,9,1]]}}`, "problem.graph.edges[0]"},
		{"bad qubo order", `{"type":"qubo","n":-2}`, "problem.n"},
		{"semantic failure", `{"type":"maxsat","vars":2,"clauses":[{"lits":[7]}]}`, "problem"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := postJSON(t, srv.URL+"/v1/jobs", problemSpec(c.doc))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			body := decodeInto[errorBody](t, resp)
			if body.Error == "" {
				t.Error("400 body has no error message")
			}
			if body.Field != c.field {
				t.Errorf("field %q, want %q", body.Field, c.field)
			}
		})
	}

	// Combining problem with a graph source is a plain (field-free) 400.
	spec := problemSpec(`{"type":"numberpartition","numbers":[1,2]}`)
	spec.Preset = "K100"
	resp := postJSON(t, srv.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed sources: status %d, want 400", resp.StatusCode)
	}
	_ = resp.Body.Close()

	// The rejections above must be visible in the metrics, labelled by
	// reason, both in Stats and the Prometheus exposition.
	rejects := m.Stats().SpecRejects
	for _, reason := range []string{"unknown_type", "missing_type", "bad_json", "bad_edge", "bad_order", "invalid"} {
		if rejects[reason] == 0 {
			t.Errorf("spec reject reason %q not counted: %v", reason, rejects)
		}
	}
	mresp, err := http.Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer func() { _ = mresp.Body.Close() }()
	exposition, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(exposition), `sophied_spec_rejects_total{reason="unknown_type"}`) {
		t.Error("exposition lacks sophied_spec_rejects_total{reason=\"unknown_type\"}")
	}
}

// TestProblemSparseBuiltNeedsSkipTransform: a spec lowering past the
// dense compile limit is admitted only with config.skip_transform; the
// rejection is a 400 that names the fix.
func TestProblemSparseBuiltNeedsSkipTransform(t *testing.T) {
	m := NewManager(Config{MaxReplicas: 4})
	spec := JobSpec{
		Problem: json.RawMessage(`{"type":"qubo","n":3000,"entries":[[0,1,1],[10,2000,-1]]}`),
		Seeds:   []int64{1},
	}
	_, err := m.resolveSpec(spec)
	if err == nil {
		t.Fatal("want rejection without skip_transform")
	}
	if !errors.Is(err, ErrBadSpec) || !strings.Contains(err.Error(), "skip_transform") {
		t.Fatalf("rejection %v should wrap ErrBadSpec and name skip_transform", err)
	}
	tr := true
	spec.Config.SkipTransform = &tr
	if _, err := m.resolveSpec(spec); err != nil {
		t.Fatalf("skip_transform spec rejected: %v", err)
	}
}

// TestProblemJobSurvivesSnapshotRestore pins WAL/snapshot
// compatibility: a problem job drained into a queue snapshot resolves
// and completes after Restore into a fresh manager — the RawMessage
// spec round-trips JSON serialization intact.
func TestProblemJobSurvivesSnapshotRestore(t *testing.T) {
	first := NewManager(Config{}) // no Start: the job stays queued
	v, err := first.Submit(problemSpec(`{"type":"numberpartition","numbers":[4,5,6,7,8]}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	_ = v
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	snap, err := first.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if len(snap.Jobs) != 1 {
		t.Fatalf("snapshot carries %d jobs, want 1", len(snap.Jobs))
	}
	// The WAL stores this exact JSON shape; force a full round trip.
	blob, err := json.Marshal(snap.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	var replayed []SnapshotJob
	if err := json.Unmarshal(blob, &replayed); err != nil {
		t.Fatal(err)
	}

	second := newTestManager(t, Config{Workers: 1})
	n, err := second.Restore(replayed)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if n != 1 {
		t.Fatalf("restored %d jobs, want 1", n)
	}
	done := waitState(t, second, replayed[0].ID, StateDone)
	if done.Result == nil || done.Result.Solution == nil {
		t.Fatal("restored problem job finished without a decoded solution")
	}
	if done.Result.Solution.Type != "numberpartition" {
		t.Errorf("restored solution type %q", done.Result.Solution.Type)
	}
	var np problem.NumberPartitionSolution
	raw, err := json.Marshal(done.Result.Solution.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &np); err != nil {
		t.Fatalf("assignment does not decode as NumberPartitionSolution: %v", err)
	}
	if len(np.Sides) != 5 {
		t.Errorf("assignment sides %v, want 5 entries", np.Sides)
	}
}
