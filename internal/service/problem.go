package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sophie/internal/core"
	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/linalg"
	"sophie/internal/opcm"
	"sophie/internal/problem"
	"sophie/internal/tiling"
)

// ErrBadSpec tags submission-time validation failures; the HTTP layer
// maps it to 400. Everything wrapped in it is safe to echo back to the
// submitter.
var ErrBadSpec = errors.New("bad job spec")

func specErrorf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
}

// wrapSpecError folds a problem-spec rejection into the ErrBadSpec
// family while keeping the structured *problem.SpecError reachable via
// errors.As, so the HTTP layer can surface {error, field} and the
// metrics layer can label the reject reason.
func wrapSpecError(serr *problem.SpecError) error {
	return fmt.Errorf("%w: %w", ErrBadSpec, serr)
}

// solverKey identifies a preprocessed solver: the problem content plus
// every preprocessing-affecting config field. Jobs mapping to the same
// key share one cached solver and differ only through WithRuntime.
type solverKey struct {
	// problem is a namespaced content hash: "graph:" + sha256 of the
	// canonical GSET serialization for max-cut jobs, "model:" + sha256
	// of the lowered model (couplings + field) for problem-spec jobs.
	problem       string
	tileSize      int
	alpha         float64
	skipTransform bool
	transformRank int
	// rankSeed pins the randomness of the rank-limited Lanczos
	// transform, which draws from Config.Seed; zero when the full
	// eigendecomposition (rank 0) makes preprocessing deterministic.
	rankSeed int64
	device   bool
}

// resolveSpec validates a submission and resolves it into the job's
// immutable fields: parsed graph or compiled problem, Ising model,
// seeds, configs, cache key, and batch options. All failures wrap
// ErrBadSpec.
func (m *Manager) resolveSpec(spec JobSpec) (*job, error) {
	var (
		g       *graph.Graph
		prob    problem.Problem
		model   *ising.Model
		offset  float64
		keyName string
	)
	if len(spec.Problem) > 0 {
		if spec.Graph != "" || spec.GraphFile != "" || spec.Preset != "" {
			return nil, specErrorf("problem cannot combine with graph, graph_file, or preset")
		}
		p, err := problem.ParseSpec(spec.Problem)
		if err != nil {
			var serr *problem.SpecError
			if errors.As(err, &serr) {
				return nil, wrapSpecError(serr)
			}
			return nil, specErrorf("problem: %v", err)
		}
		c, err := problem.Compile(p)
		if err != nil {
			// Lower/Compile errors are semantic spec failures (bad clause
			// index, non-finite weight, ...) — still 400s, labelled with
			// the union field so clients know where to look.
			return nil, wrapSpecError(&problem.SpecError{Field: "problem", Reason: "invalid", Msg: err.Error()})
		}
		prob, model, offset = p, c.Model, c.Offset
		// Cache keys hash the lowered model, so distinct specs lowering
		// to the same Hamiltonian share preprocessing; the "model:"
		// namespace keeps them disjoint from graph-keyed entries.
		keyName = "model:" + hashModel(model)
	} else {
		var err error
		g, err = m.loadGraph(spec)
		if err != nil {
			return nil, err
		}
		if g.N() == 0 {
			return nil, specErrorf("problem graph has no nodes")
		}
		model = ising.FromMaxCut(g)
		keyName = "graph:" + hashGraph(g)
	}

	seeds := spec.Seeds
	if len(seeds) == 0 {
		replicas := spec.Replicas
		if replicas == 0 {
			replicas = 1
		}
		if replicas < 0 {
			return nil, specErrorf("negative replica count %d", replicas)
		}
		seed := spec.Seed
		if seed == 0 {
			seed = 1
		}
		var err error
		seeds, err = core.SeedRange(seed, replicas)
		if err != nil {
			return nil, specErrorf("%v", err)
		}
	}
	if len(seeds) > m.cfg.MaxReplicas {
		return nil, specErrorf("%d replicas exceed the server limit of %d", len(seeds), m.cfg.MaxReplicas)
	}
	if spec.TimeoutMS < 0 {
		return nil, specErrorf("negative timeout_ms %d", spec.TimeoutMS)
	}

	runCfg, err := buildConfig(spec.Config, spec.Seed)
	if err != nil {
		return nil, err
	}
	if spec.EarlyStop && runCfg.TargetEnergy == nil {
		return nil, specErrorf("early_stop requires config.target_energy")
	}
	if t := spec.Tempering; t != nil {
		// Mirror core's runTemperingCtx validation at admission so a bad
		// ladder is a 400, not a failed job.
		if spec.EarlyStop {
			return nil, specErrorf("tempering and early_stop cannot combine (tempering has its own stop rule)")
		}
		if len(seeds) < 2 {
			return nil, specErrorf("tempering needs >= 2 replicas (one per rung), got %d", len(seeds))
		}
		if t.TMin <= 0 || t.TMax <= t.TMin {
			return nil, specErrorf("tempering needs 0 < tmin < tmax, got [%v, %v]", t.TMin, t.TMax)
		}
		if t.ExchangeEvery < 0 {
			return nil, specErrorf("negative tempering exchange_every %d", t.ExchangeEvery)
		}
	}

	// baseCfg is runCfg with the runtime knobs reset to defaults: the
	// cached solver is built from it, so jobs differing only at runtime
	// share the preprocessing work. A value copy is safe here — the only
	// reference-typed fields a fresh buildConfig result carries are the
	// TargetEnergy pointer (reset below) and the Engine func (shared by
	// design).
	baseCfg := runCfg
	def := core.DefaultConfig()
	baseCfg.Phi = def.Phi
	baseCfg.PhiEnd = def.PhiEnd
	baseCfg.LocalIters = def.LocalIters
	baseCfg.GlobalIters = def.GlobalIters
	baseCfg.TileFraction = def.TileFraction
	baseCfg.SpinUpdate = def.SpinUpdate
	baseCfg.EvalEvery = def.EvalEvery
	baseCfg.TargetEnergy = nil
	baseCfg.ExactRecompute = false
	baseCfg.Workers = 0
	if baseCfg.TransformRank == 0 {
		// Preprocessing ignores the seed without the Lanczos path; pin
		// it so equal problems hash to equal cache keys.
		baseCfg.Seed = 0
	}

	if !model.HasDense() && !baseCfg.SkipTransform {
		// The compiler builds large lowered models CSR-only; reject at
		// admission with the fix spelled out rather than failing the job
		// at execution time.
		return nil, specErrorf("problem lowers to %d variables and is sparse-built; set config.skip_transform", model.N())
	}
	if prob != nil {
		if init, ok := prob.(problem.Initializer); ok {
			if s0 := init.InitialSpins(); s0 != nil {
				// Probe starts are a runtime knob (core reseeds per run), so
				// they ride runCfg only — the cached solver stays shareable
				// with probe-free jobs on the same model.
				runCfg.InitialSpins = s0
			}
		}
	}

	j := &job{
		spec:    spec,
		g:       g,
		prob:    prob,
		offset:  offset,
		model:   model,
		baseCfg: baseCfg,
		runCfg:  runCfg,
		seeds:   seeds,
		key: solverKey{
			problem:       keyName,
			tileSize:      baseCfg.TileSize,
			alpha:         baseCfg.Alpha,
			skipTransform: baseCfg.SkipTransform,
			transformRank: baseCfg.TransformRank,
			rankSeed:      baseCfg.Seed,
			device:        baseCfg.Engine != nil,
		},
		batchOpts: core.BatchOptions{
			EarlyStop: spec.EarlyStop,
		},
	}
	if t := spec.Tempering; t != nil {
		j.batchOpts.Tempering = &core.TemperingOptions{
			TMin:          t.TMin,
			TMax:          t.TMax,
			ExchangeEvery: t.ExchangeEvery,
		}
	}
	if spec.Config.BatchWorkers != nil {
		j.batchOpts.Workers = *spec.Config.BatchWorkers
	}
	if spec.Config.Workers != nil {
		j.batchOpts.JobWorkers = *spec.Config.Workers
	}
	if j.batchOpts.Workers < 0 || j.batchOpts.JobWorkers < 0 {
		return nil, specErrorf("negative worker counts")
	}
	j.timeout = m.cfg.DefaultTimeout
	if spec.TimeoutMS > 0 {
		j.timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	return j, nil
}

// loadGraph resolves the problem source: exactly one of inline text, a
// file under the configured problem directory, or a named preset.
func (m *Manager) loadGraph(spec JobSpec) (*graph.Graph, error) {
	sources := 0
	for _, set := range []bool{spec.Graph != "", spec.GraphFile != "", spec.Preset != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, specErrorf("need exactly one of graph, graph_file, preset (got %d)", sources)
	}
	switch {
	case spec.Graph != "":
		g, err := graph.Read(strings.NewReader(spec.Graph))
		if err != nil {
			return nil, specErrorf("inline graph: %v", err)
		}
		return g, nil
	case spec.Preset != "":
		switch spec.Preset {
		case "G1":
			return graph.G1Standin(), nil
		case "G22":
			return graph.G22Standin(), nil
		case "K100":
			return graph.KGraph(100), nil
		default:
			return nil, specErrorf("unknown preset %q (want G1, G22, or K100)", spec.Preset)
		}
	default:
		if m.cfg.ProblemDir == "" {
			return nil, specErrorf("graph_file submissions are disabled (server has no problem directory)")
		}
		if !filepath.IsLocal(spec.GraphFile) {
			return nil, specErrorf("graph_file %q must be a relative path inside the problem directory", spec.GraphFile)
		}
		f, err := os.Open(filepath.Join(m.cfg.ProblemDir, spec.GraphFile))
		if err != nil {
			return nil, specErrorf("graph_file: %v", err)
		}
		// Read path: a close error cannot corrupt anything already parsed.
		defer func() { _ = f.Close() }()
		g, err := graph.Read(f)
		if err != nil {
			return nil, specErrorf("graph_file %q: %v", spec.GraphFile, err)
		}
		return g, nil
	}
}

// buildConfig folds the overrides onto core.DefaultConfig and validates
// the result, so a bad config is rejected at admission, not after
// queueing.
func buildConfig(o ConfigOverrides, seed int64) (core.Config, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	if o.TileSize != nil {
		cfg.TileSize = *o.TileSize
	}
	if o.LocalIters != nil {
		cfg.LocalIters = *o.LocalIters
	}
	if o.GlobalIters != nil {
		cfg.GlobalIters = *o.GlobalIters
	}
	if o.TileFraction != nil {
		cfg.TileFraction = *o.TileFraction
	}
	if o.Phi != nil {
		cfg.Phi = *o.Phi
	}
	if o.PhiEnd != nil {
		cfg.PhiEnd = *o.PhiEnd
	}
	if o.Alpha != nil {
		cfg.Alpha = *o.Alpha
	}
	if o.SkipTransform != nil {
		cfg.SkipTransform = *o.SkipTransform
	}
	if o.TransformRank != nil {
		cfg.TransformRank = *o.TransformRank
	}
	if o.TargetEnergy != nil {
		t := *o.TargetEnergy
		cfg.TargetEnergy = &t
	}
	if o.EvalEvery != nil {
		cfg.EvalEvery = *o.EvalEvery
	}
	if o.ExactRecompute != nil {
		cfg.ExactRecompute = *o.ExactRecompute
	}
	if o.Workers != nil {
		cfg.Workers = *o.Workers
	}
	if o.SpinUpdate != nil {
		switch *o.SpinUpdate {
		case "", "stochastic":
			cfg.SpinUpdate = core.SpinUpdateStochastic
		case "majority":
			cfg.SpinUpdate = core.SpinUpdateMajority
		default:
			return cfg, specErrorf("unknown spin_update %q (want majority or stochastic)", *o.SpinUpdate)
		}
	}
	if o.Device != nil && *o.Device {
		cfg.Engine = func(tiles []*linalg.Matrix) (tiling.Engine, error) {
			return opcm.NewEngine(tiles, 0, opcm.DefaultParams())
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, specErrorf("config: %v", err)
	}
	return cfg, nil
}

// hashGraph returns the hex sha256 of the graph's canonical GSET
// serialization (sorted edge order), the problem component of solver
// cache keys: equal problems hash equal regardless of input edge order
// or formatting.
func hashGraph(g *graph.Graph) string {
	h := sha256.New()
	// Write on a hash never fails.
	_ = graph.Write(h, g)
	return hex.EncodeToString(h.Sum(nil))
}

// hashModel returns the hex sha256 of the lowered Ising model's
// canonical form: order, upper-triangle couplings in CSR scan order
// (row-major, deduplicated, sorted), and the field when present.
// Distinct specs lowering to the same Hamiltonian hash equal and share
// one cached solver.
func hashModel(m *ising.Model) string {
	h := sha256.New()
	writeU64 := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	writeF64 := func(v float64) { writeU64(math.Float64bits(v)) }
	writeU64(uint64(m.N()))
	cs, err := m.Sparse()
	if err == nil {
		cs.Scan(func(i, j int, v float64) {
			if i > j {
				return // symmetric storage: hash each pair once
			}
			writeU64(uint64(i))
			writeU64(uint64(j))
			writeF64(v)
		})
	}
	if hf := m.Field(); hf != nil {
		writeHashMarker(h)
		for _, v := range hf {
			writeF64(v)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeHashMarker separates the hash's coupling and field sections so
// a field-free model can never collide with a fielded one.
func writeHashMarker(h hash.Hash) { _, _ = h.Write([]byte{0xff, 'h'}) }
