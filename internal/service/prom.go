package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"sophie/internal/metrics"
)

// Prometheus text exposition (version 0.0.4) of the service Stats.
// GET /metrics negotiates the format: an Accept header naming
// text/plain, or ?format=prom, selects this rendering; the default
// stays the JSON Stats payload sophied has always served. Histograms
// render as conventional cumulative _bucket series with _sum and
// _count, so the latency quantiles graph directly in Prometheus.

// promWriter accumulates exposition lines and the first write error.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// metric emits the HELP/TYPE header and one unlabelled sample.
func (p *promWriter) metric(name, typ, help string, value float64) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, formatPromValue(value))
}

// family emits only the HELP/TYPE header; sample lines follow via
// printf. Used for labelled families with one sample per label value.
func (p *promWriter) family(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// histogram emits a conventional cumulative histogram: one _bucket
// sample per bound (le is inclusive), the +Inf bucket, then _sum and
// _count.
func (p *promWriter) histogram(name, help string, s metrics.HistogramSnapshot) {
	p.printf("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, bound := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		p.printf("%s_bucket{le=%q} %d\n", name, formatPromValue(bound), cum)
	}
	// Anything beyond the last bound lands in +Inf.
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	p.printf("%s_sum %s\n%s_count %d\n", name, formatPromValue(s.Sum), name, s.Count)
}

// formatPromValue renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeProm renders the exposition; httpWriteErrs is the server's
// response-write failure counter (it lives on the HTTP layer, not in
// Stats, but belongs on the same scrape).
func writeProm(w io.Writer, s Stats, httpWriteErrs uint64) error {
	p := &promWriter{w: w}

	p.metric("sophied_uptime_seconds", "gauge", "Seconds since the service started.", s.UptimeSeconds)
	p.metric("sophied_queue_depth", "gauge", "Jobs waiting in the admission queue.", float64(s.QueueDepth))
	p.metric("sophied_queue_capacity", "gauge", "Admission queue capacity.", float64(s.QueueCap))
	p.metric("sophied_in_flight_jobs", "gauge", "Jobs currently executing.", float64(s.InFlight))
	p.metric("sophied_workers", "gauge", "Configured executor workers.", float64(s.Workers))
	p.metric("sophied_draining", "gauge", "1 while admission is closed for shutdown.", boolGauge(s.Draining))
	p.metric("sophied_jobs_tracked", "gauge", "Jobs resident in the result store.", float64(s.JobsTracked))

	p.metric("sophied_jobs_submitted_total", "counter", "Jobs accepted by the admission queue.", float64(s.Submitted))
	p.metric("sophied_jobs_rejected_total", "counter", "Submissions rejected (queue full or draining).", float64(s.Rejected))
	p.metric("sophied_jobs_completed_total", "counter", "Jobs that reached done.", float64(s.Completed))
	p.metric("sophied_jobs_failed_total", "counter", "Jobs that reached failed.", float64(s.Failed))
	p.metric("sophied_jobs_cancelled_total", "counter", "Jobs cancelled by users or drain.", float64(s.Cancelled))
	p.metric("sophied_jobs_timed_out_total", "counter", "Jobs cut short by their deadline.", float64(s.TimedOut))
	p.metric("sophied_jobs_restored_total", "counter", "Jobs re-admitted from the journal after a restart.", float64(s.Restored))
	p.metric("sophied_journal_errors_total", "counter", "Journal appends that failed (durability degraded for those records).", float64(s.JournalErrors))
	p.metric("sophied_http_write_errors_total", "counter", "HTTP response bodies that failed to write or encode.", float64(httpWriteErrs))

	// Per-tenant admission series, one sample per tenant seen since the
	// last idle sweep; names are validated into the Prometheus-safe
	// [A-Za-z0-9._-] alphabet at submission (ValidateTenant).
	if len(s.Tenants) > 0 {
		names := s.TenantNames()
		p.family("sophied_tenant_queue_depth", "gauge", "Queued jobs per tenant.")
		for _, name := range names {
			p.printf("sophied_tenant_queue_depth{tenant=%q} %d\n", name, s.Tenants[name].QueueDepth)
		}
		p.family("sophied_tenant_jobs_submitted_total", "counter", "Jobs accepted per tenant.")
		for _, name := range names {
			p.printf("sophied_tenant_jobs_submitted_total{tenant=%q} %d\n", name, s.Tenants[name].Submitted)
		}
		p.family("sophied_tenant_jobs_rejected_total", "counter", "Submissions rejected per tenant by reason.")
		for _, name := range names {
			ts := s.Tenants[name]
			p.printf("sophied_tenant_jobs_rejected_total{tenant=%q,reason=\"rate\"} %d\n", name, ts.RejectedRate)
			p.printf("sophied_tenant_jobs_rejected_total{tenant=%q,reason=\"share\"} %d\n", name, ts.RejectedShare)
			p.printf("sophied_tenant_jobs_rejected_total{tenant=%q,reason=\"other\"} %d\n", name, ts.RejectedOther)
		}
	}

	if len(s.SpecRejects) > 0 {
		reasons := make([]string, 0, len(s.SpecRejects))
		for reason := range s.SpecRejects {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		p.family("sophied_spec_rejects_total", "counter", "Job specs rejected at validation, by reason.")
		for _, reason := range reasons {
			p.printf("sophied_spec_rejects_total{reason=%q} %d\n", reason, s.SpecRejects[reason])
		}
	}

	p.metric("sophied_exchanges_attempted_total", "counter", "Tempering replica exchanges attempted across finished jobs.", float64(s.Exchanges))
	p.metric("sophied_exchanges_accepted_total", "counter", "Tempering replica exchanges accepted across finished jobs.", float64(s.ExchangesAccepted))

	p.metric("sophied_solver_cache_entries", "gauge", "Preprocessed solvers resident in the cache.", float64(s.SolverCache.Entries))
	p.metric("sophied_solver_cache_hits_total", "counter", "Solver cache hits.", float64(s.SolverCache.Hits))
	p.metric("sophied_solver_cache_misses_total", "counter", "Solver cache misses (preprocessing runs).", float64(s.SolverCache.Misses))

	for _, op := range []struct {
		name, help string
		v          uint64
	}{
		{"sophied_ops_local_mvm_1b_total", "Local-iteration MVMs read through the 1-bit ADC.", s.Ops.LocalMVM1b},
		{"sophied_ops_local_mvm_8b_total", "Final local-iteration MVMs read through the 8-bit ADC.", s.Ops.LocalMVM8b},
		{"sophied_ops_opcm_programs_total", "OPCM array (re)programming events.", s.Ops.OPCMPrograms},
		{"sophied_ops_opcm_cell_writes_total", "Individual GST cell writes.", s.Ops.OPCMCellWrites},
		{"sophied_ops_eo_bits_total", "Bits through the E-O modulators.", s.Ops.EOBits},
		{"sophied_ops_adc_samples_1b_total", "1-bit ADC samples.", s.Ops.ADCSamples1b},
		{"sophied_ops_adc_samples_8b_total", "8-bit ADC samples.", s.Ops.ADCSamples8b},
		{"sophied_ops_sram_read_bits_total", "SRAM buffer bits read.", s.Ops.SRAMReadBits},
		{"sophied_ops_sram_write_bits_total", "SRAM buffer bits written.", s.Ops.SRAMWriteBits},
		{"sophied_ops_dram_read_bits_total", "DRAM bits read.", s.Ops.DRAMReadBits},
		{"sophied_ops_dram_write_bits_total", "DRAM bits written.", s.Ops.DRAMWriteBits},
		{"sophied_ops_glue_ops_total", "Controller glue (vector add/select) operations.", s.Ops.GlueOps},
		{"sophied_ops_global_syncs_total", "Global synchronization barriers.", s.Ops.GlobalSyncs},
	} {
		p.metric(op.name, "counter", op.help, float64(op.v))
	}

	p.histogram("sophied_queue_wait_seconds", "Seconds jobs spent queued before execution.", s.QueueWait)
	p.histogram("sophied_exec_seconds", "Seconds jobs spent executing.", s.Exec)
	return p.err
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
