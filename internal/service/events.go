package service

import (
	"fmt"
	"sync"
)

// Per-job event fan-out for the SSE endpoint (GET /v1/jobs/{id}/events).
// Each job owns one eventHub from admission to terminal; the executing
// worker publishes progress snapshots into it (reduced from the job's
// execution-trace stream) and closes it with the final rendered view
// when the job goes terminal.
//
// Backpressure contract: every subscriber has a bounded buffer. A slow
// client sheds the OLDEST buffered progress event first (the newest
// snapshot supersedes it — progress is cumulative), and the terminal
// result is never shed: it travels outside the buffer, as the hub's
// final payload handed to every subscriber after its channel closes.

// StreamEvent is one server-sent event on a job's stream: a name for
// the SSE "event:" field and a pre-rendered JSON payload for "data:".
type StreamEvent struct {
	Event string
	Data  []byte
}

// subscriberBuffer bounds each subscriber's in-flight progress events.
const subscriberBuffer = 16

type eventHub struct {
	mu     sync.Mutex
	subs   map[chan StreamEvent]struct{}
	closed bool
	final  []byte
}

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[chan StreamEvent]struct{})}
}

// hasSubscribers lets publishers skip snapshot+marshal work when nobody
// is streaming.
func (h *eventHub) hasSubscribers() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs) > 0
}

// subscribe registers a bounded subscriber. On an already-terminal job
// the returned channel is closed immediately; the terminal payload is
// available from final().
func (h *eventHub) subscribe() chan StreamEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := make(chan StreamEvent, subscriberBuffer)
	if h.closed {
		close(ch)
		return ch
	}
	h.subs[ch] = struct{}{}
	return ch
}

// unsubscribe detaches a subscriber; idempotent, and a no-op after the
// hub closed (close already retired the channel).
func (h *eventHub) unsubscribe(ch chan StreamEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
	}
}

// publish fans one progress event out to every subscriber. All channel
// operations are non-blocking and happen under h.mu (which also guards
// close), so a publish can never block a worker on a slow client and
// never races a channel close.
func (h *eventHub) publish(ev StreamEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			// Buffer full: shed the oldest buffered event, then retry
			// once. Both selects are non-blocking; if a concurrent drain
			// emptied-and-refilled the buffer in between, dropping the
			// newest snapshot instead is equally sound.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
	}
}

// close marks the job terminal: the final payload is retained for every
// current and future subscriber and all subscriber channels close.
// Idempotent; only the first final payload sticks.
func (h *eventHub) close(final []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	h.final = final
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}

// finalPayload returns the terminal payload (nil while the job is still
// live).
func (h *eventHub) finalPayload() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.final
}

// Subscription is a live feed of one job's stream events. Receive from
// C until it closes; a closed C means the job is terminal and Final
// carries the rendered terminal view. Always Close a subscription when
// done with it.
type Subscription struct {
	// C delivers progress events; closed when the job goes terminal
	// (or after Close).
	C  <-chan StreamEvent
	ch chan StreamEvent
	h  *eventHub
}

// Close detaches the subscription from the job's hub.
func (s *Subscription) Close() { s.h.unsubscribe(s.ch) }

// Final returns the terminal event payload; nil until the job's hub has
// closed.
func (s *Subscription) Final() []byte { return s.h.finalPayload() }

// Subscribe attaches a live event subscription to a job. The returned
// view is the job's state at subscription time (the stream's initial
// "state" event); for an already-terminal job the subscription's
// channel is closed and Final is immediately available.
func (m *Manager) Subscribe(id string) (*Subscription, JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, JobView{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	ch := j.hub.subscribe()
	return &Subscription{C: ch, ch: ch, h: j.hub}, m.viewLocked(j), nil
}
