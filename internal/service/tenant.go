package service

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Per-tenant fair admission. Every submission names a tenant (the HTTP
// layer reads X-Tenant; an absent header maps to DefaultTenant) and
// passes two tenant-scoped gates before the global bounded queue:
//
//  1. a token-bucket rate limiter (TenantConfig.Rate / Burst) bounding
//     sustained submissions per second per tenant, and
//  2. a queue-share cap (TenantConfig.MaxQueueShare) bounding the
//     fraction of the admission queue any single tenant may occupy, so
//     one chatty tenant cannot starve the rest even while the global
//     queue has room.
//
// Both gates reject with tenant-scoped 429 errors carrying a
// Retry-After hint; per-tenant counters feed the tenants block of
// Stats and the tenant-labelled series on /metrics.

// DefaultTenant is the tenant of submissions that name none.
const DefaultTenant = "default"

// Sentinel errors for the tenant gates; the HTTP layer maps both to
// 429. Wrap-aware callers use errors.As on the concrete types for the
// retry hint.
var (
	// ErrRateLimited reports a tenant over its submission rate.
	ErrRateLimited = errors.New("tenant rate limit exceeded")
	// ErrShareLimited reports a tenant at its queue-share cap.
	ErrShareLimited = errors.New("tenant queue share exhausted")
)

// RateLimitedError is the concrete ErrRateLimited: it carries when the
// tenant's bucket will next hold a token.
type RateLimitedError struct {
	Tenant            string
	RetryAfterSeconds int
}

func (e *RateLimitedError) Error() string {
	return fmt.Sprintf("tenant %q rate limit exceeded, retry in %ds", e.Tenant, e.RetryAfterSeconds)
}

// Unwrap ties the concrete error to the ErrRateLimited sentinel.
func (e *RateLimitedError) Unwrap() error { return ErrRateLimited }

// ShareLimitedError is the concrete ErrShareLimited: the tenant already
// holds Cap queued jobs.
type ShareLimitedError struct {
	Tenant string
	Cap    int
}

func (e *ShareLimitedError) Error() string {
	return fmt.Sprintf("tenant %q holds its full queue share (%d queued jobs)", e.Tenant, e.Cap)
}

// Unwrap ties the concrete error to the ErrShareLimited sentinel.
func (e *ShareLimitedError) Unwrap() error { return ErrShareLimited }

// TenantConfig sizes the per-tenant admission gates. The zero value
// disables both: all tenants share only the global queue bound.
type TenantConfig struct {
	// Rate is the sustained submissions/second one tenant may make;
	// 0 disables rate limiting.
	Rate float64
	// Burst is the token-bucket capacity (instantaneous burst above the
	// sustained rate); <= 0 defaults to max(1, ceil(Rate)).
	Burst int
	// MaxQueueShare is the fraction of QueueCap one tenant may occupy
	// (floored at one job so every tenant can always queue something);
	// 0 disables the share cap.
	MaxQueueShare float64
}

// burst resolves the effective bucket capacity.
func (c TenantConfig) burst() float64 {
	if c.Burst > 0 {
		return float64(c.Burst)
	}
	if b := math.Ceil(c.Rate); b > 1 {
		return b
	}
	return 1
}

// ValidateTenant bounds tenant names so they stay safe as Prometheus
// label values and map keys: 1..64 characters from [A-Za-z0-9._-].
// Violations wrap ErrBadSpec (HTTP 400).
func ValidateTenant(name string) error {
	if name == "" || len(name) > 64 {
		return specErrorf("tenant name must be 1..64 characters, got %d", len(name))
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return specErrorf("tenant name %q: character %q outside [A-Za-z0-9._-]", name, r)
		}
	}
	return nil
}

// tenantState is one tenant's admission-control record, guarded by
// Manager.mu like the rest of the admission state.
type tenantState struct {
	// tokens/last implement the token bucket; tokens refills at
	// TenantConfig.Rate up to the burst capacity.
	tokens float64
	last   time.Time
	// depth counts the tenant's jobs currently in StateQueued (the
	// queue-share gate input).
	depth int
	// lastSeen lets the janitor evict long-idle tenant records.
	lastSeen time.Time

	submitted     uint64
	rejectedRate  uint64
	rejectedShare uint64
	rejectedOther uint64 // queue-full and draining rejections attributed to the tenant
}

// tenantLocked returns (creating if needed) the tenant's record; the
// caller holds Manager.mu.
func (m *Manager) tenantLocked(name string, now time.Time) *tenantState {
	ts, ok := m.tenants[name]
	if !ok {
		ts = &tenantState{tokens: m.cfg.Tenant.burst(), last: now}
		m.tenants[name] = ts
	}
	ts.lastSeen = now
	return ts
}

// takeToken runs the rate-limit gate: refill by elapsed wall time, then
// spend one token. On an empty bucket it reports how many whole seconds
// until the next token accrues (minimum 1). The caller holds Manager.mu.
func (ts *tenantState) takeToken(cfg TenantConfig, now time.Time) (retryAfter int, ok bool) {
	if cfg.Rate <= 0 {
		return 0, true
	}
	elapsed := now.Sub(ts.last).Seconds()
	if elapsed > 0 {
		ts.tokens = math.Min(cfg.burst(), ts.tokens+elapsed*cfg.Rate)
		ts.last = now
	}
	if ts.tokens >= 1 {
		ts.tokens--
		return 0, true
	}
	retry := int(math.Ceil((1 - ts.tokens) / cfg.Rate))
	if retry < 1 {
		retry = 1
	}
	return retry, false
}

// tenantShareCapLocked resolves the per-tenant queued-job cap; 0 means
// the share gate is disabled. The caller holds Manager.mu.
func (m *Manager) tenantShareCapLocked() int {
	share := m.cfg.Tenant.MaxQueueShare
	if share <= 0 {
		return 0
	}
	c := int(share * float64(m.cfg.QueueCap))
	if c < 1 {
		c = 1
	}
	return c
}

// sweepTenantsLocked evicts tenant records that have been idle (no
// queued jobs, nothing submitted) for longer than ResultTTL, bounding
// the admission table against tenant-name churn. Eviction resets that
// tenant's counters — the same lifecycle its jobs' results have.
func (m *Manager) sweepTenantsLocked(now time.Time) {
	for name, ts := range m.tenants {
		if ts.depth == 0 && now.Sub(ts.lastSeen) > m.cfg.ResultTTL {
			delete(m.tenants, name)
		}
	}
}

// TenantStats is one tenant's slice of the Stats payload.
type TenantStats struct {
	QueueDepth    int    `json:"queue_depth"`
	Submitted     uint64 `json:"submitted"`
	RejectedRate  uint64 `json:"rejected_rate_limited"`
	RejectedShare uint64 `json:"rejected_share_limited"`
	RejectedOther uint64 `json:"rejected_other"`
}
