package service

import (
	"sync"
	"time"

	"sophie/internal/core"
)

// solverCache memoizes preprocessed solvers per (problem,
// preprocessing-config) key. Building a solver is the expensive step —
// O(n³) eigendecomposition plus engine programming — and mirrors the
// hardware's amortization of OPCM array programming over many jobs, so
// repeat submissions of the same problem skip straight to execution.
//
// Concurrency: the map is guarded by mu; each entry's build runs under
// its own sync.Once outside the map lock, so two jobs racing on a cold
// key block on one build while jobs for other keys proceed. Solvers are
// safe for concurrent Run/RunBatch by core's contract, so a cached
// solver can serve many jobs at once. Eviction is LRU by last lookup;
// an evicted solver stays valid for jobs already holding it (it is
// simply no longer findable).
type solverCache struct {
	mu      sync.Mutex
	max     int
	entries map[solverKey]*cacheEntry
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	once    sync.Once
	solver  *core.Solver
	err     error
	lastUse time.Time
}

func newSolverCache(max int) *solverCache {
	if max < 1 {
		max = 1
	}
	return &solverCache{max: max, entries: make(map[solverKey]*cacheEntry)}
}

// get returns the cached solver for key, building it with build on a
// cold key. Failed builds are not cached: the entry is removed so a
// transient failure (e.g. an unreadable problem file raced with a
// rewrite) does not poison the key forever.
func (c *solverCache) get(key solverKey, build func() (*core.Solver, error)) (*core.Solver, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &cacheEntry{}
		c.entries[key] = e
		c.evictLocked(e)
	}
	e.lastUse = time.Now()
	c.mu.Unlock()

	e.once.Do(func() { e.solver, e.err = build() })
	if e.err != nil {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, e.err
	}
	return e.solver, nil
}

// evictLocked drops least-recently-used entries (never keep, the entry
// just inserted) until the cache fits its bound.
func (c *solverCache) evictLocked(keep *cacheEntry) {
	for len(c.entries) > c.max {
		var oldestKey solverKey
		var oldest *cacheEntry
		for k, e := range c.entries {
			if e == keep {
				continue
			}
			if oldest == nil || e.lastUse.Before(oldest.lastUse) {
				oldestKey, oldest = k, e
			}
		}
		if oldest == nil {
			return
		}
		delete(c.entries, oldestKey)
	}
}

// CacheStats reports solver-cache effectiveness for /metrics.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

func (c *solverCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses}
}
