// Package service is the sophied job-queue solver service: a bounded
// admission queue, a worker pool executing jobs through the
// context-aware batch runtime (core.RunBatchCtx) over cached
// per-problem solvers, job lifecycle tracking with per-job timeouts and
// user cancellation, a TTL'd result store, and service counters. The
// HTTP JSON API in server.go is a thin skin over the Manager; cmd/sophied
// is the daemon around both.
//
// Determinism contract (DESIGN.md "Service layer"): a job that runs to
// completion returns results bit-identical to a direct core.RunBatch
// with the same problem, config, and seeds — admission order, queue
// depth, worker count, and co-scheduled jobs are invisible. Only jobs
// cut short (timeout, cancel, drain) have schedule-dependent partials,
// and those are always labelled (Stopped counts, timed_out, cancelled).
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sophie/internal/core"
	"sophie/internal/metrics"
	"sophie/internal/trace"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull reports admission backpressure (HTTP 429).
	ErrQueueFull = errors.New("queue full")
	// ErrDraining reports a shutdown in progress (HTTP 503).
	ErrDraining = errors.New("draining: not accepting jobs")
	// ErrNotFound reports an unknown or TTL-expired job id (HTTP 404).
	ErrNotFound = errors.New("no such job")
)

// Config sizes the service. The zero value is usable: every field has a
// production-lean default applied by NewManager.
type Config struct {
	// QueueCap bounds the admission queue; a submission that finds the
	// queue full is rejected with ErrQueueFull (default 64).
	QueueCap int
	// Workers is the number of concurrent job executors (default 1).
	Workers int
	// DefaultTimeout bounds jobs that specify no timeout_ms; 0 leaves
	// them unbounded.
	DefaultTimeout time.Duration
	// ResultTTL is how long a terminal job stays queryable (default 15m).
	ResultTTL time.Duration
	// JanitorEvery is the TTL sweep interval (default 1m).
	JanitorEvery time.Duration
	// MaxReplicas caps the per-job replica count (default 64).
	MaxReplicas int
	// SolverCacheSize caps cached preprocessed solvers (default 8).
	SolverCacheSize int
	// ProblemDir, when set, is the root for graph_file submissions;
	// empty disables file references.
	ProblemDir string
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 15 * time.Minute
	}
	if c.JanitorEvery <= 0 {
		c.JanitorEvery = time.Minute
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 64
	}
	if c.SolverCacheSize <= 0 {
		c.SolverCacheSize = 8
	}
	return c
}

// Manager owns the queue, the worker pool, the job table, and the
// counters. Create with NewManager, start with Start, stop with
// Shutdown.
type Manager struct {
	cfg   Config
	start time.Time
	cache *solverCache

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*job
	jobs     map[string]*job
	draining bool
	inFlight int
	nextID   uint64
	// counters (guarded by mu; every increment happens on a state
	// transition that already holds it)
	nSubmitted, nRejected, nCompleted, nFailed, nCancelled, nTimedOut uint64
	// exchange tallies summed from finished tempering jobs (guarded by mu)
	nExchanges, nExchangesAccepted uint64

	runCtx    context.Context // parent of every job context; cancelled to force-drain
	runCancel context.CancelFunc
	workerWG  sync.WaitGroup
	bg        sync.WaitGroup // background goroutines (janitor); waited in Shutdown
	stopOnce  sync.Once
	stopCh    chan struct{} // closed at shutdown; stops the janitor

	queueWait   *metrics.Histogram // seconds from submit to execution start
	execLatency *metrics.Histogram // seconds from execution start to finish
	opsMu       sync.Mutex
	ops         metrics.OpCounts // merged OpCounts of every finished job
}

// NewManager builds a stopped manager; call Start to begin executing.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	runCtx, runCancel := context.WithCancel(context.Background())
	qw, err := metrics.NewHistogram(metrics.DefaultLatencyBounds())
	if err != nil {
		panic(err) // the default bounds are statically valid
	}
	el, err := metrics.NewHistogram(metrics.DefaultLatencyBounds())
	if err != nil {
		panic(err)
	}
	m := &Manager{
		cfg:         cfg,
		start:       time.Now(),
		cache:       newSolverCache(cfg.SolverCacheSize),
		jobs:        make(map[string]*job),
		runCtx:      runCtx,
		runCancel:   runCancel,
		stopCh:      make(chan struct{}),
		queueWait:   qw,
		execLatency: el,
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Start launches the worker pool and the TTL janitor.
func (m *Manager) Start() {
	for w := 0; w < m.cfg.Workers; w++ {
		m.workerWG.Add(1)
		go m.worker()
	}
	m.bg.Add(1)
	go m.janitor()
}

// Submit validates and enqueues a job, returning its initial view. A
// full queue returns ErrQueueFull (the caller should surface
// backpressure, e.g. HTTP 429 + Retry-After); a draining manager
// returns ErrDraining; spec problems wrap ErrBadSpec.
func (m *Manager) Submit(spec JobSpec) (JobView, error) {
	j, err := m.resolveSpec(spec)
	if err != nil {
		return JobView{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.nRejected++
		return JobView{}, ErrDraining
	}
	if m.queueDepthLocked() >= m.cfg.QueueCap {
		m.nRejected++
		return JobView{}, ErrQueueFull
	}
	m.nextID++
	j.id = fmt.Sprintf("j%08d", m.nextID)
	j.state = StateQueued
	j.submitted = time.Now()
	m.jobs[j.id] = j
	m.queue = append(m.queue, j)
	m.nSubmitted++
	m.cond.Signal()
	return m.viewLocked(j), nil
}

// Get returns the current view of a job.
func (m *Manager) Get(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return m.viewLocked(j), nil
}

// List returns every job's view, result payloads stripped (spins can be
// large; fetch an individual job for its full result).
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.jobs))
	for _, j := range m.jobs {
		v := m.viewLocked(j)
		v.Result = nil
		out = append(out, v)
	}
	return out
}

// Cancel requests cancellation: a queued job goes terminal immediately;
// a running job has its context cancelled and goes terminal when the
// batch winds down at its next global-iteration boundary (the returned
// view may still show it running with cancel_requested set). Cancelling
// a terminal job is a no-op, not an error.
func (m *Manager) Cancel(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.cancelRequested = true
		j.finished = time.Now()
		m.nCancelled++
	case StateRunning:
		if !j.cancelRequested {
			j.cancelRequested = true
			if j.cancel != nil {
				j.cancel()
			}
		}
	default:
		// Terminal already; idempotent.
	}
	return m.viewLocked(j), nil
}

// worker pulls jobs until the queue is drained and admission closed.
func (m *Manager) worker() {
	defer m.workerWG.Done()
	for {
		j := m.next()
		if j == nil {
			return
		}
		m.execute(j)
	}
}

// next blocks for the next runnable job; nil means shut down.
func (m *Manager) next() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for len(m.queue) > 0 {
			j := m.queue[0]
			m.queue[0] = nil
			m.queue = m.queue[1:]
			if j.state != StateQueued {
				continue // cancelled while queued
			}
			return j
		}
		if m.draining {
			return nil
		}
		m.cond.Wait()
	}
}

// execute runs one job end to end: transition to running, build or
// fetch the cached solver, run the batch under the job's context, and
// record the terminal state.
func (m *Manager) execute(j *job) {
	// Per-job progress: a fresh recorder subscribed to this job's run
	// boundaries and energy evaluations feeds a streaming reducer, so
	// GET /v1/jobs/{id} reports live state while the batch executes.
	// Tracing consumes no randomness, so the determinism contract is
	// untouched; the recorder is installed through WithRuntime below,
	// leaving the cached solver's config pristine for sibling jobs.
	prog := trace.NewProgress()
	rec := trace.NewRecorder(trace.Options{
		Capacity: 4096,
		Kinds: trace.KindRunStart.Mask() | trace.KindRunEnd.Mask() |
			trace.KindEnergy.Mask() | trace.KindExchange.Mask(),
		OnEvent: prog.Observe,
	})

	m.mu.Lock()
	if j.state != StateQueued {
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.progress = prog
	var ctx context.Context
	var cancel context.CancelFunc
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(m.runCtx, j.timeout)
	} else {
		ctx, cancel = context.WithCancel(m.runCtx)
	}
	j.cancel = cancel
	m.inFlight++
	m.mu.Unlock()
	m.queueWait.Observe(j.started.Sub(j.submitted).Seconds())

	solver, err := m.cache.get(j.key, func() (*core.Solver, error) {
		return core.NewSolver(j.model, j.baseCfg)
	})
	var res *core.BatchResult
	if err == nil {
		var runner *core.Solver
		runner, err = solver.WithRuntime(func(c *core.Config) {
			*c = j.runCfg
			c.Tracer = rec
		})
		if err == nil {
			res, err = runner.RunBatchCtx(ctx, j.seeds, j.batchOpts)
		}
	}
	cancel()
	finished := time.Now()

	m.mu.Lock()
	j.cancel = nil
	j.finished = finished
	switch {
	case err != nil:
		j.state = StateFailed
		j.err = err
		m.nFailed++
	case j.cancelRequested:
		// User cancellation: terminal cancelled, partial results kept.
		j.state = StateCancelled
		j.result = res
		m.nCancelled++
	default:
		// Done — including deadline expiry and force-drain, which stop
		// replicas at iteration boundaries but still yield valid
		// best-so-far results. timed_out labels the former.
		j.state = StateDone
		j.result = res
		// timed_out only when the deadline actually cut replicas short —
		// a deadline that fires between batch completion and this
		// bookkeeping did not cost the job anything.
		j.timedOut = j.timeout > 0 && errors.Is(context.Cause(ctx), context.DeadlineExceeded) &&
			res != nil && res.Stopped > 0
		m.nCompleted++
		if j.timedOut {
			m.nTimedOut++
		}
	}
	if res != nil && res.Tempering != nil {
		m.nExchanges += uint64(res.Tempering.Attempted)
		m.nExchangesAccepted += uint64(res.Tempering.Accepted)
	}
	m.inFlight--
	m.mu.Unlock()
	m.execLatency.Observe(finished.Sub(j.started).Seconds())
	if res != nil {
		m.opsMu.Lock()
		m.ops.Add(res.Ops)
		m.opsMu.Unlock()
	}
}

// janitor evicts terminal jobs older than ResultTTL.
func (m *Manager) janitor() {
	defer m.bg.Done()
	t := time.NewTicker(m.cfg.JanitorEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case now := <-t.C:
			m.sweep(now)
		}
	}
}

// sweep deletes terminal jobs whose results outlived ResultTTL.
func (m *Manager) sweep(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, j := range m.jobs {
		if j.state.Terminal() && !j.finished.IsZero() && now.Sub(j.finished) > m.cfg.ResultTTL {
			delete(m.jobs, id)
		}
	}
}

func (m *Manager) queueDepthLocked() int {
	depth := 0
	for _, j := range m.queue {
		if j.state == StateQueued {
			depth++
		}
	}
	return depth
}

// StopAdmission closes the front door: subsequent Submit calls return
// ErrDraining. Idempotent; Shutdown calls it first.
func (m *Manager) StopAdmission() {
	m.mu.Lock()
	m.draining = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// QueueSnapshot preserves the jobs that were still queued when a drain
// began, in admission order — enough to resubmit them verbatim after a
// restart.
type QueueSnapshot struct {
	TakenAt time.Time     `json:"taken_at"`
	Jobs    []SnapshotJob `json:"jobs"`
}

// SnapshotJob is one snapshotted queue entry.
type SnapshotJob struct {
	ID          string    `json:"id"`
	SubmittedAt time.Time `json:"submitted_at"`
	Spec        JobSpec   `json:"spec"`
}

// Shutdown drains the service: admission stops, still-queued jobs are
// snapshotted (and marked cancelled) instead of started, and in-flight
// jobs run to completion. If ctx expires first, in-flight jobs are
// force-cancelled — they stop at their next global-iteration boundary
// and still record valid best-so-far results — and ctx's error is
// returned alongside the snapshot. Shutdown is idempotent; only the
// first call snapshots.
func (m *Manager) Shutdown(ctx context.Context) (*QueueSnapshot, error) {
	m.StopAdmission()

	snap := &QueueSnapshot{TakenAt: time.Now()}
	m.mu.Lock()
	for _, j := range m.queue {
		if j == nil || j.state != StateQueued {
			continue
		}
		snap.Jobs = append(snap.Jobs, SnapshotJob{ID: j.id, SubmittedAt: j.submitted, Spec: j.spec})
		j.state = StateCancelled
		j.cancelRequested = true
		j.finished = snap.TakenAt
		m.nCancelled++
	}
	m.queue = nil
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.workerWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		m.runCancel()
		<-done
	}
	m.stopOnce.Do(func() { close(m.stopCh) })
	// Join the janitor: Shutdown returning means no Manager goroutine
	// is left running (goroutine-ownership invariant, DESIGN.md).
	m.bg.Wait()
	return snap, err
}

// Stats is the /metrics payload: gauges, lifetime counters, the merged
// operation tallies of every finished job, and the latency histograms.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`
	InFlight      int     `json:"in_flight"`
	Workers       int     `json:"workers"`
	Draining      bool    `json:"draining"`
	JobsTracked   int     `json:"jobs_tracked"`

	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	TimedOut  uint64 `json:"timed_out"`
	// Exchange tallies summed over finished tempering jobs.
	Exchanges         uint64 `json:"exchanges"`
	ExchangesAccepted uint64 `json:"exchanges_accepted"`

	SolverCache CacheStats                `json:"solver_cache"`
	Ops         metrics.OpCounts          `json:"ops"`
	QueueWait   metrics.HistogramSnapshot `json:"queue_wait_seconds"`
	Exec        metrics.HistogramSnapshot `json:"exec_seconds"`
}

// Stats returns a consistent snapshot of the service counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		UptimeSeconds:     time.Since(m.start).Seconds(),
		QueueDepth:        m.queueDepthLocked(),
		QueueCap:          m.cfg.QueueCap,
		InFlight:          m.inFlight,
		Workers:           m.cfg.Workers,
		Draining:          m.draining,
		JobsTracked:       len(m.jobs),
		Submitted:         m.nSubmitted,
		Rejected:          m.nRejected,
		Completed:         m.nCompleted,
		Failed:            m.nFailed,
		Cancelled:         m.nCancelled,
		TimedOut:          m.nTimedOut,
		Exchanges:         m.nExchanges,
		ExchangesAccepted: m.nExchangesAccepted,
	}
	m.mu.Unlock()
	s.SolverCache = m.cache.stats()
	m.opsMu.Lock()
	s.Ops = m.ops
	m.opsMu.Unlock()
	s.QueueWait = m.queueWait.Snapshot()
	s.Exec = m.execLatency.Snapshot()
	return s
}

// RetryAfterHint estimates, in whole seconds, when a rejected submitter
// should retry: the mean execution latency scaled by the queue ahead of
// them per worker, clamped to [1, 60]. With no latency samples yet the
// hint is 1s.
func (m *Manager) RetryAfterHint() int {
	mean := m.execLatency.Snapshot().Mean()
	m.mu.Lock()
	depth := m.queueDepthLocked()
	workers := m.cfg.Workers
	m.mu.Unlock()
	est := mean * float64(depth+1) / float64(workers)
	secs := int(est + 0.999)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}
