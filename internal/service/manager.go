// Package service is the sophied job-queue solver service: a bounded
// admission queue, a worker pool executing jobs through the
// context-aware batch runtime (core.RunBatchCtx) over cached
// per-problem solvers, job lifecycle tracking with per-job timeouts and
// user cancellation, a TTL'd result store, and service counters. The
// HTTP JSON API in server.go is a thin skin over the Manager; cmd/sophied
// is the daemon around both.
//
// Determinism contract (DESIGN.md "Service layer"): a job that runs to
// completion returns results bit-identical to a direct core.RunBatch
// with the same problem, config, and seeds — admission order, queue
// depth, worker count, and co-scheduled jobs are invisible. Only jobs
// cut short (timeout, cancel, drain) have schedule-dependent partials,
// and those are always labelled (Stopped counts, timed_out, cancelled).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sophie/internal/core"
	"sophie/internal/metrics"
	"sophie/internal/problem"
	"sophie/internal/trace"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull reports admission backpressure (HTTP 429).
	ErrQueueFull = errors.New("queue full")
	// ErrDraining reports a shutdown in progress (HTTP 503).
	ErrDraining = errors.New("draining: not accepting jobs")
	// ErrNotFound reports an unknown or TTL-expired job id (HTTP 404).
	ErrNotFound = errors.New("no such job")
)

// Journal observes job lifecycle transitions for durability: the WAL
// (internal/wal) implements it to make a kill -9 lose nothing. The
// Manager calls JobSubmitted synchronously before a submission becomes
// runnable — its return is the durability point a 202 stands on —
// and JobStarted/JobTerminal from the executing worker, in per-job
// order. Implementations must be safe for concurrent use.
type Journal interface {
	// JobSubmitted records an admitted job durably (fsync before
	// returning); an error fails the submission.
	JobSubmitted(j SnapshotJob) error
	// JobStarted records the queued→running transition (may batch).
	JobStarted(id string) error
	// JobTerminal records a terminal transition (may batch); terminal
	// jobs are dropped by WAL compaction and never replayed.
	JobTerminal(id string, state State) error
}

// Config sizes the service. The zero value is usable: every field has a
// production-lean default applied by NewManager.
type Config struct {
	// QueueCap bounds the admission queue; a submission that finds the
	// queue full is rejected with ErrQueueFull (default 64).
	QueueCap int
	// Workers is the number of concurrent job executors (default 1).
	Workers int
	// DefaultTimeout bounds jobs that specify no timeout_ms; 0 leaves
	// them unbounded.
	DefaultTimeout time.Duration
	// ResultTTL is how long a terminal job stays queryable (default 15m).
	ResultTTL time.Duration
	// JanitorEvery is the TTL sweep interval (default 1m).
	JanitorEvery time.Duration
	// MaxReplicas caps the per-job replica count (default 64).
	MaxReplicas int
	// SolverCacheSize caps cached preprocessed solvers (default 8).
	SolverCacheSize int
	// ProblemDir, when set, is the root for graph_file submissions;
	// empty disables file references.
	ProblemDir string
	// Journal, when set, records every lifecycle transition durably
	// (the sophied -wal path); nil keeps the queue memory-only.
	Journal Journal
	// Tenant configures the per-tenant fair-admission gates; the zero
	// value disables them.
	Tenant TenantConfig
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 15 * time.Minute
	}
	if c.JanitorEvery <= 0 {
		c.JanitorEvery = time.Minute
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 64
	}
	if c.SolverCacheSize <= 0 {
		c.SolverCacheSize = 8
	}
	return c
}

// Manager owns the queue, the worker pool, the job table, and the
// counters. Create with NewManager, start with Start, stop with
// Shutdown.
type Manager struct {
	cfg   Config
	start time.Time
	cache *solverCache

	mu    sync.Mutex
	cond  *sync.Cond
	queue []*job
	jobs  map[string]*job
	// depth counts jobs in StateQueued (admitted, not yet picked up by
	// a worker) — the admission-capacity gauge. It is a counter rather
	// than a queue-slice scan because a submission is reserved here
	// before its journal record is fsync'd outside the lock.
	depth    int
	tenants  map[string]*tenantState
	draining bool
	inFlight int
	nextID   uint64
	// counters (guarded by mu; every increment happens on a state
	// transition that already holds it)
	nSubmitted, nRejected, nCompleted, nFailed, nCancelled, nTimedOut uint64
	// specRejects counts spec-validation rejections by machine-stable
	// reason label (problem.SpecError.Reason; "invalid" for untyped
	// ErrBadSpec failures). Guarded by mu; feeds
	// sophied_spec_rejects_total{reason}.
	specRejects map[string]uint64
	// restored counts jobs re-admitted from the journal after a restart;
	// journalErrs counts journal appends that failed (the queue keeps
	// serving, degraded to memory-only durability for those records).
	nRestored, nJournalErrs uint64
	// exchange tallies summed from finished tempering jobs (guarded by mu)
	nExchanges, nExchangesAccepted uint64

	runCtx    context.Context // parent of every job context; cancelled to force-drain
	runCancel context.CancelFunc
	workerWG  sync.WaitGroup
	bg        sync.WaitGroup // background goroutines (janitor); waited in Shutdown
	stopOnce  sync.Once
	stopCh    chan struct{} // closed at shutdown; stops the janitor

	queueWait   *metrics.Histogram // seconds from submit to execution start
	execLatency *metrics.Histogram // seconds from execution start to finish
	opsMu       sync.Mutex
	ops         metrics.OpCounts // merged OpCounts of every finished job
}

// NewManager builds a stopped manager; call Start to begin executing.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	runCtx, runCancel := context.WithCancel(context.Background())
	qw, err := metrics.NewHistogram(metrics.DefaultLatencyBounds())
	if err != nil {
		panic(err) // the default bounds are statically valid
	}
	el, err := metrics.NewHistogram(metrics.DefaultLatencyBounds())
	if err != nil {
		panic(err)
	}
	m := &Manager{
		cfg:         cfg,
		start:       time.Now(),
		cache:       newSolverCache(cfg.SolverCacheSize),
		jobs:        make(map[string]*job),
		tenants:     make(map[string]*tenantState),
		runCtx:      runCtx,
		runCancel:   runCancel,
		stopCh:      make(chan struct{}),
		queueWait:   qw,
		execLatency: el,
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Start launches the worker pool and the TTL janitor.
func (m *Manager) Start() {
	for w := 0; w < m.cfg.Workers; w++ {
		m.workerWG.Add(1)
		go m.worker()
	}
	m.bg.Add(1)
	go m.janitor()
}

// Submit validates and enqueues a job under the default tenant; see
// SubmitTenant.
func (m *Manager) Submit(spec JobSpec) (JobView, error) {
	return m.SubmitTenant(spec, DefaultTenant)
}

// SubmitTenant validates and enqueues a job for one tenant, returning
// its initial view. A full queue returns ErrQueueFull and the tenant
// gates return ErrRateLimited/ErrShareLimited (all three surface as
// HTTP 429 + Retry-After); a draining manager returns ErrDraining; spec
// problems wrap ErrBadSpec. With a Journal configured, the submitted
// record is fsync'd before the job becomes runnable — when SubmitTenant
// returns nil, the job survives a kill -9.
func (m *Manager) SubmitTenant(spec JobSpec, tenant string) (JobView, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if err := ValidateTenant(tenant); err != nil {
		return JobView{}, err
	}
	j, err := m.resolveSpec(spec)
	if err != nil {
		if errors.Is(err, ErrBadSpec) {
			reason := "invalid"
			var serr *problem.SpecError
			if errors.As(err, &serr) && serr.Reason != "" {
				reason = serr.Reason
			}
			m.mu.Lock()
			if m.specRejects == nil {
				m.specRejects = make(map[string]uint64)
			}
			m.specRejects[reason]++
			m.mu.Unlock()
		}
		return JobView{}, err
	}
	j.tenant = tenant

	now := time.Now()
	m.mu.Lock()
	ts := m.tenantLocked(tenant, now)
	if m.draining {
		m.nRejected++
		ts.rejectedOther++
		m.mu.Unlock()
		return JobView{}, ErrDraining
	}
	if retry, ok := ts.takeToken(m.cfg.Tenant, now); !ok {
		m.nRejected++
		ts.rejectedRate++
		m.mu.Unlock()
		return JobView{}, &RateLimitedError{Tenant: tenant, RetryAfterSeconds: retry}
	}
	if m.depth >= m.cfg.QueueCap {
		m.nRejected++
		ts.rejectedOther++
		m.mu.Unlock()
		return JobView{}, ErrQueueFull
	}
	if shareCap := m.tenantShareCapLocked(); shareCap > 0 && ts.depth >= shareCap {
		m.nRejected++
		ts.rejectedShare++
		m.mu.Unlock()
		return JobView{}, &ShareLimitedError{Tenant: tenant, Cap: shareCap}
	}
	// Reserve: the job is visible (Get/Cancel work) and counts against
	// both depth gauges, but is not yet runnable — it enters m.queue
	// only after its journal record is durable.
	m.nextID++
	j.id = fmt.Sprintf("j%08d", m.nextID)
	j.state = StateQueued
	j.submitted = now
	j.hub = newEventHub()
	m.jobs[j.id] = j
	m.depth++
	ts.depth++
	m.nSubmitted++
	ts.submitted++
	m.mu.Unlock()

	// Durability point: journal the submission outside the lock (the
	// fsync batch wait must not stall Get/List/Cancel). Replay restores
	// admission order by sorting on the monotone ids, so concurrent
	// submissions may land in the log out of order safely.
	if m.cfg.Journal != nil {
		if err := m.cfg.Journal.JobSubmitted(SnapshotJob{
			ID: j.id, Tenant: tenant, SubmittedAt: j.submitted, Spec: spec,
		}); err != nil {
			m.mu.Lock()
			defer m.mu.Unlock()
			m.nJournalErrs++
			if j.state == StateQueued { // a racing Cancel may have retired it already
				delete(m.jobs, j.id)
				m.depth--
				ts.depth--
				m.nSubmitted--
				ts.submitted--
				m.nRejected++
				ts.rejectedOther++
			}
			return JobView{}, fmt.Errorf("journaling submission: %w", err)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case j.state != StateQueued:
		// Cancelled while the journal record was in flight; the cancel
		// path already finalized it.
	case m.draining:
		// Drain began while journaling: the job cannot run this process
		// lifetime, but its submitted record is durable and unterminated,
		// so a restart over the same journal replays it (the same rule
		// drain-snapshotted jobs follow).
		m.terminateQueuedLocked(j, StateCancelled)
	default:
		m.queue = append(m.queue, j)
		m.cond.Signal()
	}
	return m.viewLocked(j), nil
}

// terminateQueuedLocked retires a job that never left the queue
// (user cancel, drain): terminal state, depth bookkeeping, hub close.
// The caller holds mu and journals the transition afterwards if wanted.
func (m *Manager) terminateQueuedLocked(j *job, state State) {
	j.state = state
	j.cancelRequested = true
	j.finished = time.Now()
	m.depth--
	m.tenantLocked(j.tenant, j.finished).depth--
	m.nCancelled++
	m.closeHubLocked(j)
}

// closeHubLocked renders the job's final view and closes its event hub
// with it, releasing every SSE subscriber. The caller holds mu.
func (m *Manager) closeHubLocked(j *job) {
	if j.hub == nil {
		return
	}
	final, err := json.Marshal(m.viewLocked(j))
	if err != nil {
		// A view is always marshalable; keep the hub contract (closed
		// with *some* payload) even if that ever changes.
		final = []byte(fmt.Sprintf(`{"id":%q,"state":%q}`, j.id, j.state))
	}
	j.hub.close(final)
}

// Restore re-admits journal-recovered jobs, idempotent by job id: ids
// already tracked are skipped, ids re-enter the queue with their
// original id, tenant, and submission time, and the id counter advances
// past every restored id so new submissions never collide. Jobs whose
// spec no longer resolves (a graph_file deleted across the restart, a
// problem-dir change) are recorded as failed so their ids still answer.
// Call Restore after NewManager and before Start, in replay order; the
// recovered jobs execute exactly as if resubmitted. Restored jobs are
// NOT re-journaled — the journal that produced them already holds their
// records (wal.Open compacts them into its fresh segment).
func (m *Manager) Restore(jobs []SnapshotJob) (int, error) {
	restored := 0
	var firstErr error
	for _, sj := range jobs {
		if sj.ID == "" {
			continue
		}
		j, err := m.resolveSpec(sj.Spec)
		now := time.Now()
		m.mu.Lock()
		if _, dup := m.jobs[sj.ID]; dup {
			m.mu.Unlock()
			continue
		}
		if n, perr := parseJobID(sj.ID); perr == nil && n > m.nextID {
			m.nextID = n
		}
		tenant := sj.Tenant
		if tenant == "" {
			tenant = DefaultTenant
		}
		if err != nil {
			// The spec no longer resolves in this environment: keep the
			// id answerable as a failed job instead of dropping it.
			dead := &job{id: sj.ID, tenant: tenant, spec: sj.Spec,
				state: StateFailed, submitted: sj.SubmittedAt, finished: now,
				err: err, hub: newEventHub(), restored: true}
			m.jobs[sj.ID] = dead
			m.nFailed++
			m.nRestored++
			m.closeHubLocked(dead)
			// Journal the failure so compaction retires the record and
			// the next restart does not replay this dead job again.
			m.journalTerminalLocked(dead.id, StateFailed)
			m.mu.Unlock()
			if firstErr == nil {
				firstErr = fmt.Errorf("restoring %s: %w", sj.ID, err)
			}
			continue
		}
		j.id = sj.ID
		j.tenant = tenant
		j.state = StateQueued
		j.submitted = sj.SubmittedAt
		if j.submitted.IsZero() {
			j.submitted = now
		}
		j.hub = newEventHub()
		j.restored = true
		m.jobs[j.id] = j
		m.queue = append(m.queue, j)
		m.depth++
		m.tenantLocked(tenant, now).depth++
		m.nRestored++
		m.cond.Signal()
		m.mu.Unlock()
		restored++
	}
	return restored, firstErr
}

// parseJobID inverts the "j%08d" id format.
func parseJobID(id string) (uint64, error) {
	digits, ok := strings.CutPrefix(id, "j")
	if !ok {
		return 0, fmt.Errorf("job id %q does not start with 'j'", id)
	}
	return strconv.ParseUint(digits, 10, 64)
}

// Get returns the current view of a job.
func (m *Manager) Get(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return m.viewLocked(j), nil
}

// List returns every job's view, result payloads stripped (spins can be
// large; fetch an individual job for its full result).
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.jobs))
	for _, j := range m.jobs {
		v := m.viewLocked(j)
		v.Result = nil
		out = append(out, v)
	}
	return out
}

// Cancel requests cancellation: a queued job goes terminal immediately;
// a running job has its context cancelled and goes terminal when the
// batch winds down at its next global-iteration boundary (the returned
// view may still show it running with cancel_requested set). Cancelling
// a terminal job is a no-op, not an error.
func (m *Manager) Cancel(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch j.state {
	case StateQueued:
		m.terminateQueuedLocked(j, StateCancelled)
		m.journalTerminalLocked(j.id, StateCancelled)
	case StateRunning:
		if !j.cancelRequested {
			j.cancelRequested = true
			if j.cancel != nil {
				j.cancel()
			}
		}
	default:
		// Terminal already; idempotent.
	}
	return m.viewLocked(j), nil
}

// worker pulls jobs until the queue is drained and admission closed.
func (m *Manager) worker() {
	defer m.workerWG.Done()
	for {
		j := m.next()
		if j == nil {
			return
		}
		m.execute(j)
	}
}

// journalTerminalLocked records a terminal transition for callers that
// hold mu. Journal appends on this path are buffered (no fsync wait),
// so the hold time stays microscopic; errors degrade to a counter —
// the in-memory lifecycle is already final.
func (m *Manager) journalTerminalLocked(id string, state State) {
	if m.cfg.Journal == nil {
		return
	}
	if err := m.cfg.Journal.JobTerminal(id, state); err != nil {
		m.nJournalErrs++
	}
}

// next blocks for the next runnable job; nil means shut down.
func (m *Manager) next() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for len(m.queue) > 0 {
			j := m.queue[0]
			m.queue[0] = nil
			m.queue = m.queue[1:]
			if j.state != StateQueued {
				continue // cancelled while queued
			}
			return j
		}
		if m.draining {
			return nil
		}
		m.cond.Wait()
	}
}

// execute runs one job end to end: transition to running, build or
// fetch the cached solver, run the batch under the job's context, and
// record the terminal state.
func (m *Manager) execute(j *job) {
	// Per-job progress: a fresh recorder subscribed to this job's run
	// boundaries and energy evaluations feeds a streaming reducer, so
	// GET /v1/jobs/{id} reports live state while the batch executes.
	// Tracing consumes no randomness, so the determinism contract is
	// untouched; the recorder is installed through WithRuntime below,
	// leaving the cached solver's config pristine for sibling jobs.
	prog := trace.NewProgress()
	hub := j.hub
	rec := trace.NewRecorder(trace.Options{
		Capacity: 4096,
		Kinds: trace.KindRunStart.Mask() | trace.KindRunEnd.Mask() |
			trace.KindEnergy.Mask() | trace.KindExchange.Mask(),
		// Every retained event feeds the polling reducer; energy events
		// additionally fan the reduced snapshot out to SSE subscribers.
		// Snapshots are rendered only when someone is streaming, and the
		// reducer's best-energy fold is monotone, so a streamed client
		// observes a nonincreasing best_energy sequence.
		OnEvent: func(ev trace.Event) {
			prog.Observe(ev)
			if ev.Kind != trace.KindEnergy || !hub.hasSubscribers() {
				return
			}
			if data, err := json.Marshal(prog.Snapshot()); err == nil {
				hub.publish(StreamEvent{Event: "progress", Data: data})
			}
		},
	})

	m.mu.Lock()
	if j.state != StateQueued {
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.progress = prog
	m.depth--
	m.tenantLocked(j.tenant, j.started).depth--
	var ctx context.Context
	var cancel context.CancelFunc
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(m.runCtx, j.timeout)
	} else {
		ctx, cancel = context.WithCancel(m.runCtx)
	}
	j.cancel = cancel
	m.inFlight++
	m.mu.Unlock()
	m.queueWait.Observe(j.started.Sub(j.submitted).Seconds())
	if m.cfg.Journal != nil {
		if jerr := m.cfg.Journal.JobStarted(j.id); jerr != nil {
			m.mu.Lock()
			m.nJournalErrs++
			m.mu.Unlock()
		}
	}

	solver, err := m.cache.get(j.key, func() (*core.Solver, error) {
		return core.NewSolver(j.model, j.baseCfg)
	})
	var res *core.BatchResult
	if err == nil {
		var runner *core.Solver
		runner, err = solver.WithRuntime(func(c *core.Config) {
			*c = j.runCfg
			c.Tracer = rec
		})
		if err == nil {
			res, err = runner.RunBatchCtx(ctx, j.seeds, j.batchOpts)
		}
	}
	cancel()
	finished := time.Now()

	m.mu.Lock()
	j.cancel = nil
	j.finished = finished
	switch {
	case err != nil:
		j.state = StateFailed
		j.err = err
		m.nFailed++
	case j.cancelRequested:
		// User cancellation: terminal cancelled, partial results kept.
		j.state = StateCancelled
		j.result = res
		m.nCancelled++
	default:
		// Done — including deadline expiry and force-drain, which stop
		// replicas at iteration boundaries but still yield valid
		// best-so-far results. timed_out labels the former.
		j.state = StateDone
		j.result = res
		// timed_out only when the deadline actually cut replicas short —
		// a deadline that fires between batch completion and this
		// bookkeeping did not cost the job anything.
		j.timedOut = j.timeout > 0 && errors.Is(context.Cause(ctx), context.DeadlineExceeded) &&
			res != nil && res.Stopped > 0
		m.nCompleted++
		if j.timedOut {
			m.nTimedOut++
		}
	}
	if res != nil && res.Tempering != nil {
		m.nExchanges += uint64(res.Tempering.Attempted)
		m.nExchangesAccepted += uint64(res.Tempering.Accepted)
	}
	m.inFlight--
	m.closeHubLocked(j)
	m.journalTerminalLocked(j.id, j.state)
	m.mu.Unlock()
	m.execLatency.Observe(finished.Sub(j.started).Seconds())
	if res != nil {
		m.opsMu.Lock()
		m.ops.Add(res.Ops)
		m.opsMu.Unlock()
	}
}

// janitor evicts terminal jobs older than ResultTTL.
func (m *Manager) janitor() {
	defer m.bg.Done()
	t := time.NewTicker(m.cfg.JanitorEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case now := <-t.C:
			m.sweep(now)
		}
	}
}

// sweep deletes terminal jobs whose results outlived ResultTTL.
func (m *Manager) sweep(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, j := range m.jobs {
		if j.state.Terminal() && !j.finished.IsZero() && now.Sub(j.finished) > m.cfg.ResultTTL {
			delete(m.jobs, id)
		}
	}
	m.sweepTenantsLocked(now)
}

func (m *Manager) queueDepthLocked() int { return m.depth }

// StopAdmission closes the front door: subsequent Submit calls return
// ErrDraining. Idempotent; Shutdown calls it first.
func (m *Manager) StopAdmission() {
	m.mu.Lock()
	m.draining = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// QueueSnapshot preserves the jobs that were still queued when a drain
// began, in admission order — enough to resubmit them verbatim after a
// restart.
type QueueSnapshot struct {
	TakenAt time.Time     `json:"taken_at"`
	Jobs    []SnapshotJob `json:"jobs"`
}

// SnapshotJob is one snapshotted queue entry. The same JSON shape is
// the payload of the WAL's submitted records (internal/wal), so a
// drained snapshot and a replayed journal describe jobs identically.
type SnapshotJob struct {
	ID          string    `json:"id"`
	Tenant      string    `json:"tenant,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	Spec        JobSpec   `json:"spec"`
}

// Shutdown drains the service: admission stops, still-queued jobs are
// snapshotted (and marked cancelled) instead of started, and in-flight
// jobs run to completion. If ctx expires first, in-flight jobs are
// force-cancelled — they stop at their next global-iteration boundary
// and still record valid best-so-far results — and ctx's error is
// returned alongside the snapshot. Shutdown is idempotent; only the
// first call snapshots.
func (m *Manager) Shutdown(ctx context.Context) (*QueueSnapshot, error) {
	m.StopAdmission()

	snap := &QueueSnapshot{TakenAt: time.Now()}
	m.mu.Lock()
	for _, j := range m.queue {
		if j == nil || j.state != StateQueued {
			continue
		}
		snap.Jobs = append(snap.Jobs, SnapshotJob{ID: j.id, Tenant: j.tenant, SubmittedAt: j.submitted, Spec: j.spec})
		// Deliberately NOT journaled terminal: the drained job's
		// submitted record stays live in the WAL, so a restart over the
		// same journal re-queues it (replay idempotency rule #3,
		// DESIGN.md "Durable service layer").
		m.terminateQueuedLocked(j, StateCancelled)
	}
	m.queue = nil
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.workerWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		m.runCancel()
		<-done
	}
	m.stopOnce.Do(func() { close(m.stopCh) })
	// Join the janitor: Shutdown returning means no Manager goroutine
	// is left running (goroutine-ownership invariant, DESIGN.md).
	m.bg.Wait()
	return snap, err
}

// Stats is the /metrics payload: gauges, lifetime counters, the merged
// operation tallies of every finished job, and the latency histograms.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`
	InFlight      int     `json:"in_flight"`
	Workers       int     `json:"workers"`
	Draining      bool    `json:"draining"`
	JobsTracked   int     `json:"jobs_tracked"`

	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	TimedOut  uint64 `json:"timed_out"`
	// Restored counts jobs re-admitted from the journal after a
	// restart; JournalErrors counts failed journal appends.
	Restored      uint64 `json:"restored"`
	JournalErrors uint64 `json:"journal_errors"`
	// Exchange tallies summed over finished tempering jobs.
	Exchanges         uint64 `json:"exchanges"`
	ExchangesAccepted uint64 `json:"exchanges_accepted"`
	// SpecRejects counts spec-validation rejections by reason label.
	SpecRejects map[string]uint64 `json:"spec_rejects,omitempty"`

	// Tenants is the per-tenant admission picture, keyed by tenant name
	// (only tenants seen since the last idle sweep appear).
	Tenants map[string]TenantStats `json:"tenants,omitempty"`

	SolverCache CacheStats                `json:"solver_cache"`
	Ops         metrics.OpCounts          `json:"ops"`
	QueueWait   metrics.HistogramSnapshot `json:"queue_wait_seconds"`
	Exec        metrics.HistogramSnapshot `json:"exec_seconds"`
}

// TenantNames returns the stats' tenant keys sorted, for deterministic
// rendering (the Prometheus exposition iterates them).
func (s Stats) TenantNames() []string {
	names := make([]string, 0, len(s.Tenants))
	for name := range s.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Stats returns a consistent snapshot of the service counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		UptimeSeconds:     time.Since(m.start).Seconds(),
		QueueDepth:        m.queueDepthLocked(),
		QueueCap:          m.cfg.QueueCap,
		InFlight:          m.inFlight,
		Workers:           m.cfg.Workers,
		Draining:          m.draining,
		JobsTracked:       len(m.jobs),
		Submitted:         m.nSubmitted,
		Rejected:          m.nRejected,
		Completed:         m.nCompleted,
		Failed:            m.nFailed,
		Cancelled:         m.nCancelled,
		TimedOut:          m.nTimedOut,
		Restored:          m.nRestored,
		JournalErrors:     m.nJournalErrs,
		Exchanges:         m.nExchanges,
		ExchangesAccepted: m.nExchangesAccepted,
	}
	if len(m.specRejects) > 0 {
		s.SpecRejects = make(map[string]uint64, len(m.specRejects))
		for reason, n := range m.specRejects {
			s.SpecRejects[reason] = n
		}
	}
	if len(m.tenants) > 0 {
		s.Tenants = make(map[string]TenantStats, len(m.tenants))
		for name, ts := range m.tenants {
			s.Tenants[name] = TenantStats{
				QueueDepth:    ts.depth,
				Submitted:     ts.submitted,
				RejectedRate:  ts.rejectedRate,
				RejectedShare: ts.rejectedShare,
				RejectedOther: ts.rejectedOther,
			}
		}
	}
	m.mu.Unlock()
	s.SolverCache = m.cache.stats()
	m.opsMu.Lock()
	s.Ops = m.ops
	m.opsMu.Unlock()
	s.QueueWait = m.queueWait.Snapshot()
	s.Exec = m.execLatency.Snapshot()
	return s
}

// RetryAfterHint estimates, in whole seconds, when a rejected submitter
// should retry: the mean execution latency scaled by the queue ahead of
// them per worker, clamped to [1, 60]. With no latency samples yet the
// hint is 1s.
func (m *Manager) RetryAfterHint() int {
	mean := m.execLatency.Snapshot().Mean()
	m.mu.Lock()
	depth := m.queueDepthLocked()
	workers := m.cfg.Workers
	m.mu.Unlock()
	est := mean * float64(depth+1) / float64(workers)
	secs := int(est + 0.999)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}
