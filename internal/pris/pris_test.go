package pris

import (
	"math"
	"testing"

	"sophie/internal/graph"
	"sophie/internal/ising"
)

func smallGraph(t *testing.T) (*graph.Graph, *ising.Model) {
	t.Helper()
	g, err := graph.Random(40, 120, graph.WeightUnit, 13)
	if err != nil {
		t.Fatal(err)
	}
	return g, ising.FromMaxCut(g)
}

func TestConfigValidation(t *testing.T) {
	_, m := smallGraph(t)
	bad := []Config{
		{Phi: -1, Iterations: 10},
		{Alpha: 2, Iterations: 10},
		{Alpha: -0.5, Iterations: 10},
		{Iterations: 0},
		{Iterations: 5, InitialSpins: []int8{1}},
	}
	for i, cfg := range bad {
		if _, err := Solve(m, cfg); err == nil {
			t.Errorf("config %d should have been rejected: %+v", i, cfg)
		}
	}
}

func TestSolveImprovesOverRandom(t *testing.T) {
	g, m := smallGraph(t)
	cfg := Config{Phi: 0.15, Alpha: 0, Iterations: 300, Seed: 1}
	res, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := g.CutValue(res.BestSpins)
	// A random cut captures ~half the edges; PRIS should do meaningfully
	// better on this easy instance.
	if cut < 0.55*float64(g.M()) {
		t.Fatalf("PRIS cut %v of %d edges — no better than random", cut, g.M())
	}
	if res.BestEnergy != m.Energy(res.BestSpins) {
		t.Fatal("BestEnergy inconsistent with BestSpins")
	}
}

func TestSolveDeterministicForSeed(t *testing.T) {
	_, m := smallGraph(t)
	cfg := Config{Phi: 0.2, Iterations: 100, Seed: 42}
	a, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestEnergy != b.BestEnergy || a.BestIteration != b.BestIteration {
		t.Fatalf("nondeterministic: %v@%d vs %v@%d", a.BestEnergy, a.BestIteration, b.BestEnergy, b.BestIteration)
	}
	for i := range a.BestSpins {
		if a.BestSpins[i] != b.BestSpins[i] {
			t.Fatal("spins differ across identical runs")
		}
	}
}

func TestSolveDifferentSeedsDiffer(t *testing.T) {
	_, m := smallGraph(t)
	a, _ := Solve(m, Config{Phi: 0.2, Iterations: 50, Seed: 1})
	b, _ := Solve(m, Config{Phi: 0.2, Iterations: 50, Seed: 2})
	same := true
	for i := range a.FinalSpins {
		if a.FinalSpins[i] != b.FinalSpins[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should explore different trajectories")
	}
}

func TestRecordTrace(t *testing.T) {
	_, m := smallGraph(t)
	res, err := Solve(m, Config{Phi: 0.1, Iterations: 25, Seed: 3, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EnergyTrace) != 25 {
		t.Fatalf("trace length %d, want 25", len(res.EnergyTrace))
	}
	min := math.Inf(1)
	for _, e := range res.EnergyTrace {
		if e < min {
			min = e
		}
	}
	if res.BestEnergy > min {
		t.Fatal("BestEnergy must be <= every traced energy")
	}
}

func TestInitialSpinsRespected(t *testing.T) {
	_, m := smallGraph(t)
	init := make([]int8, m.N())
	for i := range init {
		init[i] = 1
	}
	res, err := Solve(m, Config{Phi: 0, Iterations: 1, Seed: 9, InitialSpins: init})
	if err != nil {
		t.Fatal(err)
	}
	// The initial all-up state is a candidate for best.
	if res.BestEnergy > m.Energy(init) {
		t.Fatal("initial state energy must bound BestEnergy")
	}
}

func TestSkipTransformRuns(t *testing.T) {
	g, m := smallGraph(t)
	res, err := Solve(m, Config{Phi: 0.15, Iterations: 200, Seed: 5, SkipTransform: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CutValue(res.BestSpins); got <= 0 {
		t.Fatalf("skip-transform run produced cut %v", got)
	}
}

func TestNewTransformShapes(t *testing.T) {
	_, m := smallGraph(t)
	tr, err := NewTransform(m, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	n := m.N()
	if tr.C.Rows() != n || len(tr.Thresholds) != n || len(tr.RowNorms) != n {
		t.Fatal("transform shapes wrong")
	}
	for i, th := range tr.Thresholds {
		sum := 0.0
		for _, v := range tr.C.Row(i) {
			sum += v
		}
		if math.Abs(th-sum/2) > 1e-9 {
			t.Fatalf("threshold %d = %v, want %v", i, th, sum/2)
		}
	}
}

func TestSolveWithTransformMismatch(t *testing.T) {
	_, m := smallGraph(t)
	gBig, _ := graph.Random(10, 20, graph.WeightUnit, 2)
	mSmall := ising.FromMaxCut(gBig)
	tr, err := NewTransform(mSmall, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveWithTransform(m, tr, Config{Phi: 0.1, Iterations: 5}); err == nil {
		t.Fatal("expected transform/model shape mismatch error")
	}
}

func TestZeroNoiseIsDeterministicDynamics(t *testing.T) {
	// With φ=0 the recurrence is a deterministic map; two runs from the
	// same initial state must coincide exactly, including the trace.
	_, m := smallGraph(t)
	init := make([]int8, m.N())
	for i := range init {
		if i%3 == 0 {
			init[i] = 1
		} else {
			init[i] = -1
		}
	}
	cfg := Config{Phi: 0, Iterations: 30, RecordTrace: true, InitialSpins: init}
	a, _ := Solve(m, cfg)
	cfg.Seed = 999 // seed must not matter at φ=0 with fixed init
	b, _ := Solve(m, cfg)
	for i := range a.EnergyTrace {
		if a.EnergyTrace[i] != b.EnergyTrace[i] {
			t.Fatal("zero-noise dynamics depended on the seed")
		}
	}
}

func BenchmarkPRISStep256(b *testing.B) {
	g, err := graph.Random(256, 2000, graph.WeightUnit, 7)
	if err != nil {
		b.Fatal(err)
	}
	m := ising.FromMaxCut(g)
	tr, err := NewTransform(m, 0, true)
	if err != nil {
		b.Fatal(err)
	}
	res, err := SolveWithTransform(m, tr, Config{Phi: 0.1, Iterations: 1, Seed: 1})
	_ = res
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveWithTransform(m, tr, Config{Phi: 0.1, Iterations: 10, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNewTransformRankSparseMatchesDense(t *testing.T) {
	g, err := graph.Random(40, 120, graph.WeightUnit, 22)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)
	dense, err := NewTransformRank(m, 0, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewTransformRankSparse(g.CouplingCSR(), 0, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense.C.Data() {
		d := dense.C.Data()[i] - sparse.C.Data()[i]
		if d > 1e-8 || d < -1e-8 {
			t.Fatalf("sparse transform differs at %d", i)
		}
	}
	for i := range dense.Thresholds {
		if math.Abs(dense.Thresholds[i]-sparse.Thresholds[i]) > 1e-8 {
			t.Fatal("thresholds differ")
		}
	}
}
