// Package pris implements the Photonic Recurrent Ising Sampler of
// Roques-Carmes et al., the reference algorithm SOPHIE modifies
// (Section II-C). The recurrence is
//
//	X ~ N(C·S, φ)        (Eq. 5)
//	S' = Th_θ(X)         (Eq. 6), θᵢ = Σⱼ Cᵢⱼ/2 (Eq. 7)
//
// over binary states S ∈ {0,1}ᴺ, where C is the eigenvalue-dropout
// transform of the coupling matrix (Eq. 2-4). Running the recurrence
// drives the system toward low-energy states of the Ising Hamiltonian.
//
// The noise parameter φ is dimensionless: the per-component standard
// deviation is φ·‖Cᵢ‖₂ (row norm), so the same φ values the paper
// reports (0.1-0.2) are meaningful across graphs of different order and
// density. internal/core reuses this calibration so the modified
// algorithm and the reference are directly comparable.
package pris

import (
	"fmt"
	"math"
	"math/rand"

	"sophie/internal/ising"
	"sophie/internal/linalg"
)

// Config controls a PRIS run.
type Config struct {
	// Phi is the dimensionless noise standard deviation (Eq. 5).
	Phi float64
	// Alpha is the eigenvalue dropout factor in [0,1] (Eq. 4).
	Alpha float64
	// Iterations is the number of recurrent steps.
	Iterations int
	// Seed makes the stochastic recurrence reproducible.
	Seed int64
	// SkipTransform uses C = K directly instead of the eigenvalue
	// dropout preprocessing. The O(n³) decomposition is host-side work;
	// skipping it matches how large instances are handled (DESIGN.md).
	SkipTransform bool
	// RecordTrace stores the energy after every iteration in the result.
	RecordTrace bool
	// InitialSpins optionally fixes the starting state (±1 per spin);
	// nil draws a uniform random state from Seed.
	InitialSpins []int8
}

func (c *Config) validate(n int) error {
	if c.Phi < 0 {
		return fmt.Errorf("pris: negative noise phi %v", c.Phi)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("pris: alpha %v outside [0,1]", c.Alpha)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("pris: iterations must be positive, got %d", c.Iterations)
	}
	if c.InitialSpins != nil && len(c.InitialSpins) != n {
		return fmt.Errorf("pris: %d initial spins for %d-spin model", len(c.InitialSpins), n)
	}
	return nil
}

// Result reports the outcome of a PRIS run.
type Result struct {
	// BestSpins is the lowest-energy ±1 state visited.
	BestSpins []int8
	// BestEnergy is the Hamiltonian at BestSpins.
	BestEnergy float64
	// BestIteration is the step at which BestEnergy was first reached.
	BestIteration int
	// FinalSpins is the state after the last iteration.
	FinalSpins []int8
	// EnergyTrace holds the energy after each iteration when
	// Config.RecordTrace is set.
	EnergyTrace []float64
}

// Transform precomputes the PRIS transformation matrix C and thresholds
// for a model, so repeated solves (e.g. parameter sweeps over φ) do not
// repeat the O(n³) eigendecomposition.
type Transform struct {
	C          *linalg.Matrix
	Thresholds []float64
	RowNorms   []float64 // ‖Cᵢ‖₂, the noise scale per component
}

// NewTransform builds the transform for the model with the given dropout
// factor; skip selects C = K without eigendecomposition. A model with an
// external field (ising.Model.Field) has the field folded into the
// thresholds — see shiftThresholds.
func NewTransform(m *ising.Model, alpha float64, skip bool) (*Transform, error) {
	var c *linalg.Matrix
	if skip {
		c = m.Coupling().Clone()
	} else {
		var err error
		c, err = linalg.PRISTransform(m.Coupling(), alpha)
		if err != nil {
			return nil, err
		}
	}
	t := wrapTransform(c)
	shiftThresholds(t.Thresholds, m.Field())
	return t, nil
}

// NewTransformRank builds the transform through the rank-limited Lanczos
// path (linalg.PRISTransformRank): O(rank·n²) instead of O(n³), for
// problems too large for dense eigendecomposition.
func NewTransformRank(m *ising.Model, alpha float64, rank int, seed int64) (*Transform, error) {
	c, err := linalg.PRISTransformRank(m.Coupling(), alpha, rank, seed)
	if err != nil {
		return nil, err
	}
	t := wrapTransform(c)
	shiftThresholds(t.Thresholds, m.Field())
	return t, nil
}

// NewTransformRankSparse builds the rank-limited transform directly
// from a sparse coupling matrix (e.g. graph.CouplingCSR), so the
// Krylov iterations cost O(nnz) instead of O(n²) per step. It takes raw
// couplings, not a model, so no field enters here.
func NewTransformRankSparse(k *linalg.CSR, alpha float64, rank int, seed int64) (*Transform, error) {
	c, err := linalg.PRISTransformRankSparse(k, alpha, rank, seed)
	if err != nil {
		return nil, err
	}
	return wrapTransform(c), nil
}

// shiftThresholds folds an external field into the threshold vector:
// θᵢ -= hᵢ/2. For C = K this is exact — the recurrence's update rule
// "set σᵢ = +1 iff (K·x)ᵢ ≥ θᵢ" becomes, in ±1 variables,
// "(K·σ)ᵢ + hᵢ ≥ 0", the locally greedy descent direction of
// H = -½σᵀKσ - hᵀσ. With eigenvalue dropout the same shift applies,
// treating the dropout as acting on the quadratic part only. A nil
// field leaves the vector untouched (bit-compat invariant: field-free
// models keep the exact pre-field thresholds).
func shiftThresholds(thresholds, h []float64) {
	if h == nil {
		return
	}
	for i, hi := range h {
		thresholds[i] -= hi / 2
	}
}

// TransformCSR is the sparse counterpart of Transform: the
// transformation matrix kept in CSR form, never densified. Only the
// C = K (SkipTransform) path exists here — eigenvalue dropout produces
// dense eigenvector outer products — which is also how large instances
// are run (DESIGN.md). Thresholds and RowNorms are bit-identical to
// what wrapTransform computes on the densified matrix: each row's
// stored entries are summed (and squared-summed) in the same increasing
// column order, and the skipped zeros are exact +0 terms.
type TransformCSR struct {
	C          *linalg.CSR
	Thresholds []float64
	RowNorms   []float64 // ‖Cᵢ‖₂, the noise scale per component
}

// NewTransformCSR builds the sparse C = K transform for a model.
func NewTransformCSR(m *ising.Model) (*TransformCSR, error) {
	k, err := m.Sparse()
	if err != nil {
		return nil, err
	}
	n := k.Order()
	t := &TransformCSR{
		C:          k,
		Thresholds: make([]float64, n),
		RowNorms:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		sum, sumSq := 0.0, 0.0
		k.ScanRow(i, func(_ int, v float64) {
			sum += v
			sumSq += v * v
		})
		t.Thresholds[i] = sum / 2 // θᵢ = Σⱼ Cᵢⱼ/2 (Eq. 7)
		t.RowNorms[i] = math.Sqrt(sumSq)
	}
	shiftThresholds(t.Thresholds, m.Field())
	return t, nil
}

func wrapTransform(c *linalg.Matrix) *Transform {
	t := &Transform{C: c, Thresholds: linalg.Thresholds(c)}
	t.RowNorms = make([]float64, c.Rows())
	for i := range t.RowNorms {
		t.RowNorms[i] = linalg.VecNorm2(c.Row(i))
	}
	return t
}

// Step performs one PRIS recurrence step in place: given binary state s,
// it writes the next binary state into s using scratch buffer x
// (len n) and the provided RNG. It returns s.
func (t *Transform) Step(s, x []float64, phi float64, rng *rand.Rand) []float64 {
	// x = C·s, accumulated row-major over the set bits of s.
	for i := range x {
		x[i] = 0
	}
	n := t.C.Rows()
	for j := 0; j < n; j++ {
		if s[j] == 0 {
			continue
		}
		// Column j of C equals row j by symmetry, so stream the row.
		row := t.C.Row(j)
		for i, v := range row {
			x[i] += v
		}
	}
	for i := 0; i < n; i++ {
		noisy := x[i]
		if phi > 0 {
			noisy += rng.NormFloat64() * phi * t.RowNorms[i]
		}
		if noisy < t.Thresholds[i] {
			s[i] = 0
		} else {
			s[i] = 1
		}
	}
	return s
}

// Solve runs the PRIS recurrence on the model and returns the
// lowest-energy state visited.
func Solve(m *ising.Model, cfg Config) (*Result, error) {
	if err := cfg.validate(m.N()); err != nil {
		return nil, err
	}
	t, err := NewTransform(m, cfg.Alpha, cfg.SkipTransform)
	if err != nil {
		return nil, err
	}
	return SolveWithTransform(m, t, cfg)
}

// SolveWithTransform runs PRIS with a precomputed transform, sharing the
// expensive preprocessing across runs.
func SolveWithTransform(m *ising.Model, t *Transform, cfg Config) (*Result, error) {
	n := m.N()
	if err := cfg.validate(n); err != nil {
		return nil, err
	}
	if t.C.Rows() != n {
		return nil, fmt.Errorf("pris: transform is %dx%d for %d-spin model", t.C.Rows(), t.C.Cols(), n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var spins []int8
	if cfg.InitialSpins != nil {
		spins = append([]int8(nil), cfg.InitialSpins...)
	} else {
		spins = ising.RandomSpins(n, func() bool { return rng.Intn(2) == 0 })
	}
	s := ising.SpinsToBinary(spins)
	x := make([]float64, n)

	res := &Result{
		BestSpins:  append([]int8(nil), spins...),
		BestEnergy: m.Energy(spins),
	}
	if cfg.RecordTrace {
		res.EnergyTrace = make([]float64, 0, cfg.Iterations)
	}
	for iter := 1; iter <= cfg.Iterations; iter++ {
		t.Step(s, x, cfg.Phi, rng)
		cur := ising.BinaryToSpins(s)
		e := m.Energy(cur)
		if cfg.RecordTrace {
			res.EnergyTrace = append(res.EnergyTrace, e)
		}
		if e < res.BestEnergy {
			res.BestEnergy = e
			res.BestIteration = iter
			copy(res.BestSpins, cur)
		}
	}
	res.FinalSpins = ising.BinaryToSpins(s)
	return res, nil
}
