package arch

import (
	"math"
	"testing"

	"sophie/internal/sched"
	"sophie/internal/tiling"
)

func planFor(t *testing.T, nodes int, hw sched.Hardware, w Workload) *sched.Plan {
	t.Helper()
	grid, err := tiling.NewGrid(nodes, hw.TileSize)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sched.Generate(grid, hw, sched.Options{
		GlobalIters: w.GlobalIters, TileFraction: w.TileFraction, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestSimulatePlanMatchesAnalyticNonResident(t *testing.T) {
	// Capacity-limited G22-style setup: 64 PEs, 528 pairs.
	hw := sched.Hardware{Accelerators: 1, ChipletsPerAccel: 4, PEsPerChiplet: 16, TileSize: 64}
	d := Design{Hardware: hw, Params: DefaultParams()}
	w := Workload{Nodes: 2000, Batch: 100, LocalIters: 10, GlobalIters: 20, TileFraction: 0.74}
	plan := planFor(t, w.Nodes, hw, w)

	sim, err := SimulatePlan(d, plan, w)
	if err != nil {
		t.Fatal(err)
	}
	ana, err := Evaluate(d, w)
	if err != nil {
		t.Fatal(err)
	}
	ratio := sim.TimePerJobS / ana.TimePerJobS
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("discrete %.3g vs analytic %.3g per job (ratio %.2f)", sim.TimePerJobS, ana.TimePerJobS, ratio)
	}
}

func TestSimulatePlanResidentProgramsOnlyFirstIteration(t *testing.T) {
	hw := sched.DefaultHardware()
	d := Design{Hardware: hw, Params: DefaultParams()}
	w := Workload{Nodes: 512, Batch: 10, LocalIters: 10, GlobalIters: 5, TileFraction: 1}
	plan := planFor(t, w.Nodes, hw, w)
	if !plan.Resident {
		t.Fatal("setup should be resident")
	}
	sim, err := SimulatePlan(d, plan, w)
	if err != nil {
		t.Fatal(err)
	}
	// Only the first iteration's single round programs.
	programs := 0
	for _, tr := range sim.Trace {
		programs += tr.Programs
	}
	if programs != plan.Grid.PairCount() {
		t.Fatalf("resident sim programmed %d arrays, want %d once", programs, plan.Grid.PairCount())
	}
	// Later rounds must be compute- or sync-bound, never program-bound.
	for i, tr := range sim.Trace[1:] {
		if tr.Bound == "program" {
			t.Fatalf("round %d program-bound in resident plan", i+1)
		}
	}
}

func TestSimulatePlanTraceConsistency(t *testing.T) {
	hw := sched.Hardware{Accelerators: 1, ChipletsPerAccel: 1, PEsPerChiplet: 4, TileSize: 16}
	d := Design{Hardware: hw, Params: DefaultParams()}
	w := Workload{Nodes: 128, Batch: 5, LocalIters: 3, GlobalIters: 4, TileFraction: 1}
	plan := planFor(t, w.Nodes, hw, w)
	sim, err := SimulatePlan(d, plan, w)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Rounds == 0 || len(sim.Trace) == 0 {
		t.Fatal("empty simulation")
	}
	prevEnd := 0.0
	for i, tr := range sim.Trace {
		if tr.EndS <= tr.StartS {
			t.Fatalf("round %d has non-positive duration", i)
		}
		if tr.StartS < prevEnd-1e-15 {
			t.Fatalf("round %d overlaps previous end", i)
		}
		prevEnd = tr.EndS
		if tr.Pairs <= 0 || tr.Pairs > hw.TotalPEs() {
			t.Fatalf("round %d pair count %d out of range", i, tr.Pairs)
		}
	}
	if sim.TotalTimeS < prevEnd {
		t.Fatal("total time shorter than last traced round")
	}
	if math.Abs(sim.TimePerJobS*float64(w.Batch)-sim.TotalTimeS) > 1e-12 {
		t.Fatal("per-job time inconsistent")
	}
}

func TestSimulatePlanValidation(t *testing.T) {
	hw := sched.DefaultHardware()
	d := Design{Hardware: hw, Params: DefaultParams()}
	w := Workload{Nodes: 512, Batch: 10, LocalIters: 10, GlobalIters: 5, TileFraction: 1}
	plan := planFor(t, w.Nodes, hw, w)

	// Iteration-count mismatch.
	bad := w
	bad.GlobalIters = 7
	if _, err := SimulatePlan(d, plan, bad); err == nil {
		t.Fatal("iteration mismatch must be rejected")
	}
	// Hardware mismatch.
	d2 := d
	d2.Hardware.PEsPerChiplet = 32
	if _, err := SimulatePlan(d2, plan, w); err == nil {
		t.Fatal("hardware mismatch must be rejected")
	}
}

func TestSimulatePlanCrossAccelAddsTime(t *testing.T) {
	w := Workload{Nodes: 2000, Batch: 100, LocalIters: 10, GlobalIters: 10, TileFraction: 1}
	hw1 := sched.Hardware{Accelerators: 1, ChipletsPerAccel: 4, PEsPerChiplet: 16, TileSize: 64}
	hw2 := hw1
	hw2.Accelerators = 2
	plan1 := planFor(t, w.Nodes, hw1, w)
	plan2 := planFor(t, w.Nodes, hw2, w)
	s1, err := SimulatePlan(Design{Hardware: hw1, Params: DefaultParams()}, plan1, w)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SimulatePlan(Design{Hardware: hw2, Params: DefaultParams()}, plan2, w)
	if err != nil {
		t.Fatal(err)
	}
	if s2.CrossAccelS == 0 {
		t.Fatal("multi-accelerator sim must account for bus synchronization")
	}
	if s1.CrossAccelS != 0 {
		t.Fatal("single accelerator must not pay bus synchronization")
	}
	// Two accelerators still help overall on this non-resident setup.
	if s2.TotalTimeS >= s1.TotalTimeS {
		t.Fatalf("2 accelerators slower: %.3g vs %.3g", s2.TotalTimeS, s1.TotalTimeS)
	}
}
