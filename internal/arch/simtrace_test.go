package arch

import (
	"math"
	"testing"
	"testing/quick"

	"sophie/internal/core"
	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/sched"
	"sophie/internal/tiling"
	"sophie/internal/trace"
)

// recordSolve runs one functional solve with a control-kind recorder
// attached and returns the captured recording.
func recordSolve(t *testing.T, nodes, globalIters int, frac float64, seed int64) trace.Recording {
	t.Helper()
	g, err := graph.Random(nodes, 5*nodes, graph.WeightUnit, 977)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.SkipTransform = true
	cfg.GlobalIters = globalIters
	cfg.TileFraction = frac
	cfg.Seed = seed
	rec := trace.NewRecorder(trace.Options{Capacity: 1 << 17})
	cfg.Tracer = rec
	if _, err := core.Solve(ising.FromMaxCut(g), cfg); err != nil {
		t.Fatal(err)
	}
	return rec.Snapshot()
}

// On a uniform resident workload (every pair selected every iteration,
// one round per iteration) the replayed stream walks exactly the
// schedule Evaluate prices analytically, so the two must agree closely
// — the acceptance bound is 1%.
func TestSimulateTraceAgreesWithEvaluate(t *testing.T) {
	const nodes, globalIters = 800, 12
	snap := recordSolve(t, nodes, globalIters, 1.0, 41)
	d := DefaultDesign()
	sim, err := SimulateTrace(d, snap)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(d, Workload{
		Nodes: nodes, Batch: 1, LocalIters: snap.Meta.LocalIters,
		GlobalIters: globalIters, TileFraction: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Schedule.Resident {
		t.Fatalf("test premise broken: workload not resident on %d PEs", d.Hardware.TotalPEs())
	}
	diff := math.Abs(sim.TotalTimeS-rep.TimeTotalS) / rep.TimeTotalS
	if diff > 0.01 {
		t.Fatalf("trace-driven total %.6g s vs analytic %.6g s: %.2f%% apart, want <= 1%%",
			sim.TotalTimeS, rep.TimeTotalS, 100*diff)
	}
	if sim.Rounds != globalIters {
		t.Fatalf("replayed %d rounds, want %d (one per iteration when resident)", sim.Rounds, globalIters)
	}
	for _, rt := range sim.Trace {
		if rt.Programs != 0 {
			t.Fatalf("resident replay reprogrammed %d arrays in a round", rt.Programs)
		}
	}
}

// Stochastic selection visits fewer pairs per iteration; the replayed
// timing must price the actual visits, never more than the uniform run.
func TestSimulateTraceStochasticCheaperThanUniform(t *testing.T) {
	const nodes, globalIters = 800, 10
	d := DefaultDesign()
	full, err := SimulateTrace(d, recordSolve(t, nodes, globalIters, 1.0, 7))
	if err != nil {
		t.Fatal(err)
	}
	part, err := SimulateTrace(d, recordSolve(t, nodes, globalIters, 0.5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if part.SyncBusyS >= full.SyncBusyS {
		t.Fatalf("half selection sync busy %.3g s >= full selection %.3g s", part.SyncBusyS, full.SyncBusyS)
	}
	if part.TotalTimeS > full.TotalTimeS {
		t.Fatalf("half selection total %.3g s > full selection %.3g s", part.TotalTimeS, full.TotalTimeS)
	}
}

func TestSimulateTraceValidation(t *testing.T) {
	snap := recordSolve(t, 256, 3, 1.0, 5)
	d := DefaultDesign()

	bad := snap
	bad.Runs = 0
	if _, err := SimulateTrace(d, bad); err == nil {
		t.Fatal("accepted a recording holding no runs")
	}

	// Multi-run recordings (the tempering portfolio) replay as-ordered;
	// the per-job time amortizes over the run count.
	multi := snap
	multi.Runs = 2
	single, err := SimulateTrace(d, snap)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulateTrace(d, multi)
	if err != nil {
		t.Fatalf("rejected a two-run recording: %v", err)
	}
	if rep.TotalTimeS != single.TotalTimeS {
		t.Fatalf("run count changed the total: %v vs %v", rep.TotalTimeS, single.TotalTimeS)
	}
	if want := rep.TotalTimeS / 2; rep.TimePerJobS != want {
		t.Fatalf("TimePerJobS = %v, want TotalTimeS/2 = %v", rep.TimePerJobS, want)
	}

	bad = snap
	bad.Dropped = 1
	if _, err := SimulateTrace(d, bad); err == nil {
		t.Fatal("accepted a recording with dropped events")
	}

	mism := d
	mism.Hardware.TileSize = 128
	if _, err := SimulateTrace(mism, snap); err == nil {
		t.Fatal("accepted a tile-size mismatch")
	}

	empty := snap
	empty.Events = nil
	if _, err := SimulateTrace(d, empty); err == nil {
		t.Fatal("accepted a recording without local-batch events")
	}
}

// Property (satellite): SimulatePlan's reported total is exactly the
// fill plus the sum of its per-round spans plus the cross-accelerator
// reconciliation time, for any design whose schedule fits the retained
// trace — the walk and its trace never drift apart.
func TestSimulatePlanTotalsMatchTraceProperty(t *testing.T) {
	f := func(accelRaw, pesRaw, fracRaw, itersRaw uint8) bool {
		hw := sched.DefaultHardware()
		hw.Accelerators = 1 + int(accelRaw)%3
		hw.PEsPerChiplet = 4 + int(pesRaw)%16
		frac := 0.3 + float64(fracRaw%70)/100
		iters := 2 + int(itersRaw)%6
		d := Design{Hardware: hw, Params: DefaultParams()}

		grid, err := tiling.NewGrid(1500, hw.TileSize)
		if err != nil {
			return false
		}
		plan, err := sched.Generate(grid, hw, sched.Options{
			GlobalIters: iters, TileFraction: frac, Seed: 23,
		})
		if err != nil {
			return false
		}
		w := Workload{Nodes: 1500, Batch: 4, LocalIters: 10, GlobalIters: iters, TileFraction: frac}
		sim, err := SimulatePlan(d, plan, w)
		if err != nil {
			return false
		}
		if sim.Rounds != len(sim.Trace) {
			// The property only holds when every round was retained.
			return sim.Rounds > maxTraceRounds
		}
		sum := d.Params.ProgramTimeS
		for _, rt := range sim.Trace {
			sum += rt.EndS - rt.StartS
		}
		sum += sim.CrossAccelS
		return math.Abs(sum-sim.TotalTimeS) <= 1e-9*math.Max(1, sim.TotalTimeS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
