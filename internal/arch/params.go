// Package arch models SOPHIE's power, performance, and area (Section
// IV-A, IV-C): the 2.5D accelerator built from OPCM chiplets, a DRAM
// chiplet, a controller chiplet, and laser sources on an interposer. It
// combines the scheduling statistics from internal/sched with the
// technology constants the paper reports to estimate run time, energy,
// area, and the energy-delay-area product (EDAP) used to pick the tile
// and batch sizes.
//
// Modeling choices (documented in DESIGN.md): glue computation is
// overlapped with compute and excluded from the critical path, exactly
// as the paper argues ("the controller chiplet is not on the critical
// path"); OPCM programming and DMA overlap the previous round's compute
// and synchronization, so each round's latency is the max of its
// overlapped components.
package arch

import (
	"fmt"

	"sophie/internal/opcm"
)

// Params collects the technology constants of Section IV-A.
type Params struct {
	// ClockHz is the accelerator clock (5 GHz in GF22FDX).
	ClockHz float64
	// SRAMClockHz is the SRAM bank clock (1 GHz, interleaved to keep up).
	SRAMClockHz float64
	// ADC1bCycles / ADC8bCycles are the accelerator cycles one local
	// iteration spends per MVM in 1-bit thresholding mode vs the 8-bit
	// readout mode of the dual-precision ADC.
	ADC1bCycles int
	ADC8bCycles int
	// EOEnergyPerBitJ is the electro-optical modulation cost (1 pJ/bit).
	EOEnergyPerBitJ float64
	// OEPowerW is one O-E converter chain (PD + ADC) at 5 GS/s (29 mW).
	OEPowerW float64
	// ADCSampleRateHz converts OEPowerW into per-sample energy.
	ADCSampleRateHz float64
	// DRAMEnergyPerBitJ is DRAM access energy (20 pJ/bit).
	DRAMEnergyPerBitJ float64
	// DRAMLatencyLocalS / DRAMLatencyCrossS are same- and
	// cross-interposer access latencies (40/80 ns).
	DRAMLatencyLocalS float64
	DRAMLatencyCrossS float64
	// DRAMBandwidthBps is the DRAM chiplet's streaming bandwidth per
	// accelerator; tile staging and spilled buffer traffic pay it.
	DRAMBandwidthBps float64
	// BusBandwidthBps is the 16-lane CXL system bus (64 GB/s).
	BusBandwidthBps float64
	// BusEnergyPerBitJ prices cross-interposer synchronization traffic.
	BusEnergyPerBitJ float64
	// InterposerBandwidthBps is the aggregate on-interposer link
	// bandwidth per accelerator. The paper integrates the chiplets on a
	// wafer-scale photonic communication substrate (Passage [31]); we
	// default to 8 TB/s aggregate, the scale such substrates provide.
	InterposerBandwidthBps float64
	// ProgramTimeS is the time to program one OPCM array (400 ns).
	ProgramTimeS float64
	// ProgramEnergyPerCellJ is the electrical switching energy per GST
	// cell, the average of amorphize (5.55 nJ) and crystallize
	// (860.71 nJ).
	ProgramEnergyPerCellJ float64
	// ControlPowerW / ControlAreaMM2 are the synthesized control logic
	// (26 mW, 11,536 µm²).
	ControlPowerW  float64
	ControlAreaMM2 float64
	// SRAM is characterized at the memory-compiler calibration point:
	// 7.6 MB occupying 11.5 mm² and burning 540 mW; other capacities
	// scale linearly.
	SRAMBytesRef   float64
	SRAMAreaRefMM2 float64
	SRAMPowerRefW  float64
	// SRAMBudgetBytesPerAccel caps the buffer SRAM built per
	// accelerator; batches whose working set exceeds it spill the excess
	// job state to DRAM every round ("increasing the number of jobs per
	// batch ... will require more SRAM buffers", Section IV-C).
	SRAMBudgetBytesPerAccel float64
	// CellAreaMM2 is one GST cell footprint (30×30 µm²).
	CellAreaMM2 float64
	// MRRRadiusMM is the micro-ring modulator radius (20 µm diameter).
	MRRRadiusMM float64
	// ChipletOverheadFactor covers waveguide routing and spacing so the
	// default configuration reproduces the 486 mm² OPCM chiplet.
	ChipletOverheadFactor float64
	// Fixed chiplet areas for the non-OPCM components of an accelerator.
	DRAMChipletAreaMM2    float64
	LaserChipletAreaMM2   float64
	ControllerChipAreaMM2 float64
	// CellBits is the stored precision per GST cell (6 bits).
	CellBits int
	// PE holds the per-stage PE pipeline latencies (see pe.go).
	PE PELatencies
	// Optics is the crossbar loss budget and laser calibration.
	Optics opcm.OpticalParams
}

// DefaultParams returns the constants of Section IV-A.
func DefaultParams() Params {
	return Params{
		ClockHz:                 5e9,
		SRAMClockHz:             1e9,
		ADC1bCycles:             1,
		ADC8bCycles:             8,
		EOEnergyPerBitJ:         1e-12,
		OEPowerW:                29e-3,
		ADCSampleRateHz:         5e9,
		DRAMEnergyPerBitJ:       20e-12,
		DRAMLatencyLocalS:       40e-9,
		DRAMLatencyCrossS:       80e-9,
		DRAMBandwidthBps:        1e12,
		BusBandwidthBps:         64e9,
		BusEnergyPerBitJ:        10e-12,
		InterposerBandwidthBps:  8e12,
		ProgramTimeS:            400e-9,
		ProgramEnergyPerCellJ:   (5.55e-9 + 860.71e-9) / 2,
		ControlPowerW:           26e-3,
		ControlAreaMM2:          11536e-6,
		SRAMBytesRef:            7.6 * 1024 * 1024,
		SRAMAreaRefMM2:          11.5,
		SRAMPowerRefW:           0.540,
		SRAMBudgetBytesPerAccel: 8 * 1024 * 1024,
		CellAreaMM2:             30e-3 * 30e-3,
		MRRRadiusMM:             10e-3,
		ChipletOverheadFactor:   1.02,
		DRAMChipletAreaMM2:      100,
		LaserChipletAreaMM2:     50,
		ControllerChipAreaMM2:   10,
		CellBits:                6,
		PE:                      DefaultPELatencies(),
		Optics:                  opcm.DefaultOpticalParams(),
	}
}

func (p Params) validate() error {
	if p.ClockHz <= 0 || p.SRAMClockHz <= 0 || p.ADCSampleRateHz <= 0 {
		return fmt.Errorf("arch: clock rates must be positive")
	}
	if p.ADC1bCycles <= 0 || p.ADC8bCycles <= 0 {
		return fmt.Errorf("arch: ADC cycle counts must be positive")
	}
	if p.InterposerBandwidthBps <= 0 || p.BusBandwidthBps <= 0 || p.DRAMBandwidthBps <= 0 {
		return fmt.Errorf("arch: bandwidths must be positive")
	}
	if p.ProgramTimeS < 0 || p.ProgramEnergyPerCellJ < 0 {
		return fmt.Errorf("arch: programming costs must be nonnegative")
	}
	if p.SRAMBytesRef <= 0 || p.SRAMAreaRefMM2 <= 0 || p.SRAMPowerRefW <= 0 {
		return fmt.Errorf("arch: SRAM calibration point must be positive")
	}
	if p.SRAMBudgetBytesPerAccel <= 0 {
		return fmt.Errorf("arch: SRAM budget must be positive")
	}
	if p.ChipletOverheadFactor < 1 {
		return fmt.Errorf("arch: chiplet overhead factor %v below 1", p.ChipletOverheadFactor)
	}
	if p.CellBits < 1 {
		return fmt.Errorf("arch: cell bits must be positive")
	}
	if p.PE.SRAMAccessCycles < 0 || p.PE.EOCycles < 0 || p.PE.OpticalCycles < 0 || p.PE.AnalogCycles < 0 {
		return fmt.Errorf("arch: negative PE stage latency")
	}
	return nil
}
