package arch

import "testing"

func TestPEComputeCyclesThroughputBound(t *testing.T) {
	l := DefaultPELatencies()
	// Batch 100, 10 local iterations, off-diagonal: the old closed form
	// B·2·((L-1)·1 + 8) plus the pipeline fill.
	got := l.ComputeCycles(100, 10, false, 1, 8)
	want := 100*(2*9*1+2*8) + l.iterationLatency(1)
	if got != want {
		t.Fatalf("cycles %d, want %d", got, want)
	}
}

func TestPEComputeCyclesLatencyBound(t *testing.T) {
	l := DefaultPELatencies()
	// A single job cannot fill the pipeline: the dependent chain bounds.
	got := l.ComputeCycles(1, 10, false, 1, 8)
	chain := 2*9*l.iterationLatency(1) + 2*l.iterationLatency(8)
	want := chain + l.iterationLatency(1)
	if got != want {
		t.Fatalf("cycles %d, want %d (chain-bound)", got, want)
	}
	busyOnly := 1 * (2*9*1 + 2*8)
	if got <= busyOnly {
		t.Fatal("single-job run must cost more than the throughput bound")
	}
}

func TestPEComputeCyclesDiagonalHalves(t *testing.T) {
	l := DefaultPELatencies()
	off := l.ComputeCycles(100, 10, false, 1, 8)
	diag := l.ComputeCycles(100, 10, true, 1, 8)
	// Diagonal pairs run one MVM per iteration instead of two.
	if diag >= off {
		t.Fatalf("diagonal %d not cheaper than off-diagonal %d", diag, off)
	}
}

func TestPEComputeCyclesDegenerate(t *testing.T) {
	l := DefaultPELatencies()
	if l.ComputeCycles(0, 10, false, 1, 8) != 0 {
		t.Fatal("zero batch must cost nothing")
	}
	if l.ComputeCycles(10, 0, false, 1, 8) != 0 {
		t.Fatal("zero iterations must cost nothing")
	}
}

func TestPEBatchMonotonicity(t *testing.T) {
	l := DefaultPELatencies()
	prevPerJob := 1e18
	for _, b := range []int{1, 2, 10, 50, 100} {
		cycles := l.ComputeCycles(b, 10, false, 1, 8)
		perJob := float64(cycles) / float64(b)
		if perJob > prevPerJob+1e-9 {
			t.Fatalf("per-job cycles increased at batch %d: %v -> %v", b, prevPerJob, perJob)
		}
		prevPerJob = perJob
	}
}
