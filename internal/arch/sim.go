package arch

import (
	"fmt"
	"math"

	"sophie/internal/sched"
)

// SimulatePlan is the discrete counterpart of Evaluate's analytic
// timing: it walks a concrete statically generated schedule round by
// round, using each round's exact pair occupancy and reprogramming set
// instead of per-iteration averages. The same overlap model applies —
// a round's compute, its synchronization, and the next round's
// programming/DMA pipeline against each other, so the slowest component
// bounds each round. Use it to validate the analytic model and to
// inspect per-round behavior (RoundTrace).
func SimulatePlan(d Design, plan *sched.Plan, w Workload) (*SimReport, error) {
	if err := d.Params.validate(); err != nil {
		return nil, err
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	if plan.Hardware != d.Hardware {
		return nil, fmt.Errorf("arch: plan was generated for %+v, design has %+v", plan.Hardware, d.Hardware)
	}
	if len(plan.Iterations) != w.GlobalIters {
		return nil, fmt.Errorf("arch: plan has %d iterations, workload expects %d", len(plan.Iterations), w.GlobalIters)
	}
	p := d.Params
	hw := d.Hardware
	t := hw.TileSize
	accels := float64(hw.Accelerators)

	computePerRound := float64(p.PE.ComputeCycles(w.Batch, w.LocalIters, false, p.ADC1bCycles, p.ADC8bCycles)) / p.ClockHz

	crossPerIter := 0.0
	if hw.Accelerators > 1 {
		grid := plan.Grid
		crossBytes := 2 * float64(w.Batch) * float64(grid.PaddedN()) / 8 * (accels - 1) / accels
		crossPerIter = crossBytes/p.BusBandwidthBps + p.DRAMLatencyCrossS
	}

	rep := &SimReport{}
	now := p.ProgramTimeS // initial fill: first programming wave
	for _, it := range plan.Iterations {
		for _, round := range it.Rounds {
			pairs := float64(len(round.Pairs))
			programs := 0
			for _, re := range round.Reprogram {
				if re {
					programs++
				}
			}
			syncBytes := pairs * syncBytesPerPairPerJob(t) * float64(w.Batch)
			syncTime := syncBytes/(p.InterposerBandwidthBps*accels) + p.DRAMLatencyLocalS
			programTime := 0.0
			if programs > 0 {
				dma := float64(programs) * tileBytes(t, p.CellBits) / (p.DRAMBandwidthBps * accels)
				programTime = math.Max(p.ProgramTimeS, dma)
			}
			roundTime := math.Max(computePerRound, math.Max(syncTime, programTime))
			bound := "compute"
			//sophielint:ignore floateq roundTime is the max of exactly these values, so identity attribution is exact
			if roundTime == syncTime {
				bound = "sync"
				//sophielint:ignore floateq roundTime is the max of exactly these values, so identity attribution is exact
			} else if roundTime == programTime {
				bound = "program"
			}
			rep.ComputeBusyS += computePerRound
			rep.SyncBusyS += syncTime
			rep.ProgramBusyS += programTime
			if len(rep.Trace) < maxTraceRounds {
				rep.Trace = append(rep.Trace, RoundTrace{
					StartS: now, EndS: now + roundTime,
					Pairs: len(round.Pairs), Programs: programs, Bound: bound,
				})
			}
			now += roundTime
			rep.Rounds++
		}
		now += crossPerIter
		rep.CrossAccelS += crossPerIter
	}
	rep.TotalTimeS = now
	rep.TimePerJobS = now / float64(w.Batch)
	return rep, nil
}

// maxTraceRounds bounds the per-round trace retained by SimulatePlan.
const maxTraceRounds = 256

// SimReport is the output of the discrete schedule walk.
type SimReport struct {
	// TotalTimeS is the end-to-end batch latency; TimePerJobS amortizes
	// it over the batch.
	TotalTimeS  float64
	TimePerJobS float64
	// Rounds counts executed hardware rounds.
	Rounds int
	// Busy times accumulate each component's demand across rounds (they
	// overlap, so their sum exceeds TotalTimeS).
	ComputeBusyS, SyncBusyS, ProgramBusyS, CrossAccelS float64
	// Trace holds the first rounds' timing for inspection.
	Trace []RoundTrace
}

// RoundTrace records one hardware round.
type RoundTrace struct {
	StartS, EndS float64
	Pairs        int
	Programs     int
	Bound        string
}
