package arch

import (
	"testing"
	"testing/quick"
)

// Property: Evaluate's total time is monotone non-decreasing in every
// workload dimension (iterations, nodes, batch in total terms) and EDAP
// stays positive across the design space.
func TestEvaluateMonotoneProperty(t *testing.T) {
	d := DefaultDesign()
	f := func(gRaw, lRaw uint8) bool {
		g := 1 + int(gRaw)%100
		l := 1 + int(lRaw)%50
		w1 := Workload{Nodes: 4096, Batch: 100, LocalIters: l, GlobalIters: g, TileFraction: 0.74}
		w2 := w1
		w2.GlobalIters = g + 10
		r1, err := Evaluate(d, w1)
		if err != nil {
			return false
		}
		r2, err := Evaluate(d, w2)
		if err != nil {
			return false
		}
		return r2.TimeTotalS >= r1.TimeTotalS && r1.EDAP > 0 && r2.EDAP > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: more nodes never cost less time on fixed hardware.
func TestEvaluateNodesMonotoneProperty(t *testing.T) {
	d := DefaultDesign()
	prev := 0.0
	for _, n := range []int{512, 1024, 2048, 4096, 8192, 16384, 32768} {
		r, err := Evaluate(d, Workload{Nodes: n, Batch: 100, LocalIters: 10, GlobalIters: 20, TileFraction: 0.74})
		if err != nil {
			t.Fatal(err)
		}
		if r.TimeTotalS < prev {
			t.Fatalf("time decreased at n=%d: %v -> %v", n, prev, r.TimeTotalS)
		}
		prev = r.TimeTotalS
	}
}

// Property: SRAMBytes scales linearly in batch and PE count.
func TestSRAMBytesLinearityProperty(t *testing.T) {
	hw := DefaultDesign().Hardware
	f := func(bRaw uint8) bool {
		b := 1 + int(bRaw)%500
		one := SRAMBytes(hw, b)
		two := SRAMBytes(hw, 2*b)
		// Doubling the batch doubles the per-job buffers but not the
		// fixed tile staging: one < two < 2*one.
		return two > one && two < 2*one+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
