package arch

import (
	"fmt"
	"math"

	"sophie/internal/sched"
	"sophie/internal/tiling"
)

// Workload describes one batched SOPHIE execution for the analytic
// model: the algorithm configuration and how many jobs share the
// programmed arrays.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Nodes is the Ising problem order.
	Nodes int
	// Batch is the number of jobs time-multiplexed over one programming
	// of the arrays (Section III-E).
	Batch int
	// LocalIters / GlobalIters are the algorithm iteration counts; for
	// time-to-solution numbers pass the measured iterations from the
	// functional simulator.
	LocalIters  int
	GlobalIters int
	// TileFraction is the stochastic tile computation fraction.
	TileFraction float64
}

func (w Workload) validate() error {
	if w.Nodes <= 0 {
		return fmt.Errorf("arch: workload nodes must be positive, got %d", w.Nodes)
	}
	if w.Batch <= 0 {
		return fmt.Errorf("arch: batch must be positive, got %d", w.Batch)
	}
	if w.LocalIters <= 0 || w.GlobalIters <= 0 {
		return fmt.Errorf("arch: iteration counts must be positive")
	}
	if w.TileFraction <= 0 || w.TileFraction > 1 {
		return fmt.Errorf("arch: tile fraction %v outside (0,1]", w.TileFraction)
	}
	return nil
}

// Design pairs a hardware pool with its technology parameters.
type Design struct {
	Hardware sched.Hardware
	Params   Params
}

// DefaultDesign returns one accelerator with the paper's parameters.
func DefaultDesign() Design {
	return Design{Hardware: sched.DefaultHardware(), Params: DefaultParams()}
}

// TimeBreakdown decomposes the critical path.
type TimeBreakdown struct {
	FillS       float64 // initial programming + tile DMA before steady state
	ComputeS    float64 // local-iteration compute (per round, summed)
	SyncS       float64 // interposer synchronization traffic (summed)
	ProgramS    float64 // array programming + tile DMA (summed)
	CrossAccelS float64 // CXL bus broadcast between accelerators (summed)
	BoundBy     string  // which component bounds the steady-state round
}

// EnergyBreakdown decomposes total energy by component.
type EnergyBreakdown struct {
	LaserJ   float64
	EOJ      float64
	ADCJ     float64
	SRAMJ    float64
	DRAMJ    float64
	BusJ     float64
	ProgramJ float64
	ControlJ float64
	GlueJ    float64
}

// Total sums the components.
func (e EnergyBreakdown) Total() float64 {
	return e.LaserJ + e.EOJ + e.ADCJ + e.SRAMJ + e.DRAMJ + e.BusJ + e.ProgramJ + e.ControlJ + e.GlueJ
}

// AreaBreakdown decomposes accelerator area (per accelerator, mm²).
type AreaBreakdown struct {
	OPCMChipletsMM2 float64
	SRAMMM2         float64
	DRAMMM2         float64
	LaserMM2        float64
	ControllerMM2   float64
}

// Total sums the components.
func (a AreaBreakdown) Total() float64 {
	return a.OPCMChipletsMM2 + a.SRAMMM2 + a.DRAMMM2 + a.LaserMM2 + a.ControllerMM2
}

// Report is the full PPA evaluation of a workload on a design.
type Report struct {
	Workload Workload
	Design   Design
	Schedule sched.Summary

	TimeTotalS  float64
	TimePerJobS float64
	Time        TimeBreakdown

	EnergyTotalJ  float64
	EnergyPerJobJ float64
	Energy        EnergyBreakdown

	AreaMM2 float64 // all accelerators
	Area    AreaBreakdown

	AvgPowerW float64
	// EDAP is EnergyPerJob × TimePerJob × Area (J·s·mm²), the paper's
	// configuration-selection metric (Fig. 9).
	EDAP float64
}

// syncBytesPerPairPerJob is the global-synchronization payload of one
// tile pair for one job: two 8-bit partial-sum vectors out, two 1-bit
// spin copies out, two 8-bit offset vectors in, two 1-bit spin blocks in.
func syncBytesPerPairPerJob(t int) float64 {
	return float64(2*t) /*partials out*/ + float64(2*t)/8 /*spins out*/ +
		float64(2*t) /*offsets in*/ + float64(2*t)/8 /*spins in*/
}

// tileBytes is the DMA payload to stage one tile pair for programming.
func tileBytes(t, cellBits int) float64 {
	return float64(t*t) * float64(cellBits) / 8
}

// Evaluate runs the analytic PPA model for a workload on a design.
func Evaluate(d Design, w Workload) (*Report, error) {
	if err := d.Params.validate(); err != nil {
		return nil, err
	}
	if err := d.Hardware.Validate(); err != nil {
		return nil, err
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	grid, err := tiling.NewGrid(w.Nodes, d.Hardware.TileSize)
	if err != nil {
		return nil, err
	}
	sum, err := sched.Summarize(grid, d.Hardware, sched.Options{
		GlobalIters: w.GlobalIters, TileFraction: w.TileFraction,
	})
	if err != nil {
		return nil, err
	}
	p := d.Params
	hw := d.Hardware
	t := hw.TileSize
	totalPEs := hw.TotalPEs()
	accels := hw.Accelerators

	// ---- Timing ----------------------------------------------------
	// Per-round compute through the PE pipeline model (pe.go): each PE
	// time-duplexes the two tiles of its pair; every job runs
	// LocalIters-1 iterations in 1-bit mode and one in 8-bit mode
	// (Section III-C). Large batches are ADC-throughput bound, small
	// ones pay the recurrence latency.
	computeCycles := float64(p.PE.ComputeCycles(w.Batch, w.LocalIters, false, p.ADC1bCycles, p.ADC8bCycles))
	computePerRound := computeCycles / p.ClockHz

	// Per-round synchronization traffic over the interposer links,
	// bandwidth shared per accelerator.
	pairsPerRound := float64(sum.SelectedPairs) / float64(sum.RoundsPerIter)
	syncBytesPerRound := pairsPerRound * syncBytesPerPairPerJob(t) * float64(w.Batch)

	// SRAM spill: when the batch's buffer working set exceeds the built
	// SRAM, the overflow fraction of job state round-trips to DRAM every
	// round (Section IV-C's batch-size downside).
	sramNeeded := SRAMBytes(hw, w.Batch)
	sramBudget := p.SRAMBudgetBytesPerAccel * float64(accels)
	spillFrac := 0.0
	if sramNeeded > sramBudget {
		spillFrac = 1 - sramBudget/sramNeeded
	}
	spillBytesPerRound := spillFrac * pairsPerRound * perJobBufferBytes(t) * float64(w.Batch) * 2 // out and back

	// Regular synchronization rides the interposer links between SRAM
	// buffers; spilled state streams through the DRAM chiplet at its
	// (much lower) bandwidth.
	syncPerRound := syncBytesPerRound/(p.InterposerBandwidthBps*float64(accels)) +
		spillBytesPerRound/(p.DRAMBandwidthBps*float64(accels)) +
		p.DRAMLatencyLocalS

	// Per-round reprogramming: array write time plus the tile DMA,
	// overlapped with the previous round (nothing to overlap into when
	// the plan is resident — arrays are programmed once, in the fill).
	programPerRound := 0.0
	if !sum.Resident {
		dma := pairsPerRound * tileBytes(t, p.CellBits) / (p.DRAMBandwidthBps * float64(accels))
		programPerRound = math.Max(p.ProgramTimeS, dma)
	}

	// Steady-state round latency: components overlap (Section III-E),
	// the slowest one bounds the pipeline.
	roundTime := math.Max(computePerRound, math.Max(syncPerRound, programPerRound))
	boundBy := "compute"
	switch roundTime {
	case syncPerRound:
		boundBy = "sync"
	case programPerRound:
		boundBy = "program"
	}

	// Cross-accelerator reconciliation once per global iteration: the
	// reconciled spin vectors broadcast over the CXL bus.
	crossPerIter := 0.0
	if accels > 1 {
		crossBytes := 2 * float64(w.Batch) * float64(grid.PaddedN()) / 8 *
			float64(accels-1) / float64(accels)
		crossPerIter = crossBytes/p.BusBandwidthBps + p.DRAMLatencyCrossS
	}

	perIter := float64(sum.RoundsPerIter)*roundTime + crossPerIter
	fill := p.ProgramTimeS + float64(totalPEs)*tileBytes(t, p.CellBits)/(p.DRAMBandwidthBps*float64(accels))
	totalTime := fill + float64(w.GlobalIters)*perIter

	tb := TimeBreakdown{
		FillS:       fill,
		ComputeS:    float64(w.GlobalIters) * float64(sum.RoundsPerIter) * computePerRound,
		SyncS:       float64(w.GlobalIters) * float64(sum.RoundsPerIter) * syncPerRound,
		ProgramS:    float64(w.GlobalIters) * float64(sum.RoundsPerIter) * programPerRound,
		CrossAccelS: float64(w.GlobalIters) * crossPerIter,
		BoundBy:     boundBy,
	}

	// ---- Energy ----------------------------------------------------
	var eb EnergyBreakdown
	jobs := float64(w.Batch)
	selPerIter := float64(sum.SelectedPairs)
	iters := float64(w.GlobalIters)

	// Laser: each active PE draws per-wavelength power × t wavelengths
	// while its MVMs run.
	perWl, err := p.Optics.LaserPowerPerWavelengthW(t)
	if err != nil {
		return nil, err
	}
	peBusySeconds := iters * selPerIter * computePerRound // one pair occupies one PE for computePerRound
	eb.LaserJ = perWl * float64(t) * peBusySeconds

	// E-O modulation: every local iteration streams the two tile input
	// vectors (t bits each) per job.
	eoBits := iters * selPerIter * jobs * 2 * float64(w.LocalIters) * float64(t)
	eb.EOJ = eoBits * p.EOEnergyPerBitJ

	// O-E conversion: per-sample energy from converter power and rate;
	// an 8-bit conversion spends ADC8bCycles samples worth of time.
	samplePJ := p.OEPowerW / p.ADCSampleRateHz
	adc1bSamples := iters * selPerIter * jobs * 2 * float64(w.LocalIters-1) * float64(t)
	adc8bSamples := iters * selPerIter * jobs * 2 * float64(t) * float64(p.ADC8bCycles)
	eb.ADCJ = (adc1bSamples + adc8bSamples) * samplePJ

	// SRAM static + dynamic, scaled from the calibration point; the
	// built capacity is capped at the budget (overflow spills to DRAM).
	sramBuilt := math.Min(sramNeeded, sramBudget)
	sramPower := p.SRAMPowerRefW * sramBuilt / p.SRAMBytesRef
	eb.SRAMJ = sramPower * totalTime

	// DRAM: synchronization traffic, spill traffic, and tile staging.
	dramBits := iters*selPerIter*jobs*syncBytesPerPairPerJob(t)*8 +
		iters*float64(sum.RoundsPerIter)*spillBytesPerRound*8 +
		sum.ProgramsTotal*tileBytes(t, p.CellBits)*8
	eb.DRAMJ = dramBits * p.DRAMEnergyPerBitJ

	// Cross-accelerator bus traffic.
	if accels > 1 {
		crossBits := iters * 2 * jobs * float64(grid.PaddedN()) * float64(accels-1) / float64(accels)
		eb.BusJ = crossBits * p.BusEnergyPerBitJ
	}

	// OPCM programming: dominant for time-duplexed large graphs.
	eb.ProgramJ = sum.ProgramsTotal * float64(2*t*t) * p.ProgramEnergyPerCellJ

	// Controller and glue: the controller runs continuously; glue adds
	// are priced at the SRAM energy scale (they execute in the
	// controller's vector units; cheap next to everything else).
	eb.ControlJ = p.ControlPowerW * float64(accels) * totalTime
	glueOps := iters * selPerIter * jobs * 2 * float64(t) // delta-update adds
	eb.GlueJ = glueOps * 1e-13                            // ~0.1 pJ per 8-bit add in 22 nm

	// ---- Area ------------------------------------------------------
	area := areaPerAccelerator(p, hw, w.Batch)
	totalArea := area.Total() * float64(accels)

	rep := &Report{
		Workload:      w,
		Design:        d,
		Schedule:      sum,
		TimeTotalS:    totalTime,
		TimePerJobS:   totalTime / jobs,
		Time:          tb,
		EnergyTotalJ:  eb.Total(),
		EnergyPerJobJ: eb.Total() / jobs,
		Energy:        eb,
		AreaMM2:       totalArea,
		Area:          area,
		AvgPowerW:     eb.Total() / totalTime,
	}
	rep.EDAP = rep.EnergyPerJobJ * rep.TimePerJobS * rep.AreaMM2
	return rep, nil
}

// perJobBufferBytes is the per-PE SRAM footprint of one batched job:
// two spin copies (t bits each), two offset vectors and two partial-sum
// vectors (8-bit × t).
func perJobBufferBytes(t int) float64 {
	tf := float64(t)
	return 2*tf/8 + 2*tf + 2*tf
}

// SRAMBytes estimates the SRAM buffer capacity one accelerator pool
// needs: per PE, the per-job buffers for every batched job plus a
// staging buffer for the next tile (t² cells at one byte).
func SRAMBytes(hw sched.Hardware, batch int) float64 {
	t := float64(hw.TileSize)
	perPE := float64(batch)*perJobBufferBytes(hw.TileSize) + t*t
	return float64(hw.TotalPEs()) * perPE
}

// areaPerAccelerator computes the component areas of one accelerator.
func areaPerAccelerator(p Params, hw sched.Hardware, batch int) AreaBreakdown {
	t := float64(hw.TileSize)
	// One PE: t×2t GST cells (positive and negative sub-arrays) plus
	// four rows of t micro-rings (E-O and O-E on both axes for the
	// bi-directional readout).
	cellArea := 2 * t * t * p.CellAreaMM2
	mrrArea := 4 * t * math.Pi * p.MRRRadiusMM * p.MRRRadiusMM
	peArea := (cellArea + mrrArea) * p.ChipletOverheadFactor
	opcmArea := peArea * float64(hw.PEsPerChiplet) * float64(hw.ChipletsPerAccel)

	sramPerAccel := math.Min(SRAMBytes(hw, batch)/float64(hw.Accelerators), p.SRAMBudgetBytesPerAccel)
	sramArea := p.SRAMAreaRefMM2 * sramPerAccel / p.SRAMBytesRef

	return AreaBreakdown{
		OPCMChipletsMM2: opcmArea,
		SRAMMM2:         sramArea,
		DRAMMM2:         p.DRAMChipletAreaMM2,
		LaserMM2:        p.LaserChipletAreaMM2,
		ControllerMM2:   p.ControllerChipAreaMM2 + p.ControlAreaMM2,
	}
}
