package arch

import (
	"fmt"
	"math"

	"sophie/internal/trace"
)

// SimulateTrace is the trace-driven sibling of SimulatePlan: instead of
// walking a statically generated schedule, it replays the event stream
// of one functional-simulator run (internal/trace) through the same
// timing model. Where Evaluate prices per-iteration averages and
// SimulatePlan prices a hypothetical static plan, SimulateTrace prices
// the pair visits the solver actually executed — so the timing reflects
// the run's real stochastic selections, early termination, and any
// workload skew. Rounds are formed by packing each iteration's
// local-batch events onto the design's PEs in event order, with the
// same overlap model: compute, synchronization, and (re)programming
// pipeline against each other and the slowest bounds the round.
//
// The recording must hold at least one complete run captured with the
// control kinds (trace.ControlKinds) and a ring large enough that no
// events were dropped. Multi-run recordings are priced as-ordered: the
// tempering portfolio runtime emits its rungs' events in lockstep (all
// rungs' iteration g precedes any rung's g+1), so its stream packs like
// one wide job and the timing is exact for that schedule; arbitrary
// concurrent-batch streams interleave nondeterministically and their
// replay prices the interleaving that happened to be recorded.
// TimePerJobS is TotalTimeS divided by the run count.
func SimulateTrace(d Design, rec trace.Recording) (*SimReport, error) {
	if err := d.Params.validate(); err != nil {
		return nil, err
	}
	if err := d.Hardware.Validate(); err != nil {
		return nil, err
	}
	m := rec.Meta
	if rec.Runs < 1 {
		return nil, fmt.Errorf("arch: recording holds no runs; trace-driven timing replays at least one")
	}
	if rec.Dropped > 0 {
		return nil, fmt.Errorf("arch: recording dropped %d events (ring too small for the run); raise trace.Options.Capacity", rec.Dropped)
	}
	if m.TileSize != d.Hardware.TileSize {
		return nil, fmt.Errorf("arch: recording tile size %d != design tile size %d", m.TileSize, d.Hardware.TileSize)
	}
	if m.LocalIters <= 0 || m.Pairs <= 0 {
		return nil, fmt.Errorf("arch: recording carries no run geometry (meta %+v)", m)
	}

	p := d.Params
	hw := d.Hardware
	t := hw.TileSize
	totalPEs := hw.TotalPEs()
	accels := float64(hw.Accelerators)

	// One recording is one job's stream: batch of 1 through the PE
	// pipeline model, same as Evaluate/SimulatePlan with Batch=1.
	computePerRound := float64(p.PE.ComputeCycles(1, m.LocalIters, false, p.ADC1bCycles, p.ADC8bCycles)) / p.ClockHz

	crossPerIter := 0.0
	if hw.Accelerators > 1 {
		paddedN := float64(m.Tiles * m.TileSize)
		crossBytes := 2 * paddedN / 8 * (accels - 1) / accels
		crossPerIter = crossBytes/p.BusBandwidthBps + p.DRAMLatencyCrossS
	}

	// Residency mirrors sched.Generate: when every pair fits, placement
	// is pinned (pair i on PE i) and arrays are programmed once, in the
	// fill — pre-seeding the residency table keeps rounds program-free.
	// Otherwise pairs land on slots in packing order and a slot holding
	// a different pair reprograms.
	resident := m.Pairs <= totalPEs
	residency := make([]int, totalPEs)
	for i := range residency {
		residency[i] = -1
	}
	if resident {
		for pe := 0; pe < m.Pairs; pe++ {
			residency[pe] = pe
		}
	}

	rep := &SimReport{}
	// The fill is Evaluate's: the first programming wave plus staging
	// DMA for the pool.
	now := p.ProgramTimeS + float64(totalPEs)*tileBytes(t, p.CellBits)/(p.DRAMBandwidthBps*accels)

	doRound := func(pairs []int) {
		programs := 0
		for slot, pair := range pairs {
			pe := slot
			if resident {
				pe = pair
			}
			if residency[pe] != pair {
				residency[pe] = pair
				programs++
			}
		}
		syncBytes := float64(len(pairs)) * syncBytesPerPairPerJob(t)
		syncTime := syncBytes/(p.InterposerBandwidthBps*accels) + p.DRAMLatencyLocalS
		programTime := 0.0
		if programs > 0 {
			dma := float64(programs) * tileBytes(t, p.CellBits) / (p.DRAMBandwidthBps * accels)
			programTime = math.Max(p.ProgramTimeS, dma)
		}
		roundTime := math.Max(computePerRound, math.Max(syncTime, programTime))
		bound := "compute"
		//sophielint:ignore floateq roundTime is the max of exactly these values, so identity attribution is exact
		if roundTime == syncTime {
			bound = "sync"
			//sophielint:ignore floateq roundTime is the max of exactly these values, so identity attribution is exact
		} else if roundTime == programTime {
			bound = "program"
		}
		rep.ComputeBusyS += computePerRound
		rep.SyncBusyS += syncTime
		rep.ProgramBusyS += programTime
		if len(rep.Trace) < maxTraceRounds {
			rep.Trace = append(rep.Trace, RoundTrace{
				StartS: now, EndS: now + roundTime,
				Pairs: len(pairs), Programs: programs, Bound: bound,
			})
		}
		now += roundTime
		rep.Rounds++
	}

	// Replay: each iteration's local-batch events, in stream order,
	// packed into rounds of at most TotalPEs pairs.
	iters := 0
	var cur []int
	var curIter int32
	flush := func() {
		for start := 0; start < len(cur); start += totalPEs {
			end := start + totalPEs
			if end > len(cur) {
				end = len(cur)
			}
			doRound(cur[start:end])
		}
		now += crossPerIter
		rep.CrossAccelS += crossPerIter
		iters++
		cur = cur[:0]
	}
	for _, ev := range rec.Events {
		if ev.Kind != trace.KindLocalBatch {
			continue
		}
		if len(cur) > 0 && ev.Iter != curIter {
			flush()
		}
		curIter = ev.Iter
		cur = append(cur, int(ev.Pair))
	}
	if len(cur) > 0 {
		flush()
	}
	if iters == 0 {
		return nil, fmt.Errorf("arch: recording holds no local-batch events; capture with trace.ControlKinds")
	}

	rep.TotalTimeS = now
	rep.TimePerJobS = now / float64(rec.Runs)
	return rep, nil
}
