package arch

// PE pipeline model (Section III-C): one local iteration flows through
// SRAM read → E-O modulation → optical MVM → photodetector/noise
// generator → ADC → SRAM write. The ADC bounds the initiation interval
// (1 cycle in 1-bit mode, ADC8bCycles in 8-bit mode), but consecutive
// local iterations of the *same job* are data-dependent — the recurrence
// output feeds the next input — so a single job can only run at the
// pipeline's latency. Batching hides this: the PE round-robins across
// the batch's jobs, filling the pipeline with independent iterations.
// This is the micro-architectural reason batch size appears in the
// Fig. 9 tradeoff beyond programming amortization.

// PELatencies are the per-stage latencies of the PE pipeline in
// accelerator cycles.
type PELatencies struct {
	// SRAMAccessCycles covers one buffer read (and symmetrically one
	// write); SRAM runs at 1 GHz against the 5 GHz core, interleaved.
	SRAMAccessCycles int
	// EOCycles is the electro-optical modulation stage.
	EOCycles int
	// OpticalCycles is the light propagation through the crossbar.
	OpticalCycles int
	// AnalogCycles covers photodetection, pos/neg subtraction, and the
	// noise generator.
	AnalogCycles int
}

// DefaultPELatencies returns the stage latencies implied by Section
// IV-A: 5 GHz core with 1 GHz interleaved SRAM (5 cycles per access),
// single-cycle modulation, propagation, and analog conditioning.
func DefaultPELatencies() PELatencies {
	return PELatencies{SRAMAccessCycles: 5, EOCycles: 1, OpticalCycles: 1, AnalogCycles: 1}
}

// iterationLatency is the end-to-end latency of one MVM through the
// pipeline with the given ADC conversion cycles.
func (l PELatencies) iterationLatency(adcCycles int) int {
	return l.SRAMAccessCycles + l.EOCycles + l.OpticalCycles + l.AnalogCycles +
		adcCycles + l.SRAMAccessCycles
}

// ComputeCycles returns the cycles one PE needs to run batch jobs of
// localIters local iterations on its tile pair. Off-diagonal pairs
// time-duplex two MVMs per iteration, diagonal pairs one. All but the
// final iteration use the 1-bit ADC; the final one uses the multi-bit
// mode (adc8b cycles).
//
// The PE is either throughput-bound (ADC initiation intervals, large
// batches) or latency-bound (a single job's dependent chain, small
// batches); the pipeline fill is added on top.
func (l PELatencies) ComputeCycles(batch, localIters int, diagonal bool, adc1b, adc8b int) int {
	if batch < 1 || localIters < 1 {
		return 0
	}
	mvmsPerIter := 2
	if diagonal {
		mvmsPerIter = 1
	}
	mvms1b := mvmsPerIter * (localIters - 1)
	mvms8b := mvmsPerIter

	// Throughput bound: the ADC is occupied for its conversion interval
	// per MVM, across all jobs.
	busy := batch * (mvms1b*adc1b + mvms8b*adc8b)
	// Latency bound: one job's MVMs are a dependent chain at full
	// pipeline latency; the batch's chains interleave, so the chain
	// bound is independent of batch size.
	chain := mvms1b*l.iterationLatency(adc1b) + mvms8b*l.iterationLatency(adc8b)
	cycles := busy
	if chain > cycles {
		cycles = chain
	}
	return cycles + l.iterationLatency(adc1b) // pipeline fill
}
