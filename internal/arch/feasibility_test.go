package arch

import (
	"bytes"
	"strings"
	"testing"

	"sophie/internal/sched"
)

func TestCheckFeasibilityDefaultConfig(t *testing.T) {
	rep, err := Evaluate(DefaultDesign(), tableIIIWorkload(16384, 50))
	if err != nil {
		t.Fatal(err)
	}
	f, err := CheckFeasibility(rep)
	if err != nil {
		t.Fatal(err)
	}
	// Default tile 64: 0.469 W/wavelength × 64 wavelengths × 64 PEs ≈ 1.9 kW...
	// wait, per chiplet that's 64 PEs; the default config is expected to
	// warn about laser power — the paper's laser budget is indeed the
	// dominant supply. Just sanity-check the indicator values.
	if f.LaserPowerPerChipletW <= 0 || f.ProgramSurgeW <= 0 {
		t.Fatalf("indicators not computed: %+v", f)
	}
	if f.AvgPowerDensityWPerMM2 <= 0 {
		t.Fatal("power density not computed")
	}
}

func TestCheckFeasibilityWarnsOnHugeTiles(t *testing.T) {
	d := DefaultDesign()
	d.Hardware.TileSize = 512
	d.Hardware.PEsPerChiplet = 1
	w := Workload{Nodes: 32768, Batch: 100, LocalIters: 10, GlobalIters: 50, TileFraction: 1}
	rep, err := Evaluate(d, w)
	if err != nil {
		t.Fatal(err)
	}
	f, err := CheckFeasibility(rep)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, warn := range f.Warnings {
		if strings.Contains(warn, "laser power") {
			found = true
		}
	}
	if !found {
		t.Fatalf("512x512 arrays should blow the laser budget, warnings: %v", f.Warnings)
	}
}

func TestCheckFeasibilityProgramSurge(t *testing.T) {
	rep, err := Evaluate(DefaultDesign(), tableIIIWorkload(16384, 50))
	if err != nil {
		t.Fatal(err)
	}
	f, err := CheckFeasibility(rep)
	if err != nil {
		t.Fatal(err)
	}
	// 256 PEs × 8192 cells × 433 nJ / 400 ns is enormous; the surge
	// warning must fire with the paper's constants.
	if f.ProgramSurgeW < MaxProgramSurgeW {
		t.Fatalf("program surge %.0f W unexpectedly small", f.ProgramSurgeW)
	}
	surgeWarned := false
	for _, warn := range f.Warnings {
		if strings.Contains(warn, "surge") {
			surgeWarned = true
		}
	}
	if !surgeWarned {
		t.Fatal("expected a programming surge warning")
	}
}

func TestRenderTimeline(t *testing.T) {
	hw := sched.Hardware{Accelerators: 1, ChipletsPerAccel: 1, PEsPerChiplet: 4, TileSize: 16}
	d := Design{Hardware: hw, Params: DefaultParams()}
	w := Workload{Nodes: 128, Batch: 5, LocalIters: 3, GlobalIters: 3, TileFraction: 1}
	plan := planFor(t, w.Nodes, hw, w)
	sim, err := SimulatePlan(d, plan, w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, sim, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "round timeline") || !strings.Contains(out, "legend") {
		t.Fatalf("timeline output malformed:\n%s", out)
	}
	if strings.Count(out, "\n") < sim.Rounds {
		t.Fatal("timeline missing rounds")
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, &SimReport{}, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no rounds") {
		t.Fatal("empty trace must say so")
	}
}
