package arch

import (
	"math"
	"testing"

	"sophie/internal/sched"
)

// tableIIIWorkload returns the paper's large-graph protocol (Section
// IV-D): batch 100, 10 local iterations per global, 74% tile selection.
func tableIIIWorkload(nodes, globalIters int) Workload {
	return Workload{
		Name:         "large",
		Nodes:        nodes,
		Batch:        100,
		LocalIters:   10,
		GlobalIters:  globalIters,
		TileFraction: 0.74,
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidationRejectsBadValues(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.ClockHz = 0 },
		func(p *Params) { p.ADC1bCycles = 0 },
		func(p *Params) { p.InterposerBandwidthBps = 0 },
		func(p *Params) { p.ProgramTimeS = -1 },
		func(p *Params) { p.SRAMBytesRef = 0 },
		func(p *Params) { p.SRAMBudgetBytesPerAccel = 0 },
		func(p *Params) { p.ChipletOverheadFactor = 0.5 },
		func(p *Params) { p.CellBits = 0 },
	}
	for i, mutate := range mutations {
		p := DefaultParams()
		mutate(&p)
		if err := p.validate(); err == nil {
			t.Errorf("mutation %d should have been rejected", i)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	d := DefaultDesign()
	bad := []Workload{
		{Nodes: 0, Batch: 1, LocalIters: 1, GlobalIters: 1, TileFraction: 1},
		{Nodes: 100, Batch: 0, LocalIters: 1, GlobalIters: 1, TileFraction: 1},
		{Nodes: 100, Batch: 1, LocalIters: 0, GlobalIters: 1, TileFraction: 1},
		{Nodes: 100, Batch: 1, LocalIters: 1, GlobalIters: 0, TileFraction: 1},
		{Nodes: 100, Batch: 1, LocalIters: 1, GlobalIters: 1, TileFraction: 0},
	}
	for i, w := range bad {
		if _, err := Evaluate(d, w); err == nil {
			t.Errorf("workload %d should have been rejected", i)
		}
	}
}

func TestOPCMChipletAreaMatchesPaper(t *testing.T) {
	// Section IV-A: each OPCM chiplet of 64 PEs occupies 486 mm².
	d := DefaultDesign()
	area := areaPerAccelerator(d.Params, d.Hardware, 100)
	perChiplet := area.OPCMChipletsMM2 / float64(d.Hardware.ChipletsPerAccel)
	if perChiplet < 486*0.95 || perChiplet > 486*1.05 {
		t.Fatalf("OPCM chiplet area %.1f mm², want ~486", perChiplet)
	}
}

func TestSRAMCapacityMatchesPaper(t *testing.T) {
	// Section IV-A: 7.6 MB total at the optimal configuration
	// (tile 64, batch 100, one accelerator).
	got := SRAMBytes(sched.DefaultHardware(), 100)
	want := 7.6 * 1024 * 1024
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("SRAM capacity %.2f MB, want ~7.6 MB", got/1024/1024)
	}
}

func TestLargeGraphTimePerJobShape(t *testing.T) {
	// Table III shape: K16384 on one accelerator lands in the tens of
	// microseconds per job, and K32768 costs ~3-4x that on the same
	// hardware.
	d := DefaultDesign()
	r16, err := Evaluate(d, tableIIIWorkload(16384, 50))
	if err != nil {
		t.Fatal(err)
	}
	if r16.TimePerJobS < 10e-6 || r16.TimePerJobS > 100e-6 {
		t.Fatalf("K16384 per-job time %.3g s, want tens of µs", r16.TimePerJobS)
	}
	r32, err := Evaluate(d, tableIIIWorkload(32768, 50))
	if err != nil {
		t.Fatal(err)
	}
	ratio := r32.TimePerJobS / r16.TimePerJobS
	if ratio < 2.5 || ratio > 5 {
		t.Fatalf("K32768/K16384 time ratio %.2f, want ~3-4", ratio)
	}
}

func TestMoreAcceleratorsSpeedUp(t *testing.T) {
	w := tableIIIWorkload(16384, 50)
	var prev float64 = math.Inf(1)
	for _, a := range []int{1, 2, 4} {
		d := DefaultDesign()
		d.Hardware.Accelerators = a
		r, err := Evaluate(d, w)
		if err != nil {
			t.Fatal(err)
		}
		if r.TimePerJobS >= prev {
			t.Fatalf("%d accelerators not faster: %.3g vs %.3g", a, r.TimePerJobS, prev)
		}
		prev = r.TimePerJobS
	}
	// Speedup is sublinear because of cross-accelerator synchronization.
	d1 := DefaultDesign()
	r1, _ := Evaluate(d1, w)
	d4 := DefaultDesign()
	d4.Hardware.Accelerators = 4
	r4, _ := Evaluate(d4, w)
	speedup := r1.TimePerJobS / r4.TimePerJobS
	if speedup < 2 || speedup > 4 {
		t.Fatalf("4-accelerator speedup %.2f, want sublinear in (2,4)", speedup)
	}
}

func TestBatchAmortizesProgramming(t *testing.T) {
	// Per-job time and energy must drop sharply from batch 1 to batch
	// 100 (programming and fill amortize), then flatten or worsen at
	// 1000 when buffers spill.
	times := map[int]float64{}
	energies := map[int]float64{}
	for _, b := range []int{1, 10, 100, 1000} {
		w := tableIIIWorkload(32768, 50)
		w.Batch = b
		r, err := Evaluate(DefaultDesign(), w)
		if err != nil {
			t.Fatal(err)
		}
		times[b] = r.TimePerJobS
		energies[b] = r.EnergyPerJobJ
	}
	if times[100] >= times[1] || energies[100] >= energies[1]/10 {
		t.Fatalf("batch 100 should amortize: t=%v e=%v vs batch1 t=%v e=%v",
			times[100], energies[100], times[1], energies[1])
	}
	if times[1000] <= times[100] {
		t.Fatalf("batch 1000 should pay the SRAM spill: %.3g vs %.3g", times[1000], times[100])
	}
}

func TestEDAPMinimumNearPaperConfig(t *testing.T) {
	// Fig. 9: tile 64 / batch 100 minimizes EDAP. Our model reproduces a
	// shallow interior minimum: batch 100 must beat batches 1, 10 and
	// 1000 at tile 64, and tile 64 must beat the extreme tiles 16 and
	// 256 at batch 100 (holding total OPCM cells constant).
	cellsBudget := 256 * 2 * 64 * 64
	edap := func(tile, batch int) float64 {
		pesTotal := cellsBudget / (2 * tile * tile)
		perChiplet := pesTotal / 4
		if perChiplet < 1 {
			perChiplet = 1
		}
		d := DefaultDesign()
		d.Hardware.TileSize = tile
		d.Hardware.PEsPerChiplet = perChiplet
		w := Workload{Nodes: 32768, Batch: batch, LocalIters: 10, GlobalIters: 500, TileFraction: 1}
		r, err := Evaluate(d, w)
		if err != nil {
			t.Fatal(err)
		}
		return r.EDAP
	}
	ref := edap(64, 100)
	for _, b := range []int{1, 10, 1000} {
		if edap(64, b) <= ref {
			t.Fatalf("EDAP at batch %d (%.3g) not worse than batch 100 (%.3g)", b, edap(64, b), ref)
		}
	}
	for _, tile := range []int{16, 256} {
		if edap(tile, 100) <= ref {
			t.Fatalf("EDAP at tile %d (%.3g) not worse than tile 64 (%.3g)", tile, edap(tile, 100), ref)
		}
	}
}

func TestResidentSmallGraphIsFast(t *testing.T) {
	// Table II: small graphs fit on the accelerator; per-job time with
	// measured convergence (~30 global iterations) should land around a
	// microsecond or below.
	d := DefaultDesign()
	d.Hardware.Accelerators = 4
	w := Workload{Name: "G22", Nodes: 2000, Batch: 100, LocalIters: 10, GlobalIters: 30, TileFraction: 1}
	r, err := Evaluate(d, w)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schedule.Resident {
		t.Fatal("G22 on 4 accelerators must be resident")
	}
	if r.TimePerJobS > 5e-6 {
		t.Fatalf("resident G22 per-job time %.3g s, want ~µs", r.TimePerJobS)
	}
	if r.Time.ProgramS != 0 {
		t.Fatal("resident runs must not reprogram in steady state")
	}
}

func TestEnergyBreakdownConsistency(t *testing.T) {
	r, err := Evaluate(DefaultDesign(), tableIIIWorkload(16384, 50))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Energy.Total()-r.EnergyTotalJ) > 1e-9*r.EnergyTotalJ {
		t.Fatal("energy breakdown does not sum to total")
	}
	if r.EnergyPerJobJ*float64(r.Workload.Batch) != r.EnergyTotalJ {
		t.Fatal("per-job energy inconsistent")
	}
	if r.AvgPowerW <= 0 {
		t.Fatal("average power must be positive")
	}
	if r.Energy.ProgramJ == 0 {
		t.Fatal("time-duplexed large graphs must pay programming energy")
	}
	if r.EDAP <= 0 {
		t.Fatal("EDAP must be positive")
	}
}

func TestAreaBreakdownConsistency(t *testing.T) {
	r, err := Evaluate(DefaultDesign(), tableIIIWorkload(16384, 50))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Area.Total()*float64(r.Design.Hardware.Accelerators)-r.AreaMM2) > 1e-9 {
		t.Fatal("area breakdown does not sum to total")
	}
	// An accelerator is dominated by its four OPCM chiplets (~1.9k mm²).
	if r.Area.OPCMChipletsMM2 < 1500 || r.Area.OPCMChipletsMM2 > 2500 {
		t.Fatalf("OPCM area %.0f mm² implausible", r.Area.OPCMChipletsMM2)
	}
}

func TestMoreIterationsCostMoreTime(t *testing.T) {
	d := DefaultDesign()
	r50, _ := Evaluate(d, tableIIIWorkload(16384, 50))
	r100, _ := Evaluate(d, tableIIIWorkload(16384, 100))
	if r100.TimePerJobS <= r50.TimePerJobS {
		t.Fatal("doubling iterations must increase time")
	}
	ratio := r100.TimePerJobS / r50.TimePerJobS
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("iteration scaling ratio %.2f, want ~2", ratio)
	}
}

func TestTileFractionReducesTime(t *testing.T) {
	d := DefaultDesign()
	full := tableIIIWorkload(16384, 50)
	full.TileFraction = 1.0
	part := tableIIIWorkload(16384, 50)
	part.TileFraction = 0.5
	rf, _ := Evaluate(d, full)
	rp, _ := Evaluate(d, part)
	if rp.TimePerJobS >= rf.TimePerJobS {
		t.Fatal("selecting fewer tiles must reduce per-iteration time")
	}
	if rp.EnergyPerJobJ >= rf.EnergyPerJobJ {
		t.Fatal("selecting fewer tiles must reduce energy")
	}
}

func BenchmarkEvaluateK32768(b *testing.B) {
	d := DefaultDesign()
	w := tableIIIWorkload(32768, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(d, w); err != nil {
			b.Fatal(err)
		}
	}
}
