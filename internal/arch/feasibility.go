package arch

import (
	"fmt"
	"io"
	"strings"
)

// Feasibility flags physical-design concerns that the EDAP objective
// alone does not capture: laser power walls, power density beyond
// cooling limits, and programming surge power. Fig. 9's tile-size sweep
// is only meaningful inside the feasible region.
type Feasibility struct {
	// LaserPowerPerChipletW is the optical supply one OPCM chiplet
	// needs with all its PEs active.
	LaserPowerPerChipletW float64
	// AvgPowerDensityWPerMM2 is the run-average accelerator power over
	// its area.
	AvgPowerDensityWPerMM2 float64
	// ProgramSurgeW is the instantaneous electrical power while a full
	// round of arrays programs within ProgramTimeS.
	ProgramSurgeW float64
	// Warnings lists violated limits; empty means feasible.
	Warnings []string
}

// Feasibility limits; exceeded values produce warnings.
const (
	// MaxPowerDensityWPerMM2 is an aggressive liquid-cooling budget.
	MaxPowerDensityWPerMM2 = 2.0
	// MaxLaserPerChipletW bounds a practical multi-wavelength source.
	MaxLaserPerChipletW = 200.0
	// MaxProgramSurgeW bounds the programming power delivery network.
	MaxProgramSurgeW = 500.0
)

// CheckFeasibility derives the physical-design indicators from a PPA
// report.
func CheckFeasibility(rep *Report) (Feasibility, error) {
	p := rep.Design.Params
	hw := rep.Design.Hardware
	t := hw.TileSize

	perWl, err := p.Optics.LaserPowerPerWavelengthW(t)
	if err != nil {
		return Feasibility{}, err
	}
	var f Feasibility
	f.LaserPowerPerChipletW = perWl * float64(t) * float64(hw.PEsPerChiplet)
	if rep.TimeTotalS > 0 {
		f.AvgPowerDensityWPerMM2 = rep.AvgPowerW / rep.AreaMM2
	}
	// Worst case: every PE of the pool reprograms simultaneously.
	cellsPerRound := float64(hw.TotalPEs()) * float64(2*t*t)
	f.ProgramSurgeW = cellsPerRound * p.ProgramEnergyPerCellJ / p.ProgramTimeS

	if f.LaserPowerPerChipletW > MaxLaserPerChipletW {
		f.Warnings = append(f.Warnings, fmt.Sprintf(
			"laser power %.0f W per chiplet exceeds the %.0f W source budget",
			f.LaserPowerPerChipletW, MaxLaserPerChipletW))
	}
	if f.AvgPowerDensityWPerMM2 > MaxPowerDensityWPerMM2 {
		f.Warnings = append(f.Warnings, fmt.Sprintf(
			"power density %.2f W/mm² exceeds the %.1f W/mm² cooling budget",
			f.AvgPowerDensityWPerMM2, MaxPowerDensityWPerMM2))
	}
	if f.ProgramSurgeW > MaxProgramSurgeW {
		f.Warnings = append(f.Warnings, fmt.Sprintf(
			"programming surge %.0f W exceeds the %.0f W delivery budget (stagger array writes)",
			f.ProgramSurgeW, MaxProgramSurgeW))
	}
	return f, nil
}

// RenderTimeline writes an ASCII Gantt of the first traced rounds of a
// discrete simulation: one row per round with a bar scaled to the
// longest round, annotated with occupancy, reprogram count, and the
// bounding component.
func RenderTimeline(w io.Writer, sim *SimReport, width int) error {
	if width < 10 {
		width = 60
	}
	if len(sim.Trace) == 0 {
		_, err := fmt.Fprintln(w, "(no rounds traced)")
		return err
	}
	longest := 0.0
	for _, tr := range sim.Trace {
		if d := tr.EndS - tr.StartS; d > longest {
			longest = d
		}
	}
	if _, err := fmt.Fprintf(w, "round timeline (first %d rounds, bar full scale = %s)\n",
		len(sim.Trace), fmtSeconds(longest)); err != nil {
		return err
	}
	for i, tr := range sim.Trace {
		d := tr.EndS - tr.StartS
		n := int(d / longest * float64(width))
		if n < 1 {
			n = 1
		}
		marker := byte('=')
		switch tr.Bound {
		case "sync":
			marker = '~'
		case "program":
			marker = '#'
		}
		bar := strings.Repeat(string(marker), n)
		if _, err := fmt.Fprintf(w, "%4d |%-*s| %s  pairs=%d prog=%d bound=%s\n",
			i, width, bar, fmtSeconds(d), tr.Pairs, tr.Programs, tr.Bound); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "legend: = compute-bound, ~ sync-bound, # program-bound")
	return err
}

func fmtSeconds(s float64) string {
	switch {
	case s < 1e-6:
		return fmt.Sprintf("%.1f ns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.2f µs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2f ms", s*1e3)
	default:
		return fmt.Sprintf("%.2f s", s)
	}
}
