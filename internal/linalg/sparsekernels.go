package linalg

import (
	"fmt"
	"math/bits"
)

// This file holds the sparse (CSR) counterparts of the binary and
// incremental MVM kernels in binary.go — the kernels behind the
// sparse-first solve path for instances whose couplings are a few
// percent dense.
//
// Bit-exactness contract (extends the contract in binary.go): every
// kernel here is bit-identical to its dense counterpart on the same
// matrix. Two facts make that hold. First, the terms a CSR kernel skips
// relative to a dense kernel are exactly the zero-valued couplings, and
// for every kernel those terms are exact IEEE-754 ±0 products whose
// addition cannot change an accumulator that is never -0 (see
// binary.go). Second, CSR rows store column indices in increasing
// order, and the transposed copy (CSR.Transpose) stores each column's
// entries in increasing row order — so per output element the surviving
// non-zero terms accumulate in exactly the index order the dense
// kernels use. The popcount kernel (CSRBits) is exact by a different
// argument: for ±1 couplings every partial sum is a small integer, each
// float64 addition of ±1 to an integer below 2⁵³ is exact, so the float
// accumulation equals the integer popcount difference bit for bit.

// ApplyBinary computes y = A·x for a {0,1} input vector (any non-zero
// entry is treated as 1): a row gather that adds the couplings whose
// column has a set spin, with no multiplications. Bit-identical to
// Apply for binary x, and to the dense MulVecBinary/MulVec on the same
// matrix. len(x) and len(y) must equal Order.
func (c *CSR) ApplyBinary(x, y []float64) {
	if len(x) != c.n || len(y) != c.n {
		panic(fmt.Sprintf("linalg: CSR.ApplyBinary got %d/%d for order %d", len(x), len(y), c.n))
	}
	for r := 0; r < c.n; r++ {
		sum := 0.0
		for k := c.rowPtr[r]; k < c.rowPtr[r+1]; k++ {
			if x[c.colIdx[k]] != 0 {
				sum += c.vals[k]
			}
		}
		y[r] = sum
	}
}

// ApplyBinaryRange computes rows [lo, hi) of y = A·x for a {0,1} input
// vector, leaving every other output element untouched. Rows are
// independent in the gather form, so workers owning disjoint row ranges
// compute the exact same values ApplyBinary would — the parallel anchor
// recompute of the colored-update runtime.
func (c *CSR) ApplyBinaryRange(x, y []float64, lo, hi int) {
	if len(x) != c.n || len(y) != c.n {
		panic(fmt.Sprintf("linalg: CSR.ApplyBinaryRange got %d/%d for order %d", len(x), len(y), c.n))
	}
	if lo < 0 || hi > c.n || lo > hi {
		panic(fmt.Sprintf("linalg: CSR.ApplyBinaryRange rows [%d,%d) outside [0,%d]", lo, hi, c.n))
	}
	for r := lo; r < hi; r++ {
		sum := 0.0
		for k := c.rowPtr[r]; k < c.rowPtr[r+1]; k++ {
			if x[c.colIdx[k]] != 0 {
				sum += c.vals[k]
			}
		}
		y[r] = sum
	}
}

// ApplyBinaryT computes y = Aᵀ·x for a {0,1} input vector: a row
// scatter over the rows whose spin is set. Bit-identical to ApplyT for
// binary x, and to the dense MulVecBinaryT. len(x) and len(y) must
// equal Order.
func (c *CSR) ApplyBinaryT(x, y []float64) {
	if len(x) != c.n || len(y) != c.n {
		panic(fmt.Sprintf("linalg: CSR.ApplyBinaryT got %d/%d for order %d", len(x), len(y), c.n))
	}
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < c.n; i++ {
		if x[i] == 0 {
			continue
		}
		for k := c.rowPtr[i]; k < c.rowPtr[i+1]; k++ {
			y[c.colIdx[k]] += c.vals[k]
		}
	}
}

// ApplyT computes y = Aᵀ·x for a general input vector: a row scatter
// skipping zero input elements, mirroring the dense MulVecT
// bit-identically (contributions to each output element arrive in
// increasing row order). len(x) and len(y) must equal Order.
func (c *CSR) ApplyT(x, y []float64) {
	if len(x) != c.n || len(y) != c.n {
		panic(fmt.Sprintf("linalg: CSR.ApplyT got %d/%d for order %d", len(x), len(y), c.n))
	}
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < c.n; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := c.rowPtr[i]; k < c.rowPtr[i+1]; k++ {
			y[c.colIdx[k]] += c.vals[k] * xi
		}
	}
}

// AccumulateFlip applies y += sign · row j of A in place — the
// adjacency-list incremental update for "spin j flipped by sign". On a
// symmetric CSR row j equals column j, so this patches a product
// y = A·x in O(degree(j)) instead of the dense AccumulateColumn's O(n);
// on a general (tile-block) CSR it is the transposed-product patch
// (column j of Aᵀ is row j of A), the sparse AccumulateRow. sign values
// of exactly ±1 take a multiply-free path bit-identical to the general
// one; both are bit-identical to the dense accumulate kernels.
func (c *CSR) AccumulateFlip(y []float64, j int, sign float64) {
	if len(y) != c.n {
		panic(fmt.Sprintf("linalg: CSR.AccumulateFlip y has length %d, want %d", len(y), c.n))
	}
	if j < 0 || j >= c.n {
		panic(fmt.Sprintf("linalg: CSR.AccumulateFlip spin %d outside [0,%d)", j, c.n))
	}
	lo, hi := c.rowPtr[j], c.rowPtr[j+1]
	cols, vals := c.colIdx[lo:hi], c.vals[lo:hi]
	switch sign {
	case 1:
		for k, cc := range cols {
			y[cc] += vals[k]
		}
	case -1:
		for k, cc := range cols {
			y[cc] -= vals[k]
		}
	default:
		for k, cc := range cols {
			y[cc] += sign * vals[k]
		}
	}
}

// AccumulateFlipRange is AccumulateFlip restricted to output elements
// in [lo, hi): it patches only y[lo:hi] (indices in the full output
// space), leaving every other element untouched. Disjoint ranges touch
// disjoint memory, so workers owning disjoint ranges can apply the same
// flip sequence concurrently — the colored-update runtime's
// deterministic parallel flip application. Per element the additions
// happen in the same order AccumulateFlip would apply them.
func (c *CSR) AccumulateFlipRange(y []float64, j int, sign float64, lo, hi int) {
	if len(y) != c.n {
		panic(fmt.Sprintf("linalg: CSR.AccumulateFlipRange y has length %d, want %d", len(y), c.n))
	}
	if j < 0 || j >= c.n {
		panic(fmt.Sprintf("linalg: CSR.AccumulateFlipRange spin %d outside [0,%d)", j, c.n))
	}
	rs, re := c.rowPtr[j], c.rowPtr[j+1]
	row := c.colIdx[rs:re]
	a := searchInts(row, lo)
	b := searchInts(row, hi)
	cols, vals := row[a:b], c.vals[rs+a:rs+b]
	switch sign {
	case 1:
		for k, cc := range cols {
			y[cc] += vals[k]
		}
	case -1:
		for k, cc := range cols {
			y[cc] -= vals[k]
		}
	default:
		for k, cc := range cols {
			y[cc] += sign * vals[k]
		}
	}
}

// searchInts returns the smallest index i with a[i] >= v (sort.SearchInts
// without the interface indirection; row slices are hot-path).
func searchInts(a []int, v int) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// BitVec is a bit-packed {0,1} spin vector: one bit per spin, bit i of
// word i/64. It is the input form of the popcount MVM kernel
// (CSRBits.ApplyBinary) — 64 spins per machine word instead of 64
// bytes of float64.
type BitVec []uint64

// NewBitVec allocates a bit vector holding n spins.
func NewBitVec(n int) BitVec { return make(BitVec, (n+63)/64) }

// Pack fills the bit vector from a {0,1} float vector (any non-zero
// entry sets the bit). len(x) must not exceed 64·len(b).
func (b BitVec) Pack(x []float64) {
	for w := range b {
		b[w] = 0
	}
	for i, v := range x {
		if v != 0 {
			b[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// Get reports whether bit i is set.
func (b BitVec) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// CSRBits is the popcount form of a CSR matrix whose couplings are all
// exactly ±1 (unit-weight and PM1 graph reductions — the bulk of the
// GSET-style workloads): per row, the ±1 entries are grouped by spin
// word into positive and negative bit masks, so a binary MVM row is a
// handful of AND+popcount operations instead of a float gather.
type CSRBits struct {
	n      int
	rowPtr []int32  // into words/pos/neg, one range per row
	words  []int32  // spin-word index of each mask pair
	pos    []uint64 // mask of +1 couplings in that word
	neg    []uint64 // mask of -1 couplings in that word
}

// NewCSRBits builds the popcount form of c. It returns (nil, false)
// when any stored value is not exactly ±1 — callers fall back to the
// float kernels, which the bit-identity contract makes safe at any
// time.
func NewCSRBits(c *CSR) (*CSRBits, bool) {
	for _, v := range c.vals {
		//sophielint:ignore floateq ±1 detection is an exact representability test selecting the integer kernel, not a tolerance comparison
		if v != 1 && v != -1 {
			return nil, false
		}
	}
	b := &CSRBits{n: c.n, rowPtr: make([]int32, c.n+1)}
	for r := 0; r < c.n; r++ {
		lastWord := int32(-1)
		for k := c.rowPtr[r]; k < c.rowPtr[r+1]; k++ {
			w := int32(c.colIdx[k] >> 6)
			if w != lastWord {
				b.words = append(b.words, w)
				b.pos = append(b.pos, 0)
				b.neg = append(b.neg, 0)
				lastWord = w
			}
			mask := uint64(1) << (uint(c.colIdx[k]) & 63)
			if c.vals[k] > 0 {
				b.pos[len(b.pos)-1] |= mask
			} else {
				b.neg[len(b.neg)-1] |= mask
			}
		}
		b.rowPtr[r+1] = int32(len(b.words))
	}
	return b, true
}

// Order returns the matrix order.
func (b *CSRBits) Order() int { return b.n }

// ApplyBinary computes y = A·x over a bit-packed spin vector: each row
// is a word-parallel popcount of the positive masks minus the negative
// masks. Every partial sum is an integer of magnitude at most the row
// degree, so the result is bit-identical to the float gather
// CSR.ApplyBinary on the same ±1 matrix (exact integer arithmetic is
// order-independent). len(y) must equal Order; x must cover Order bits.
func (b *CSRBits) ApplyBinary(x BitVec, y []float64) {
	if len(y) != b.n {
		panic(fmt.Sprintf("linalg: CSRBits.ApplyBinary y has length %d, want %d", len(y), b.n))
	}
	if 64*len(x) < b.n {
		panic(fmt.Sprintf("linalg: CSRBits.ApplyBinary x has %d bits, want >= %d", 64*len(x), b.n))
	}
	for r := 0; r < b.n; r++ {
		sum := 0
		for k := b.rowPtr[r]; k < b.rowPtr[r+1]; k++ {
			w := x[b.words[k]]
			sum += bits.OnesCount64(b.pos[k]&w) - bits.OnesCount64(b.neg[k]&w)
		}
		y[r] = float64(sum)
	}
}
