package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewCSRSymBasics(t *testing.T) {
	c, err := NewCSRSym(3, []Entry{
		{0, 1, 2},
		{1, 2, -1},
		{2, 2, 5}, // diagonal
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Order() != 3 {
		t.Fatalf("order %d", c.Order())
	}
	// 2 off-diagonal entries mirrored (4) + 1 diagonal = 5 nonzeros.
	if c.NNZ() != 5 {
		t.Fatalf("nnz %d, want 5", c.NNZ())
	}
	if c.At(0, 1) != 2 || c.At(1, 0) != 2 {
		t.Fatal("symmetric mirroring failed")
	}
	if c.At(2, 2) != 5 {
		t.Fatal("diagonal lost")
	}
	if c.At(0, 2) != 0 {
		t.Fatal("absent entry must read 0")
	}
}

func TestNewCSRSymDuplicatesAndValidation(t *testing.T) {
	c, err := NewCSRSym(2, []Entry{{0, 1, 1}, {1, 0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// (0,1,1) mirrors to (1,0,1); (1,0,2) mirrors to (0,1,2): sum = 3.
	if c.At(0, 1) != 3 {
		t.Fatalf("duplicate accumulation got %v, want 3", c.At(0, 1))
	}
	if _, err := NewCSRSym(2, []Entry{{0, 5, 1}}); err == nil {
		t.Fatal("out-of-range entry must be rejected")
	}
	if _, err := NewCSRSym(-1, nil); err == nil {
		t.Fatal("negative order must be rejected")
	}
}

func TestCSRZeroEntriesDropped(t *testing.T) {
	c, err := NewCSRSym(2, []Entry{{0, 1, 1}, {0, 1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 0 {
		t.Fatalf("cancelled entries kept: nnz %d", c.NNZ())
	}
}

func TestCSRApplyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	dense := randomSym(20, rng)
	// Sparsify: zero out ~70%.
	for i := 0; i < 20; i++ {
		for j := i; j < 20; j++ {
			if rng.Float64() < 0.7 {
				dense.Set(i, j, 0)
				dense.Set(j, i, 0)
			}
		}
	}
	csr, err := NewCSRFromDense(dense)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, _ := dense.MulVec(x, nil)
	got := make([]float64, 20)
	csr.Apply(x, got)
	for i := range got {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Apply[%d] = %v, dense %v", i, got[i], want[i])
		}
	}
	// Gershgorin radius must match the dense computation.
	dr, _ := GershgorinRadius(dense)
	if !almostEqual(csr.GershgorinRadius(), dr, 1e-12) {
		t.Fatalf("sparse Gershgorin %v, dense %v", csr.GershgorinRadius(), dr)
	}
}

func TestCSRApplyPanicsOnBadShape(t *testing.T) {
	c, _ := NewCSRSym(3, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Apply(make([]float64, 2), make([]float64, 3))
}

func TestAsOperatorValidation(t *testing.T) {
	if _, err := AsOperator(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square matrix must be rejected")
	}
	op, err := AsOperator(NewMatrix(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if op.Order() != 2 {
		t.Fatal("dense operator order wrong")
	}
}

func TestEigenSymTopKOpSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	dense := randomSym(25, rng)
	csr, err := NewCSRFromDense(dense)
	if err != nil {
		t.Fatal(err)
	}
	dv, _, err := EigenSymTopK(dense, 4, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	sv, _, err := EigenSymTopKOp(csr, 4, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dv {
		if !almostEqual(dv[i], sv[i], 1e-8*(1+math.Abs(dv[i]))) {
			t.Fatalf("sparse/dense eigenvalue %d: %v vs %v", i, sv[i], dv[i])
		}
	}
}

func TestPRISTransformRankSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dense := randomSym(18, rng)
	csr, err := NewCSRFromDense(dense)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PRISTransformRank(dense, 0, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PRISTransformRankSparse(csr, 0, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data() {
		if !almostEqual(a.Data()[i], b.Data()[i], 1e-8*(1+a.MaxAbs())) {
			t.Fatalf("sparse transform differs at %d: %v vs %v", i, b.Data()[i], a.Data()[i])
		}
	}
	if _, err := PRISTransformRankSparse(csr, 2, 4, 1); err == nil {
		t.Fatal("bad alpha must be rejected")
	}
}

func BenchmarkCSRApply(b *testing.B) {
	// A GSET-like sparse operator: 2000 nodes, ~20k edges.
	rng := rand.New(rand.NewSource(22))
	entries := make([]Entry, 0, 20000)
	for len(entries) < 20000 {
		u, v := rng.Intn(2000), rng.Intn(2000)
		if u != v {
			entries = append(entries, Entry{u, v, 1})
		}
	}
	c, err := NewCSRSym(2000, entries)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 2000)
	y := make([]float64, 2000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Apply(x, y)
	}
}
