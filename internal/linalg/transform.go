package linalg

import (
	"fmt"
	"math"
)

// GershgorinRadius returns max_i Σ_{j≠i} |K_ij|, an upper bound on how far
// any eigenvalue of the symmetric matrix K can lie below zero. The paper's
// eigenvalue-dropout shift Δ (Eq. 4) is built from these row sums; we use
// the max as a single scalar shift so that α=1 keeps every eigenvalue
// (λ+Δ ≥ 0 by Gershgorin's theorem) and α=0 drops every negative one,
// matching the dropout semantics of the PRIS preprocessing.
func GershgorinRadius(k *Matrix) (float64, error) {
	if k.rows != k.cols {
		return 0, fmt.Errorf("%w: GershgorinRadius needs a square matrix", ErrDimensionMismatch)
	}
	max := 0.0
	for i := 0; i < k.rows; i++ {
		row := k.Row(i)
		sum := 0.0
		for j, v := range row {
			if j != i {
				sum += math.Abs(v)
			}
		}
		if sum > max {
			max = sum
		}
	}
	return max, nil
}

// PRISTransform computes the PRIS transformation matrix (Eq. 2-4):
//
//	K = U D Uᵀ
//	C = U Sq_α(D) Uᵀ,  Sq_α(D)_kk = 2·Re(√(λ_k + α·Δ)),  Δ = Gershgorin radius
//
// Negative shifted eigenvalues contribute zero (their square root is
// imaginary, so the real part vanishes) — this is the "eigenvalue
// dropout". α ∈ [0,1] is the dropout knob: α=0 drops all negative
// eigenvalues, α=1 keeps everything.
//
// The returned matrix is symmetric. PRISTransform is O(n³) and intended
// as one-time host-side preprocessing, exactly as in the paper.
func PRISTransform(k *Matrix, alpha float64) (*Matrix, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("linalg: PRISTransform alpha %v outside [0,1]", alpha)
	}
	values, vectors, err := EigenSym(k)
	if err != nil {
		return nil, err
	}
	delta, err := GershgorinRadius(k)
	if err != nil {
		return nil, err
	}
	sq := make([]float64, len(values))
	for i, lambda := range values {
		shifted := lambda + alpha*delta
		if shifted > 0 {
			sq[i] = 2 * math.Sqrt(shifted)
		}
		// Re(√shifted) = 0 for shifted < 0: the eigenvalue drops out.
	}
	return scaledOuterSum(vectors, sq), nil
}

// scaledOuterSum computes V * diag(w) * Vᵀ, skipping zero weights so the
// cost scales with the number of surviving eigenvalues after dropout.
func scaledOuterSum(v *Matrix, w []float64) *Matrix {
	n := v.rows
	c := NewMatrix(n, n)
	col := make([]float64, n)
	for e, we := range w {
		if we == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			col[i] = v.At(i, e)
		}
		for i := 0; i < n; i++ {
			ci := c.Row(i)
			vi := col[i] * we
			if vi == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				ci[j] += vi * col[j]
			}
		}
	}
	// Symmetrize to squash accumulated floating-point asymmetry.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			avg := (c.At(i, j) + c.At(j, i)) / 2
			c.Set(i, j, avg)
			c.Set(j, i, avg)
		}
	}
	return c
}

// Thresholds computes the PRIS thresholding vector θ_i = Σ_j C_ij / 2
// (Eq. 7) for the transformation matrix C.
func Thresholds(c *Matrix) []float64 {
	th := make([]float64, c.rows)
	for i := 0; i < c.rows; i++ {
		sum := 0.0
		for _, v := range c.Row(i) {
			sum += v
		}
		th[i] = sum / 2
	}
	return th
}
