package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// randomSparseSym builds a random symmetric matrix of order n with
// roughly the given off-diagonal density, returned in both dense and
// CSR form. unit selects ±1 couplings (the popcount-eligible case)
// instead of Gaussian ones.
func randomSparseSym(t testing.TB, n int, density float64, unit bool, rng *rand.Rand) (*Matrix, *CSR) {
	t.Helper()
	dense := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() >= density {
				continue
			}
			v := rng.NormFloat64()
			if unit {
				v = 1
				if rng.Intn(2) == 0 {
					v = -1
				}
			}
			dense.Set(i, j, v)
			dense.Set(j, i, v)
		}
	}
	csr, err := NewCSRFromDense(dense)
	if err != nil {
		t.Fatal(err)
	}
	return dense, csr
}

func requireBitsEqual(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: element %d bits differ: %v vs %v", label, i, got[i], want[i])
		}
	}
}

// TestCSRKernelsBitIdenticalToDense is the satellite property test: on
// random symmetric matrices across densities {1%, 10%, 50%}, every CSR
// kernel must reproduce its dense counterpart bit for bit — Apply ≡
// MulVec, ApplyT ≡ MulVecT, ApplyBinary ≡ MulVecBinary, ApplyBinaryT ≡
// MulVecBinaryT.
func TestCSRKernelsBitIdenticalToDense(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, density := range []float64{0.01, 0.10, 0.50} {
		for trial := 0; trial < 8; trial++ {
			n := 20 + rng.Intn(60)
			dense, csr := randomSparseSym(t, n, density, trial%2 == 0, rng)

			xf := make([]float64, n)
			for i := range xf {
				xf[i] = rng.NormFloat64()
			}
			xb := randomBinary(rng, n)
			got := make([]float64, n)

			want, _ := dense.MulVec(xf, nil)
			csr.Apply(xf, got)
			requireBitsEqual(t, "Apply vs MulVec", want, got)

			want, _ = dense.MulVecT(xf, nil)
			csr.ApplyT(xf, got)
			requireBitsEqual(t, "ApplyT vs MulVecT", want, got)

			want, _ = dense.MulVecBinary(xb, nil)
			csr.ApplyBinary(xb, got)
			requireBitsEqual(t, "ApplyBinary vs MulVecBinary", want, got)

			want, _ = dense.MulVecBinaryT(xb, nil)
			csr.ApplyBinaryT(xb, got)
			requireBitsEqual(t, "ApplyBinaryT vs MulVecBinaryT", want, got)
		}
	}
}

// TestCSRGeneralKernelsOnAsymmetricBlocks covers the tile-block shape:
// a square but non-symmetric CSR (NewCSRGeneral) must still match the
// dense kernels bitwise in both directions.
func TestCSRGeneralKernelsOnAsymmetricBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	n := 48
	dense := NewMatrix(n, n)
	var entries []Entry
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.08 {
				v := rng.NormFloat64()
				dense.Set(i, j, v)
				entries = append(entries, Entry{i, j, v})
			}
		}
	}
	csr, err := NewCSRGeneral(n, entries)
	if err != nil {
		t.Fatal(err)
	}
	xf := make([]float64, n)
	for i := range xf {
		xf[i] = rng.NormFloat64()
	}
	xb := randomBinary(rng, n)
	got := make([]float64, n)

	want, _ := dense.MulVec(xf, nil)
	csr.Apply(xf, got)
	requireBitsEqual(t, "general Apply", want, got)

	want, _ = dense.MulVecT(xf, nil)
	csr.ApplyT(xf, got)
	requireBitsEqual(t, "general ApplyT", want, got)

	want, _ = dense.MulVecBinary(xb, nil)
	csr.ApplyBinary(xb, got)
	requireBitsEqual(t, "general ApplyBinary", want, got)

	want, _ = dense.MulVecBinaryT(xb, nil)
	csr.ApplyBinaryT(xb, got)
	requireBitsEqual(t, "general ApplyBinaryT", want, got)

	// Transpose round trip: T(A)[j][i] == A[i][j], rows sorted.
	tr := csr.Transpose()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Float64bits(tr.At(j, i)) != math.Float64bits(csr.At(i, j)) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	for r := 0; r < n; r++ {
		lo, hi := tr.rowPtr[r], tr.rowPtr[r+1]
		if !sort.IntsAreSorted(tr.colIdx[lo:hi]) {
			t.Fatalf("transpose row %d not sorted", r)
		}
	}
}

// TestGershgorinRadiusGolden pins the sparse GershgorinRadius equal —
// bit for bit — to the dense computation on random symmetric instances
// (the satellite doc-fix task's regression guard).
func TestGershgorinRadiusGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(50)
		dense, csr := randomSparseSym(t, n, 0.15, trial%2 == 0, rng)
		// Plant diagonal entries: the radius must exclude them.
		for i := 0; i < n; i += 3 {
			dense.Set(i, i, rng.NormFloat64())
		}
		withDiag, err := NewCSRFromDense(dense)
		if err != nil {
			t.Fatal(err)
		}
		want, err := GershgorinRadius(dense)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []*CSR{csr, withDiag} {
			if math.Float64bits(c.GershgorinRadius()) != math.Float64bits(want) {
				t.Fatalf("trial %d: sparse Gershgorin %v, dense %v", trial, c.GershgorinRadius(), want)
			}
		}
	}
}

// TestNewCSRSymMatchesMapBuild pins the sort-and-merge construction
// against a reference map-accumulator build on random entry lists with
// duplicates and cancellations: identical structure and values.
func TestNewCSRSymMatchesMapBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(30)
		entries := make([]Entry, rng.Intn(120))
		for i := range entries {
			entries[i] = Entry{Row: rng.Intn(n), Col: rng.Intn(n), Val: float64(rng.Intn(7) - 3)}
		}
		got, err := NewCSRSym(n, entries)
		if err != nil {
			t.Fatal(err)
		}

		// Reference: the old map-accumulator semantics.
		type coord struct{ r, c int }
		acc := make(map[coord]float64)
		for _, e := range entries {
			acc[coord{e.Row, e.Col}] += e.Val
			if e.Row != e.Col {
				acc[coord{e.Col, e.Row}] += e.Val
			}
		}
		nnz := 0
		for k, v := range acc {
			if v == 0 {
				continue
			}
			nnz++
			if math.Float64bits(got.At(k.r, k.c)) != math.Float64bits(v) {
				t.Fatalf("trial %d: entry (%d,%d) = %v, want %v", trial, k.r, k.c, got.At(k.r, k.c), v)
			}
		}
		if got.NNZ() != nnz {
			t.Fatalf("trial %d: nnz %d, want %d", trial, got.NNZ(), nnz)
		}
		// Structural invariant: rows sorted, rowPtr consistent.
		for r := 0; r < n; r++ {
			lo, hi := got.rowPtr[r], got.rowPtr[r+1]
			if !sort.IntsAreSorted(got.colIdx[lo:hi]) {
				t.Fatalf("trial %d: row %d not sorted", trial, r)
			}
		}
	}
}

// TestAccumulateFlipBitIdentical checks the adjacency flip patch
// against the dense AccumulateColumn/AccumulateRow kernels, including
// the ±1 multiply-free paths and a fractional sign.
func TestAccumulateFlipBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	n := 40
	dense, csr := randomSparseSym(t, n, 0.12, false, rng)
	tr := csr.Transpose()
	for _, sign := range []float64{1, -1, 0.5} {
		for j := 0; j < n; j += 5 {
			want := make([]float64, n)
			got := make([]float64, n)
			for i := range want {
				want[i] = rng.NormFloat64()
				got[i] = want[i]
			}
			if err := dense.AccumulateColumn(want, j, sign); err != nil {
				t.Fatal(err)
			}
			// Column j of a CSR is row j of its transpose; for the
			// symmetric matrix both equal row j.
			tr.AccumulateFlip(got, j, sign)
			requireBitsEqual(t, "AccumulateFlip vs AccumulateColumn", want, got)

			want2 := append([]float64(nil), want...)
			got2 := append([]float64(nil), got...)
			if err := dense.AccumulateRow(want2, j, sign); err != nil {
				t.Fatal(err)
			}
			csr.AccumulateFlip(got2, j, sign)
			requireBitsEqual(t, "AccumulateFlip vs AccumulateRow", want2, got2)
		}
	}
}

// TestAccumulateFlipRangeCoversFlip checks that range-restricted
// patches over a disjoint partition of the output space compose to the
// full AccumulateFlip, for arbitrary cut points.
func TestAccumulateFlipRangeCoversFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	n := 50
	_, csr := randomSparseSym(t, n, 0.2, false, rng)
	for j := 0; j < n; j += 7 {
		want := make([]float64, n)
		got := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
			got[i] = want[i]
		}
		csr.AccumulateFlip(want, j, -1)
		cuts := []int{0, 1 + rng.Intn(n-1), n}
		sort.Ints(cuts)
		for k := 0; k+1 < len(cuts); k++ {
			csr.AccumulateFlipRange(got, j, -1, cuts[k], cuts[k+1])
		}
		requireBitsEqual(t, "range partition", want, got)
	}
}

// TestCSRBitsMatchesFloatGather pins the popcount kernel against the
// float binary gather on ±1 matrices, and its refusal on general ones.
func TestCSRBitsMatchesFloatGather(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(100)
		_, csr := randomSparseSym(t, n, 0.1, true, rng)
		bitsForm, ok := NewCSRBits(csr)
		if !ok {
			t.Fatal("±1 matrix rejected by NewCSRBits")
		}
		if bitsForm.Order() != n {
			t.Fatalf("order %d, want %d", bitsForm.Order(), n)
		}
		xb := randomBinary(rng, n)
		packed := NewBitVec(n)
		packed.Pack(xb)
		for i, v := range xb {
			if packed.Get(i) != (v != 0) {
				t.Fatalf("bit %d packed wrong", i)
			}
		}
		want := make([]float64, n)
		got := make([]float64, n)
		csr.ApplyBinary(xb, want)
		bitsForm.ApplyBinary(packed, got)
		requireBitsEqual(t, "CSRBits.ApplyBinary", want, got)
	}

	_, general := randomSparseSym(t, 20, 0.3, false, rng)
	if general.NNZ() == 0 {
		t.Fatal("test premise broken: empty matrix")
	}
	if _, ok := NewCSRBits(general); ok {
		t.Fatal("non-±1 matrix must be rejected")
	}
}

// TestGreedyColoringInvariant checks the coloring contract: classes
// partition the vertices, no two vertices of one class are adjacent,
// and the class count respects the degree bound.
func TestGreedyColoringInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(80)
		_, csr := randomSparseSym(t, n, 0.08, true, rng)
		classes := csr.GreedyColoring()
		seen := make([]int, n)
		maxDeg := 0
		for r := 0; r < n; r++ {
			if d := csr.rowPtr[r+1] - csr.rowPtr[r]; d > maxDeg {
				maxDeg = d
			}
		}
		if len(classes) > maxDeg+1 {
			t.Fatalf("%d classes for max degree %d", len(classes), maxDeg)
		}
		for ci, class := range classes {
			if !sort.IntsAreSorted(class) {
				t.Fatalf("class %d not sorted", ci)
			}
			for _, v := range class {
				seen[v]++
			}
			for _, v := range class {
				for _, u := range class {
					if u != v && csr.At(u, v) != 0 {
						t.Fatalf("class %d holds adjacent vertices %d,%d", ci, u, v)
					}
				}
			}
		}
		for v, count := range seen {
			if count != 1 {
				t.Fatalf("vertex %d colored %d times", v, count)
			}
		}
	}
}
