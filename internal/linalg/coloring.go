package linalg

// GreedyColoring partitions the vertices of the sparsity graph of a
// symmetric CSR matrix (vertices 0..n-1, an edge wherever A_ij ≠ 0,
// i ≠ j) into independent sets by first-fit greedy coloring in
// increasing vertex order. The invariant the colored-update runtime
// builds on: no two vertices in the same class are adjacent, so the
// spins of one class can update concurrently within a round without
// reading each other's fresh values. For a graph with maximum degree d
// at most d+1 classes are produced. Each class lists its vertices in
// increasing order; the classes themselves are ordered by first
// appearance. The result is a pure function of the sparsity pattern —
// no randomness — so it is identical across runs and worker counts.
func (c *CSR) GreedyColoring() [][]int {
	color := make([]int, c.n)
	for i := range color {
		color[i] = -1
	}
	// stamp[cc] == v marks color cc as used by a neighbor of v; a stamp
	// array avoids clearing a bitmap per vertex.
	var stamp []int
	var classes [][]int
	for v := 0; v < c.n; v++ {
		for k := c.rowPtr[v]; k < c.rowPtr[v+1]; k++ {
			u := c.colIdx[k]
			if u == v {
				continue // diagonal entries are not adjacency
			}
			if cu := color[u]; cu >= 0 {
				stamp[cu] = v + 1 // +1: zero value must not collide with v=0
			}
		}
		cc := 0
		for cc < len(stamp) && stamp[cc] == v+1 {
			cc++
		}
		if cc == len(stamp) {
			stamp = append(stamp, 0)
			classes = append(classes, nil)
		}
		color[v] = cc
		classes[cc] = append(classes[cc], v)
	}
	return classes
}
