package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// EigenSymTopK approximates the k algebraically largest eigenpairs of a
// symmetric matrix using the Lanczos iteration with full
// reorthogonalization. It returns eigenvalues in descending order with
// the matching Ritz vectors as columns.
//
// This enables approximate eigenvalue dropout for problems too large
// for the dense O(n³) solver: the PRIS transform is dominated by the
// largest shifted eigenvalues (the negative ones drop out at α=0), so a
// truncated expansion over the top-k pairs preserves the dynamics. The
// paper's host performs full preprocessing; this is the scalable
// alternative DESIGN.md lists as an extension.
//
// iters bounds the Krylov dimension; 0 picks min(n, 2k+30).
func EigenSymTopK(a *Matrix, k, iters int, seed int64) ([]float64, *Matrix, error) {
	op, err := AsOperator(a)
	if err != nil {
		return nil, nil, err
	}
	return EigenSymTopKOp(op, k, iters, seed)
}

// EigenSymTopKOp is EigenSymTopK over an abstract symmetric Operator,
// so sparse matrices (CSR) run the same Krylov iteration without
// densifying.
func EigenSymTopKOp(a Operator, k, iters int, seed int64) ([]float64, *Matrix, error) {
	n := a.Order()
	if k <= 0 || k > n {
		return nil, nil, fmt.Errorf("linalg: top-k %d outside [1,%d]", k, n)
	}
	if n == 0 {
		return nil, NewMatrix(0, 0), nil
	}
	m := iters
	if m == 0 {
		m = 2*k + 30
	}
	if m > n {
		m = n
	}
	if m < k {
		return nil, nil, fmt.Errorf("linalg: Krylov dimension %d below k=%d", m, k)
	}

	rng := rand.New(rand.NewSource(seed))
	// Lanczos basis vectors, kept for full reorthogonalization and for
	// assembling Ritz vectors.
	q := make([][]float64, 0, m+1)
	q0 := make([]float64, n)
	for i := range q0 {
		q0[i] = rng.NormFloat64()
	}
	normalize(q0)
	q = append(q, q0)

	alphas := make([]float64, 0, m)
	betas := make([]float64, 0, m)
	w := make([]float64, n)
	for j := 0; j < m; j++ {
		qj := q[j]
		a.Apply(qj, w)
		if j > 0 {
			bj := betas[j-1]
			prev := q[j-1]
			for i := range w {
				w[i] -= bj * prev[i]
			}
		}
		alpha := Dot(w, qj)
		alphas = append(alphas, alpha)
		for i := range w {
			w[i] -= alpha * qj[i]
		}
		// Full reorthogonalization keeps the basis numerically
		// orthogonal — O(n·j) per step, fine at the sizes we target.
		for _, qi := range q {
			d := Dot(w, qi)
			for i := range w {
				w[i] -= d * qi[i]
			}
		}
		beta := VecNorm2(w)
		if j == m-1 {
			break
		}
		if beta < 1e-12*(1+math.Abs(alpha)) {
			// Invariant subspace found: restart with a fresh random
			// direction orthogonal to the basis. The new block is
			// disconnected from the old one, so its coupling entry in
			// the tridiagonal matrix is zero (T becomes block diagonal).
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			for _, qi := range q {
				d := Dot(w, qi)
				for i := range w {
					w[i] -= d * qi[i]
				}
			}
			norm := VecNorm2(w)
			if norm < 1e-12 {
				break // the basis spans the whole space
			}
			betas = append(betas, 0)
			next := make([]float64, n)
			for i := range next {
				next[i] = w[i] / norm
			}
			q = append(q, next)
			continue
		}
		betas = append(betas, beta)
		next := make([]float64, n)
		for i := range next {
			next[i] = w[i] / beta
		}
		q = append(q, next)
	}

	// Diagonalize the tridiagonal Rayleigh quotient.
	dim := len(alphas)
	d := append([]float64(nil), alphas...)
	e := make([]float64, dim)
	copy(e[1:], betas)
	z := NewMatrix(dim, dim)
	for i := 0; i < dim; i++ {
		z.Set(i, i, 1)
	}
	if err := tqli(d, e, z); err != nil {
		return nil, nil, err
	}
	sortEigen(d, z) // ascending

	if k > dim {
		k = dim
	}
	values := make([]float64, k)
	vectors := NewMatrix(n, k)
	for c := 0; c < k; c++ {
		src := dim - 1 - c // descending pick
		values[c] = d[src]
		for j := 0; j < dim; j++ {
			zj := z.At(j, src)
			if zj == 0 {
				continue
			}
			qj := q[j]
			for i := 0; i < n; i++ {
				vectors.Add(i, c, zj*qj[i])
			}
		}
	}
	return values, vectors, nil
}

func normalize(v []float64) {
	norm := VecNorm2(v)
	if norm == 0 {
		return
	}
	for i := range v {
		v[i] /= norm
	}
}

// PRISTransformRank computes a rank-limited approximation of the PRIS
// transformation matrix using the top-rank eigenpairs from Lanczos:
//
//	C ≈ Σ_{top rank} 2·Re(√(λ+αΔ)) · u uᵀ
//
// At α=0 only positive eigenvalues contribute, so a truncation over the
// largest pairs captures exactly the surviving spectrum when rank covers
// the positive eigenvalues. Cost is O(rank·n²) instead of O(n³).
func PRISTransformRank(k *Matrix, alpha float64, rank int, seed int64) (*Matrix, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("linalg: PRISTransformRank alpha %v outside [0,1]", alpha)
	}
	values, vectors, err := EigenSymTopK(k, rank, 0, seed)
	if err != nil {
		return nil, err
	}
	delta, err := GershgorinRadius(k)
	if err != nil {
		return nil, err
	}
	return expandDropout(values, vectors, alpha, delta), nil
}

// expandDropout materializes C = Σ 2·Re(√(λ+αΔ))·u uᵀ over the given
// eigenpairs (descending), skipping dropped-out (non-positive shifted)
// eigenvalues, and symmetrizes the result.
func expandDropout(values []float64, vectors *Matrix, alpha, delta float64) *Matrix {
	n := vectors.Rows()
	c := NewMatrix(n, n)
	col := make([]float64, n)
	for e, lambda := range values {
		shifted := lambda + alpha*delta
		if shifted <= 0 {
			continue // dropped out (and everything below is smaller)
		}
		wgt := 2 * math.Sqrt(shifted)
		for i := 0; i < n; i++ {
			col[i] = vectors.At(i, e)
		}
		for i := 0; i < n; i++ {
			vi := col[i] * wgt
			if vi == 0 {
				continue
			}
			ci := c.Row(i)
			for j := 0; j < n; j++ {
				ci[j] += vi * col[j]
			}
		}
	}
	// Symmetrize away floating-point asymmetry.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			avg := (c.At(i, j) + c.At(j, i)) / 2
			c.Set(i, j, avg)
			c.Set(j, i, avg)
		}
	}
	return c
}

// PRISTransformRankSparse computes the rank-limited PRIS transform from
// a sparse coupling matrix without densifying it: the Lanczos iteration
// runs on the CSR operator and only the rank-k outer-product expansion
// materializes the (dense) result. Cost is O(rank·(nnz + n)) for the
// eigenpairs plus O(rank·n²) for the expansion.
func PRISTransformRankSparse(k *CSR, alpha float64, rank int, seed int64) (*Matrix, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("linalg: PRISTransformRankSparse alpha %v outside [0,1]", alpha)
	}
	values, vectors, err := EigenSymTopKOp(k, rank, 0, seed)
	if err != nil {
		return nil, err
	}
	return expandDropout(values, vectors, alpha, k.GershgorinRadius()), nil
}
