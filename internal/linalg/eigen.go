package linalg

import (
	"fmt"
	"math"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix:
// K = V * diag(values) * Vᵀ, with eigenvalues sorted ascending and the
// i-th column of V holding the eigenvector for values[i].
//
// The implementation is the classic two-stage dense symmetric solver:
// Householder reduction to tridiagonal form followed by the implicit QL
// algorithm with Wilkinson shifts. It is O(n³) and intended for the
// preprocessing step of the PRIS/SOPHIE pipeline, where the paper's host
// CPU performs the same work once per problem (Section II-C).
func EigenSym(k *Matrix) (values []float64, vectors *Matrix, err error) {
	n := k.rows
	if k.cols != n {
		return nil, nil, fmt.Errorf("%w: EigenSym needs a square matrix, got %dx%d", ErrDimensionMismatch, k.rows, k.cols)
	}
	if n == 0 {
		return nil, NewMatrix(0, 0), nil
	}
	if !k.IsSymmetric(1e-9 * (1 + k.MaxAbs())) {
		return nil, nil, fmt.Errorf("linalg: EigenSym requires a symmetric matrix")
	}

	a := k.Clone() // will be overwritten with the accumulated transform
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(a, d, e)
	if err := tqli(d, e, a); err != nil {
		return nil, nil, err
	}
	sortEigen(d, a)
	return d, a, nil
}

// tred2 reduces the symmetric matrix held in a to tridiagonal form using
// Householder transformations, accumulating the orthogonal transform in a.
// On return d holds the diagonal and e the subdiagonal (e[0] unused).
// This follows the standard EISPACK/Numerical Recipes formulation.
func tred2(a *Matrix, d, e []float64) {
	n := a.rows
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h := 0.0
		scale := 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(a.At(i, k))
			}
			if scale == 0 {
				e[i] = a.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					v := a.At(i, k) / scale
					a.Set(i, k, v)
					h += v * v
				}
				f := a.At(i, l)
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				a.Set(i, l, f-g)
				f = 0.0
				for j := 0; j <= l; j++ {
					a.Set(j, i, a.At(i, j)/h)
					g = 0.0
					for k := 0; k <= j; k++ {
						g += a.At(j, k) * a.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += a.At(k, j) * a.At(i, k)
					}
					e[j] = g / h
					f += e[j] * a.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = a.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						a.Add(j, k, -(f*e[k] + g*a.At(i, k)))
					}
				}
			}
		} else {
			e[i] = a.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0.0
	e[0] = 0.0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += a.At(i, k) * a.At(k, j)
				}
				for k := 0; k <= l; k++ {
					a.Add(k, j, -g*a.At(k, i))
				}
			}
		}
		d[i] = a.At(i, i)
		a.Set(i, i, 1.0)
		for j := 0; j <= l; j++ {
			a.Set(j, i, 0.0)
			a.Set(i, j, 0.0)
		}
	}
}

// tqli diagonalizes a symmetric tridiagonal matrix (diagonal d,
// subdiagonal e with e[0] unused) using the implicit QL method with
// shifts, accumulating the rotations into the columns of z. On return d
// holds the eigenvalues and column j of z the eigenvector for d[j].
func tqli(d, e []float64, z *Matrix) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0.0
	const maxIter = 50
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				//sophielint:ignore floateq deliberate machine-epsilon convergence test: e[m] has become negligible exactly when adding it does not change dd
				if math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter == maxIter {
				return fmt.Errorf("linalg: tqli failed to converge after %d iterations", maxIter)
			}
			g := (d[l+1] - d[l]) / (2.0 * e[l])
			r := math.Hypot(g, 1.0)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					// Underflow: deflate and restart this eigenvalue.
					d[i+1] -= p
					e[m] = 0.0
					underflow = i >= l
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2.0*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < z.rows; k++ {
					f = z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0.0
		}
	}
	return nil
}

// sortEigen sorts eigenvalues ascending, permuting the eigenvector
// columns of v to match. Selection sort keeps the column swaps simple and
// the O(n²) cost is negligible next to the O(n³) decomposition.
func sortEigen(d []float64, v *Matrix) {
	n := len(d)
	for i := 0; i < n-1; i++ {
		min := i
		for j := i + 1; j < n; j++ {
			if d[j] < d[min] {
				min = j
			}
		}
		if min != i {
			d[i], d[min] = d[min], d[i]
			for r := 0; r < v.rows; r++ {
				vi, vm := v.At(r, i), v.At(r, min)
				v.Set(r, i, vm)
				v.Set(r, min, vi)
			}
		}
	}
}

// ReconstructSym rebuilds V * diag(values) * Vᵀ, primarily for testing
// that an eigendecomposition round-trips to the original matrix.
func ReconstructSym(values []float64, vectors *Matrix) *Matrix {
	n := vectors.rows
	k := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for c := 0; c < n; c++ {
				sum += vectors.At(i, c) * values[c] * vectors.At(j, c)
			}
			k.Set(i, j, sum)
		}
	}
	return k
}
