package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestEigenSymTopKMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := randomSym(30, rng)
	dense, _, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	vals, vecs, err := EigenSymTopK(m, k, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != k || vecs.Cols() != k || vecs.Rows() != 30 {
		t.Fatalf("shapes: %d values, %dx%d vectors", len(vals), vecs.Rows(), vecs.Cols())
	}
	// Top-k descending must match the dense tail (ascending).
	for c := 0; c < k; c++ {
		want := dense[len(dense)-1-c]
		if !almostEqual(vals[c], want, 1e-6*(1+math.Abs(want))) {
			t.Fatalf("eigenvalue %d: %v, dense %v", c, vals[c], want)
		}
	}
	// Ritz vectors must satisfy A v ≈ λ v.
	for c := 0; c < k; c++ {
		v := make([]float64, 30)
		for i := range v {
			v[i] = vecs.At(i, c)
		}
		av, _ := m.MulVec(v, nil)
		for i := range av {
			if !almostEqual(av[i], vals[c]*v[i], 1e-5*(1+math.Abs(vals[c]))) {
				t.Fatalf("Ritz residual too large at pair %d component %d", c, i)
			}
		}
	}
}

func TestEigenSymTopKFullRankRecoversSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := randomSym(12, rng)
	dense, _, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := EigenSymTopK(m, 12, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range vals {
		want := dense[len(dense)-1-c]
		if !almostEqual(v, want, 1e-6*(1+math.Abs(want))) {
			t.Fatalf("full-rank Lanczos eigenvalue %d: %v vs %v", c, v, want)
		}
	}
}

func TestEigenSymTopKValidation(t *testing.T) {
	m := NewMatrix(4, 4)
	if _, _, err := EigenSymTopK(NewMatrix(2, 3), 1, 0, 1); err == nil {
		t.Fatal("non-square must be rejected")
	}
	if _, _, err := EigenSymTopK(m, 0, 0, 1); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, _, err := EigenSymTopK(m, 5, 0, 1); err == nil {
		t.Fatal("k>n must be rejected")
	}
	if _, _, err := EigenSymTopK(m, 3, 2, 1); err == nil {
		t.Fatal("iters<k must be rejected")
	}
}

func TestEigenSymTopKDegenerateMatrix(t *testing.T) {
	// Identity: every direction is an eigenvector with eigenvalue 1; the
	// invariant-subspace restart path must terminate.
	n := 8
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	vals, _, err := EigenSymTopK(m, 3, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if !almostEqual(v, 1, 1e-9) {
			t.Fatalf("identity eigenvalues %v", vals)
		}
	}
}

func TestPRISTransformRankApproximatesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	m := randomSym(24, rng)
	full, err := PRISTransform(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Count positive eigenvalues: with rank covering them, the α=0
	// transform is exact up to Lanczos accuracy.
	dense, _, _ := EigenSym(m)
	positives := 0
	for _, v := range dense {
		if v > 0 {
			positives++
		}
	}
	approx, err := PRISTransformRank(m, 0, positives, 4)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range full.Data() {
		if d := math.Abs(full.Data()[i] - approx.Data()[i]); d > diff {
			diff = d
		}
	}
	if diff > 1e-5*(1+full.MaxAbs()) {
		t.Fatalf("rank-%d transform differs from full by %v", positives, diff)
	}
}

func TestPRISTransformRankTruncationDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := randomSym(24, rng)
	full, err := PRISTransform(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	prevErr := math.Inf(1)
	for _, rank := range []int{2, 6, 12} {
		approx, err := PRISTransformRank(m, 0, rank, 4)
		if err != nil {
			t.Fatal(err)
		}
		frob := 0.0
		for i := range full.Data() {
			d := full.Data()[i] - approx.Data()[i]
			frob += d * d
		}
		frob = math.Sqrt(frob)
		if frob > prevErr+1e-9 {
			t.Fatalf("rank %d increased error: %v -> %v", rank, prevErr, frob)
		}
		prevErr = frob
	}
}

func TestPRISTransformRankValidation(t *testing.T) {
	m := NewMatrix(4, 4)
	if _, err := PRISTransformRank(m, -0.5, 2, 1); err == nil {
		t.Fatal("bad alpha must be rejected")
	}
	if _, err := PRISTransformRank(m, 0, 0, 1); err == nil {
		t.Fatal("bad rank must be rejected")
	}
}

func BenchmarkEigenSymTopK256(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	m := randomSym(256, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigenSymTopK(m, 16, 0, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
