// Package linalg provides the dense linear algebra substrate used by the
// PRIS and SOPHIE Ising solvers: row-major dense matrices, matrix-vector
// products (including transposed products, mirroring the bi-directional
// OPCM arrays), and a symmetric eigensolver used by the eigenvalue-dropout
// preprocessing step (Eq. 2-4 of the paper).
//
// Everything here is pure Go over float64 slices; there are no external
// numerical dependencies. The solvers in internal/pris and internal/core
// consume matrices through this package, and internal/opcm layers a
// quantized, noisy device model on top of the same representation.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Matrices are mutable; methods
// that return a new matrix say so explicitly, all others modify or read
// the receiver in place.
type Matrix struct {
	rows, cols int
	data       []float64
	// mirror caches the column-major mirror (the transpose) built by
	// ColMirror, so column gathers and transposed products stream
	// unit-stride. Set, Add, and Scale invalidate it; writes through
	// Row or Data do not (see ColMirror).
	mirror *Matrix
}

// NewMatrix returns a zeroed rows x cols matrix.
// It panics if either dimension is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFrom returns a rows x cols matrix backed by a copy of data,
// interpreted in row-major order. It returns an error if len(data)
// does not equal rows*cols.
func NewMatrixFrom(rows, cols int, data []float64) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("linalg: invalid matrix dimensions %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("linalg: data length %d does not match %dx%d", len(data), rows, cols)
	}
	d := make([]float64, len(data))
	copy(d, data)
	return &Matrix{rows: rows, cols: cols, data: d}, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.mirror = nil
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) {
	m.mirror = nil
	m.data[i*m.cols+j] += v
}

// Row returns the i-th row as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the backing row-major slice. Mutating it mutates the matrix.
func (m *Matrix) Data() []float64 { return m.data }

// Clone returns a deep copy of the matrix. The column-major mirror
// cache is not cloned; the copy rebuilds it lazily on first use.
func (m *Matrix) Clone() *Matrix {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Matrix{rows: m.rows, cols: m.cols, data: d}
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute value of any element, or 0 for an
// empty matrix.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	sum := 0.0
	for _, v := range m.data {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Scale multiplies every element of m by f in place.
func (m *Matrix) Scale(f float64) {
	m.mirror = nil
	for i := range m.data {
		m.data[i] *= f
	}
}

// ErrDimensionMismatch is returned when operand shapes are incompatible.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// MulVec computes y = m*x. If y is non-nil it must have length m.Rows()
// and is overwritten and returned; otherwise a new slice is allocated.
func (m *Matrix) MulVec(x, y []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("%w: MulVec x has length %d, want %d", ErrDimensionMismatch, len(x), m.cols)
	}
	if y == nil {
		y = make([]float64, m.rows)
	} else if len(y) != m.rows {
		return nil, fmt.Errorf("%w: MulVec y has length %d, want %d", ErrDimensionMismatch, len(y), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		sum := 0.0
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
	return y, nil
}

// MulVecT computes y = mᵀ*x, the transposed matrix-vector product.
// This mirrors the bi-directional OPCM array, which can multiply by the
// stored matrix or its transpose without reprogramming (Eq. 8-9).
// If y is non-nil it must have length m.Cols() and is overwritten.
func (m *Matrix) MulVecT(x, y []float64) ([]float64, error) {
	if len(x) != m.rows {
		return nil, fmt.Errorf("%w: MulVecT x has length %d, want %d", ErrDimensionMismatch, len(x), m.rows)
	}
	if y == nil {
		y = make([]float64, m.cols)
	} else if len(y) != m.cols {
		return nil, fmt.Errorf("%w: MulVecT y has length %d, want %d", ErrDimensionMismatch, len(y), m.cols)
	}
	for j := range y {
		y[j] = 0
	}
	// Row-major friendly accumulation: stream rows, scale by x[i].
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y, nil
}

// Mul returns the product a*b as a new matrix.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: Mul %dx%d by %dx%d", ErrDimensionMismatch, a.rows, a.cols, b.rows, b.cols)
	}
	c := NewMatrix(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c, nil
}

// SubMatrix returns a copy of the block of m with rows [r0,r1) and
// columns [c0,c1). Out-of-range rows/columns are clipped to the matrix;
// regions entirely outside yield zero-filled entries, which supports the
// zero-padded edge tiles used by the tiled solver.
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	if r1 < r0 || c1 < c0 {
		panic(fmt.Sprintf("linalg: invalid submatrix bounds [%d,%d)x[%d,%d)", r0, r1, c0, c1))
	}
	s := NewMatrix(r1-r0, c1-c0)
	for i := r0; i < r1 && i < m.rows; i++ {
		if i < 0 {
			continue
		}
		src := m.Row(i)
		dst := s.Row(i - r0)
		for j := c0; j < c1 && j < m.cols; j++ {
			if j < 0 {
				continue
			}
			dst[j-c0] = src[j]
		}
	}
	return s
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	sum := 0.0
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// VecNorm2 returns the Euclidean norm of v.
func VecNorm2(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// AddVec stores a+b into dst (allocating when dst is nil) and returns dst.
func AddVec(dst, a, b []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(a))
	}
	for i := range a {
		dst[i] = a[i] + b[i]
	}
	return dst
}
