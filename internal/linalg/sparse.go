package linalg

import (
	"fmt"
	"sort"
)

// Operator is a symmetric linear operator, the abstraction iterative
// methods (Lanczos) need: GSET-style graphs are ~1% dense, so their
// coupling matrices should not be densified just to run the rank-k
// preprocessing.
type Operator interface {
	// Order returns the dimension n of the operator.
	Order() int
	// Apply computes y = A·x; len(x) == len(y) == Order().
	Apply(x, y []float64)
}

// denseOperator adapts a square Matrix to Operator.
type denseOperator struct{ m *Matrix }

func (d denseOperator) Order() int { return d.m.Rows() }
func (d denseOperator) Apply(x, y []float64) {
	if _, err := d.m.MulVec(x, y); err != nil {
		panic(err) // caller guarantees shapes
	}
}

// AsOperator wraps a square matrix as an Operator.
func AsOperator(m *Matrix) (Operator, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("%w: AsOperator needs a square matrix", ErrDimensionMismatch)
	}
	return denseOperator{m}, nil
}

// CSR is a compressed-sparse-row symmetric matrix. Both triangles are
// stored so Apply is a plain row scan.
type CSR struct {
	n      int
	rowPtr []int
	colIdx []int
	vals   []float64
}

// Entry is one (row, col, value) coordinate for CSR construction.
type Entry struct {
	Row, Col int
	Val      float64
}

// NewCSRSym builds a symmetric CSR matrix of order n from upper- or
// lower-triangle entries: each off-diagonal entry (r,c,v) also inserts
// (c,r,v). Duplicate coordinates are summed. Zero values are dropped.
func NewCSRSym(n int, entries []Entry) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("linalg: negative CSR order %d", n)
	}
	type coord struct{ r, c int }
	acc := make(map[coord]float64, 2*len(entries))
	for _, e := range entries {
		if e.Row < 0 || e.Row >= n || e.Col < 0 || e.Col >= n {
			return nil, fmt.Errorf("linalg: CSR entry (%d,%d) out of range for order %d", e.Row, e.Col, n)
		}
		acc[coord{e.Row, e.Col}] += e.Val
		if e.Row != e.Col {
			acc[coord{e.Col, e.Row}] += e.Val
		}
	}
	perRow := make([][]Entry, n)
	nnz := 0
	for k, v := range acc {
		if v == 0 {
			continue
		}
		perRow[k.r] = append(perRow[k.r], Entry{k.r, k.c, v})
		nnz++
	}
	m := &CSR{
		n:      n,
		rowPtr: make([]int, n+1),
		colIdx: make([]int, 0, nnz),
		vals:   make([]float64, 0, nnz),
	}
	for r := 0; r < n; r++ {
		row := perRow[r]
		sort.Slice(row, func(i, j int) bool { return row[i].Col < row[j].Col })
		for _, e := range row {
			m.colIdx = append(m.colIdx, e.Col)
			m.vals = append(m.vals, e.Val)
		}
		m.rowPtr[r+1] = len(m.colIdx)
	}
	return m, nil
}

// NewCSRFromDense converts a symmetric dense matrix to CSR.
func NewCSRFromDense(m *Matrix) (*CSR, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("%w: NewCSRFromDense needs a square matrix", ErrDimensionMismatch)
	}
	var entries []Entry
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for j := i; j < m.Cols(); j++ {
			if row[j] != 0 {
				entries = append(entries, Entry{i, j, row[j]})
			}
		}
	}
	return NewCSRSym(m.Rows(), entries)
}

// Order implements Operator.
func (c *CSR) Order() int { return c.n }

// NNZ returns the stored non-zero count (both triangles).
func (c *CSR) NNZ() int { return len(c.vals) }

// Apply implements Operator: y = A·x.
func (c *CSR) Apply(x, y []float64) {
	if len(x) != c.n || len(y) != c.n {
		panic(fmt.Sprintf("linalg: CSR.Apply got %d/%d for order %d", len(x), len(y), c.n))
	}
	for r := 0; r < c.n; r++ {
		sum := 0.0
		for k := c.rowPtr[r]; k < c.rowPtr[r+1]; k++ {
			sum += c.vals[k] * x[c.colIdx[k]]
		}
		y[r] = sum
	}
}

// At returns element (i,j) by scanning row i (O(log nnz_row)).
func (c *CSR) At(i, j int) float64 {
	lo, hi := c.rowPtr[i], c.rowPtr[i+1]
	k := lo + sort.SearchInts(c.colIdx[lo:hi], j)
	if k < hi && c.colIdx[k] == j {
		return c.vals[k]
	}
	return 0
}

// GershgorinRadiusOp is the sparse counterpart of GershgorinRadius:
// max_i Σ_{j≠i} |A_ij|.
func (c *CSR) GershgorinRadius() float64 {
	max := 0.0
	for r := 0; r < c.n; r++ {
		sum := 0.0
		for k := c.rowPtr[r]; k < c.rowPtr[r+1]; k++ {
			if c.colIdx[k] == r {
				continue
			}
			if v := c.vals[k]; v < 0 {
				sum -= v
			} else {
				sum += v
			}
		}
		if sum > max {
			max = sum
		}
	}
	return max
}
