package linalg

import (
	"fmt"
	"sort"
)

// Operator is a symmetric linear operator, the abstraction iterative
// methods (Lanczos) need: GSET-style graphs are ~1% dense, so their
// coupling matrices should not be densified just to run the rank-k
// preprocessing.
type Operator interface {
	// Order returns the dimension n of the operator.
	Order() int
	// Apply computes y = A·x; len(x) == len(y) == Order().
	Apply(x, y []float64)
}

// denseOperator adapts a square Matrix to Operator.
type denseOperator struct{ m *Matrix }

func (d denseOperator) Order() int { return d.m.Rows() }
func (d denseOperator) Apply(x, y []float64) {
	if _, err := d.m.MulVec(x, y); err != nil {
		panic(err) // caller guarantees shapes
	}
}

// AsOperator wraps a square matrix as an Operator.
func AsOperator(m *Matrix) (Operator, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("%w: AsOperator needs a square matrix", ErrDimensionMismatch)
	}
	return denseOperator{m}, nil
}

// CSR is a compressed-sparse-row square matrix. Every row's column
// indices are stored in increasing order, which is what makes the
// kernels in sparsekernels.go bit-identical to their dense
// counterparts: per output element they accumulate the same non-zero
// terms in the same index order. Symmetric constructions (NewCSRSym)
// store both triangles so Apply is a plain row scan; NewCSRGeneral
// builds arbitrary square blocks (the tiling layer's off-diagonal
// tiles).
type CSR struct {
	n      int
	rowPtr []int
	colIdx []int
	vals   []float64
}

// Entry is one (row, col, value) coordinate for CSR construction.
type Entry struct {
	Row, Col int
	Val      float64
}

// NewCSRSym builds a symmetric CSR matrix of order n from upper- or
// lower-triangle entries: each off-diagonal entry (r,c,v) also inserts
// (c,r,v). Duplicate coordinates are summed. Zero values are dropped.
//
// Construction is a sort-and-merge build: the mirrored entry list is
// sorted by (row, col) with a stable sort and adjacent duplicates are
// summed in input order — the same accumulation order the previous
// map-based build used, without the map's allocation cost, which
// dominated million-edge constructions now that CSR sits on the hot
// solve path.
func NewCSRSym(n int, entries []Entry) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("linalg: negative CSR order %d", n)
	}
	all := make([]Entry, 0, 2*len(entries))
	for _, e := range entries {
		if e.Row < 0 || e.Row >= n || e.Col < 0 || e.Col >= n {
			return nil, fmt.Errorf("linalg: CSR entry (%d,%d) out of range for order %d", e.Row, e.Col, n)
		}
		all = append(all, e)
		if e.Row != e.Col {
			all = append(all, Entry{Row: e.Col, Col: e.Row, Val: e.Val})
		}
	}
	return buildCSR(n, all), nil
}

// NewCSRGeneral builds a square CSR matrix of order n from coordinate
// entries without symmetrization: only the listed coordinates are
// stored. Duplicate coordinates are summed in input order; zero sums
// are dropped. The tiling layer uses it for the off-diagonal tile
// blocks of a symmetric matrix, which are square but not symmetric.
func NewCSRGeneral(n int, entries []Entry) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("linalg: negative CSR order %d", n)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= n || e.Col < 0 || e.Col >= n {
			return nil, fmt.Errorf("linalg: CSR entry (%d,%d) out of range for order %d", e.Row, e.Col, n)
		}
	}
	return buildCSR(n, append([]Entry(nil), entries...)), nil
}

// buildCSR assembles a CSR from validated entries: stable-sort by
// (row, col), sum adjacent duplicates (stability keeps the summation in
// input order, so duplicate handling rounds exactly as the old
// map-accumulator build did), drop zero sums. It takes ownership of
// entries and reorders it.
func buildCSR(n int, entries []Entry) *CSR {
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Row != entries[j].Row {
			return entries[i].Row < entries[j].Row
		}
		return entries[i].Col < entries[j].Col
	})
	m := &CSR{
		n:      n,
		rowPtr: make([]int, n+1),
		colIdx: make([]int, 0, len(entries)),
		vals:   make([]float64, 0, len(entries)),
	}
	for k := 0; k < len(entries); {
		r, c, v := entries[k].Row, entries[k].Col, entries[k].Val
		k++
		for k < len(entries) && entries[k].Row == r && entries[k].Col == c {
			v += entries[k].Val
			k++
		}
		if v == 0 {
			continue
		}
		m.colIdx = append(m.colIdx, c)
		m.vals = append(m.vals, v)
		m.rowPtr[r+1]++
	}
	for r := 0; r < n; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m
}

// NewCSRFromDense converts a symmetric dense matrix to CSR.
func NewCSRFromDense(m *Matrix) (*CSR, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("%w: NewCSRFromDense needs a square matrix", ErrDimensionMismatch)
	}
	var entries []Entry
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for j := i; j < m.Cols(); j++ {
			if row[j] != 0 {
				entries = append(entries, Entry{i, j, row[j]})
			}
		}
	}
	return NewCSRSym(m.Rows(), entries)
}

// Order implements Operator.
func (c *CSR) Order() int { return c.n }

// NNZ returns the stored non-zero count (both triangles).
func (c *CSR) NNZ() int { return len(c.vals) }

// Density returns NNZ / n², the stored fraction of the dense matrix —
// the quantity the solver compares against its sparse-selection
// threshold.
func (c *CSR) Density() float64 {
	if c.n == 0 {
		return 0
	}
	return float64(len(c.vals)) / (float64(c.n) * float64(c.n))
}

// Transpose returns a newly allocated Aᵀ. Each result row keeps its
// column indices in increasing order (column j of A is visited in
// increasing row order), preserving the ordered-row invariant the
// bit-identity contract of the kernels depends on.
func (c *CSR) Transpose() *CSR {
	t := &CSR{
		n:      c.n,
		rowPtr: make([]int, c.n+1),
		colIdx: make([]int, len(c.colIdx)),
		vals:   make([]float64, len(c.vals)),
	}
	for _, j := range c.colIdx {
		t.rowPtr[j+1]++
	}
	for r := 0; r < c.n; r++ {
		t.rowPtr[r+1] += t.rowPtr[r]
	}
	next := append([]int(nil), t.rowPtr[:c.n]...)
	for r := 0; r < c.n; r++ {
		for k := c.rowPtr[r]; k < c.rowPtr[r+1]; k++ {
			j := c.colIdx[k]
			p := next[j]
			next[j]++
			t.colIdx[p] = r
			t.vals[p] = c.vals[k]
		}
	}
	return t
}

// Apply implements Operator: y = A·x.
func (c *CSR) Apply(x, y []float64) {
	if len(x) != c.n || len(y) != c.n {
		panic(fmt.Sprintf("linalg: CSR.Apply got %d/%d for order %d", len(x), len(y), c.n))
	}
	for r := 0; r < c.n; r++ {
		sum := 0.0
		for k := c.rowPtr[r]; k < c.rowPtr[r+1]; k++ {
			sum += c.vals[k] * x[c.colIdx[k]]
		}
		y[r] = sum
	}
}

// Scan calls fn for every stored entry in row-major, increasing-column
// order — the iteration primitive layers above use to re-bucket entries
// (tile decomposition) without reaching into the representation.
func (c *CSR) Scan(fn func(i, j int, v float64)) {
	for r := 0; r < c.n; r++ {
		for k := c.rowPtr[r]; k < c.rowPtr[r+1]; k++ {
			fn(r, c.colIdx[k], c.vals[k])
		}
	}
}

// ScanRow calls fn for every stored entry of row i in increasing-column
// order.
func (c *CSR) ScanRow(i int, fn func(j int, v float64)) {
	for k := c.rowPtr[i]; k < c.rowPtr[i+1]; k++ {
		fn(c.colIdx[k], c.vals[k])
	}
}

// At returns element (i,j) by scanning row i (O(log nnz_row)).
func (c *CSR) At(i, j int) float64 {
	lo, hi := c.rowPtr[i], c.rowPtr[i+1]
	k := lo + sort.SearchInts(c.colIdx[lo:hi], j)
	if k < hi && c.colIdx[k] == j {
		return c.vals[k]
	}
	return 0
}

// GershgorinRadius is the sparse counterpart of the dense
// GershgorinRadius: max_i Σ_{j≠i} |A_ij|.
func (c *CSR) GershgorinRadius() float64 {
	max := 0.0
	for r := 0; r < c.n; r++ {
		sum := 0.0
		for k := c.rowPtr[r]; k < c.rowPtr[r+1]; k++ {
			if c.colIdx[k] == r {
				continue
			}
			if v := c.vals[k]; v < 0 {
				sum -= v
			} else {
				sum += v
			}
		}
		if sum > max {
			max = sum
		}
	}
	return max
}
