package linalg

import "fmt"

// This file holds the binary-input and incremental (delta) MVM kernels
// behind SOPHIE's flip-aware fast path. The spin vectors the solver
// multiplies are {0,1}-valued and change in only a handful of positions
// between consecutive local iterations, so the dense t×t product can be
// replaced by column gathers (MulVecBinary) and per-flip column
// accumulations (AccumulateColumn/AccumulateRow).
//
// Bit-exactness contract: for a {0,1} input vector, MulVecBinary and
// MulVecBinaryT return results bit-identical to MulVec and MulVecT.
// Each output element accumulates the same non-zero terms in the same
// index order; the skipped terms are exact IEEE-754 zeros (v·0 is ±0),
// and adding ±0 to an accumulator that starts at +0 and is produced by
// round-to-nearest additions can never change its bits (the accumulator
// is never -0: +0 + (-0) = +0, and exact cancellation of non-zero terms
// rounds to +0). Multiplication by 1.0 is exact, so dropping it is also
// bit-neutral. AccumulateColumn/AccumulateRow, by contrast, re-order
// additions relative to a from-scratch product and therefore drift by
// ulps; callers bound the drift with periodic full recomputation.

// ColMirror returns the cached column-major mirror of m — a matrix
// whose row j is column j of m — building it on first use. It lets
// column gathers and transposed products stream unit-stride. Set, Add,
// and Scale invalidate the cache; writes through the aliasing Row or
// Data slices do not, so callers that mutate storage directly must not
// mix in mirror-based kernels afterwards. The returned matrix aliases
// the cache: callers must not modify it.
func (m *Matrix) ColMirror() *Matrix {
	if m.mirror == nil {
		m.mirror = m.Transpose()
	}
	return m.mirror
}

// MulVecBinary computes y = m·x for a {0,1} input vector by gathering
// the columns selected by the non-zero entries of x (any non-zero entry
// is treated as 1). For binary x the result is bit-identical to MulVec
// (see the contract at the top of this file) while performing only
// additions, roughly halving the work at the ~50% spin density the
// solver sees. If y is nil a new slice is allocated; otherwise it must
// have length m.Rows() and is overwritten.
func (m *Matrix) MulVecBinary(x, y []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("%w: MulVecBinary x has length %d, want %d", ErrDimensionMismatch, len(x), m.cols)
	}
	if y == nil {
		y = make([]float64, m.rows)
	} else if len(y) != m.rows {
		return nil, fmt.Errorf("%w: MulVecBinary y has length %d, want %d", ErrDimensionMismatch, len(y), m.rows)
	}
	for i := range y {
		y[i] = 0
	}
	mir := m.ColMirror()
	for j, xj := range x {
		if xj == 0 {
			continue
		}
		col := mir.Row(j)
		for i, v := range col {
			y[i] += v
		}
	}
	return y, nil
}

// MulVecBinaryT computes y = mᵀ·x for a {0,1} input vector (any
// non-zero entry is treated as 1). Rows of a row-major matrix are
// already unit-stride, so no mirror is needed; the result is
// bit-identical to MulVecT for binary x. If y is nil a new slice is
// allocated; otherwise it must have length m.Cols() and is overwritten.
func (m *Matrix) MulVecBinaryT(x, y []float64) ([]float64, error) {
	if len(x) != m.rows {
		return nil, fmt.Errorf("%w: MulVecBinaryT x has length %d, want %d", ErrDimensionMismatch, len(x), m.rows)
	}
	if y == nil {
		y = make([]float64, m.cols)
	} else if len(y) != m.cols {
		return nil, fmt.Errorf("%w: MulVecBinaryT y has length %d, want %d", ErrDimensionMismatch, len(y), m.cols)
	}
	for j := range y {
		y[j] = 0
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += v
		}
	}
	return y, nil
}

// AccumulateColumn applies y += sign · m[:,j] in place — the
// incremental update for "input element j changed by sign" on a product
// y = m·x. The column streams unit-stride through the cached
// column-major mirror. sign values of exactly ±1 take a multiply-free
// path that is bit-identical to the general one. len(y) must equal
// m.Rows().
func (m *Matrix) AccumulateColumn(y []float64, j int, sign float64) error {
	if len(y) != m.rows {
		return fmt.Errorf("%w: AccumulateColumn y has length %d, want %d", ErrDimensionMismatch, len(y), m.rows)
	}
	if j < 0 || j >= m.cols {
		return fmt.Errorf("%w: AccumulateColumn column %d outside [0,%d)", ErrDimensionMismatch, j, m.cols)
	}
	col := m.ColMirror().Row(j)
	accumulate(y, col, sign)
	return nil
}

// AccumulateRow applies y += sign · m[i,:] in place — the incremental
// update for "input element i changed by sign" on a transposed product
// y = mᵀ·x (column i of mᵀ is row i of m, already unit-stride). len(y)
// must equal m.Cols().
func (m *Matrix) AccumulateRow(y []float64, i int, sign float64) error {
	if len(y) != m.cols {
		return fmt.Errorf("%w: AccumulateRow y has length %d, want %d", ErrDimensionMismatch, len(y), m.cols)
	}
	if i < 0 || i >= m.rows {
		return fmt.Errorf("%w: AccumulateRow row %d outside [0,%d)", ErrDimensionMismatch, i, m.rows)
	}
	accumulate(y, m.Row(i), sign)
	return nil
}

// accumulate applies y += sign·src. The ±1 fast paths are bit-identical
// to the general multiply (1·v and -1·v are exact).
func accumulate(y, src []float64, sign float64) {
	switch sign {
	case 1:
		for i, v := range src {
			y[i] += v
		}
	case -1:
		for i, v := range src {
			y[i] -= v
		}
	default:
		for i, v := range src {
			y[i] += sign * v
		}
	}
}
