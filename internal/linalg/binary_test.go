package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	return m
}

func randomBinary(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		if rng.Intn(2) == 1 {
			x[i] = 1
		}
	}
	return x
}

// TestMulVecBinaryBitIdentical pins the bit-exactness contract: for
// {0,1} inputs (including all-zeros and all-ones), the binary kernels
// must reproduce the dense kernels bit for bit on random rectangular
// matrices.
func TestMulVecBinaryBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		m := randomMatrix(rng, rows, cols)
		inputs := [][]float64{
			randomBinary(rng, cols),
			make([]float64, cols), // all zeros
		}
		ones := make([]float64, cols)
		for i := range ones {
			ones[i] = 1
		}
		inputs = append(inputs, ones)
		for _, x := range inputs {
			want, err := m.MulVec(x, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.MulVecBinary(x, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("trial %d: MulVecBinary[%d] = %v bits differ from MulVec %v", trial, i, got[i], want[i])
				}
			}
		}
		// Transposed kernel against MulVecT.
		for _, x := range [][]float64{randomBinary(rng, rows), make([]float64, rows)} {
			want, err := m.MulVecT(x, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.MulVecBinaryT(x, nil)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
					t.Fatalf("trial %d: MulVecBinaryT[%d] = %v bits differ from MulVecT %v", trial, j, got[j], want[j])
				}
			}
		}
	}
}

// TestAccumulateDeltaTracksDense drives a product through long random
// flip sequences via AccumulateColumn/AccumulateRow and checks the
// running accumulator stays within float tolerance of a from-scratch
// dense product of the current vector.
func TestAccumulateDeltaTracksDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows := 2 + rng.Intn(30)
		cols := 2 + rng.Intn(30)
		m := randomMatrix(rng, rows, cols)

		x := randomBinary(rng, cols)
		y, err := m.MulVecBinary(x, nil)
		if err != nil {
			t.Fatal(err)
		}
		xt := randomBinary(rng, rows)
		yt, err := m.MulVecBinaryT(xt, nil)
		if err != nil {
			t.Fatal(err)
		}

		for step := 0; step < 100; step++ {
			j := rng.Intn(cols)
			sign := 1.0 - 2.0*x[j] // 0→1 adds, 1→0 subtracts
			x[j] = 1 - x[j]
			if err := m.AccumulateColumn(y, j, sign); err != nil {
				t.Fatal(err)
			}
			i := rng.Intn(rows)
			signT := 1.0 - 2.0*xt[i]
			xt[i] = 1 - xt[i]
			if err := m.AccumulateRow(yt, i, signT); err != nil {
				t.Fatal(err)
			}
		}
		want, _ := m.MulVec(x, nil)
		for i := range want {
			if math.Abs(want[i]-y[i]) > 1e-9 {
				t.Fatalf("trial %d: delta-tracked y[%d]=%v, dense %v", trial, i, y[i], want[i])
			}
		}
		wantT, _ := m.MulVecT(xt, nil)
		for j := range wantT {
			if math.Abs(wantT[j]-yt[j]) > 1e-9 {
				t.Fatalf("trial %d: delta-tracked yt[%d]=%v, dense %v", trial, j, yt[j], wantT[j])
			}
		}
	}
}

// TestAccumulateSignedMagnitudes exercises the non-±1 sign path.
func TestAccumulateSignedMagnitudes(t *testing.T) {
	m, err := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{0, 0}
	if err := m.AccumulateColumn(y, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if y[0] != 1 || y[1] != 2 {
		t.Fatalf("half column accumulate gave %v", y)
	}
	yr := []float64{0, 0}
	if err := m.AccumulateRow(yr, 0, 2); err != nil {
		t.Fatal(err)
	}
	if yr[0] != 2 || yr[1] != 4 {
		t.Fatalf("doubled row accumulate gave %v", yr)
	}
}

// TestColMirrorInvalidation verifies the cached mirror is rebuilt after
// Set/Add/Scale so mirror-based kernels never read stale data.
func TestColMirrorInvalidation(t *testing.T) {
	m, err := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ColMirror().At(0, 1); got != 3 {
		t.Fatalf("mirror(0,1)=%v, want 3", got)
	}
	m.Set(1, 0, 30)
	if got := m.ColMirror().At(0, 1); got != 30 {
		t.Fatalf("mirror not invalidated by Set: got %v, want 30", got)
	}
	m.Add(1, 0, 1)
	if got := m.ColMirror().At(0, 1); got != 31 {
		t.Fatalf("mirror not invalidated by Add: got %v, want 31", got)
	}
	m.Scale(2)
	if got := m.ColMirror().At(0, 1); got != 62 {
		t.Fatalf("mirror not invalidated by Scale: got %v, want 62", got)
	}
}

// TestBinaryKernelShapeErrors pins the error paths.
func TestBinaryKernelShapeErrors(t *testing.T) {
	m := NewMatrix(3, 2)
	if _, err := m.MulVecBinary(make([]float64, 3), nil); err == nil {
		t.Fatal("wrong x length accepted")
	}
	if _, err := m.MulVecBinary(make([]float64, 2), make([]float64, 2)); err == nil {
		t.Fatal("wrong y length accepted")
	}
	if _, err := m.MulVecBinaryT(make([]float64, 2), nil); err == nil {
		t.Fatal("wrong transposed x length accepted")
	}
	if _, err := m.MulVecBinaryT(make([]float64, 3), make([]float64, 3)); err == nil {
		t.Fatal("wrong transposed y length accepted")
	}
	if err := m.AccumulateColumn(make([]float64, 2), 0, 1); err == nil {
		t.Fatal("wrong AccumulateColumn y length accepted")
	}
	if err := m.AccumulateColumn(make([]float64, 3), 5, 1); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if err := m.AccumulateRow(make([]float64, 3), 0, 1); err == nil {
		t.Fatal("wrong AccumulateRow y length accepted")
	}
	if err := m.AccumulateRow(make([]float64, 2), -1, 1); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

func BenchmarkMulVec64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 64, 64)
	x := randomBinary(rng, 64)
	y := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MulVec(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulVecBinary64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 64, 64)
	m.ColMirror() // build the cache outside the timed loop
	x := randomBinary(rng, 64)
	y := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MulVecBinary(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccumulateColumn64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 64, 64)
	m.ColMirror()
	y := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.AccumulateColumn(y, i%64, 1); err != nil {
			b.Fatal(err)
		}
	}
}
