package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomSym(n int, rng *rand.Rand) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) not zero", i, j)
			}
		}
	}
}

func TestNewMatrixFrom(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m, err := NewMatrixFrom(2, 3, data)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 2) != 3 || m.At(1, 0) != 4 {
		t.Fatalf("row-major layout broken: %v", m.Data())
	}
	// Must copy, not alias.
	data[0] = 99
	if m.At(0, 0) == 99 {
		t.Fatal("NewMatrixFrom aliased the input slice")
	}
}

func TestNewMatrixFromBadLength(t *testing.T) {
	if _, err := NewMatrixFrom(2, 3, []float64{1, 2}); err == nil {
		t.Fatal("expected error for mismatched data length")
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	NewMatrix(-1, 2)
}

func TestSetAtAdd(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 0, 2.5)
	m.Add(1, 0, 0.5)
	if m.At(1, 0) != 3.0 {
		t.Fatalf("got %v, want 3.0", m.At(1, 0))
	}
}

func TestRowAliases(t *testing.T) {
	m := NewMatrix(2, 3)
	r := m.Row(1)
	r[2] = 7
	if m.At(1, 2) != 7 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	m, _ := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1})
	if !m.IsSymmetric(0) {
		t.Fatal("matrix should be symmetric")
	}
	m.Set(0, 1, 3)
	if m.IsSymmetric(0.5) {
		t.Fatal("matrix should not be symmetric within 0.5")
	}
	rect := NewMatrix(2, 3)
	if rect.IsSymmetric(1) {
		t.Fatal("rectangular matrix cannot be symmetric")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y, err := m.MulVec([]float64{1, 1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec got %v, want [6 15]", y)
	}
	if _, err := m.MulVec([]float64{1, 2}, nil); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestMulVecReuseBuffer(t *testing.T) {
	m, _ := NewMatrixFrom(2, 2, []float64{1, 0, 0, 1})
	buf := make([]float64, 2)
	y, err := m.MulVec([]float64{3, 4}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &y[0] != &buf[0] {
		t.Fatal("MulVec should reuse the provided buffer")
	}
	if y[0] != 3 || y[1] != 4 {
		t.Fatalf("identity MulVec got %v", y)
	}
}

func TestMulVecTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatrix(5, 3)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	x := []float64{1.5, -2, 0.5, 3, -1}
	got, err := m.MulVecT(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Transpose().MulVec(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("MulVecT[%d]=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestMulVecTDimErrors(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.MulVecT([]float64{1, 2, 3}, nil); err == nil {
		t.Fatal("expected x dimension error")
	}
	if _, err := m.MulVecT([]float64{1, 2}, make([]float64, 2)); err == nil {
		t.Fatal("expected y dimension error")
	}
}

func TestMul(t *testing.T) {
	a, _ := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b, _ := NewMatrixFrom(2, 2, []float64{5, 6, 7, 8})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("Mul got %v, want %v", c.Data(), want)
		}
	}
	if _, err := Mul(a, NewMatrix(3, 2)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSubMatrixClipsAndPads(t *testing.T) {
	m, _ := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	s := m.SubMatrix(1, 3, 1, 3) // extends past the matrix edge
	if s.Rows() != 2 || s.Cols() != 2 {
		t.Fatalf("submatrix shape %dx%d", s.Rows(), s.Cols())
	}
	if s.At(0, 0) != 4 {
		t.Fatalf("s(0,0)=%v, want 4", s.At(0, 0))
	}
	if s.At(1, 1) != 0 || s.At(0, 1) != 0 || s.At(1, 0) != 0 {
		t.Fatal("out-of-range region must be zero padded")
	}
}

func TestScaleMaxAbsFrobenius(t *testing.T) {
	m, _ := NewMatrixFrom(2, 2, []float64{3, -4, 0, 0})
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs=%v, want 4", m.MaxAbs())
	}
	if !almostEqual(m.FrobeniusNorm(), 5, 1e-12) {
		t.Fatalf("Frobenius=%v, want 5", m.FrobeniusNorm())
	}
	m.Scale(2)
	if m.At(0, 1) != -8 {
		t.Fatal("Scale failed")
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEqual(VecNorm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("VecNorm2 wrong")
	}
	s := AddVec(nil, []float64{1, 2}, []float64{3, 4})
	if s[0] != 4 || s[1] != 6 {
		t.Fatal("AddVec wrong")
	}
}

// Property: (Aᵀ)ᵀ = A for arbitrary matrices.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		n := int(math.Sqrt(float64(len(vals))))
		if n == 0 {
			return true
		}
		m, err := NewMatrixFrom(n, n, vals[:n*n])
		if err != nil {
			return false
		}
		tt := m.Transpose().Transpose()
		for i, v := range m.Data() {
			got := tt.Data()[i]
			if v != got && !(math.IsNaN(v) && math.IsNaN(got)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MulVecT(x) == Transpose().MulVec(x) for random shapes.
func TestMulVecTProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		m := NewMatrix(r, c)
		for i := range m.Data() {
			m.Data()[i] = rng.NormFloat64()
		}
		x := make([]float64, r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got, err := m.MulVecT(x, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.Transpose().MulVec(x, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !almostEqual(got[i], want[i], 1e-9) {
				t.Fatalf("trial %d: MulVecT mismatch at %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}
