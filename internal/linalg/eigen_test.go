package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestEigenSymDiagonal(t *testing.T) {
	m, _ := NewMatrixFrom(3, 3, []float64{
		3, 0, 0,
		0, 1, 0,
		0, 0, 2,
	})
	vals, vecs, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i, w := range want {
		if !almostEqual(vals[i], w, 1e-10) {
			t.Fatalf("eigenvalues %v, want %v", vals, want)
		}
	}
	// Eigenvectors of a diagonal matrix are (signed) unit basis vectors.
	for c := 0; c < 3; c++ {
		nonzero := 0
		for r := 0; r < 3; r++ {
			if math.Abs(vecs.At(r, c)) > 1e-9 {
				nonzero++
				if !almostEqual(math.Abs(vecs.At(r, c)), 1, 1e-9) {
					t.Fatalf("eigenvector column %d not a basis vector", c)
				}
			}
		}
		if nonzero != 1 {
			t.Fatalf("eigenvector column %d has %d nonzeros", c, nonzero)
		}
	}
}

func TestEigenSym2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m, _ := NewMatrixFrom(2, 2, []float64{2, 1, 1, 2})
	vals, _, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vals[0], 1, 1e-10) || !almostEqual(vals[1], 3, 1e-10) {
		t.Fatalf("eigenvalues %v, want [1 3]", vals)
	}
}

func TestEigenSymEmptyAndErrors(t *testing.T) {
	vals, vecs, err := EigenSym(NewMatrix(0, 0))
	if err != nil || len(vals) != 0 || vecs.Rows() != 0 {
		t.Fatal("empty matrix should decompose trivially")
	}
	if _, _, err := EigenSym(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
	asym, _ := NewMatrixFrom(2, 2, []float64{0, 1, 5, 0})
	if _, _, err := EigenSym(asym); err == nil {
		t.Fatal("expected error for asymmetric matrix")
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 40} {
		rng := rand.New(rand.NewSource(int64(n)))
		m := randomSym(n, rng)
		vals, vecs, err := EigenSym(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := ReconstructSym(vals, vecs)
		tol := 1e-8 * float64(n) * (1 + m.MaxAbs())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEqual(rec.At(i, j), m.At(i, j), tol) {
					t.Fatalf("n=%d: reconstruction error at (%d,%d): %v vs %v",
						n, i, j, rec.At(i, j), m.At(i, j))
				}
			}
		}
		// Eigenvalues must come out sorted ascending.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("n=%d: eigenvalues not sorted: %v", n, vals)
			}
		}
	}
}

func TestEigenSymOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomSym(12, rng)
	_, v, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	n := v.Rows()
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			dot := 0.0
			for r := 0; r < n; r++ {
				dot += v.At(r, a) * v.At(r, b)
			}
			want := 0.0
			if a == b {
				want = 1.0
			}
			if !almostEqual(dot, want, 1e-8) {
				t.Fatalf("columns %d,%d dot=%v, want %v", a, b, dot, want)
			}
		}
	}
}

func TestEigenSymTraceAndDeterminantInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomSym(8, rng)
	vals, _, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	trace := 0.0
	for i := 0; i < 8; i++ {
		trace += m.At(i, i)
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if !almostEqual(trace, sum, 1e-8) {
		t.Fatalf("trace %v != eigenvalue sum %v", trace, sum)
	}
}

func TestGershgorinRadius(t *testing.T) {
	m, _ := NewMatrixFrom(3, 3, []float64{
		0, 1, -2,
		1, 0, 3,
		-2, 3, 0,
	})
	r, err := GershgorinRadius(m)
	if err != nil {
		t.Fatal(err)
	}
	if r != 5 {
		t.Fatalf("Gershgorin radius %v, want 5", r)
	}
	if _, err := GershgorinRadius(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square")
	}
}

func TestGershgorinBoundsEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := randomSym(10, rng)
	vals, _, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	radius, _ := GershgorinRadius(m)
	maxDiag := 0.0
	for i := 0; i < 10; i++ {
		if a := math.Abs(m.At(i, i)); a > maxDiag {
			maxDiag = a
		}
	}
	bound := radius + maxDiag
	for _, v := range vals {
		if math.Abs(v) > bound+1e-9 {
			t.Fatalf("eigenvalue %v outside Gershgorin bound %v", v, bound)
		}
	}
}

func TestPRISTransformAlphaOneKeepsSpectrum(t *testing.T) {
	// With alpha=1 every shifted eigenvalue is nonnegative so none drop out;
	// C must be symmetric and PSD-derived (all 2·sqrt entries real).
	rng := rand.New(rand.NewSource(5))
	k := randomSym(10, rng)
	c, err := PRISTransform(k, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsSymmetric(1e-9) {
		t.Fatal("PRISTransform result must be symmetric")
	}
	valsC, _, err := EigenSym(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range valsC {
		if v < -1e-8 {
			t.Fatalf("alpha=1 transform has negative eigenvalue %v", v)
		}
	}
}

func TestPRISTransformAlphaZeroDropsNegatives(t *testing.T) {
	// A matrix with a known negative eigenvalue: [[0,1],[1,0]] has λ = ±1.
	// With alpha=0 the negative eigenvalue drops; C = 2·u₊u₊ᵀ where
	// u₊ = (1,1)/√2, so C = [[1,1],[1,1]].
	k, _ := NewMatrixFrom(2, 2, []float64{0, 1, 1, 0})
	c, err := PRISTransform(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEqual(c.At(i, j), 1, 1e-10) {
				t.Fatalf("C = %v, want all ones", c.Data())
			}
		}
	}
}

func TestPRISTransformAlphaValidation(t *testing.T) {
	k, _ := NewMatrixFrom(1, 1, []float64{1})
	if _, err := PRISTransform(k, -0.1); err == nil {
		t.Fatal("expected error for alpha < 0")
	}
	if _, err := PRISTransform(k, 1.1); err == nil {
		t.Fatal("expected error for alpha > 1")
	}
}

func TestThresholds(t *testing.T) {
	c, _ := NewMatrixFrom(2, 2, []float64{1, 3, 2, 4})
	th := Thresholds(c)
	if th[0] != 2 || th[1] != 3 {
		t.Fatalf("thresholds %v, want [2 3]", th)
	}
}

func BenchmarkEigenSym64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomSym(64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigenSym(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulVec256(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := randomSym(256, rng)
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.Float64()
	}
	y := make([]float64, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MulVec(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
