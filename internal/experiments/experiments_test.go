package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOptions keeps test runs fast: single run per point, small graphs.
func tinyOptions(buf *bytes.Buffer) Options {
	return Options{Runs: 1, Out: buf, Seed: 1}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("%d experiments registered, want 10", len(all))
	}
	for _, e := range all {
		got, err := ByID(e.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Title != e.Title {
			t.Fatalf("ByID(%q) returned wrong experiment", e.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"G1", "G22", "K100", "K16384", "K32768", "19176", "19990"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestFig9(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig9(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "EDAP") || !strings.Contains(out, "64") {
		t.Fatalf("Fig 9 output malformed:\n%s", out)
	}
}

func TestTable3(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SOPHIE", "SB [37]", "mBRIM3D", "K16384", "1.21 ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table III output missing %q:\n%s", want, out)
		}
	}
	// SOPHIE must appear with 1, 2, and 4 accelerator rows.
	if strings.Count(out, "SOPHIE (this repo)") != 3 {
		t.Fatalf("Table III should have 3 SOPHIE rows:\n%s", out)
	}
}

func TestRenderHelpers(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		5e-9:    "5 ns",
		2.5e-6:  "2.5 µs",
		3.3e-3:  "3.3 ms",
		7.25:    "7.25 s",
		1e-12:   "0.001 ns",
		0.5e-3:  "500 µs",
		0.02e-6: "20 ns",
	}
	for in, want := range cases {
		if got := engTime(in); got != want {
			t.Errorf("engTime(%v) = %q, want %q", in, got, want)
		}
	}
	if engEnergy(2e-3) != "2 mJ" || engEnergy(3) != "3 J" || engEnergy(5e-7) != "500 nJ" {
		t.Fatalf("engEnergy wrong: %q %q %q", engEnergy(2e-3), engEnergy(3), engEnergy(5e-7))
	}
}

func TestTableRendering(t *testing.T) {
	tb := &table{
		caption: "demo",
		header:  []string{"a", "b"},
	}
	tb.addRow("1", "2")
	tb.note("hello %d", 42)
	var buf bytes.Buffer
	if err := tb.render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "hello 42") {
		t.Fatalf("render output wrong:\n%s", out)
	}
}

func TestBestKnownCutCached(t *testing.T) {
	o := Options{Runs: 1}
	inst := k100()
	a := bestKnownCut(inst, o)
	b := bestKnownCut(inst, o)
	if a != b {
		t.Fatal("reference cache inconsistent")
	}
	if a <= 0 {
		t.Fatalf("K100 best-known cut %v must be positive", a)
	}
}

// The functional-simulation experiments are heavy; exercise them with a
// single run each and just check they produce their tables. Skipped in
// -short mode.
func TestFunctionalExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("functional experiments are slow")
	}
	if raceDetectorOn {
		t.Skip("sequential regenerators; see race_on_test.go")
	}
	for _, exp := range []struct {
		name string
		run  func(Options) error
		want string
	}{
		{"fig7", Fig7, "Fig. 7"},
		{"fig8", Fig8, "Fig. 8"},
		{"fig10", Fig10, "Fig. 10"},
	} {
		var buf bytes.Buffer
		if err := exp.run(tinyOptions(&buf)); err != nil {
			t.Fatalf("%s: %v", exp.name, err)
		}
		if !strings.Contains(buf.String(), exp.want) {
			t.Fatalf("%s output missing caption:\n%s", exp.name, buf.String())
		}
	}
}

func TestScaling(t *testing.T) {
	var buf bytes.Buffer
	if err := Scaling(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Scaling", "65536", "16384", "chips"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scaling output missing %q:\n%s", want, out)
		}
	}
}

// Heavier functional experiments, skipped in -short mode.
func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	var buf bytes.Buffer
	if err := Ablation(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "full design (baseline)") || !strings.Contains(out, "dual-precision") {
		t.Fatalf("ablation output malformed:\n%s", out)
	}
}

func TestTable2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 is slow")
	}
	var buf bytes.Buffer
	if err := Table2(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SOPHIE (this repo)", "INPRIS", "D-Wave", "BLS (this repo)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 output missing %q", want)
		}
	}
}

func TestFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 is slow")
	}
	var buf bytes.Buffer
	if err := Fig6(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "Fig. 6") != 2 {
		t.Fatalf("fig6 should print two tables (G1, G22):\n%s", buf.String())
	}
}
