//go:build race

package experiments

// raceDetectorOn lets the heavy smoke tests skip under `go test -race`:
// the experiment regenerators are sequential orchestration of components
// whose concurrency is race-tested directly (internal/core/race_test.go),
// and the ~10x race-build slowdown pushes them past the default test
// timeout without adding coverage.
const raceDetectorOn = true
