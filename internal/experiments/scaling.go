package experiments

import (
	"fmt"

	"sophie/internal/arch"
	"sophie/internal/sched"
)

// Scaling is an extension experiment supporting the paper's headline
// claim: SOPHIE's performance degrades smoothly as the problem grows
// past the hardware capacity (time-duplexed tiles), whereas
// physics-based machines must grow their hardware with the problem —
// a K-graph needs capacity for all n² couplings, so an 8192-node BRIM
// chip pool needs ceil(n/8192)² chips before it can start at all
// (Section IV-D's K32768 discussion).
func Scaling(o Options) error {
	t := &table{
		caption: "Scaling — run time per job vs problem size on FIXED hardware (extension)",
		header: []string{"nodes", "couplings", "fits?", "rounds/iter",
			"SOPHIE 1 accel", "SOPHIE 4 accel", "BRIM-style chips needed"},
	}
	hw1 := sched.DefaultHardware()
	hw4 := sched.DefaultHardware()
	hw4.Accelerators = 4
	const brimChipNodes = 8192 // one mBRIM3D chip's capacity [27]

	for _, n := range []int{1024, 2048, 4096, 8192, 16384, 32768, 65536} {
		w := arch.Workload{
			Name: fmt.Sprintf("K%d", n), Nodes: n, Batch: 100,
			LocalIters: 10, GlobalIters: 50, TileFraction: 0.74,
		}
		r1, err := arch.Evaluate(arch.Design{Hardware: hw1, Params: arch.DefaultParams()}, w)
		if err != nil {
			return err
		}
		r4, err := arch.Evaluate(arch.Design{Hardware: hw4, Params: arch.DefaultParams()}, w)
		if err != nil {
			return err
		}
		chips := (n + brimChipNodes - 1) / brimChipNodes
		chipNote := fmt.Sprintf("%d", chips*chips)
		if chips == 1 {
			chipNote = "1"
		}
		fits := "no"
		if r1.Schedule.Resident {
			fits = "yes"
		}
		t.addRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", n*(n-1)/2),
			fits,
			fmt.Sprintf("%d", r1.Schedule.RoundsPerIter),
			engTime(r1.TimePerJobS),
			engTime(r4.TimePerJobS),
			chipNote,
		)
	}
	t.note("SOPHIE hardware fixed at 256 PEs/accelerator; physics machines must provision chips for all couplings up front")
	t.note("expected: smooth ~n² growth for SOPHIE with no capacity cliff; BRIM-style chip count grows quadratically")
	return t.render(o.out())
}
