package experiments

import (
	"fmt"

	"sophie/internal/graph"
)

// Table1 reproduces Table I: the benchmark graph set. Small instances
// are materialized and measured; the two large K-graphs are described
// analytically (K32768 holds ~537M edges — its solvers consume it
// through the analytic timing model, never as an edge list).
func Table1(o Options) error {
	t := &table{
		caption: "Table I — benchmark graphs",
		header:  []string{"graph", "nodes", "edges", "density", "description"},
	}
	for _, inst := range graph.TableI() {
		if inst.Nodes <= 2000 {
			g := inst.Build()
			t.addRow(inst.Name,
				fmt.Sprintf("%d", g.N()),
				fmt.Sprintf("%d", g.M()),
				fmt.Sprintf("%.4f", g.Density()),
				inst.Description)
			continue
		}
		m := inst.Nodes * (inst.Nodes - 1) / 2
		t.addRow(inst.Name,
			fmt.Sprintf("%d", inst.Nodes),
			fmt.Sprintf("%d", m),
			"1.0000",
			inst.Description+" (not materialized)")
	}
	t.note("G1/G22 are Rudy-generated stand-ins with GSET G1/G22's order and size (see DESIGN.md)")
	return t.render(o.out())
}
