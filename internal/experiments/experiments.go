// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV). Each experiment prints the same rows/series
// the paper reports, next to the paper's own numbers where applicable,
// so EXPERIMENTS.md can record paper-vs-measured.
//
// Two scales are supported. The default "fast" scale substitutes
// smaller Rudy-generated stand-ins (same construction, smaller order)
// and reduced iteration counts so the whole suite runs in minutes on a
// laptop; Options.Full switches to the paper-scale protocol (full G1 and
// G22 stand-ins, 500 global iterations, 10-100 runs per point), which
// takes hours.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"sophie/internal/baseline"
	"sophie/internal/graph"
)

// Options controls the scale and determinism of an experiment run.
type Options struct {
	// Full selects the paper-scale protocol; default is the reduced
	// fast protocol.
	Full bool
	// Runs is the number of runs averaged per data point; 0 picks the
	// scale default (3 fast, 10 full — Fig. 8 uses 100 in the paper).
	Runs int
	// Seed offsets all randomness.
	Seed int64
	// Workers bounds solver parallelism (0 = GOMAXPROCS).
	Workers int
	// Out receives the rendered tables; defaults to io.Discard when nil.
	Out io.Writer
}

func (o Options) runs() int {
	if o.Runs > 0 {
		return o.Runs
	}
	if o.Full {
		return 10
	}
	return 3
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) error
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: benchmark graphs", Run: Table1},
		{ID: "fig6", Title: "Fig. 6: solution quality vs phi and alpha (G1, G22)", Run: Fig6},
		{ID: "fig7", Title: "Fig. 7: stochastic tile computation vs quality (G22)", Run: Fig7},
		{ID: "fig8", Title: "Fig. 8: iterations to 95% of best-known (G22)", Run: Fig8},
		{ID: "fig9", Title: "Fig. 9: EDAP vs tile and batch size (K32768)", Run: Fig9},
		{ID: "fig10", Title: "Fig. 10: run time per job to solution (G22, capacity-limited)", Run: Fig10},
		{ID: "table2", Title: "Table II: small-graph comparison", Run: Table2},
		{ID: "table3", Title: "Table III: large-graph comparison", Run: Table3},
		{ID: "ablation", Title: "Ablation: isolating each design choice (extension)", Run: Ablation},
		{ID: "scaling", Title: "Scaling: run time vs problem size on fixed hardware (extension)", Run: Scaling},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, ids)
}

// ---- benchmark instances at both scales ------------------------------

// instance couples a benchmark graph with its identity at the current
// scale.
type instance struct {
	name  string
	g     *graph.Graph
	scale string // "paper" or "fast"
}

// g1 returns the G1 stand-in (full) or a proportionally shrunk Rudy
// instance with the same density and weights (fast).
func g1(o Options) instance {
	if o.Full {
		return instance{name: "G1", g: graph.G1Standin(), scale: "paper"}
	}
	g, err := graph.Random(200, 1200, graph.WeightUnit, 53100)
	if err != nil {
		panic(err)
	}
	return instance{name: "G1-mini(200)", g: g, scale: "fast"}
}

// g22 returns the G22 stand-in (full) or its shrunk counterpart (fast).
func g22(o Options) instance {
	if o.Full {
		return instance{name: "G22", g: graph.G22Standin(), scale: "paper"}
	}
	g, err := graph.Random(500, 2500, graph.WeightUnit, 53122)
	if err != nil {
		panic(err)
	}
	return instance{name: "G22-mini(500)", g: g, scale: "fast"}
}

// k100 is small enough to use at full scale always.
func k100() instance {
	return instance{name: "K100", g: graph.KGraph(100), scale: "paper"}
}

// ---- best-known reference values -------------------------------------

var (
	refMu    sync.Mutex
	refCache = map[string]float64{}
)

// bestKnownCut returns the reference cut for an instance: the best cut a
// long breakout-local-search run finds (our stand-ins have no published
// best-known values; DESIGN.md documents this substitution). Results are
// cached per instance name for the process lifetime.
func bestKnownCut(inst instance, o Options) float64 {
	refMu.Lock()
	defer refMu.Unlock()
	if v, ok := refCache[inst.name]; ok {
		return v
	}
	budget := 300000
	if o.Full {
		budget = 3000000
	}
	best := 0.0
	for seed := int64(0); seed < 3; seed++ {
		res, err := baseline.BLS(inst.g, baseline.BLSConfig{MaxMoves: budget, PerturbBase: 8, Seed: seed})
		if err != nil {
			panic(err) // static configuration; cannot fail
		}
		if res.BestCut > best {
			best = res.BestCut
		}
	}
	refCache[inst.name] = best
	return best
}
