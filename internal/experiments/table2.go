package experiments

import (
	"fmt"
	"time"

	"sophie/internal/arch"
	"sophie/internal/baseline"
	"sophie/internal/core"
	"sophie/internal/ising"
	"sophie/internal/metrics"
	"sophie/internal/sched"
)

// Table2 reproduces Table II: performance and solution quality on the
// small graphs K100, G1, and G22, which fit entirely in 4 accelerators.
//
// The SOPHIE rows are measured: the functional simulator reports the
// global iterations needed to reach the paper's quality level (within 5%
// of best-known), and the architecture model prices them on 4
// accelerators with batch 100 including the (amortized) initial
// programming. The competitor hardware rows repeat the literature
// numbers, exactly as the paper does; our software baselines (SA, SB,
// BRIM, BLS) run natively and report wall-clock time for context.
func Table2(o Options) error {
	design := arch.Design{Hardware: sched.DefaultHardware(), Params: arch.DefaultParams()}
	design.Hardware.Accelerators = 4

	t := &table{
		caption: "Table II — small graphs: run time (solution quality)",
		header:  []string{"architecture", "type", "K100", g1(o).name, g22(o).name},
	}

	// Per-instance optimal noise, from the Fig. 6 style sweep: the paper
	// keeps a (graph order, density) -> (phi, alpha) lookup table.
	optPhi := map[string]float64{"K100": 0.2, "G1": 0.2, "G22": 0.1}

	var k100T90 string
	sophieRow := []string{"SOPHIE (this repo)", "photonic sim"}
	for _, inst := range []instance{k100(), g1(o), g22(o)} {
		best := bestKnownCut(inst, o)
		model := ising.FromMaxCut(inst.g)
		target := targetEnergyFor(inst, 0.95, best)

		cfg := core.DefaultConfig()
		cfg.Workers = o.Workers
		cfg.GlobalIters = 300
		cfg.TargetEnergy = &target
		if phi, ok := optPhi[inst.name]; ok {
			cfg.Phi = phi
		} else {
			cfg.Phi = 0.2 // the mini stand-ins behave like their parents
		}
		if o.Full {
			cfg.GlobalIters = 500
		}
		solver, err := core.NewSolver(model, cfg)
		if err != nil {
			return err
		}
		// Batched replica runtime: the convergence replicas run
		// concurrently over one preprocessed solver, like the hardware
		// pipelines batched jobs. Per-replica results are identical to
		// sequential Run calls with the same seeds.
		seeds, err := core.SeedRange(o.Seed, o.runs())
		if err != nil {
			return err
		}
		batch, err := solver.RunBatch(seeds, core.BatchOptions{
			Workers: o.Workers,
		})
		if err != nil {
			return err
		}
		globals := make([]float64, 0, o.runs())
		errs := make([]float64, 0, o.runs())
		for _, res := range batch.Results {
			if res.ReachedTarget {
				globals = append(globals, float64(res.GlobalItersRun))
			}
			errs = append(errs, 100*(1-inst.g.CutValue(res.BestSpins)/best))
		}
		if len(globals) == 0 {
			sophieRow = append(sophieRow, "no converge")
			continue
		}
		iters := int(metrics.Summarize(globals).Mean + 0.5)
		rep, err := arch.Evaluate(design, arch.Workload{
			Name: inst.name, Nodes: inst.g.N(), Batch: 100,
			LocalIters: 10, GlobalIters: iters, TileFraction: 1,
		})
		if err != nil {
			return err
		}
		meanErr := metrics.Summarize(errs).Mean
		sophieRow = append(sophieRow, fmt.Sprintf("%s (%.1f%%)", engTime(rep.TimePerJobS), meanErr))

		// Report K100's T90 like the paper's comparators: expected time
		// to hit the reference optimum with 90% confidence, from the
		// measured per-run success probability.
		if inst.name == "K100" {
			// T90 runs must not stop early at the 95% target — the
			// success event is hitting the reference optimum itself.
			fullSolver, err := solver.WithRuntime(func(c *core.Config) { c.TargetEnergy = nil })
			if err != nil {
				return err
			}
			t90Seeds, err := core.SeedRange(o.Seed+100, o.runs())
			if err != nil {
				return err
			}
			t90Batch, err := fullSolver.RunBatch(t90Seeds, core.BatchOptions{
				Workers: o.Workers,
			})
			if err != nil {
				return err
			}
			optimumHits := 0
			for _, res := range t90Batch.Results {
				if inst.g.CutValue(res.BestSpins) >= best {
					optimumHits++
				}
			}
			p := float64(optimumHits) / float64(o.runs())
			fullRun, err := arch.Evaluate(design, arch.Workload{
				Name: inst.name, Nodes: inst.g.N(), Batch: 100,
				LocalIters: 10, GlobalIters: cfg.GlobalIters, TileFraction: 1,
			})
			if err != nil {
				return err
			}
			tts, err := metrics.TimeToSolution(fullRun.TimePerJobS, p, 0.9)
			if err != nil {
				return err
			}
			if p == 0 {
				k100T90 = fmt.Sprintf("K100 T90: optimum not hit in %d runs", o.runs())
			} else {
				k100T90 = fmt.Sprintf("K100 T90 ≈ %s (success probability %.2f over %d runs; paper reports 0.31 µs)",
					engTime(tts), p, o.runs())
			}
		}
	}
	t.addRow(sophieRow...)

	// Literature rows, as cited by the paper.
	t.addRow("INPRIS [4]", "photonic", "1-10 µs (T90)", "-", "-")
	t.addRow("PRIS [15]", "FPGA", "50 µs-1 ms (T90)", "-", "-")
	t.addRow("CIM [9]", "photonic", "2.3 ms (T90)", "-", "5 ms (0.8%)")
	t.addRow("BRIM [8]", "electric", "-", "-", "0.25 µs (0.3%)")
	t.addRow("BLS [5]", "CPU", "-", "13 s (0.1%)", "560 s (0.1%)")
	t.addRow("D-Wave [36]", "quantum", "5e18 s (T90)", "-", "-")

	// Our own software baselines for a qualitative cross-check.
	for _, run := range []struct {
		name string
		f    func(inst instance) (spins []int8, err error)
	}{
		{"SA (this repo)", func(inst instance) ([]int8, error) {
			cfg := baseline.DefaultSAConfig()
			cfg.Sweeps = 400
			cfg.Seed = o.Seed
			r, err := baseline.SimulatedAnnealing(ising.FromMaxCut(inst.g), cfg)
			if err != nil {
				return nil, err
			}
			return r.BestSpins, nil
		}},
		{"SB (this repo)", func(inst instance) ([]int8, error) {
			cfg := baseline.DefaultSBConfig()
			cfg.Seed = o.Seed
			r, err := baseline.SimulatedBifurcation(ising.FromMaxCut(inst.g), cfg)
			if err != nil {
				return nil, err
			}
			return r.BestSpins, nil
		}},
		{"BLS (this repo)", func(inst instance) ([]int8, error) {
			cfg := baseline.DefaultBLSConfig()
			cfg.Seed = o.Seed
			r, err := baseline.BLS(inst.g, cfg)
			if err != nil {
				return nil, err
			}
			return r.BestSpins, nil
		}},
	} {
		row := []string{run.name, "CPU (Go)"}
		for _, inst := range []instance{k100(), g1(o), g22(o)} {
			best := bestKnownCut(inst, o)
			start := time.Now()
			spins, err := run.f(inst)
			if err != nil {
				return err
			}
			elapsed := time.Since(start).Seconds()
			errPct := 100 * (1 - inst.g.CutValue(spins)/best)
			row = append(row, fmt.Sprintf("%s (%.1f%%)", engTime(elapsed), errPct))
		}
		t.addRow(row...)
	}

	t.note("SOPHIE rows: 4 accelerators, batch 100, time to within 5%% of best-known incl. amortized programming")
	if k100T90 != "" {
		t.note("%s", k100T90)
	}
	t.note("literature rows reproduce the paper's citations; (x%%) = error vs best-known, T90 = 90%% ground-state probability")
	return t.render(o.out())
}
