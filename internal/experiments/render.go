package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// table renders rows with aligned columns, a header rule, and a caption.
type table struct {
	caption string
	header  []string
	rows    [][]string
	notes   []string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) note(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

func (t *table) render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n== %s ==\n", t.caption); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.header, "\t"))
	rule := make([]string, len(t.header))
	for i, h := range t.header {
		rule[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(rule, "\t"))
	for _, r := range t.rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// engTime renders a duration in engineering units.
func engTime(seconds float64) string {
	switch {
	case seconds <= 0:
		return "0"
	case seconds < 1e-6:
		return fmt.Sprintf("%.3g ns", seconds*1e9)
	case seconds < 1e-3:
		return fmt.Sprintf("%.3g µs", seconds*1e6)
	case seconds < 1:
		return fmt.Sprintf("%.3g ms", seconds*1e3)
	default:
		return fmt.Sprintf("%.3g s", seconds)
	}
}

// engEnergy renders joules in engineering units.
func engEnergy(j float64) string {
	switch {
	case j <= 0:
		return "0"
	case j < 1e-6:
		return fmt.Sprintf("%.3g nJ", j*1e9)
	case j < 1e-3:
		return fmt.Sprintf("%.3g µJ", j*1e6)
	case j < 1:
		return fmt.Sprintf("%.3g mJ", j*1e3)
	default:
		return fmt.Sprintf("%.3g J", j)
	}
}
