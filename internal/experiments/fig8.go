package experiments

import (
	"fmt"

	"sophie/internal/core"
	"sophie/internal/ising"
	"sophie/internal/metrics"
)

// targetEnergyFor converts a "reach 95% of the best-known cut" goal into
// an energy threshold under the max-cut mapping (cut = (W - H)/2).
func targetEnergyFor(inst instance, fraction, bestCut float64) float64 {
	return inst.g.TotalWeight() - 2*fraction*bestCut
}

// Fig8 reproduces Figure 8: the total number of local iterations needed
// to reach 95% of the best-known G22 solution across the (local
// iterations per global, tile fraction) grid; blank cells failed to
// converge within the iteration cap.
func Fig8(o Options) error {
	inst := g22(o)
	best := bestKnownCut(inst, o)
	model := ising.FromMaxCut(inst.g)
	cap := totalLocalBudget(o) // 5000 in the paper

	cfg := core.DefaultConfig()
	cfg.Workers = o.Workers
	target := targetEnergyFor(inst, 0.95, best)

	solver, err := core.NewSolver(model, cfg)
	if err != nil {
		return err
	}

	t := &table{
		caption: fmt.Sprintf("Fig. 8 — total local iterations to reach 95%% of best-known, %s", inst.name),
		header:  append([]string{"local/global \\ tiles%"}, pctHeaders(fig78Fractions)...),
	}
	for li, L := range fig78Locals {
		row := []string{fmt.Sprintf("%d", L)}
		for fi, frac := range fig78Fractions {
			tuned, err := solver.WithRuntime(func(c *core.Config) {
				c.LocalIters = L
				c.GlobalIters = max(1, cap/L)
				c.TileFraction = frac
				c.TargetEnergy = &target
				c.EvalEvery = 1
			})
			if err != nil {
				return err
			}
			iters := make([]float64, 0, o.runs())
			converged := 0
			for r := 0; r < o.runs(); r++ {
				res, err := tuned.Run(o.Seed + int64(li*1000+fi*100+r) + 7)
				if err != nil {
					return err
				}
				if res.ReachedTarget {
					converged++
					iters = append(iters, float64(res.TotalLocalIters))
				}
			}
			if converged == 0 {
				row = append(row, "-") // blank cell: no convergence within cap
				continue
			}
			s := metrics.Summarize(iters)
			cell := fmt.Sprintf("%.0f", s.Mean)
			if converged < o.runs() {
				cell += fmt.Sprintf(" (%d/%d)", converged, o.runs())
			}
			row = append(row, cell)
		}
		t.addRow(row...)
	}
	t.note("cap %d total local iterations; %d runs per point (paper averages 100)", cap, o.runs())
	t.note("paper: aggressive skipping (upper-left) needs more iterations or fails")
	return t.render(o.out())
}
