package experiments

import (
	"fmt"

	"sophie/internal/arch"
	"sophie/internal/sched"
)

// table3GlobalIters is the convergence assumption for the dense
// K-graphs: the paper does not run quality experiments at this scale;
// its run times correspond to a fixed solve of ~50 global iterations at
// 10 local iterations per global (DESIGN.md documents this calibration).
const table3GlobalIters = 50

// Table3 reproduces Table III: run time per job on K16384 and K32768
// for SOPHIE with 1, 2, and 4 accelerators (time-duplexed, batch 100,
// 74% tile selection), against the multi-FPGA simulated bifurcation and
// multi-chip BRIM literature numbers.
func Table3(o Options) error {
	t := &table{
		caption: "Table III — large graphs: run time per job",
		header:  []string{"architecture", "type", "#accel", "K16384", "K32768", "paper (K16384/K32768)"},
	}
	paper := map[int][2]string{
		1: {"38.25 µs", "129.0 µs"},
		2: {"20.40 µs", "68.80 µs"},
		4: {"9.69 µs", "32.34 µs"},
	}
	for _, accels := range []int{1, 2, 4} {
		hw := sched.DefaultHardware()
		hw.Accelerators = accels
		design := arch.Design{Hardware: hw, Params: arch.DefaultParams()}
		var cells []string
		for _, nodes := range []int{16384, 32768} {
			rep, err := arch.Evaluate(design, arch.Workload{
				Name: fmt.Sprintf("K%d", nodes), Nodes: nodes, Batch: 100,
				LocalIters: 10, GlobalIters: table3GlobalIters, TileFraction: 0.74,
			})
			if err != nil {
				return err
			}
			cells = append(cells, engTime(rep.TimePerJobS))
		}
		t.addRow("SOPHIE (this repo)", "photonic sim", fmt.Sprintf("%d", accels),
			cells[0], cells[1], paper[accels][0]+" / "+paper[accels][1])
	}
	t.addRow("SB [37]", "FPGA", "8", "1.21 ms", "-", "1.21 ms / -")
	t.addRow("mBRIM3D [27]", "electric", "4", "1.1 µs", "-", "1.1 µs / -")
	t.note("%d global iterations x 10 local, batch 100, 74%% tiles; literature rows as cited by the paper", table3GlobalIters)
	t.note("expected shape: SOPHIE-1 ~30x faster than 8-FPGA SB; 4 accelerators ~100x; mBRIM3D remains faster")
	return t.render(o.out())
}
