package experiments

import (
	"fmt"

	"sophie/internal/core"
	"sophie/internal/ising"
	"sophie/internal/metrics"
)

// fig78Grid is the shared sweep grid of Figures 7, 8, and 10: local
// iterations per global iteration × fraction of tiles selected.
var (
	fig78Locals    = []int{1, 2, 5, 10, 20, 50}
	fig78Fractions = []float64{0.25, 0.50, 0.74, 1.00}
)

// totalLocalBudget returns the fixed total local-iteration budget of the
// Fig. 7/8 protocol (5000 in the paper).
func totalLocalBudget(o Options) int {
	if o.Full {
		return 5000
	}
	return 1500
}

// Fig7 reproduces Figure 7: the impact of stochastic tile computation on
// solution quality for G22. Every configuration runs the same total
// number of local iterations; more local iterations per global and fewer
// selected tiles both trade quality for reduced synchronization.
func Fig7(o Options) error {
	inst := g22(o)
	best := bestKnownCut(inst, o)
	model := ising.FromMaxCut(inst.g)
	budget := totalLocalBudget(o)

	cfg := core.DefaultConfig()
	cfg.Workers = o.Workers
	cfg.EvalEvery = 2
	solver, err := core.NewSolver(model, cfg)
	if err != nil {
		return err
	}

	t := &table{
		caption: fmt.Sprintf("Fig. 7 — quality vs stochastic tile computation, %s (best-known %v)", inst.name, best),
		header:  append([]string{"local/global \\ tiles%"}, pctHeaders(fig78Fractions)...),
	}
	for li, L := range fig78Locals {
		row := []string{fmt.Sprintf("%d", L)}
		for fi, frac := range fig78Fractions {
			tuned, err := solver.WithRuntime(func(c *core.Config) {
				c.LocalIters = L
				c.GlobalIters = max(1, budget/L)
				c.TileFraction = frac
			})
			if err != nil {
				return err
			}
			cuts := make([]float64, 0, o.runs())
			for r := 0; r < o.runs(); r++ {
				res, err := tuned.Run(o.Seed + int64(li*1000+fi*100+r))
				if err != nil {
					return err
				}
				cuts = append(cuts, inst.g.CutValue(res.BestSpins))
			}
			s := metrics.Summarize(cuts)
			row = append(row, fmt.Sprintf("%.1f%%", 100*s.Mean/best))
		}
		t.addRow(row...)
	}
	t.note("fixed total of %d local iterations; %d runs per point", budget, o.runs())
	t.note("paper: all settings within ~10%% of best-known; quality dips toward many local iters + few tiles")
	return t.render(o.out())
}

func pctHeaders(fracs []float64) []string {
	h := make([]string, len(fracs))
	for i, f := range fracs {
		h[i] = fmt.Sprintf("%.0f%%", 100*f)
	}
	return h
}
