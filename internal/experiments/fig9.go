package experiments

import (
	"fmt"
	"math"

	"sophie/internal/arch"
	"sophie/internal/sched"
)

// fig9Hardware builds the hardware pool for a tile-size sweep holding
// the total number of OPCM cells constant at the paper's default pool
// (256 PEs of 64×128 cells), as Section IV-C does ("Given the total
// number of OPCM cells, changing the size of each tile ...").
func fig9Hardware(tile int) sched.Hardware {
	const cellBudget = 256 * 2 * 64 * 64
	pes := cellBudget / (2 * tile * tile)
	perChiplet := pes / 4
	if perChiplet < 1 {
		perChiplet = 1
	}
	return sched.Hardware{Accelerators: 1, ChipletsPerAccel: 4, PEsPerChiplet: perChiplet, TileSize: tile}
}

// Fig9 reproduces Figure 9: EDAP per job for K32768 across tile size ×
// batch size, 500 global iterations, 10 local iterations per global,
// one accelerator. The paper finds tile 64 / batch 100 optimal.
func Fig9(o Options) error {
	tiles := []int{16, 32, 64, 128, 256}
	batches := []int{1, 10, 100, 1000}

	t := &table{
		caption: "Fig. 9 — EDAP per job (J·s·mm²), K32768, 500 global iterations",
		header:  append([]string{"tile \\ batch"}, intHeaders(batches)...),
	}
	bestEDAP := math.Inf(1)
	bestTile, bestBatch := 0, 0
	for _, tile := range tiles {
		row := []string{fmt.Sprintf("%d", tile)}
		for _, batch := range batches {
			d := arch.Design{Hardware: fig9Hardware(tile), Params: arch.DefaultParams()}
			rep, err := arch.Evaluate(d, arch.Workload{
				Name: "K32768", Nodes: 32768, Batch: batch,
				LocalIters: 10, GlobalIters: 500, TileFraction: 1,
			})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3g", rep.EDAP))
			if rep.EDAP < bestEDAP {
				bestEDAP = rep.EDAP
				bestTile, bestBatch = tile, batch
			}
		}
		t.addRow(row...)
	}
	t.note("model minimum at tile %d / batch %d (EDAP %.3g); paper picks tile 64 / batch 100", bestTile, bestBatch, bestEDAP)
	return t.render(o.out())
}

func intHeaders(vals []int) []string {
	h := make([]string, len(vals))
	for i, v := range vals {
		h[i] = fmt.Sprintf("%d", v)
	}
	return h
}
