package experiments

import (
	"fmt"

	"sophie/internal/arch"
	"sophie/internal/core"
	"sophie/internal/ising"
	"sophie/internal/metrics"
	"sophie/internal/sched"
)

// Fig10 reproduces Figure 10: run time per job to reach 95% of the
// best-known G22 solution, with the OPCM capacity limited to 512×512
// coupling coefficients (64 arrays of 64×64) so reprogramming overhead
// is exercised. The functional simulator supplies the global iterations
// to convergence; the architecture model turns them into time per job.
func Fig10(o Options) error {
	inst := g22(o)
	best := bestKnownCut(inst, o)
	model := ising.FromMaxCut(inst.g)
	capIters := totalLocalBudget(o)
	target := targetEnergyFor(inst, 0.95, best)

	// 512×512 coupling capacity: 64 PEs with 64×64 tiles, i.e. 16 PEs in
	// each of the 4 chiplets (Section IV-C's capacity-limited setup).
	hw := sched.Hardware{Accelerators: 1, ChipletsPerAccel: 4, PEsPerChiplet: 16, TileSize: 64}
	design := arch.Design{Hardware: hw, Params: arch.DefaultParams()}

	cfg := core.DefaultConfig()
	cfg.Workers = o.Workers
	solver, err := core.NewSolver(model, cfg)
	if err != nil {
		return err
	}

	t := &table{
		caption: fmt.Sprintf("Fig. 10 — run time per job to 95%% of best-known, %s, capacity 512x512", inst.name),
		header:  append([]string{"local/global \\ tiles%"}, pctHeaders(fig78Fractions)...),
	}
	type cellStat struct {
		time float64
		ok   bool
	}
	bestTime := cellStat{}
	var bestL int
	var bestFrac float64

	for li, L := range fig78Locals {
		row := []string{fmt.Sprintf("%d", L)}
		for fi, frac := range fig78Fractions {
			tuned, err := solver.WithRuntime(func(c *core.Config) {
				c.LocalIters = L
				c.GlobalIters = max(1, capIters/L)
				c.TileFraction = frac
				c.TargetEnergy = &target
			})
			if err != nil {
				return err
			}
			globals := make([]float64, 0, o.runs())
			for r := 0; r < o.runs(); r++ {
				res, err := tuned.Run(o.Seed + int64(li*1000+fi*100+r) + 13)
				if err != nil {
					return err
				}
				if res.ReachedTarget {
					globals = append(globals, float64(res.GlobalItersRun))
				}
			}
			if len(globals) == 0 {
				row = append(row, "-")
				continue
			}
			meanGlobals := metrics.Summarize(globals).Mean
			rep, err := arch.Evaluate(design, arch.Workload{
				Name: "G22", Nodes: inst.g.N(), Batch: 100,
				LocalIters: L, GlobalIters: int(meanGlobals + 0.5), TileFraction: frac,
			})
			if err != nil {
				return err
			}
			row = append(row, engTime(rep.TimePerJobS))
			if !bestTime.ok || rep.TimePerJobS < bestTime.time {
				bestTime = cellStat{rep.TimePerJobS, true}
				bestL, bestFrac = L, frac
			}
		}
		t.addRow(row...)
	}
	if bestTime.ok {
		t.note("fastest cell: %d local iterations, %.0f%% tiles (%s/job)", bestL, 100*bestFrac, engTime(bestTime.time))
	}
	t.note("paper: ~10 local iterations and ~74%% tile selection give the best run time")
	return t.render(o.out())
}
