package experiments

import (
	"fmt"

	"sophie/internal/core"
	"sophie/internal/ising"
	"sophie/internal/metrics"
)

// Fig6 reproduces Figure 6: solution quality (cut value) of the
// modified algorithm on G1 and G22 across the noise φ and eigenvalue
// dropout α grids. Protocol (Section IV-B1): tile 64, 10 local
// iterations per global iteration, 500 global iterations, all tiles
// selected, stochastic spin update, each point averaging several runs.
func Fig6(o Options) error {
	phis := []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	alphas := []float64{0, 0.1, 0.3}
	globalIters := 150
	if o.Full {
		globalIters = 500
	}

	for _, inst := range []instance{g1(o), g22(o)} {
		best := bestKnownCut(inst, o)
		model := ising.FromMaxCut(inst.g)

		t := &table{
			caption: fmt.Sprintf("Fig. 6 — quality on %s (best-known cut %v, %s scale)", inst.name, best, inst.scale),
			header:  append([]string{"alpha \\ phi"}, floatHeaders(phis)...),
		}
		type point struct{ meanCut, pct float64 }
		grid := make(map[[2]int]point)

		for ai, alpha := range alphas {
			cfg := core.DefaultConfig()
			cfg.GlobalIters = globalIters
			cfg.Alpha = alpha
			cfg.Workers = o.Workers
			cfg.EvalEvery = 5
			solver, err := core.NewSolver(model, cfg)
			if err != nil {
				return err
			}
			for pi, phi := range phis {
				tuned, err := solver.WithRuntime(func(c *core.Config) { c.Phi = phi })
				if err != nil {
					return err
				}
				cuts := make([]float64, 0, o.runs())
				for r := 0; r < o.runs(); r++ {
					res, err := tuned.Run(o.Seed + int64(1000*ai+100*pi+r))
					if err != nil {
						return err
					}
					cuts = append(cuts, inst.g.CutValue(res.BestSpins))
				}
				s := metrics.Summarize(cuts)
				grid[[2]int{ai, pi}] = point{s.Mean, 100 * s.Mean / best}
			}
		}
		for ai, alpha := range alphas {
			row := []string{fmt.Sprintf("%.2f", alpha)}
			for pi := range phis {
				p := grid[[2]int{ai, pi}]
				row = append(row, fmt.Sprintf("%.0f (%.1f%%)", p.meanCut, p.pct))
			}
			t.addRow(row...)
		}
		t.note("paper: best quality at alpha=0 with phi=0.2 (G1) / phi=0.1 (G22), within 5%% of best-known")
		t.note("%d runs per point, %d global iterations", o.runs(), globalIters)
		if err := t.render(o.out()); err != nil {
			return err
		}
	}
	return nil
}

func floatHeaders(vals []float64) []string {
	h := make([]string, len(vals))
	for i, v := range vals {
		h[i] = fmt.Sprintf("%.2g", v)
	}
	return h
}
