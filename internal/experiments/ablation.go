package experiments

import (
	"fmt"

	"sophie/internal/arch"
	"sophie/internal/core"
	"sophie/internal/ising"
	"sophie/internal/metrics"
	"sophie/internal/sched"
)

// Ablation quantifies each of SOPHIE's design choices in isolation
// (the cross-layer techniques of Sections III-A and III-C): symmetric
// local update (many local iterations between syncs vs syncing every
// iteration), stochastic tile computation (74% vs all tiles),
// stochastic spin update (vs majority), the dual-precision ADC (vs
// always-8-bit), and eigenvalue dropout (vs the raw coupling matrix).
// Each row reports solution quality from the functional simulator and
// time per job from the architecture model on the capacity-limited
// hardware, relative to the full design.
func Ablation(o Options) error {
	inst := g22(o)
	best := bestKnownCut(inst, o)
	model := ising.FromMaxCut(inst.g)

	hw := sched.Hardware{Accelerators: 1, ChipletsPerAccel: 4, PEsPerChiplet: 16, TileSize: 64}
	baseParams := arch.DefaultParams()

	type variant struct {
		name   string
		mutate func(*core.Config)              // functional-simulation change
		params func(p arch.Params) arch.Params // timing-model change
	}
	variants := []variant{
		{name: "full design (baseline)"},
		{
			// Hold the total local-iteration budget constant: syncing
			// after every local iteration means 10x the global
			// iterations (and 10x the synchronization traffic).
			name: "no symmetric local update (sync every iteration)",
			mutate: func(c *core.Config) {
				c.GlobalIters *= c.LocalIters
				c.LocalIters = 1
			},
		},
		{
			name:   "no stochastic tile computation (all tiles)",
			mutate: func(c *core.Config) { c.TileFraction = 1.0 },
		},
		{
			name:   "majority spin update (no stochastic broadcast)",
			mutate: func(c *core.Config) { c.SpinUpdate = core.SpinUpdateMajority },
		},
		{
			name: "no dual-precision ADC (8-bit always)",
			params: func(p arch.Params) arch.Params {
				p.ADC1bCycles = p.ADC8bCycles
				return p
			},
		},
		{
			name:   "no eigenvalue dropout (C = K)",
			mutate: func(c *core.Config) { c.SkipTransform = true },
		},
	}

	globalIters := 150
	if o.Full {
		globalIters = 500
	}

	t := &table{
		caption: fmt.Sprintf("Ablation — design choices on %s (best-known %v)", inst.name, best),
		header:  []string{"variant", "quality", "vs best-known", "time/job", "vs baseline"},
	}
	var baseTime float64
	for vi, v := range variants {
		cfg := core.DefaultConfig()
		cfg.GlobalIters = globalIters
		cfg.TileFraction = 0.74
		cfg.Phi = 0.2
		cfg.Workers = o.Workers
		cfg.EvalEvery = 2
		if v.mutate != nil {
			v.mutate(&cfg)
		}
		solver, err := core.NewSolver(model, cfg)
		if err != nil {
			return err
		}
		cuts := make([]float64, 0, o.runs())
		for r := 0; r < o.runs(); r++ {
			res, err := solver.Run(o.Seed + int64(vi*100+r))
			if err != nil {
				return err
			}
			cuts = append(cuts, inst.g.CutValue(res.BestSpins))
		}
		mean := metrics.Summarize(cuts).Mean

		params := baseParams
		if v.params != nil {
			params = v.params(baseParams)
		}
		// Price the variant on the real G22 size: the analytic model is
		// instant, and the full-scale problem is where the communication
		// differences show (the fast-scale mini fits in one round).
		rep, err := arch.Evaluate(arch.Design{Hardware: hw, Params: params}, arch.Workload{
			Name: "G22", Nodes: 2000, Batch: 100,
			LocalIters: cfg.LocalIters, GlobalIters: cfg.GlobalIters, TileFraction: cfg.TileFraction,
		})
		if err != nil {
			return err
		}
		if vi == 0 {
			baseTime = rep.TimePerJobS
		}
		t.addRow(v.name,
			fmt.Sprintf("%.0f", mean),
			fmt.Sprintf("%.1f%%", 100*mean/best),
			engTime(rep.TimePerJobS),
			fmt.Sprintf("%.2fx", rep.TimePerJobS/baseTime))
	}
	t.note("quality: mean of %d runs at %d global iterations (%s); time: full G22 on capacity-limited hardware (512x512), batch 100", o.runs(), globalIters, inst.name)
	t.note("expected: ablating local update or stochastic tiles costs time; majority update costs communication; C=K costs quality")
	return t.render(o.out())
}
