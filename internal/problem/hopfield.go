package problem

import (
	"fmt"
)

// Hopfield is associative recall on a Hopfield network: store P
// bipolar patterns ξ¹..ξᴾ of length N under the Hebbian rule
//
//	J_ij = (1/N)·Σ_μ ξᵢ^μ·ξⱼ^μ   (i ≠ j),
//
// then relax from a corrupted probe; the attractor nearest the probe
// is the recalled memory. The Hamiltonian −½σᵀJσ is pure
// spin-quadratic, so Lower emits AddIsing terms only and the compiled
// model carries no field. Storage is reliable up to the classical
// capacity P ≈ 0.138·N; past it the energy landscape shatters and
// recall collapses (the capacity test pins both regimes).
type Hopfield struct {
	// Patterns are the stored memories; each must be the same length
	// with entries ±1.
	Patterns [][]int8
	// Probe, when non-nil, is the initial spin state handed to the
	// solver (a corrupted pattern to be cleaned up). Must match the
	// pattern length. When nil the solver starts from its usual random
	// initialization.
	Probe []int8
}

// HopfieldSolution is the decoded answer: BestPattern is the index of
// the stored pattern with the largest |overlap|, Overlap = (1/N)Σξᵢσᵢ
// with that pattern (sign included; −1 is the spin-flipped attractor,
// an equally valid recall since H is even), and Overlaps lists the
// per-pattern values.
type HopfieldSolution struct {
	BestPattern int       `json:"best_pattern"`
	Overlap     float64   `json:"overlap"`
	Overlaps    []float64 `json:"overlaps"`
}

// Type implements Problem.
func (p *Hopfield) Type() string { return "hopfield" }

func (p *Hopfield) validate() error {
	if len(p.Patterns) == 0 {
		return fmt.Errorf("hopfield: no patterns")
	}
	n := len(p.Patterns[0])
	if n == 0 {
		return fmt.Errorf("hopfield: empty pattern")
	}
	for mu, pat := range p.Patterns {
		if len(pat) != n {
			return fmt.Errorf("hopfield: pattern %d has length %d, want %d", mu, len(pat), n)
		}
		for i, s := range pat {
			if s != 1 && s != -1 {
				return fmt.Errorf("hopfield: pattern %d entry %d is %d, want ±1", mu, i, s)
			}
		}
	}
	if p.Probe != nil {
		if len(p.Probe) != n {
			return fmt.Errorf("hopfield: probe has length %d, want %d", len(p.Probe), n)
		}
		for i, s := range p.Probe {
			if s != 1 && s != -1 {
				return fmt.Errorf("hopfield: probe entry %d is %d, want ±1", i, s)
			}
		}
	}
	return nil
}

// Lower implements Problem.
func (p *Hopfield) Lower() (*IR, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(p.Patterns[0])
	ir := NewIR(n)
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum := 0
			for _, pat := range p.Patterns {
				sum += int(pat[i]) * int(pat[j])
			}
			if sum != 0 {
				ir.AddIsing(i, j, float64(sum)*inv)
			}
		}
	}
	return ir, nil
}

// InitialSpins implements Initializer: the probe seeds the solver
// inside the target basin of attraction. Returns nil when no probe is
// set.
func (p *Hopfield) InitialSpins() []int8 {
	if p.Probe == nil {
		return nil
	}
	out := make([]int8, len(p.Probe))
	copy(out, p.Probe)
	return out
}

// Decode implements Problem: recall quality is the best absolute
// pattern overlap. Always feasible — there are no hard constraints,
// only better and worse attractors.
func (p *Hopfield) Decode(spins []int8) (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(p.Patterns[0])
	if err := checkSpins(spins, n); err != nil {
		return nil, err
	}
	overlaps := make([]float64, len(p.Patterns))
	best, bestAbs := 0, -1.0
	for mu, pat := range p.Patterns {
		sum := 0
		for i := 0; i < n; i++ {
			sum += int(pat[i]) * int(spins[i])
		}
		m := float64(sum) / float64(n)
		overlaps[mu] = m
		if a := absf(m); a > bestAbs {
			best, bestAbs = mu, a
		}
	}
	return &Solution{
		Type:      p.Type(),
		Objective: overlaps[best],
		Feasible:  true,
		Assignment: &HopfieldSolution{
			BestPattern: best,
			Overlap:     overlaps[best],
			Overlaps:    overlaps,
		},
	}, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
