package problem

import (
	"fmt"
)

// Clause is one weighted disjunction of literals. Literals are
// 1-indexed: +v means variable v, -v its negation. Weight must be
// positive (omitted weights default to 1 at parse time).
type Clause struct {
	Lits   []int
	Weight float64
}

// MaxSAT is the weighted MAX-SAT front end: maximize the total weight
// of satisfied clauses over Vars boolean variables.
//
// The reduction minimizes the unsatisfied weight. A clause C with
// literals l₁..l_k is unsatisfied exactly when every literal is false,
// so its penalty is w·∏ᵢ f(lᵢ) where f(l) is the "literal is false"
// indicator — the affine factor (1-x) for a positive literal, x for a
// negative one. Short clauses (k ≤ 2) expand directly into quadratic
// terms. Longer clauses chain AND ancillas: z₁ ≔ f₁·f₂, z₂ ≔ z₁·f₃, …
// with each gate enforced by the exact AND penalty
//
//	P(z; a, b) = M·(ab − 2az − 2bz + 3z), M = w + 1,
//
// which is 0 iff z = a·b and ≥ M otherwise. Since M exceeds the w the
// unsatisfied-weight term can ever recover, every optimum sets each
// ancilla to its true AND value and the reduction is exact: the
// lowered minimum equals the minimum unsatisfied weight (DESIGN.md
// "Problem compiler", penalty rule 1). A k-literal clause costs
// max(0, k-2) ancillas, appended after the domain variables so Decode
// reads a clean prefix.
type MaxSAT struct {
	Vars    int
	Clauses []Clause
}

// SATSolution is the decoded MAX-SAT answer: the variable assignment
// and the satisfied/total weight split. Satisfied is the maximization
// objective.
type SATSolution struct {
	Bits        []int   `json:"bits"`
	Satisfied   float64 `json:"satisfied_weight"`
	Total       float64 `json:"total_weight"`
	Unsatisfied int     `json:"unsatisfied_clauses"`
}

// Type implements Problem.
func (p *MaxSAT) Type() string { return "maxsat" }

// Validate checks variable indices and weights; spec parsing and Lower
// both call it.
func (p *MaxSAT) Validate() error {
	if p.Vars <= 0 {
		return fmt.Errorf("maxsat: vars %d must be positive", p.Vars)
	}
	for ci, c := range p.Clauses {
		if len(c.Lits) == 0 {
			return fmt.Errorf("maxsat: clause %d is empty", ci)
		}
		if !isFinite(c.Weight) || c.Weight <= 0 {
			return fmt.Errorf("maxsat: clause %d has weight %v, want > 0", ci, c.Weight)
		}
		for _, l := range c.Lits {
			if l == 0 {
				return fmt.Errorf("maxsat: clause %d has literal 0 (literals are 1-indexed, sign = polarity)", ci)
			}
			if v := abs(l); v > p.Vars {
				return fmt.Errorf("maxsat: clause %d names variable %d, but vars = %d", ci, v, p.Vars)
			}
		}
	}
	return nil
}

// affine is a Boolean-valued affine form c + s·x_v over one binary
// variable (s = 0 makes it the constant c).
type affine struct {
	c, s float64
	v    int
}

// falseFactor returns the "literal is false" indicator of l.
func falseFactor(l int) affine {
	if l > 0 {
		return affine{c: 1, s: -1, v: l - 1}
	}
	return affine{c: 0, s: 1, v: -l - 1}
}

// addProduct accumulates w·a·b into the IR, expanding the affine
// product into constant, linear, and quadratic terms (a.v == b.v folds
// through AddQuad's x² = x rule).
func addProduct(ir *IR, w float64, a, b affine) {
	ir.Offset += w * a.c * b.c
	if a.s != 0 && b.c != 0 {
		ir.AddLinear(a.v, w*a.s*b.c)
	}
	if b.s != 0 && a.c != 0 {
		ir.AddLinear(b.v, w*b.s*a.c)
	}
	if a.s != 0 && b.s != 0 {
		ir.AddQuad(a.v, b.v, w*a.s*b.s)
	}
}

// addAffine accumulates w·a into the IR.
func addAffine(ir *IR, w float64, a affine) {
	ir.Offset += w * a.c
	if a.s != 0 {
		ir.AddLinear(a.v, w*a.s)
	}
}

// Lower implements Problem.
func (p *MaxSAT) Lower() (*IR, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	total := p.Vars
	for _, c := range p.Clauses {
		if len(c.Lits) > 2 {
			total += len(c.Lits) - 2
		}
	}
	ir := NewIR(total)
	next := p.Vars // next free ancilla index
	for _, c := range p.Clauses {
		w := c.Weight
		switch len(c.Lits) {
		case 1:
			addAffine(ir, w, falseFactor(c.Lits[0]))
		case 2:
			addProduct(ir, w, falseFactor(c.Lits[0]), falseFactor(c.Lits[1]))
		default:
			// Chain: acc starts as f₁, each gate binds acc∧fᵢ into a fresh
			// ancilla, and the final product acc·f_k needs no gate — it is
			// already quadratic.
			m := w + 1
			acc := falseFactor(c.Lits[0])
			for i := 1; i < len(c.Lits)-1; i++ {
				f := falseFactor(c.Lits[i])
				z := affine{s: 1, v: next}
				next++
				// M·(acc·f − 2·acc·z − 2·f·z + 3z) = 0 iff z = acc·f.
				addProduct(ir, m, acc, f)
				addProduct(ir, -2*m, acc, z)
				addProduct(ir, -2*m, f, z)
				ir.AddLinear(z.v, 3*m)
				acc = z
			}
			addProduct(ir, w, acc, falseFactor(c.Lits[len(c.Lits)-1]))
		}
	}
	return ir, nil
}

// satisfied reports whether the clause holds under the 0/1 assignment.
func (c *Clause) satisfied(bits []int) bool {
	for _, l := range c.Lits {
		if l > 0 && bits[l-1] == 1 {
			return true
		}
		if l < 0 && bits[-l-1] == 0 {
			return true
		}
	}
	return false
}

// Decode implements Problem: the domain prefix becomes the assignment;
// ancilla spins are ignored. Feasible means every clause is satisfied
// (the SAT-style feasibility view of MAX-SAT).
func (p *MaxSAT) Decode(spins []int8) (*Solution, error) {
	if err := checkSpins(spins, p.Vars); err != nil {
		return nil, err
	}
	bits := make([]int, p.Vars)
	for i := 0; i < p.Vars; i++ {
		if spins[i] == 1 {
			bits[i] = 1
		}
	}
	sat, totalW := 0.0, 0.0
	unsat := 0
	var violations []string
	for ci := range p.Clauses {
		c := &p.Clauses[ci]
		totalW += c.Weight
		if c.satisfied(bits) {
			sat += c.Weight
		} else {
			unsat++
			violations = addViolation(violations, "clause %d (weight %v) unsatisfied", ci, c.Weight)
		}
	}
	return &Solution{
		Type:       p.Type(),
		Objective:  sat,
		Feasible:   unsat == 0,
		Violations: violations,
		Assignment: &SATSolution{Bits: bits, Satisfied: sat, Total: totalW, Unsatisfied: unsat},
	}, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
