package problem

import (
	"testing"

	"sophie/internal/core"
)

// recallOverlap stores p random patterns in an n-neuron Hopfield
// network, probes with a corrupted copy of pattern 0, runs the solver
// from the probe, and returns the decoded |overlap| with the target.
func recallOverlap(t *testing.T, n, p int, seed int64) float64 {
	t.Helper()
	pats, err := RandomPatterns(n, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	hp := &Hopfield{Patterns: pats, Probe: CorruptPattern(pats[0], 0.10, seed+1000)}
	c, err := Compile(hp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.TileSize = n
	cfg.LocalIters = 3
	cfg.GlobalIters = 20
	cfg.Phi = 0.05 // gentle noise: descend into the probe's basin, don't hop out
	cfg.SkipTransform = true
	cfg.InitialSpins = hp.InitialSpins()
	s, err := core.NewSolver(c.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(seed)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := hp.Decode(res.BestSpins)
	if err != nil {
		t.Fatal(err)
	}
	overlap := 0.0
	for i, xi := range pats[0] {
		overlap += float64(xi) * float64(res.BestSpins[i])
	}
	overlap /= float64(n)
	if hs := sol.Assignment.(*HopfieldSolution); absf(overlap) > 0.9 && hs.BestPattern != 0 {
		t.Fatalf("solver converged onto pattern 0 (overlap %.3f) but Decode recalled pattern %d", overlap, hs.BestPattern)
	}
	return absf(overlap)
}

// TestHopfieldCapacity reproduces the associative-memory capacity
// cliff: Hebbian storage recalls reliably below ~0.138·N patterns and
// collapses into spin-glass states above it. At load 0.10·N the probe
// must converge back to its source pattern (overlap ≈ 1); at 0.20·N
// crosstalk dominates and recall degrades markedly. Three seeds each,
// judged on the mean so a single lucky/unlucky basin cannot flip the
// verdict.
func TestHopfieldCapacity(t *testing.T) {
	const n = 120
	seeds := []int64{1, 2, 3}

	meanAt := func(p int) float64 {
		total := 0.0
		for _, seed := range seeds {
			total += recallOverlap(t, n, p, seed)
		}
		return total / float64(len(seeds))
	}

	low := meanAt(n / 10) // 12 patterns: load 0.10, inside capacity
	high := meanAt(n / 5) // 24 patterns: load 0.20, past the cliff
	t.Logf("mean |overlap| with target: load 0.10 -> %.3f, load 0.20 -> %.3f", low, high)

	if low < 0.9 {
		t.Errorf("recall at load 0.10N gave mean overlap %.3f, want >= 0.9", low)
	}
	if high > low-0.1 {
		t.Errorf("recall at load 0.20N (%.3f) should collapse well below load 0.10N (%.3f)", high, low)
	}
}
