// Package problem is the solver's compiler front end: domain problems
// — raw QUBOs, weighted MAX-SAT, graph partitioning and coloring,
// number partitioning, penalty-method TSP, Hopfield associative recall,
// and max-cut itself — lower into one intermediate representation (IR,
// a quadratic pseudo-Boolean objective), which compiles into an
// ising.Model with linear bias terms. Every front end also carries the
// inverse map: Decode converts solver spins back into the problem's own
// vocabulary (a cut, a tour, a coloring, a recalled pattern) together
// with a feasibility report, so callers never handle raw spin vectors.
//
// The two-stage shape mirrors a classic compiler: front ends know their
// domain and the penalty-weight rules that make constraint violations
// unprofitable (DESIGN.md "Problem compiler"); the IR backend knows the
// single x=(1+σ)/2 change of variables onto H = -½σᵀKσ - hᵀσ. Adding a
// problem type means writing a front end only — the solver datapath,
// service API, and CLIs all operate on the IR's output.
package problem

import (
	"fmt"

	"sophie/internal/ising"
)

// Problem is one domain problem instance. Implementations are immutable
// after construction and safe for concurrent use.
type Problem interface {
	// Type returns the spec tag ("maxcut", "qubo", "maxsat", ...), the
	// discriminator of the JSON problem union (spec.go).
	Type() string
	// Lower builds the problem's IR. Deterministic: equal problems lower
	// to identical IRs, which is what makes the lowered-model hash a
	// sound solver-cache key.
	Lower() (*IR, error)
	// Decode maps a solver spin vector (length ≥ the problem's variable
	// count; penalty reductions append ancilla spins after the domain
	// variables) back to a domain solution with a feasibility report.
	Decode(spins []int8) (*Solution, error)
}

// Initializer is implemented by problems with a natural warm start —
// the Hopfield probe state. Solver layers install it as the run's
// initial spins.
type Initializer interface {
	// InitialSpins returns the ±1 starting state, length equal to the
	// lowered model's spin count.
	InitialSpins() []int8
}

// Solution is a decoded domain answer. Assignment holds the
// type-specific payload (CutSolution, TourSolution, ...); Objective is
// the domain objective at the decoded solution, in the direction the
// problem type documents (README "Problem types").
type Solution struct {
	Type      string  `json:"type"`
	Objective float64 `json:"objective"`
	// Feasible reports whether the decoded solution satisfies every hard
	// constraint of the reduction (one-hot rows for TSP, proper coloring,
	// balanced halves, all clauses for SAT-style feasibility). Problems
	// without hard constraints (max-cut, number partitioning) are always
	// feasible.
	Feasible bool `json:"feasible"`
	// Violations lists the violated constraints when Feasible is false;
	// bounded to the first few so a pathological decode cannot build an
	// unbounded report.
	Violations []string `json:"violations,omitempty"`
	Assignment any      `json:"assignment"`
}

// maxViolations bounds a feasibility report.
const maxViolations = 8

// addViolation appends a formatted violation, keeping the report within
// maxViolations (the last slot becomes a "... and N more" marker
// elsewhere; here extra entries are simply dropped).
func addViolation(vs []string, format string, args ...any) []string {
	if len(vs) >= maxViolations {
		return vs
	}
	return append(vs, fmt.Sprintf(format, args...))
}

// Compiled is a lowered-and-compiled problem: the Ising model the
// solver runs, and the affine offset relating the two objectives:
//
//	domain objective(decode(σ)) = Model.Energy(σ) + Offset
//
// for the minimization problems; maximization front ends (max-cut,
// MAX-SAT) document their own sign conventions.
type Compiled struct {
	Model  *ising.Model
	Offset float64
}

// Compile lowers and compiles a problem in one step.
func Compile(p Problem) (*Compiled, error) {
	ir, err := p.Lower()
	if err != nil {
		return nil, fmt.Errorf("problem %s: %w", p.Type(), err)
	}
	c, err := ir.Compile()
	if err != nil {
		return nil, fmt.Errorf("problem %s: %w", p.Type(), err)
	}
	return c, nil
}

// checkSpins validates a decode input against the expected lowered spin
// count. Reductions with ancillas pass the full lowered count; decoders
// then read only their domain prefix.
func checkSpins(spins []int8, want int) error {
	if len(spins) < want {
		return fmt.Errorf("problem: decode got %d spins, want at least %d", len(spins), want)
	}
	for i, s := range spins {
		if s != 1 && s != -1 {
			return fmt.Errorf("problem: invalid spin %d at index %d", s, i)
		}
	}
	return nil
}
