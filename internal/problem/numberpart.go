package problem

import (
	"fmt"
	"math"
)

// NumberPartition splits a multiset of numbers into two subsets
// minimizing |ΣA − ΣB|. The Hamiltonian (Σᵢaᵢσᵢ)² = Σa² +
// 2Σ_{i<j}aᵢaⱼσᵢσⱼ is pure spin-quadratic, so Lower emits AddIsing
// terms only and the compiled model has no field.
type NumberPartition struct {
	Numbers []float64
}

// NumberPartitionSolution is the decoded answer: Sides[i] ∈ {0,1}
// names i's subset, Difference = |ΣA − ΣB| (the minimization
// objective; 0 means a perfect partition).
type NumberPartitionSolution struct {
	Sides      []int   `json:"sides"`
	Difference float64 `json:"difference"`
}

// Type implements Problem.
func (p *NumberPartition) Type() string { return "numberpartition" }

// Lower implements Problem.
func (p *NumberPartition) Lower() (*IR, error) {
	n := len(p.Numbers)
	if n == 0 {
		return nil, fmt.Errorf("numberpartition: no numbers")
	}
	for i, a := range p.Numbers {
		if !isFinite(a) {
			return nil, fmt.Errorf("numberpartition: numbers[%d] = %v is not finite", i, a)
		}
	}
	ir := NewIR(n)
	for i := 0; i < n; i++ {
		ir.Offset += p.Numbers[i] * p.Numbers[i]
		for j := i + 1; j < n; j++ {
			// K_ij = -2aᵢaⱼ makes H gain +2aᵢaⱼσᵢσⱼ, so H = (Σaσ)² up to
			// the Σa² constant carried in Offset.
			ir.AddIsing(i, j, -2*p.Numbers[i]*p.Numbers[j])
		}
	}
	return ir, nil
}

// Decode implements Problem. Number partitioning has no hard
// constraints; every split is feasible.
func (p *NumberPartition) Decode(spins []int8) (*Solution, error) {
	n := len(p.Numbers)
	if err := checkSpins(spins, n); err != nil {
		return nil, err
	}
	sides := make([]int, n)
	sum := 0.0
	for i, a := range p.Numbers {
		if spins[i] == 1 {
			sides[i] = 1
			sum += a
		} else {
			sum -= a
		}
	}
	diff := math.Abs(sum)
	return &Solution{
		Type:       p.Type(),
		Objective:  diff,
		Feasible:   true,
		Assignment: &NumberPartitionSolution{Sides: sides, Difference: diff},
	}, nil
}
