package problem

import (
	"bytes"
	"encoding/json"
	"fmt"

	"sophie/internal/graph"
)

// SpecError is a structured problem-spec rejection: Field names the
// JSON path that failed (dotted, e.g. "problem.clauses[3].lits"),
// Reason is a short machine-stable label for metrics, and Msg explains
// it to a human. The service layer surfaces all three in its 400 body
// and labels sophied_spec_rejects_total with Reason.
type SpecError struct {
	Field  string
	Reason string
	Msg    string
}

func (e *SpecError) Error() string {
	if e.Field == "" {
		return e.Msg
	}
	return fmt.Sprintf("%s: %s", e.Field, e.Msg)
}

func specErr(field, reason, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Reason: reason, Msg: fmt.Sprintf(format, args...)}
}

// specLimits bound hostile inputs before any O(n²) lowering work
// happens. They are generous for real use (a 4096-city TSP already
// lowers to 16.7M variables) but keep a malicious spec from allocating
// unboundedly.
const (
	maxSpecVars     = 1 << 22 // lowered variable count
	maxSpecEntries  = 1 << 24 // explicit entries (edges, triplets, literals)
	maxSpecPatterns = 1 << 16
	// maxSpecTerms bounds the quadratic terms a spec may LOWER to, not
	// just the variables it declares. The distinction matters for the
	// dense reductions: a coloring spec with n·k at the variable limit
	// can still imply n·k² one-hot pair terms (billions at k = 2048),
	// and partition/numberpartition lower to complete graphs (n²/2
	// terms). ParseSpec estimates each type's term count from the
	// declared sizes and rejects before any O(terms) allocation happens
	// — found by the FuzzProblemSpec hostile corpus.
	maxSpecTerms = 1 << 25
)

// specGraph is the JSON wire form of a graph: 0-indexed weighted edge
// triplets [u, v, w]. Omitted weights are not supported — triplets are
// fixed-arity to keep parsing strict.
type specGraph struct {
	N     int          `json:"n"`
	Edges [][3]float64 `json:"edges"`
}

func (sg *specGraph) build(field string) (*graph.Graph, *SpecError) {
	if sg.N <= 0 || sg.N > maxSpecVars {
		return nil, specErr(field+".n", "bad_order", "graph order %d out of range [1, %d]", sg.N, maxSpecVars)
	}
	if len(sg.Edges) > maxSpecEntries {
		return nil, specErr(field+".edges", "too_large", "%d edges exceeds limit %d", len(sg.Edges), maxSpecEntries)
	}
	g := graph.New(sg.N)
	for i, e := range sg.Edges {
		u, v, w := e[0], e[1], e[2]
		if u != float64(int(u)) || v != float64(int(v)) { //sophielint:ignore floateq integrality check is exact
			return nil, specErr(fmt.Sprintf("%s.edges[%d]", field, i), "bad_edge", "endpoints (%v,%v) must be integers", u, v)
		}
		if !isFinite(w) {
			return nil, specErr(fmt.Sprintf("%s.edges[%d]", field, i), "bad_weight", "weight %v is not finite", w)
		}
		if err := g.AddEdge(int(u), int(v), w); err != nil {
			return nil, specErr(fmt.Sprintf("%s.edges[%d]", field, i), "bad_edge", "%v", err)
		}
	}
	return g, nil
}

// rawSpec is the tagged union's envelope; the Type tag picks the
// variant and the remaining fields are variant-specific.
type rawSpec struct {
	Type string `json:"type"`

	// maxcut, partition, coloring
	Graph *specGraph `json:"graph,omitempty"`

	// qubo
	N       int          `json:"n,omitempty"`
	Entries [][3]float64 `json:"entries,omitempty"`
	Offset  float64      `json:"offset,omitempty"`

	// maxsat
	Vars    int          `json:"vars,omitempty"`
	Clauses []specClause `json:"clauses,omitempty"`

	// partition
	BalanceWeight float64 `json:"balance_weight,omitempty"`

	// coloring
	Colors int `json:"colors,omitempty"`

	// numberpartition
	Numbers []float64 `json:"numbers,omitempty"`

	// tsp
	Dist          [][]float64 `json:"dist,omitempty"`
	PenaltyWeight float64     `json:"penalty_weight,omitempty"`

	// hopfield
	Patterns [][]int8 `json:"patterns,omitempty"`
	Probe    []int8   `json:"probe,omitempty"`
}

type specClause struct {
	Lits   []int   `json:"lits"`
	Weight float64 `json:"weight,omitempty"` // 0 defaults to 1
}

// SpecTypes lists the accepted "type" tags, in the order they are
// documented.
func SpecTypes() []string {
	return []string{"qubo", "maxcut", "maxsat", "partition", "coloring", "numberpartition", "tsp", "hopfield"}
}

// ParseSpec decodes a problem-spec JSON document into a Problem front
// end. The document is a tagged union on "type"; unknown fields are
// rejected so typos fail loudly instead of silently defaulting.
// Returned errors are always *SpecError. ParseSpec validates shape and
// budget only — full semantic validation happens in the front end's
// Lower, which also returns field-free errors wrapped by the caller.
func ParseSpec(data []byte) (Problem, error) {
	if len(data) == 0 {
		return nil, specErr("problem", "empty", "empty problem spec")
	}
	var raw rawSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, specErr("problem", "bad_json", "invalid spec JSON: %v", err)
	}
	switch raw.Type {
	case "qubo":
		if raw.N <= 0 || raw.N > maxSpecVars {
			return nil, specErr("problem.n", "bad_order", "order %d out of range [1, %d]", raw.N, maxSpecVars)
		}
		if len(raw.Entries) > maxSpecEntries {
			return nil, specErr("problem.entries", "too_large", "%d entries exceeds limit %d", len(raw.Entries), maxSpecEntries)
		}
		q := &QUBO{N: raw.N, Offset: raw.Offset}
		for i, e := range raw.Entries {
			ri, rj := e[0], e[1]
			if ri != float64(int(ri)) || rj != float64(int(rj)) { //sophielint:ignore floateq integrality check is exact
				return nil, specErr(fmt.Sprintf("problem.entries[%d]", i), "bad_index", "indices (%v,%v) must be integers", ri, rj)
			}
			q.Entries = append(q.Entries, QUBOEntry{I: int(ri), J: int(rj), W: e[2]})
		}
		return q, nil
	case "maxcut":
		g, serr := requireGraph(raw.Graph)
		if serr != nil {
			return nil, serr
		}
		return &MaxCut{G: g}, nil
	case "maxsat":
		if len(raw.Clauses) > maxSpecEntries {
			return nil, specErr("problem.clauses", "too_large", "%d clauses exceeds limit %d", len(raw.Clauses), maxSpecEntries)
		}
		m := &MaxSAT{Vars: raw.Vars}
		lits := 0
		for i, c := range raw.Clauses {
			lits += len(c.Lits)
			if lits > maxSpecEntries {
				return nil, specErr(fmt.Sprintf("problem.clauses[%d]", i), "too_large", "total literal count exceeds limit %d", maxSpecEntries)
			}
			w := c.Weight
			if w == 0 { //sophielint:ignore floateq omitted-weight sentinel
				w = 1
			}
			m.Clauses = append(m.Clauses, Clause{Lits: c.Lits, Weight: w})
		}
		return m, nil
	case "partition":
		g, serr := requireGraph(raw.Graph)
		if serr != nil {
			return nil, serr
		}
		// The balance penalty couples every pair: n²/2 lowered terms.
		if n := int64(g.N()); n*(n-1)/2 > maxSpecTerms {
			return nil, specErr("problem.graph.n", "too_large", "%d nodes lower to %d pair terms (limit %d)", n, n*(n-1)/2, maxSpecTerms)
		}
		return &Partition{G: g, BalanceWeight: raw.BalanceWeight}, nil
	case "coloring":
		g, serr := requireGraph(raw.Graph)
		if serr != nil {
			return nil, serr
		}
		if ok := int64(g.N()) * int64(raw.Colors); raw.Colors > 0 && ok > maxSpecVars {
			return nil, specErr("problem.colors", "too_large", "%d nodes x %d colors lowers to %d variables (limit %d)", g.N(), raw.Colors, ok, maxSpecVars)
		}
		// One-hot rows imply n·k²/2 pair terms, edge constraints |E|·k
		// more — both must stay under the term budget.
		if k := int64(raw.Colors); k > 0 {
			if terms := int64(g.N())*k*k/2 + int64(len(raw.Graph.Edges))*k; terms > maxSpecTerms {
				return nil, specErr("problem.colors", "too_large", "spec lowers to ~%d quadratic terms (limit %d)", terms, maxSpecTerms)
			}
		}
		return &Coloring{G: g, Colors: raw.Colors}, nil
	case "numberpartition":
		// (Σaσ)² couples every pair: n²/2 lowered terms.
		if n := int64(len(raw.Numbers)); n*(n-1)/2 > maxSpecTerms {
			return nil, specErr("problem.numbers", "too_large", "%d numbers lower to %d pair terms (limit %d)", n, n*(n-1)/2, maxSpecTerms)
		}
		return &NumberPartition{Numbers: raw.Numbers}, nil
	case "tsp":
		n := int64(len(raw.Dist))
		if n*n > maxSpecVars {
			return nil, specErr("problem.dist", "too_large", "%d cities lowers to %d variables (limit %d)", n, n*n, maxSpecVars)
		}
		// Distance terms alone are n·(n-1)·n ≈ n³ (every ordered city
		// pair at every cyclic position).
		if n*n*n > maxSpecTerms {
			return nil, specErr("problem.dist", "too_large", "%d cities lower to ~%d quadratic terms (limit %d)", n, n*n*n, maxSpecTerms)
		}
		return &TSP{Dist: raw.Dist, PenaltyWeight: raw.PenaltyWeight}, nil
	case "hopfield":
		if len(raw.Patterns) > maxSpecPatterns {
			return nil, specErr("problem.patterns", "too_large", "%d patterns exceeds limit %d", len(raw.Patterns), maxSpecPatterns)
		}
		if len(raw.Patterns) > 0 {
			// Hebbian couplings are dense: n²/2 terms, each a sum over p
			// patterns.
			if n := int64(len(raw.Patterns[0])); n*(n-1)/2 > maxSpecTerms {
				return nil, specErr("problem.patterns[0]", "too_large", "%d neurons lower to %d pair terms (limit %d)", n, n*(n-1)/2, maxSpecTerms)
			}
		}
		return &Hopfield{Patterns: raw.Patterns, Probe: raw.Probe}, nil
	case "":
		return nil, specErr("problem.type", "missing_type", "missing problem type (one of %v)", SpecTypes())
	default:
		return nil, specErr("problem.type", "unknown_type", "unknown problem type %q (one of %v)", raw.Type, SpecTypes())
	}
}

func requireGraph(sg *specGraph) (*graph.Graph, *SpecError) {
	if sg == nil {
		return nil, specErr("problem.graph", "missing_graph", "missing graph")
	}
	return sg.build("problem.graph")
}
