package problem

import (
	"math"
	"testing"

	"sophie/internal/core"
	"sophie/internal/graph"
	"sophie/internal/ising"
)

// TestMaxCutCompilesToLegacyModel pins the compiler's founding
// contract: Compile(MaxCut{g}) produces the SAME model as the
// pre-compiler ising.FromMaxCut path — couplings bit-identical, no
// field — so max-cut submissions routed through the problem union keep
// the exact legacy datapath.
func TestMaxCutCompilesToLegacyModel(t *testing.T) {
	g, err := graph.Random(96, 400, graph.WeightUniform, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(&MaxCut{G: g})
	if err != nil {
		t.Fatal(err)
	}
	legacy := ising.FromMaxCut(g)
	if c.Model.HasField() {
		t.Fatal("max-cut compiled with a field")
	}
	if c.Model.N() != legacy.N() {
		t.Fatalf("order %d vs legacy %d", c.Model.N(), legacy.N())
	}
	k, lk := c.Model.Coupling(), legacy.Coupling()
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			a, b := k.At(i, j), lk.At(i, j)
			if a == 0 && b == 0 { //sophielint:ignore floateq ±0 are the same coupling: legacy Scale(-1) writes -0 at non-edges, the compiler +0, and zero's sign is inert in every sum and product downstream
				continue
			}
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("K[%d,%d] = %v, legacy %v (bits differ)", i, j, a, b)
			}
		}
	}
}

// TestMaxCutSolvesBitIdenticalToLegacy is the h≡0 golden gate demanded
// by the acceptance criteria: the compiled max-cut model must solve
// bit-identically to ising.FromMaxCut across the dense and CSR engines
// and the delta and exact-recompute paths. Any field-threading change
// that perturbs the nil-field datapath trips this test.
func TestMaxCutSolvesBitIdenticalToLegacy(t *testing.T) {
	// 128 nodes, 650 edges ≈ 8% density: below every entry of the sparse
	// threshold table, so the default config auto-picks the CSR engine
	// and ForceDense pins the dense one.
	g, err := graph.Random(128, 650, graph.WeightUniform, 19)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(&MaxCut{G: g})
	if err != nil {
		t.Fatal(err)
	}
	legacy := ising.FromMaxCut(g)

	base := core.DefaultConfig()
	base.TileSize = 64
	base.LocalIters = 4
	base.GlobalIters = 12
	base.Phi = 0.1
	base.SkipTransform = true

	for _, engine := range []struct {
		name  string
		dense bool
	}{{"csr", false}, {"dense", true}} {
		for _, exact := range []bool{false, true} {
			cfg := base
			cfg.ForceDense = engine.dense
			cfg.ExactRecompute = exact
			for _, seed := range []int64{1, 2, 3} {
				want := solveOne(t, legacy, cfg, seed)
				got := solveOne(t, c.Model, cfg, seed)
				label := engine.name + map[bool]string{false: "/delta", true: "/exact"}[exact]
				if math.Float64bits(want.BestEnergy) != math.Float64bits(got.BestEnergy) {
					t.Fatalf("%s seed %d: energy %v vs legacy %v (bits differ)", label, seed, got.BestEnergy, want.BestEnergy)
				}
				for i := range want.BestSpins {
					if want.BestSpins[i] != got.BestSpins[i] {
						t.Fatalf("%s seed %d: spin %d differs", label, seed, i)
					}
				}
			}
		}
	}
}

func solveOne(t *testing.T, m *ising.Model, cfg core.Config, seed int64) *core.Result {
	t.Helper()
	s, err := core.NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(seed)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFieldModelSolves sanity-checks the other side of the contract:
// a genuinely biased model (nonzero h) runs through the same solver
// datapath and the reported best energy matches the model's own
// evaluation of the best spins — on both engines and both kernels.
func TestFieldModelSolves(t *testing.T) {
	q := &QUBO{N: 96, Offset: 1.5}
	// Ring + random linear terms: linear terms guarantee a field.
	for i := 0; i < q.N; i++ {
		q.Entries = append(q.Entries, QUBOEntry{I: i, J: (i + 1) % q.N, W: float64((i%5 - 2))})
		q.Entries = append(q.Entries, QUBOEntry{I: i, J: i, W: float64(i%3 - 1)})
	}
	c, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Model.HasField() {
		t.Fatal("QUBO with diagonal entries should compile to a field model")
	}
	base := core.DefaultConfig()
	base.TileSize = 48
	base.LocalIters = 4
	base.GlobalIters = 10
	base.Phi = 0.1
	base.SkipTransform = true
	for _, dense := range []bool{false, true} {
		for _, exact := range []bool{false, true} {
			cfg := base
			cfg.ForceDense = dense
			cfg.ExactRecompute = exact
			res := solveOne(t, c.Model, cfg, 5)
			if math.Float64bits(res.BestEnergy) != math.Float64bits(c.Model.Energy(res.BestSpins)) {
				t.Fatalf("dense=%v exact=%v: BestEnergy %v does not match model energy %v",
					dense, exact, res.BestEnergy, c.Model.Energy(res.BestSpins))
			}
			sol, err := q.Decode(res.BestSpins)
			if err != nil {
				t.Fatal(err)
			}
			want := res.BestEnergy + c.Offset
			if math.Abs(sol.Objective-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("decode objective %v, energy+offset %v", sol.Objective, want)
			}
		}
	}
}
