package problem

import (
	"fmt"

	"sophie/internal/graph"
)

// MaxCut is the repo's founding workload as a compiler front end:
// maximize the total weight of edges crossing a two-coloring of g.
// Lower emits pure AddIsing terms with K_uv = -w(u,v), so the compiled
// model is bit-identical to ising.FromMaxCut (same couplings, nil
// field) — max-cut submissions keep the exact pre-compiler datapath
// (pinned by TestMaxCutCompilesToLegacyModel).
type MaxCut struct {
	G *graph.Graph
}

// CutSolution is the decoded max-cut answer: Sides[v] ∈ {0,1} names
// v's side of the cut, Cut is the crossing weight (the maximization
// objective).
type CutSolution struct {
	Sides []int   `json:"sides"`
	Cut   float64 `json:"cut"`
}

// Type implements Problem.
func (p *MaxCut) Type() string { return "maxcut" }

// Lower implements Problem: K_uv = -w for every edge, no field.
func (p *MaxCut) Lower() (*IR, error) {
	if p.G == nil || p.G.N() == 0 {
		return nil, fmt.Errorf("maxcut: empty graph")
	}
	ir := NewIR(p.G.N())
	for _, e := range p.G.Edges() {
		ir.AddIsing(e.U, e.V, -e.Weight)
	}
	return ir, nil
}

// Decode implements Problem. Max-cut has no hard constraints; every
// spin vector is a feasible cut.
func (p *MaxCut) Decode(spins []int8) (*Solution, error) {
	n := p.G.N()
	if err := checkSpins(spins, n); err != nil {
		return nil, err
	}
	sides := make([]int, n)
	for v := 0; v < n; v++ {
		if spins[v] == 1 {
			sides[v] = 1
		}
	}
	cut := p.G.CutValue(spins[:n])
	return &Solution{
		Type:       p.Type(),
		Objective:  cut,
		Feasible:   true,
		Assignment: &CutSolution{Sides: sides, Cut: cut},
	}, nil
}
