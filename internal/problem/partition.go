package problem

import (
	"fmt"
	"math"

	"sophie/internal/graph"
)

// Partition is balanced two-way graph partitioning: split the nodes
// into two equal halves (sizes differing by at most one for odd n)
// minimizing the weight crossing the split.
//
// The spin Hamiltonian is A·(Σᵢσᵢ)² + cut(σ), all spin-quadratic plus
// a constant, so Lower emits pure AddIsing terms and the compiled
// model carries no field: K_ij = -2A on every pair, plus +w/2 on
// edges. The balance weight A must make unbalancing unprofitable: a
// single spin flip from a balanced state raises (Σσ)² by 4 and can
// lower the cut by at most Δ_w (the maximum weighted degree), so any
// A > Δ_w/4 keeps every optimum balanced (DESIGN.md "Problem
// compiler", penalty rule 2). BalanceWeight 0 selects the default
// (1+Δ_w)/4.
type Partition struct {
	G *graph.Graph
	// BalanceWeight overrides the balance penalty A; 0 picks the
	// default (1+Δ_w)/4.
	BalanceWeight float64
}

// PartitionSolution is the decoded answer: Sides[v] ∈ {0,1},
// CutWeight the crossing weight (minimization objective), Imbalance
// the signed size difference |side0| - |side1|.
type PartitionSolution struct {
	Sides     []int   `json:"sides"`
	CutWeight float64 `json:"cut_weight"`
	Imbalance int     `json:"imbalance"`
}

// Type implements Problem.
func (p *Partition) Type() string { return "partition" }

// balanceWeight resolves the penalty A.
func (p *Partition) balanceWeight() float64 {
	if p.BalanceWeight > 0 {
		return p.BalanceWeight
	}
	maxDeg := 0.0
	deg := make([]float64, p.G.N())
	for _, e := range p.G.Edges() {
		deg[e.U] += math.Abs(e.Weight)
		deg[e.V] += math.Abs(e.Weight)
	}
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	return (1 + maxDeg) / 4
}

// Lower implements Problem.
func (p *Partition) Lower() (*IR, error) {
	if p.G == nil || p.G.N() == 0 {
		return nil, fmt.Errorf("partition: empty graph")
	}
	if p.BalanceWeight < 0 || !isFinite(p.BalanceWeight) {
		return nil, fmt.Errorf("partition: balance weight %v must be >= 0 and finite", p.BalanceWeight)
	}
	n := p.G.N()
	a := p.balanceWeight()
	ir := NewIR(n)
	// A·(Σσ)² = A·n + 2A·Σ_{i<j}σᵢσⱼ: K_ij -= 2A on every pair.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ir.AddIsing(i, j, -2*a)
		}
	}
	ir.Offset += a * float64(n)
	// cut(σ) = Σ_e w/2 − Σ_e (w/2)σᵤσᵥ: K_uv += w/2 on edges.
	for _, e := range p.G.Edges() {
		ir.AddIsing(e.U, e.V, e.Weight/2)
		ir.Offset += e.Weight / 2
	}
	return ir, nil
}

// Decode implements Problem: feasible iff the halves are balanced
// (|imbalance| ≤ 1 for odd n, 0 for even n).
func (p *Partition) Decode(spins []int8) (*Solution, error) {
	n := p.G.N()
	if err := checkSpins(spins, n); err != nil {
		return nil, err
	}
	sides := make([]int, n)
	imbalance := 0
	for v := 0; v < n; v++ {
		if spins[v] == 1 {
			sides[v] = 1
			imbalance--
		} else {
			imbalance++
		}
	}
	cut := p.G.CutValue(spins[:n])
	allowed := n % 2 // a perfectly even split needs even n
	feasible := abs(imbalance) <= allowed
	var violations []string
	if !feasible {
		violations = addViolation(violations, "sides differ by %d nodes (want <= %d)", abs(imbalance), allowed)
	}
	return &Solution{
		Type:       p.Type(),
		Objective:  cut,
		Feasible:   feasible,
		Violations: violations,
		Assignment: &PartitionSolution{Sides: sides, CutWeight: cut, Imbalance: imbalance},
	}, nil
}
