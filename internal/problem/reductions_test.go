package problem

import (
	"math"
	"testing"

	"sophie/internal/graph"
)

// bruteForceMin compiles the problem and exhaustively minimizes the
// Hamiltonian over every spin state (lowered order ≤ 22), returning
// the argmin spins and the compiled pair. This makes the round-trip
// goldens deterministic: the decoded optimum depends only on the
// reduction, never on solver luck.
func bruteForceMin(t *testing.T, p Problem) ([]int8, *Compiled) {
	t.Helper()
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	n := c.Model.N()
	if n > 22 {
		t.Fatalf("brute force wants lowered order <= 22, got %d", n)
	}
	spins := make([]int8, n)
	best := make([]int8, n)
	bestE := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		if e := c.Model.Energy(spins); e < bestE {
			bestE = e
			copy(best, spins)
		}
	}
	return best, c
}

// TestNumberPartitionGolden: {4,5,6,7,8} splits perfectly (4+5+6 = 7+8),
// so the ground state decodes to difference 0.
func TestNumberPartitionGolden(t *testing.T) {
	p := &NumberPartition{Numbers: []float64{4, 5, 6, 7, 8}}
	best, _ := bruteForceMin(t, p)
	sol, err := p.Decode(best)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 0 { //sophielint:ignore floateq integer sums split exactly
		t.Fatalf("ground state decodes to difference %v, want a perfect partition", sol.Objective)
	}
	if !sol.Feasible {
		t.Fatal("number partitioning is always feasible")
	}
}

// TestPartitionGolden: two triangles bridged by a single edge. The
// balanced minimum cut severs only the bridge (weight 1).
func TestPartitionGolden(t *testing.T) {
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		g.AddEdge(e[0], e[1], 1)
	}
	p := &Partition{G: g}
	best, _ := bruteForceMin(t, p)
	sol, err := p.Decode(best)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("ground state is unbalanced: %v", sol.Violations)
	}
	if sol.Objective != 1 { //sophielint:ignore floateq unit weights cut exactly
		t.Fatalf("ground-state cut weight %v, want 1 (the bridge)", sol.Objective)
	}
	ps := sol.Assignment.(*PartitionSolution)
	if ps.Sides[0] != ps.Sides[1] || ps.Sides[1] != ps.Sides[2] {
		t.Fatalf("triangle {0,1,2} split across sides: %v", ps.Sides)
	}
}

// TestColoringGolden: a triangle is exactly 3-chromatic, so the ground
// state of the 3-coloring reduction is a proper coloring with zero
// conflicts and all three colors distinct.
func TestColoringGolden(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	p := &Coloring{G: g, Colors: 3}
	best, c := bruteForceMin(t, p)
	if c.Model.N() != 9 {
		t.Fatalf("lowered order %d, want 9 (3 nodes × 3 colors)", c.Model.N())
	}
	sol, err := p.Decode(best)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.Objective != 0 { //sophielint:ignore floateq conflict count is integral
		t.Fatalf("ground state is not a proper coloring: objective %v, violations %v", sol.Objective, sol.Violations)
	}
	cs := sol.Assignment.(*ColoringSolution)
	seen := map[int]bool{}
	for _, col := range cs.Colors {
		if seen[col] {
			t.Fatalf("triangle nodes share color: %v", cs.Colors)
		}
		seen[col] = true
	}
}

// TestColoringInfeasibleGolden: a triangle cannot be 2-colored, so the
// ground state of the 2-coloring reduction carries exactly one
// conflict and decodes infeasible.
func TestColoringInfeasibleGolden(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	p := &Coloring{G: g, Colors: 2}
	best, _ := bruteForceMin(t, p)
	sol, err := p.Decode(best)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Fatal("a triangle is not 2-colorable")
	}
	if sol.Objective != 1 { //sophielint:ignore floateq conflict count is integral
		t.Fatalf("ground state has %v conflicts, want exactly 1", sol.Objective)
	}
}

// TestTSPGolden: four cities on a unit square. The optimal tour walks
// the perimeter (length 4); the diagonal-crossing tours cost 2+2√2.
func TestTSPGolden(t *testing.T) {
	s2 := math.Sqrt2
	p := &TSP{Dist: [][]float64{
		{0, 1, s2, 1},
		{1, 0, 1, s2},
		{s2, 1, 0, 1},
		{1, s2, 1, 0},
	}}
	best, c := bruteForceMin(t, p)
	if c.Model.N() != 16 {
		t.Fatalf("lowered order %d, want 16", c.Model.N())
	}
	sol, err := p.Decode(best)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("ground state is not a permutation: %v", sol.Violations)
	}
	if math.Abs(sol.Objective-4) > 1e-9 {
		t.Fatalf("ground-state tour length %v, want 4 (the perimeter)", sol.Objective)
	}
	tour := sol.Assignment.(*TourSolution).Tour
	for q := 0; q < 4; q++ {
		u, v := tour[q], tour[(q+1)%4]
		if p.Dist[u][v] != 1 { //sophielint:ignore floateq perimeter edges have exact unit length
			t.Fatalf("tour %v uses a diagonal", tour)
		}
	}
}

// TestMaxSATGolden: a small satisfiable formula with a forced model.
// Unit clauses pin x1=T, x2=F; the 3-literal clause then needs x3=T.
func TestMaxSATGolden(t *testing.T) {
	p := &MaxSAT{Vars: 3, Clauses: []Clause{
		{Lits: []int{1}, Weight: 2},
		{Lits: []int{-2}, Weight: 2},
		{Lits: []int{-1, 2, 3}, Weight: 1},
	}}
	best, _ := bruteForceMin(t, p)
	sol, err := p.Decode(best)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("satisfiable formula decoded infeasible: %v", sol.Violations)
	}
	ss := sol.Assignment.(*SATSolution)
	if ss.Bits[0] != 1 || ss.Bits[1] != 0 || ss.Bits[2] != 1 {
		t.Fatalf("assignment %v, want [1 0 1]", ss.Bits)
	}
	if sol.Objective != 5 { //sophielint:ignore floateq integral clause weights sum exactly
		t.Fatalf("satisfied weight %v, want 5", sol.Objective)
	}
}

// TestMaxSATReductionExact brute-forces the exactness claim of the
// chained AND-gadget reduction (penalty rule 1): for every assignment
// of the DOMAIN variables, the minimum of the lowered objective over
// the ancillas equals the unsatisfied weight — so the reduction
// preserves the full objective landscape, not just the optimum.
func TestMaxSATReductionExact(t *testing.T) {
	p := &MaxSAT{Vars: 4, Clauses: []Clause{
		{Lits: []int{1, 2, 3}, Weight: 1.5},
		{Lits: []int{-1, -2, 4}, Weight: 2},
		{Lits: []int{1, -3, -4, 2}, Weight: 1},
		{Lits: []int{-4}, Weight: 0.5},
		{Lits: []int{2, 3}, Weight: 3},
	}}
	ir, err := p.Lower()
	if err != nil {
		t.Fatal(err)
	}
	anc := ir.N - p.Vars
	if anc != 1+1+2 {
		t.Fatalf("%d ancillas, want 4 (k-2 per long clause)", anc)
	}
	x := make([]int, ir.N)
	for mask := 0; mask < 1<<p.Vars; mask++ {
		bits := make([]int, p.Vars)
		for i := 0; i < p.Vars; i++ {
			bits[i] = mask >> i & 1
			x[i] = bits[i]
		}
		unsatWeight := 0.0
		for ci := range p.Clauses {
			if !p.Clauses[ci].satisfied(bits) {
				unsatWeight += p.Clauses[ci].Weight
			}
		}
		lowered := math.Inf(1)
		for amask := 0; amask < 1<<anc; amask++ {
			for a := 0; a < anc; a++ {
				x[p.Vars+a] = amask >> a & 1
			}
			if v := evalIR(ir, x); v < lowered {
				lowered = v
			}
		}
		if math.Abs(lowered-unsatWeight) > 1e-9 {
			t.Fatalf("assignment %v: lowered min %v, unsatisfied weight %v", bits, lowered, unsatWeight)
		}
	}
}

// TestHopfieldDecode pins the recall bookkeeping: decoding a stored
// pattern reports unit overlap with itself, and the probe is exposed
// as the warm start.
func TestHopfieldDecode(t *testing.T) {
	pats, err := RandomPatterns(16, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	probe := CorruptPattern(pats[1], 0.15, 9)
	p := &Hopfield{Patterns: pats, Probe: probe}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Model.HasField() {
		t.Fatal("Hebbian couplings are pure Ising; no field expected")
	}
	sol, err := p.Decode(pats[1])
	if err != nil {
		t.Fatal(err)
	}
	hs := sol.Assignment.(*HopfieldSolution)
	if hs.BestPattern != 1 {
		t.Fatalf("decoding stored pattern 1 recalled pattern %d", hs.BestPattern)
	}
	if hs.Overlap != 1 { //sophielint:ignore floateq self-overlap is N/N, exact
		t.Fatalf("self-overlap %v, want 1", hs.Overlap)
	}
	init := p.InitialSpins()
	if len(init) != 16 {
		t.Fatalf("initial spins length %d", len(init))
	}
	for i := range init {
		if init[i] != probe[i] {
			t.Fatal("InitialSpins must replay the probe")
		}
	}
	init[0] = -init[0]
	if p.Probe[0] == init[0] && probe[0] != init[0] {
		t.Fatal("InitialSpins must copy, not alias, the probe")
	}
}

// TestRandomKSATPlanted: the generator's planted assignment satisfies
// every clause by construction, so decoding it is feasible with full
// weight.
func TestRandomKSATPlanted(t *testing.T) {
	p, planted, err := RandomKSAT(30, 120, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Clauses) != 120 {
		t.Fatalf("%d clauses, want 120", len(p.Clauses))
	}
	spins := make([]int8, p.Vars)
	for i, b := range planted {
		if b == 1 {
			spins[i] = 1
		} else {
			spins[i] = -1
		}
	}
	sol, err := p.Decode(spins)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("planted assignment violates clauses: %v", sol.Violations)
	}
	if sol.Objective != 120 { //sophielint:ignore floateq unit weights sum exactly
		t.Fatalf("planted assignment satisfies weight %v, want 120", sol.Objective)
	}
	// Determinism: same seed, same instance.
	q, planted2, err := RandomKSAT(30, 120, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range planted {
		if planted[i] != planted2[i] {
			t.Fatal("planted assignment not deterministic per seed")
		}
	}
	for ci := range p.Clauses {
		for li := range p.Clauses[ci].Lits {
			if p.Clauses[ci].Lits[li] != q.Clauses[ci].Lits[li] {
				t.Fatal("clauses not deterministic per seed")
			}
		}
	}
}

// TestDecodeRepairsInfeasibleSpins: decoders never fail on arbitrary
// ±1 input — broken one-hot blocks are repaired and reported.
func TestDecodeRepairsInfeasibleSpins(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	p := &Coloring{G: g, Colors: 2}
	// All spins down: no node picks a color.
	spins := []int8{-1, -1, -1, -1, -1, -1}
	sol, err := p.Decode(spins)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Fatal("all-down one-hot blocks must decode infeasible")
	}
	cs := sol.Assignment.(*ColoringSolution)
	for v, col := range cs.Colors {
		if col < 0 || col >= 2 {
			t.Fatalf("repair left node %d with color %d", v, col)
		}
	}

	tsp := &TSP{Dist: [][]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}}}
	all := make([]int8, 9)
	for i := range all {
		all[i] = 1 // every city claims every position
	}
	tsol, err := tsp.Decode(all)
	if err != nil {
		t.Fatal(err)
	}
	if tsol.Feasible {
		t.Fatal("all-up position matrix must decode infeasible")
	}
	tour := tsol.Assignment.(*TourSolution).Tour
	seen := map[int]bool{}
	for _, c := range tour {
		if c < 0 || c >= 3 || seen[c] {
			t.Fatalf("repair produced non-permutation tour %v", tour)
		}
		seen[c] = true
	}
}
