package problem

import (
	"fmt"
	"math"

	"sophie/internal/ising"
	"sophie/internal/linalg"
)

// Term is one quadratic monomial w·xᵢ·xⱼ of the IR objective, over
// binary variables x ∈ {0,1}. Terms are unordered pairs: front ends
// emit each pair once with i < j; Compile rejects i == j (a diagonal
// term is linear, since x² = x) and i > j (canonical order keeps
// lowering deterministic, so equal problems hash equal).
type Term struct {
	I, J int
	W    float64
}

// IR is the compiler's intermediate representation: a quadratic
// pseudo-Boolean objective
//
//	f(x) = Σ_{i<j} Wᵢⱼ·xᵢ·xⱼ + Σᵢ Linear[i]·xᵢ + Offset,  x ∈ {0,1}ᴺ
//
// to be minimized. Every front end lowers to this form; Compile maps it
// onto an Ising Hamiltonian via x = (1+σ)/2. Duplicate Terms on the
// same pair are summed in input order (the CSR build's stable
// sort-and-merge), so front ends may emit incrementally.
type IR struct {
	N      int
	Linear []float64 // nil means all-zero
	Terms  []Term
	Offset float64
}

// NewIR returns an empty IR over n binary variables.
func NewIR(n int) *IR { return &IR{N: n} }

// AddLinear accumulates w·xᵢ into the objective.
func (ir *IR) AddLinear(i int, w float64) {
	if ir.Linear == nil {
		ir.Linear = make([]float64, ir.N)
	}
	ir.Linear[i] += w
}

// AddQuad accumulates w·xᵢ·xⱼ into the objective, canonicalizing the
// pair order; i == j folds to a linear term (x² = x).
func (ir *IR) AddQuad(i, j int, w float64) {
	if i == j {
		ir.AddLinear(i, w)
		return
	}
	if i > j {
		i, j = j, i
	}
	ir.Terms = append(ir.Terms, Term{I: i, J: j, W: w})
}

// AddIsing accumulates a spin-space coupling: K_ij gains k, so the
// Hamiltonian H = -½σᵀKσ gains -k·σᵢ·σⱼ (by symmetry -½ over both
// orderings is -1 over the pair). The
// helper emits the quadratic term together with the two linear terms
// that cancel the x=(1+σ)/2 cross terms, so a front end built purely
// from AddIsing calls compiles to a model with NO external field —
// exactly, in floating point, not just up to rounding (see Compile's
// two-phase field accumulation) — which keeps max-cut, Hopfield, and
// number partitioning on the pre-field nil-h datapath bit for bit.
func (ir *IR) AddIsing(i, j int, k float64) {
	if i == j {
		panic(fmt.Sprintf("ir: AddIsing on the diagonal (%d,%d): σᵢ² is a constant, fold it into Offset", i, j))
	}
	// K_ij = -W/4 wants W = -4k; the linear terms 2k·xᵢ + 2k·xⱼ cancel
	// the field contribution -(L/2 + ΣW/4) = -(k - k) term by term.
	ir.AddQuad(i, j, -4*k)
	ir.AddLinear(i, 2*k)
	ir.AddLinear(j, 2*k)
}

// denseCompileLimit is the order above which Compile builds the model
// CSR-only: a dense coupling matrix at this order is 32 MiB (8·n²
// bytes), past which the sparse datapath is both the memory-sane and —
// for the penalty reductions, which are structurally sparse — the fast
// choice. At or below the limit the model is dense-built, keeping the
// eigenvalue-dropout transform available.
const denseCompileLimit = 2048

// Compile maps the IR onto an Ising model. The change of variables
// x = (1+σ)/2 applied to f(x) gives, matching H = -½σᵀKσ - hᵀσ:
//
//	K_ij   = -Wᵢⱼ/4                     (i ≠ j)
//	h_i    = -(Linear[i]/2 + Σ_{j≠i} Wᵢⱼ/4)
//	offset = Offset + Σ_{i<j} Wᵢⱼ/4 + Σᵢ Linear[i]/2
//
// so that f(x(σ)) = H(σ) + offset for every spin state — minimizing the
// Hamiltonian minimizes the domain objective, and Compiled.Offset
// recovers the domain value from a solver energy.
func (ir *IR) Compile() (*Compiled, error) {
	if ir.N <= 0 {
		return nil, fmt.Errorf("ir: order %d must be positive", ir.N)
	}
	if ir.Linear != nil && len(ir.Linear) != ir.N {
		return nil, fmt.Errorf("ir: %d linear coefficients for %d variables", len(ir.Linear), ir.N)
	}
	if !isFinite(ir.Offset) {
		return nil, fmt.Errorf("ir: offset %v is not finite", ir.Offset)
	}
	for i, v := range ir.Linear {
		if !isFinite(v) {
			return nil, fmt.Errorf("ir: linear[%d] = %v is not finite", i, v)
		}
	}

	// Two-phase field accumulation: the quadratic contribution Σⱼ Wᵢⱼ/4
	// is summed into its own accumulator (hq) before being combined with
	// the linear half. For AddIsing-built IRs each node's hq sum walks
	// the SAME pair sequence as its Linear sum, with exactly negated
	// addends, so hq_i = -Linear[i]/2 bit for bit (float rounding is
	// sign-symmetric and powers of two scale exactly) and the combined
	// field is an exact ±0 — the nil-field bit-compat contract holds by
	// construction, not by luck. Interleaving the two sums per term
	// would break this: -fl(a+b) + a + b is not zero in general.
	h := make([]float64, ir.N)
	hq := make([]float64, ir.N)
	offset := ir.Offset
	entries := make([]linalg.Entry, 0, len(ir.Terms))
	for k, t := range ir.Terms {
		if t.I < 0 || t.J >= ir.N || t.I >= t.J {
			return nil, fmt.Errorf("ir: term %d has pair (%d,%d), want 0 ≤ i < j < %d", k, t.I, t.J, ir.N)
		}
		if !isFinite(t.W) {
			return nil, fmt.Errorf("ir: term %d on pair (%d,%d) has weight %v", k, t.I, t.J, t.W)
		}
		q := t.W / 4
		entries = append(entries, linalg.Entry{Row: t.I, Col: t.J, Val: -q})
		hq[t.I] += q
		hq[t.J] += q
		offset += q
	}
	for i, v := range ir.Linear {
		h[i] = -(v/2 + hq[i])
		offset += v / 2
	}
	if ir.Linear == nil {
		for i, v := range hq {
			h[i] = -v
		}
	}

	var m *ising.Model
	if ir.N <= denseCompileLimit {
		k := linalg.NewMatrix(ir.N, ir.N)
		for _, e := range entries {
			k.Add(e.Row, e.Col, e.Val)
			k.Add(e.Col, e.Row, e.Val)
		}
		var err error
		m, err = ising.NewModel(k)
		if err != nil {
			return nil, err
		}
	} else {
		k, err := linalg.NewCSRSym(ir.N, entries)
		if err != nil {
			return nil, err
		}
		m, err = ising.NewModelCSR(k)
		if err != nil {
			return nil, err
		}
	}
	if anyNonzero(h) {
		var err error
		m, err = m.WithField(h)
		if err != nil {
			return nil, err
		}
	}
	return &Compiled{Model: m, Offset: offset}, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// anyNonzero reports whether the field carries information; an all-zero
// h stays off the model entirely, preserving the nil-field bit-compat
// contract for purely quadratic problems (max-cut, number partitioning,
// Hopfield).
func anyNonzero(h []float64) bool {
	for _, v := range h {
		if v != 0 { //sophielint:ignore floateq exact-zero sentinel: ±0 means "no field", any other bit pattern is a real bias
			return true
		}
	}
	return false
}
